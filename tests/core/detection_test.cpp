#include "core/detection.h"

#include <gtest/gtest.h>

#include "sdnsim/traffic.h"
#include "stats/rng.h"
#include "trace/world.h"

namespace acbm::core {
namespace {

// Benign interval: diffuse traffic over many ASes with small noise.
std::unordered_map<net::Asn, double> benign_interval(acbm::stats::Rng& rng,
                                                     double scale = 1.0) {
  std::unordered_map<net::Asn, double> out;
  for (net::Asn asn = 1; asn <= 20; ++asn) {
    out[asn] = scale * (5.0 + rng.normal(0.0, 0.5));
  }
  return out;
}

// Attack interval: benign plus a large concentrated flood from 3 ASes.
std::unordered_map<net::Asn, double> attack_interval(acbm::stats::Rng& rng) {
  auto out = benign_interval(rng);
  out[100] += 120.0;
  out[101] += 80.0;
  out[102] += 60.0;
  return out;
}

TEST(EntropyDetector, DoesNotFireDuringWarmup) {
  acbm::stats::Rng rng(3);
  EntropyDetector detector({.warmup = 30});
  for (int i = 0; i < 29; ++i) {
    EXPECT_FALSE(detector.observe(attack_interval(rng)));
  }
  EXPECT_FALSE(detector.armed());
}

TEST(EntropyDetector, QuietTrafficNeverFlagged) {
  acbm::stats::Rng rng(5);
  EntropyDetector detector({.warmup = 40});
  int flags = 0;
  for (int i = 0; i < 400; ++i) {
    flags += detector.observe(benign_interval(rng)) ? 1 : 0;
  }
  EXPECT_EQ(flags, 0);
}

TEST(EntropyDetector, ConcentratedFloodIsFlagged) {
  acbm::stats::Rng rng(7);
  EntropyDetector detector({.warmup = 60});
  for (int i = 0; i < 120; ++i) {
    (void)detector.observe(benign_interval(rng));
  }
  ASSERT_TRUE(detector.armed());
  EXPECT_TRUE(detector.observe(attack_interval(rng)));
  EXPECT_GT(std::abs(detector.last_z()), 3.5);
}

TEST(EntropyDetector, VolumeGateBlocksPureMixShifts) {
  // Same entropy shift but no volume increase: a benign mix change, e.g.
  // a big AS going quiet. Must NOT be flagged.
  acbm::stats::Rng rng(9);
  EntropyDetector detector({.warmup = 60});
  for (int i = 0; i < 120; ++i) {
    (void)detector.observe(benign_interval(rng));
  }
  // Concentrate the same total volume into 3 ASes.
  std::unordered_map<net::Asn, double> shifted;
  shifted[1] = 40.0;
  shifted[2] = 30.0;
  shifted[3] = 30.0;
  EXPECT_FALSE(detector.observe(shifted));
}

TEST(EntropyDetector, BaselineNotPoisonedByAttacks) {
  acbm::stats::Rng rng(11);
  EntropyDetector detector({.warmup = 60});
  for (int i = 0; i < 120; ++i) {
    (void)detector.observe(benign_interval(rng));
  }
  // A long attack: stays flagged throughout because the baseline is frozen
  // during flagged intervals.
  int flagged = 0;
  for (int i = 0; i < 60; ++i) {
    flagged += detector.observe(attack_interval(rng)) ? 1 : 0;
  }
  EXPECT_GE(flagged, 55);
  // And the detector still recognizes benign traffic afterwards.
  EXPECT_FALSE(detector.observe(benign_interval(rng)));
}

TEST(EntropyDetector, DetectsGeneratedAttackTraffic) {
  // End-to-end: feed sdnsim per-minute traffic for a real target; the
  // detector must fire during a known attack and stay quiet before the
  // trace begins.
  const trace::World world = trace::build_world(trace::small_world_options(43));
  const net::Asn target = world.dataset.target_asns().front();
  const sdnsim::TargetTrafficModel traffic(world.dataset, world.ip_map, target,
                                           {});
  EntropyDetector detector({.warmup = 120, .z_threshold = 3.0});

  // Warm up on two benign hours well before the window.
  const trace::EpochSeconds quiet_start =
      world.dataset.window_start() - 10 * 86400;
  for (int m = 0; m < 180; ++m) {
    const auto minute = traffic.minute(quiet_start + m * 60);
    std::unordered_map<net::Asn, double> combined = minute.benign;
    for (const auto& [asn, rate] : minute.attack) combined[asn] += rate;
    EXPECT_FALSE(detector.observe(combined)) << "false positive at " << m;
  }

  // Stream minutes across a large attack; expect at least one flag.
  const auto indices = world.dataset.attacks_on_asn(target);
  std::size_t biggest = indices.front();
  for (std::size_t idx : indices) {
    if (world.dataset.attacks()[idx].magnitude() >
        world.dataset.attacks()[biggest].magnitude()) {
      biggest = idx;
    }
  }
  const trace::Attack& attack = world.dataset.attacks()[biggest];
  bool fired = false;
  for (trace::EpochSeconds t = attack.start - attack.start % 60;
       t < attack.end(); t += 60) {
    const auto minute = traffic.minute(t);
    std::unordered_map<net::Asn, double> combined = minute.benign;
    for (const auto& [asn, rate] : minute.attack) combined[asn] += rate;
    fired |= detector.observe(combined);
  }
  EXPECT_TRUE(fired) << "largest attack (magnitude "
                     << attack.magnitude() << ") went undetected";
}

}  // namespace
}  // namespace acbm::core
