#include "core/observe.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/parallel.h"

namespace acbm::core::observe {
namespace {

/// Every test starts and ends quiescent: collection off, tracer and
/// registry emptied, thread count back to automatic resolution.
class ObserveTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_enabled(false);
    Tracer::instance().reset();
    Metrics::instance().reset();
    acbm::core::set_num_threads(0);
  }
  void TearDown() override { SetUp(); }
};

// --- Histogram ------------------------------------------------------------

TEST_F(ObserveTest, HistogramBucketBoundariesUseLeSemantics) {
  Histogram h({1.0, 2.0, 5.0});
  h.observe(0.5);
  h.observe(1.0);  // On-boundary sample lands in its own bucket (le=1).
  h.observe(1.5);
  h.observe(2.0);
  h.observe(5.0);
  h.observe(10.0);  // Above every bound: +Inf bucket.
  const std::vector<std::uint64_t> counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.5 + 2.0 + 5.0 + 10.0);
}

TEST_F(ObserveTest, HistogramRejectsBadBounds) {
  EXPECT_THROW(Histogram({}), std::invalid_argument);
  EXPECT_THROW(Histogram({1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(Histogram({2.0, 1.0}), std::invalid_argument);
}

TEST_F(ObserveTest, HistogramResetKeepsBounds) {
  Histogram h({1.0, 4.0});
  h.observe(3.0);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  ASSERT_EQ(h.bounds().size(), 2u);
  EXPECT_DOUBLE_EQ(h.bounds()[1], 4.0);
}

// --- Counters under concurrency ------------------------------------------

TEST_F(ObserveTest, CounterAggregatesExactlyUnderParallelFor) {
  set_enabled(true);
  for (const std::size_t threads : {1u, 3u, 8u}) {
    Metrics::instance().reset();
    acbm::core::set_num_threads(threads);
    acbm::core::parallel_for(0, 1000,
                             [](std::size_t) { ACBM_COUNT("test.ticks", 1); });
    EXPECT_EQ(Metrics::instance().counter_value("test.ticks"), 1000u)
        << "threads=" << threads;
  }
}

TEST_F(ObserveTest, DisabledMacrosRegisterNothing) {
  ACBM_COUNT("test.off", 1);
  ACBM_HISTOGRAM("test.off_hist", 1.0);
  { ACBM_SPAN("test.off_span"); }
  EXPECT_EQ(Metrics::instance().counter_value("test.off"), 0u);
  EXPECT_TRUE(Tracer::instance().collect().empty());
  std::ostringstream prom;
  Metrics::instance().write_prometheus(prom);
  EXPECT_EQ(prom.str().find("test_off"), std::string::npos);
}

// --- SpanRing -------------------------------------------------------------

SpanEvent make_event(std::uint64_t seq) {
  SpanEvent e;
  e.seq = seq;
  e.name = "ring";
  return e;
}

TEST_F(ObserveTest, SpanRingDrainsInPushOrder) {
  SpanRing ring(8);
  for (std::uint64_t s = 1; s <= 3; ++s) EXPECT_TRUE(ring.push(make_event(s)));
  std::vector<SpanEvent> out;
  EXPECT_EQ(ring.drain(out), 3u);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].seq, 1u);
  EXPECT_EQ(out[2].seq, 3u);
  // A drained ring is reusable.
  EXPECT_TRUE(ring.push(make_event(4)));
  out.clear();
  EXPECT_EQ(ring.drain(out), 1u);
}

TEST_F(ObserveTest, SpanRingDropsWhenFullAndCounts) {
  SpanRing ring(4);
  ASSERT_EQ(ring.capacity(), 4u);
  for (std::uint64_t s = 1; s <= 6; ++s) (void)ring.push(make_event(s));
  EXPECT_EQ(ring.dropped(), 2u);
  std::vector<SpanEvent> out;
  EXPECT_EQ(ring.drain(out), 4u);
  EXPECT_EQ(out.back().seq, 4u);  // The newest events were the ones dropped.
}

TEST_F(ObserveTest, SpanRingSpscConcurrentDrain) {
  SpanRing ring(1u << 10);
  constexpr std::uint64_t kEvents = 20000;
  std::vector<SpanEvent> out;
  std::thread producer([&ring] {
    for (std::uint64_t s = 1; s <= kEvents; ++s) {
      // Spin until the consumer frees a slot (each failed try counts a
      // drop, so the drop counter is noise here — only order matters).
      while (!ring.push(make_event(s))) std::this_thread::yield();
    }
  });
  while (out.size() < kEvents) (void)ring.drain(out);
  producer.join();
  ASSERT_EQ(out.size(), kEvents);
  for (std::uint64_t s = 1; s <= kEvents; ++s) {
    ASSERT_EQ(out[s - 1].seq, s);  // In-order, no duplicates, no losses.
  }
}

// --- Span tree determinism ------------------------------------------------

/// Runs a synthetic instrumented workload and returns its aggregated
/// (path, count) pairs.
std::vector<std::pair<std::string, std::uint64_t>> run_workload(
    std::size_t threads) {
  Tracer::instance().reset();
  acbm::core::set_num_threads(threads);
  set_enabled(true);
  {
    ACBM_SPAN("root");
    acbm::core::parallel_for(0, 17, [](std::size_t i) {
      ACBM_SPAN_KV("outer", "i=" + std::to_string(i));
      ACBM_SPAN("inner");
    });
    { ACBM_SPAN("tail"); }
  }
  set_enabled(false);
  const std::vector<SpanEvent> events = Tracer::instance().collect();
  std::vector<std::pair<std::string, std::uint64_t>> shape;
  for (const SpanAggregate& node : aggregate_spans(events)) {
    shape.emplace_back(node.path, node.count);
  }
  return shape;
}

TEST_F(ObserveTest, SpanTreeIsIdenticalAtOneThreeAndEightThreads) {
  const auto baseline = run_workload(1);
  const std::vector<std::pair<std::string, std::uint64_t>> expected = {
      {"root", 1}, {"root/outer", 17}, {"root/outer/inner", 17}, {"root/tail", 1}};
  EXPECT_EQ(baseline, expected);
  EXPECT_EQ(run_workload(3), baseline);
  EXPECT_EQ(run_workload(8), baseline);
}

TEST_F(ObserveTest, NestedSpansRecordParentage) {
  set_enabled(true);
  EXPECT_EQ(current_span(), 0u);
  {
    ACBM_SPAN("a");
    const std::uint64_t a_seq = current_span();
    EXPECT_NE(a_seq, 0u);
    {
      ACBM_SPAN("b");
      EXPECT_NE(current_span(), a_seq);
    }
    EXPECT_EQ(current_span(), a_seq);
  }
  EXPECT_EQ(current_span(), 0u);
  set_enabled(false);
  const std::vector<SpanEvent> events = Tracer::instance().collect();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_STREQ(events[0].name, "a");
  EXPECT_EQ(events[0].parent, 0u);
  EXPECT_STREQ(events[1].name, "b");
  EXPECT_EQ(events[1].parent, events[0].seq);
}

TEST_F(ObserveTest, ScopedParentReparentsSpans) {
  set_enabled(true);
  std::uint64_t root_seq = 0;
  {
    ACBM_SPAN("root");
    root_seq = current_span();
    std::thread worker([root_seq] {
      const ScopedParent inherit(root_seq);
      ACBM_SPAN("child");
    });
    worker.join();
  }
  set_enabled(false);
  // collect() sorts by seq (open order), so "root" comes first even though
  // "child" closed first.
  const std::vector<SpanEvent> events = Tracer::instance().collect();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_STREQ(events[0].name, "root");
  EXPECT_EQ(events[0].parent, 0u);
  EXPECT_STREQ(events[1].name, "child");
  EXPECT_EQ(events[1].parent, root_seq);
}

// --- Sinks ----------------------------------------------------------------

TEST_F(ObserveTest, PrometheusDumpIsDeterministicAndWellFormed) {
  Metrics::instance().counter("fit.records").add(7);
  Metrics::instance().counter("a.first").add(1);
  Metrics::instance().gauge("pool.queue_depth").set(3.5);
  const double bounds[] = {1.0, 2.0};
  Metrics::instance().histogram("task.ms", bounds).observe(1.5);
  std::ostringstream first;
  std::ostringstream second;
  Metrics::instance().write_prometheus(first);
  Metrics::instance().write_prometheus(second);
  EXPECT_EQ(first.str(), second.str());
  const std::string text = first.str();
  // Sorted: a.first before fit.records.
  EXPECT_LT(text.find("acbm_a_first_total 1"),
            text.find("acbm_fit_records_total 7"));
  EXPECT_NE(text.find("# TYPE acbm_fit_records_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("acbm_pool_queue_depth 3.5"), std::string::npos);
  // Histogram exposition is cumulative with an explicit +Inf bucket.
  EXPECT_NE(text.find("acbm_task_ms_bucket{le=\"2\"} 1"), std::string::npos);
  EXPECT_NE(text.find("acbm_task_ms_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("acbm_task_ms_count 1"), std::string::npos);
}

/// Minimal structural JSON check: object/array nesting balances to zero and
/// never goes negative, honoring string literals and escapes.
bool json_nesting_balances(const std::string& text) {
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') {
      if (--depth < 0) return false;
    }
  }
  return depth == 0 && !in_string;
}

TEST_F(ObserveTest, ChromeTraceRoundTripsStructurally) {
  set_enabled(true);
  {
    ACBM_SPAN("parent");
    ACBM_SPAN_KV("child", std::string("k=v,quote=\"x\""));
  }
  set_enabled(false);
  const std::vector<SpanEvent> events = Tracer::instance().collect();
  ASSERT_EQ(events.size(), 2u);
  std::ostringstream os;
  write_chrome_trace(os, events);
  const std::string text = os.str();
  EXPECT_TRUE(json_nesting_balances(text)) << text;
  EXPECT_EQ(text.find("{\"traceEvents\":["), 0u);
  EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(text.find("\"name\":\"parent\""), std::string::npos);
  EXPECT_NE(text.find("\"name\":\"child\""), std::string::npos);
  // The tag's embedded quote must be escaped, not emitted raw.
  EXPECT_NE(text.find("quote=\\\"x\\\""), std::string::npos);
}

TEST_F(ObserveTest, WriteProfileRendersTreeAndDrops) {
  set_enabled(true);
  {
    ACBM_SPAN("stage");
    { ACBM_SPAN("substage"); }
    { ACBM_SPAN("substage"); }
  }
  set_enabled(false);
  const std::vector<SpanEvent> events = Tracer::instance().collect();
  std::ostringstream os;
  write_profile(os, events, 5);
  const std::string text = os.str();
  EXPECT_NE(text.find("stage"), std::string::npos);
  EXPECT_NE(text.find("substage"), std::string::npos);
  EXPECT_NE(text.find("3 closed"), std::string::npos);
  EXPECT_NE(text.find("5 dropped"), std::string::npos);
  // Same-name siblings merged into one row with count 2.
  EXPECT_NE(text.find("  substage"), std::string::npos);
}

TEST_F(ObserveTest, CollectIsConsuming) {
  set_enabled(true);
  { ACBM_SPAN("once"); }
  set_enabled(false);
  EXPECT_EQ(Tracer::instance().collect().size(), 1u);
  EXPECT_TRUE(Tracer::instance().collect().empty());
}

}  // namespace
}  // namespace acbm::core::observe
