#include "core/temporal_model.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "core/baselines.h"
#include "stats/metrics.h"
#include "trace/world.h"

namespace acbm::core {
namespace {

struct Fixture {
  trace::World world = trace::build_world(trace::small_world_options(17));
  FamilySeries series;
  std::uint32_t family;

  Fixture() {
    // DirtJumper: the highest-volume family, so series are long.
    family = world.dataset.family_index("DirtJumper");
    series = extract_family_series(world.dataset, family, world.ip_map, nullptr);
  }

  [[nodiscard]] FamilySeries train_prefix(std::size_t n) const {
    FamilySeries out = series;
    const auto cut = [n](std::vector<double>& v) {
      v.resize(std::min(n, v.size()));
    };
    out.attack_indices.resize(std::min(n, out.attack_indices.size()));
    cut(out.magnitude);
    cut(out.activity);
    cut(out.norm_magnitude);
    cut(out.source_coeff);
    cut(out.interval_s);
    cut(out.hour);
    cut(out.day);
    cut(out.duration_s);
    return out;
  }
};

TEST(TemporalModel, FitsAllSeries) {
  Fixture fx;
  TemporalModel model;
  model.fit(fx.series);
  EXPECT_TRUE(model.fitted());
  // The long DirtJumper series must yield real ARIMA models, not fallbacks.
  EXPECT_TRUE(model.model(TemporalSeries::kMagnitude).has_value());
  EXPECT_TRUE(model.model(TemporalSeries::kHour).has_value());
  EXPECT_TRUE(model.model(TemporalSeries::kInterval).has_value());
}

TEST(TemporalModel, UnfittedUseThrows) {
  TemporalModel model;
  const std::vector<double> xs{1.0, 2.0, 3.0};
  EXPECT_THROW((void)model.forecast_next(TemporalSeries::kMagnitude, xs),
               std::logic_error);
  EXPECT_THROW((void)model.one_step_predictions(TemporalSeries::kHour, xs, 1),
               std::logic_error);
}

TEST(TemporalModel, ShortSeriesFallsBackToMean) {
  FamilySeries tiny;
  tiny.magnitude = {10.0, 12.0, 8.0};
  tiny.activity = {1.0, 1.0, 1.0};
  tiny.norm_magnitude = {1.0, 0.5, 0.3};
  tiny.source_coeff = {0.1, 0.1, 0.1};
  tiny.interval_s = {0.0, 100.0, 200.0};
  tiny.hour = {1.0, 2.0, 3.0};
  tiny.day = {0.0, 1.0, 2.0};
  tiny.duration_s = {60.0, 70.0, 80.0};
  TemporalModel model;
  model.fit(tiny);
  EXPECT_FALSE(model.model(TemporalSeries::kMagnitude).has_value());
  EXPECT_DOUBLE_EQ(model.forecast_next(TemporalSeries::kMagnitude,
                                       tiny.magnitude),
                   10.0);  // Mean of {10, 12, 8}.
}

TEST(TemporalModel, PredictionsBeatAlwaysMeanOnMagnitude) {
  // Fig. 1's headline claim, on the synthetic trace: the temporal model
  // tracks attack magnitudes better than the naive baseline.
  Fixture fx;
  const std::size_t n = fx.series.magnitude.size();
  ASSERT_GT(n, 100u);
  const std::size_t split = n * 8 / 10;
  TemporalModel model;
  model.fit(fx.train_prefix(split));
  const auto preds = model.one_step_predictions(TemporalSeries::kMagnitude,
                                                fx.series.magnitude, split);
  const auto mean_preds = always_mean_predictions(fx.series.magnitude, split);
  const std::vector<double> truth(fx.series.magnitude.begin() + split,
                                  fx.series.magnitude.end());
  EXPECT_LT(acbm::stats::rmse(truth, preds),
            acbm::stats::rmse(truth, mean_preds) * 1.05);
}

TEST(TemporalModel, OneStepPredictionsAreCausal) {
  Fixture fx;
  const std::size_t n = fx.series.hour.size();
  const std::size_t split = n * 8 / 10;
  TemporalModel model;
  model.fit(fx.train_prefix(split));
  auto mutated = fx.series.hour;
  const auto before =
      model.one_step_predictions(TemporalSeries::kHour, fx.series.hour, split);
  mutated.back() += 12.0;
  const auto after =
      model.one_step_predictions(TemporalSeries::kHour, mutated, split);
  ASSERT_EQ(before.size(), after.size());
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_DOUBLE_EQ(before[i], after[i]);
  }
}

TEST(TemporalModel, AutoOrderAlsoWorks) {
  Fixture fx;
  TemporalModelOptions opts;
  opts.auto_order = true;
  opts.auto_options.max_p = 2;
  opts.auto_options.max_q = 1;
  opts.auto_options.max_d = 0;
  TemporalModel model(opts);
  model.fit(fx.train_prefix(fx.series.magnitude.size() * 8 / 10));
  EXPECT_TRUE(model.fitted());
  const double f = model.forecast_next(TemporalSeries::kMagnitude,
                                       fx.series.magnitude);
  EXPECT_GT(f, 0.0);
  EXPECT_LT(f, 10000.0);
}

TEST(TemporalModel, ForecastHorizonConvergesToLongRunForecast) {
  Fixture fx;
  TemporalModel model;
  model.fit(fx.series);
  const std::span<const double> history(fx.series.magnitude.data(),
                                        fx.series.magnitude.size() / 2);
  const double h1 =
      model.forecast_horizon(TemporalSeries::kMagnitude, history, 1);
  // Horizon 1 equals the one-step forecast.
  EXPECT_DOUBLE_EQ(
      h1, model.forecast_next(TemporalSeries::kMagnitude, history));
  // Beyond the cap the forecast is the converged long-run value: huge
  // horizons give identical results.
  const double far1 =
      model.forecast_horizon(TemporalSeries::kMagnitude, history, 100000);
  const double far2 =
      model.forecast_horizon(TemporalSeries::kMagnitude, history, 999999);
  EXPECT_DOUBLE_EQ(far1, far2);
  EXPECT_TRUE(std::isfinite(far1));
}

TEST(TemporalModel, ForecastHorizonZeroThrows) {
  Fixture fx;
  TemporalModel model;
  model.fit(fx.series);
  EXPECT_THROW((void)model.forecast_horizon(TemporalSeries::kHour,
                                            fx.series.hour, 0),
               std::invalid_argument);
}

TEST(TemporalModel, BadStartThrows) {
  Fixture fx;
  TemporalModel model;
  model.fit(fx.series);
  EXPECT_THROW((void)model.one_step_predictions(TemporalSeries::kMagnitude,
                                                fx.series.magnitude, 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace acbm::core
