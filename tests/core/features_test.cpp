#include "core/features.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "trace/world.h"

namespace acbm::core {
namespace {

using trace::Attack;
using trace::Dataset;
using trace::EpochSeconds;

constexpr EpochSeconds kStart = 1343779200;

Attack attack_at(std::uint64_t id, std::uint32_t family, net::Asn asn,
                 EpochSeconds start, std::vector<net::Ipv4> bots,
                 double duration = 600.0) {
  Attack a;
  a.id = id;
  a.family = family;
  a.target_ip = net::Ipv4(10, 0, 0, 1);
  a.target_asn = asn;
  a.start = start;
  a.duration_s = duration;
  a.bots = std::move(bots);
  return a;
}

// Hand-built map: AS 1 owns 10.0.0.0/24 (256 addresses), AS 2 owns
// 10.1.0.0/24.
net::IpToAsnMap tiny_map() {
  return net::IpToAsnMap({{net::parse_prefix("10.0.0.0/24"), 1},
                          {net::parse_prefix("10.1.0.0/24"), 2}});
}

TEST(SourceAsnDistribution, NormalizedShares) {
  const net::IpToAsnMap map = tiny_map();
  const Attack a = attack_at(
      1, 0, 1, kStart,
      {net::Ipv4(10, 0, 0, 1), net::Ipv4(10, 0, 0, 2), net::Ipv4(10, 1, 0, 1),
       net::Ipv4(10, 1, 0, 2)});
  const auto dist = source_asn_distribution(a, map);
  ASSERT_EQ(dist.size(), 2u);
  EXPECT_DOUBLE_EQ(dist.at(1), 0.5);
  EXPECT_DOUBLE_EQ(dist.at(2), 0.5);
}

TEST(SourceAsnDistribution, UnmappableBotsDropped) {
  const net::IpToAsnMap map = tiny_map();
  const Attack a = attack_at(1, 0, 1, kStart,
                             {net::Ipv4(10, 0, 0, 1), net::Ipv4(99, 0, 0, 1)});
  const auto dist = source_asn_distribution(a, map);
  ASSERT_EQ(dist.size(), 1u);
  EXPECT_DOUBLE_EQ(dist.at(1), 1.0);
}

TEST(SourceDistributionCoefficient, HandComputedIntraTerm) {
  const net::IpToAsnMap map = tiny_map();
  // 4 bots in AS 1 (256 addresses): intra = 4/256; single AS => DT = 1.
  const Attack a = attack_at(
      1, 0, 1, kStart,
      {net::Ipv4(10, 0, 0, 1), net::Ipv4(10, 0, 0, 2), net::Ipv4(10, 0, 0, 3),
       net::Ipv4(10, 0, 0, 4)});
  const double coeff = source_distribution_coefficient(a, map, nullptr);
  EXPECT_NEAR(coeff, 1000.0 * 4.0 / 256.0, 1e-9);
}

TEST(SourceDistributionCoefficient, ConcentrationRaisesCoefficient) {
  // Eq. (3)'s design intent: more bots in fewer ASes => larger A^s.
  const net::IpToAsnMap map = tiny_map();
  const Attack concentrated = attack_at(
      1, 0, 1, kStart,
      {net::Ipv4(10, 0, 0, 1), net::Ipv4(10, 0, 0, 2), net::Ipv4(10, 0, 0, 3),
       net::Ipv4(10, 0, 0, 4)});
  const Attack one_bot = attack_at(2, 0, 1, kStart, {net::Ipv4(10, 0, 0, 1)});
  EXPECT_GT(source_distribution_coefficient(concentrated, map, nullptr),
            source_distribution_coefficient(one_bot, map, nullptr));
}

TEST(SourceDistributionCoefficient, DistanceShrinksCoefficient) {
  // Two ASes far apart must score lower than the same ASes adjacent.
  net::AsGraph near_graph;
  near_graph.add_peering(1, 2);
  net::AsGraph far_graph;
  far_graph.add_provider_customer(9, 1);
  far_graph.add_provider_customer(9, 8);
  far_graph.add_provider_customer(8, 7);
  far_graph.add_provider_customer(7, 2);
  net::ValleyFreeDistance near_dist(near_graph);
  net::ValleyFreeDistance far_dist(far_graph);

  const net::IpToAsnMap map = tiny_map();
  const Attack a = attack_at(
      1, 0, 1, kStart, {net::Ipv4(10, 0, 0, 1), net::Ipv4(10, 1, 0, 1)});
  EXPECT_GT(source_distribution_coefficient(a, map, &near_dist),
            source_distribution_coefficient(a, map, &far_dist));
}

TEST(SourceDistributionCoefficient, EmptyBotsIsZero) {
  const net::IpToAsnMap map = tiny_map();
  const Attack a = attack_at(1, 0, 1, kStart, {});
  EXPECT_DOUBLE_EQ(source_distribution_coefficient(a, map, nullptr), 0.0);
}

TEST(ExtractFamilySeries, AlignedAndCausal) {
  const net::IpToAsnMap map = tiny_map();
  std::vector<Attack> attacks{
      attack_at(1, 0, 1, kStart + 3600,
                {net::Ipv4(10, 0, 0, 1), net::Ipv4(10, 0, 0, 2)}, 100.0),
      attack_at(2, 0, 1, kStart + 7200, {net::Ipv4(10, 0, 0, 3)}, 200.0),
      attack_at(3, 1, 2, kStart + 9000, {net::Ipv4(10, 1, 0, 1)}, 300.0),
  };
  const Dataset ds({"A", "B"}, std::move(attacks), {}, kStart);
  const FamilySeries fs = extract_family_series(ds, 0, map, nullptr);
  ASSERT_EQ(fs.attack_indices.size(), 2u);
  EXPECT_DOUBLE_EQ(fs.magnitude[0], 2.0);
  EXPECT_DOUBLE_EQ(fs.magnitude[1], 1.0);
  // Eq. 2: A^b_1 = 2/2 = 1; A^b_2 = 1/3.
  EXPECT_DOUBLE_EQ(fs.norm_magnitude[0], 1.0);
  EXPECT_NEAR(fs.norm_magnitude[1], 1.0 / 3.0, 1e-12);
  // Intervals: first is 0, second is 3600.
  EXPECT_DOUBLE_EQ(fs.interval_s[0], 0.0);
  EXPECT_DOUBLE_EQ(fs.interval_s[1], 3600.0);
  EXPECT_DOUBLE_EQ(fs.hour[0], 1.0);
  EXPECT_DOUBLE_EQ(fs.hour[1], 2.0);
  EXPECT_DOUBLE_EQ(fs.duration_s[1], 200.0);
  // Eq. 1 uses days elapsed (floored at 1 day here).
  EXPECT_DOUBLE_EQ(fs.activity[0], 1.0);
  EXPECT_DOUBLE_EQ(fs.activity[1], 2.0);
}

TEST(ExtractTargetSeries, FiltersByTargetAsn) {
  const net::IpToAsnMap map = tiny_map();
  std::vector<Attack> attacks{
      attack_at(1, 0, 1, kStart + 100, {net::Ipv4(10, 0, 0, 1)}, 50.0),
      attack_at(2, 1, 2, kStart + 200, {net::Ipv4(10, 1, 0, 1)}, 60.0),
      attack_at(3, 0, 1, kStart + 400, {net::Ipv4(10, 0, 0, 2)}, 70.0),
  };
  const Dataset ds({"A", "B"}, std::move(attacks), {}, kStart);
  const TargetSeries ts = extract_target_series(ds, 1);
  ASSERT_EQ(ts.attack_indices.size(), 2u);
  EXPECT_DOUBLE_EQ(ts.duration_s[0], 50.0);
  EXPECT_DOUBLE_EQ(ts.duration_s[1], 70.0);
  EXPECT_DOUBLE_EQ(ts.interval_s[1], 300.0);
  EXPECT_TRUE(extract_target_series(ds, 999).attack_indices.empty());
}

TEST(MultistageChains, GroupsWithinWindow) {
  const net::IpToAsnMap map = tiny_map();
  std::vector<Attack> attacks{
      attack_at(1, 0, 1, kStart, {net::Ipv4(10, 0, 0, 1)}),
      attack_at(2, 0, 1, kStart + 3600, {net::Ipv4(10, 0, 0, 1)}),   // Chain.
      attack_at(3, 0, 2, kStart + 3700, {net::Ipv4(10, 1, 0, 1)}),   // Other target.
      attack_at(4, 0, 1, kStart + 90000 + 3600, {net::Ipv4(10, 0, 0, 1)}),  // > 24 h: new chain.
  };
  const Dataset ds({"A"}, std::move(attacks), {}, kStart);
  const auto chains = multistage_chains(ds);
  ASSERT_EQ(chains.size(), 3u);
  EXPECT_EQ(chains[0].size(), 2u);  // Attacks 1 and 2.
  EXPECT_EQ(chains[1].size(), 1u);  // Attack on target 2.
  EXPECT_EQ(chains[2].size(), 1u);  // The late attack.
}

TEST(MultistageChains, SimultaneousAttacksDoNotChain) {
  // The paper excludes same-instant launches (gap < 30 s).
  std::vector<Attack> attacks{
      attack_at(1, 0, 1, kStart, {net::Ipv4(10, 0, 0, 1)}),
      attack_at(2, 0, 1, kStart + 5, {net::Ipv4(10, 0, 0, 2)}),
  };
  const Dataset ds({"A"}, std::move(attacks), {}, kStart);
  const auto chains = multistage_chains(ds);
  EXPECT_EQ(chains.size(), 2u);
}

TEST(MultistageChains, EveryAttackInExactlyOneChain) {
  const trace::World world = trace::build_world(trace::small_world_options(3));
  const auto chains = multistage_chains(world.dataset);
  std::size_t total = 0;
  for (const auto& chain : chains) total += chain.size();
  EXPECT_EQ(total, world.dataset.size());
}

TEST(MultistageChains, ChainsRespectWindowProperty) {
  const trace::World world = trace::build_world(trace::small_world_options(5));
  for (const auto& chain : multistage_chains(world.dataset)) {
    for (std::size_t i = 1; i < chain.size(); ++i) {
      const auto& prev = world.dataset.attacks()[chain[i - 1]];
      const auto& cur = world.dataset.attacks()[chain[i]];
      EXPECT_EQ(prev.target_asn, cur.target_asn);
      const double gap = static_cast<double>(cur.start - prev.start);
      EXPECT_GE(gap, 30.0);
      EXPECT_LE(gap, 86400.0);
    }
  }
}

TEST(ChainTurnaround, HandComputedDecomposition) {
  // Stage 1: [0, 600); stage 2 starts at 1000 (gap 400), lasts 500.
  std::vector<Attack> attacks{
      attack_at(1, 0, 1, kStart, {net::Ipv4(10, 0, 0, 1)}, 600.0),
      attack_at(2, 0, 1, kStart + 1000, {net::Ipv4(10, 0, 0, 2)}, 500.0),
  };
  const Dataset ds({"A"}, std::move(attacks), {}, kStart);
  const Turnaround t = chain_turnaround(ds, std::vector<std::size_t>{0, 1});
  EXPECT_EQ(t.stages, 2u);
  EXPECT_DOUBLE_EQ(t.execution_s, 1100.0);
  EXPECT_DOUBLE_EQ(t.waiting_s, 400.0);
  EXPECT_DOUBLE_EQ(t.turnaround_s, 1500.0);
}

TEST(ChainTurnaround, OverlappingStagesHaveNoWaiting) {
  // Stage 2 starts while stage 1 is still running.
  std::vector<Attack> attacks{
      attack_at(1, 0, 1, kStart, {net::Ipv4(10, 0, 0, 1)}, 3600.0),
      attack_at(2, 0, 1, kStart + 600, {net::Ipv4(10, 0, 0, 2)}, 600.0),
  };
  const Dataset ds({"A"}, std::move(attacks), {}, kStart);
  const Turnaround t = chain_turnaround(ds, std::vector<std::size_t>{0, 1});
  EXPECT_DOUBLE_EQ(t.waiting_s, 0.0);
  EXPECT_DOUBLE_EQ(t.turnaround_s, 3600.0);  // First stage dominates.
}

TEST(ChainTurnaround, SingletonChain) {
  std::vector<Attack> attacks{
      attack_at(1, 0, 1, kStart, {net::Ipv4(10, 0, 0, 1)}, 250.0)};
  const Dataset ds({"A"}, std::move(attacks), {}, kStart);
  const Turnaround t = chain_turnaround(ds, std::vector<std::size_t>{0});
  EXPECT_DOUBLE_EQ(t.execution_s, 250.0);
  EXPECT_DOUBLE_EQ(t.waiting_s, 0.0);
  EXPECT_DOUBLE_EQ(t.turnaround_s, 250.0);
}

TEST(ChainTurnaround, EmptyChainThrows) {
  const Dataset ds({"A"}, {}, {}, kStart);
  EXPECT_THROW((void)chain_turnaround(ds, std::vector<std::size_t>{}),
               std::invalid_argument);
}

TEST(ChainTurnaround, GeneratedChainsAreInternallyConsistent) {
  const trace::World world = trace::build_world(trace::small_world_options(7));
  for (const auto& chain : multistage_chains(world.dataset)) {
    const Turnaround t = chain_turnaround(world.dataset, chain);
    EXPECT_GT(t.execution_s, 0.0);
    EXPECT_GE(t.waiting_s, 0.0);
    // Wall-clock span never exceeds waiting + execution for ordered stages.
    EXPECT_LE(t.turnaround_s, t.waiting_s + t.execution_s + 1e-6);
  }
}

TEST(MultistageChains, RejectsBadWindow) {
  const Dataset ds({"A"}, {}, {}, kStart);
  MultistageOptions opts;
  opts.min_gap_s = 100.0;
  opts.max_gap_s = 50.0;
  EXPECT_THROW((void)multistage_chains(ds, opts), std::invalid_argument);
}

}  // namespace
}  // namespace acbm::core
