#include "core/pipeline.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "trace/world.h"

namespace acbm::core {
namespace {

SpatiotemporalOptions fast_options() {
  SpatiotemporalOptions opts;
  opts.spatial.grid_search = false;
  opts.spatial.fixed.mlp.max_epochs = 60;
  return opts;
}

struct Fixture {
  trace::World world = trace::build_world(trace::small_world_options(37));
  AdversaryModel model{fast_options()};

  Fixture() { model.fit(world.dataset, world.ip_map); }
};

TEST(AdversaryModel, UnfittedUseThrows) {
  AdversaryModel model;
  EXPECT_THROW((void)model.predict_next_attack(1), std::logic_error);
  trace::Attack attack;
  EXPECT_THROW(model.observe(attack), std::logic_error);
}

TEST(AdversaryModel, PredictsForKnownTarget) {
  Fixture fx;
  const net::Asn busiest = fx.world.dataset.target_asns().front();
  const auto pred = fx.model.predict_next_attack(busiest);
  ASSERT_TRUE(pred.has_value());
  EXPECT_GE(pred->magnitude, 1.0);
  EXPECT_LT(pred->magnitude, 100000.0);
  EXPECT_GE(pred->duration_s, 30.0);
  EXPECT_GE(pred->hour, 0.0);
  EXPECT_LT(pred->hour, 24.0);
  EXPECT_LT(pred->assumed_family, 10u);
  // Timestamp is strictly in the future of the target's last attack.
  const auto indices = fx.world.dataset.attacks_on_asn(busiest);
  EXPECT_GT(pred->start, fx.world.dataset.attacks()[indices.back()].start);
}

TEST(AdversaryModel, SourceDistributionNormalized) {
  Fixture fx;
  const net::Asn busiest = fx.world.dataset.target_asns().front();
  const auto pred = fx.model.predict_next_attack(busiest);
  ASSERT_TRUE(pred.has_value());
  ASSERT_FALSE(pred->source_distribution.empty());
  double total = 0.0;
  for (const auto& [asn, share] : pred->source_distribution) {
    EXPECT_GE(share, 0.0);
    total += share;
  }
  EXPECT_NEAR(total, 1.0, 1e-6);
}

TEST(AdversaryModel, UnknownTargetGivesNullopt) {
  Fixture fx;
  EXPECT_FALSE(fx.model.predict_next_attack(123456789).has_value());
}

TEST(AdversaryModel, PredictsForEveryAttackedTarget) {
  Fixture fx;
  for (net::Asn asn : fx.world.dataset.target_asns()) {
    const auto pred = fx.model.predict_next_attack(asn);
    ASSERT_TRUE(pred.has_value()) << "target AS " << asn;
    EXPECT_GE(pred->hour, 0.0);
    EXPECT_LT(pred->hour, 24.0);
  }
}

TEST(AdversaryModel, ObserveShiftsNextPrediction) {
  Fixture fx;
  const net::Asn busiest = fx.world.dataset.target_asns().front();
  const auto before = fx.model.predict_next_attack(busiest);
  ASSERT_TRUE(before.has_value());

  // Feed a fresh observation far in the future; the next prediction must
  // move past it.
  trace::Attack attack;
  attack.id = 999999;
  attack.family = before->assumed_family;
  attack.target_asn = busiest;
  attack.target_ip = net::Ipv4(10, 0, 0, 1);
  attack.start = fx.world.dataset.attacks().back().start + 30 * 86400;
  attack.duration_s = 600.0;
  attack.bots = {net::Ipv4(10, 0, 0, 2)};
  fx.model.observe(attack);

  const auto after = fx.model.predict_next_attack(busiest);
  ASSERT_TRUE(after.has_value());
  EXPECT_GT(after->start, attack.start);
}

TEST(AdversaryModel, DeterministicPredictions) {
  Fixture fx;
  const net::Asn busiest = fx.world.dataset.target_asns().front();
  const auto a = fx.model.predict_next_attack(busiest);
  const auto b = fx.model.predict_next_attack(busiest);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_DOUBLE_EQ(a->magnitude, b->magnitude);
  EXPECT_DOUBLE_EQ(a->hour, b->hour);
  EXPECT_EQ(a->start, b->start);
}

}  // namespace
}  // namespace acbm::core
