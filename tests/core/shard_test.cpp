// Sharded-fit coordination (core/shard.h) exercised with thread-based
// workers: real ShardWorker instances over one shared checkpoint
// directory, with ShardWorkerOptions::crash overridden so the worker.exit
// fault throws instead of SIGKILLing the test binary. Process-level
// coverage (fork/exec, real kill -9) lives in worker_cli_test.cpp and
// scripts/crash_matrix.sh.
#include "core/shard.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/checkpoint.h"
#include "core/observe.h"
#include "core/parallel.h"
#include "core/robust.h"
#include "trace/world.h"

namespace acbm::core {
namespace {

namespace fs = std::filesystem;

constexpr std::uint64_t kHash = 0x5eed;

struct FaultGuard {
  FaultGuard() { FaultInjector::instance().clear(); }
  ~FaultGuard() {
    FaultInjector::instance().clear();
    set_num_threads(0);
  }
};

/// Turns the metric registry on (reset) for one test, off afterwards, so
/// counter assertions see only this test's increments.
struct MetricsGuard {
  MetricsGuard() {
    observe::Metrics::instance().reset();
    observe::set_enabled(true);
  }
  ~MetricsGuard() {
    observe::set_enabled(false);
    observe::Metrics::instance().reset();
  }
};

struct TempDir {
  fs::path path;
  TempDir() {
    path = fs::temp_directory_path() /
           ("acbm_shard_test_" + std::to_string(::getpid()));
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

SpatiotemporalOptions fast_options() {
  SpatiotemporalOptions opts;
  opts.spatial.grid_search = false;
  opts.spatial.fixed.mlp.max_epochs = 60;
  return opts;
}

/// One small world plus the single-process reference fit, shared across
/// every test in the binary.
struct Fixture {
  trace::World world = trace::build_world(trace::small_world_options(29));
  std::string plain_bytes;
  Fixture() {
    SpatiotemporalModel model(fast_options());
    model.fit(world.dataset, world.ip_map);
    std::ostringstream os;
    model.save(os);
    plain_bytes = os.str();
  }
};

const Fixture& fx() {
  static const Fixture f;
  return f;
}

ShardWorkerOptions worker_options(const fs::path& dir, int worker_id,
                                  int ttl_ms = 60000) {
  ShardWorkerOptions opts;
  opts.checkpoint_dir = dir;
  opts.config_hash = kHash;
  opts.worker_id = worker_id;
  opts.lease_ttl_ms = ttl_ms;
  opts.poll_interval_ms = 5;
  opts.max_backoff_ms = 20;
  return opts;
}

int run_worker(ShardWorkerOptions opts) {
  ShardWorker worker(std::move(opts));
  return worker.run(fx().world.dataset, fx().world.ip_map, fast_options());
}

/// The coordinator-side merge: an ordinary fit with the shared store wired
/// in, consuming whatever stages the workers published.
std::string merge_bytes(const fs::path& dir) {
  CheckpointDir::Options copts;
  copts.config_hash = kHash;
  copts.shared = true;
  CheckpointDir ckpt(dir, copts);
  SpatiotemporalOptions opts = fast_options();
  opts.checkpoint = &ckpt;
  SpatiotemporalModel model(opts);
  model.fit(fx().world.dataset, fx().world.ip_map);
  std::ostringstream os;
  model.save(os);
  return os.str();
}

TEST(ShardStages, FamiliesThenSpatialThenTree) {
  const std::vector<std::string> stages = shard_stages(fx().world.dataset);
  const auto& families = fx().world.dataset.family_names();
  ASSERT_EQ(stages.size(), families.size() + 2);
  for (std::size_t f = 0; f < families.size(); ++f) {
    EXPECT_EQ(stages[f], "temporal/" + families[f]);
  }
  EXPECT_EQ(stages[stages.size() - 2], "spatial");
  EXPECT_EQ(stages.back(), "tree");
}

TEST(ShardPlan, RoundTripsAndRejectsForeignConfig) {
  TempDir tmp;
  // No plan at all: workers may run coordinator-less.
  EXPECT_NO_THROW(check_shard_plan(tmp.path, kHash));
  write_shard_plan(tmp.path, kHash, {"temporal/A", "spatial", "tree"});
  EXPECT_NO_THROW(check_shard_plan(tmp.path, kHash));
  // A plan written under another config hash is a usage error, not a
  // silent divergence.
  EXPECT_THROW(check_shard_plan(tmp.path, kHash + 1), std::invalid_argument);
}

TEST(LeaseTableTest, ExclusiveAcquireAndRelease) {
  TempDir tmp;
  LeaseTable leases(tmp.path, 60000);
  EXPECT_TRUE(leases.try_acquire("spatial", 0));
  EXPECT_FALSE(leases.try_acquire("spatial", 1));
  // Releasing a lease you do not own is a no-op.
  leases.release("spatial", 1);
  EXPECT_FALSE(leases.try_acquire("spatial", 1));
  leases.release("spatial", 0);
  EXPECT_TRUE(leases.try_acquire("spatial", 1));
}

TEST(LeaseTableTest, StaleLeaseIsStolenAndCounted) {
  MetricsGuard metrics;
  TempDir tmp;
  LeaseTable leases(tmp.path, 40);
  ASSERT_TRUE(leases.try_acquire("spatial", 0));
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  EXPECT_TRUE(leases.try_acquire("spatial", 1));
  observe::Metrics& reg = observe::Metrics::instance();
  EXPECT_EQ(reg.counter("lease.acquired").value(), 2U);
  EXPECT_EQ(reg.counter("lease.expired").value(), 1U);
  EXPECT_EQ(reg.counter("lease.stolen").value(), 1U);
}

TEST(LeaseTableTest, LeaseExpireFaultForcesAStealWithoutWaiting) {
  FaultGuard guard;
  TempDir tmp;
  LeaseTable leases(tmp.path, 60000);
  ASSERT_TRUE(leases.try_acquire("spatial", 0));
  ASSERT_TRUE(leases.try_acquire("tree", 0));
  FaultInjector::instance().configure("lease.expire:shard=spatial");
  EXPECT_TRUE(leases.try_acquire("spatial", 1));   // Forced stale: stolen.
  EXPECT_FALSE(leases.try_acquire("tree", 1));     // Unfaulted: still held.
}

TEST(LeaseTableTest, DropWorkerFreesOnlyItsLeases) {
  TempDir tmp;
  LeaseTable leases(tmp.path, 60000);
  ASSERT_TRUE(leases.try_acquire("spatial", 0));
  ASSERT_TRUE(leases.try_acquire("tree", 0));
  ASSERT_TRUE(leases.try_acquire("temporal/A", 1));
  leases.drop_worker(0);
  EXPECT_TRUE(leases.try_acquire("spatial", 2));
  EXPECT_TRUE(leases.try_acquire("tree", 2));
  EXPECT_FALSE(leases.try_acquire("temporal/A", 2));
}

TEST(ShardWorkerTest, SingleWorkerFitsEveryShardByteIdentically) {
  FaultGuard guard;
  set_num_threads(1);
  TempDir tmp;
  const fs::path dir = tmp.path / "ck";
  const std::vector<std::string> stages = shard_stages(fx().world.dataset);
  write_shard_plan(dir, kHash, stages);

  EXPECT_EQ(run_worker(worker_options(dir, 0)),
            static_cast<int>(stages.size()));
  // A second worker finds nothing left to do.
  EXPECT_EQ(run_worker(worker_options(dir, 1)), 0);
  EXPECT_EQ(merge_bytes(dir), fx().plain_bytes);
}

TEST(ShardWorkerTest, ForeignShardPlanIsRejected) {
  TempDir tmp;
  const fs::path dir = tmp.path / "ck";
  write_shard_plan(dir, kHash + 7, shard_stages(fx().world.dataset));
  EXPECT_THROW(run_worker(worker_options(dir, 0)), std::invalid_argument);
}

TEST(ShardWorkerTest, ConcurrentWorkersPartitionTheShardsExactlyOnce) {
  FaultGuard guard;
  set_num_threads(1);  // Workers are the threads; keep fits inline.
  TempDir tmp;
  const fs::path dir = tmp.path / "ck";
  const std::vector<std::string> stages = shard_stages(fx().world.dataset);
  write_shard_plan(dir, kHash, stages);

  std::vector<int> fitted(3, 0);
  std::vector<std::thread> workers;
  workers.reserve(fitted.size());
  for (std::size_t i = 0; i < fitted.size(); ++i) {
    workers.emplace_back([&, i] {
      fitted[i] = run_worker(worker_options(dir, static_cast<int>(i)));
    });
  }
  for (std::thread& t : workers) t.join();

  // Fresh leases with a generous ttl: every shard was fit exactly once.
  EXPECT_EQ(fitted[0] + fitted[1] + fitted[2],
            static_cast<int>(stages.size()));
  EXPECT_EQ(merge_bytes(dir), fx().plain_bytes);
}

TEST(ShardWorkerTest, CrashedWorkerShardsAreFinishedByAnother) {
  struct Crash : std::runtime_error {
    using std::runtime_error::runtime_error;
  };
  FaultGuard guard;
  set_num_threads(1);
  TempDir tmp;
  const fs::path dir = tmp.path / "ck";
  const std::vector<std::string> stages = shard_stages(fx().world.dataset);
  write_shard_plan(dir, kHash, stages);

  // Worker 0 dies on its first leased shard, leaving the lease behind —
  // exactly what a kill -9 leaves on disk.
  FaultInjector::instance().configure("worker.exit:worker=0#1");
  ShardWorkerOptions crashing = worker_options(dir, 0, /*ttl_ms=*/100);
  crashing.crash = [](const std::string& key) { throw Crash(key); };
  EXPECT_THROW(run_worker(std::move(crashing)), Crash);

  // The replacement steals the stale lease and completes the plan.
  FaultInjector::instance().clear();
  EXPECT_EQ(run_worker(worker_options(dir, 1, /*ttl_ms=*/100)),
            static_cast<int>(stages.size()));
  EXPECT_EQ(merge_bytes(dir), fx().plain_bytes);
}

TEST(ShardWorkerTest, BlockedWorkerBacksOffThenFinishes) {
  FaultGuard guard;
  MetricsGuard metrics;
  set_num_threads(1);
  TempDir tmp;
  const fs::path dir = tmp.path / "ck";
  const std::vector<std::string> stages = shard_stages(fx().world.dataset);
  write_shard_plan(dir, kHash, stages);

  // Worker 99 (the main thread) sits on the tree lease without ever
  // fitting it; the real worker must fit everything else, then back off
  // until the lease is released.
  LeaseTable blocker(dir / "coord", 60000);
  ASSERT_TRUE(blocker.try_acquire("tree", 99));

  std::thread worker([&] { run_worker(worker_options(dir, 0)); });

  CheckpointDir::Options copts;
  copts.config_hash = kHash;
  copts.shared = true;
  CheckpointDir watch(dir, copts);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::minutes(2);
  bool others_done = false;
  while (!others_done && std::chrono::steady_clock::now() < deadline) {
    watch.refresh();
    others_done = true;
    for (const std::string& stage : stages) {
      if (stage != "tree" && !watch.is_complete(stage)) others_done = false;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_TRUE(others_done) << "non-tree shards never completed";
  // Give the worker a few blocked polls, then unblock it.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  blocker.release("tree", 99);
  worker.join();

  EXPECT_GE(observe::Metrics::instance().counter("shard.retry").value(), 1U);
  watch.refresh();
  EXPECT_TRUE(watch.is_complete("tree"));
}

}  // namespace
}  // namespace acbm::core
