// ServingModel tests: the mmap serving path must be BYTE-identical to the
// batch pipeline — f64 predictions equal AdversaryModel::predict_next_attack
// bit for bit across every target, and f32 predictions equal the
// InferenceView path bit for bit. Plus format interchange (map_file ==
// from_image == load_any on .art) and concurrent predict safety.
#include "core/serving.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <bit>
#include <filesystem>
#include <fstream>
#include <thread>

#include "core/artifact_map.h"
#include "core/durable.h"
#include "core/inference.h"
#include "core/pipeline.h"
#include "trace/world.h"

namespace acbm::core {
namespace {

namespace fs = std::filesystem;

struct TempDir {
  fs::path path;
  TempDir() {
    static std::atomic<int> counter{0};
    path = fs::temp_directory_path() /
           ("acbm_serving_test_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter.fetch_add(1)));
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

SpatiotemporalOptions fast_options() {
  SpatiotemporalOptions opts;
  opts.spatial.grid_search = false;
  opts.spatial.fixed.mlp.max_epochs = 60;
  return opts;
}

struct Fixture {
  trace::World world = trace::build_world(trace::small_world_options(37));
  AdversaryModel model{fast_options()};
  ServingModel serving;

  Fixture() {
    model.fit(world.dataset, world.ip_map);
    serving = ServingModel::from_image(armm::pack_model(model));
  }
};

const Fixture& fx() {
  static const Fixture* fixture = new Fixture();
  return *fixture;
}

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

/// Bitwise equality over every field, including the source distribution.
void expect_identical(const AttackPrediction& got,
                      const AttackPrediction& want, net::Asn asn) {
  EXPECT_EQ(bits(got.magnitude), bits(want.magnitude)) << "AS" << asn;
  EXPECT_EQ(bits(got.magnitude_sd), bits(want.magnitude_sd)) << "AS" << asn;
  EXPECT_EQ(bits(got.duration_s), bits(want.duration_s)) << "AS" << asn;
  EXPECT_EQ(bits(got.hour), bits(want.hour)) << "AS" << asn;
  EXPECT_EQ(bits(got.day), bits(want.day)) << "AS" << asn;
  EXPECT_EQ(got.start, want.start) << "AS" << asn;
  EXPECT_EQ(got.assumed_family, want.assumed_family) << "AS" << asn;
  ASSERT_EQ(got.source_distribution.size(), want.source_distribution.size())
      << "AS" << asn;
  for (const auto& [src, share] : want.source_distribution) {
    const auto it = got.source_distribution.find(src);
    ASSERT_NE(it, got.source_distribution.end()) << "AS" << asn << " src "
                                                 << src;
    EXPECT_EQ(bits(it->second), bits(share)) << "AS" << asn << " src " << src;
  }
}

TEST(ServingModel, F64ByteIdenticalToBatchAcrossAllTargets) {
  const Fixture& f = fx();
  for (net::Asn asn : f.serving.targets()) {
    const auto want = f.model.predict_next_attack(asn);
    const auto got = f.serving.predict(asn, Precision::kF64);
    ASSERT_EQ(got.has_value(), want.has_value()) << "AS" << asn;
    if (want) expect_identical(*got, *want, asn);
  }
}

TEST(ServingModel, F32ByteIdenticalToInferenceViewAcrossAllTargets) {
  const Fixture& f = fx();
  const InferenceView view = f.model.make_inference_view();
  for (net::Asn asn : f.serving.targets()) {
    const auto want = f.model.predict_next_attack(asn, &view);
    const auto got = f.serving.predict(asn, Precision::kF32);
    ASSERT_EQ(got.has_value(), want.has_value()) << "AS" << asn;
    if (want) expect_identical(*got, *want, asn);
  }
}

TEST(ServingModel, TargetsMatchDataset) {
  const Fixture& f = fx();
  const auto targets = f.serving.targets();
  auto want = f.model.dataset().target_asns();
  std::sort(want.begin(), want.end());
  EXPECT_EQ(targets, want);
  EXPECT_FALSE(f.serving.predict(4294967295u).has_value());
  EXPECT_FALSE(f.serving.has_target(4294967295u));
}

TEST(ServingModel, FamilyNamesRoundTrip) {
  const Fixture& f = fx();
  const auto& names = f.model.dataset().family_names();
  for (std::uint32_t i = 0; i < names.size(); ++i) {
    EXPECT_EQ(f.serving.family_name(i), names[i]);
  }
}

TEST(ServingModel, MapFileEqualsFromImage) {
  const Fixture& f = fx();
  TempDir tmp;
  const fs::path path = tmp.path / "model.armm";
  durable::atomic_write_file(path, f.serving.image());
  const ServingModel mapped = ServingModel::map_file(path);
  EXPECT_EQ(mapped.image_size(), f.serving.image_size());
  for (net::Asn asn : f.serving.targets()) {
    const auto want = f.serving.predict(asn);
    const auto got = mapped.predict(asn);
    ASSERT_EQ(got.has_value(), want.has_value());
    if (want) expect_identical(*got, *want, asn);
  }
}

TEST(ServingModel, LoadAnyReadsBothFormats) {
  const Fixture& f = fx();
  TempDir tmp;
  const fs::path armm = tmp.path / "model.armm";
  const fs::path art = tmp.path / "model.art";
  durable::atomic_write_file(armm, f.serving.image());
  {
    std::ofstream out(art, std::ios::binary);
    f.model.save_framed(out);
  }
  const ServingModel from_armm = ServingModel::load_any(armm);
  const ServingModel from_art = ServingModel::load_any(art);
  // The framed fallback re-packs in memory; both must serve identically.
  for (net::Asn asn : f.serving.targets()) {
    const auto a = from_armm.predict(asn);
    const auto b = from_art.predict(asn);
    ASSERT_EQ(a.has_value(), b.has_value());
    if (a) expect_identical(*a, *b, asn);
  }
}

TEST(ServingModel, LoadAnyRejectsGarbage) {
  TempDir tmp;
  const fs::path path = tmp.path / "junk";
  durable::atomic_write_file(path, "not a model at all");
  EXPECT_THROW((void)ServingModel::load_any(path), durable::LoadFailure);
  EXPECT_THROW((void)ServingModel::load_any(tmp.path / "missing"),
               durable::LoadFailure);
}

TEST(ServingModel, ConcurrentPredictIsRaceFreeAndIdentical) {
  // One shared instance, many threads: per-thread scratch means every
  // thread must see the same bits the single-threaded path produces.
  const Fixture& f = fx();
  const auto targets = f.serving.targets();
  std::vector<std::optional<AttackPrediction>> want(targets.size());
  for (std::size_t i = 0; i < targets.size(); ++i) {
    want[i] = f.serving.predict(targets[i]);
  }
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t i = 0; i < targets.size(); ++i) {
        const std::size_t at = (i + static_cast<std::size_t>(t)) %
                               targets.size();
        const auto got = f.serving.predict(
            targets[at], (t % 2) == 0 ? Precision::kF64 : Precision::kF32);
        if ((t % 2) == 0) {
          if (got.has_value() != want[at].has_value() ||
              (got && bits(got->magnitude) != bits(want[at]->magnitude))) {
            failed.store(true);
          }
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_FALSE(failed.load());
}

TEST(ServingModel, UnloadedPredictThrows) {
  ServingModel empty;
  EXPECT_FALSE(empty.loaded());
  EXPECT_THROW((void)empty.predict(1), std::logic_error);
}

}  // namespace
}  // namespace acbm::core
