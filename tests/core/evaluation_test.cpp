#include "core/evaluation.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "stats/descriptive.h"
#include "trace/world.h"

namespace acbm::core {
namespace {

const trace::World& world() {
  static const trace::World w = trace::build_world(trace::small_world_options(31));
  return w;
}

SpatialModelOptions fast_spatial() {
  SpatialModelOptions opts;
  opts.grid_search = false;
  opts.fixed.mlp.max_epochs = 60;
  return opts;
}

TEST(MostActiveFamilies, OrderedByVolume) {
  const auto top = most_active_families(world().dataset, 3);
  ASSERT_EQ(top.size(), 3u);
  // DirtJumper has ~20x the volume of anything else; it must lead.
  EXPECT_EQ(world().dataset.family_names()[top[0]], "DirtJumper");
  EXPECT_GE(world().dataset.attacks_of_family(top[0]).size(),
            world().dataset.attacks_of_family(top[1]).size());
  EXPECT_GE(world().dataset.attacks_of_family(top[1]).size(),
            world().dataset.attacks_of_family(top[2]).size());
}

TEST(EvaluateTemporalSeries, ProducesConsistentVectors) {
  const std::uint32_t dj = world().dataset.family_index("DirtJumper");
  const SeriesEvaluation eval = evaluate_temporal_series(
      world().dataset, world().ip_map, dj, TemporalSeries::kMagnitude);
  ASSERT_FALSE(eval.truth.empty());
  EXPECT_EQ(eval.truth.size(), eval.model_pred.size());
  EXPECT_EQ(eval.truth.size(), eval.same_pred.size());
  EXPECT_EQ(eval.truth.size(), eval.mean_pred.size());
  EXPECT_GT(eval.model_rmse, 0.0);
  EXPECT_EQ(eval.family, "DirtJumper");
}

TEST(EvaluateTemporalSeries, ModelCompetitiveWithBaselines) {
  const std::uint32_t dj = world().dataset.family_index("DirtJumper");
  const SeriesEvaluation eval = evaluate_temporal_series(
      world().dataset, world().ip_map, dj, TemporalSeries::kMagnitude);
  // §VII-A: the data-driven model should not lose to the naive predictors.
  EXPECT_LE(eval.model_rmse, eval.same_rmse * 1.05);
  EXPECT_LE(eval.model_rmse, eval.mean_rmse * 1.05);
}

TEST(EvaluateTemporalSeries, RejectsBadFraction) {
  EXPECT_THROW((void)evaluate_temporal_series(world().dataset, world().ip_map,
                                              0, TemporalSeries::kMagnitude,
                                              {}, 1.5),
               std::invalid_argument);
}

TEST(EvaluateSpatialSeries, DurationEvaluationRuns) {
  const std::uint32_t dj = world().dataset.family_index("DirtJumper");
  const SpatialEvaluation eval =
      evaluate_spatial_series(world().dataset, world().ip_map, dj,
                              SpatialSeries::kDuration, fast_spatial());
  ASSERT_GT(eval.targets_evaluated, 0u);
  ASSERT_FALSE(eval.truth.empty());
  EXPECT_EQ(eval.truth.size(), eval.model_pred.size());
  EXPECT_GT(eval.model_rmse, 0.0);
  // Planted target hardness makes per-target duration predictable: the
  // spatial model must beat the all-history mean baseline.
  EXPECT_LT(eval.model_rmse, eval.mean_rmse * 1.10);
}

TEST(EvaluateSourceDistribution, DistributionsAreNormalizedAggregates) {
  const std::uint32_t dj = world().dataset.family_index("DirtJumper");
  const SourceDistributionEvaluation eval = evaluate_source_distribution(
      world().dataset, world().ip_map, dj, fast_spatial());
  ASSERT_FALSE(eval.per_attack_tv.empty());
  ASSERT_FALSE(eval.ases.empty());
  double truth_total = 0.0;
  for (double f : eval.truth_freq) truth_total += f;
  EXPECT_NEAR(truth_total, 1.0, 0.05);
  for (double tv : eval.per_attack_tv) {
    EXPECT_GE(tv, 0.0);
    EXPECT_LE(tv, 1.0);
  }
}

TEST(EvaluateSourceDistribution, ModelBeatsMeanBaseline) {
  const std::uint32_t dj = world().dataset.family_index("DirtJumper");
  const SourceDistributionEvaluation eval = evaluate_source_distribution(
      world().dataset, world().ip_map, dj, fast_spatial());
  // Fig. 2's claim: source distributions are highly predictable.
  EXPECT_LT(eval.model_rmse, eval.mean_rmse * 1.05);
  EXPECT_LT(eval.model_rmse, 0.5);  // Distributions mostly right.
}

TEST(EvaluateTimestamps, SpatiotemporalWinsOnHour) {
  SpatiotemporalOptions opts;
  opts.spatial.grid_search = false;
  opts.spatial.fixed.mlp.max_epochs = 60;
  const TimestampEvaluation eval =
      evaluate_timestamps(world().dataset, world().ip_map, opts);
  ASSERT_FALSE(eval.truth_hour.empty());
  EXPECT_EQ(eval.truth_hour.size(), eval.st_hour.size());
  EXPECT_EQ(eval.truth_hour.size(), eval.spa_hour.size());
  EXPECT_EQ(eval.truth_hour.size(), eval.tmp_hour.size());
  // §VI-B headline: the spatiotemporal model beats both components.
  EXPECT_LT(eval.rmse_hour_st, eval.rmse_hour_spa * 1.02);
  EXPECT_LT(eval.rmse_hour_st, eval.rmse_hour_tmp * 1.02);
  EXPECT_LT(eval.rmse_day_st, eval.rmse_day_spa * 1.02);
}

TEST(PredictAttacks, ProducesCausalForecastsForTestAttacks) {
  SpatiotemporalOptions opts;
  opts.spatial.grid_search = false;
  opts.spatial.fixed.mlp.max_epochs = 60;
  const auto forecasts =
      predict_attacks(world().dataset, world().ip_map, opts);
  ASSERT_GT(forecasts.size(), 100u);
  const auto [train, test] = world().dataset.split(0.8);
  for (const PredictedAttack& f : forecasts) {
    // Only test attacks are forecast.
    EXPECT_GE(f.attack_index, train.size());
    EXPECT_EQ(world().dataset.attacks()[f.attack_index].start, f.actual_start);
    EXPECT_EQ(world().dataset.attacks()[f.attack_index].target_asn, f.target);
    EXPECT_GT(f.predicted_start, world().dataset.window_start());
  }
  // Median timing error should be well under two days on this trace.
  std::vector<double> errors_h;
  for (const PredictedAttack& f : forecasts) {
    errors_h.push_back(
        std::abs(static_cast<double>(f.actual_start - f.predicted_start)) /
        3600.0);
  }
  EXPECT_LT(stats::median(errors_h), 48.0);
}

TEST(PredictAttacks, SourceRulesCoverActualSources) {
  SpatiotemporalOptions opts;
  opts.spatial.grid_search = false;
  opts.spatial.fixed.mlp.max_epochs = 60;
  const auto forecasts =
      predict_attacks(world().dataset, world().ip_map, opts, 0.8, 0.9);
  double covered = 0.0;
  std::size_t counted = 0;
  for (const PredictedAttack& f : forecasts) {
    if (f.predicted_sources.empty()) continue;
    const auto truth = source_asn_distribution(
        world().dataset.attacks()[f.attack_index], world().ip_map);
    double share = 0.0;
    for (net::Asn asn : f.predicted_sources) {
      const auto it = truth.find(asn);
      if (it != truth.end()) share += it->second;
    }
    covered += share;
    ++counted;
  }
  ASSERT_GT(counted, 50u);
  // Rules built for 90% predicted mass should catch most actual traffic.
  EXPECT_GT(covered / static_cast<double>(counted), 0.7);
}

TEST(PredictAttacks, RejectsBadSourceMass) {
  EXPECT_THROW(
      (void)predict_attacks(world().dataset, world().ip_map, {}, 0.8, 0.0),
      std::invalid_argument);
}

TEST(ComparisonTable, CoversFamiliesAndFeatures) {
  const auto rows = comparison_table(world().dataset, world().ip_map, 3);
  ASSERT_EQ(rows.size(), 9u);  // 3 families x 3 features.
  for (const auto& row : rows) {
    EXPECT_FALSE(row.family.empty());
    EXPECT_TRUE(row.feature == "magnitude" || row.feature == "duration_s" ||
                row.feature == "source_distribution");
  }
}

}  // namespace
}  // namespace acbm::core
