#include "core/robust.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/parallel.h"

namespace acbm::core {
namespace {

// Clears injected faults (and the thread override) when a test returns or
// throws, so one test's configuration cannot leak into the next.
struct FaultGuard {
  ~FaultGuard() {
    FaultInjector::instance().clear();
    set_num_threads(0);
  }
};

TEST(FitError, NamesAreStable) {
  EXPECT_STREQ(to_string(FitError::kSeriesTooShort), "series_too_short");
  EXPECT_STREQ(to_string(FitError::kSingularSystem), "singular_system");
  EXPECT_STREQ(to_string(FitError::kNonconvergence), "nonconvergence");
  EXPECT_STREQ(to_string(FitError::kNonfiniteInput), "nonfinite_input");
  EXPECT_STREQ(to_string(FitError::kWorkerFailed), "worker_failed");
}

TEST(FitFailure, CarriesCodeAndIsAnInvalidArgument) {
  const FitFailure failure(FitError::kSingularSystem, "rank deficient");
  EXPECT_EQ(failure.code(), FitError::kSingularSystem);
  EXPECT_STREQ(failure.what(), "rank deficient");
  // Legacy fallback sites catch std::invalid_argument; FitFailure must land
  // in those handlers.
  try {
    throw FitFailure(FitError::kNonconvergence, "diverged");
  } catch (const std::invalid_argument& e) {
    EXPECT_STREQ(e.what(), "diverged");
  }
}

TEST(FitOutcome, ValueAndFailurePaths) {
  FitOutcome<int> ok(42);
  ASSERT_TRUE(ok.has_value());
  EXPECT_TRUE(static_cast<bool>(ok));
  EXPECT_EQ(*ok, 42);
  EXPECT_EQ(ok.value(), 42);

  const auto bad =
      FitOutcome<int>::failure(FitError::kNonconvergence, "all diverged");
  EXPECT_FALSE(bad.has_value());
  EXPECT_EQ(bad.error(), FitError::kNonconvergence);
  EXPECT_EQ(bad.detail(), "all diverged");
  try {
    (void)bad.value();
    FAIL() << "value() on a failed outcome must throw";
  } catch (const FitFailure& e) {
    EXPECT_EQ(e.code(), FitError::kNonconvergence);
    EXPECT_NE(std::string(e.what()).find("all diverged"), std::string::npos);
  }
}

TEST(Finiteness, AllFiniteAndDropNonfinite) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_TRUE(all_finite(std::vector<double>{}));
  EXPECT_TRUE(all_finite(std::vector<double>{1.0, -2.0, 0.0}));
  EXPECT_FALSE(all_finite(std::vector<double>{1.0, nan}));
  EXPECT_FALSE(all_finite(std::vector<double>{inf, 1.0}));

  std::size_t dropped = 0;
  const std::vector<double> cleaned =
      drop_nonfinite(std::vector<double>{1.0, nan, 2.0, inf, 3.0}, &dropped);
  EXPECT_EQ(dropped, 2u);
  EXPECT_EQ(cleaned, (std::vector<double>{1.0, 2.0, 3.0}));
}

TEST(FitRecordTest, DegradedExcludesPolicyFallbacks) {
  FitRecord plain{"a", FitRung::kArima, std::nullopt, ""};
  EXPECT_FALSE(plain.degraded());
  // Too-short series falling to the mean is policy, not degradation.
  FitRecord policy{"b", FitRung::kMean, FitError::kSeriesTooShort, ""};
  EXPECT_FALSE(policy.degraded());
  FitRecord degraded{"c", FitRung::kAr, FitError::kNonconvergence, ""};
  EXPECT_TRUE(degraded.degraded());
}

TEST(FitReportTest, MergeCountsAndWrite) {
  FitReport sub;
  sub.add({"magnitude", FitRung::kArima, std::nullopt, ""});
  sub.add({"hour", FitRung::kAr, FitError::kNonconvergence, "diverged"});

  FitReport report;
  report.merge("temporal/Blackenergy/", sub);
  report.add({"tree/day", FitRung::kModelTree, std::nullopt, ""});
  ASSERT_EQ(report.size(), 3u);
  EXPECT_EQ(report.records()[0].component, "temporal/Blackenergy/magnitude");
  EXPECT_EQ(report.degraded_count(), 1u);
  ASSERT_EQ(report.degraded().size(), 1u);
  EXPECT_EQ(report.degraded()[0]->component, "temporal/Blackenergy/hour");

  std::ostringstream os;
  report.write(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("3 components"), std::string::npos);
  EXPECT_NE(text.find("1 degraded"), std::string::npos);
  EXPECT_NE(text.find("temporal/Blackenergy/hour"), std::string::npos);
  EXPECT_NE(text.find("rung=ar"), std::string::npos);
  EXPECT_NE(text.find("error=nonconvergence"), std::string::npos);
}

TEST(FitRungTest, PrimaryRungs) {
  EXPECT_TRUE(is_primary_rung(FitRung::kArima));
  EXPECT_TRUE(is_primary_rung(FitRung::kNar));
  EXPECT_TRUE(is_primary_rung(FitRung::kModelTree));
  EXPECT_FALSE(is_primary_rung(FitRung::kAr));
  EXPECT_FALSE(is_primary_rung(FitRung::kSeasonalNaive));
  EXPECT_FALSE(is_primary_rung(FitRung::kMean));
  EXPECT_FALSE(is_primary_rung(FitRung::kNarRetry));
  EXPECT_FALSE(is_primary_rung(FitRung::kPooledLinear));
}

TEST(FaultInjectorTest, SpecParsingAndFiltering) {
  FaultGuard guard;
  FaultInjector& injector = FaultInjector::instance();
  EXPECT_FALSE(injector.fires("temporal.nonfinite", "family=X"));

  injector.configure("temporal.nonfinite:family=DirtJumper;tree.fail");
  EXPECT_TRUE(injector.enabled());
  EXPECT_TRUE(injector.fires("temporal.nonfinite", "family=DirtJumper"));
  EXPECT_FALSE(injector.fires("temporal.nonfinite", "family=Blackenergy"));
  // Entry without a filter fires for any key at that point.
  EXPECT_TRUE(injector.fires("tree.fail", "hour"));
  EXPECT_TRUE(injector.fires("tree.fail", "day"));
  // Points must match exactly; filters are substrings.
  EXPECT_FALSE(injector.fires("tree", "hour"));
  EXPECT_TRUE(injector.fires("temporal.nonfinite", "x/family=DirtJumper/y"));

  injector.clear();
  EXPECT_FALSE(injector.enabled());
  EXPECT_FALSE(injector.fires("tree.fail", "hour"));
}

TEST(FaultInjectorTest, EmptySpecDisablesInjection) {
  FaultGuard guard;
  FaultInjector& injector = FaultInjector::instance();
  injector.configure("tree.fail");
  ASSERT_TRUE(injector.enabled());
  injector.configure("");
  EXPECT_FALSE(injector.enabled());
  EXPECT_FALSE(injector.fires("tree.fail", "hour"));
}

TEST(FaultInjectorTest, UnknownPointsAreInertNotErrors) {
  // An unrecognized point name parses fine and simply never matches any
  // instrumented site — a spec typo degrades to a no-op, not a crash.
  FaultGuard guard;
  FaultInjector& injector = FaultInjector::instance();
  injector.configure("no.such.point:whatever");
  EXPECT_TRUE(injector.enabled());
  EXPECT_FALSE(injector.fires("tree.fail", "hour"));
  EXPECT_FALSE(injector.fires("io.write", "path=/tmp/x"));
  EXPECT_TRUE(injector.fires("no.such.point", "key=whatever"));
}

TEST(FaultInjectorTest, TrailingAndRepeatedSemicolonsAreSkipped) {
  FaultGuard guard;
  FaultInjector& injector = FaultInjector::instance();
  injector.configure("tree.fail:hour;");
  EXPECT_TRUE(injector.fires("tree.fail", "hour"));
  EXPECT_FALSE(injector.fires("tree.fail", "day"));

  injector.configure(";;io.write:spatial;;io.fsync;");
  EXPECT_TRUE(injector.fires("io.write", "path=ckpt/spatial.art"));
  EXPECT_FALSE(injector.fires("io.write", "path=ckpt/tree.art"));
  EXPECT_TRUE(injector.fires("io.fsync", "path=anything"));

  injector.configure(";");
  EXPECT_FALSE(injector.enabled());
}

TEST(FaultInjectorTest, DuplicatePointsWithDifferentFiltersUnion) {
  FaultGuard guard;
  FaultInjector& injector = FaultInjector::instance();
  injector.configure("tree.fail:hour;tree.fail:day");
  EXPECT_TRUE(injector.fires("tree.fail", "hour"));
  EXPECT_TRUE(injector.fires("tree.fail", "day"));
  EXPECT_FALSE(injector.fires("tree.fail", "week"));

  // An unfiltered duplicate widens the point to every key.
  injector.configure("tree.fail:hour;tree.fail");
  EXPECT_TRUE(injector.fires("tree.fail", "week"));
}

TEST(FaultInjectorTest, ColonOnlyFilterMatchesEverything) {
  // "point:" is an entry with an empty filter: an empty string is a
  // substring of every key, so it behaves like the unfiltered form.
  FaultGuard guard;
  FaultInjector& injector = FaultInjector::instance();
  injector.configure("tree.fail:");
  EXPECT_TRUE(injector.fires("tree.fail", "hour"));
  EXPECT_TRUE(injector.fires("tree.fail", ""));
}

TEST(FaultInjectorTest, FireLimitCapsTheBudgetThenDeactivates) {
  FaultGuard guard;
  FaultInjector& injector = FaultInjector::instance();
  injector.configure("tree.fail#2");
  EXPECT_TRUE(injector.fires("tree.fail", "hour"));
  EXPECT_TRUE(injector.fires("tree.fail", "day"));
  // Budget spent: the rule stays configured but never fires again.
  EXPECT_FALSE(injector.fires("tree.fail", "hour"));
  EXPECT_TRUE(injector.enabled());
}

TEST(FaultInjectorTest, SpecRoundTripsCanonicallyWithFreshBudgets) {
  FaultGuard guard;
  FaultInjector& injector = FaultInjector::instance();
  injector.configure("worker.exit:shard=spatial#1;lease.expire;tree.fail:hour");
  EXPECT_EQ(injector.spec(),
            "worker.exit:shard=spatial#1;lease.expire;tree.fail:hour");
  ASSERT_TRUE(injector.fires("worker.exit", "worker=0/shard=spatial"));
  ASSERT_FALSE(injector.fires("worker.exit", "worker=1/shard=spatial"));
  // spec() does not serialize consumed budgets: reconfiguring from it (the
  // coordinator-to-worker handoff) restores a fresh fire budget.
  injector.configure(injector.spec());
  EXPECT_TRUE(injector.fires("worker.exit", "worker=1/shard=spatial"));
}

TEST(FaultInjectorTest, MalformedSpecsThrowTypedErrors) {
  FaultGuard guard;
  FaultInjector& injector = FaultInjector::instance();
  EXPECT_THROW(injector.configure("tree.fail#"), FaultSpecError);
  EXPECT_THROW(injector.configure("tree.fail#x"), FaultSpecError);
  EXPECT_THROW(injector.configure("tree.fail#2x"), FaultSpecError);
  EXPECT_THROW(injector.configure("tree.fail#-1"), FaultSpecError);
  EXPECT_THROW(injector.configure("tree.fail#0"), FaultSpecError);
  EXPECT_THROW(injector.configure(":hour"), FaultSpecError);
  EXPECT_THROW(injector.configure("#1"), FaultSpecError);
  // FaultSpecError is an invalid_argument: the CLI maps it to exit 2.
  try {
    injector.configure("tree.fail#0");
    FAIL() << "limit 0 must throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("limit 0"), std::string::npos);
  }
}

TEST(FaultInjectorTest, RejectedSpecLeavesPriorRulesActive) {
  FaultGuard guard;
  FaultInjector& injector = FaultInjector::instance();
  injector.configure("tree.fail:hour");
  EXPECT_THROW(injector.configure("io.write#bad"), FaultSpecError);
  EXPECT_TRUE(injector.fires("tree.fail", "hour"));
  EXPECT_FALSE(injector.fires("io.write", "path=x"));
}

TEST(FaultInjectorTest, ProcessLevelPointsParseAndFilter) {
  FaultGuard guard;
  FaultInjector& injector = FaultInjector::instance();
  injector.configure(
      "worker.spawn:worker=1;worker.exit:worker=0/shard=tree;"
      "lease.expire:shard=spatial;heartbeat.drop:worker=2");
  EXPECT_TRUE(injector.fires("worker.spawn", "worker=1"));
  EXPECT_FALSE(injector.fires("worker.spawn", "worker=2"));
  EXPECT_TRUE(injector.fires("worker.exit", "worker=0/shard=tree"));
  EXPECT_FALSE(injector.fires("worker.exit", "worker=0/shard=spatial"));
  EXPECT_TRUE(injector.fires("lease.expire", "shard=spatial"));
  EXPECT_TRUE(injector.fires("heartbeat.drop", "worker=2"));
  EXPECT_FALSE(injector.fires("heartbeat.drop", "worker=0"));
}

TEST(FaultInjectorTest, WorkerFaultPropagatesThroughPool) {
  FaultGuard guard;
  FaultInjector::instance().configure("parallel.worker:index=13");
  for (std::size_t threads : {1u, 4u}) {
    set_num_threads(threads);
    try {
      parallel_for(0, 64, [](std::size_t) {});
      FAIL() << "injected worker fault must propagate (" << threads
             << " threads)";
    } catch (const FitFailure& e) {
      EXPECT_EQ(e.code(), FitError::kWorkerFailed);
      EXPECT_NE(std::string(e.what()).find("index=13"), std::string::npos);
    }
  }
  // The pool survives the faulted batch once injection is off.
  FaultInjector::instance().clear();
  std::vector<std::size_t> out = parallel_map(8, [](std::size_t i) {
    return i;
  });
  ASSERT_EQ(out.size(), 8u);
  EXPECT_EQ(out[7], 7u);
}

}  // namespace
}  // namespace acbm::core
