// Degenerate inputs and injected faults must walk the degradation ladder to
// a documented rung — never crash. Covers every rung of each ladder plus the
// acceptance scenario: a faulted family degrades, everything else does not.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <set>
#include <string>
#include <vector>

#include "core/parallel.h"
#include "core/pipeline.h"
#include "core/robust.h"
#include "core/spatial_model.h"
#include "core/spatiotemporal_model.h"
#include "core/temporal_model.h"
#include "nn/grid_search.h"
#include "trace/world.h"
#include "ts/arma.h"

namespace acbm::core {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

// Clears injected faults and the thread override on exit so a failing test
// cannot poison later ones.
struct FaultGuard {
  ~FaultGuard() {
    FaultInjector::instance().clear();
    set_num_threads(0);
  }
};

FamilySeries uniform_family_series(const std::vector<double>& xs) {
  FamilySeries fs;
  fs.magnitude = xs;
  fs.activity = xs;
  fs.norm_magnitude = xs;
  fs.source_coeff = xs;
  fs.interval_s = xs;
  fs.hour = xs;
  fs.day = xs;
  fs.duration_s = xs;
  return fs;
}

const FitRecord* find_record(const FitReport& report,
                             const std::string& component) {
  for (const FitRecord& record : report.records()) {
    if (record.component == component) return &record;
  }
  return nullptr;
}

TEST(TemporalDegradation, ConstantSeriesNeverCrashes) {
  // A constant series is the classic ARIMA killer. The ridge-stabilized
  // normal equations keep the primary rung alive here; what matters is that
  // the fit lands on a documented rung, forecasts the constant, and the
  // report marks nothing degraded.
  const std::vector<double> xs(64, 5.0);
  TemporalModel model;
  model.fit(uniform_family_series(xs));
  EXPECT_TRUE(model.fitted());
  EXPECT_NEAR(model.forecast_next(TemporalSeries::kMagnitude, xs), 5.0, 1e-6);
  const auto preds =
      model.one_step_predictions(TemporalSeries::kMagnitude, xs, 32);
  for (double p : preds) EXPECT_TRUE(std::isfinite(p));
  ASSERT_EQ(model.fit_report().size(), kTemporalSeriesCount);
  const FitRecord* record = find_record(model.fit_report(), "magnitude");
  ASSERT_NE(record, nullptr);
  EXPECT_FALSE(record->degraded());
}

TEST(TemporalDegradation, ArmaFitFailuresAreTyped) {
  ts::ArmaModel model({2, 1});
  try {
    model.fit(std::vector<double>{1.0, 2.0, 3.0});
    FAIL() << "short-series fit must throw";
  } catch (const FitFailure& e) {
    EXPECT_EQ(e.code(), FitError::kSeriesTooShort);
  }
  std::vector<double> xs(40, 0.0);
  for (std::size_t i = 0; i < xs.size(); ++i) xs[i] = std::sin(0.3 * i);
  xs[17] = kNan;
  try {
    model.fit(xs);
    FAIL() << "non-finite input must throw";
  } catch (const FitFailure& e) {
    EXPECT_EQ(e.code(), FitError::kNonfiniteInput);
  }
}

TEST(TemporalDegradation, AllNanSeriesLandsOnMeanWithNonfiniteError) {
  const std::vector<double> xs(40, kNan);
  TemporalModel model;
  model.fit(uniform_family_series(xs));
  EXPECT_EQ(model.rung(TemporalSeries::kHour), FitRung::kMean);
  const double f = model.forecast_next(TemporalSeries::kHour, xs);
  EXPECT_TRUE(std::isfinite(f));

  const FitRecord* record = find_record(model.fit_report(), "hour");
  ASSERT_NE(record, nullptr);
  ASSERT_TRUE(record->error.has_value());
  EXPECT_EQ(*record->error, FitError::kNonfiniteInput);
  EXPECT_TRUE(record->degraded());
}

TEST(TemporalDegradation, RepairedSeriesSkipsArimaAndLandsOnAr) {
  // A corrupt-but-long series is stripped of NaNs; the stripped series no
  // longer has equal spacing, so the primary ARIMA rung is skipped and the
  // fit starts at the conservative AR rung.
  std::vector<double> xs;
  for (int t = 0; t < 80; ++t) {
    xs.push_back(10.0 + std::sin(0.4 * t) + 0.1 * std::cos(1.7 * t));
  }
  for (std::size_t i = 0; i < xs.size(); i += 7) xs[i] = kNan;
  TemporalModel model;
  model.fit(uniform_family_series(xs));
  EXPECT_EQ(model.rung(TemporalSeries::kMagnitude), FitRung::kAr);
  EXPECT_TRUE(std::isfinite(model.forecast_next(TemporalSeries::kMagnitude, xs)));

  const FitRecord* record = find_record(model.fit_report(), "magnitude");
  ASSERT_NE(record, nullptr);
  ASSERT_TRUE(record->error.has_value());
  EXPECT_EQ(*record->error, FitError::kNonfiniteInput);
  EXPECT_TRUE(record->degraded());
}

TEST(TemporalDegradation, ShortSeriesIsPolicyNotDegradation) {
  const std::vector<double> xs{10.0, 12.0, 8.0};
  TemporalModel model;
  model.fit(uniform_family_series(xs));
  EXPECT_EQ(model.rung(TemporalSeries::kMagnitude), FitRung::kMean);
  const FitRecord* record = find_record(model.fit_report(), "magnitude");
  ASSERT_NE(record, nullptr);
  ASSERT_TRUE(record->error.has_value());
  EXPECT_EQ(*record->error, FitError::kSeriesTooShort);
  EXPECT_FALSE(record->degraded());
  EXPECT_EQ(model.fit_report().degraded_count(), 0u);
}

struct SpatialFixture {
  trace::World world = trace::build_world(trace::small_world_options(23));
  TargetSeries series;

  SpatialFixture() {
    series = extract_target_series(world.dataset,
                                   world.dataset.target_asns().front());
  }

  [[nodiscard]] SpatialModelOptions fast_options() const {
    SpatialModelOptions opts;
    opts.grid_search = false;
    opts.fixed.mlp.max_epochs = 60;
    return opts;
  }
};

TEST(SpatialDegradation, InjectedNonconvergenceTriggersSeededRetry) {
  FaultGuard guard;
  SpatialFixture fx;
  // Fail every first attempt; the perturbed-seed retry must succeed.
  FaultInjector::instance().configure("nar.nonconvergence:attempt=0");
  SpatialModel model(fx.fast_options());
  model.fit(fx.series, fx.world.dataset, fx.world.ip_map);
  ASSERT_TRUE(model.fitted());
  EXPECT_EQ(model.rung(SpatialSeries::kDuration), FitRung::kNarRetry);
  EXPECT_EQ(model.rung(SpatialSeries::kHour), FitRung::kNarRetry);
  const FitRecord* record = find_record(model.fit_report(), "duration");
  ASSERT_NE(record, nullptr);
  EXPECT_TRUE(record->degraded());
  ASSERT_TRUE(record->error.has_value());
  EXPECT_EQ(*record->error, FitError::kNonconvergence);
  EXPECT_TRUE(std::isfinite(
      model.forecast_next(SpatialSeries::kDuration, fx.series.duration_s)));
}

TEST(SpatialDegradation, PersistentNonconvergenceFallsToAr) {
  FaultGuard guard;
  SpatialFixture fx;
  // No attempt filter: every NAR attempt fails, landing on the AR rung.
  FaultInjector::instance().configure("nar.nonconvergence");
  SpatialModel model(fx.fast_options());
  model.fit(fx.series, fx.world.dataset, fx.world.ip_map);
  ASSERT_TRUE(model.fitted());
  EXPECT_EQ(model.rung(SpatialSeries::kDuration), FitRung::kAr);
  EXPECT_TRUE(std::isfinite(
      model.forecast_next(SpatialSeries::kDuration, fx.series.duration_s)));
  const auto preds = model.one_step_predictions(
      SpatialSeries::kHour, fx.series.hour, fx.series.hour.size() / 2);
  for (double p : preds) EXPECT_TRUE(std::isfinite(p));
}

TEST(SpatialDegradation, EmptyHistoryPredictsFromFallback) {
  SpatialFixture fx;
  SpatialModel model(fx.fast_options());
  model.fit(fx.series, fx.world.dataset, fx.world.ip_map);
  // Empty target history must not crash any rung.
  const std::vector<double> empty;
  EXPECT_TRUE(std::isfinite(model.forecast_next(SpatialSeries::kDuration, empty)));
  EXPECT_TRUE(std::isfinite(model.forecast_next(SpatialSeries::kHour, empty)));
}

TEST(GridSearchDegradation, AllCandidatesFailedReturnsTypedError) {
  // Constant series: every candidate trains but forecasts are degenerate on
  // the holdout; with delays longer than the series nothing fits at all.
  const std::vector<double> tiny{1.0, 2.0, 3.0, 4.0, 5.0};
  nn::NarGridOptions opts;
  opts.delay_grid = {50};
  opts.hidden_grid = {2};
  const auto result = nn::nar_grid_search(tiny, opts);
  ASSERT_FALSE(result.has_value());
  EXPECT_EQ(result.error(), FitError::kSeriesTooShort);
}

SpatiotemporalOptions fast_st_options() {
  SpatiotemporalOptions opts;
  opts.spatial.grid_search = false;
  opts.spatial.fixed.mlp.max_epochs = 60;
  return opts;
}

TEST(TreeDegradation, InjectedTreeFaultFallsToPooledLinear) {
  FaultGuard guard;
  trace::World world = trace::build_world(trace::small_world_options(29));
  FaultInjector::instance().configure("tree.fail:hour");
  SpatiotemporalModel model(fast_st_options());
  model.fit(world.dataset, world.ip_map);
  ASSERT_TRUE(model.fitted());

  const FitRecord* hour = find_record(model.fit_report(), "tree/hour");
  ASSERT_NE(hour, nullptr);
  EXPECT_EQ(hour->rung, FitRung::kPooledLinear);
  EXPECT_TRUE(hour->degraded());
  const FitRecord* day = find_record(model.fit_report(), "tree/day");
  ASSERT_NE(day, nullptr);
  EXPECT_EQ(day->rung, FitRung::kModelTree);
  EXPECT_FALSE(day->degraded());

  StFeatures f;
  f.tmp_hour = 14.0;
  f.spa_hour = 15.0;
  f.tmp_interval_s = 3600.0;
  f.spa_interval_s = 7200.0;
  f.prev_hour = 13.0;
  f.prev_day = 30.0;
  f.avg_magnitude = 80.0;
  const double hour_pred = model.predict_hour(f);
  EXPECT_GE(hour_pred, 0.0);
  EXPECT_LT(hour_pred, 24.0);
  EXPECT_TRUE(std::isfinite(model.predict_day(f)));
}

TEST(PipelineDegradation, SingleAttackFamilyAndUnknownTargetNeverCrash) {
  // A dataset with one single-attack family and one target: every ladder
  // bottoms out on a policy rung and prediction still works end to end.
  std::vector<trace::Attack> attacks;
  trace::Attack attack;
  attack.id = 1;
  attack.family = 0;
  attack.target_ip = net::parse_ipv4("10.0.0.1");
  attack.target_asn = 7;
  attack.start = 1000;
  attack.duration_s = 60.0;
  attacks.push_back(attack);
  const trace::Dataset dataset({"lonely"}, attacks, {}, 0);

  AdversaryModel model(fast_st_options());
  model.fit(dataset, net::IpToAsnMap{});
  EXPECT_TRUE(model.fitted());
  // Nothing fit at a primary rung, but nothing degraded either: there was
  // never enough data to attempt a primary fit.
  EXPECT_EQ(model.fit_report().degraded_count(), 0u);
  EXPECT_GT(model.fit_report().size(), 0u);
  // Unknown target: no history, no prediction, no crash.
  EXPECT_FALSE(model.predict_next_attack(999).has_value());
  // Known target with a one-attack history still produces finite output.
  const auto pred = model.predict_next_attack(7);
  if (pred) {
    EXPECT_TRUE(std::isfinite(pred->magnitude));
    EXPECT_TRUE(std::isfinite(pred->hour));
  }
}

TEST(PipelineDegradation, FaultedFamilyDegradesExactlyThatFamily) {
  // The acceptance scenario: corrupt one family's series via ACBM_FAULTS
  // semantics; the full fit+predict run completes and the report names the
  // degraded rungs for exactly the faulted components.
  FaultGuard guard;
  trace::World world = trace::build_world(trace::small_world_options(29));
  const std::string faulted = "DirtJumper";

  // Baseline: whatever degrades without faults degrades for data reasons and
  // is excluded from the comparison.
  std::set<std::string> baseline;
  {
    AdversaryModel clean(fast_st_options());
    clean.fit(world.dataset, world.ip_map);
    for (const FitRecord* record : clean.fit_report().degraded()) {
      baseline.insert(record->component);
    }
  }

  FaultInjector::instance().configure("temporal.nonfinite:family=" + faulted);
  AdversaryModel model(fast_st_options());
  model.fit(world.dataset, world.ip_map);
  ASSERT_TRUE(model.fitted());

  const std::string prefix = "temporal/" + faulted + "/";
  std::size_t newly_degraded = 0;
  for (const FitRecord* record : model.fit_report().degraded()) {
    if (baseline.count(record->component) > 0) continue;
    ++newly_degraded;
    EXPECT_EQ(record->component.rfind(prefix, 0), 0u)
        << "unexpected degraded component " << record->component;
    EXPECT_FALSE(is_primary_rung(record->rung));
  }
  ASSERT_GT(newly_degraded, 0u);
  // The full predict path still runs on the degraded model.
  const net::Asn busiest = world.dataset.target_asns().front();
  const auto pred = model.predict_next_attack(busiest);
  ASSERT_TRUE(pred.has_value());
  EXPECT_TRUE(std::isfinite(pred->magnitude));
  EXPECT_TRUE(std::isfinite(pred->duration_s));
  EXPECT_GE(pred->hour, 0.0);
  EXPECT_LT(pred->hour, 24.0);
}

}  // namespace
}  // namespace acbm::core
