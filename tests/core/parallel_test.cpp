#include "core/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <numeric>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/features.h"
#include "core/spatial_model.h"
#include "nn/grid_search.h"
#include "stats/rng.h"
#include "trace/world.h"

namespace acbm::core {
namespace {

// Restores automatic thread resolution when a test returns or throws, so a
// failing test cannot leak its thread-count override into later tests.
struct ThreadCountGuard {
  ~ThreadCountGuard() { set_num_threads(0); }
};

TEST(ThreadPool, StartupAndShutdown) {
  for (std::size_t threads : {1u, 2u, 7u}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.size(), threads);
    std::atomic<std::size_t> hits{0};
    pool.for_each_index(0, 100, [&](std::size_t) { hits.fetch_add(1); });
    EXPECT_EQ(hits.load(), 100u);
  }
  // Zero is clamped to one worker.
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
}

TEST(ThreadPool, EveryIndexVisitedExactlyOnce) {
  ThreadPool pool(4);
  std::vector<int> visits(1000, 0);
  pool.for_each_index(0, visits.size(),
                      [&](std::size_t i) { visits[i] += 1; }, 16);
  for (std::size_t i = 0; i < visits.size(); ++i) {
    EXPECT_EQ(visits[i], 1) << "index " << i;
  }
}

TEST(ThreadPool, EmptyRangeIsANoOp) {
  ThreadPool pool(3);
  std::atomic<std::size_t> hits{0};
  pool.for_each_index(5, 5, [&](std::size_t) { hits.fetch_add(1); });
  pool.for_each_index(0, 0, [&](std::size_t) { hits.fetch_add(1); });
  EXPECT_EQ(hits.load(), 0u);
}

TEST(ThreadPool, WorkerExceptionPropagatesToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.for_each_index(0, 256,
                          [](std::size_t i) {
                            if (i == 97) {
                              throw std::runtime_error("boom at 97");
                            }
                          }),
      std::runtime_error);
  // The pool survives a throwing batch and accepts new work.
  std::atomic<std::size_t> hits{0};
  pool.for_each_index(0, 10, [&](std::size_t) { hits.fetch_add(1); });
  EXPECT_EQ(hits.load(), 10u);
}

TEST(ParallelFor, NestedFanOutFallsBackToSerial) {
  ThreadCountGuard guard;
  set_num_threads(4);
  std::vector<double> sums(8, 0.0);
  parallel_for(0, sums.size(), [&](std::size_t outer) {
    EXPECT_TRUE(ThreadPool::on_worker_thread());
    // Nested call: must run inline on this worker without deadlocking.
    parallel_for(0, 100, [&](std::size_t inner) {
      sums[outer] += static_cast<double>(inner);
    });
  });
  for (double s : sums) EXPECT_DOUBLE_EQ(s, 4950.0);
}

TEST(ParallelFor, ExceptionPropagatesThroughSharedPool) {
  ThreadCountGuard guard;
  for (std::size_t threads : {1u, 4u}) {
    set_num_threads(threads);
    EXPECT_THROW(parallel_for(0, 64,
                              [](std::size_t i) {
                                if (i == 13) {
                                  throw std::invalid_argument("bad index");
                                }
                              }),
                 std::invalid_argument);
  }
}

TEST(ParallelMap, ResultsAreIndexOrdered) {
  ThreadCountGuard guard;
  for (std::size_t threads : {1u, 3u, 8u}) {
    set_num_threads(threads);
    const std::vector<std::size_t> out =
        parallel_map(100, [](std::size_t i) { return i * i; });
    ASSERT_EQ(out.size(), 100u);
    for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
  }
}

TEST(ParallelRuntime, EnvVariableSetsThreadCount) {
  ThreadCountGuard guard;
  set_num_threads(0);
  ASSERT_EQ(setenv("ACBM_THREADS", "5", 1), 0);
  EXPECT_EQ(num_threads(), 5u);
  // An explicit override beats the environment.
  set_num_threads(2);
  EXPECT_EQ(num_threads(), 2u);
  ASSERT_EQ(unsetenv("ACBM_THREADS"), 0);
  set_num_threads(0);
  EXPECT_GE(num_threads(), 1u);
}

// --- Serial-vs-parallel bit-identity -------------------------------------
//
// The determinism contract: the same inputs produce byte-identical outputs
// at every thread count. Each test runs the serial path (1 thread) and two
// parallel widths and compares exactly — no tolerances.

std::vector<double> synthetic_series(std::size_t n) {
  stats::Rng rng(7);
  std::vector<double> xs(n);
  for (std::size_t i = 0; i < n; ++i) {
    xs[i] = std::sin(0.31 * static_cast<double>(i)) + 0.1 * rng.normal();
  }
  return xs;
}

TEST(ParallelDeterminism, NarGridSearchBitIdentical) {
  ThreadCountGuard guard;
  const std::vector<double> series = synthetic_series(80);
  nn::NarGridOptions opts;
  opts.delay_grid = {1, 2, 3};
  opts.hidden_grid = {2, 4};
  opts.mlp.max_epochs = 60;

  std::vector<std::string> saved;
  std::vector<double> rmse;
  for (std::size_t threads : {1u, 3u, 8u}) {
    set_num_threads(threads);
    const auto result = nn::nar_grid_search(series, opts);
    ASSERT_TRUE(result.has_value()) << threads << " threads";
    std::ostringstream os;
    result->model.save(os);
    saved.push_back(os.str());
    rmse.push_back(result->validation_rmse);
  }
  EXPECT_EQ(saved[1], saved[0]);
  EXPECT_EQ(saved[2], saved[0]);
  EXPECT_EQ(rmse[1], rmse[0]);
  EXPECT_EQ(rmse[2], rmse[0]);
}

TEST(ParallelDeterminism, SpatialFitBitIdentical) {
  ThreadCountGuard guard;
  const trace::World world = trace::build_world(trace::small_world_options(23));
  const net::Asn busiest = world.dataset.target_asns().front();
  const TargetSeries series = extract_target_series(world.dataset, busiest);

  SpatialModelOptions opts;
  opts.grid_search = false;  // Grid determinism is covered above; keep fast.
  opts.fixed.mlp.max_epochs = 60;

  std::vector<std::string> saved;
  for (std::size_t threads : {1u, 3u, 8u}) {
    set_num_threads(threads);
    SpatialModel model(opts);
    model.fit(series, world.dataset, world.ip_map);
    ASSERT_TRUE(model.fitted());
    std::ostringstream os;
    model.save(os);
    saved.push_back(os.str());
  }
  EXPECT_EQ(saved[1], saved[0]);
  EXPECT_EQ(saved[2], saved[0]);
}

TEST(ParallelDeterminism, FaultedSpatialFitBitIdentical) {
  // Fault injection composes with the determinism contract: faults are keyed
  // by fault-point name, not RNG draws or execution order, so a faulted fit
  // (forced NAR retry on every series) is byte-identical at every width.
  ThreadCountGuard guard;
  struct FaultGuard {
    ~FaultGuard() { FaultInjector::instance().clear(); }
  } fault_guard;
  FaultInjector::instance().configure("nar.nonconvergence:attempt=0");

  const trace::World world = trace::build_world(trace::small_world_options(23));
  const net::Asn busiest = world.dataset.target_asns().front();
  const TargetSeries series = extract_target_series(world.dataset, busiest);

  SpatialModelOptions opts;
  opts.grid_search = false;
  opts.fixed.mlp.max_epochs = 60;

  std::vector<std::string> saved;
  std::vector<std::string> reports;
  for (std::size_t threads : {1u, 3u, 8u}) {
    set_num_threads(threads);
    SpatialModel model(opts);
    model.fit(series, world.dataset, world.ip_map);
    ASSERT_TRUE(model.fitted());
    EXPECT_EQ(model.rung(SpatialSeries::kDuration), FitRung::kNarRetry);
    std::ostringstream os;
    model.save(os);
    saved.push_back(os.str());
    std::ostringstream ro;
    model.fit_report().write(ro);
    reports.push_back(ro.str());
  }
  EXPECT_EQ(saved[1], saved[0]);
  EXPECT_EQ(saved[2], saved[0]);
  EXPECT_EQ(reports[1], reports[0]);
  EXPECT_EQ(reports[2], reports[0]);
}

TEST(ParallelDeterminism, BuildWorldBitIdentical) {
  ThreadCountGuard guard;
  std::vector<trace::World> worlds;
  for (std::size_t threads : {1u, 3u, 8u}) {
    set_num_threads(threads);
    worlds.push_back(trace::build_world(trace::small_world_options(31)));
  }
  const auto& base = worlds[0].dataset;
  for (std::size_t w = 1; w < worlds.size(); ++w) {
    const auto& other = worlds[w].dataset;
    ASSERT_EQ(other.attacks().size(), base.attacks().size());
    for (std::size_t i = 0; i < base.attacks().size(); ++i) {
      const trace::Attack& a = base.attacks()[i];
      const trace::Attack& b = other.attacks()[i];
      ASSERT_EQ(b.id, a.id) << "attack " << i;
      ASSERT_EQ(b.family, a.family) << "attack " << i;
      ASSERT_EQ(b.target_ip.value, a.target_ip.value) << "attack " << i;
      ASSERT_EQ(b.target_asn, a.target_asn) << "attack " << i;
      ASSERT_EQ(b.start, a.start) << "attack " << i;
      ASSERT_EQ(b.duration_s, a.duration_s) << "attack " << i;
      ASSERT_EQ(b.bots.size(), a.bots.size()) << "attack " << i;
      for (std::size_t k = 0; k < a.bots.size(); ++k) {
        ASSERT_EQ(b.bots[k].value, a.bots[k].value)
            << "attack " << i << " bot " << k;
      }
    }
    ASSERT_EQ(other.snapshots().size(), base.snapshots().size());
    for (std::size_t i = 0; i < base.snapshots().size(); ++i) {
      ASSERT_EQ(other.snapshots()[i].ts, base.snapshots()[i].ts);
      ASSERT_EQ(other.snapshots()[i].family, base.snapshots()[i].family);
      ASSERT_EQ(other.snapshots()[i].active_bots,
                base.snapshots()[i].active_bots);
    }
  }
}

TEST(ParallelDeterminism, RngSubstreamsAreOrderIndependent) {
  const stats::Rng parent(42);
  stats::Rng a = parent.substream(3);
  stats::Rng a_again = parent.substream(3);
  EXPECT_EQ(a.uniform_int(0, 1'000'000'000),
            a_again.uniform_int(0, 1'000'000'000));
  // Distinct substreams diverge.
  stats::Rng a2 = parent.substream(3);
  stats::Rng b2 = parent.substream(9);
  EXPECT_NE(a2.uniform_int(0, 1'000'000'000),
            b2.uniform_int(0, 1'000'000'000));
}

}  // namespace
}  // namespace acbm::core
