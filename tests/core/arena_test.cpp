// Unit tests for the chunked bump arena: alignment, mark/rewind LIFO
// semantics, chunk reuse, peak accounting, and the process-wide peak gauge.
// Labeled `parallel` so the TSan sweep exercises the process-peak atomic
// from concurrent per-task arenas.
#include "core/arena.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/observe.h"
#include "core/parallel.h"

namespace acbm::core {
namespace {

bool aligned64(const void* p) {
  return reinterpret_cast<std::uintptr_t>(p) % Arena::kAlignment == 0;
}

TEST(ArenaTest, AllocationsAreAlignedAndDisjoint) {
  Arena arena;
  const auto a = arena.alloc_span<double>(7);
  const auto b = arena.alloc_span<float>(3);
  const auto c = arena.alloc_span<std::uint8_t>(1);
  ASSERT_EQ(a.size(), 7u);
  ASSERT_EQ(b.size(), 3u);
  ASSERT_EQ(c.size(), 1u);
  EXPECT_TRUE(aligned64(a.data()));
  EXPECT_TRUE(aligned64(b.data()));
  EXPECT_TRUE(aligned64(c.data()));

  // Writing one span must not disturb another.
  for (double& v : a) v = 1.0;
  for (float& v : b) v = 2.0f;
  c[0] = 3;
  for (double v : a) EXPECT_EQ(v, 1.0);
  for (float v : b) EXPECT_EQ(v, 2.0f);
  EXPECT_EQ(c[0], 3);
}

TEST(ArenaTest, ZeroSizeAllocationIsEmpty) {
  Arena arena;
  EXPECT_TRUE(arena.alloc_span<double>(0).empty());
  EXPECT_EQ(arena.bytes_in_use(), 0u);
}

TEST(ArenaTest, MarkRewindReclaimsBytes) {
  Arena arena;
  (void)arena.alloc_span<double>(16);
  const std::size_t base = arena.bytes_in_use();
  EXPECT_EQ(base, 16 * sizeof(double));

  const Arena::Mark m = arena.mark();
  (void)arena.alloc_span<double>(1000);
  (void)arena.alloc_span<float>(500);
  EXPECT_GT(arena.bytes_in_use(), base);
  arena.rewind(m);
  EXPECT_EQ(arena.bytes_in_use(), base);

  // The space freed by rewind is bump-allocatable again.
  const auto again = arena.alloc_span<double>(1000);
  ASSERT_EQ(again.size(), 1000u);
  EXPECT_TRUE(aligned64(again.data()));
}

TEST(ArenaTest, NestedMarksRewindInLifoOrder) {
  Arena arena;
  const Arena::Mark outer = arena.mark();
  (void)arena.alloc_span<double>(10);
  const Arena::Mark inner = arena.mark();
  (void)arena.alloc_span<double>(20);
  arena.rewind(inner);
  EXPECT_EQ(arena.bytes_in_use(), 10 * sizeof(double));
  arena.rewind(outer);
  EXPECT_EQ(arena.bytes_in_use(), 0u);
}

TEST(ArenaTest, ResetKeepsChunksForReuse) {
  Arena arena;
  (void)arena.alloc_span<double>(4096);
  const std::size_t reserved = arena.bytes_reserved();
  EXPECT_GT(reserved, 0u);
  arena.reset();
  EXPECT_EQ(arena.bytes_in_use(), 0u);
  // Same-shape reallocation after reset must not grow the reservation.
  (void)arena.alloc_span<double>(4096);
  EXPECT_EQ(arena.bytes_reserved(), reserved);
}

TEST(ArenaTest, OversizedRequestGetsDedicatedChunk) {
  Arena arena(1024);  // Tiny first chunk.
  const auto big = arena.alloc_span<double>(1 << 18);  // 2 MiB request.
  ASSERT_EQ(big.size(), std::size_t{1} << 18);
  EXPECT_TRUE(aligned64(big.data()));
  big[0] = 1.0;
  big[big.size() - 1] = 2.0;
  EXPECT_GE(arena.bytes_reserved(), big.size_bytes());

  // The arena keeps working after the oversized chunk.
  const auto small = arena.alloc_span<float>(8);
  EXPECT_EQ(small.size(), 8u);
}

TEST(ArenaTest, PeakTracksHighWaterAcrossRewinds) {
  Arena arena;
  const Arena::Mark m = arena.mark();
  (void)arena.alloc_span<double>(500);
  const std::size_t high = arena.bytes_in_use();
  arena.rewind(m);
  (void)arena.alloc_span<double>(10);
  EXPECT_EQ(arena.bytes_peak(), high);
  EXPECT_GE(Arena::process_bytes_peak(), high);
}

TEST(ArenaTest, ProcessPeakGaugeExportedWhenObserving) {
  namespace observe = acbm::core::observe;
  const bool was_enabled = observe::enabled();
  observe::set_enabled(true);
  // The gauge only fires when the process-wide peak grows, and earlier
  // tests raised it with observability off — so allocate past it.
  const std::size_t want_bytes = Arena::process_bytes_peak() + 4096;
  {
    Arena arena;
    (void)arena.alloc_span<std::uint8_t>(want_bytes);
  }
  const double gauge =
      observe::Metrics::instance().gauge("arena.bytes_peak").value();
  observe::set_enabled(was_enabled);
  EXPECT_GE(gauge, static_cast<double>(want_bytes));
  EXPECT_GE(static_cast<double>(Arena::process_bytes_peak()), gauge);
}

TEST(ArenaTest, ConcurrentArenasKeepProcessPeakMonotonic) {
  // One arena per task, many tasks in flight: the only shared state is the
  // process peak atomic, which the TSan sweep checks here.
  const std::size_t before = Arena::process_bytes_peak();
  parallel_for(0, 32, [](std::size_t i) {
    Arena arena;
    const auto scratch = arena.alloc_span<double>(256 + 16 * i);
    for (double& v : scratch) v = static_cast<double>(i);
    const Arena::Mark m = arena.mark();
    (void)arena.alloc_span<float>(512);
    arena.rewind(m);
  });
  EXPECT_GE(Arena::process_bytes_peak(),
            before);  // Monotone across concurrent updates.
  EXPECT_GE(Arena::process_bytes_peak(), (256 + 16 * 31) * sizeof(double));
}

}  // namespace
}  // namespace acbm::core
