// Property tests for the --precision f32 serving path: every f32 view must
// agree with its fitted f64 source model within the documented relative
// error bound (DESIGN.md §6), and the InferenceView must follow the exact
// same degradation ladders — structural decisions (tree routing, ladder
// rung selection, history repair) are taken in f64, so only leaf/filter
// arithmetic may differ.
#include "core/inference.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <span>
#include <stdexcept>
#include <vector>

#include "core/evaluation.h"
#include "core/spatiotemporal_model.h"
#include "nn/inference_f32.h"
#include "nn/nar.h"
#include "stats/matrix.h"
#include "stats/rng.h"
#include "trace/world.h"
#include "tree/model_tree.h"
#include "ts/arima.h"

namespace acbm::core {
namespace {

/// The documented f32-vs-f64 forecast bound: |f32 - f64| must stay within
/// this fraction of max(1, |f64|) (absolute near zero, relative elsewhere).
constexpr double kF32RelErrorBound = 1e-3;

void expect_within_bound(double f32_val, double f64_val) {
  ASSERT_TRUE(std::isfinite(f32_val)) << "f32 path produced " << f32_val;
  EXPECT_LE(std::abs(f32_val - f64_val),
            kF32RelErrorBound * std::max(1.0, std::abs(f64_val)))
      << "f32 " << f32_val << " vs f64 " << f64_val;
}

/// Mean-reverting level + seasonality + noise — the flavor of series the
/// temporal models see. (A pure random walk can fit a non-invertible ARMA
/// whose innovations filter diverges in f64 and f32 alike; the f32 bound
/// is only meaningful against a well-posed f64 model.)
std::vector<double> synthetic_series(std::size_t n, std::uint64_t seed) {
  stats::Rng rng(seed);
  std::vector<double> s(n);
  double level = 10.0;
  for (std::size_t i = 0; i < n; ++i) {
    level = 0.92 * level + rng.normal(0.8, 0.4);
    s[i] = level + 3.0 * std::sin(static_cast<double>(i) * 0.35) +
           rng.normal(0.0, 0.25);
  }
  return s;
}

TEST(Precision, ParseAndNameRoundTrip) {
  EXPECT_EQ(parse_precision("f64"), Precision::kF64);
  EXPECT_EQ(parse_precision("f32"), Precision::kF32);
  EXPECT_EQ(precision_name(Precision::kF64), "f64");
  EXPECT_EQ(precision_name(Precision::kF32), "f32");
  EXPECT_THROW((void)parse_precision("f16"), std::invalid_argument);
  EXPECT_THROW((void)parse_precision(""), std::invalid_argument);
}

TEST(ArimaF32, MatchesF64WalkForward) {
  const std::vector<double> series = synthetic_series(400, 2024);
  ts::ArimaModel model(ts::ArimaOrder{2, 1, 1});
  model.fit(series);
  const ArimaF32 view(model);
  EXPECT_EQ(view.d(), 1u);

  for (std::size_t t = 20; t < series.size(); t += 7) {
    const std::span<const double> history(series.data(), t);
    expect_within_bound(view.forecast_one(history),
                        model.forecast_one(history));
  }
}

TEST(ArimaF32, GuardsMatchTheF64Model) {
  EXPECT_THROW(ArimaF32{ts::ArimaModel(ts::ArimaOrder{1, 0, 0})},
               std::logic_error);

  const std::vector<double> series = synthetic_series(200, 7);
  ts::ArimaModel model(ts::ArimaOrder{1, 2, 1});
  model.fit(series);
  const ArimaF32 view(model);
  const double short_history[2] = {1.0, 2.0};  // size == d: too short.
  EXPECT_THROW((void)view.forecast_one(short_history), std::invalid_argument);
}

TEST(TreeF32, UnfittedTreeYieldsNullopt) {
  tree::ModelTree tree{tree::ModelTreeOptions{}};
  EXPECT_FALSE(TreeF32::from(tree).has_value());
}

TEST(TreeF32, MatchesModelTreeOnTrainingRows) {
  stats::Rng rng(99);
  const std::size_t n = 300, k = 6;
  stats::Matrix x(n, k);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double target = 0.5;
    for (std::size_t j = 0; j < k; ++j) {
      x(i, j) = rng.normal(0.0, 1.0);
      target += (j % 2 == 0 ? 1.3 : -0.7) * x(i, j);
    }
    y[i] = target + rng.normal(0.0, 0.2);
  }

  tree::ModelTree tree{tree::ModelTreeOptions{}};
  tree.fit(x, y);
  const auto view = TreeF32::from(tree);
  ASSERT_TRUE(view.has_value());

  std::vector<double> row(k);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < k; ++j) row[j] = x(i, j);
    // Thresholds stay f64 in the view, so routing is identical and the
    // only divergence is the f32 leaf model arithmetic.
    expect_within_bound(view->predict(row), tree.predict(row));
  }
}

TEST(NarF32View, MatchesNarModelWalkForward) {
  const std::vector<double> series = synthetic_series(300, 4096);
  nn::NarOptions opts;
  opts.delays = 3;
  opts.hidden_nodes = 8;
  opts.mlp.max_epochs = 60;
  nn::NarModel model(opts);
  model.fit(series);
  const nn::NarF32View view(model);
  EXPECT_EQ(view.delays(), 3u);

  for (std::size_t t = opts.delays; t < series.size(); t += 5) {
    const std::span<const double> history(series.data(), t);
    expect_within_bound(view.forecast_one(history),
                        model.forecast_one(history));
  }
}

// --- InferenceView against a fully fitted spatiotemporal model -----------

SpatiotemporalOptions fast_options() {
  SpatiotemporalOptions opts;
  opts.spatial.grid_search = false;
  opts.spatial.fixed.mlp.max_epochs = 60;
  return opts;
}

struct Fixture {
  trace::World world = trace::build_world(trace::small_world_options(29));
  SpatiotemporalModel model{fast_options()};

  Fixture() { model.fit(world.dataset, world.ip_map); }
};

const Fixture& fixture() {
  static const Fixture fx;
  return fx;
}

TEST(InferenceView, ExtractThrowsOnUnfittedModel) {
  const SpatiotemporalModel unfitted;
  EXPECT_THROW((void)InferenceView::extract(unfitted), std::logic_error);
}

TEST(InferenceView, CombinerPredictionsWithinBound) {
  const Fixture& fx = fixture();
  const InferenceView view = InferenceView::extract(fx.model);

  StFeatures f;
  f.tmp_hour = 14.0;
  f.spa_hour = 15.0;
  f.tmp_interval_s = 3600.0;
  f.spa_interval_s = 7200.0;
  f.prev_hour = 13.0;
  f.prev_day = 30.0;
  f.avg_magnitude = 80.0;
  for (int variant = 0; variant < 8; ++variant) {
    f.tmp_hour = 2.0 + 2.5 * variant;
    f.prev_day = 5.0 + 10.0 * variant;
    f.avg_magnitude = 20.0 + 15.0 * variant;
    const double hour = view.predict_hour(f);
    expect_within_bound(hour, fx.model.predict_hour(f));
    EXPECT_GE(hour, 0.0);
    EXPECT_LT(hour, 24.0);
    expect_within_bound(view.predict_day(f), fx.model.predict_day(f));
  }
}

TEST(InferenceView, TemporalForecastMatchesModelLadder) {
  const Fixture& fx = fixture();
  const InferenceView view = InferenceView::extract(fx.model);
  const std::uint32_t dj = fx.world.dataset.family_index("DirtJumper");
  ASSERT_TRUE(view.has_temporal(dj));
  const TemporalModel* temporal = fx.model.temporal(dj);
  ASSERT_NE(temporal, nullptr);

  const std::vector<double> long_history = synthetic_series(48, 11);
  const std::vector<double> short_history = {12.0};  // Forces fallback rungs.
  std::vector<double> dirty_history = synthetic_series(32, 13);
  dirty_history[5] = std::numeric_limits<double>::quiet_NaN();  // Repair path.

  for (std::size_t s = 0; s < kTemporalSeriesCount; ++s) {
    const auto which = static_cast<TemporalSeries>(s);
    for (const auto& history : {long_history, short_history, dirty_history}) {
      expect_within_bound(view.temporal_forecast(dj, which, history),
                          temporal->forecast_next(which, history));
    }
  }
}

TEST(InferenceView, SpatialForecastMatchesModelLadder) {
  const Fixture& fx = fixture();
  const InferenceView view = InferenceView::extract(fx.model);
  const net::Asn busiest = fx.world.dataset.target_asns().front();
  ASSERT_TRUE(view.has_spatial(busiest));
  const SpatialModel* spatial = fx.model.spatial(busiest);
  ASSERT_NE(spatial, nullptr);

  const std::vector<double> long_history = synthetic_series(40, 17);
  const std::vector<double> short_history = {7.0};

  for (std::size_t s = 0; s < kSpatialSeriesCount; ++s) {
    const auto which = static_cast<SpatialSeries>(s);
    for (const auto& history : {long_history, short_history}) {
      expect_within_bound(view.spatial_forecast(busiest, which, history),
                          spatial->forecast_next(which, history));
    }
  }
}

TEST(InferenceView, UnknownKeysThrow) {
  const Fixture& fx = fixture();
  const InferenceView view = InferenceView::extract(fx.model);
  EXPECT_FALSE(view.has_temporal(999999));
  EXPECT_FALSE(view.has_spatial(4242424));
  const std::vector<double> history = {1.0, 2.0, 3.0};
  EXPECT_THROW(
      (void)view.temporal_forecast(999999, TemporalSeries::kHour, history),
      std::invalid_argument);
  EXPECT_THROW(
      (void)view.spatial_forecast(4242424, SpatialSeries::kHour, history),
      std::invalid_argument);
}

TEST(EvaluateTimestampsF32, TracksTheF64Evaluation) {
  const Fixture& fx = fixture();
  const TimestampEvaluation f64 = evaluate_timestamps(
      fx.world.dataset, fx.world.ip_map, fast_options(), 0.8, Precision::kF64);
  const TimestampEvaluation f32 = evaluate_timestamps(
      fx.world.dataset, fx.world.ip_map, fast_options(), 0.8, Precision::kF32);

  ASSERT_EQ(f32.st_hour.size(), f64.st_hour.size());
  ASSERT_EQ(f32.st_day.size(), f64.st_day.size());
  for (std::size_t i = 0; i < f64.st_hour.size(); ++i) {
    expect_within_bound(f32.st_hour[i], f64.st_hour[i]);
  }
  for (std::size_t i = 0; i < f64.st_day.size(); ++i) {
    expect_within_bound(f32.st_day[i], f64.st_day[i]);
  }
  // Fitting and the non-spatiotemporal columns are precision-independent.
  EXPECT_EQ(f32.truth_hour, f64.truth_hour);
  EXPECT_EQ(f32.spa_hour, f64.spa_hour);
  EXPECT_EQ(f32.tmp_hour, f64.tmp_hour);
  EXPECT_LE(std::abs(f32.rmse_hour_st - f64.rmse_hour_st),
            kF32RelErrorBound * std::max(1.0, f64.rmse_hour_st));
}

}  // namespace
}  // namespace acbm::core
