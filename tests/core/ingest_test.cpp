// Streaming-ingestion acceptance: the corrected EMA's bias correction, the
// snapshot log's validation policy and crash recovery (torn tail, interior
// corruption), pure-replay drift detection, and the incremental-refit
// contract — the published model is byte-identical to a cold full fit on
// the same cumulative data at 1, 3, and 8 threads, retries are bounded,
// and an exhausted refit leaves the previous generation serving.
#include "core/ingest.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/durable.h"
#include "core/parallel.h"
#include "core/robust.h"
#include "trace/world.h"

namespace acbm::core::ingest {
namespace {

namespace fs = std::filesystem;

struct FaultGuard {
  FaultGuard() { FaultInjector::instance().clear(); }
  ~FaultGuard() {
    FaultInjector::instance().clear();
    set_num_threads(0);
  }
};

struct TempDir {
  fs::path path;
  TempDir() {
    static std::atomic<int> counter{0};
    path = fs::temp_directory_path() /
           ("acbm_ingest_test_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter.fetch_add(1)));
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

constexpr trace::EpochSeconds kWs = 1'000'000'000;

trace::Attack make_attack(std::uint64_t id, std::uint32_t family,
                          trace::EpochSeconds start, double duration = 600.0,
                          std::size_t bots = 3) {
  trace::Attack a;
  a.id = id;
  a.family = family;
  a.target_ip = net::Ipv4(10, 0, 0, 1);
  a.target_asn = 3;
  a.start = start;
  a.duration_s = duration;
  for (std::size_t b = 0; b < bots; ++b) {
    a.bots.push_back(net::Ipv4(10, 1, static_cast<std::uint8_t>(b / 250),
                               static_cast<std::uint8_t>(1 + b % 250)));
  }
  return a;
}

std::string csv_of(const trace::Dataset& d) {
  std::ostringstream os;
  d.save_csv(os);
  return os.str();
}

/// A snapshot with `per_hour` attacks of `family` in each hour of
/// [first_hour, last_hour], evenly spaced.
std::string snapshot_csv(const std::vector<std::string>& families,
                         std::uint32_t family, std::size_t first_hour,
                         std::size_t last_hour, std::size_t per_hour,
                         std::uint64_t id_base) {
  std::vector<trace::Attack> attacks;
  for (std::size_t h = first_hour; h <= last_hour; ++h) {
    for (std::size_t k = 0; k < per_hour; ++k) {
      attacks.push_back(make_attack(
          id_base + h * 100 + k, family,
          kWs + static_cast<trace::EpochSeconds>(h * 3600 +
                                                 k * (3600 / per_hour))));
    }
  }
  return csv_of(trace::Dataset(families, std::move(attacks), {}, kWs));
}

// --- CorrectedEma -----------------------------------------------------------

TEST(CorrectedEma, FirstSampleIsReportedExactly) {
  CorrectedEma ema(0.2);
  EXPECT_FALSE(ema.warm());
  EXPECT_DOUBLE_EQ(ema.value(), 0.0);
  ema.update(5.0);
  // The raw EMA would report alpha * 5 = 1.0; the bias correction divides
  // by the same decay applied to a constant-1 signal and recovers 5.0.
  EXPECT_TRUE(ema.warm());
  EXPECT_DOUBLE_EQ(ema.value(), 5.0);
}

TEST(CorrectedEma, ConstantSignalStaysExactAtEveryStep) {
  CorrectedEma ema(0.1);
  for (int i = 0; i < 50; ++i) {
    ema.update(-3.25);
    EXPECT_DOUBLE_EQ(ema.value(), -3.25) << "step " << i;
  }
}

TEST(CorrectedEma, TracksALevelShift) {
  CorrectedEma ema(0.3);
  for (int i = 0; i < 20; ++i) ema.update(1.0);
  for (int i = 0; i < 20; ++i) ema.update(10.0);
  EXPECT_GT(ema.value(), 9.0);
  EXPECT_LT(ema.value(), 10.0);
}

// --- SnapshotLog ------------------------------------------------------------

TEST(SnapshotLog, AppendsValidatesAndAccumulates) {
  TempDir tmp;
  SnapshotLog log(tmp.path);
  EXPECT_TRUE(log.empty());

  const std::vector<std::string> families = {"BotA", "BotB"};
  const AppendOutcome base =
      log.append(1, snapshot_csv(families, 0, 0, 1, 2, 1000));
  EXPECT_EQ(base.status, AppendStatus::kAccepted);
  const AppendOutcome next =
      log.append(2, snapshot_csv(families, 1, 2, 2, 3, 2000));
  EXPECT_EQ(next.status, AppendStatus::kAccepted);

  ASSERT_EQ(log.segments().size(), 2u);
  EXPECT_EQ(log.last_hour(), 2u);
  const trace::Dataset cumulative = log.cumulative();
  EXPECT_EQ(cumulative.size(), 4u + 3u);
  EXPECT_EQ(cumulative.window_start(), kWs);
  EXPECT_EQ(cumulative.family_names(), families);
}

TEST(SnapshotLog, RepairableSnapshotIsStoredCanonically) {
  TempDir tmp;
  SnapshotLog log(tmp.path);
  const std::vector<std::string> families = {"BotA"};
  ASSERT_EQ(log.append(1, snapshot_csv(families, 0, 0, 1, 1, 10)).status,
            AppendStatus::kAccepted);

  // A negative duration: Dataset construction repairs it (zeroed), so the
  // append reports kRepaired and stores the repaired canonical form.
  std::vector<trace::Attack> attacks = {
      make_attack(500, 0, kWs + 2 * 3600 + 60, -100.0)};
  const std::string dirty =
      csv_of(trace::Dataset(families, std::move(attacks), {}, kWs));
  // save_csv canonicalizes, so inject the bad value into the raw text.
  std::string raw = dirty;
  const auto pos = raw.rfind(",0,");  // ...,duration 0 (already repaired)
  ASSERT_NE(pos, std::string::npos);
  raw.replace(pos, 3, ",-100,");
  const AppendOutcome out = log.append(2, raw);
  EXPECT_EQ(out.status, AppendStatus::kRepaired);
  EXPECT_EQ(out.validation.negative_durations, 1u);
  // The stored segment parses clean: replaying the log re-validates nothing.
  const trace::Dataset cumulative = log.cumulative();
  EXPECT_TRUE(cumulative.validation().clean());
  EXPECT_DOUBLE_EQ(cumulative.attacks().back().duration_s, 0.0);
}

TEST(SnapshotLog, RejectsWindowStartMismatchWithQuarantine) {
  TempDir tmp;
  SnapshotLog log(tmp.path);
  const std::vector<std::string> families = {"BotA"};
  ASSERT_EQ(log.append(1, snapshot_csv(families, 0, 0, 1, 1, 10)).status,
            AppendStatus::kAccepted);

  std::vector<trace::Attack> attacks = {make_attack(600, 0, kWs + 9999)};
  const std::string other_ws =
      csv_of(trace::Dataset(families, std::move(attacks), {}, kWs + 7));
  const AppendOutcome out = log.append(2, other_ws);
  EXPECT_EQ(out.status, AppendStatus::kRejected);
  EXPECT_NE(out.detail.find("window_start"), std::string::npos);
  EXPECT_FALSE(out.quarantined_to.empty());
  EXPECT_TRUE(fs::exists(out.quarantined_to));
  EXPECT_EQ(durable::read_file(out.quarantined_to), other_ws);
  EXPECT_EQ(log.segments().size(), 1u);
}

TEST(SnapshotLog, RejectsContradictingFamilyListButAllowsExtension) {
  TempDir tmp;
  SnapshotLog log(tmp.path);
  ASSERT_EQ(log.append(1, snapshot_csv({"BotA", "BotB"}, 0, 0, 1, 1, 10))
                .status,
            AppendStatus::kAccepted);

  // Index 0 would silently remap from BotA to BotX: rejected.
  EXPECT_EQ(log.append(2, snapshot_csv({"BotX", "BotB"}, 0, 2, 2, 1, 20))
                .status,
            AppendStatus::kRejected);
  // Extending the list keeps existing indices stable: accepted.
  EXPECT_EQ(log.append(2, snapshot_csv({"BotA", "BotB", "BotC"}, 2, 2, 2, 1,
                                       30))
                .status,
            AppendStatus::kAccepted);
  EXPECT_EQ(log.cumulative().family_names().size(), 3u);
}

TEST(SnapshotLog, UnparseableSnapshotIsRejected) {
  TempDir tmp;
  SnapshotLog log(tmp.path);
  const AppendOutcome out = log.append(1, "this is not a dataset\n");
  EXPECT_EQ(out.status, AppendStatus::kRejected);
  EXPECT_NE(out.detail.find("unparseable"), std::string::npos);
  EXPECT_TRUE(log.empty());
}

TEST(SnapshotLog, DuplicateHourIsIdempotent) {
  TempDir tmp;
  SnapshotLog log(tmp.path);
  const std::vector<std::string> families = {"BotA"};
  const std::string snap = snapshot_csv(families, 0, 0, 1, 1, 10);
  ASSERT_EQ(log.append(3, snap).status, AppendStatus::kAccepted);
  const std::string before = durable::read_file(tmp.path / "snapshots.log");

  EXPECT_EQ(log.append(3, snap).status, AppendStatus::kDuplicate);
  EXPECT_EQ(log.append(2, snap).status, AppendStatus::kDuplicate);
  EXPECT_EQ(log.segments().size(), 1u);
  EXPECT_EQ(durable::read_file(tmp.path / "snapshots.log"), before);
}

TEST(SnapshotLog, TornTailIsTruncatedOnRecovery) {
  TempDir tmp;
  const std::vector<std::string> families = {"BotA"};
  std::string intact;
  {
    SnapshotLog log(tmp.path);
    ASSERT_EQ(log.append(1, snapshot_csv(families, 0, 0, 1, 1, 10)).status,
              AppendStatus::kAccepted);
    ASSERT_EQ(log.append(2, snapshot_csv(families, 0, 2, 2, 1, 20)).status,
              AppendStatus::kAccepted);
    intact = durable::read_file(tmp.path / "snapshots.log");
  }
  // A crash mid-append leaves a half-written record at the tail.
  {
    std::ofstream os(tmp.path / "snapshots.log",
                     std::ios::binary | std::ios::app);
    os << "ACBMF1 ingest_segment v1 len=500 crc32c=deadbeef\nhour=3\ntrunc";
  }
  SnapshotLog recovered(tmp.path);
  EXPECT_GT(recovered.recovery().torn_tail_bytes, 0u);
  EXPECT_EQ(recovered.recovery().quarantined_ranges, 0u);
  ASSERT_EQ(recovered.segments().size(), 2u);
  EXPECT_EQ(durable::read_file(tmp.path / "snapshots.log"), intact);
  // The log accepts the hour's retry after recovery.
  EXPECT_EQ(recovered.append(3, snapshot_csv(families, 0, 3, 3, 1, 30)).status,
            AppendStatus::kAccepted);
}

TEST(SnapshotLog, InteriorCorruptionIsQuarantinedAndTheLogCompacts) {
  TempDir tmp;
  const std::vector<std::string> families = {"BotA"};
  {
    SnapshotLog log(tmp.path);
    for (std::size_t h = 1; h <= 3; ++h) {
      ASSERT_EQ(log.append(h, snapshot_csv(families, 0, h, h, 1, h * 100))
                    .status,
                AppendStatus::kAccepted);
    }
  }
  // Bit rot inside the second segment's payload (past its header line).
  const fs::path log_path = tmp.path / "snapshots.log";
  std::string bytes = durable::read_file(log_path);
  const auto second = bytes.find("ACBMF1", 1);
  ASSERT_NE(second, std::string::npos);
  bytes[second + 64] ^= 0x40;
  std::ofstream(log_path, std::ios::binary | std::ios::trunc) << bytes;

  SnapshotLog recovered(tmp.path);
  EXPECT_GE(recovered.recovery().quarantined_ranges, 1u);
  ASSERT_FALSE(recovered.recovery().quarantine_path.empty());
  EXPECT_TRUE(fs::exists(recovered.recovery().quarantine_path));
  ASSERT_EQ(recovered.segments().size(), 2u);
  EXPECT_EQ(recovered.segments()[0].hour, 1u);
  EXPECT_EQ(recovered.segments()[1].hour, 3u);

  // The compacted log is clean: a further reopen recovers nothing.
  SnapshotLog reopened(tmp.path);
  EXPECT_EQ(reopened.recovery().torn_tail_bytes, 0u);
  EXPECT_EQ(reopened.recovery().quarantined_ranges, 0u);
  EXPECT_EQ(reopened.segments().size(), 2u);
}

TEST(SnapshotLog, AppendFaultLandsNoBytesAndRetryConverges) {
  FaultGuard guard;
  TempDir tmp;
  SnapshotLog log(tmp.path);
  const std::vector<std::string> families = {"BotA"};
  ASSERT_EQ(log.append(1, snapshot_csv(families, 0, 0, 1, 1, 10)).status,
            AppendStatus::kAccepted);
  const std::string before = durable::read_file(tmp.path / "snapshots.log");

  FaultInjector::instance().configure("ingest.append:hour=2");
  const std::string snap = snapshot_csv(families, 0, 2, 2, 1, 20);
  EXPECT_THROW((void)log.append(2, snap), durable::WriteFailure);
  EXPECT_EQ(durable::read_file(tmp.path / "snapshots.log"), before);

  FaultInjector::instance().clear();
  EXPECT_EQ(log.append(2, snap).status, AppendStatus::kAccepted);
  EXPECT_EQ(log.last_hour(), 2u);
}

TEST(SnapshotLog, TornTailFaultThenReopenConverges) {
  FaultGuard guard;
  TempDir tmp;
  const std::vector<std::string> families = {"BotA"};
  const std::string snap = snapshot_csv(families, 0, 2, 2, 1, 20);
  {
    SnapshotLog log(tmp.path);
    ASSERT_EQ(log.append(1, snapshot_csv(families, 0, 0, 1, 1, 10)).status,
              AppendStatus::kAccepted);
    FaultInjector::instance().configure("ingest.torn_tail:hour=2");
    EXPECT_THROW((void)log.append(2, snap), durable::WriteFailure);
  }
  FaultInjector::instance().clear();
  SnapshotLog recovered(tmp.path);
  EXPECT_GT(recovered.recovery().torn_tail_bytes, 0u);
  EXPECT_EQ(recovered.segments().size(), 1u);
  EXPECT_EQ(recovered.append(2, snap).status, AppendStatus::kAccepted);
  EXPECT_EQ(recovered.cumulative().size(), 3u);
}

// --- Drift detection --------------------------------------------------------

/// Baseline for a family launching `rate` attacks/hour of magnitude 3.
FamilyDriftBaseline baseline_of(std::uint32_t family, double rate) {
  FamilyDriftBaseline b;
  b.family = family;
  b.hours = 100.0;
  b.rate_mean = rate;
  b.rate_std = 0.1;
  b.magnitude_mean = 3.0;
  b.magnitude_std = 1.0;
  b.interval_mean = 3600.0 / rate;
  b.interval_residual_std = 1e9;  // Interval channel neutralized.
  return b;
}

trace::Dataset steady_then_spike(std::size_t steady_hours,
                                 std::size_t spike_hours,
                                 std::size_t spike_rate) {
  std::vector<trace::Attack> attacks;
  std::uint64_t id = 1;
  for (std::size_t h = 0; h < steady_hours; ++h) {
    attacks.push_back(make_attack(id++, 0, kWs + h * 3600 + 100));
  }
  for (std::size_t h = steady_hours; h < steady_hours + spike_hours; ++h) {
    for (std::size_t k = 0; k < spike_rate; ++k) {
      attacks.push_back(
          make_attack(id++, 0, kWs + h * 3600 + k * (3600 / spike_rate)));
    }
  }
  return trace::Dataset({"BotA"}, std::move(attacks), {}, kWs);
}

TEST(DetectDrift, SteadyTrafficMatchingTheBaselineNeverTrips) {
  const trace::Dataset data = steady_then_spike(48, 0, 0);
  DriftPolicy policy;
  const auto trips =
      detect_drift(data, {baseline_of(0, 1.0)}, 0, 47, policy);
  EXPECT_TRUE(trips.empty());
}

TEST(DetectDrift, RateSpikeTripsAfterKConsecutiveHours) {
  const trace::Dataset data = steady_then_spike(24, 12, 6);
  DriftPolicy policy;
  policy.alpha = 0.5;
  policy.consecutive_hours = 3;
  const auto trips =
      detect_drift(data, {baseline_of(0, 1.0)}, 0, 35, policy);
  ASSERT_EQ(trips.size(), 1u);
  EXPECT_EQ(trips[0].family, 0u);
  EXPECT_EQ(trips[0].channel, "rate");
  // Spike starts at hour 24; the third consecutive divergent hour is 26.
  EXPECT_EQ(trips[0].hour, 26u);
  EXPECT_GT(trips[0].z, policy.z_threshold);
}

TEST(DetectDrift, ReplayAfterAServingRefitDoesNotRefire) {
  const trace::Dataset data = steady_then_spike(24, 12, 6);
  DriftPolicy policy;
  policy.alpha = 0.5;
  // served_hour at the log tail: every trip in the replay was served.
  EXPECT_TRUE(
      detect_drift(data, {baseline_of(0, 1.0)}, 35, 35, policy).empty());
  // served mid-spike: the monitor re-trips on the still-divergent tail.
  const auto trips =
      detect_drift(data, {baseline_of(0, 1.0)}, 30, 35, policy);
  ASSERT_EQ(trips.size(), 1u);
  EXPECT_GT(trips[0].hour, 30u);
}

TEST(DetectDrift, FamilyWithoutABaselineNeverTrips) {
  const trace::Dataset data = steady_then_spike(24, 12, 6);
  EXPECT_TRUE(detect_drift(data, {}, 0, 35, DriftPolicy{}).empty());
}

TEST(DetectDrift, FalseTripFaultForcesATrip) {
  FaultGuard guard;
  const trace::Dataset data = steady_then_spike(24, 0, 0);
  FaultInjector::instance().configure("drift.false_trip:family=BotA");
  const auto trips =
      detect_drift(data, {baseline_of(0, 1.0)}, 0, 23, DriftPolicy{});
  ASSERT_EQ(trips.size(), 1u);
  EXPECT_EQ(trips[0].channel, "injected");
  EXPECT_EQ(trips[0].family, 0u);
}

// --- Ingestor ---------------------------------------------------------------

/// One small world shared by every Ingestor test in this binary.
struct IngestWorld {
  trace::World world;
  IngestWorld() {
    trace::WorldOptions opts = trace::small_world_options(11);
    opts.generator.days = 8;
    world = trace::build_world(opts);
  }
};

const IngestWorld& ingest_world() {
  static const IngestWorld w;
  return w;
}

IngestorOptions options_for(const fs::path& dir) {
  IngestorOptions opts;
  opts.dir = dir;
  opts.model.spatial.grid_search = false;  // Matches the CLI fit config.
  opts.refit_backoff_ms = 0;
  return opts;
}

/// The framed bytes a cold full fit publishes for `dataset`.
std::string cold_fit_bytes(const trace::Dataset& dataset,
                           const net::IpToAsnMap& ip_map) {
  SpatiotemporalOptions opts;
  opts.spatial.grid_search = false;
  AdversaryModel model(opts);
  model.fit(dataset, ip_map);
  std::ostringstream os;
  model.save_framed(os);
  return os.str();
}

/// A drift-spike snapshot for the world's family 0 in [first, last] hours.
std::string world_spike_csv(std::size_t first_hour, std::size_t last_hour,
                            std::size_t per_hour, std::uint64_t id_base) {
  const trace::Dataset& base = ingest_world().world.dataset;
  std::vector<trace::Attack> attacks;
  for (std::size_t h = first_hour; h <= last_hour; ++h) {
    for (std::size_t k = 0; k < per_hour; ++k) {
      attacks.push_back(make_attack(
          id_base + h * 100 + k, 0,
          base.window_start() +
              static_cast<trace::EpochSeconds>(h * 3600 +
                                               k * (3600 / per_hour))));
    }
  }
  return csv_of(trace::Dataset(base.family_names(), std::move(attacks), {},
                               base.window_start()));
}

TEST(Ingestor, InitPublishesAModelByteIdenticalToAColdFit) {
  TempDir tmp;
  Ingestor ingestor(options_for(tmp.path));
  EXPECT_FALSE(ingestor.initialized());
  EXPECT_THROW((void)ingestor.check_and_refit(false), std::logic_error);

  ingestor.init(ingest_world().world.dataset, ingest_world().world.ip_map);
  EXPECT_TRUE(ingestor.initialized());
  EXPECT_THROW(ingestor.init(ingest_world().world.dataset,
                             ingest_world().world.ip_map),
               std::logic_error);

  EXPECT_EQ(durable::read_file(ingestor.model_path()),
            cold_fit_bytes(ingestor.log().cumulative(),
                           ingest_world().world.ip_map));
}

TEST(Ingestor, IncrementalRefitIsByteIdenticalToColdFitAcrossThreadCounts) {
  FaultGuard guard;
  const std::size_t base_hours = 8 * 24;
  std::string reference;  // t=1 published bytes; all counts must match it.
  for (const std::size_t threads : {1UL, 3UL, 8UL}) {
    set_num_threads(threads);
    TempDir tmp;
    Ingestor ingestor(options_for(tmp.path));
    ingestor.init(ingest_world().world.dataset, ingest_world().world.ip_map);

    const std::size_t hour = base_hours + 1;
    ASSERT_EQ(ingestor.append(hour, world_spike_csv(base_hours, hour, 4,
                                                    900000))
                  .status,
              AppendStatus::kAccepted)
        << "threads=" << threads;
    const RefitResult result = ingestor.check_and_refit(/*force=*/true);
    ASSERT_TRUE(result.published) << "threads=" << threads << ": "
                                  << result.error;
    // Only family 0's temporal stage plus the downstream spatial and tree
    // stages changed — not every family's.
    EXPECT_EQ(result.stages_invalidated, 3u) << "threads=" << threads;
    EXPECT_EQ(ingestor.last_refit_hour(), hour);

    const std::string published = durable::read_file(ingestor.model_path());
    EXPECT_EQ(published, cold_fit_bytes(ingestor.log().cumulative(),
                                        ingest_world().world.ip_map))
        << "threads=" << threads;
    if (reference.empty()) {
      reference = published;
    } else {
      EXPECT_EQ(published, reference) << "threads=" << threads;
    }
  }
}

TEST(Ingestor, RefitRetriesPastAnInjectedFailure) {
  FaultGuard guard;
  TempDir tmp;
  Ingestor ingestor(options_for(tmp.path));
  ingestor.init(ingest_world().world.dataset, ingest_world().world.ip_map);

  FaultInjector::instance().configure("refit.fail:attempt=0");
  const RefitResult result = ingestor.check_and_refit(/*force=*/true);
  EXPECT_TRUE(result.published);
  EXPECT_EQ(result.retries, 1);
  EXPECT_FALSE(result.fallback);
}

TEST(Ingestor, ExhaustedRetriesKeepThePreviousGenerationLive) {
  FaultGuard guard;
  TempDir tmp;
  IngestorOptions opts = options_for(tmp.path);
  opts.refit_max_retries = 1;
  Ingestor ingestor(opts);
  ingestor.init(ingest_world().world.dataset, ingest_world().world.ip_map);
  const std::string before = durable::read_file(ingestor.model_path());

  FaultInjector::instance().configure("refit.fail");
  const RefitResult result = ingestor.check_and_refit(/*force=*/true);
  EXPECT_TRUE(result.attempted);
  EXPECT_FALSE(result.published);
  EXPECT_TRUE(result.fallback);
  EXPECT_EQ(result.retries, 1);
  EXPECT_NE(result.error.find("refit.fail"), std::string::npos);
  // "Never serve nothing": the previous generation is untouched.
  EXPECT_EQ(durable::read_file(ingestor.model_path()), before);

  FaultInjector::instance().clear();
  EXPECT_TRUE(ingestor.check_and_refit(/*force=*/true).published);
}

TEST(Ingestor, PublicationKeepsAPreviousGenerationOnDisk) {
  TempDir tmp;
  Ingestor ingestor(options_for(tmp.path));
  ingestor.init(ingest_world().world.dataset, ingest_world().world.ip_map);
  const std::string gen1 = durable::read_file(ingestor.model_path());

  ASSERT_EQ(ingestor.append(8 * 24 + 1,
                            world_spike_csv(8 * 24, 8 * 24 + 1, 2, 910000))
                .status,
            AppendStatus::kAccepted);
  ASSERT_TRUE(ingestor.check_and_refit(/*force=*/true).published);

  const fs::path g1 = tmp.path / "model.art.g1";
  ASSERT_TRUE(fs::exists(g1));
  EXPECT_EQ(durable::read_file(g1), gen1);
  // The previous generation still loads as a complete model.
  std::ifstream is(g1, std::ios::binary);
  EXPECT_NO_THROW((void)AdversaryModel::load_framed(is));
}

TEST(Ingestor, CorruptInputsStateForcesAFullButConvergentRefit) {
  TempDir tmp;
  Ingestor ingestor(options_for(tmp.path));
  ingestor.init(ingest_world().world.dataset, ingest_world().world.ip_map);
  const std::size_t families =
      ingest_world().world.dataset.family_names().size();

  std::ofstream(tmp.path / "inputs.state",
                std::ios::binary | std::ios::trunc)
      << "garbage";
  EXPECT_EQ(ingestor.last_refit_hour(), 0u);
  const RefitResult result = ingestor.check_and_refit(/*force=*/true);
  ASSERT_TRUE(result.published) << result.error;
  // With no trusted hashes every stage counts as changed.
  EXPECT_EQ(result.stages_invalidated, families + 2);
  EXPECT_EQ(durable::read_file(ingestor.model_path()),
            cold_fit_bytes(ingestor.log().cumulative(),
                           ingest_world().world.ip_map));
}

}  // namespace
}  // namespace acbm::core::ingest
