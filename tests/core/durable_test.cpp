#include "core/durable.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "core/robust.h"

namespace acbm::core::durable {
namespace {

namespace fs = std::filesystem;

struct FaultGuard {
  FaultGuard() { FaultInjector::instance().clear(); }
  ~FaultGuard() { FaultInjector::instance().clear(); }
};

struct TempDir {
  fs::path path;
  TempDir() {
    path = fs::temp_directory_path() /
           ("acbm_durable_test_" + std::to_string(::getpid()));
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  [[nodiscard]] fs::path file(const char* name) const { return path / name; }
};

std::string slurp(const fs::path& path) { return read_file(path); }

TEST(Crc32c, MatchesTheCastagnoliCheckValue) {
  // The canonical CRC32C check value.
  EXPECT_EQ(crc32c("123456789"), 0xE3069283U);
  EXPECT_EQ(crc32c(""), 0U);
}

TEST(Crc32c, IncrementalEqualsOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  const std::uint32_t oneshot = crc32c(data);
  const std::uint32_t chained =
      crc32c(data.substr(10), crc32c(data.substr(0, 10)));
  EXPECT_EQ(chained, oneshot);
}

TEST(Crc32c, DispatchedPathMatchesBitwiseReferenceAtEveryLengthAndOffset) {
  // crc32c() may run on the hardware CRC instruction; it must agree with a
  // from-the-polynomial bitwise reference on every length (covering the
  // 8-byte-chunk/tail split) and starting offset (alignment).
  const auto reference = [](std::string_view data) {
    std::uint32_t crc = 0xFFFFFFFFU;
    for (const unsigned char byte : data) {
      crc ^= byte;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1U) ? 0x82F63B78U : 0U);
      }
    }
    return ~crc;
  };
  std::string data(257, '\0');
  std::uint64_t state = 42;
  for (char& byte : data) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    byte = static_cast<char>(state >> 56);
  }
  const std::string_view view = data;
  for (std::size_t len : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                          std::size_t{8}, std::size_t{9}, std::size_t{63},
                          std::size_t{64}, std::size_t{200}}) {
    for (std::size_t off = 0; off < 9; ++off) {
      const std::string_view slice = view.substr(off, len);
      EXPECT_EQ(crc32c(slice), reference(slice))
          << "len " << len << " off " << off;
    }
  }
}

TEST(Fnv1a64, KnownValuesAndChaining) {
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(fnv1a64("b", fnv1a64("a")), fnv1a64("ab"));
}

TEST(ToHex, FixedWidthLowercase) {
  EXPECT_EQ(to_hex(std::uint32_t{0}), "00000000");
  EXPECT_EQ(to_hex(std::uint32_t{0xE3069283U}), "e3069283");
  EXPECT_EQ(to_hex(std::uint64_t{0xcbf29ce484222325ULL}), "cbf29ce484222325");
}

TEST(LoadErrorTest, NamesAreStable) {
  EXPECT_STREQ(to_string(LoadError::kIo), "io");
  EXPECT_STREQ(to_string(LoadError::kTruncated), "truncated");
  EXPECT_STREQ(to_string(LoadError::kBadChecksum), "bad_checksum");
  EXPECT_STREQ(to_string(LoadError::kBadMagic), "bad_magic");
  EXPECT_STREQ(to_string(LoadError::kVersionUnsupported),
               "version_unsupported");
  EXPECT_STREQ(to_string(LoadError::kParse), "parse");
}

TEST(Frame, RoundTripsKindVersionAndPayload) {
  const std::string framed = frame_payload("model", 3, "hello\npayload\n");
  EXPECT_TRUE(looks_framed(framed));
  const Frame frame = parse_frame(framed);
  EXPECT_EQ(frame.kind, "model");
  EXPECT_EQ(frame.version, 3);
  EXPECT_EQ(frame.payload, "hello\npayload\n");
  EXPECT_EQ(unwrap(framed, "model", 3, 3), "hello\npayload\n");
}

TEST(Frame, EmptyPayloadIsValid) {
  const std::string framed = frame_payload("marker", 1, "");
  EXPECT_EQ(parse_frame(framed).payload, "");
}

TEST(Frame, RejectsMultiTokenKind) {
  EXPECT_THROW((void)frame_payload("two words", 1, "x"), std::invalid_argument);
}

TEST(Frame, MissingMagicIsBadMagic) {
  try {
    (void)parse_frame("not a framed artifact");
    FAIL() << "expected LoadFailure";
  } catch (const LoadFailure& e) {
    EXPECT_EQ(e.code(), LoadError::kBadMagic);
  }
}

TEST(Frame, ShortPayloadIsTruncated) {
  std::string framed = frame_payload("model", 1, "0123456789");
  framed.resize(framed.size() - 4);  // Drop payload bytes, keep the header.
  try {
    (void)parse_frame(framed);
    FAIL() << "expected LoadFailure";
  } catch (const LoadFailure& e) {
    EXPECT_EQ(e.code(), LoadError::kTruncated);
  }
}

TEST(Frame, HeaderWithoutNewlineIsTruncated) {
  const std::string framed = frame_payload("model", 1, "payload");
  const std::string header_only = framed.substr(0, framed.find('\n'));
  try {
    (void)parse_frame(header_only);
    FAIL() << "expected LoadFailure";
  } catch (const LoadFailure& e) {
    EXPECT_EQ(e.code(), LoadError::kTruncated);
  }
}

TEST(Frame, FlippedPayloadBitIsBadChecksum) {
  std::string framed = frame_payload("model", 1, "0123456789");
  framed[framed.size() - 3] ^= 0x01;
  try {
    (void)parse_frame(framed);
    FAIL() << "expected LoadFailure";
  } catch (const LoadFailure& e) {
    EXPECT_EQ(e.code(), LoadError::kBadChecksum);
  }
}

TEST(Frame, TrailingBytesAreParseError) {
  const std::string framed = frame_payload("model", 1, "0123456789") + "xx";
  try {
    (void)parse_frame(framed);
    FAIL() << "expected LoadFailure";
  } catch (const LoadFailure& e) {
    EXPECT_EQ(e.code(), LoadError::kParse);
  }
}

TEST(Frame, MangledHeaderTokensAreParseError) {
  for (const char* bad :
       {"ACBMF1 model vX len=1 crc32c=00000000\nx",
        "ACBMF1 model v1 len=one crc32c=00000000\nx",
        "ACBMF1 model v1 len=1 checksum=00000000\nx", "ACBMF1 model\nx"}) {
    try {
      (void)parse_frame(bad);
      FAIL() << "expected LoadFailure for: " << bad;
    } catch (const LoadFailure& e) {
      EXPECT_EQ(e.code(), LoadError::kParse) << bad;
    }
  }
}

TEST(Unwrap, KindMismatchIsParseError) {
  const std::string framed = frame_payload("model", 1, "x");
  try {
    (void)unwrap(framed, "dataset", 1, 1);
    FAIL() << "expected LoadFailure";
  } catch (const LoadFailure& e) {
    EXPECT_EQ(e.code(), LoadError::kParse);
  }
}

TEST(Unwrap, VersionOutsideRangeIsUnsupported) {
  const std::string framed = frame_payload("model", 9, "x");
  try {
    (void)unwrap(framed, "model", 1, 3);
    FAIL() << "expected LoadFailure";
  } catch (const LoadFailure& e) {
    EXPECT_EQ(e.code(), LoadError::kVersionUnsupported);
  }
}

TEST(AtomicWrite, CreatesAndReplacesWithoutLeftovers) {
  TempDir tmp;
  const fs::path target = tmp.file("artifact.txt");
  atomic_write_file(target, "first");
  EXPECT_EQ(slurp(target), "first");
  atomic_write_file(target, "second");
  EXPECT_EQ(slurp(target), "second");
  EXPECT_FALSE(fs::exists(tmp.file("artifact.txt.tmp")));
}

TEST(AtomicWrite, MissingFileIsTypedIoError) {
  try {
    (void)read_file("/nonexistent/acbm/artifact");
    FAIL() << "expected LoadFailure";
  } catch (const LoadFailure& e) {
    EXPECT_EQ(e.code(), LoadError::kIo);
  }
}

TEST(AtomicWrite, InjectedWriteCrashKeepsThePreviousContent) {
  FaultGuard guard;
  TempDir tmp;
  const fs::path target = tmp.file("artifact.txt");
  atomic_write_file(target, "intact old content");
  FaultInjector::instance().configure("io.write:artifact.txt");
  EXPECT_THROW(atomic_write_file(target, "replacement that never lands"),
               WriteFailure);
  // The crash hit the temp file: the final name still has the old bytes.
  FaultInjector::instance().clear();
  EXPECT_EQ(slurp(target), "intact old content");
}

TEST(AtomicWrite, InjectedFsyncFailureKeepsThePreviousContent) {
  FaultGuard guard;
  TempDir tmp;
  const fs::path target = tmp.file("artifact.txt");
  atomic_write_file(target, "intact old content");
  FaultInjector::instance().configure("io.fsync:artifact.txt");
  EXPECT_THROW(atomic_write_file(target, "unsynced replacement"),
               WriteFailure);
  FaultInjector::instance().clear();
  EXPECT_EQ(slurp(target), "intact old content");
}

TEST(AtomicWrite, InjectedDirsyncFaultFiresAfterTheRename) {
  FaultGuard guard;
  TempDir tmp;
  const fs::path target = tmp.file("artifact.txt");
  atomic_write_file(target, "old content");
  FaultInjector::instance().configure("io.dirsync:artifact.txt");
  EXPECT_THROW(atomic_write_file(target, "renamed but not dir-synced"),
               WriteFailure);
  FaultInjector::instance().clear();
  // The rename precedes the fault: this process already sees the new bytes
  // (a power loss could roll them back; retrying the write reconverges).
  EXPECT_EQ(slurp(target), "renamed but not dir-synced");
  EXPECT_FALSE(fs::exists(tmp.file("artifact.txt.tmp")));
}

TEST(Quarantine, MovesFilesAsideWithIncreasingSuffixes) {
  TempDir tmp;
  const fs::path target = tmp.file("bad.art");
  std::ofstream(target) << "junk";
  EXPECT_EQ(quarantine(target), tmp.file("bad.art.corrupt-1"));
  EXPECT_FALSE(fs::exists(target));
  std::ofstream(target) << "more junk";
  EXPECT_EQ(quarantine(target), tmp.file("bad.art.corrupt-2"));
}

TEST(LoadArtifactTest, RoundTripsWithCleanReport) {
  TempDir tmp;
  const fs::path target = tmp.file("model.art");
  save_artifact(target, "model", 2, "the payload");
  LoadReport report;
  EXPECT_EQ(load_artifact(target, "model", 1, 3, false, &report),
            "the payload");
  EXPECT_TRUE(report.clean());
}

TEST(LoadArtifactTest, CorruptFileIsQuarantinedAndTyped) {
  TempDir tmp;
  const fs::path target = tmp.file("model.art");
  save_artifact(target, "model", 2, "the payload");
  std::string bytes = slurp(target);
  bytes.back() ^= 0x40;
  std::ofstream(target, std::ios::binary | std::ios::trunc) << bytes;

  LoadReport report;
  try {
    (void)load_artifact(target, "model", 1, 3, false, &report);
    FAIL() << "expected LoadFailure";
  } catch (const LoadFailure& e) {
    EXPECT_EQ(e.code(), LoadError::kBadChecksum);
  }
  EXPECT_FALSE(fs::exists(target));
  EXPECT_TRUE(fs::exists(tmp.file("model.art.corrupt-1")));
  ASSERT_EQ(report.events.size(), 1U);
  EXPECT_EQ(report.events[0].error, LoadError::kBadChecksum);
  EXPECT_FALSE(report.events[0].quarantined_to.empty());
  EXPECT_FALSE(report.clean());
}

TEST(LoadArtifactTest, LegacyPassthroughOnlyWhenAllowed) {
  TempDir tmp;
  const fs::path target = tmp.file("legacy.art");
  std::ofstream(target) << "acbm:model:v2\nold body\n";

  LoadReport report;
  EXPECT_EQ(load_artifact(target, "model", 1, 3, true, &report),
            "acbm:model:v2\nold body\n");
  EXPECT_TRUE(report.legacy);
  EXPECT_TRUE(fs::exists(target));  // Legacy reads never quarantine.

  try {
    (void)load_artifact(target, "model", 1, 3, false);
    FAIL() << "expected LoadFailure";
  } catch (const LoadFailure& e) {
    EXPECT_EQ(e.code(), LoadError::kBadMagic);
  }
}

TEST(LoadArtifactTest, NewerSchemaIsReportedButNotQuarantined) {
  TempDir tmp;
  const fs::path target = tmp.file("model.art");
  save_artifact(target, "model", 9, "from the future");
  try {
    (void)load_artifact(target, "model", 1, 3, false);
    FAIL() << "expected LoadFailure";
  } catch (const LoadFailure& e) {
    EXPECT_EQ(e.code(), LoadError::kVersionUnsupported);
  }
  EXPECT_TRUE(fs::exists(target));  // The file is intact: keep it.
}

TEST(LoadReportTest, WriteListsEventsAndFlags) {
  LoadReport report;
  report.events.push_back({"/tmp/x.art", LoadError::kBadChecksum, "crc",
                           "/tmp/x.art.corrupt-1"});
  report.legacy = true;
  report.generation = 2;
  std::ostringstream os;
  report.write(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("bad_checksum"), std::string::npos);
  EXPECT_NE(text.find("corrupt-1"), std::string::npos);
  EXPECT_NE(text.find("legacy"), std::string::npos);
  EXPECT_NE(text.find("generation 2"), std::string::npos);
}

}  // namespace
}  // namespace acbm::core::durable
