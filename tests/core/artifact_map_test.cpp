// Format-layer tests for the zero-copy .armm serving artifact
// (core/artifact_map.h): pack/parse roundtrip, section alignment, CRC
// detection of arbitrary byte flips, typed rejection of truncated or
// structurally corrupt images, and mmap loading.
#include "core/artifact_map.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <random>

#include "core/durable.h"
#include "core/pipeline.h"
#include "trace/world.h"

namespace acbm::core::armm {
namespace {

namespace fs = std::filesystem;

struct TempDir {
  fs::path path;
  TempDir() {
    static std::atomic<int> counter{0};
    path = fs::temp_directory_path() /
           ("acbm_armm_test_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter.fetch_add(1)));
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

SpatiotemporalOptions fast_options() {
  SpatiotemporalOptions opts;
  opts.spatial.grid_search = false;
  opts.spatial.fixed.mlp.max_epochs = 60;
  return opts;
}

/// One fitted model + packed image shared by every test in the binary
/// (fitting dominates runtime; the image is immutable).
struct Fixture {
  trace::World world = trace::build_world(trace::small_world_options(37));
  AdversaryModel model{fast_options()};
  std::string image;

  Fixture() {
    model.fit(world.dataset, world.ip_map);
    image = pack_model(model);
  }
};

const Fixture& fx() {
  static const Fixture* fixture = new Fixture();
  return *fixture;
}

/// Parse an image from a std::string (aligning it first; string data is
/// not guaranteed 8-byte-aligned).
ArtifactView parse_copy(std::string_view image, bool verify_crc = true) {
  static thread_local std::vector<std::uint64_t> buf;
  buf.assign((image.size() + 7) / 8, 0);
  std::memcpy(buf.data(), image.data(), image.size());
  return ArtifactView::parse(
      {reinterpret_cast<const char*>(buf.data()), image.size()}, verify_crc);
}

TEST(ArtifactMap, PackedImageParses) {
  const ArtifactView view = parse_copy(fx().image);
  EXPECT_EQ(view.families().size(), fx().model.dataset().family_names().size());
  EXPECT_GT(view.targets().size(), 0u);
  EXPECT_EQ(view.temporal_slots().size(),
            view.families().size() * kTemporalSeriesCount);
  EXPECT_EQ(view.spatial_slots().size(), view.targets().size() * 3);
  EXPECT_EQ(static_cast<trace::EpochSeconds>(view.meta().window_start),
            fx().model.dataset().window_start());
}

TEST(ArtifactMap, HeaderAndSectionsAligned) {
  const std::string& image = fx().image;
  ASSERT_GE(image.size(), sizeof(FileHeader));
  FileHeader header{};
  std::memcpy(&header, image.data(), sizeof(header));
  EXPECT_EQ(std::memcmp(header.magic, kMagic, sizeof(kMagic)), 0);
  EXPECT_EQ(header.endian_check, kEndianCheck);
  EXPECT_EQ(header.file_size, image.size());
  for (std::uint32_t i = 0; i < header.section_count; ++i) {
    SectionEntry entry{};
    std::memcpy(&entry, image.data() + sizeof(header) + i * sizeof(entry),
                sizeof(entry));
    EXPECT_EQ(entry.offset % kSectionAlign, 0u) << "section " << i;
  }
}

TEST(ArtifactMap, TargetLookupIsExactAndSorted) {
  const ArtifactView view = parse_copy(fx().image);
  net::Asn prev = 0;
  for (const TargetRec& rec : view.targets()) {
    EXPECT_GT(rec.asn, prev);  // Strictly ascending.
    prev = rec.asn;
    EXPECT_EQ(view.target(rec.asn), &rec);
  }
  EXPECT_EQ(view.target(4294967295u), nullptr);
}

TEST(ArtifactMap, EveryByteFlipIsDetected) {
  // Flip a pseudorandom sample of single bytes across the whole image; the
  // CRC sweep (or a structural check) must reject every one of them.
  const std::string& clean = fx().image;
  std::mt19937_64 rng(7);
  for (int trial = 0; trial < 64; ++trial) {
    std::string corrupt = clean;
    const std::size_t at = rng() % corrupt.size();
    corrupt[at] = static_cast<char>(corrupt[at] ^ (1 + rng() % 255));
    EXPECT_THROW((void)parse_copy(corrupt), durable::LoadFailure)
        << "byte " << at;
  }
}

TEST(ArtifactMap, TruncationIsTyped) {
  const std::string& clean = fx().image;
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{7}, sizeof(FileHeader) - 1,
        sizeof(FileHeader) + 3, clean.size() / 2, clean.size() - 1}) {
    EXPECT_THROW((void)parse_copy(clean.substr(0, keep)),
                 durable::LoadFailure)
        << "kept " << keep;
  }
}

TEST(ArtifactMap, TrailingGarbageRejected) {
  std::string padded = fx().image;
  padded += "tail";
  EXPECT_THROW((void)parse_copy(padded), durable::LoadFailure);
}

TEST(ArtifactMap, MisalignedBufferRejected) {
  static std::vector<std::uint64_t> buf((fx().image.size() + 8) / 8 + 1, 0);
  char* misaligned = reinterpret_cast<char*>(buf.data()) + 4;
  std::memcpy(misaligned, fx().image.data(), fx().image.size());
  EXPECT_THROW(
      (void)ArtifactView::parse({misaligned, fx().image.size()}),
      durable::LoadFailure);
}

TEST(ArtifactMap, WrongMagicAndVersionRejected) {
  std::string wrong_magic = fx().image;
  wrong_magic[0] = 'X';
  EXPECT_THROW((void)parse_copy(wrong_magic), durable::LoadFailure);

  std::string wrong_version = fx().image;
  FileHeader header{};
  std::memcpy(&header, wrong_version.data(), sizeof(header));
  header.version = kFormatVersion + 1;
  std::memcpy(wrong_version.data(), &header, sizeof(header));
  EXPECT_THROW((void)parse_copy(wrong_version), durable::LoadFailure);
}

TEST(ArtifactMap, MappedFileParsesInPlace) {
  TempDir tmp;
  const fs::path path = tmp.path / "model.armm";
  durable::atomic_write_file(path, fx().image);
  durable::MappedFile file(path);
  ASSERT_TRUE(file.mapped());
  const ArtifactView view = ArtifactView::parse(file.view());
  EXPECT_EQ(view.targets().size(), parse_copy(fx().image).targets().size());
}

TEST(ArtifactMap, PackUnfittedThrows) {
  AdversaryModel unfitted;
  EXPECT_THROW((void)pack_model(unfitted), std::logic_error);
}

TEST(ArtifactMap, PackIsDeterministic) {
  EXPECT_EQ(pack_model(fx().model), fx().image);
}

}  // namespace
}  // namespace acbm::core::armm
