#include "core/checkpoint.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "core/durable.h"
#include "core/observe.h"
#include "core/robust.h"

namespace acbm::core {
namespace {

namespace fs = std::filesystem;

struct FaultGuard {
  FaultGuard() { FaultInjector::instance().clear(); }
  ~FaultGuard() { FaultInjector::instance().clear(); }
};

/// Turns the metric registry on (reset) for one test, off afterwards, so
/// counter assertions see only this test's increments.
struct MetricsGuard {
  MetricsGuard() {
    observe::Metrics::instance().reset();
    observe::set_enabled(true);
  }
  ~MetricsGuard() {
    observe::set_enabled(false);
    observe::Metrics::instance().reset();
  }
};

struct TempDir {
  fs::path path;
  TempDir() {
    path = fs::temp_directory_path() /
           ("acbm_checkpoint_test_" + std::to_string(::getpid()));
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

CheckpointDir::Options opts_with(std::uint64_t hash, bool resume) {
  CheckpointDir::Options opts;
  opts.config_hash = hash;
  opts.resume = resume;
  return opts;
}

TEST(CheckpointSlug, KeepsSafeCharsAndMapsSeparators) {
  EXPECT_EQ(CheckpointDir::slug("temporal/DirtJumper"), "temporal-DirtJumper");
  EXPECT_EQ(CheckpointDir::slug("eval/h=0.8"), "eval-h=0.8");
  EXPECT_EQ(CheckpointDir::slug("a b\tc"), "a-b-c");
  EXPECT_EQ(CheckpointDir::slug(""), "stage");
}

TEST(CheckpointDirTest, StoreThenLoadWithinOneRun) {
  TempDir tmp;
  CheckpointDir ckpt(tmp.path / "run", opts_with(1, false));
  EXPECT_FALSE(ckpt.load("temporal/BotA").has_value());
  ckpt.store("temporal/BotA", "payload bytes");
  EXPECT_TRUE(ckpt.is_complete("temporal/BotA"));
  EXPECT_EQ(ckpt.load("temporal/BotA"), "payload bytes");
  EXPECT_TRUE(fs::exists(tmp.path / "run" / "run.json"));
  EXPECT_TRUE(fs::exists(tmp.path / "run" / "journal.log"));
}

TEST(CheckpointDirTest, EmptyPayloadRoundTrips) {
  TempDir tmp;
  CheckpointDir ckpt(tmp.path / "run", opts_with(1, false));
  ckpt.store("temporal/TinyBot", "");
  const auto loaded = ckpt.load("temporal/TinyBot");
  ASSERT_TRUE(loaded.has_value());
  EXPECT_TRUE(loaded->empty());
}

TEST(CheckpointDirTest, ResumeSeesPriorStagesFreshDoesNot) {
  TempDir tmp;
  const fs::path dir = tmp.path / "run";
  {
    CheckpointDir ckpt(dir, opts_with(42, false));
    ckpt.store("spatial", "spatial payload");
  }
  {
    CheckpointDir resumed(dir, opts_with(42, true));
    EXPECT_TRUE(resumed.is_complete("spatial"));
    EXPECT_EQ(resumed.load("spatial"), "spatial payload");
  }
  {
    CheckpointDir fresh(dir, opts_with(42, false));
    EXPECT_FALSE(fresh.is_complete("spatial"));
    EXPECT_FALSE(fresh.load("spatial").has_value());
  }
}

TEST(CheckpointDirTest, ConfigHashMismatchIgnoresPriorStages) {
  TempDir tmp;
  const fs::path dir = tmp.path / "run";
  {
    CheckpointDir ckpt(dir, opts_with(42, false));
    ckpt.store("spatial", "old config payload");
  }
  CheckpointDir resumed(dir, opts_with(43, true));
  EXPECT_FALSE(resumed.is_complete("spatial"));
  EXPECT_FALSE(resumed.load("spatial").has_value());
}

TEST(CheckpointDirTest, CorruptArtifactFallsBackToPriorGeneration) {
  TempDir tmp;
  const fs::path dir = tmp.path / "run";
  {
    CheckpointDir ckpt(dir, opts_with(7, false));
    ckpt.store("spatial", "generation one");
    ckpt.store("spatial", "generation two");  // g1 now holds "generation one".
  }
  // Bit-flip the primary artifact's payload.
  const fs::path primary = dir / "spatial.art";
  std::string bytes = durable::read_file(primary);
  bytes.back() ^= 0x20;
  std::ofstream(primary, std::ios::binary | std::ios::trunc) << bytes;

  CheckpointDir resumed(dir, opts_with(7, true));
  const auto loaded = resumed.load("spatial");
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, "generation one");
  EXPECT_EQ(resumed.report().generation, 1);
  ASSERT_EQ(resumed.report().events.size(), 1U);
  EXPECT_EQ(resumed.report().events[0].error, durable::LoadError::kBadChecksum);
  // The bad primary was quarantined, not left to poison the next run.
  EXPECT_FALSE(fs::exists(primary));
  EXPECT_TRUE(fs::exists(dir / "spatial.art.corrupt-1"));
}

TEST(CheckpointDirTest, AllGenerationsCorruptRerunsTheStage) {
  TempDir tmp;
  const fs::path dir = tmp.path / "run";
  {
    CheckpointDir ckpt(dir, opts_with(7, false));
    ckpt.store("tree", "only copy");
  }
  const fs::path primary = dir / "tree.art";
  std::ofstream(primary, std::ios::binary | std::ios::trunc) << "garbage";

  CheckpointDir resumed(dir, opts_with(7, true));
  EXPECT_FALSE(resumed.load("tree").has_value());
  // The stage was dropped from the manifest: a rerun can store it again.
  EXPECT_FALSE(resumed.is_complete("tree"));
  resumed.store("tree", "rebuilt");
  EXPECT_EQ(resumed.load("tree"), "rebuilt");
}

TEST(CheckpointDirTest, GenerationRotationKeepsABoundedSet) {
  TempDir tmp;
  const fs::path dir = tmp.path / "run";
  CheckpointDir ckpt(dir, opts_with(1, false));
  for (int i = 0; i < 5; ++i) {
    ckpt.store("spatial", "copy " + std::to_string(i));
  }
  EXPECT_TRUE(fs::exists(dir / "spatial.art"));
  EXPECT_TRUE(fs::exists(dir / "spatial.art.g1"));
  EXPECT_TRUE(fs::exists(dir / "spatial.art.g2"));
  EXPECT_FALSE(fs::exists(dir / "spatial.art.g3"));
}

TEST(CheckpointDirTest, CorruptManifestIsQuarantinedAndRunStartsFresh) {
  TempDir tmp;
  const fs::path dir = tmp.path / "run";
  {
    CheckpointDir ckpt(dir, opts_with(5, false));
    ckpt.store("spatial", "payload");
  }
  std::ofstream(dir / "run.json", std::ios::trunc) << "{ not json at all";

  CheckpointDir resumed(dir, opts_with(5, true));
  EXPECT_FALSE(resumed.is_complete("spatial"));
  EXPECT_FALSE(resumed.report().clean());
  EXPECT_TRUE(fs::exists(dir / "run.json.corrupt-1"));
  // A fresh, valid manifest was rewritten in its place.
  EXPECT_TRUE(fs::exists(dir / "run.json"));
}

TEST(CheckpointDirTest, StageFaultCrashesBeforeTheManifestUpdate) {
  FaultGuard guard;
  TempDir tmp;
  const fs::path dir = tmp.path / "run";
  {
    CheckpointDir ckpt(dir, opts_with(9, false));
    FaultInjector::instance().configure("checkpoint.stage:spatial");
    EXPECT_THROW(ckpt.store("spatial", "payload"), durable::WriteFailure);
  }
  FaultInjector::instance().clear();
  // The artifact landed but completion was never recorded: resume reruns.
  EXPECT_TRUE(fs::exists(dir / "spatial.art"));
  CheckpointDir resumed(dir, opts_with(9, true));
  EXPECT_FALSE(resumed.is_complete("spatial"));
  EXPECT_FALSE(resumed.load("spatial").has_value());
}

CheckpointDir::Options shared_opts(std::uint64_t hash) {
  CheckpointDir::Options opts;
  opts.config_hash = hash;
  opts.shared = true;
  opts.retry_backoff_ms = 0;  // Keep the retry tests fast.
  return opts;
}

TEST(CheckpointSharedTest, MarkersPublishCompletionAcrossInstances) {
  TempDir tmp;
  const fs::path dir = tmp.path / "run";
  CheckpointDir writer(dir, shared_opts(11));
  CheckpointDir reader(dir, shared_opts(11));
  EXPECT_FALSE(reader.is_complete("spatial"));
  writer.store("spatial", "published by another process");
  // No refresh needed: is_complete re-checks the on-disk marker.
  EXPECT_TRUE(reader.is_complete("spatial"));
  EXPECT_EQ(reader.load("spatial"), "published by another process");
  EXPECT_TRUE(fs::exists(dir / "spatial.done"));
}

TEST(CheckpointSharedTest, MarkersIgnoreAForeignConfigHash) {
  TempDir tmp;
  const fs::path dir = tmp.path / "run";
  {
    CheckpointDir writer(dir, shared_opts(11));
    writer.store("spatial", "payload");
  }
  CheckpointDir other(dir, shared_opts(12));
  EXPECT_FALSE(other.is_complete("spatial"));
  EXPECT_FALSE(other.load("spatial").has_value());
}

TEST(CheckpointSharedTest, RefreshPicksUpMarkersAndDropRemovesThem) {
  TempDir tmp;
  const fs::path dir = tmp.path / "run";
  CheckpointDir a(dir, shared_opts(11));
  a.store("tree", "payload");
  // A shared dir opened later honors existing markers regardless of the
  // resume flag (a fresh run's coordinator wipes them explicitly).
  CheckpointDir b(dir, shared_opts(11));
  EXPECT_TRUE(b.is_complete("tree"));
  b.refresh();
  EXPECT_TRUE(b.is_complete("tree"));
  // An unrecoverable artifact drops the marker for every process.
  std::ofstream(dir / "tree.art", std::ios::binary | std::ios::trunc)
      << "garbage";
  EXPECT_FALSE(b.load("tree").has_value());
  EXPECT_FALSE(fs::exists(dir / "tree.done"));
  a.refresh();
  EXPECT_FALSE(a.is_complete("tree"));
}

TEST(CheckpointRetryTest, TransientReadFaultRetriesThenSucceeds) {
  FaultGuard guard;
  MetricsGuard metrics;
  TempDir tmp;
  CheckpointDir ckpt(tmp.path / "run", opts_with(3, false));
  ckpt.store("spatial", "payload");
  // Two injected failures, then the bounded retry's final attempt wins —
  // the mid-publish reader/writer race, compressed.
  FaultInjector::instance().configure("checkpoint.read:spatial#2");
  EXPECT_EQ(ckpt.load("spatial"), "payload");
  observe::Metrics& reg = observe::Metrics::instance();
  EXPECT_EQ(reg.counter("checkpoint.load.retry").value(), 2U);
  EXPECT_EQ(reg.counter("checkpoint.quarantine").value(), 0U);
}

TEST(CheckpointRetryTest, PersistentReadFaultDropsWithoutQuarantine) {
  FaultGuard guard;
  MetricsGuard metrics;
  TempDir tmp;
  const fs::path dir = tmp.path / "run";
  CheckpointDir ckpt(dir, opts_with(3, false));
  ckpt.store("spatial", "payload");
  FaultInjector::instance().configure("checkpoint.read:spatial");
  EXPECT_FALSE(ckpt.load("spatial").has_value());
  // The injected failure never condemned the (actually healthy) file.
  EXPECT_TRUE(fs::exists(dir / "spatial.art"));
  EXPECT_FALSE(fs::exists(dir / "spatial.art.corrupt-1"));
  EXPECT_EQ(
      observe::Metrics::instance().counter("checkpoint.quarantine").value(),
      0U);
  // The stage was dropped: once the fault clears, a rerun can store it.
  FaultInjector::instance().clear();
  EXPECT_FALSE(ckpt.is_complete("spatial"));
  ckpt.store("spatial", "rebuilt");
  EXPECT_EQ(ckpt.load("spatial"), "rebuilt");
}

TEST(CheckpointRetryTest, RepeatedCorruptionWalksBackTwoGenerations) {
  MetricsGuard metrics;
  TempDir tmp;
  const fs::path dir = tmp.path / "run";
  {
    CheckpointDir ckpt(dir, opts_with(7, false));
    ckpt.store("spatial", "generation one");
    ckpt.store("spatial", "generation two");
    ckpt.store("spatial", "generation three");  // .g2 holds "generation one".
  }
  // Payload bit-flips (the frame header survives, so both copies fail with
  // bad_checksum — the error class that quarantines).
  for (const char* name : {"spatial.art", "spatial.art.g1"}) {
    const fs::path path = dir / name;
    std::string bytes = durable::read_file(path);
    bytes.back() ^= 0x20;
    std::ofstream(path, std::ios::binary | std::ios::trunc) << bytes;
  }

  CheckpointDir resumed(dir, opts_with(7, true));
  const auto loaded = resumed.load("spatial");
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, "generation one");
  EXPECT_EQ(resumed.report().generation, 2);
  // Exactly the two corrupt copies were quarantined, after each exhausted
  // its bounded retry (read_retries=2 -> two retry bumps per copy).
  observe::Metrics& reg = observe::Metrics::instance();
  EXPECT_EQ(reg.counter("checkpoint.quarantine").value(), 2U);
  EXPECT_EQ(reg.counter("checkpoint.load.retry").value(), 4U);
  EXPECT_TRUE(fs::exists(dir / "spatial.art.corrupt-1"));
  EXPECT_TRUE(fs::exists(dir / "spatial.art.g1.corrupt-1"));
}

TEST(CheckpointDirTest, IoWriteFaultDuringStoreLeavesStageIncomplete) {
  FaultGuard guard;
  TempDir tmp;
  const fs::path dir = tmp.path / "run";
  CheckpointDir ckpt(dir, opts_with(9, false));
  FaultInjector::instance().configure("io.write:spatial");
  EXPECT_THROW(ckpt.store("spatial", "payload"), durable::WriteFailure);
  FaultInjector::instance().clear();
  EXPECT_FALSE(ckpt.is_complete("spatial"));
  EXPECT_FALSE(fs::exists(dir / "spatial.art"));
}

TEST(CheckpointSharedTest, ZeroLengthMarkerReadsAsStageNotDone) {
  MetricsGuard metrics;
  TempDir tmp;
  const fs::path dir = tmp.path / "run";
  CheckpointDir writer(dir, shared_opts(11));
  writer.store("temporal/BotA", "payload");
  // A crashed writer that opened its marker but never wrote a byte leaves a
  // zero-length .done file. That must read as "stage not done" — not as a
  // bad_magic corruption event, and without disturbing intact stages.
  std::ofstream(dir / (CheckpointDir::slug("temporal/BotB") + ".done"),
                std::ios::binary | std::ios::trunc);
  CheckpointDir reader(dir, shared_opts(11));
  EXPECT_FALSE(reader.is_complete("temporal/BotB"));
  EXPECT_FALSE(reader.load("temporal/BotB").has_value());
  EXPECT_TRUE(reader.is_complete("temporal/BotA"));
  EXPECT_TRUE(reader.report().events.empty());  // No corruption diagnosed.
  reader.refresh();
  EXPECT_FALSE(reader.is_complete("temporal/BotB"));
}

TEST(CheckpointDirTest, ZeroLengthArtifactSkipsRetriesAndQuarantine) {
  MetricsGuard metrics;
  TempDir tmp;
  const fs::path dir = tmp.path / "run";
  {
    CheckpointDir ckpt(dir, opts_with(5, false));
    ckpt.store("spatial", "generation one");
    ckpt.store("spatial", "generation two");
  }
  // Truncate the primary to zero bytes (crashed writer, lost data blocks).
  std::ofstream(dir / "spatial.art", std::ios::binary | std::ios::trunc);
  CheckpointDir resumed(dir, opts_with(5, true));
  const auto loaded = resumed.load("spatial");
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, "generation one");  // Fell straight through to .g1.
  observe::Metrics& reg = observe::Metrics::instance();
  EXPECT_EQ(reg.counter("checkpoint.load.retry").value(), 0U);
  EXPECT_EQ(reg.counter("checkpoint.quarantine").value(), 0U);
  EXPECT_FALSE(fs::exists(dir / "spatial.art.corrupt-1"));
  EXPECT_TRUE(resumed.report().events.empty());
}

TEST(CheckpointDirTest, InvalidateForgetsAStageUntilItIsStoredAgain) {
  TempDir tmp;
  const fs::path dir = tmp.path / "run";
  CheckpointDir ckpt(dir, opts_with(6, false));
  ckpt.store("temporal/BotA", "stale payload");
  ckpt.store("spatial", "spatial payload");
  ASSERT_TRUE(ckpt.is_complete("temporal/BotA"));
  ckpt.invalidate("temporal/BotA");
  EXPECT_FALSE(ckpt.is_complete("temporal/BotA"));
  EXPECT_FALSE(ckpt.load("temporal/BotA").has_value());
  EXPECT_TRUE(ckpt.is_complete("spatial"));  // Others untouched.
  EXPECT_EQ(ckpt.completed_stages(), std::vector<std::string>{"spatial"});
  ckpt.invalidate("temporal/BotA");  // Idempotent on an incomplete stage.
  // A resumed run must also not see the invalidated stage.
  CheckpointDir resumed(dir, opts_with(6, true));
  EXPECT_FALSE(resumed.is_complete("temporal/BotA"));
  EXPECT_TRUE(resumed.is_complete("spatial"));
  // Storing again completes it once more.
  ckpt.store("temporal/BotA", "fresh payload");
  EXPECT_EQ(ckpt.load("temporal/BotA"), "fresh payload");
}

TEST(CheckpointSharedTest, InvalidateRemovesTheMarkerForEveryProcess) {
  TempDir tmp;
  const fs::path dir = tmp.path / "run";
  CheckpointDir a(dir, shared_opts(13));
  CheckpointDir b(dir, shared_opts(13));
  a.store("tree", "payload");
  ASSERT_TRUE(b.is_complete("tree"));
  a.invalidate("tree");
  EXPECT_FALSE(fs::exists(dir / "tree.done"));
  b.refresh();
  EXPECT_FALSE(b.is_complete("tree"));
}

}  // namespace
}  // namespace acbm::core
