#include "core/spatial_model.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "stats/descriptive.h"
#include "trace/world.h"

namespace acbm::core {
namespace {

struct Fixture {
  trace::World world = trace::build_world(trace::small_world_options(23));
  net::Asn busiest;
  TargetSeries series;

  Fixture() {
    busiest = world.dataset.target_asns().front();
    series = extract_target_series(world.dataset, busiest);
  }

  [[nodiscard]] TargetSeries train_prefix(std::size_t n) const {
    TargetSeries out = series;
    n = std::min(n, out.attack_indices.size());
    out.attack_indices.resize(n);
    out.duration_s.resize(n);
    out.interval_s.resize(n);
    out.hour.resize(n);
    out.day.resize(n);
    out.magnitude.resize(n);
    return out;
  }
};

SpatialModelOptions fast_options() {
  SpatialModelOptions opts;
  opts.grid_search = false;  // Keep unit tests fast.
  opts.fixed.mlp.max_epochs = 80;
  return opts;
}

TEST(SpatialModel, FitsOnBusiestTarget) {
  Fixture fx;
  ASSERT_GT(fx.series.attack_indices.size(), 30u);
  SpatialModel model(fast_options());
  model.fit(fx.series, fx.world.dataset, fx.world.ip_map);
  EXPECT_TRUE(model.fitted());
  EXPECT_EQ(model.target_asn(), fx.busiest);
  EXPECT_FALSE(model.tracked_ases().empty());
}

TEST(SpatialModel, UnfittedUseThrows) {
  SpatialModel model;
  const std::vector<double> xs{1.0, 2.0};
  EXPECT_THROW((void)model.forecast_next(SpatialSeries::kDuration, xs),
               std::logic_error);
  EXPECT_THROW(
      (void)model.predict_source_distribution(
          std::span<const std::unordered_map<net::Asn, double>>{}),
      std::logic_error);
}

TEST(SpatialModel, DurationForecastIsFiniteAndPositiveish) {
  Fixture fx;
  SpatialModel model(fast_options());
  const std::size_t split = fx.series.attack_indices.size() * 8 / 10;
  model.fit(fx.train_prefix(split), fx.world.dataset, fx.world.ip_map);
  const double f =
      model.forecast_next(SpatialSeries::kDuration, fx.series.duration_s);
  EXPECT_TRUE(std::isfinite(f));
  // Durations in the generator live in [30, 2 days]; the forecast should be
  // in a sane band around that.
  EXPECT_GT(f, -86400.0);
  EXPECT_LT(f, 4.0 * 86400.0);
}

TEST(SpatialModel, ShortSeriesUsesMeanFallback) {
  Fixture fx;
  SpatialModel model(fast_options());
  const TargetSeries tiny = fx.train_prefix(5);
  model.fit(tiny, fx.world.dataset, fx.world.ip_map);
  const double expected_mean =
      acbm::stats::mean(std::span<const double>(tiny.duration_s));
  EXPECT_DOUBLE_EQ(
      model.forecast_next(SpatialSeries::kDuration, tiny.duration_s),
      expected_mean);
}

TEST(SpatialModel, SourceDistributionIsNormalized) {
  Fixture fx;
  SpatialModel model(fast_options());
  model.fit(fx.series, fx.world.dataset, fx.world.ip_map);
  std::vector<std::unordered_map<net::Asn, double>> history;
  for (std::size_t idx : fx.series.attack_indices) {
    history.push_back(source_asn_distribution(
        fx.world.dataset.attacks()[idx], fx.world.ip_map));
  }
  const auto pred = model.predict_source_distribution(history);
  double total = 0.0;
  for (const auto& [asn, share] : pred) {
    EXPECT_GE(share, 0.0);
    total += share;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(SpatialModel, SourcePredictionTracksRecentShift) {
  // History shifts all mass from AS 1 to AS 2; the EWMA must follow.
  Fixture fx;
  SpatialModel model(fast_options());
  model.fit(fx.series, fx.world.dataset, fx.world.ip_map);
  const net::Asn a = model.tracked_ases().size() > 0 ? model.tracked_ases()[0] : 1;
  const net::Asn b = model.tracked_ases().size() > 1 ? model.tracked_ases()[1] : 2;
  std::vector<std::unordered_map<net::Asn, double>> history;
  for (int i = 0; i < 10; ++i) history.push_back({{a, 1.0}});
  for (int i = 0; i < 10; ++i) history.push_back({{b, 1.0}});
  const auto pred = model.predict_source_distribution(history);
  const double share_a = pred.contains(a) ? pred.at(a) : 0.0;
  const double share_b = pred.contains(b) ? pred.at(b) : 0.0;
  EXPECT_GT(share_b, share_a);
}

TEST(SpatialModel, EmptyHistoryGivesUniformOverTracked) {
  Fixture fx;
  SpatialModel model(fast_options());
  model.fit(fx.series, fx.world.dataset, fx.world.ip_map);
  const auto pred = model.predict_source_distribution(
      std::span<const std::unordered_map<net::Asn, double>>{});
  ASSERT_FALSE(pred.empty());
  const double expected = 1.0 / static_cast<double>(model.tracked_ases().size());
  for (const auto& [asn, share] : pred) {
    EXPECT_NEAR(share, expected, 1e-9);
  }
}

TEST(SpatialModel, GridSearchPathProducesFittedNar) {
  Fixture fx;
  SpatialModelOptions opts;  // Grid search on (defaults are small).
  opts.grid.mlp.max_epochs = 60;
  SpatialModel model(opts);
  model.fit(fx.series, fx.world.dataset, fx.world.ip_map);
  EXPECT_TRUE(model.fitted());
  const double f = model.forecast_next(SpatialSeries::kHour, fx.series.hour);
  EXPECT_TRUE(std::isfinite(f));
}

TEST(SpatialModel, BadStartThrows) {
  Fixture fx;
  SpatialModel model(fast_options());
  model.fit(fx.series, fx.world.dataset, fx.world.ip_map);
  EXPECT_THROW((void)model.one_step_predictions(SpatialSeries::kHour,
                                                fx.series.hour, 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace acbm::core
