// FeatureCache: cached series must be identical to direct extraction, hits
// and misses must be accounted, and concurrent access must agree.
#include <vector>

#include <gtest/gtest.h>

#include "core/feature_cache.h"
#include "core/parallel.h"
#include "trace/world.h"

namespace {

using acbm::core::FeatureCache;

class FeatureCacheTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    world_ = new acbm::trace::World(
        acbm::trace::build_world(acbm::trace::small_world_options(77)));
  }
  static void TearDownTestSuite() {
    delete world_;
    world_ = nullptr;
  }
  static acbm::trace::World* world_;
};

acbm::trace::World* FeatureCacheTest::world_ = nullptr;

TEST_F(FeatureCacheTest, FamilySeriesMatchesDirectExtraction) {
  FeatureCache cache(world_->dataset, world_->ip_map);
  const auto n_families =
      static_cast<std::uint32_t>(world_->dataset.family_names().size());
  ASSERT_GT(n_families, 0u);
  for (std::uint32_t f = 0; f < n_families; ++f) {
    const auto cached = cache.family(f);
    const acbm::core::FamilySeries direct = acbm::core::extract_family_series(
        world_->dataset, f, world_->ip_map, nullptr);
    ASSERT_EQ(cached->attack_indices, direct.attack_indices);
    ASSERT_EQ(cached->magnitude, direct.magnitude);
    ASSERT_EQ(cached->activity, direct.activity);
    ASSERT_EQ(cached->norm_magnitude, direct.norm_magnitude);
    ASSERT_EQ(cached->source_coeff, direct.source_coeff);
    ASSERT_EQ(cached->interval_s, direct.interval_s);
    ASSERT_EQ(cached->hour, direct.hour);
    ASSERT_EQ(cached->day, direct.day);
    ASSERT_EQ(cached->duration_s, direct.duration_s);
  }
  EXPECT_EQ(cache.misses(), n_families);
  EXPECT_EQ(cache.hits(), 0u);
}

TEST_F(FeatureCacheTest, TargetSeriesHitOnSecondAccess) {
  FeatureCache cache(world_->dataset, world_->ip_map);
  const std::vector<acbm::net::Asn> targets = world_->dataset.target_asns();
  ASSERT_FALSE(targets.empty());
  const auto first = cache.target(targets.front());
  const auto second = cache.target(targets.front());
  EXPECT_EQ(first.get(), second.get());
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 1u);

  const acbm::core::TargetSeries direct =
      acbm::core::extract_target_series(world_->dataset, targets.front());
  EXPECT_EQ(first->asn, direct.asn);
  EXPECT_EQ(first->attack_indices, direct.attack_indices);
  EXPECT_EQ(first->duration_s, direct.duration_s);
  EXPECT_EQ(first->interval_s, direct.interval_s);
  EXPECT_EQ(first->hour, direct.hour);
  EXPECT_EQ(first->day, direct.day);
  EXPECT_EQ(first->magnitude, direct.magnitude);
}

TEST_F(FeatureCacheTest, InvalidateKeepsOutstandingPointersValid) {
  FeatureCache cache(world_->dataset, world_->ip_map);
  const auto held = cache.family(0);
  const std::size_t n = held->attack_indices.size();
  cache.invalidate();
  EXPECT_EQ(held->attack_indices.size(), n);  // Still alive via shared_ptr.
  (void)cache.family(0);
  EXPECT_EQ(cache.misses(), 2u);  // Re-extracted after invalidation.
}

TEST_F(FeatureCacheTest, ConcurrentAccessAgreesWithSerial) {
  // Same fan-out shape as the fitting stages: every task asks for every
  // family; all tasks must observe identical series.
  FeatureCache cache(world_->dataset, world_->ip_map);
  const auto n_families =
      static_cast<std::uint32_t>(world_->dataset.family_names().size());
  const std::vector<std::size_t> sizes = acbm::core::parallel_map(
      static_cast<std::size_t>(n_families), [&](std::size_t f) {
        return cache.family(static_cast<std::uint32_t>(f))
            ->attack_indices.size();
      });
  for (std::uint32_t f = 0; f < n_families; ++f) {
    const acbm::core::FamilySeries direct = acbm::core::extract_family_series(
        world_->dataset, f, world_->ip_map, nullptr);
    EXPECT_EQ(sizes[f], direct.attack_indices.size());
  }
}

}  // namespace
