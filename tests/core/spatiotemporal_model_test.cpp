#include "core/spatiotemporal_model.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <unordered_set>

#include "core/evaluation.h"
#include "trace/world.h"

namespace acbm::core {
namespace {

SpatiotemporalOptions fast_options() {
  SpatiotemporalOptions opts;
  opts.spatial.grid_search = false;
  opts.spatial.fixed.mlp.max_epochs = 60;
  return opts;
}

struct Fixture {
  trace::World world = trace::build_world(trace::small_world_options(29));
  SpatiotemporalModel model{fast_options()};

  Fixture() { model.fit(world.dataset, world.ip_map); }
};

TEST(StFeatures, RowShapesAreStable) {
  StFeatures f;
  EXPECT_EQ(f.hour_row().size(), 6u);
  EXPECT_EQ(f.day_row().size(), 4u);
}

TEST(StFeatures, DayRowEncodesImpliedDays) {
  StFeatures f;
  f.prev_day = 10.0;
  f.tmp_interval_s = 86400.0;
  f.spa_interval_s = 2.0 * 86400.0;
  const auto row = f.day_row();
  EXPECT_DOUBLE_EQ(row[0], 11.0);
  EXPECT_DOUBLE_EQ(row[1], 12.0);
  EXPECT_DOUBLE_EQ(row[2], 10.0);
}

TEST(SpatiotemporalModel, FitsEndToEnd) {
  Fixture fx;
  EXPECT_TRUE(fx.model.fitted());
  EXPECT_TRUE(fx.model.hour_tree().fitted());
  EXPECT_TRUE(fx.model.day_tree().fitted());
}

TEST(SpatiotemporalModel, UnfittedUseThrows) {
  SpatiotemporalModel model;
  EXPECT_THROW((void)model.predict_hour(StFeatures{}), std::logic_error);
  EXPECT_THROW((void)model.predict_day(StFeatures{}), std::logic_error);
}

TEST(SpatiotemporalModel, HourPredictionIsClamped) {
  Fixture fx;
  StFeatures f;
  f.tmp_hour = 80.0;  // Absurd inputs must still produce a valid hour.
  f.spa_hour = -40.0;
  f.prev_hour = 12.0;
  f.prev_day = 5.0;
  f.avg_magnitude = 50.0;
  const double hour = fx.model.predict_hour(f);
  EXPECT_GE(hour, 0.0);
  EXPECT_LT(hour, 24.0);
}

TEST(SpatiotemporalModel, SubModelAccess) {
  Fixture fx;
  const std::uint32_t dj = fx.world.dataset.family_index("DirtJumper");
  EXPECT_NE(fx.model.temporal(dj), nullptr);
  EXPECT_EQ(fx.model.temporal(9999), nullptr);
  const net::Asn busiest = fx.world.dataset.target_asns().front();
  EXPECT_NE(fx.model.spatial(busiest), nullptr);
  EXPECT_EQ(fx.model.spatial(4242424), nullptr);
}

TEST(AssembleRows, RowsAreCausalAndWellFormed) {
  Fixture fx;
  std::unordered_map<std::uint32_t, TemporalModel> temporal;
  std::unordered_map<net::Asn, SpatialModel> spatial;
  for (std::uint32_t f = 0; f < 10; ++f) {
    if (const TemporalModel* m = fx.model.temporal(f)) temporal.emplace(f, *m);
  }
  for (net::Asn asn : fx.world.dataset.target_asns()) {
    if (const SpatialModel* m = fx.model.spatial(asn)) spatial.emplace(asn, *m);
  }
  const auto rows = assemble_rows(fx.world.dataset, fx.world.ip_map, temporal,
                                  spatial, fx.model.options());
  ASSERT_GT(rows.size(), 50u);
  std::unordered_set<std::size_t> seen;
  for (const StRow& row : rows) {
    EXPECT_TRUE(seen.insert(row.attack_index).second)
        << "attack predicted twice";
    EXPECT_GE(row.truth_hour, 0.0);
    EXPECT_LT(row.truth_hour, 24.0);
    EXPECT_GE(row.features.prev_day, 0.0);
    // Causality: the previous attack precedes the predicted one.
    EXPECT_LE(row.features.prev_day, row.truth_day + 1e-9);
    const trace::Attack& attack = fx.world.dataset.attacks()[row.attack_index];
    EXPECT_EQ(attack.target_asn, row.target_asn);
  }
  // Rows are sorted by attack index (deterministic output).
  for (std::size_t i = 1; i < rows.size(); ++i) {
    EXPECT_LT(rows[i - 1].attack_index, rows[i].attack_index);
  }
}

TEST(SpatiotemporalModel, IntelBudgetLimitsSpatialHistory) {
  trace::World world = trace::build_world(trace::small_world_options(29));
  SpatiotemporalOptions limited = fast_options();
  limited.max_target_history = 10;
  SpatiotemporalModel model(limited);
  model.fit(world.dataset, world.ip_map);
  EXPECT_TRUE(model.fitted());
  // Busy targets still get spatial models under the budget.
  const net::Asn busiest = world.dataset.target_asns().front();
  EXPECT_NE(model.spatial(busiest), nullptr);
}

TEST(SpatiotemporalModel, UnlimitedHistoryNoWorseThanTinyBudget) {
  trace::World world = trace::build_world(trace::small_world_options(31));
  const auto rmse_for = [&](std::size_t limit) {
    SpatiotemporalOptions opts = fast_options();
    opts.max_target_history = limit;
    // Direct evaluation through the shared harness.
    return core::evaluate_timestamps(world.dataset, world.ip_map, opts)
        .rmse_hour_st;
  };
  const double unlimited = rmse_for(0);
  const double tiny = rmse_for(5);
  // More information cannot make the fitted model substantially worse.
  EXPECT_LT(unlimited, tiny * 1.15);
}

TEST(SpatiotemporalModel, PredictionsAreDeterministic) {
  Fixture fx;
  StFeatures f;
  f.tmp_hour = 14.0;
  f.spa_hour = 15.0;
  f.tmp_interval_s = 3600.0;
  f.spa_interval_s = 7200.0;
  f.prev_hour = 13.0;
  f.prev_day = 30.0;
  f.avg_magnitude = 80.0;
  EXPECT_DOUBLE_EQ(fx.model.predict_hour(f), fx.model.predict_hour(f));
  EXPECT_DOUBLE_EQ(fx.model.predict_day(f), fx.model.predict_day(f));
}

TEST(SpatiotemporalModel, DayPredictionNearImpliedDay) {
  Fixture fx;
  StFeatures f;
  f.tmp_hour = 12.0;
  f.spa_hour = 12.0;
  f.tmp_interval_s = 86400.0;
  f.spa_interval_s = 86400.0;
  f.prev_hour = 12.0;
  f.prev_day = 40.0;
  f.avg_magnitude = 60.0;
  // Both sub-models imply day 41; the tree should stay in the neighborhood.
  const double day = fx.model.predict_day(f);
  EXPECT_GT(day, 35.0);
  EXPECT_LT(day, 50.0);
}

}  // namespace
}  // namespace acbm::core
