#include "core/baselines.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace acbm::core {
namespace {

TEST(AlwaysSame, RepeatsPreviousObservation) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> preds = always_same_predictions(xs, 1);
  EXPECT_EQ(preds, (std::vector<double>{1.0, 2.0, 3.0}));
}

TEST(AlwaysSame, StartMidSeries) {
  const std::vector<double> xs{5.0, 7.0, 9.0, 11.0};
  const std::vector<double> preds = always_same_predictions(xs, 3);
  EXPECT_EQ(preds, (std::vector<double>{9.0}));
}

TEST(AlwaysMean, RunningMeanOfHistory) {
  const std::vector<double> xs{2.0, 4.0, 6.0, 8.0};
  const std::vector<double> preds = always_mean_predictions(xs, 2);
  // Prediction for index 2: mean(2,4) = 3; for index 3: mean(2,4,6) = 4.
  EXPECT_EQ(preds, (std::vector<double>{3.0, 4.0}));
}

TEST(AlwaysMean, ConstantSeriesIsPerfect) {
  const std::vector<double> xs(10, 5.0);
  for (double p : always_mean_predictions(xs, 1)) EXPECT_DOUBLE_EQ(p, 5.0);
}

TEST(Baselines, PredictionsAreCausal) {
  std::vector<double> xs{1.0, 2.0, 3.0, 4.0, 5.0};
  const auto same_before = always_same_predictions(xs, 2);
  const auto mean_before = always_mean_predictions(xs, 2);
  xs.back() = 1000.0;  // Only the last point changes.
  const auto same_after = always_same_predictions(xs, 2);
  const auto mean_after = always_mean_predictions(xs, 2);
  // All predictions (including the one for the final point) are unchanged.
  EXPECT_EQ(same_before, same_after);
  EXPECT_EQ(mean_before, mean_after);
}

TEST(Baselines, BadStartThrows) {
  const std::vector<double> xs{1.0, 2.0};
  EXPECT_THROW((void)always_same_predictions(xs, 0), std::invalid_argument);
  EXPECT_THROW((void)always_same_predictions(xs, 3), std::invalid_argument);
  EXPECT_THROW((void)always_mean_predictions(xs, 0), std::invalid_argument);
  EXPECT_THROW((void)always_mean_predictions(xs, 3), std::invalid_argument);
}

TEST(Baselines, EmptyPredictionsAtSeriesEnd) {
  const std::vector<double> xs{1.0, 2.0};
  EXPECT_TRUE(always_same_predictions(xs, 2).empty());
  EXPECT_TRUE(always_mean_predictions(xs, 2).empty());
}

}  // namespace
}  // namespace acbm::core
