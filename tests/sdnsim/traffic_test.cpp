#include "sdnsim/traffic.h"

#include <gtest/gtest.h>

#include "core/features.h"
#include "trace/world.h"

namespace acbm::sdnsim {
namespace {

struct Fixture {
  trace::World world = trace::build_world(trace::small_world_options(13));
  net::Asn target;
  TargetTrafficModel model;

  Fixture()
      : target(world.dataset.target_asns().front()),
        model(world.dataset, world.ip_map, target, {}) {}
};

TEST(TargetTrafficModel, QuietMinuteHasOnlyBenignTraffic) {
  Fixture fx;
  // One hour before the observation window starts: no attacks yet.
  const MinuteTraffic t = fx.model.minute(fx.world.dataset.window_start() - 3600);
  EXPECT_DOUBLE_EQ(t.total_attack(), 0.0);
  EXPECT_GT(t.total_benign(), 0.0);
}

TEST(TargetTrafficModel, AttackMinutesCarryAttackTraffic) {
  Fixture fx;
  const auto indices = fx.world.dataset.attacks_on_asn(fx.target);
  ASSERT_FALSE(indices.empty());
  const trace::Attack& attack = fx.world.dataset.attacks()[indices.front()];
  // A minute fully inside the attack.
  const trace::EpochSeconds mid =
      attack.start + static_cast<trace::EpochSeconds>(attack.duration_s / 2);
  const MinuteTraffic t = fx.model.minute(mid - mid % 60);
  EXPECT_GT(t.total_attack(), 0.0);
}

TEST(TargetTrafficModel, AttackRateMatchesMagnitude) {
  Fixture fx;
  const auto indices = fx.world.dataset.attacks_on_asn(fx.target);
  const trace::Attack& attack = fx.world.dataset.attacks()[indices.front()];
  // Pick a minute covered only by this attack (its very first minute,
  // assuming no overlap — verify and skip otherwise).
  const trace::EpochSeconds minute = attack.start - attack.start % 60 + 60;
  const auto overlapping = fx.model.attacks_overlapping(minute, minute + 60);
  if (overlapping.size() != 1) GTEST_SKIP() << "overlapping attacks";
  const MinuteTraffic t = fx.model.minute(minute);
  // rate_per_bot = 1.0: total attack units == bots with mapped ASes.
  EXPECT_NEAR(t.total_attack(), static_cast<double>(attack.magnitude()), 1.0);
}

TEST(TargetTrafficModel, BenignTrafficFollowsDiurnalCycle) {
  Fixture fx;
  const trace::EpochSeconds base = fx.world.dataset.window_start() - 86400;
  const MinuteTraffic afternoon = fx.model.minute(base + 14 * 3600);
  const MinuteTraffic night = fx.model.minute(base + 2 * 3600);
  EXPECT_GT(afternoon.total_benign(), night.total_benign());
}

TEST(TargetTrafficModel, AttacksOverlappingFindsKnownAttacks) {
  Fixture fx;
  const auto indices = fx.world.dataset.attacks_on_asn(fx.target);
  const trace::Attack& attack = fx.world.dataset.attacks()[indices.front()];
  const auto found = fx.model.attacks_overlapping(attack.start, attack.end());
  EXPECT_FALSE(found.empty());
  bool contains = false;
  for (std::size_t idx : found) contains |= idx == indices.front();
  EXPECT_TRUE(contains);
  EXPECT_TRUE(fx.model
                  .attacks_overlapping(fx.world.dataset.window_start() - 7200,
                                       fx.world.dataset.window_start() - 3600)
                  .empty());
}

TEST(TargetTrafficModel, BenignSourcesIncludeBotAses) {
  // Filtering realism: some benign traffic must come from the same ASes
  // that host bots, so blanket AS filters have measurable collateral.
  Fixture fx;
  const MinuteTraffic t = fx.model.minute(fx.world.dataset.window_start());
  const auto indices = fx.world.dataset.attacks_on_asn(fx.target);
  std::size_t shared = 0;
  for (std::size_t idx : indices) {
    for (const auto& [asn, share] : core::source_asn_distribution(
             fx.world.dataset.attacks()[idx], fx.world.ip_map)) {
      if (t.benign.contains(asn)) ++shared;
    }
    if (shared > 0) break;
  }
  EXPECT_GT(shared, 0u);
}

}  // namespace
}  // namespace acbm::sdnsim
