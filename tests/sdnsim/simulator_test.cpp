#include "sdnsim/simulator.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/features.h"
#include "trace/world.h"

namespace acbm::sdnsim {
namespace {

struct Fixture {
  // Seed chosen so the generated window clears every policy threshold below
  // with a wide margin (blocked fraction ~0.94 against the 0.6 bound).
  trace::World world = trace::build_world(trace::small_world_options(20));
  net::Asn target;
  TargetTrafficModel traffic;
  trace::EpochSeconds sim_start;
  std::size_t sim_minutes = 2 * 24 * 60;  // Two days.

  Fixture()
      : target(world.dataset.target_asns().front()),
        traffic(world.dataset, world.ip_map, target, {}) {
    // Simulate over a window that contains attacks: start mid-trace.
    sim_start = world.dataset.window_start() + 20 * 86400;
  }
};

TEST(Simulate, AlwaysHardenedBlocksMostAttackTraffic) {
  Fixture fx;
  StaticPolicy policy(ChainOrder::kFirewallFirst, "fw");
  const SimulationReport report =
      simulate(fx.traffic, policy, fx.sim_start, fx.sim_minutes);
  ASSERT_GT(report.attack_total, 0.0) << "window contains no attacks";
  EXPECT_GT(report.attack_blocked_fraction(), 0.6);
  EXPECT_DOUBLE_EQ(report.hardened_fraction(), 1.0);
  EXPECT_EQ(report.order_switches, 0u);
}

TEST(Simulate, PeacetimeOrderBlocksLess) {
  Fixture fx;
  StaticPolicy fw(ChainOrder::kFirewallFirst, "fw");
  StaticPolicy lb(ChainOrder::kLoadBalancerFirst, "lb");
  const SimulationReport hard =
      simulate(fx.traffic, fw, fx.sim_start, fx.sim_minutes);
  const SimulationReport soft =
      simulate(fx.traffic, lb, fx.sim_start, fx.sim_minutes);
  EXPECT_GT(hard.attack_blocked_fraction(), soft.attack_blocked_fraction());
  // But the peacetime order has lower benign loss.
  EXPECT_LT(soft.benign_loss_fraction(), hard.benign_loss_fraction());
}

TEST(Simulate, TrafficConservation) {
  Fixture fx;
  StaticPolicy policy(ChainOrder::kFirewallFirst, "fw");
  const SimulationReport report =
      simulate(fx.traffic, policy, fx.sim_start, fx.sim_minutes);
  EXPECT_NEAR(report.benign_delivered + report.benign_dropped,
              report.benign_total, report.benign_total * 1e-9 + 1e-6);
  EXPECT_LE(report.attack_delivered, report.attack_total + 1e-6);
  EXPECT_DOUBLE_EQ(report.total_minutes,
                   static_cast<double>(fx.sim_minutes));
}

TEST(Simulate, ReactivePolicyHardensDuringAttacks) {
  Fixture fx;
  ReactivePolicy policy({});  // Unknown baseline: everything anomalous once
                              // traffic exceeds 0 — still exercises the path.
  const SimulationReport report =
      simulate(fx.traffic, policy, fx.sim_start, fx.sim_minutes);
  EXPECT_GT(report.hardened_minutes, 0.0);
  EXPECT_GT(report.order_switches, 0u);
}

TEST(Simulate, PredictiveWindowCutsHardenedTime) {
  Fixture fx;
  // A schedule covering only one six-hour window.
  PredictivePolicy policy(
      {{fx.sim_start + 3600, fx.sim_start + 3600 + 6 * 3600, {}}});
  const SimulationReport report =
      simulate(fx.traffic, policy, fx.sim_start, fx.sim_minutes);
  EXPECT_NEAR(report.hardened_minutes, 6.0 * 60.0, 1.0);
  EXPECT_LT(report.hardened_fraction(), 0.2);
  EXPECT_EQ(report.order_switches, 2u);  // In and out.
}

TEST(Simulate, DiversionRulesReduceDeliveredAttackTraffic) {
  Fixture fx;
  // Rules for the target's dominant source ASes, pre-installed all day.
  const auto indices = fx.world.dataset.attacks_on_asn(fx.target);
  std::unordered_map<net::Asn, double> totals;
  for (std::size_t idx : indices) {
    for (const auto& [asn, share] : core::source_asn_distribution(
             fx.world.dataset.attacks()[idx], fx.world.ip_map)) {
      totals[asn] += share;
    }
  }
  std::vector<std::pair<net::Asn, double>> ranked(totals.begin(), totals.end());
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  std::vector<net::Asn> rules;
  for (std::size_t i = 0; i < ranked.size() && i < 12; ++i) {
    rules.push_back(ranked[i].first);
  }

  PredictivePolicy with_rules(
      {{fx.sim_start, fx.sim_start + static_cast<trace::EpochSeconds>(
                                         fx.sim_minutes) * 60, rules}});
  PredictivePolicy without_rules(
      {{fx.sim_start, fx.sim_start + static_cast<trace::EpochSeconds>(
                                         fx.sim_minutes) * 60, {}}});
  const SimulationReport blocked =
      simulate(fx.traffic, with_rules, fx.sim_start, fx.sim_minutes);
  const SimulationReport open =
      simulate(fx.traffic, without_rules, fx.sim_start, fx.sim_minutes);
  ASSERT_GT(open.attack_total, 0.0);
  EXPECT_LT(blocked.attack_delivered, 0.5 * open.attack_delivered);
}

TEST(Simulate, OrderSwitchCausesInterruptionLoss) {
  Fixture fx;
  // Quiet window (before the trace): only benign traffic flows.
  const trace::EpochSeconds quiet = fx.world.dataset.window_start() - 7 * 86400;
  StaticPolicy steady(ChainOrder::kLoadBalancerFirst, "lb");
  PredictivePolicy flappy({{quiet + 600, quiet + 1200, {}},
                           {quiet + 1800, quiet + 2400, {}}});
  const SimulationReport a = simulate(fx.traffic, steady, quiet, 60);
  const SimulationReport b = simulate(fx.traffic, flappy, quiet, 60);
  EXPECT_EQ(a.order_switches, 0u);
  EXPECT_EQ(b.order_switches, 4u);
  EXPECT_GT(b.benign_dropped, a.benign_dropped);
}

}  // namespace
}  // namespace acbm::sdnsim
