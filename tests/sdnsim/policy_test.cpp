#include "sdnsim/policy.h"

#include <gtest/gtest.h>

namespace acbm::sdnsim {
namespace {

MinuteTraffic quiet_minute() {
  MinuteTraffic t;
  t.benign[1] = 50.0;
  t.benign[2] = 50.0;
  return t;
}

MinuteTraffic attack_minute(double attack_rate) {
  MinuteTraffic t = quiet_minute();
  t.attack[9] = attack_rate;
  return t;
}

std::unordered_map<net::Asn, double> baseline() {
  return {{1, 50.0}, {2, 50.0}};
}

TEST(StaticPolicy, NeverChanges) {
  StaticPolicy peacetime(ChainOrder::kLoadBalancerFirst, "lb");
  StaticPolicy hardened(ChainOrder::kFirewallFirst, "fw");
  for (int m = 0; m < 10; ++m) {
    EXPECT_EQ(peacetime.decide(m * 60, attack_minute(1000.0)).order,
              ChainOrder::kLoadBalancerFirst);
    EXPECT_EQ(hardened.decide(m * 60, quiet_minute()).order,
              ChainOrder::kFirewallFirst);
  }
}

TEST(ReactivePolicy, HardensAfterDetectionDelay) {
  ReactiveOptions opts;
  opts.detection_delay_min = 3;
  ReactivePolicy policy(baseline(), opts);
  // Quiet minutes keep the peacetime order.
  EXPECT_EQ(policy.decide(0, quiet_minute()).order,
            ChainOrder::kLoadBalancerFirst);
  // Attack observed but not yet for `delay` minutes.
  EXPECT_EQ(policy.decide(60, attack_minute(500.0)).order,
            ChainOrder::kLoadBalancerFirst);
  EXPECT_EQ(policy.decide(120, attack_minute(500.0)).order,
            ChainOrder::kLoadBalancerFirst);
  // Third anomalous observation: harden and install a rule for AS 9.
  const PolicyDecision d = policy.decide(180, attack_minute(500.0));
  EXPECT_EQ(d.order, ChainOrder::kFirewallFirst);
  ASSERT_FALSE(d.diverted.empty());
  EXPECT_EQ(d.diverted.front(), 9u);
}

TEST(ReactivePolicy, RevertsAfterCooldown) {
  ReactiveOptions opts;
  opts.detection_delay_min = 1;
  opts.cooldown_min = 2;
  ReactivePolicy policy(baseline(), opts);
  (void)policy.decide(0, attack_minute(500.0));
  EXPECT_EQ(policy.decide(60, attack_minute(500.0)).order,
            ChainOrder::kFirewallFirst);
  // Attack over: two quiet minutes later the order reverts.
  (void)policy.decide(120, quiet_minute());
  const PolicyDecision d = policy.decide(180, quiet_minute());
  EXPECT_EQ(d.order, ChainOrder::kLoadBalancerFirst);
  EXPECT_TRUE(d.diverted.empty());
}

TEST(ReactivePolicy, DoesNotDivertBaselineAses) {
  ReactiveOptions opts;
  opts.detection_delay_min = 1;
  ReactivePolicy policy(baseline(), opts);
  const PolicyDecision d = policy.decide(0, attack_minute(500.0));
  for (net::Asn asn : d.diverted) {
    EXPECT_NE(asn, 1u);
    EXPECT_NE(asn, 2u);
  }
}

TEST(PredictivePolicy, HardensOnlyInsideWindows) {
  PredictivePolicy policy({{1000, 2000, {42}}, {5000, 6000, {43, 44}}});
  EXPECT_EQ(policy.decide(500, quiet_minute()).order,
            ChainOrder::kLoadBalancerFirst);
  const PolicyDecision in1 = policy.decide(1500, quiet_minute());
  EXPECT_EQ(in1.order, ChainOrder::kFirewallFirst);
  EXPECT_EQ(in1.diverted, std::vector<net::Asn>{42});
  EXPECT_EQ(policy.decide(3000, quiet_minute()).order,
            ChainOrder::kLoadBalancerFirst);
  const PolicyDecision in2 = policy.decide(5500, quiet_minute());
  EXPECT_EQ(in2.order, ChainOrder::kFirewallFirst);
  EXPECT_EQ(in2.diverted.size(), 2u);
}

TEST(PredictivePolicy, OverlappingWindowsUnionRules) {
  PredictivePolicy policy({{0, 100, {1}}, {50, 150, {2}}});
  const PolicyDecision d = policy.decide(60, quiet_minute());
  EXPECT_EQ(d.diverted.size(), 2u);
}

TEST(PredictivePolicy, EmptyScheduleNeverHardens) {
  PredictivePolicy policy({});
  EXPECT_EQ(policy.decide(0, attack_minute(9999.0)).order,
            ChainOrder::kLoadBalancerFirst);
}

}  // namespace
}  // namespace acbm::sdnsim
