#include "sdnsim/middlebox.h"

#include <gtest/gtest.h>

namespace acbm::sdnsim {
namespace {

MinuteTraffic make_traffic(double attack, double benign) {
  MinuteTraffic t;
  if (attack > 0.0) t.attack[100] = attack;
  if (benign > 0.0) t.benign[200] = benign;
  return t;
}

TEST(ProcessMinute, FirewallFirstDropsMostAttackTraffic) {
  const MinuteTraffic t = make_traffic(100.0, 100.0);
  const ChainOutcome out = process_minute(t, ChainOrder::kFirewallFirst, {});
  // Default spec: 95% of inspected attack dropped, capacity 600 suffices.
  EXPECT_NEAR(out.attack_delivered, 5.0, 1e-9);
  EXPECT_NEAR(out.attack_dropped, 95.0, 1e-9);
  EXPECT_NEAR(out.benign_dropped, 2.0, 1e-9);  // 2% false positives.
}

TEST(ProcessMinute, LoadBalancerFirstLetsUnflaggedAttackThrough) {
  const MinuteTraffic t = make_traffic(100.0, 100.0);
  const ChainOutcome lb = process_minute(t, ChainOrder::kLoadBalancerFirst, {});
  const ChainOutcome fw = process_minute(t, ChainOrder::kFirewallFirst, {});
  // Only 55% of attack traffic is flagged to the firewall in LB-first mode.
  EXPECT_GT(lb.attack_delivered, fw.attack_delivered);
  EXPECT_NEAR(lb.attack_delivered, 100.0 - 55.0 * 0.95, 1e-9);
  // But benign false positives are also lower.
  EXPECT_LT(lb.benign_dropped, fw.benign_dropped);
}

TEST(ProcessMinute, FirewallOverloadFailsOpen) {
  MiddleboxSpec spec;
  spec.firewall_capacity = 100.0;
  const MinuteTraffic t = make_traffic(500.0, 500.0);
  const ChainOutcome out = process_minute(t, ChainOrder::kFirewallFirst, spec);
  // Only 100 of 1000 units inspected; the rest passes raw.
  EXPECT_NEAR(out.inspected, 100.0, 1e-9);
  EXPECT_NEAR(out.attack_dropped, 50.0 * 0.95, 1e-9);
  EXPECT_GT(out.attack_delivered, 400.0);
}

TEST(ProcessMinute, EmptyTrafficIsNoop) {
  const ChainOutcome out =
      process_minute(MinuteTraffic{}, ChainOrder::kFirewallFirst, {});
  EXPECT_DOUBLE_EQ(out.attack_delivered, 0.0);
  EXPECT_DOUBLE_EQ(out.benign_delivered, 0.0);
  EXPECT_DOUBLE_EQ(out.inspected, 0.0);
}

TEST(ProcessMinute, ConservationOfTraffic) {
  const MinuteTraffic t = make_traffic(321.0, 456.0);
  for (ChainOrder order :
       {ChainOrder::kFirewallFirst, ChainOrder::kLoadBalancerFirst}) {
    const ChainOutcome out = process_minute(t, order, {});
    EXPECT_NEAR(out.attack_delivered + out.attack_dropped, 321.0, 1e-9);
    EXPECT_NEAR(out.benign_delivered + out.benign_dropped, 456.0, 1e-9);
  }
}

TEST(ProcessWithDiversion, DivertedAsIsScrubbed) {
  MinuteTraffic t;
  t.attack[100] = 80.0;
  t.attack[101] = 20.0;
  t.benign[100] = 10.0;
  const ScrubOutcome out = process_with_diversion(t, {100}, {});
  // AS 100's attack scrubbed at 98%; AS 101 passes untouched.
  EXPECT_NEAR(out.attack_scrubbed, 80.0 * 0.98, 1e-9);
  EXPECT_NEAR(out.attack_delivered, 80.0 * 0.02 + 20.0, 1e-9);
  EXPECT_NEAR(out.diverted, 90.0, 1e-9);
  // Benign through the scrubber loses 1%.
  EXPECT_NEAR(out.benign_dropped, 0.1, 1e-9);
}

TEST(ProcessWithDiversion, NoRulesMeansDirectDelivery) {
  MinuteTraffic t;
  t.attack[100] = 50.0;
  t.benign[200] = 70.0;
  const ScrubOutcome out = process_with_diversion(t, {}, {});
  EXPECT_DOUBLE_EQ(out.attack_delivered, 50.0);
  EXPECT_DOUBLE_EQ(out.benign_delivered, 70.0);
  EXPECT_DOUBLE_EQ(out.diverted, 0.0);
}

TEST(ProcessWithDiversion, ScrubberOverloadPassesRawTraffic) {
  ScrubberSpec spec;
  spec.capacity = 50.0;
  MinuteTraffic t;
  t.attack[100] = 100.0;
  const ScrubOutcome out = process_with_diversion(t, {100}, spec);
  // Half cleaned (49 removed of 50), half raw.
  EXPECT_NEAR(out.attack_scrubbed, 50.0 * 0.98, 1e-9);
  EXPECT_NEAR(out.attack_delivered, 50.0 * 0.02 + 50.0, 1e-9);
}

TEST(ProcessWithDiversion, ConservationOfTraffic) {
  MinuteTraffic t;
  t.attack[100] = 123.0;
  t.attack[101] = 45.0;
  t.benign[100] = 67.0;
  t.benign[200] = 89.0;
  const ScrubOutcome out = process_with_diversion(t, {100, 101}, {});
  EXPECT_NEAR(out.attack_delivered + out.attack_scrubbed, 168.0, 1e-9);
  EXPECT_NEAR(out.benign_delivered + out.benign_dropped, 156.0, 1e-9);
}

}  // namespace
}  // namespace acbm::sdnsim
