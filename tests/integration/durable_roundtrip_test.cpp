// Durability round trips: every framed model format must (a) load back
// bit-equal through save_framed/load_framed, (b) detect any single flipped
// payload byte as a typed checksum failure — never a crash, never a silently
// wrong model — and (c) still accept the legacy unframed v2/v1 streams.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <initializer_list>
#include <sstream>
#include <string>

#include "core/durable.h"
#include "core/features.h"
#include "core/pipeline.h"
#include "core/robust.h"
#include "core/spatial_model.h"
#include "core/spatiotemporal_model.h"
#include "core/temporal_model.h"
#include "trace/world.h"

namespace acbm {
namespace {

namespace durable = core::durable;

/// One fitted copy of everything, shared across tests (fitting dominates
/// this binary's runtime).
struct Fixture {
  trace::World world;
  core::TemporalModel temporal;
  core::SpatialModel spatial;
  core::AdversaryModel adversary;

  Fixture() {
    trace::WorldOptions wopts = trace::small_world_options(11);
    wopts.generator.days = 25;
    world = trace::build_world(wopts);

    core::TemporalModelOptions topts;
    temporal = core::TemporalModel(topts);
    temporal.fit(
        core::extract_family_series(world.dataset, 0, world.ip_map, nullptr));

    core::SpatialModelOptions sopts;
    sopts.grid_search = false;
    sopts.fixed.mlp.max_epochs = 60;
    for (net::Asn asn : world.dataset.target_asns()) {
      const core::TargetSeries series =
          core::extract_target_series(world.dataset, asn);
      if (series.attack_indices.size() < 8) continue;
      spatial = core::SpatialModel(sopts);
      spatial.fit(series, world.dataset, world.ip_map);
      break;
    }

    core::SpatiotemporalOptions stopts;
    stopts.spatial.grid_search = false;
    stopts.spatial.fixed.mlp.max_epochs = 60;
    adversary = core::AdversaryModel(stopts);
    adversary.fit(world.dataset, world.ip_map);
  }
};

const Fixture& fixture() {
  static const Fixture f;
  return f;
}

/// The property: flipping any payload byte of a framed artifact makes the
/// loader throw LoadFailure(kBadChecksum). Sampled at the payload's start,
/// middle, and end; header corruption and truncation must also stay typed.
template <typename LoadFn>
void expect_corruption_detected(const std::string& framed, LoadFn load) {
  ASSERT_TRUE(durable::looks_framed(framed));
  const std::size_t payload_begin = framed.find('\n') + 1;
  ASSERT_LT(payload_begin, framed.size());
  for (const std::size_t offset :
       {payload_begin, payload_begin + (framed.size() - payload_begin) / 2,
        framed.size() - 1}) {
    std::string corrupted = framed;
    corrupted[offset] ^= 0x10;
    std::istringstream in(corrupted);
    try {
      load(in);
      FAIL() << "corruption at byte " << offset << " went undetected";
    } catch (const durable::LoadFailure& e) {
      EXPECT_EQ(e.code(), durable::LoadError::kBadChecksum)
          << "offset " << offset;
    }
  }

  std::string bad_magic = framed;
  bad_magic[2] ^= 0x01;
  std::istringstream magic_in(bad_magic);
  // A mangled magic demotes the file to "legacy" bytes, which then fail to
  // parse as the inner format — still a typed error, never a crash.
  EXPECT_THROW(load(magic_in), durable::LoadFailure);

  std::string truncated = framed.substr(0, framed.size() - 7);
  std::istringstream trunc_in(truncated);
  try {
    load(trunc_in);
    FAIL() << "truncation went undetected";
  } catch (const durable::LoadFailure& e) {
    EXPECT_EQ(e.code(), durable::LoadError::kTruncated);
  }
}

TEST(DurableRoundTrip, TemporalModelFramedAndLegacy) {
  const core::TemporalModel& model = fixture().temporal;
  std::ostringstream framed_os;
  model.save_framed(framed_os);
  const std::string framed = framed_os.str();

  std::istringstream in(framed);
  const core::TemporalModel back = core::TemporalModel::load_framed(in);
  std::ostringstream again;
  back.save_framed(again);
  EXPECT_EQ(again.str(), framed);  // Bit-stable round trip.

  // Legacy bare v2 text still loads.
  std::ostringstream legacy_os;
  model.save(legacy_os);
  std::istringstream legacy_in(legacy_os.str());
  const core::TemporalModel legacy = core::TemporalModel::load_framed(legacy_in);
  EXPECT_EQ(legacy.fitted(), model.fitted());

  expect_corruption_detected(framed, [](std::istream& is) {
    (void)core::TemporalModel::load_framed(is);
  });
}

TEST(DurableRoundTrip, SpatialModelFramedAndLegacy) {
  const core::SpatialModel& model = fixture().spatial;
  ASSERT_TRUE(model.fitted());
  std::ostringstream framed_os;
  model.save_framed(framed_os);
  const std::string framed = framed_os.str();

  std::istringstream in(framed);
  const core::SpatialModel back = core::SpatialModel::load_framed(in);
  std::ostringstream again;
  back.save_framed(again);
  EXPECT_EQ(again.str(), framed);

  std::ostringstream legacy_os;
  model.save(legacy_os);
  std::istringstream legacy_in(legacy_os.str());
  const core::SpatialModel legacy = core::SpatialModel::load_framed(legacy_in);
  EXPECT_EQ(legacy.target_asn(), model.target_asn());

  expect_corruption_detected(framed, [](std::istream& is) {
    (void)core::SpatialModel::load_framed(is);
  });
}

TEST(DurableRoundTrip, SpatiotemporalModelFramedAndLegacy) {
  const core::SpatiotemporalModel& model = fixture().adversary.spatiotemporal();
  std::ostringstream framed_os;
  model.save_framed(framed_os);
  const std::string framed = framed_os.str();

  std::istringstream in(framed);
  const core::SpatiotemporalModel back =
      core::SpatiotemporalModel::load_framed(in);
  std::ostringstream again;
  back.save_framed(again);
  EXPECT_EQ(again.str(), framed);

  std::ostringstream legacy_os;
  model.save(legacy_os);
  std::istringstream legacy_in(legacy_os.str());
  const core::SpatiotemporalModel legacy =
      core::SpatiotemporalModel::load_framed(legacy_in);
  EXPECT_EQ(legacy.fitted(), model.fitted());

  expect_corruption_detected(framed, [](std::istream& is) {
    (void)core::SpatiotemporalModel::load_framed(is);
  });
}

TEST(DurableRoundTrip, AdversaryModelFramedPredictsIdentically) {
  const core::AdversaryModel& model = fixture().adversary;
  std::ostringstream framed_os;
  model.save_framed(framed_os);
  const std::string framed = framed_os.str();

  std::istringstream in(framed);
  const core::AdversaryModel back = core::AdversaryModel::load_framed(in);
  ASSERT_TRUE(back.fitted());
  for (net::Asn asn : model.dataset().target_asns()) {
    const auto a = model.predict_next_attack(asn);
    const auto b = back.predict_next_attack(asn);
    ASSERT_EQ(a.has_value(), b.has_value()) << "AS " << asn;
    if (!a) continue;
    EXPECT_DOUBLE_EQ(a->magnitude, b->magnitude) << "AS " << asn;
    EXPECT_DOUBLE_EQ(a->hour, b->hour) << "AS " << asn;
    EXPECT_EQ(a->start, b->start) << "AS " << asn;
  }

  // Legacy bare v1 text still loads.
  std::ostringstream legacy_os;
  model.save(legacy_os);
  std::istringstream legacy_in(legacy_os.str());
  const core::AdversaryModel legacy = core::AdversaryModel::load_framed(legacy_in);
  EXPECT_TRUE(legacy.fitted());

  expect_corruption_detected(framed, [](std::istream& is) {
    (void)core::AdversaryModel::load_framed(is);
  });
}

TEST(DurableRoundTrip, DirsyncFaultLeavesOldOrNewContentNeverPartial) {
  namespace fs = std::filesystem;
  core::FaultInjector& injector = core::FaultInjector::instance();
  injector.clear();
  const fs::path dir =
      fs::temp_directory_path() /
      ("acbm_roundtrip_dirsync_" + std::to_string(::getpid()));
  fs::remove_all(dir);
  fs::create_directories(dir);
  const fs::path target = dir / "model.art";

  durable::save_artifact(target, "model", 1, "generation one");
  injector.configure("io.dirsync:model.art");
  // The fault fires after the rename: the caller sees a failure while the
  // new bytes are already under the final name (publication is ambiguous
  // after a power loss — either full old or full new content, never a mix).
  EXPECT_THROW(durable::save_artifact(target, "model", 1, "generation two"),
               durable::WriteFailure);
  injector.clear();
  durable::LoadReport report;
  const std::string payload =
      durable::load_artifact(target, "model", 1, 1, false, &report);
  EXPECT_TRUE(payload == "generation one" || payload == "generation two");
  EXPECT_TRUE(report.clean());
  EXPECT_FALSE(fs::exists(dir / "model.art.tmp"));

  // Retrying the same write converges: the new generation publishes.
  durable::save_artifact(target, "model", 1, "generation two");
  EXPECT_EQ(durable::load_artifact(target, "model", 1, 1, false),
            "generation two");
  std::error_code ec;
  fs::remove_all(dir, ec);
}

TEST(DurableRoundTrip, DatasetArtifactDetectsCorruption) {
  std::ostringstream csv;
  fixture().world.dataset.save_csv(csv);
  const std::string framed = durable::frame_payload("dataset", 1, csv.str());

  // Intact: unwrap + parse reproduces the dataset.
  std::istringstream body(durable::unwrap(framed, "dataset", 1, 1));
  const trace::Dataset back = trace::Dataset::load_csv(body);
  EXPECT_EQ(back.size(), fixture().world.dataset.size());

  expect_corruption_detected(framed, [](std::istream& is) {
    const std::string data = durable::read_stream(is);
    if (!durable::looks_framed(data)) {
      throw durable::LoadFailure(durable::LoadError::kBadMagic, "not framed");
    }
    std::istringstream payload(durable::unwrap(data, "dataset", 1, 1));
    (void)trace::Dataset::load_csv(payload);
  });
}

}  // namespace
}  // namespace acbm
