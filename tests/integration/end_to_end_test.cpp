// Cross-module integration: build a world, run the full evaluation
// pipeline, and check the paper's qualitative claims hold end to end.
#include <gtest/gtest.h>

#include "core/evaluation.h"
#include "core/pipeline.h"
#include "net/gao.h"
#include "net/routing.h"
#include "trace/world.h"

namespace acbm {
namespace {

core::SpatiotemporalOptions fast_options() {
  core::SpatiotemporalOptions opts;
  opts.spatial.grid_search = false;
  opts.spatial.fixed.mlp.max_epochs = 60;
  return opts;
}

TEST(EndToEnd, WorldToModelsToPredictions) {
  const trace::World world = trace::build_world(trace::small_world_options(41));

  // 1. The substrate is sound.
  EXPECT_TRUE(world.topology.graph.connected());
  EXPECT_TRUE(world.topology.graph.customer_hierarchy_acyclic());
  EXPECT_GT(world.dataset.size(), 500u);

  // 2. Gao inference over routed paths reaches usable accuracy on this
  //    exact world (the A^s feature's distance substrate).
  std::vector<net::Asn> vantages = world.topology.stubs;
  vantages.resize(std::min<std::size_t>(vantages.size(), 20));
  const auto paths = net::dump_paths(world.topology.graph, vantages);
  const net::GaoResult gao = net::infer_relationships(paths);
  EXPECT_GT(net::relationship_accuracy(world.topology.graph, gao.graph), 0.6);

  // 3. A^s computed over the inferred graph is finite and positive for a
  //    real attack.
  net::ValleyFreeDistance inferred_dist(gao.graph);
  const double coeff = core::source_distribution_coefficient(
      world.dataset.attacks().front(), world.ip_map, &inferred_dist);
  EXPECT_GE(coeff, 0.0);

  // 4. Full model fit + prediction round trip.
  core::AdversaryModel model(fast_options());
  const auto [train, test] = world.dataset.split(0.8);
  model.fit(train, world.ip_map);
  const net::Asn busiest = train.target_asns().front();
  const auto pred = model.predict_next_attack(busiest);
  ASSERT_TRUE(pred.has_value());

  // 5. The prediction is in the right universe: the busiest target's next
  //    actual attack in the test split, if any, should be within a few days
  //    of the predicted start.
  const auto test_attacks = test.attacks_on_asn(busiest);
  if (!test_attacks.empty()) {
    const double actual_start =
        static_cast<double>(test.attacks()[test_attacks.front()].start);
    const double error_days =
        std::abs(actual_start - static_cast<double>(pred->start)) / 86400.0;
    EXPECT_LT(error_days, 14.0);
  }
}

TEST(EndToEnd, PaperOrderingHoldsAcrossSeeds) {
  // The paper's central qualitative result: spatiotemporal <= spatial on
  // hour RMSE, and the data-driven models beat Always-Mean on magnitude.
  for (std::uint64_t seed : {51u, 52u}) {
    const trace::World world = trace::build_world(trace::small_world_options(seed));
    const core::TimestampEvaluation ts = core::evaluate_timestamps(
        world.dataset, world.ip_map, fast_options());
    ASSERT_FALSE(ts.truth_hour.empty()) << "seed " << seed;
    EXPECT_LT(ts.rmse_hour_st, ts.rmse_hour_spa * 1.05) << "seed " << seed;

    const std::uint32_t dj = world.dataset.family_index("DirtJumper");
    const core::SeriesEvaluation mag = core::evaluate_temporal_series(
        world.dataset, world.ip_map, dj, core::TemporalSeries::kMagnitude);
    EXPECT_LE(mag.model_rmse, mag.mean_rmse * 1.05) << "seed " << seed;
  }
}

TEST(EndToEnd, CsvRoundTripPreservesModelInputs) {
  const trace::World world = trace::build_world(trace::small_world_options(61));
  std::stringstream ss;
  world.dataset.save_csv(ss);
  const trace::Dataset loaded = trace::Dataset::load_csv(ss);
  // Feature extraction on the reloaded dataset is identical.
  const std::uint32_t dj = world.dataset.family_index("DirtJumper");
  const core::FamilySeries a =
      core::extract_family_series(world.dataset, dj, world.ip_map, nullptr);
  const core::FamilySeries b =
      core::extract_family_series(loaded, dj, world.ip_map, nullptr);
  ASSERT_EQ(a.magnitude.size(), b.magnitude.size());
  for (std::size_t i = 0; i < a.magnitude.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.magnitude[i], b.magnitude[i]);
    EXPECT_DOUBLE_EQ(a.hour[i], b.hour[i]);
    EXPECT_DOUBLE_EQ(a.duration_s[i], b.duration_s[i]);
  }
}

}  // namespace
}  // namespace acbm
