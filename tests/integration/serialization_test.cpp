// Serialization round trips: every fitted model must predict identically
// after save -> load through a text stream.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "core/pipeline.h"
#include "nn/nar.h"
#include "stats/ols.h"
#include "stats/rng.h"
#include "trace/world.h"
#include "tree/model_tree.h"
#include "ts/arima.h"

namespace acbm {
namespace {

TEST(Serialization, LinearRegressionRoundTrip) {
  stats::Rng rng(3);
  stats::Matrix x(60, 2);
  std::vector<double> y(60);
  for (std::size_t i = 0; i < 60; ++i) {
    x(i, 0) = rng.normal();
    x(i, 1) = rng.normal();
    y[i] = 1.5 * x(i, 0) - 2.0 * x(i, 1) + rng.normal(0.0, 0.1);
  }
  stats::LinearRegression reg;
  reg.fit(x, y);

  std::stringstream ss;
  reg.save(ss);
  const stats::LinearRegression back = stats::LinearRegression::load(ss);
  EXPECT_EQ(back.fitted(), reg.fitted());
  for (std::size_t i = 0; i < 10; ++i) {
    const std::vector<double> probe{rng.normal(), rng.normal()};
    EXPECT_DOUBLE_EQ(back.predict(probe), reg.predict(probe));
  }
}

TEST(Serialization, ArimaRoundTrip) {
  stats::Rng rng(5);
  std::vector<double> xs{0.0};
  for (int t = 1; t < 600; ++t) xs.push_back(0.6 * xs.back() + rng.normal());
  ts::ArimaModel model({2, 1, 1});
  model.fit(xs);

  std::stringstream ss;
  model.save(ss);
  const ts::ArimaModel back = ts::ArimaModel::load(ss);
  EXPECT_EQ(back.order().p, model.order().p);
  EXPECT_EQ(back.order().d, model.order().d);
  EXPECT_EQ(back.order().q, model.order().q);
  const auto f1 = model.forecast(xs, 5);
  const auto f2 = back.forecast(xs, 5);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_DOUBLE_EQ(f1[i], f2[i]);
  const auto p1 = model.one_step_predictions(xs, 500);
  const auto p2 = back.one_step_predictions(xs, 500);
  for (std::size_t i = 0; i < p1.size(); ++i) EXPECT_DOUBLE_EQ(p1[i], p2[i]);
}

TEST(Serialization, NarRoundTrip) {
  std::vector<double> xs;
  for (int t = 0; t < 300; ++t) xs.push_back(std::sin(t * 0.2));
  nn::NarOptions opts;
  opts.delays = 3;
  opts.hidden_nodes = 6;
  opts.mlp.max_epochs = 100;
  nn::NarModel model(opts);
  model.fit(xs);

  std::stringstream ss;
  model.save(ss);
  const nn::NarModel back = nn::NarModel::load(ss);
  EXPECT_EQ(back.delays(), model.delays());
  EXPECT_DOUBLE_EQ(back.forecast_one(xs), model.forecast_one(xs));
  const auto p1 = model.one_step_predictions(xs, 250);
  const auto p2 = back.one_step_predictions(xs, 250);
  for (std::size_t i = 0; i < p1.size(); ++i) EXPECT_DOUBLE_EQ(p1[i], p2[i]);
}

TEST(Serialization, ModelTreeRoundTrip) {
  stats::Rng rng(7);
  stats::Matrix x(400, 3);
  std::vector<double> y(400);
  for (std::size_t i = 0; i < 400; ++i) {
    for (std::size_t j = 0; j < 3; ++j) x(i, j) = rng.uniform();
    y[i] = (x(i, 0) < 0.5 ? 2.0 * x(i, 1) : -3.0 * x(i, 2) + 5.0) +
           rng.normal(0.0, 0.05);
  }
  tree::ModelTree tree;
  tree.fit(x, y);

  std::stringstream ss;
  tree.save(ss);
  const tree::ModelTree back = tree::ModelTree::load(ss);
  EXPECT_EQ(back.node_count(), tree.node_count());
  EXPECT_EQ(back.leaf_count(), tree.leaf_count());
  for (int i = 0; i < 50; ++i) {
    const std::vector<double> probe{rng.uniform(), rng.uniform(), rng.uniform()};
    EXPECT_DOUBLE_EQ(back.predict(probe), tree.predict(probe));
  }
}

TEST(Serialization, AdversaryModelFullRoundTrip) {
  const trace::World world = trace::build_world(trace::small_world_options(47));
  core::SpatiotemporalOptions opts;
  opts.spatial.grid_search = false;
  opts.spatial.fixed.mlp.max_epochs = 60;
  core::AdversaryModel model(opts);
  const auto [train, test] = world.dataset.split(0.8);
  model.fit(train, world.ip_map);

  std::stringstream ss;
  model.save(ss);
  const core::AdversaryModel back = core::AdversaryModel::load(ss);
  EXPECT_TRUE(back.fitted());
  EXPECT_EQ(back.dataset().size(), train.size());

  // Every target's prediction must match exactly.
  for (net::Asn asn : train.target_asns()) {
    const auto a = model.predict_next_attack(asn);
    const auto b = back.predict_next_attack(asn);
    ASSERT_EQ(a.has_value(), b.has_value()) << "AS " << asn;
    if (!a) continue;
    EXPECT_DOUBLE_EQ(a->magnitude, b->magnitude) << "AS " << asn;
    EXPECT_DOUBLE_EQ(a->duration_s, b->duration_s) << "AS " << asn;
    EXPECT_DOUBLE_EQ(a->hour, b->hour) << "AS " << asn;
    EXPECT_DOUBLE_EQ(a->day, b->day) << "AS " << asn;
    EXPECT_EQ(a->start, b->start) << "AS " << asn;
    EXPECT_EQ(a->assumed_family, b->assumed_family) << "AS " << asn;
    EXPECT_EQ(a->source_distribution.size(), b->source_distribution.size());
  }
}

TEST(Serialization, LoadRejectsWrongKind) {
  std::stringstream ss("acbm:ols:v1\n");
  EXPECT_THROW((void)ts::ArimaModel::load(ss), std::invalid_argument);
}

TEST(Serialization, LoadRejectsTruncatedStream) {
  stats::Rng rng(9);
  stats::Matrix x(30, 1);
  std::vector<double> y(30);
  for (std::size_t i = 0; i < 30; ++i) {
    x(i, 0) = rng.normal();
    y[i] = 2.0 * x(i, 0);
  }
  stats::LinearRegression reg;
  reg.fit(x, y);
  std::stringstream ss;
  reg.save(ss);
  std::string text = ss.str();
  text.resize(text.size() / 2);  // Chop the stream in half.
  std::stringstream truncated(text);
  EXPECT_THROW((void)stats::LinearRegression::load(truncated),
               std::invalid_argument);
}

}  // namespace
}  // namespace acbm
