#include "tree/cart.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "stats/metrics.h"
#include "stats/rng.h"

namespace acbm::tree {
namespace {

using acbm::stats::Matrix;

// Piecewise-constant target: the natural CART test case.
void make_step_data(Matrix& x, std::vector<double>& y, std::size_t n,
                    std::uint64_t seed) {
  acbm::stats::Rng rng(seed);
  x = Matrix(n, 1);
  y.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double v = rng.uniform(0.0, 1.0);
    x(i, 0) = v;
    y[i] = v < 0.5 ? (v < 0.25 ? 1.0 : 5.0) : 9.0;
  }
}

TEST(RegressionTree, FitsPiecewiseConstantExactly) {
  Matrix x;
  std::vector<double> y;
  make_step_data(x, y, 400, 3);
  RegressionTree tree({.max_depth = 6, .min_samples_leaf = 5,
                       .min_samples_split = 10, .sd_stop_fraction = 0.0});
  tree.fit(x, y);
  EXPECT_NEAR(tree.predict(std::vector<double>{0.1}), 1.0, 0.01);
  EXPECT_NEAR(tree.predict(std::vector<double>{0.4}), 5.0, 0.01);
  EXPECT_NEAR(tree.predict(std::vector<double>{0.9}), 9.0, 0.01);
}

TEST(RegressionTree, RespectsMaxDepth) {
  Matrix x;
  std::vector<double> y;
  make_step_data(x, y, 300, 5);
  RegressionTree stump({.max_depth = 1, .min_samples_leaf = 5,
                        .min_samples_split = 10, .sd_stop_fraction = 0.0});
  stump.fit(x, y);
  EXPECT_LE(stump.depth(), 1u);
  EXPECT_LE(stump.leaf_count(), 2u);
}

TEST(RegressionTree, RespectsMinSamplesLeaf) {
  Matrix x;
  std::vector<double> y;
  make_step_data(x, y, 200, 7);
  RegressionTree tree({.max_depth = 20, .min_samples_leaf = 30,
                       .min_samples_split = 60, .sd_stop_fraction = 0.0});
  tree.fit(x, y);
  for (std::size_t id = 0; id < tree.node_count(); ++id) {
    if (tree.nodes()[id].is_leaf()) {
      EXPECT_GE(tree.nodes()[id].n_samples, 30u);
    }
  }
}

TEST(RegressionTree, SdStopFractionPrunesAggressively) {
  Matrix x;
  std::vector<double> y;
  make_step_data(x, y, 400, 9);
  RegressionTree full({.max_depth = 12, .min_samples_leaf = 2,
                       .min_samples_split = 4, .sd_stop_fraction = 0.0});
  RegressionTree coarse({.max_depth = 12, .min_samples_leaf = 2,
                         .min_samples_split = 4, .sd_stop_fraction = 0.7});
  full.fit(x, y);
  coarse.fit(x, y);
  EXPECT_LT(coarse.leaf_count(), full.leaf_count());
}

TEST(RegressionTree, ConstantTargetYieldsSingleLeaf) {
  Matrix x(50, 2);
  acbm::stats::Rng rng(11);
  for (std::size_t i = 0; i < 50; ++i) {
    x(i, 0) = rng.uniform();
    x(i, 1) = rng.uniform();
  }
  std::vector<double> y(50, 7.0);
  RegressionTree tree;
  tree.fit(x, y);
  EXPECT_EQ(tree.leaf_count(), 1u);
  EXPECT_DOUBLE_EQ(tree.predict(std::vector<double>{0.5, 0.5}), 7.0);
}

TEST(RegressionTree, SplitsOnInformativeFeatureOnly) {
  acbm::stats::Rng rng(13);
  Matrix x(300, 2);
  std::vector<double> y(300);
  for (std::size_t i = 0; i < 300; ++i) {
    x(i, 0) = rng.uniform();         // Informative.
    x(i, 1) = rng.uniform();         // Pure noise.
    y[i] = x(i, 0) > 0.5 ? 10.0 : 0.0;
  }
  RegressionTree tree;
  tree.fit(x, y);
  const auto& importance = tree.feature_importance();
  ASSERT_EQ(importance.size(), 2u);
  EXPECT_GT(importance[0], 10.0 * importance[1] + 1e-9);
}

TEST(RegressionTree, PredictionIsWithinTrainingRange) {
  acbm::stats::Rng rng(17);
  Matrix x(200, 1);
  std::vector<double> y(200);
  for (std::size_t i = 0; i < 200; ++i) {
    x(i, 0) = rng.uniform(-5.0, 5.0);
    y[i] = std::sin(x(i, 0)) * 3.0;
  }
  RegressionTree tree;
  tree.fit(x, y);
  // Mean leaves can never extrapolate beyond the target range.
  for (double probe = -100.0; probe <= 100.0; probe += 7.3) {
    const double p = tree.predict(std::vector<double>{probe});
    EXPECT_GE(p, -3.0);
    EXPECT_LE(p, 3.0);
  }
}

TEST(RegressionTree, RejectsBadInput) {
  RegressionTree tree;
  EXPECT_THROW(tree.fit(Matrix(), std::vector<double>{}),
               std::invalid_argument);
  EXPECT_THROW(tree.fit(Matrix(2, 1), std::vector<double>{1.0}),
               std::invalid_argument);
  EXPECT_THROW((void)tree.predict(std::vector<double>{1.0}), std::logic_error);
}

TEST(RegressionTree, PredictRejectsWrongFeatureCount) {
  Matrix x(20, 2, 1.0);
  for (std::size_t i = 0; i < 20; ++i) x(i, 0) = static_cast<double>(i);
  std::vector<double> y(20, 1.0);
  RegressionTree tree;
  tree.fit(x, y);
  EXPECT_THROW((void)tree.predict(std::vector<double>{1.0}),
               std::invalid_argument);
}

TEST(RegressionTree, CollapseMakesNodeALeaf) {
  Matrix x;
  std::vector<double> y;
  make_step_data(x, y, 200, 19);
  RegressionTree tree;
  tree.fit(x, y);
  ASSERT_GT(tree.node_count(), 1u);
  tree.collapse(0);
  EXPECT_EQ(tree.leaf_index(std::vector<double>{0.3}), 0u);
  EXPECT_THROW(tree.collapse(tree.node_count()), std::out_of_range);
}

// Property: deeper trees never fit the training data worse.
class DepthMonotonicity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DepthMonotonicity, TrainingErrorNonIncreasingInDepth) {
  acbm::stats::Rng rng(GetParam());
  Matrix x(250, 2);
  std::vector<double> y(250);
  for (std::size_t i = 0; i < 250; ++i) {
    x(i, 0) = rng.uniform();
    x(i, 1) = rng.uniform();
    y[i] = 4.0 * x(i, 0) - 2.0 * x(i, 1) + rng.normal(0.0, 0.3);
  }
  double prev_rmse = 1e18;
  for (std::size_t depth : {1u, 3u, 6u, 10u}) {
    RegressionTree tree({.max_depth = depth, .min_samples_leaf = 2,
                         .min_samples_split = 4, .sd_stop_fraction = 0.0});
    tree.fit(x, y);
    const double err = acbm::stats::rmse(y, tree.predict(x));
    EXPECT_LE(err, prev_rmse + 1e-9);
    prev_rmse = err;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DepthMonotonicity,
                         ::testing::Values(1u, 2u, 3u, 4u));

}  // namespace
}  // namespace acbm::tree
