#include "tree/model_tree.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "stats/metrics.h"
#include "stats/rng.h"

namespace acbm::tree {
namespace {

using acbm::stats::Matrix;

// Piecewise-LINEAR target: constant leaves approximate it coarsely, linear
// leaves can represent it exactly within each region (Eq. 8-10's setting).
void make_piecewise_linear(Matrix& x, std::vector<double>& y, std::size_t n,
                           std::uint64_t seed, double noise = 0.0) {
  acbm::stats::Rng rng(seed);
  x = Matrix(n, 2);
  y.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double a = rng.uniform(0.0, 1.0);
    const double b = rng.uniform(0.0, 1.0);
    x(i, 0) = a;
    x(i, 1) = b;
    // Region 1 (a < 0.5): y = 2a + b; Region 2: y = -3a + 4b + 10.
    y[i] = (a < 0.5 ? 2.0 * a + b : -3.0 * a + 4.0 * b + 10.0) +
           rng.normal(0.0, noise);
  }
}

TEST(ModelTree, FitsPiecewiseLinearNearExactly) {
  Matrix x;
  std::vector<double> y;
  make_piecewise_linear(x, y, 600, 3);
  ModelTree tree;
  tree.fit(x, y);
  const double err = acbm::stats::rmse(y, tree.predict(x));
  EXPECT_LT(err, 0.05);
}

TEST(ModelTree, LinearLeavesBeatConstantLeaves) {
  Matrix x;
  std::vector<double> y;
  make_piecewise_linear(x, y, 600, 5, 0.05);
  ModelTreeOptions linear_opts;
  ModelTreeOptions constant_opts;
  constant_opts.linear_leaves = false;
  ModelTree linear(linear_opts);
  ModelTree constant(constant_opts);
  linear.fit(x, y);
  constant.fit(x, y);
  EXPECT_LT(acbm::stats::rmse(y, linear.predict(x)),
            acbm::stats::rmse(y, constant.predict(x)));
}

TEST(ModelTree, PruningShrinksTheTree) {
  Matrix x;
  std::vector<double> y;
  make_piecewise_linear(x, y, 600, 7, 0.3);
  ModelTreeOptions pruned_opts;
  pruned_opts.enable_pruning = true;
  ModelTreeOptions unpruned_opts;
  unpruned_opts.enable_pruning = false;
  ModelTree pruned(pruned_opts);
  ModelTree unpruned(unpruned_opts);
  pruned.fit(x, y);
  unpruned.fit(x, y);
  EXPECT_LE(pruned.leaf_count(), unpruned.leaf_count());
  // On a 2-region ground truth, pruning should land near 2 leaves.
  EXPECT_LE(pruned.leaf_count(), 8u);
}

TEST(ModelTree, GlobalLinearTargetCollapsesToSingleLeaf) {
  acbm::stats::Rng rng(9);
  Matrix x(300, 2);
  std::vector<double> y(300);
  for (std::size_t i = 0; i < 300; ++i) {
    x(i, 0) = rng.uniform();
    x(i, 1) = rng.uniform();
    y[i] = 3.0 * x(i, 0) - 1.0 * x(i, 1) + 0.5;
  }
  ModelTree tree;
  tree.fit(x, y);
  // One linear model explains everything, so pruning collapses the root.
  EXPECT_EQ(tree.leaf_count(), 1u);
  EXPECT_LT(acbm::stats::rmse(y, tree.predict(x)), 1e-6);
}

TEST(ModelTree, SdKeepRatioValidation) {
  ModelTreeOptions bad;
  bad.sd_keep_ratio = 0.0;
  EXPECT_THROW(ModelTree{bad}, std::invalid_argument);
  bad.sd_keep_ratio = 1.5;
  EXPECT_THROW(ModelTree{bad}, std::invalid_argument);
}

TEST(ModelTree, PaperPruningRatioMapsToStopFraction) {
  // sd_keep_ratio = 0.88 (the paper's value) must translate to a 0.12 SD
  // stop fraction in the underlying CART.
  ModelTreeOptions opts;
  opts.sd_keep_ratio = 0.88;
  ModelTree tree(opts);
  Matrix x;
  std::vector<double> y;
  make_piecewise_linear(x, y, 200, 11);
  tree.fit(x, y);
  EXPECT_TRUE(tree.fitted());
}

TEST(ModelTree, TinyLeavesFallBackToMeanSafely) {
  // With min_samples_leaf = 2 and 2 features, some leaves cannot support a
  // 3-parameter linear fit and must fall back to the mean without throwing.
  Matrix x;
  std::vector<double> y;
  make_piecewise_linear(x, y, 40, 13, 0.5);
  ModelTreeOptions opts;
  opts.cart.min_samples_leaf = 2;
  opts.cart.min_samples_split = 4;
  opts.cart.max_depth = 10;
  ModelTree tree(opts);
  EXPECT_NO_THROW(tree.fit(x, y));
  EXPECT_NO_THROW((void)tree.predict(std::vector<double>{0.5, 0.5}));
}

TEST(ModelTree, RejectsBadInput) {
  ModelTree tree;
  EXPECT_THROW(tree.fit(Matrix(), std::vector<double>{}),
               std::invalid_argument);
  EXPECT_THROW((void)tree.predict(std::vector<double>{0.0, 0.0}),
               std::logic_error);
}

TEST(ModelTree, FeatureImportanceReflectsSplitVariable) {
  Matrix x;
  std::vector<double> y;
  make_piecewise_linear(x, y, 500, 15);
  ModelTree tree;
  tree.fit(x, y);
  // The region boundary is on feature 0.
  ASSERT_EQ(tree.feature_importance().size(), 2u);
  EXPECT_GT(tree.feature_importance()[0], tree.feature_importance()[1]);
}

// Property: model tree generalizes — held-out error close to training error.
class GeneralizationProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GeneralizationProperty, HeldOutErrorIsReasonable) {
  Matrix x_train;
  Matrix x_test;
  std::vector<double> y_train;
  std::vector<double> y_test;
  make_piecewise_linear(x_train, y_train, 500, GetParam(), 0.1);
  make_piecewise_linear(x_test, y_test, 200, GetParam() + 1000, 0.1);
  ModelTree tree;
  tree.fit(x_train, y_train);
  const double test_err = acbm::stats::rmse(y_test, tree.predict(x_test));
  // Noise floor is 0.1; allow 3x for regional boundary mistakes.
  EXPECT_LT(test_err, 0.35);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneralizationProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

}  // namespace
}  // namespace acbm::tree
