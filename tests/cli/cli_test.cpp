#include "cli/cli.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace acbm::cli {
namespace {

namespace fs = std::filesystem;

struct TempDir {
  fs::path path;
  TempDir() {
    path = fs::temp_directory_path() /
           ("acbm_cli_test_" + std::to_string(::getpid()));
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  [[nodiscard]] std::string file(const char* name) const {
    return (path / name).string();
  }
};

int run_cli(std::initializer_list<std::string> args, std::string* out_text,
            std::string* err_text = nullptr) {
  std::vector<std::string> argv(args);
  std::ostringstream out;
  std::ostringstream err;
  const int code = run(argv, out, err);
  if (out_text) *out_text = out.str();
  if (err_text) *err_text = err.str();
  return code;
}

TEST(Cli, HelpPrintsUsage) {
  std::string out;
  EXPECT_EQ(run_cli({"help"}, &out), 0);
  EXPECT_NE(out.find("usage: acbm"), std::string::npos);
  EXPECT_NE(out.find("generate"), std::string::npos);
}

TEST(Cli, NoArgumentsIsAUsageError) {
  std::string out;
  EXPECT_EQ(run_cli({}, &out), 2);
  EXPECT_NE(out.find("usage"), std::string::npos);
}

TEST(Cli, UnknownCommandFails) {
  std::string out;
  std::string err;
  EXPECT_EQ(run_cli({"frobnicate"}, &out, &err), 2);
  EXPECT_NE(err.find("unknown command"), std::string::npos);
}

TEST(Cli, UnknownOptionFails) {
  std::string out;
  std::string err;
  EXPECT_EQ(run_cli({"stats", "--bogus", "1"}, &out, &err), 2);
  EXPECT_NE(err.find("unknown option"), std::string::npos);
}

TEST(Cli, MissingRequiredOptionFails) {
  std::string out;
  std::string err;
  EXPECT_EQ(run_cli({"generate", "--seed", "1"}, &out, &err), 2);
  EXPECT_NE(err.find("missing required"), std::string::npos);
}

TEST(Cli, MissingFileFails) {
  std::string out;
  std::string err;
  EXPECT_EQ(run_cli({"stats", "--dataset", "/nonexistent/x.csv"}, &out, &err),
            3);
  EXPECT_NE(err.find("cannot open"), std::string::npos);
}

// One end-to-end pass through all four commands sharing generated files.
TEST(Cli, GenerateStatsPredictEvaluateRoundTrip) {
  TempDir tmp;
  const std::string dataset = tmp.file("trace.csv");
  const std::string ipmap = tmp.file("ipmap.txt");

  std::string out;
  std::string err;
  ASSERT_EQ(run_cli({"generate", "--seed", "5", "--days", "40", "--dataset",
                     dataset, "--ipmap", ipmap},
                    &out, &err),
            0)
      << err;
  EXPECT_NE(out.find("generated"), std::string::npos);
  EXPECT_TRUE(fs::exists(dataset));
  EXPECT_TRUE(fs::exists(ipmap));

  ASSERT_EQ(run_cli({"stats", "--dataset", dataset}, &out, &err), 0) << err;
  EXPECT_NE(out.find("DirtJumper"), std::string::npos);
  EXPECT_NE(out.find("families"), std::string::npos);

  ASSERT_EQ(run_cli({"predict", "--dataset", dataset, "--ipmap", ipmap,
                     "--top", "2"},
                    &out, &err),
            0)
      << err;
  EXPECT_NE(out.find("target"), std::string::npos);
  EXPECT_NE(out.find("AS"), std::string::npos);

  ASSERT_EQ(
      run_cli({"evaluate", "--dataset", dataset, "--ipmap", ipmap}, &out, &err),
      0)
      << err;
  EXPECT_NE(out.find("hour RMSE"), std::string::npos);
  EXPECT_NE(out.find("spatiotemporal"), std::string::npos);
}

TEST(Cli, FitThenPredictFromSavedModel) {
  TempDir tmp;
  const std::string dataset = tmp.file("trace.csv");
  const std::string ipmap = tmp.file("ipmap.txt");
  const std::string model = tmp.file("model.acbm");
  std::string out;
  std::string err;
  ASSERT_EQ(run_cli({"generate", "--seed", "7", "--days", "35", "--dataset",
                     dataset, "--ipmap", ipmap},
                    &out, &err),
            0);
  ASSERT_EQ(run_cli({"fit", "--dataset", dataset, "--ipmap", ipmap, "--model",
                     model},
                    &out, &err),
            0)
      << err;
  EXPECT_TRUE(fs::exists(model));

  // Prediction from the saved model matches on-the-fly fitting exactly
  // (both paths are deterministic).
  std::string from_model;
  std::string from_fit;
  ASSERT_EQ(run_cli({"predict", "--model", model, "--top", "3"}, &from_model,
                    &err),
            0)
      << err;
  ASSERT_EQ(run_cli({"predict", "--dataset", dataset, "--ipmap", ipmap,
                     "--top", "3"},
                    &from_fit, &err),
            0)
      << err;
  EXPECT_EQ(from_model, from_fit);
}

TEST(Cli, PredictSpecificTarget) {
  TempDir tmp;
  const std::string dataset = tmp.file("trace.csv");
  const std::string ipmap = tmp.file("ipmap.txt");
  std::string out;
  std::string err;
  ASSERT_EQ(run_cli({"generate", "--seed", "9", "--days", "30", "--dataset",
                     dataset, "--ipmap", ipmap},
                    &out, &err),
            0);
  // Find a real target from stats-free route: predict top-1 first.
  ASSERT_EQ(run_cli({"predict", "--dataset", dataset, "--ipmap", ipmap,
                     "--top", "1"},
                    &out, &err),
            0);
  // Unknown target reports gracefully.
  ASSERT_EQ(run_cli({"predict", "--dataset", dataset, "--ipmap", ipmap,
                     "--target", "999999"},
                    &out, &err),
            0);
  EXPECT_NE(out.find("no history"), std::string::npos);
}

TEST(Cli, ListScenariosPrintsCatalog) {
  std::string out;
  ASSERT_EQ(run_cli({"generate", "--list-scenarios"}, &out), 0);
  for (const char* name : {"paper-table1", "pulse-wave", "carpet-bomb",
                           "multi-vector", "iot-botnet"}) {
    EXPECT_NE(out.find(name), std::string::npos) << name;
  }
}

TEST(Cli, UnknownScenarioIsAUsageError) {
  std::string out;
  std::string err;
  EXPECT_EQ(run_cli({"generate", "--scenario", "no-such"}, &out, &err), 2);
  // The error names the known scenarios so the fix is one retype away.
  EXPECT_NE(err.find("no-such"), std::string::npos);
  EXPECT_NE(err.find("pulse-wave"), std::string::npos);
}

TEST(Cli, MalformedScenarioParamIsAUsageError) {
  std::string out;
  std::string err;
  EXPECT_EQ(run_cli({"generate", "--scenario", "pulse-wave",
                     "--scenario-param", "rotation=zebra"},
                    &out, &err),
            2);
  EXPECT_NE(err.find("rotation"), std::string::npos);
  // A key from a different scenario is rejected, not silently ignored.
  EXPECT_EQ(run_cli({"generate", "--scenario", "pulse-wave",
                     "--scenario-param", "spread=0.5"},
                    &out, &err),
            2);
}

// The catalog's frozen default: routing generate through --scenario
// paper-table1 must leave the artifacts byte-identical to a plain generate.
TEST(Cli, GenerateScenarioPaperTable1IsByteIdentical) {
  TempDir tmp;
  std::string out;
  std::string err;
  ASSERT_EQ(run_cli({"generate", "--seed", "3", "--days", "25", "--dataset",
                     tmp.file("plain.csv"), "--ipmap", tmp.file("plain.map")},
                    &out, &err),
            0)
      << err;
  const std::string plain_banner = out;
  ASSERT_EQ(run_cli({"generate", "--seed", "3", "--days", "25", "--scenario",
                     "paper-table1", "--dataset", tmp.file("cat.csv"),
                     "--ipmap", tmp.file("cat.map")},
                    &out, &err),
            0)
      << err;
  const auto slurp = [](const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
  };
  EXPECT_EQ(slurp(tmp.file("plain.csv")), slurp(tmp.file("cat.csv")));
  EXPECT_EQ(slurp(tmp.file("plain.map")), slurp(tmp.file("cat.map")));
  // And the banner stays stable too (no scenario line for the default).
  EXPECT_EQ(out.find("scenario:"), std::string::npos);
  EXPECT_NE(plain_banner.find("generated"), std::string::npos);
}

TEST(Cli, GenerateNamedScenarioAnnouncesItself) {
  TempDir tmp;
  std::string out;
  std::string err;
  ASSERT_EQ(run_cli({"generate", "--seed", "2", "--days", "20", "--scenario",
                     "pulse-wave", "--scenario-param", "rotation=4",
                     "--dataset", tmp.file("pw.csv"), "--ipmap",
                     tmp.file("pw.map")},
                    &out, &err),
            0)
      << err;
  EXPECT_NE(out.find("scenario: pulse-wave"), std::string::npos);
  EXPECT_TRUE(fs::exists(tmp.file("pw.csv")));
}

TEST(Cli, EvaluateScenarioEmitsPredictabilityTable) {
  std::string out;
  std::string err;
  ASSERT_EQ(run_cli({"evaluate", "--scenario", "carpet-bomb"}, &out, &err), 0)
      << err;
  EXPECT_NE(out.find("scenario: carpet-bomb"), std::string::npos);
  EXPECT_NE(out.find("hour RMSE (naive):"), std::string::npos);
  EXPECT_NE(out.find("date RMSE (naive):"), std::string::npos);
  EXPECT_NE(out.find("ordering (hour):"), std::string::npos);
  EXPECT_NE(out.find("paper ordering"), std::string::npos);
  // Mixing the self-contained preset with a saved trace is a usage error.
  EXPECT_EQ(run_cli({"evaluate", "--scenario", "carpet-bomb", "--dataset",
                     "/nonexistent/x.csv"},
                    &out, &err),
            2);
}

}  // namespace
}  // namespace acbm::cli
