// CLI-level durability acceptance: a fit crashed by an injected io.write
// fault exits with the corruption code, a --resume run completes from the
// checkpoint, and the resumed artifacts are byte-identical to an
// uninterrupted run's — at 1, 3, and 8 threads. Plus the CLI exit-code
// contract (2 usage / 3 corruption / 4 degradation-beyond-floor).
#include "cli/cli.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/durable.h"
#include "core/parallel.h"
#include "core/robust.h"

namespace acbm::cli {
namespace {

namespace fs = std::filesystem;
namespace durable = acbm::core::durable;

struct FaultGuard {
  FaultGuard() { core::FaultInjector::instance().clear(); }
  ~FaultGuard() {
    core::FaultInjector::instance().clear();
    core::set_num_threads(0);
  }
};

struct TempDir {
  fs::path path;
  TempDir() {
    path = fs::temp_directory_path() /
           ("acbm_ckpt_cli_test_" + std::to_string(::getpid()));
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  [[nodiscard]] std::string file(const std::string& name) const {
    return (path / name).string();
  }
};

int run_cli(std::vector<std::string> argv, std::string* out_text = nullptr,
            std::string* err_text = nullptr) {
  std::ostringstream out;
  std::ostringstream err;
  const int code = run(argv, out, err);
  if (out_text) *out_text = out.str();
  if (err_text) *err_text = err.str();
  return code;
}

/// Generates one small shared world for the whole binary.
struct World {
  TempDir tmp;
  std::string dataset;
  std::string ipmap;
  World() {
    dataset = tmp.file("trace.csv");
    ipmap = tmp.file("ipmap.txt");
    std::string err;
    const int code = run_cli({"generate", "--seed", "5", "--days", "20",
                              "--dataset", dataset, "--ipmap", ipmap},
                             nullptr, &err);
    if (code != 0) throw std::runtime_error("generate failed: " + err);
  }
};

const World& world() {
  static const World w;
  return w;
}

TEST(CheckpointCli, CrashResumeIsByteIdenticalAcrossThreadCounts) {
  FaultGuard guard;
  TempDir tmp;
  std::string err;

  const std::string clean_model = tmp.file("clean.model");
  ASSERT_EQ(run_cli({"fit", "--dataset", world().dataset, "--ipmap",
                     world().ipmap, "--model", clean_model},
                    nullptr, &err),
            0)
      << err;
  const std::string clean_bytes = durable::read_file(clean_model);

  for (const std::size_t threads : {1UL, 3UL, 8UL}) {
    core::set_num_threads(threads);
    const std::string tag = std::to_string(threads);
    const std::string model = tmp.file("m" + tag + ".model");
    const std::string ckpt = tmp.file("ckpt" + tag);

    // The injected fault crashes the spatial-stage checkpoint write.
    core::FaultInjector::instance().configure("io.write:spatial");
    EXPECT_EQ(run_cli({"fit", "--dataset", world().dataset, "--ipmap",
                       world().ipmap, "--model", model, "--checkpoint-dir",
                       ckpt},
                      nullptr, &err),
              3)
        << "threads=" << threads;
    EXPECT_NE(err.find("io.write"), std::string::npos);
    EXPECT_FALSE(fs::exists(model));

    core::FaultInjector::instance().clear();
    ASSERT_EQ(run_cli({"fit", "--dataset", world().dataset, "--ipmap",
                       world().ipmap, "--model", model, "--checkpoint-dir",
                       ckpt, "--resume"},
                      nullptr, &err),
              0)
        << "threads=" << threads << ": " << err;
    EXPECT_EQ(durable::read_file(model), clean_bytes)
        << "threads=" << threads;
  }
}

TEST(CheckpointCli, EvaluateCrashResumeReproducesTheCleanArtifact) {
  FaultGuard guard;
  TempDir tmp;
  std::string err;

  const std::string clean_out = tmp.file("clean_eval.txt");
  ASSERT_EQ(run_cli({"evaluate", "--dataset", world().dataset, "--ipmap",
                     world().ipmap, "--horizons", "0.7,0.8", "--out",
                     clean_out},
                    nullptr, &err),
            0)
      << err;

  const std::string ckpt = tmp.file("eval_ckpt");
  const std::string crashed_out = tmp.file("crashed_eval.txt");
  core::FaultInjector::instance().configure("checkpoint.stage:eval/h=0.8");
  EXPECT_EQ(run_cli({"evaluate", "--dataset", world().dataset, "--ipmap",
                     world().ipmap, "--horizons", "0.7,0.8",
                     "--checkpoint-dir", ckpt, "--out", crashed_out},
                    nullptr, &err),
            3);

  core::FaultInjector::instance().clear();
  std::string resumed_stdout;
  ASSERT_EQ(run_cli({"evaluate", "--dataset", world().dataset, "--ipmap",
                     world().ipmap, "--horizons", "0.7,0.8",
                     "--checkpoint-dir", ckpt, "--resume", "--out",
                     crashed_out},
                    &resumed_stdout, &err),
            0)
      << err;
  EXPECT_EQ(durable::read_file(crashed_out), durable::read_file(clean_out));
  EXPECT_NE(resumed_stdout.find("h=0.7"), std::string::npos);
  EXPECT_NE(resumed_stdout.find("h=0.8"), std::string::npos);
}

TEST(CheckpointCli, ResumeWithoutCheckpointDirIsAUsageError) {
  std::string err;
  EXPECT_EQ(run_cli({"fit", "--dataset", world().dataset, "--ipmap",
                     world().ipmap, "--model", "/tmp/unused.model",
                     "--resume"},
                    nullptr, &err),
            2);
  EXPECT_NE(err.find("--checkpoint-dir"), std::string::npos);
}

TEST(CheckpointCli, CorruptModelFileExitsWithLoadCode) {
  TempDir tmp;
  const std::string model = tmp.file("model.acbm");
  std::string err;
  ASSERT_EQ(run_cli({"fit", "--dataset", world().dataset, "--ipmap",
                     world().ipmap, "--model", model},
                    nullptr, &err),
            0)
      << err;

  std::string bytes = durable::read_file(model);
  bytes[bytes.size() / 2] ^= 0x08;
  std::ofstream(model, std::ios::binary | std::ios::trunc) << bytes;
  EXPECT_EQ(run_cli({"predict", "--model", model}, nullptr, &err), 3);
  EXPECT_NE(err.find("bad_checksum"), std::string::npos);
}

TEST(CheckpointCli, DegradedFloorTurnsDegradationIntoExitFour) {
  FaultGuard guard;
  TempDir tmp;
  std::string err;
  // Force the combining trees down their ladder; floor 0 tolerates nothing.
  core::FaultInjector::instance().configure("tree.fail:hour;tree.fail:day");
  EXPECT_EQ(run_cli({"fit", "--dataset", world().dataset, "--ipmap",
                     world().ipmap, "--model", tmp.file("m.model"),
                     "--degraded-floor", "0"},
                    nullptr, &err),
            4);
  EXPECT_NE(err.find("degraded"), std::string::npos);

  core::FaultInjector::instance().clear();
  // A generous floor lets the same (now clean) fit pass.
  EXPECT_EQ(run_cli({"fit", "--dataset", world().dataset, "--ipmap",
                     world().ipmap, "--model", tmp.file("m2.model"),
                     "--degraded-floor", "1000"},
                    nullptr, &err),
            0)
      << err;
}

TEST(CheckpointCli, FitReportToStdoutKeepsProgressOnStderr) {
  TempDir tmp;
  std::string out;
  std::string err;
  ASSERT_EQ(run_cli({"fit", "--dataset", world().dataset, "--ipmap",
                     world().ipmap, "--model", tmp.file("m.model"),
                     "--fit-report", "-"},
                    &out, &err),
            0)
      << err;
  // stdout carries only the report; progress lines went to stderr.
  EXPECT_EQ(out.find("model saved to"), std::string::npos);
  EXPECT_NE(err.find("model saved to"), std::string::npos);
  EXPECT_FALSE(out.empty());
}

TEST(CheckpointCli, ModelArtifactIsFramedWithChecksum) {
  TempDir tmp;
  const std::string model = tmp.file("model.acbm");
  std::string err;
  ASSERT_EQ(run_cli({"fit", "--dataset", world().dataset, "--ipmap",
                     world().ipmap, "--model", model},
                    nullptr, &err),
            0)
      << err;
  const std::string bytes = durable::read_file(model);
  ASSERT_TRUE(durable::looks_framed(bytes));
  const durable::Frame frame = durable::parse_frame(bytes);
  EXPECT_EQ(frame.kind, "adversary_model");
  EXPECT_EQ(frame.version, 4);
}

}  // namespace
}  // namespace acbm::cli
