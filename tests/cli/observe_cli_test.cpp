// End-to-end coverage for the observability CLI surface: --trace /
// --metrics / --profile (and their ACBM_* env equivalents) on a real
// generate + fit round trip, plus the regression that turning
// observability on does not perturb the fitted model artifact.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cli/cli.h"
#include "core/observe.h"
#include "core/parallel.h"

namespace acbm::cli {
namespace {

namespace fs = std::filesystem;
namespace observe = acbm::core::observe;

struct TempDir {
  fs::path path;
  TempDir() {
    path = fs::temp_directory_path() /
           ("acbm_observe_cli_test_" + std::to_string(::getpid()));
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  [[nodiscard]] std::string file(const char* name) const {
    return (path / name).string();
  }
};

int run_cli(std::vector<std::string> argv, std::string* out_text,
            std::string* err_text = nullptr) {
  std::ostringstream out;
  std::ostringstream err;
  const int code = run(argv, out, err);
  if (out_text) *out_text = out.str();
  if (err_text) *err_text = err.str();
  return code;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Generates one small world and leaves the thread count pinned to 3 so
/// the pool (and its counters) actually engage on single-core machines.
class ObserveCliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    observe::set_enabled(false);
    observe::Tracer::instance().reset();
    observe::Metrics::instance().reset();
    acbm::core::set_num_threads(3);
    std::string out;
    std::string err;
    ASSERT_EQ(run_cli({"generate", "--seed", "11", "--days", "21", "--scale",
                       "0.4", "--dataset", dir_.file("ds.bin"), "--ipmap",
                       dir_.file("ip.bin")},
                      &out, &err),
              0)
        << err;
  }
  void TearDown() override {
    observe::set_enabled(false);
    observe::Tracer::instance().reset();
    observe::Metrics::instance().reset();
    acbm::core::set_num_threads(0);
  }

  int fit(std::vector<std::string> extra, std::string* out, std::string* err,
          const char* model_name = "model.bin") {
    std::vector<std::string> argv = {
        "fit",     "--dataset", dir_.file("ds.bin"), "--ipmap",
        dir_.file("ip.bin"), "--model",   dir_.file(model_name)};
    argv.insert(argv.end(), extra.begin(), extra.end());
    return run_cli(std::move(argv), out, err);
  }

  TempDir dir_;
};

/// Structural JSON check: nesting balances, honoring strings and escapes.
bool json_nesting_balances(const std::string& text) {
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') {
      if (--depth < 0) return false;
    }
  }
  return depth == 0 && !in_string;
}

/// Value of `name` in a Prometheus text dump, -1 when absent.
std::int64_t prometheus_value(const std::string& text,
                              const std::string& name) {
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.rfind(name + " ", 0) == 0) {
      return std::stoll(line.substr(name.size() + 1));
    }
  }
  return -1;
}

TEST_F(ObserveCliTest, TraceMetricsAndProfileSinksAllEmit) {
  std::string out;
  std::string err;
  ASSERT_EQ(fit({"--trace", dir_.file("t.json"), "--metrics", "-",
                 "--profile"},
                &out, &err),
            0)
      << err;

  // --trace: structurally valid Chrome trace with the expected stages.
  const std::string trace = read_file(dir_.file("t.json"));
  ASSERT_FALSE(trace.empty());
  EXPECT_TRUE(json_nesting_balances(trace));
  EXPECT_EQ(trace.find("{\"traceEvents\":["), 0u);
  EXPECT_NE(trace.find("\"name\":\"cli.fit\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"fit.spatiotemporal\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"fit.temporal\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"fit.spatial\""), std::string::npos);

  // --metrics -: dump lands on stdout with live cache and pool counters.
  EXPECT_NE(out.find("# TYPE acbm_"), std::string::npos);
  EXPECT_GT(prometheus_value(out, "acbm_feature_cache_hit_total"), 0);
  EXPECT_GT(prometheus_value(out, "acbm_pool_tasks_total"), 0);
  EXPECT_GT(prometheus_value(out, "acbm_ols_solves_total"), 0);

  // --profile: merged span tree on stderr.
  EXPECT_NE(err.find("acbm profile"), std::string::npos);
  EXPECT_NE(err.find("cli.fit"), std::string::npos);
  EXPECT_NE(err.find("fit.spatiotemporal"), std::string::npos);
}

TEST_F(ObserveCliTest, ObservabilityDoesNotPerturbTheModelArtifact) {
  std::string out;
  std::string err;
  ASSERT_EQ(fit({}, &out, &err, "plain.bin"), 0) << err;
  ASSERT_EQ(fit({"--trace", dir_.file("t.json"), "--metrics",
                 dir_.file("m.prom"), "--profile"},
                &out, &err, "observed.bin"),
            0)
      << err;
  const std::string plain = read_file(dir_.file("plain.bin"));
  ASSERT_FALSE(plain.empty());
  EXPECT_EQ(plain, read_file(dir_.file("observed.bin")));
}

TEST_F(ObserveCliTest, ModelArtifactIsThreadCountInvariantUnderTracing) {
  std::string out;
  std::string err;
  acbm::core::set_num_threads(1);
  ASSERT_EQ(fit({"--profile"}, &out, &err, "t1.bin"), 0) << err;
  acbm::core::set_num_threads(3);
  ASSERT_EQ(fit({"--profile"}, &out, &err, "t3.bin"), 0) << err;
  const std::string serial = read_file(dir_.file("t1.bin"));
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(serial, read_file(dir_.file("t3.bin")));
}

TEST_F(ObserveCliTest, EnvVariablesMirrorTheFlags) {
  ::setenv("ACBM_PROFILE", "1", 1);
  ::setenv("ACBM_METRICS", dir_.file("env.prom").c_str(), 1);
  std::string out;
  std::string err;
  const int code = fit({}, &out, &err, "env.bin");
  ::unsetenv("ACBM_PROFILE");
  ::unsetenv("ACBM_METRICS");
  ASSERT_EQ(code, 0) << err;
  EXPECT_NE(err.find("acbm profile"), std::string::npos);
  const std::string metrics = read_file(dir_.file("env.prom"));
  EXPECT_NE(metrics.find("acbm_fit_records_total"), std::string::npos);
}

TEST_F(ObserveCliTest, ProfileOffLeavesStderrQuiet) {
  std::string out;
  std::string err;
  ASSERT_EQ(fit({}, &out, &err, "quiet.bin"), 0) << err;
  EXPECT_EQ(err.find("acbm profile"), std::string::npos);
}

TEST_F(ObserveCliTest, MissingTraceValueIsAUsageError) {
  std::string out;
  std::string err;
  EXPECT_EQ(fit({"--trace"}, &out, &err, "bad.bin"), 2);
  EXPECT_NE(err.find("--trace"), std::string::npos);
}

TEST_F(ObserveCliTest, ObserveFlagsWorkOnGenerateToo) {
  std::string out;
  std::string err;
  ASSERT_EQ(run_cli({"generate", "--seed", "3", "--days", "10", "--dataset",
                     dir_.file("g.bin"), "--ipmap", dir_.file("gip.bin"),
                     "--trace", dir_.file("g.json"), "--profile"},
                    &out, &err),
            0)
      << err;
  const std::string trace = read_file(dir_.file("g.json"));
  EXPECT_NE(trace.find("\"name\":\"cli.generate\""), std::string::npos);
  EXPECT_NE(err.find("cli.generate"), std::string::npos);
}

}  // namespace
}  // namespace acbm::cli
