// Daemon tests: protocol robustness (garbage, truncation, oversize,
// slow-loris, mid-response disconnect), batching/coalescing, LRU
// eviction, generation hot-swap under concurrent load at 1/4/16 worker
// threads with zero lost requests, and the pack/serve/query CLI surface
// (query output byte-identical to the batch predict CLI).
#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <bit>
#include <filesystem>
#include <fstream>
#include <functional>
#include <random>
#include <sstream>
#include <thread>

#include "cli/cli.h"
#include "core/durable.h"
#include "core/pipeline.h"
#include "core/server.h"
#include "core/serving.h"
#include "trace/world.h"

namespace acbm::core::serve {
namespace {

namespace fs = std::filesystem;

struct TempDir {
  fs::path path;
  TempDir() {
    static std::atomic<int> counter{0};
    path = fs::temp_directory_path() /
           ("acbm_serve_test_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter.fetch_add(1)));
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

SpatiotemporalOptions fast_options() {
  SpatiotemporalOptions opts;
  opts.spatial.grid_search = false;
  opts.spatial.fixed.mlp.max_epochs = 60;
  return opts;
}

/// One fitted model, saved in both formats, shared by every test (the
/// directory and fixture leak deliberately; fitting dominates runtime).
struct Fixture {
  TempDir* dir = new TempDir();
  trace::World world = trace::build_world(trace::small_world_options(37));
  AdversaryModel model{fast_options()};
  ServingModel serving;
  fs::path armm_path;
  fs::path art_path;

  Fixture() {
    model.fit(world.dataset, world.ip_map);
    serving = ServingModel::from_image(armm::pack_model(model));
    armm_path = dir->path / "model.armm";
    art_path = dir->path / "model.art";
    durable::atomic_write_file(armm_path, serving.image());
    std::ofstream out(art_path, std::ios::binary);
    model.save_framed(out);
  }
};

const Fixture& fx() {
  static const Fixture* fixture = new Fixture();
  return *fixture;
}

/// A running server over the shared artifact in its own socket dir.
struct ServerFixture {
  TempDir dir;
  Server server;

  explicit ServerFixture(std::function<void(ServerOptions&)> tweak = {})
      : server(make_options(dir, std::move(tweak))) {
    server.start();
  }

  static ServerOptions make_options(const TempDir& dir,
                                    std::function<void(ServerOptions&)> tweak) {
    ServerOptions opts;
    opts.socket_path = dir.path / "serve.sock";
    opts.models.emplace_back("m", fx().armm_path);
    opts.watch_interval_ms = 50;
    if (tweak) tweak(opts);
    return opts;
  }

  [[nodiscard]] Client client() const {
    return Client::connect_unix(server.socket_path());
  }
};

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

TEST(Serve, PingPredictListStats) {
  ServerFixture sf;
  Client client = sf.client();
  EXPECT_EQ(client.ping().status, Status::kOk);

  const net::Asn asn = fx().serving.targets().front();
  const auto [status, result] = client.predict("m", asn);
  ASSERT_EQ(status, Status::kOk);
  const auto want = fx().serving.predict(asn);
  ASSERT_TRUE(want.has_value());
  EXPECT_EQ(bits(result->prediction.magnitude), bits(want->magnitude));
  EXPECT_EQ(bits(result->prediction.hour), bits(want->hour));
  EXPECT_EQ(result->prediction.start, want->start);
  EXPECT_EQ(result->family_name,
            fx().serving.family_name(want->assumed_family));

  const auto list = client.request(Opcode::kList, Precision::kF64, "", "");
  EXPECT_EQ(list.status, Status::kOk);
  EXPECT_NE(list.payload.find('m'), std::string::npos);

  const auto stats = client.request(Opcode::kStats, Precision::kF64, "", "");
  EXPECT_EQ(stats.status, Status::kOk);
  EXPECT_NE(stats.payload.find("requests="), std::string::npos);

  const auto [missing, none] = client.predict("nope", asn);
  EXPECT_EQ(missing, Status::kUnknownModel);
  EXPECT_FALSE(none.has_value());
  const auto [cold, nothing] = client.predict("m", 4294967295u);
  EXPECT_EQ(cold, Status::kNoPrediction);
  EXPECT_FALSE(nothing.has_value());
}

TEST(Serve, F64PredictionsIdenticalForEveryTargetOverTcp) {
  ServerFixture sf([](ServerOptions& o) { o.tcp_port = -1; });
  ASSERT_GT(sf.server.tcp_port(), 0);
  Client client = Client::connect_tcp(sf.server.tcp_port());
  for (net::Asn asn : fx().serving.targets()) {
    const auto want = fx().serving.predict(asn);
    const auto [status, result] = client.predict("m", asn);
    ASSERT_EQ(status, Status::kOk) << "AS" << asn;
    EXPECT_EQ(bits(result->prediction.magnitude), bits(want->magnitude));
    EXPECT_EQ(bits(result->prediction.magnitude_sd), bits(want->magnitude_sd));
    EXPECT_EQ(bits(result->prediction.duration_s), bits(want->duration_s));
    EXPECT_EQ(bits(result->prediction.hour), bits(want->hour));
    EXPECT_EQ(bits(result->prediction.day), bits(want->day));
    EXPECT_EQ(result->prediction.start, want->start);
    ASSERT_EQ(result->prediction.source_distribution.size(),
              want->source_distribution.size());
    for (const auto& [src, share] : want->source_distribution) {
      EXPECT_EQ(bits(result->prediction.source_distribution.at(src)),
                bits(share));
    }
  }
}

TEST(Serve, MalformedBodyGetsTypedErrorThenClose) {
  ServerFixture sf;
  Client client = sf.client();
  // Valid length prefix, garbage body: clean kBadRequest frame, then EOF.
  std::string raw;
  const std::string junk = "this is not a request";
  std::uint32_t len = static_cast<std::uint32_t>(junk.size());
  raw.append(reinterpret_cast<const char*>(&len), 4);
  raw += junk;
  client.send_raw(raw);
  const auto resp = client.read_response();
  EXPECT_EQ(resp.status, Status::kBadRequest);
  EXPECT_TRUE(client.drain().empty());  // Server closed the connection.
}

TEST(Serve, OversizedRequestGetsTooLargeThenClose) {
  ServerFixture sf;
  Client client = sf.client();
  const std::uint32_t len = kMaxBody + 1;
  std::string raw(reinterpret_cast<const char*>(&len), 4);
  raw += "xxxx";
  client.send_raw(raw);
  const auto resp = client.read_response();
  EXPECT_EQ(resp.status, Status::kTooLarge);
  EXPECT_TRUE(client.drain().empty());
}

TEST(Serve, GarbagePrefixPropertyAlwaysYieldsCleanErrorFrame) {
  // Property: ANY byte-garbage prefix (half-closed so the server sees
  // EOF) is answered with a well-formed error frame, never a crash, a
  // stall, or a dirty close with no reply.
  ServerFixture sf;
  std::mt19937_64 rng(11);
  for (int trial = 0; trial < 48; ++trial) {
    Client client = sf.client();
    const std::size_t n = 1 + rng() % 64;
    std::string garbage(n, '\0');
    for (char& c : garbage) c = static_cast<char>(rng());
    client.send_raw(garbage);
    ::shutdown(client.fd(), SHUT_WR);
    const auto resp = client.read_response();
    EXPECT_NE(resp.status, Status::kOk) << "trial " << trial;
    EXPECT_TRUE(client.drain().empty()) << "trial " << trial;
  }
  // The daemon survived all of it.
  Client healthy = sf.client();
  EXPECT_EQ(healthy.ping().status, Status::kOk);
}

TEST(Serve, SlowLorisPartialFrameIsTimedOutWithoutStallingWorkers) {
  ServerFixture sf([](ServerOptions& o) { o.io_timeout_ms = 150; });
  Client slow = sf.client();
  // 4-byte length promising a body that never arrives.
  const std::uint32_t len = 64;
  slow.send_raw({reinterpret_cast<const char*>(&len), 4});
  // Workers keep serving others while the partial frame waits.
  Client healthy = sf.client();
  EXPECT_EQ(healthy.ping().status, Status::kOk);
  // The stalled connection is closed within the timeout window.
  EXPECT_TRUE(slow.drain().empty());
  EXPECT_EQ(healthy.ping().status, Status::kOk);
}

TEST(Serve, ClientDisconnectMidResponseDoesNotCrashOrStall) {
  ServerFixture sf;
  const net::Asn asn = fx().serving.targets().front();
  for (int i = 0; i < 16; ++i) {
    Client client = sf.client();
    client.send_raw(encode_request(Opcode::kPredict, Precision::kF64, "m",
                                   {reinterpret_cast<const char*>(&asn), 4}));
    // Destructor closes the socket before (or while) the response lands.
  }
  Client healthy = sf.client();
  for (int i = 0; i < 4; ++i) {
    const auto [status, result] = healthy.predict("m", asn);
    EXPECT_EQ(status, Status::kOk);
  }
}

TEST(Serve, PipelinedDuplicatesAreCoalesced) {
  ServerFixture sf([](ServerOptions& o) {
    o.threads = 1;
    o.max_batch = 64;
    o.preload = true;
  });
  Client client = sf.client();
  const net::Asn asn = fx().serving.targets().front();
  const std::string req = encode_request(
      Opcode::kPredict, Precision::kF64, "m",
      {reinterpret_cast<const char*>(&asn), 4});
  constexpr int kPipelined = 500;
  std::string burst;
  for (int i = 0; i < kPipelined; ++i) burst += req;
  client.send_raw(burst);
  const auto want = fx().serving.predict(asn);
  for (int i = 0; i < kPipelined; ++i) {
    const auto resp = client.read_response();
    ASSERT_EQ(resp.status, Status::kOk) << "response " << i;
    const PredictResult result = decode_prediction(resp.payload);
    EXPECT_EQ(bits(result.prediction.magnitude), bits(want->magnitude));
  }
  const ServerStats stats = sf.server.stats();
  EXPECT_EQ(stats.requests, static_cast<std::uint64_t>(kPipelined));
  EXPECT_GT(stats.coalesced, 0u);
  EXPECT_LT(stats.batches, static_cast<std::uint64_t>(kPipelined));
}

TEST(Serve, UnbatchedModeServesIdenticalAnswers) {
  ServerFixture sf([](ServerOptions& o) { o.batching = false; });
  Client client = sf.client();
  for (net::Asn asn : fx().serving.targets()) {
    const auto want = fx().serving.predict(asn);
    const auto [status, result] = client.predict("m", asn);
    ASSERT_EQ(status, Status::kOk);
    EXPECT_EQ(bits(result->prediction.magnitude), bits(want->magnitude));
    EXPECT_EQ(result->prediction.start, want->start);
  }
  EXPECT_EQ(sf.server.stats().coalesced, 0u);
}

TEST(Serve, LruEvictsLeastRecentlyUsedModel) {
  ServerFixture sf([](ServerOptions& o) {
    o.max_resident = 1;
    o.models.emplace_back("m2", fx().armm_path);
    o.models.emplace_back("m3", fx().armm_path);
  });
  Client client = sf.client();
  const net::Asn asn = fx().serving.targets().front();
  for (const char* name : {"m", "m2", "m3", "m", "m2"}) {
    const auto [status, result] = client.predict(name, asn);
    EXPECT_EQ(status, Status::kOk) << name;
  }
  const ServerStats stats = sf.server.stats();
  EXPECT_EQ(stats.lru_misses, 5u);  // max_resident=1: every switch reloads.
  EXPECT_GE(stats.lru_evictions, 4u);
}

/// Hot-swap under load: worker threads hammer predicts while the artifact
/// is renamed over repeatedly. Every in-flight request must complete with
/// a byte-identical kOk answer and the generation must advance.
void swap_under_load(std::size_t server_threads) {
  TempDir dir;
  const fs::path live = dir.path / "live.armm";
  durable::atomic_write_file(live, fx().serving.image());
  ServerOptions opts;
  opts.socket_path = dir.path / "serve.sock";
  opts.models.emplace_back("m", live);
  opts.threads = server_threads;
  opts.watch_interval_ms = 20;
  opts.preload = true;
  Server server(std::move(opts));
  server.start();

  const auto targets = fx().serving.targets();
  std::vector<std::uint64_t> want_bits(targets.size());
  for (std::size_t i = 0; i < targets.size(); ++i) {
    want_bits[i] = bits(fx().serving.predict(targets[i])->magnitude);
  }

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> completed{0};
  std::atomic<std::uint64_t> wrong{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 4; ++t) {
    clients.emplace_back([&, t] {
      Client client = Client::connect_unix(server.socket_path());
      std::size_t i = static_cast<std::size_t>(t);
      while (!stop.load()) {
        const std::size_t at = i++ % targets.size();
        const auto [status, result] = client.predict("m", targets[at]);
        if (status != Status::kOk ||
            bits(result->prediction.magnitude) != want_bits[at]) {
          wrong.fetch_add(1);
        }
        completed.fetch_add(1);
      }
    });
  }

  // Rotate the artifact several times mid-flight (same bits, new inode —
  // exactly what the ingest refit's atomic_write_file publish does).
  const std::uint64_t start_gen = server.generation("m");
  for (int rotation = 0; rotation < 3; ++rotation) {
    durable::atomic_write_file(live, fx().serving.image());
    ASSERT_TRUE(server.wait_for_generation(
        "m", start_gen + static_cast<std::uint64_t>(rotation) + 1, 5000))
        << "rotation " << rotation;
  }
  stop.store(true);
  for (std::thread& t : clients) t.join();
  server.stop();

  EXPECT_EQ(wrong.load(), 0u);
  EXPECT_GT(completed.load(), 0u);
  EXPECT_GE(server.stats().swaps, 3u);
  // Zero lost requests: the daemon answered every round-trip it was sent.
  EXPECT_EQ(server.stats().requests, completed.load());
}

TEST(Serve, HotSwapUnderLoad1Thread) { swap_under_load(1); }
TEST(Serve, HotSwapUnderLoad4Threads) { swap_under_load(4); }
TEST(Serve, HotSwapUnderLoad16Threads) { swap_under_load(16); }

TEST(Serve, CorruptRotationKeepsPreviousGenerationServing) {
  TempDir dir;
  const fs::path live = dir.path / "live.armm";
  durable::atomic_write_file(live, fx().serving.image());
  ServerOptions opts;
  opts.socket_path = dir.path / "serve.sock";
  opts.models.emplace_back("m", live);
  opts.watch_interval_ms = 20;
  opts.preload = true;
  Server server(std::move(opts));
  server.start();
  const net::Asn asn = fx().serving.targets().front();
  Client client = Client::connect_unix(server.socket_path());
  ASSERT_EQ(client.predict("m", asn).first, Status::kOk);

  // A torn/corrupt artifact lands on the watched path: the watcher must
  // reject it and keep serving the resident generation.
  durable::atomic_write_file(live, "definitely not an artifact");
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  const auto [status, result] = client.predict("m", asn);
  EXPECT_EQ(status, Status::kOk);
  EXPECT_EQ(bits(result->prediction.magnitude),
            bits(fx().serving.predict(asn)->magnitude));
  EXPECT_EQ(server.stats().swaps, 0u);

  // The next healthy rotation swaps in cleanly (self-healing).
  durable::atomic_write_file(live, fx().serving.image());
  EXPECT_TRUE(server.wait_for_generation("m", 2, 5000));
  EXPECT_EQ(client.predict("m", asn).first, Status::kOk);
  server.stop();
}

// --- CLI surface ------------------------------------------------------------

int run_cli(std::initializer_list<std::string> args, std::string* out_text,
            std::string* err_text = nullptr) {
  std::vector<std::string> argv(args);
  std::ostringstream out, err;
  const int code = cli::run(argv, out, err);
  if (out_text != nullptr) *out_text = out.str();
  if (err_text != nullptr) *err_text = err.str();
  return code;
}

TEST(ServeCli, PackProducesMappableArtifact) {
  TempDir dir;
  const fs::path out_path = dir.path / "packed.armm";
  std::string out;
  ASSERT_EQ(run_cli({"pack", "--model", fx().art_path.string(), "--out",
                     out_path.string()},
                    &out),
            0);
  EXPECT_NE(out.find("packed"), std::string::npos);
  const ServingModel mapped = ServingModel::map_file(out_path);
  EXPECT_EQ(mapped.image(), fx().serving.image());

  std::string err;
  EXPECT_EQ(run_cli({"pack", "--model", (dir.path / "nope.art").string(),
                     "--out", out_path.string()},
                    &out, &err),
            3);
}

TEST(ServeCli, QueryOutputByteIdenticalToPredictCli) {
  ServerFixture sf;
  const auto targets = fx().serving.targets();
  std::vector<std::string> predict_args = {"predict", "--model",
                                           fx().art_path.string()};
  std::vector<std::string> query_args = {
      "query", "--socket", sf.server.socket_path().string(), "--model", "m"};
  for (net::Asn asn : targets) {
    predict_args.push_back("--target");
    predict_args.push_back(std::to_string(asn));
    query_args.push_back("--target");
    query_args.push_back(std::to_string(asn));
  }
  std::ostringstream predict_out, query_out, err;
  ASSERT_EQ(cli::run(predict_args, predict_out, err), 0) << err.str();
  ASSERT_EQ(cli::run(query_args, query_out, err), 0) << err.str();
  EXPECT_EQ(query_out.str(), predict_out.str());
}

TEST(ServeCli, QueryMixIsDeterministicAndErrorsAreTyped) {
  ServerFixture sf;
  const std::string socket = sf.server.socket_path().string();
  const std::string target =
      std::to_string(fx().serving.targets().front());
  std::string first, second;
  ASSERT_EQ(run_cli({"query", "--socket", socket, "--model", "m", "--target",
                     target, "--count", "10", "--seed", "3"},
                    &first),
            0);
  ASSERT_EQ(run_cli({"query", "--socket", socket, "--model", "m", "--target",
                     target, "--count", "10", "--seed", "3"},
                    &second),
            0);
  EXPECT_EQ(first, second);

  std::string out, err;
  EXPECT_EQ(run_cli({"query", "--socket", socket, "--model", "ghost",
                     "--target", target},
                    &out, &err),
            3);
  EXPECT_EQ(run_cli({"query", "--model", "m", "--target", target}, &out,
                    &err),
            2);  // Neither --socket nor --port.
}

TEST(ServeCli, StaleSocketFileIsReplacedOnStart) {
  TempDir dir;
  const fs::path sock = dir.path / "serve.sock";
  {  // A dead daemon's leftover socket must not block a restart.
    ServerOptions opts;
    opts.socket_path = sock;
    opts.models.emplace_back("m", fx().armm_path);
    Server first(std::move(opts));
    first.start();
    first.stop();
  }
  std::ofstream(sock) << "";  // Simulate a stale leftover file.
  ServerOptions opts;
  opts.socket_path = sock;
  opts.models.emplace_back("m", fx().armm_path);
  Server server(std::move(opts));
  server.start();
  Client client = Client::connect_unix(sock);
  EXPECT_EQ(client.ping().status, Status::kOk);
  server.stop();
}

}  // namespace
}  // namespace acbm::core::serve
