// CLI-level sharded-fit acceptance: `acbm fit --workers N` spawns real
// worker processes (fork/exec) and must produce a model byte-identical to
// the single-process fit — including when workers crash, fail to spawn, or
// the coordinator times out. This binary supplies its own main(): invoked
// with "worker" as the first argument it IS the worker executable
// (`fit --workers` resolves /proc/self/exe), otherwise it runs gtest.
#include "cli/cli.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/durable.h"
#include "core/robust.h"

namespace acbm::cli {
namespace {

namespace fs = std::filesystem;
namespace durable = acbm::core::durable;

struct FaultGuard {
  FaultGuard() { core::FaultInjector::instance().clear(); }
  ~FaultGuard() { core::FaultInjector::instance().clear(); }
};

/// Sets ACBM_FAULTS for spawned workers (children parse it at startup;
/// this process's already-constructed injector is unaffected).
struct ChildFaultsGuard {
  explicit ChildFaultsGuard(const char* spec) {
    ::setenv("ACBM_FAULTS", spec, 1);
  }
  ~ChildFaultsGuard() { ::unsetenv("ACBM_FAULTS"); }
};

struct TempDir {
  fs::path path;
  TempDir() {
    // Unique per instance, not just per process: the shared World's files
    // must survive the per-test directories' wipes.
    static int next = 0;
    path = fs::temp_directory_path() /
           ("acbm_worker_cli_test_" + std::to_string(::getpid()) + "_" +
            std::to_string(next++));
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  [[nodiscard]] std::string file(const std::string& name) const {
    return (path / name).string();
  }
};

int run_cli(std::vector<std::string> argv, std::string* out_text = nullptr,
            std::string* err_text = nullptr) {
  std::ostringstream out;
  std::ostringstream err;
  const int code = run(argv, out, err);
  if (out_text) *out_text = out.str();
  if (err_text) *err_text = err.str();
  return code;
}

/// One generated world plus the single-process reference fit, shared by
/// every test in the binary.
struct World {
  TempDir tmp;
  std::string dataset;
  std::string ipmap;
  std::string plain_bytes;
  World() {
    dataset = tmp.file("trace.csv");
    ipmap = tmp.file("ipmap.txt");
    std::string err;
    if (run_cli({"generate", "--seed", "5", "--days", "20", "--dataset",
                 dataset, "--ipmap", ipmap},
                nullptr, &err) != 0) {
      throw std::runtime_error("generate failed: " + err);
    }
    const std::string model = tmp.file("plain.model");
    if (run_cli({"fit", "--dataset", dataset, "--ipmap", ipmap, "--model",
                 model},
                nullptr, &err) != 0) {
      throw std::runtime_error("reference fit failed: " + err);
    }
    plain_bytes = durable::read_file(model);
  }
};

const World& world() {
  static const World w;
  return w;
}

std::vector<std::string> fit_args(const std::string& model,
                                  const std::string& ckpt,
                                  std::vector<std::string> extra) {
  std::vector<std::string> args = {"fit",     "--dataset",        world().dataset,
                                   "--ipmap", world().ipmap,      "--model",
                                   model,     "--checkpoint-dir", ckpt};
  args.insert(args.end(), extra.begin(), extra.end());
  return args;
}

TEST(WorkerCli, MultiProcessFitIsByteIdenticalToSingleProcess) {
  TempDir tmp;
  std::string out;
  std::string err;
  for (const char* workers : {"2", "4"}) {
    const std::string model = tmp.file(std::string("w") + workers + ".model");
    const std::string ckpt = tmp.file(std::string("ck") + workers);
    ASSERT_EQ(run_cli(fit_args(model, ckpt, {"--workers", workers}), &out,
                      &err),
              0)
        << err;
    EXPECT_NE(out.find("workers: complete"), std::string::npos);
    EXPECT_EQ(durable::read_file(model), world().plain_bytes)
        << "--workers " << workers;
  }
}

TEST(WorkerCli, StandaloneWorkerFitsEveryShardForALaterMerge) {
  TempDir tmp;
  const std::string ckpt = tmp.file("ck");
  std::string err;
  // A coordinator-less worker pointed at an empty shared dir fits all
  // shards itself (no plan file is fine).
  ASSERT_EQ(run_cli({"worker", "--dataset", world().dataset, "--ipmap",
                     world().ipmap, "--checkpoint-dir", ckpt, "--worker-id",
                     "0"},
                    nullptr, &err),
            0)
      << err;
  EXPECT_NE(err.find("worker 0: fit"), std::string::npos);
  // A resumed coordinated fit finds the plan complete and only merges.
  const std::string model = tmp.file("m.model");
  ASSERT_EQ(run_cli(fit_args(model, ckpt, {"--workers", "2", "--resume"}),
                    nullptr, &err),
            0)
      << err;
  EXPECT_EQ(durable::read_file(model), world().plain_bytes);
}

TEST(WorkerCli, SigkilledWorkerIsReplacedAndTheModelIsUnchanged) {
  // worker.exit makes worker 0 SIGKILL itself on its first leased shard;
  // the respawned replacement (a fresh id) completes the plan.
  ChildFaultsGuard faults("worker.exit:worker=0");
  TempDir tmp;
  const std::string model = tmp.file("m.model");
  std::string out;
  std::string err;
  ASSERT_EQ(run_cli(fit_args(model, tmp.file("ck"),
                             {"--workers", "2", "--lease-ttl-ms", "300"}),
                    &out, &err),
            0)
      << err;
  EXPECT_NE(out.find("workers:"), std::string::npos);
  EXPECT_EQ(durable::read_file(model), world().plain_bytes);
}

TEST(WorkerCli, CrashLoopExhaustsTheBudgetAndTheMergeStillCompletes) {
  // Unfiltered on the spatial shard: every incarnation that leases it
  // dies, the respawn budget drains, and the coordinator's merge fit
  // refits whatever the workers never published.
  ChildFaultsGuard faults("worker.exit:shard=spatial");
  TempDir tmp;
  const std::string model = tmp.file("m.model");
  std::string out;
  std::string err;
  ASSERT_EQ(run_cli(fit_args(model, tmp.file("ck"),
                             {"--workers", "2", "--lease-ttl-ms", "200"}),
                    &out, &err),
            0)
      << err;
  EXPECT_NE(out.find("workers: workers_exhausted"), std::string::npos);
  EXPECT_EQ(durable::read_file(model), world().plain_bytes);
}

TEST(WorkerCli, SpawnFaultEatsRespawnBudgetNotCorrectness) {
  FaultGuard guard;
  // worker.spawn fires in the coordinator process itself.
  core::FaultInjector::instance().configure("worker.spawn:worker=1");
  TempDir tmp;
  const std::string model = tmp.file("m.model");
  std::string err;
  ASSERT_EQ(run_cli(fit_args(model, tmp.file("ck"), {"--workers", "2"}),
                    nullptr, &err),
            0)
      << err;
  EXPECT_EQ(durable::read_file(model), world().plain_bytes);
}

TEST(WorkerCli, CoordinatorTimeoutKillsWorkersAndExitsFive) {
  TempDir tmp;
  const std::string model = tmp.file("m.model");
  std::string err;
  EXPECT_EQ(run_cli(fit_args(model, tmp.file("ck"),
                             {"--workers", "2", "--worker-timeout", "1"}),
                    nullptr, &err),
            5);
  EXPECT_NE(err.find("timed out"), std::string::npos);
  EXPECT_FALSE(fs::exists(model));
}

TEST(WorkerCli, WorkersWithoutCheckpointDirIsAUsageError) {
  std::string err;
  EXPECT_EQ(run_cli({"fit", "--dataset", world().dataset, "--ipmap",
                     world().ipmap, "--model", "/tmp/unused.model",
                     "--workers", "2"},
                    nullptr, &err),
            2);
  EXPECT_NE(err.find("--checkpoint-dir"), std::string::npos);
}

TEST(WorkerCli, WorkerCommandRequiresItsInputs) {
  std::string err;
  EXPECT_EQ(run_cli({"worker", "--dataset", world().dataset}, nullptr, &err),
            2);
  EXPECT_NE(err.find("--"), std::string::npos);
}

}  // namespace
}  // namespace acbm::cli

int main(int argc, char** argv) {
  if (argc > 1 && std::string(argv[1]) == "worker") {
    const std::vector<std::string> args(argv + 1, argv + argc);
    return acbm::cli::run(args, std::cout, std::cerr);
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
