// CLI-level streaming-ingestion acceptance: the `acbm ingest` verb's full
// lifecycle (init → snapshot appends → drift-triggered refit → export),
// its exit-code contract (0 ok/duplicate, 2 usage, 3 rejected snapshot,
// 6 refit retries exhausted), and the headline crash-safety property — the
// model a faulted-and-retried ingest loop publishes is byte-identical to a
// clean `acbm fit` on the exported cumulative dataset.
#include "cli/cli.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/durable.h"
#include "core/robust.h"

namespace acbm::cli {
namespace {

namespace fs = std::filesystem;
namespace durable = acbm::core::durable;

struct FaultGuard {
  FaultGuard() { core::FaultInjector::instance().clear(); }
  ~FaultGuard() { core::FaultInjector::instance().clear(); }
};

struct TempDir {
  fs::path path;
  TempDir() {
    static std::atomic<int> counter{0};
    path = fs::temp_directory_path() /
           ("acbm_ingest_cli_test_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter.fetch_add(1)));
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  [[nodiscard]] std::string file(const std::string& name) const {
    return (path / name).string();
  }
};

int run_cli(std::vector<std::string> argv, std::string* out_text = nullptr,
            std::string* err_text = nullptr) {
  std::ostringstream out;
  std::ostringstream err;
  const int code = run(argv, out, err);
  if (out_text) *out_text = out.str();
  if (err_text) *err_text = err.str();
  return code;
}

/// One small generated world shared by every test in this binary.
struct World {
  TempDir tmp;
  std::string dataset;
  std::string ipmap;
  World() {
    dataset = tmp.file("trace.art");
    ipmap = tmp.file("ipmap.art");
    std::string err;
    const int code = run_cli({"generate", "--seed", "9", "--days", "8",
                              "--dataset", dataset, "--ipmap", ipmap},
                             nullptr, &err);
    if (code != 0) throw std::runtime_error("generate failed: " + err);
  }
};

const World& world() {
  static const World w;
  return w;
}

/// Header fields of the generated dataset, for building snapshots.
struct DatasetHeader {
  std::string window_start;
  std::string families;
};

DatasetHeader dataset_header() {
  const std::string payload =
      durable::unwrap(durable::read_file(world().dataset), "dataset", 1, 1);
  DatasetHeader header;
  std::istringstream is(payload);
  std::string line;
  while (std::getline(is, line)) {
    if (line.rfind("#window_start=", 0) == 0) {
      header.window_start = line.substr(14);
    } else if (line.rfind("#families=", 0) == 0) {
      header.families = line.substr(10);
    } else if (!line.empty() && line[0] != '#') {
      break;
    }
  }
  return header;
}

/// A one-attack snapshot CSV stamped inside `hour` of the base window.
std::string snapshot_for_hour(std::size_t hour, std::uint64_t id) {
  const DatasetHeader header = dataset_header();
  const long long start =
      std::stoll(header.window_start) + static_cast<long long>(hour) * 3600 +
      120;
  std::ostringstream csv;
  csv << "#window_start=" << header.window_start << "\n"
      << "#families=" << header.families << "\n"
      << "id,family,target_ip,target_asn,start,duration_s,bots\n"
      << id << ",0,10.0.0.1,3," << start
      << ",600,10.9.0.1;10.9.0.2;10.9.0.3\n";
  return csv.str();
}

std::string write_snapshot(const TempDir& tmp, std::size_t hour,
                           std::uint64_t id) {
  const std::string path =
      tmp.file("snap" + std::to_string(hour) + ".csv");
  std::ofstream(path, std::ios::binary | std::ios::trunc)
      << snapshot_for_hour(hour, id);
  return path;
}

TEST(IngestCli, LifecycleAppendsRefitsAndMatchesAColdFitByteForByte) {
  FaultGuard guard;
  TempDir tmp;
  const std::string dir = tmp.file("stream");
  std::string out;
  std::string err;

  ASSERT_EQ(run_cli({"ingest", "--dir", dir, "--init", "--dataset",
                     world().dataset, "--ipmap", world().ipmap},
                    &out, &err),
            0)
      << err;
  EXPECT_NE(out.find("model published"), std::string::npos);

  ASSERT_EQ(run_cli({"ingest", "--dir", dir, "--status"}, &out, &err), 0);
  EXPECT_NE(out.find("initialized:    yes"), std::string::npos);

  // Two appended snapshots; --no-refit defers, the forced refit then
  // publishes a new generation covering both.
  const std::size_t base_hours = 8 * 24;
  ASSERT_EQ(run_cli({"ingest", "--dir", dir, "--snapshot",
                     write_snapshot(tmp, base_hours + 1, 990001), "--hour",
                     std::to_string(base_hours + 1), "--no-refit"},
                    &out, &err),
            0)
      << err;
  EXPECT_NE(out.find("accepted"), std::string::npos);
  ASSERT_EQ(run_cli({"ingest", "--dir", dir, "--snapshot",
                     write_snapshot(tmp, base_hours + 2, 990002), "--hour",
                     std::to_string(base_hours + 2), "--no-refit"},
                    &out, &err),
            0)
      << err;
  ASSERT_EQ(run_cli({"ingest", "--dir", dir, "--refit"}, &out, &err), 0)
      << err;
  EXPECT_NE(out.find("new model generation published"), std::string::npos);

  // The headline contract: export the cumulative dataset, cold-fit it, and
  // the bytes must match the incrementally refit model exactly.
  const std::string exported = tmp.file("cumulative.art");
  ASSERT_EQ(run_cli({"ingest", "--dir", dir, "--export-dataset", exported},
                    &out, &err),
            0)
      << err;
  const std::string cold_model = tmp.file("cold.art");
  ASSERT_EQ(run_cli({"fit", "--dataset", exported, "--ipmap", world().ipmap,
                     "--model", cold_model},
                    nullptr, &err),
            0)
      << err;
  EXPECT_EQ(durable::read_file((fs::path(dir) / "model.art").string()),
            durable::read_file(cold_model));
}

TEST(IngestCli, DuplicateHourExitsZeroWithoutAppending) {
  TempDir tmp;
  const std::string dir = tmp.file("stream");
  std::string out;
  std::string err;
  ASSERT_EQ(run_cli({"ingest", "--dir", dir, "--init", "--dataset",
                     world().dataset, "--ipmap", world().ipmap},
                    nullptr, &err),
            0)
      << err;
  const std::string snap = write_snapshot(tmp, 1, 990003);
  EXPECT_EQ(run_cli({"ingest", "--dir", dir, "--snapshot", snap, "--hour",
                     "1", "--no-refit"},
                    &out, &err),
            0);
  EXPECT_NE(out.find("duplicate"), std::string::npos);
  EXPECT_NE(out.find("nothing appended"), std::string::npos);
}

TEST(IngestCli, RejectedSnapshotExitsThreeAndQuarantines) {
  TempDir tmp;
  const std::string dir = tmp.file("stream");
  std::string out;
  std::string err;
  ASSERT_EQ(run_cli({"ingest", "--dir", dir, "--init", "--dataset",
                     world().dataset, "--ipmap", world().ipmap},
                    nullptr, &err),
            0)
      << err;
  const std::string bad = tmp.file("bad.csv");
  std::ofstream(bad, std::ios::binary) << "not,a,snapshot\n";
  EXPECT_EQ(run_cli({"ingest", "--dir", dir, "--snapshot", bad, "--hour",
                     "500"},
                    &out, &err),
            3);
  EXPECT_NE(err.find("quarantined"), std::string::npos);
  EXPECT_FALSE(fs::is_empty(fs::path(dir) / "quarantine"));
}

TEST(IngestCli, ExhaustedRefitExitsSixAndKeepsServing) {
  FaultGuard guard;
  TempDir tmp;
  const std::string dir = tmp.file("stream");
  std::string out;
  std::string err;
  ASSERT_EQ(run_cli({"ingest", "--dir", dir, "--init", "--dataset",
                     world().dataset, "--ipmap", world().ipmap},
                    nullptr, &err),
            0)
      << err;
  const std::string before =
      durable::read_file((fs::path(dir) / "model.art").string());

  core::FaultInjector::instance().configure("refit.fail");
  EXPECT_EQ(run_cli({"ingest", "--dir", dir, "--refit", "--refit-retries",
                     "1", "--refit-backoff-ms", "0"},
                    &out, &err),
            6);
  EXPECT_NE(err.find("previous model generation is still live"),
            std::string::npos);
  EXPECT_EQ(durable::read_file((fs::path(dir) / "model.art").string()),
            before);

  core::FaultInjector::instance().clear();
  EXPECT_EQ(run_cli({"ingest", "--dir", dir, "--refit"}, &out, &err), 0)
      << err;
}

TEST(IngestCli, UsageErrors) {
  TempDir tmp;
  std::string err;
  // No mode flag at all.
  EXPECT_EQ(run_cli({"ingest", "--dir", tmp.file("s")}, nullptr, &err), 2);
  EXPECT_NE(err.find("--init"), std::string::npos);
  // --snapshot without --hour.
  EXPECT_EQ(run_cli({"ingest", "--dir", tmp.file("s"), "--snapshot",
                     "x.csv"},
                    nullptr, &err),
            2);
  EXPECT_NE(err.find("--hour"), std::string::npos);
  // Unknown option.
  EXPECT_EQ(run_cli({"ingest", "--dir", tmp.file("s"), "--bogus", "1"},
                    nullptr, &err),
            2);
}

}  // namespace
}  // namespace acbm::cli
