#include "stats/descriptive.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "stats/rng.h"

namespace acbm::stats {
namespace {

const std::vector<double> kSample{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};

TEST(Descriptive, Mean) {
  EXPECT_DOUBLE_EQ(mean(kSample), 5.0);
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
}

TEST(Descriptive, VarianceSampleVsPopulation) {
  // Known example: population variance 4, sample variance 32/7.
  EXPECT_DOUBLE_EQ(population_variance(kSample), 4.0);
  EXPECT_NEAR(variance(kSample), 32.0 / 7.0, 1e-12);
}

TEST(Descriptive, StddevIsSqrtVariance) {
  EXPECT_DOUBLE_EQ(stddev(kSample), std::sqrt(32.0 / 7.0));
}

TEST(Descriptive, VarianceOfSinglePointIsZero) {
  EXPECT_DOUBLE_EQ(variance(std::vector<double>{3.0}), 0.0);
}

TEST(Descriptive, CoefficientOfVariation) {
  EXPECT_DOUBLE_EQ(coefficient_of_variation(kSample),
                   std::sqrt(32.0 / 7.0) / 5.0);
  EXPECT_DOUBLE_EQ(coefficient_of_variation(std::vector<double>{0.0, 0.0}), 0.0);
}

TEST(Descriptive, CvIsScaleInvariant) {
  // CV(c * X) == CV(X) for c > 0 — this is why Table I uses it to compare
  // families with wildly different attack volumes.
  std::vector<double> scaled;
  for (double x : kSample) scaled.push_back(100.0 * x);
  EXPECT_NEAR(coefficient_of_variation(scaled),
              coefficient_of_variation(kSample), 1e-12);
}

TEST(Descriptive, MinMax) {
  EXPECT_DOUBLE_EQ(min_value(kSample), 2.0);
  EXPECT_DOUBLE_EQ(max_value(kSample), 9.0);
  EXPECT_THROW((void)min_value(std::vector<double>{}), std::invalid_argument);
}

TEST(Descriptive, MedianAndQuantiles) {
  EXPECT_DOUBLE_EQ(median(std::vector<double>{1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(median(std::vector<double>{1.0, 2.0, 3.0, 4.0}), 2.5);
  EXPECT_DOUBLE_EQ(quantile(std::vector<double>{1.0, 2.0, 3.0, 4.0, 5.0}, 0.0),
                   1.0);
  EXPECT_DOUBLE_EQ(quantile(std::vector<double>{1.0, 2.0, 3.0, 4.0, 5.0}, 1.0),
                   5.0);
  EXPECT_DOUBLE_EQ(quantile(std::vector<double>{1.0, 2.0, 3.0, 4.0, 5.0}, 0.25),
                   2.0);
}

TEST(Descriptive, QuantileRejectsBadInput) {
  EXPECT_THROW((void)quantile(std::vector<double>{}, 0.5), std::invalid_argument);
  EXPECT_THROW((void)quantile(kSample, -0.1), std::invalid_argument);
  EXPECT_THROW((void)quantile(kSample, 1.1), std::invalid_argument);
}

TEST(Descriptive, SkewnessSignDetectsAsymmetry) {
  EXPECT_GT(skewness(std::vector<double>{1, 1, 1, 1, 10}), 0.0);
  EXPECT_LT(skewness(std::vector<double>{-10, 1, 1, 1, 1}), 0.0);
  EXPECT_NEAR(skewness(std::vector<double>{-1, 0, 1}), 0.0, 1e-12);
}

TEST(Descriptive, AutocorrelationLagZeroIsOne) {
  EXPECT_DOUBLE_EQ(autocorrelation(kSample, 0), 1.0);
}

TEST(Descriptive, AutocorrelationOfAlternatingSeriesIsNegative) {
  std::vector<double> alt;
  for (int i = 0; i < 50; ++i) alt.push_back(i % 2 == 0 ? 1.0 : -1.0);
  EXPECT_LT(autocorrelation(alt, 1), -0.9);
}

TEST(Descriptive, AutocorrelationConstantSeriesIsZero) {
  std::vector<double> c(20, 3.0);
  EXPECT_DOUBLE_EQ(autocorrelation(c, 1), 0.0);
}

TEST(Descriptive, AcfVectorShape) {
  const std::vector<double> a = acf(kSample, 3);
  ASSERT_EQ(a.size(), 4u);
  EXPECT_DOUBLE_EQ(a[0], 1.0);
}

TEST(Descriptive, PearsonCorrelationPerfectlyLinear) {
  std::vector<double> xs{1, 2, 3, 4, 5};
  std::vector<double> ys{2, 4, 6, 8, 10};
  EXPECT_NEAR(pearson_correlation(xs, ys), 1.0, 1e-12);
  std::vector<double> neg{10, 8, 6, 4, 2};
  EXPECT_NEAR(pearson_correlation(xs, neg), -1.0, 1e-12);
}

TEST(Descriptive, PearsonCorrelationMismatchThrows) {
  EXPECT_THROW(
      (void)pearson_correlation(std::vector<double>{1.0}, std::vector<double>{1.0, 2.0}),
      std::invalid_argument);
}

TEST(Descriptive, ZScoreRoundTrips) {
  const ZScore z = fit_zscore(kSample);
  for (double x : kSample) {
    EXPECT_NEAR(z.inverse(z.transform(x)), x, 1e-12);
  }
  EXPECT_NEAR(z.transform(z.mean), 0.0, 1e-12);
}

TEST(Descriptive, ZScoreOnConstantSeriesStaysFinite) {
  const ZScore z = fit_zscore(std::vector<double>{5.0, 5.0, 5.0});
  EXPECT_TRUE(std::isfinite(z.transform(5.0)));
  EXPECT_TRUE(std::isfinite(z.transform(100.0)));
}

// Property: AR(1) series with positive coefficient has positive lag-1 ACF.
class AcfProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AcfProperty, Ar1SeriesHasPositiveLag1Autocorrelation) {
  Rng rng(GetParam());
  std::vector<double> xs{0.0};
  for (int t = 1; t < 400; ++t) {
    xs.push_back(0.7 * xs.back() + rng.normal());
  }
  EXPECT_GT(autocorrelation(xs, 1), 0.3);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AcfProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

}  // namespace
}  // namespace acbm::stats
