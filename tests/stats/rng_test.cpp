#include "stats/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>
#include <vector>

#include "stats/descriptive.h"

namespace acbm::stats {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(Rng, DifferentSeedDifferentStream) {
  Rng a(1);
  Rng b(2);
  int differing = 0;
  for (int i = 0; i < 32; ++i) {
    if (a.uniform() != b.uniform()) ++differing;
  }
  EXPECT_GT(differing, 0);
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-2.0, 3.0);
    EXPECT_GE(u, -2.0);
    EXPECT_LT(u, 3.0);
  }
}

TEST(Rng, UniformIntRespectsBounds) {
  Rng rng(7);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-1, 3);
    EXPECT_GE(v, -1);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // All 5 values should appear in 1000 draws.
}

TEST(Rng, NormalMomentsApproximatelyCorrect) {
  Rng rng(11);
  std::vector<double> xs(20000);
  for (double& x : xs) x = rng.normal(3.0, 2.0);
  EXPECT_NEAR(mean(xs), 3.0, 0.1);
  EXPECT_NEAR(stddev(xs), 2.0, 0.1);
}

TEST(Rng, NormalZeroSigmaIsDeterministic) {
  Rng rng(1);
  EXPECT_DOUBLE_EQ(rng.normal(5.0, 0.0), 5.0);
}

TEST(Rng, PoissonMeanMatchesLambda) {
  Rng rng(13);
  std::vector<double> xs(20000);
  for (double& x : xs) x = static_cast<double>(rng.poisson(4.5));
  EXPECT_NEAR(mean(xs), 4.5, 0.15);
}

TEST(Rng, PoissonZeroLambdaYieldsZero) {
  Rng rng(13);
  EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(Rng, ExponentialMeanMatchesInverseRate) {
  Rng rng(17);
  std::vector<double> xs(20000);
  for (double& x : xs) x = rng.exponential(0.5);
  EXPECT_NEAR(mean(xs), 2.0, 0.1);
}

TEST(Rng, ParetoRespectsScaleFloor) {
  Rng rng(19);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(rng.pareto(2.0, 1.5), 2.0);
  }
}

TEST(Rng, LognormalIsPositive) {
  Rng rng(23);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GT(rng.lognormal(0.0, 1.0), 0.0);
  }
}

TEST(Rng, CategoricalFollowsWeights) {
  Rng rng(29);
  const std::vector<double> w{1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[rng.categorical(w)];
  EXPECT_EQ(counts[2], 0);  // Zero-weight bucket never drawn.
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.1, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[1]) / n, 0.3, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[3]) / n, 0.6, 0.01);
}

TEST(Rng, CategoricalRejectsBadInput) {
  Rng rng(1);
  EXPECT_THROW((void)rng.categorical(std::vector<double>{}), std::invalid_argument);
  EXPECT_THROW((void)rng.categorical(std::vector<double>{0.0, 0.0}),
               std::invalid_argument);
  EXPECT_THROW((void)rng.categorical(std::vector<double>{1.0, -1.0}),
               std::invalid_argument);
}

TEST(Rng, ZipfSkewsTowardLowRanks) {
  Rng rng(31);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 20000; ++i) ++counts[rng.zipf(10, 1.2)];
  EXPECT_GT(counts[0], counts[4]);
  EXPECT_GT(counts[4], counts[9]);
}

TEST(Rng, ZipfZeroExponentIsUniform) {
  Rng rng(37);
  std::vector<int> counts(4, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[rng.zipf(4, 0.0)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.25, 0.02);
  }
}

TEST(Rng, SampleWithoutReplacementIsDistinctAndInRange) {
  Rng rng(41);
  const auto s = rng.sample_without_replacement(100, 30);
  EXPECT_EQ(s.size(), 30u);
  std::set<std::size_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 30u);
  for (std::size_t v : s) EXPECT_LT(v, 100u);
}

TEST(Rng, SampleWithoutReplacementFullRange) {
  Rng rng(43);
  const auto s = rng.sample_without_replacement(10, 10);
  std::set<std::size_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 10u);
}

TEST(Rng, SampleWithoutReplacementRejectsKGreaterThanN) {
  Rng rng(1);
  EXPECT_THROW((void)rng.sample_without_replacement(3, 4), std::invalid_argument);
}

TEST(Rng, ShufflePreservesMultiset) {
  Rng rng(47);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(42);
  Rng child = a.fork();
  // The child stream should not replicate the parent's next draws.
  Rng b(42);
  (void)b.fork();
  int same = 0;
  for (int i = 0; i < 16; ++i) {
    if (child.uniform() == b.uniform()) ++same;
  }
  EXPECT_LT(same, 16);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(53);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

}  // namespace
}  // namespace acbm::stats
