// Property tests for the optimized dense kernels: every fused/blocked path
// must be bit-identical (0 ULP) to the naive reference loop it replaced,
// across shapes that cover the unroll remainders, tile edges, and the
// naive-vs-blocked dispatch threshold.
#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "stats/kernels.h"
#include "stats/matrix.h"
#include "stats/rng.h"

namespace {

using acbm::stats::Matrix;
using acbm::stats::Rng;

Matrix random_matrix(std::size_t rows, std::size_t cols, Rng& rng) {
  Matrix m(rows, cols);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) m(i, j) = rng.normal(0.0, 1.0);
  }
  return m;
}

/// The reference multiply the optimized operator* replaced: i-k-j loops,
/// sequential k-order accumulation into a zero-filled output.
Matrix naive_multiply(const Matrix& a, const Matrix& b) {
  Matrix out(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      for (std::size_t j = 0; j < b.cols(); ++j) {
        out(i, j) += aik * b(k, j);
      }
    }
  }
  return out;
}

void expect_bit_identical(const Matrix& got, const Matrix& want) {
  ASSERT_EQ(got.rows(), want.rows());
  ASSERT_EQ(got.cols(), want.cols());
  for (std::size_t i = 0; i < got.rows(); ++i) {
    for (std::size_t j = 0; j < got.cols(); ++j) {
      EXPECT_EQ(got(i, j), want(i, j)) << "at (" << i << ", " << j << ")";
    }
  }
}

TEST(KernelsTest, BlockedMultiplyMatchesNaiveBitForBit) {
  Rng rng(42);
  // Shapes straddling the dispatch threshold and exercising remainders of
  // the 4-wide unroll and the 64-column block.
  const std::size_t shapes[][3] = {{3, 5, 4},    {17, 13, 9},  {32, 32, 32},
                                   {40, 33, 65}, {70, 71, 69}, {128, 20, 100}};
  for (const auto& s : shapes) {
    const Matrix a = random_matrix(s[0], s[1], rng);
    const Matrix b = random_matrix(s[1], s[2], rng);
    expect_bit_identical(a * b, naive_multiply(a, b));
  }
}

TEST(KernelsTest, TiledTransposeMatchesElementwise) {
  Rng rng(7);
  // Sizes around the 32-wide transpose tile.
  const std::size_t shapes[][2] = {{1, 1}, {5, 9}, {31, 33}, {64, 64}, {70, 3}};
  for (const auto& s : shapes) {
    const Matrix m = random_matrix(s[0], s[1], rng);
    const Matrix t = m.transpose();
    ASSERT_EQ(t.rows(), m.cols());
    ASSERT_EQ(t.cols(), m.rows());
    for (std::size_t i = 0; i < m.rows(); ++i) {
      for (std::size_t j = 0; j < m.cols(); ++j) {
        EXPECT_EQ(t(j, i), m(i, j));
      }
    }
  }
}

TEST(KernelsTest, FusedNormalEquationsMatchesTransposeReference) {
  Rng rng(99);
  const std::size_t shapes[][2] = {{8, 3}, {50, 7}, {100, 13}, {64, 24}};
  for (const auto& s : shapes) {
    const std::size_t n = s[0];
    const std::size_t k = s[1];
    const Matrix a = random_matrix(n, k, rng);
    std::vector<double> y(n);
    for (double& v : y) v = rng.normal(0.0, 2.0);

    // Reference: materialized transpose, naive products.
    const Matrix at = a.transpose();
    const Matrix ata_ref = naive_multiply(at, a);
    const std::vector<double> atb_ref = at.apply(y);

    const acbm::stats::NormalEquations ne =
        acbm::stats::fused_normal_equations(a, y, 0.0);
    expect_bit_identical(ne.ata, ata_ref);
    ASSERT_EQ(ne.atb.size(), atb_ref.size());
    for (std::size_t i = 0; i < k; ++i) EXPECT_EQ(ne.atb[i], atb_ref[i]);
  }
}

TEST(KernelsTest, FusedNormalEquationsRidgeOnDiagonalOnly) {
  Rng rng(5);
  const Matrix a = random_matrix(20, 6, rng);
  std::vector<double> y(20);
  for (double& v : y) v = rng.normal(0.0, 1.0);
  const auto plain = acbm::stats::fused_normal_equations(a, y, 0.0);
  const auto ridged = acbm::stats::fused_normal_equations(a, y, 0.5);
  for (std::size_t i = 0; i < 6; ++i) {
    for (std::size_t j = 0; j < 6; ++j) {
      if (i == j) {
        EXPECT_EQ(ridged.ata(i, j), plain.ata(i, j) + 0.5);
      } else {
        EXPECT_EQ(ridged.ata(i, j), plain.ata(i, j));
      }
    }
  }
}

TEST(KernelsTest, GemvMatchesNaiveLoopBitForBit) {
  Rng rng(11);
  // in-dims cover every mod-4 remainder of the unrolled dot.
  const std::size_t dims[][2] = {{1, 1}, {4, 3}, {5, 8}, {7, 2}, {16, 16}};
  for (const auto& d : dims) {
    const std::size_t in = d[0];
    const std::size_t out_dim = d[1];
    std::vector<double> weights(out_dim * in);
    std::vector<double> bias(out_dim);
    std::vector<double> x(in);
    for (double& v : weights) v = rng.normal(0.0, 1.0);
    for (double& v : bias) v = rng.normal(0.0, 0.5);
    for (double& v : x) v = rng.normal(0.0, 1.0);

    // Reference: the per-neuron loop the MLP forward pass used to run.
    std::vector<double> want(out_dim);
    for (std::size_t o = 0; o < out_dim; ++o) {
      double z = bias[o];
      for (std::size_t i = 0; i < in; ++i) z += weights[o * in + i] * x[i];
      want[o] = z;
    }

    std::vector<double> got(out_dim);
    acbm::stats::gemv(weights, bias, x, got);
    for (std::size_t o = 0; o < out_dim; ++o) EXPECT_EQ(got[o], want[o]);

    std::vector<double> got_tanh(out_dim);
    acbm::stats::gemv_tanh(weights, bias, x, got_tanh);
    for (std::size_t o = 0; o < out_dim; ++o) {
      EXPECT_EQ(got_tanh[o], std::tanh(want[o]));
    }
  }
}

TEST(KernelsTest, UninitializedMatrixIsFullySizedAndWritable) {
  Matrix m = Matrix::uninitialized(13, 7);
  EXPECT_EQ(m.rows(), 13u);
  EXPECT_EQ(m.cols(), 7u);
  for (std::size_t i = 0; i < m.rows(); ++i) {
    for (std::size_t j = 0; j < m.cols(); ++j) {
      m(i, j) = static_cast<double>(i * 7 + j);
    }
  }
  EXPECT_EQ(m(12, 6), 90.0);
}

}  // namespace
