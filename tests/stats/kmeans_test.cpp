#include "stats/kmeans.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "stats/silhouette.h"

namespace acbm::stats {
namespace {

// Three well-separated 2-D blobs of 30 points each.
Matrix blobs(Rng& rng, std::vector<std::size_t>* truth = nullptr) {
  const double centers[3][2] = {{0.0, 0.0}, {10.0, 0.0}, {5.0, 12.0}};
  Matrix data(90, 2);
  for (std::size_t i = 0; i < 90; ++i) {
    const std::size_t blob = i / 30;
    data(i, 0) = centers[blob][0] + rng.normal(0.0, 0.5);
    data(i, 1) = centers[blob][1] + rng.normal(0.0, 0.5);
    if (truth) truth->push_back(blob);
  }
  return data;
}

TEST(KMeans, RecoversWellSeparatedBlobs) {
  Rng rng(3);
  std::vector<std::size_t> truth;
  const Matrix data = blobs(rng, &truth);
  const KMeansResult result = kmeans(data, {.k = 3}, rng);
  EXPECT_EQ(result.labels.size(), 90u);
  EXPECT_GT(cluster_purity(result.labels, truth), 0.99);
  // Silhouette on a clean 3-blob clustering should be high.
  const auto distance = [&](std::size_t a, std::size_t b) {
    const double dx = data(a, 0) - data(b, 0);
    const double dy = data(a, 1) - data(b, 1);
    return std::sqrt(dx * dx + dy * dy);
  };
  EXPECT_GT(silhouette_score(result.labels, distance), 0.7);
}

TEST(KMeans, InertiaDecreasesWithK) {
  Rng rng(5);
  const Matrix data = blobs(rng);
  double prev = 1e18;
  for (std::size_t k : {1u, 2u, 3u, 5u}) {
    const KMeansResult result = kmeans(data, {.k = k, .restarts = 6}, rng);
    EXPECT_LT(result.inertia, prev + 1e-9) << "k=" << k;
    prev = result.inertia;
  }
}

TEST(KMeans, KEqualsNGivesZeroInertia) {
  Rng rng(7);
  Matrix data(5, 1);
  for (std::size_t i = 0; i < 5; ++i) data(i, 0) = static_cast<double>(i * i);
  const KMeansResult result = kmeans(data, {.k = 5, .restarts = 8}, rng);
  EXPECT_NEAR(result.inertia, 0.0, 1e-9);
}

TEST(KMeans, HandlesDuplicatePointsWithEmptyClusterReseed) {
  // 6 identical points with k = 3: two clusters start empty and must be
  // re-seeded without crashing; inertia ends at zero regardless.
  Rng rng(13);
  Matrix data(6, 2, 4.2);
  const KMeansResult result = kmeans(data, {.k = 3, .restarts = 2}, rng);
  EXPECT_EQ(result.labels.size(), 6u);
  EXPECT_NEAR(result.inertia, 0.0, 1e-12);
}

TEST(KMeans, RejectsBadInput) {
  Rng rng(9);
  EXPECT_THROW((void)kmeans(Matrix(), {.k = 2}, rng), std::invalid_argument);
  Matrix tiny(2, 1, 1.0);
  EXPECT_THROW((void)kmeans(tiny, {.k = 0}, rng), std::invalid_argument);
  EXPECT_THROW((void)kmeans(tiny, {.k = 3}, rng), std::invalid_argument);
}

TEST(KMeans, DeterministicGivenRngState) {
  Rng rng_a(11);
  Rng rng_b(11);
  const Matrix data_a = blobs(rng_a);
  const Matrix data_b = blobs(rng_b);
  const KMeansResult a = kmeans(data_a, {.k = 3}, rng_a);
  const KMeansResult b = kmeans(data_b, {.k = 3}, rng_b);
  EXPECT_EQ(a.labels, b.labels);
  EXPECT_DOUBLE_EQ(a.inertia, b.inertia);
}

TEST(ClusterPurity, HandComputedCases) {
  // Perfect clustering.
  EXPECT_DOUBLE_EQ(cluster_purity(std::vector<std::size_t>{0, 0, 1, 1},
                                  std::vector<std::size_t>{5, 5, 9, 9}),
                   1.0);
  // One point in the wrong cluster: 3/4 pure.
  EXPECT_DOUBLE_EQ(cluster_purity(std::vector<std::size_t>{0, 0, 1, 0},
                                  std::vector<std::size_t>{5, 5, 9, 9}),
                   0.75);
  // Everything in one cluster: purity = share of the majority label.
  EXPECT_DOUBLE_EQ(cluster_purity(std::vector<std::size_t>{0, 0, 0, 0},
                                  std::vector<std::size_t>{5, 5, 9, 9}),
                   0.5);
}

TEST(ClusterPurity, RejectsBadInput) {
  EXPECT_THROW((void)cluster_purity(std::vector<std::size_t>{},
                                    std::vector<std::size_t>{}),
               std::invalid_argument);
  EXPECT_THROW((void)cluster_purity(std::vector<std::size_t>{0},
                                    std::vector<std::size_t>{0, 1}),
               std::invalid_argument);
}

}  // namespace
}  // namespace acbm::stats
