#include "stats/silhouette.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

namespace acbm::stats {
namespace {

// 1-D points with a distance function for testing.
struct PointSet {
  std::vector<double> pts;
  [[nodiscard]] DistanceFn distance() const {
    return [this](std::size_t i, std::size_t j) {
      return std::abs(pts[i] - pts[j]);
    };
  }
};

TEST(Silhouette, WellSeparatedClustersScoreNearOne) {
  PointSet ps{{0.0, 0.1, 0.2, 10.0, 10.1, 10.2}};
  std::vector<std::size_t> labels{0, 0, 0, 1, 1, 1};
  const double s = silhouette_score(labels, ps.distance());
  EXPECT_GT(s, 0.9);
}

TEST(Silhouette, MislabeledPointGetsNegativeValue) {
  // The last point sits inside cluster 0's territory but is labeled 1.
  PointSet ps{{0.0, 0.1, 0.2, 10.0, 10.1, 0.05}};
  std::vector<std::size_t> labels{0, 0, 0, 1, 1, 1};
  const auto vals = silhouette_values(labels, ps.distance());
  EXPECT_LT(vals[5], 0.0);
}

TEST(Silhouette, SingletonClusterGetsZero) {
  PointSet ps{{0.0, 0.1, 5.0}};
  std::vector<std::size_t> labels{0, 0, 1};
  const auto vals = silhouette_values(labels, ps.distance());
  EXPECT_DOUBLE_EQ(vals[2], 0.0);
}

TEST(Silhouette, SingleClusterScoresZero) {
  PointSet ps{{0.0, 1.0, 2.0}};
  std::vector<std::size_t> labels{0, 0, 0};
  EXPECT_DOUBLE_EQ(silhouette_score(labels, ps.distance()), 0.0);
}

TEST(Silhouette, ValuesAreBounded) {
  PointSet ps{{0.0, 0.5, 1.0, 4.0, 4.5, 5.0, 9.0, 9.5}};
  std::vector<std::size_t> labels{0, 0, 1, 1, 2, 2, 0, 1};
  for (double v : silhouette_values(labels, ps.distance())) {
    EXPECT_GE(v, -1.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(Silhouette, EmptyLabelsThrow) {
  PointSet ps{{}};
  std::vector<std::size_t> labels;
  EXPECT_THROW(silhouette_values(labels, ps.distance()), std::invalid_argument);
}

TEST(Silhouette, TighterClusteringScoresHigher) {
  PointSet tight{{0.0, 0.1, 10.0, 10.1}};
  PointSet loose{{0.0, 3.0, 10.0, 13.0}};
  std::vector<std::size_t> labels{0, 0, 1, 1};
  EXPECT_GT(silhouette_score(labels, tight.distance()),
            silhouette_score(labels, loose.distance()));
}

}  // namespace
}  // namespace acbm::stats
