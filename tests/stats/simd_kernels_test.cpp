// Scalar-vs-SIMD agreement sweep (ctest label `simd`). With fast_math()
// off, every vectorized kernel must be bit-identical (0 ULP) to the scalar
// reference on identical inputs — swept across shapes that cover every
// vector-width remainder. With ACBM_FAST_MATH opted in, the reordering
// (FMA / horizontal-reduction) variants must stay within a small tolerance
// of the scalar reduction; this file is where that bound is enforced.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/observe.h"
#include "stats/kernels.h"
#include "stats/rng.h"

namespace {

using acbm::stats::Rng;
using acbm::stats::SimdIsa;

// Every test runs through this fixture so an ISA override or fast-math
// toggle can never leak into later tests (or other suites in this binary).
class SimdKernelsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_isa_ = acbm::stats::active_isa();
    saved_fast_math_ = acbm::stats::fast_math();
    acbm::stats::set_fast_math(false);
  }
  void TearDown() override {
    acbm::stats::set_active_isa(saved_isa_);
    acbm::stats::set_fast_math(saved_fast_math_);
  }

 private:
  SimdIsa saved_isa_ = SimdIsa::kScalar;
  bool saved_fast_math_ = false;
};

std::vector<double> randn(std::size_t n, Rng& rng, double sd = 1.0) {
  std::vector<double> v(n);
  for (double& x : v) x = rng.normal(0.0, sd);
  return v;
}

std::vector<float> randn_f32(std::size_t n, Rng& rng, double sd = 1.0) {
  std::vector<float> v(n);
  for (float& x : v) x = static_cast<float>(rng.normal(0.0, sd));
  return v;
}

/// |got - want| <= tol * max(1, |want|) — absolute near zero, relative
/// elsewhere, so one bound covers both regimes.
void expect_close(double got, double want, double tol) {
  EXPECT_LE(std::abs(got - want), tol * std::max(1.0, std::abs(want)))
      << "got " << got << " want " << want;
}

// Output/input dims covering every remainder of the 4-wide f64 and 8-wide
// f32 output-lane vectorization, plus a couple of larger shapes.
constexpr std::size_t kOutDims[] = {1, 2, 3, 4, 5, 7, 8, 9, 13, 16, 17, 33};
constexpr std::size_t kInDims[] = {1, 2, 3, 5, 8, 13, 64};

TEST_F(SimdKernelsTest, ActiveIsaClampsToDetected) {
  const SimdIsa detected = acbm::stats::detected_isa();
  for (SimdIsa want : {SimdIsa::kScalar, SimdIsa::kAvx2, SimdIsa::kNeon}) {
    acbm::stats::set_active_isa(want);
    const SimdIsa got = acbm::stats::active_isa();
    if (want == SimdIsa::kScalar || want == detected) {
      EXPECT_EQ(got, want);
    } else {
      EXPECT_EQ(got, SimdIsa::kScalar)
          << "unsupported ISA request must clamp to scalar";
    }
  }
}

TEST_F(SimdKernelsTest, IsaNamesAreStable) {
  EXPECT_STREQ(acbm::stats::isa_name(SimdIsa::kScalar), "scalar");
  EXPECT_STREQ(acbm::stats::isa_name(SimdIsa::kAvx2), "avx2");
  EXPECT_STREQ(acbm::stats::isa_name(SimdIsa::kNeon), "neon");
}

TEST_F(SimdKernelsTest, GemvBitIdenticalAcrossIsa) {
  const SimdIsa simd = acbm::stats::detected_isa();
  if (simd == SimdIsa::kScalar) GTEST_SKIP() << "no SIMD ISA on this build";
  Rng rng(101);
  for (std::size_t out_dim : kOutDims) {
    for (std::size_t in : kInDims) {
      const auto weights = randn(out_dim * in, rng);
      const auto bias = randn(out_dim, rng, 0.5);
      const auto x = randn(in, rng);

      std::vector<double> scalar(out_dim);
      std::vector<double> vec(out_dim);
      acbm::stats::set_active_isa(SimdIsa::kScalar);
      acbm::stats::gemv(weights, bias, x, scalar);
      acbm::stats::set_active_isa(simd);
      acbm::stats::gemv(weights, bias, x, vec);
      for (std::size_t o = 0; o < out_dim; ++o) {
        EXPECT_EQ(vec[o], scalar[o]) << out_dim << "x" << in << " lane " << o;
      }

      acbm::stats::set_active_isa(SimdIsa::kScalar);
      acbm::stats::gemv_tanh(weights, bias, x, scalar);
      acbm::stats::set_active_isa(simd);
      acbm::stats::gemv_tanh(weights, bias, x, vec);
      for (std::size_t o = 0; o < out_dim; ++o) {
        EXPECT_EQ(vec[o], scalar[o]) << out_dim << "x" << in << " lane " << o;
      }
    }
  }
}

TEST_F(SimdKernelsTest, GemmRowRangeBitIdenticalAcrossIsa) {
  const SimdIsa simd = acbm::stats::detected_isa();
  if (simd == SimdIsa::kScalar) GTEST_SKIP() << "no SIMD ISA on this build";
  Rng rng(202);
  // m x k x n shapes straddling the column-block width and its remainders.
  const std::size_t shapes[][3] = {{1, 1, 1},    {3, 5, 4},    {17, 13, 9},
                                   {32, 32, 32}, {40, 33, 65}, {7, 64, 31}};
  for (const auto& s : shapes) {
    const std::size_t m = s[0];
    const std::size_t k = s[1];
    const std::size_t n = s[2];
    const auto a = randn(m * k, rng);
    const auto b = randn(k * n, rng);
    std::vector<double> scalar(m * n);
    std::vector<double> vec(m * n);
    acbm::stats::set_active_isa(SimdIsa::kScalar);
    acbm::stats::gemm_row_range(a.data(), b.data(), scalar.data(), 0, m, k, n);
    acbm::stats::set_active_isa(simd);
    acbm::stats::gemm_row_range(a.data(), b.data(), vec.data(), 0, m, k, n);
    for (std::size_t i = 0; i < m * n; ++i) {
      EXPECT_EQ(vec[i], scalar[i])
          << m << "x" << k << "x" << n << " at " << i;
    }
  }
}

TEST_F(SimdKernelsTest, FneRowUpdateBitIdenticalAcrossIsa) {
  const SimdIsa simd = acbm::stats::detected_isa();
  if (simd == SimdIsa::kScalar) GTEST_SKIP() << "no SIMD ISA on this build";
  Rng rng(303);
  for (std::size_t k : {std::size_t{1}, std::size_t{2}, std::size_t{3},
                        std::size_t{4}, std::size_t{5}, std::size_t{7},
                        std::size_t{8}, std::size_t{12}, std::size_t{31}}) {
    const std::size_t n_rows = 16;
    const auto rows = randn(n_rows * k, rng);
    const auto y = randn(n_rows, rng, 2.0);

    std::vector<double> ata_scalar(k * k, 0.0), atb_scalar(k, 0.0);
    std::vector<double> ata_vec(k * k, 0.0), atb_vec(k, 0.0);
    for (std::size_t r = 0; r < n_rows; ++r) {
      acbm::stats::set_active_isa(SimdIsa::kScalar);
      acbm::stats::fne_row_update(ata_scalar.data(), atb_scalar.data(),
                                  rows.data() + r * k, y[r], k);
      acbm::stats::set_active_isa(simd);
      acbm::stats::fne_row_update(ata_vec.data(), atb_vec.data(),
                                  rows.data() + r * k, y[r], k);
    }
    for (std::size_t i = 0; i < k * k; ++i) {
      EXPECT_EQ(ata_vec[i], ata_scalar[i]) << "k=" << k << " ata[" << i << "]";
    }
    for (std::size_t i = 0; i < k; ++i) {
      EXPECT_EQ(atb_vec[i], atb_scalar[i]) << "k=" << k << " atb[" << i << "]";
    }
  }
}

TEST_F(SimdKernelsTest, GemvF32BitIdenticalAcrossIsa) {
  const SimdIsa simd = acbm::stats::detected_isa();
  if (simd == SimdIsa::kScalar) GTEST_SKIP() << "no SIMD ISA on this build";
  Rng rng(404);
  for (std::size_t out_dim : kOutDims) {
    for (std::size_t in : kInDims) {
      // Transposed (input-major) layout: wt[i * out_dim + o].
      const auto weights_t = randn_f32(in * out_dim, rng);
      const auto bias = randn_f32(out_dim, rng, 0.5);
      const auto x = randn_f32(in, rng);

      std::vector<float> scalar(out_dim);
      std::vector<float> vec(out_dim);
      acbm::stats::set_active_isa(SimdIsa::kScalar);
      acbm::stats::gemv_t_f32(weights_t, bias, x, scalar);
      acbm::stats::set_active_isa(simd);
      acbm::stats::gemv_t_f32(weights_t, bias, x, vec);
      for (std::size_t o = 0; o < out_dim; ++o) {
        EXPECT_EQ(vec[o], scalar[o]) << out_dim << "x" << in << " lane " << o;
      }

      acbm::stats::set_active_isa(SimdIsa::kScalar);
      acbm::stats::gemv_t_tanh_f32(weights_t, bias, x, scalar);
      acbm::stats::set_active_isa(simd);
      acbm::stats::gemv_t_tanh_f32(weights_t, bias, x, vec);
      for (std::size_t o = 0; o < out_dim; ++o) {
        EXPECT_EQ(vec[o], scalar[o]) << out_dim << "x" << in << " lane " << o;
      }
    }
  }
}

// ACBM_FAST_MATH tolerance, one bound per vectorized reduction. FMA and
// horizontal reductions reorder an n-term accumulation; for standard-normal
// data the drift is O(eps * sqrt(n) * |sum|), so these bounds are loose by
// orders of magnitude while still catching a wrong-answer kernel.
constexpr double kFastMathTolF64 = 1e-10;
constexpr double kFastMathTolF32 = 1e-3;

TEST_F(SimdKernelsTest, FastMathGemvWithinTolerance) {
  const SimdIsa simd = acbm::stats::detected_isa();
  if (simd == SimdIsa::kScalar) GTEST_SKIP() << "no SIMD ISA on this build";
  Rng rng(505);
  for (std::size_t out_dim : {std::size_t{5}, std::size_t{16}}) {
    for (std::size_t in : {std::size_t{13}, std::size_t{64}}) {
      const auto weights = randn(out_dim * in, rng);
      const auto bias = randn(out_dim, rng, 0.5);
      const auto x = randn(in, rng);

      std::vector<double> ref(out_dim);
      std::vector<double> fast(out_dim);
      acbm::stats::set_active_isa(SimdIsa::kScalar);
      acbm::stats::set_fast_math(false);
      acbm::stats::gemv(weights, bias, x, ref);
      acbm::stats::set_active_isa(simd);
      acbm::stats::set_fast_math(true);
      acbm::stats::gemv(weights, bias, x, fast);
      for (std::size_t o = 0; o < out_dim; ++o) {
        expect_close(fast[o], ref[o], kFastMathTolF64);
      }

      acbm::stats::set_active_isa(SimdIsa::kScalar);
      acbm::stats::set_fast_math(false);
      acbm::stats::gemv_tanh(weights, bias, x, ref);
      acbm::stats::set_active_isa(simd);
      acbm::stats::set_fast_math(true);
      acbm::stats::gemv_tanh(weights, bias, x, fast);
      for (std::size_t o = 0; o < out_dim; ++o) {
        expect_close(fast[o], ref[o], kFastMathTolF64);
      }
    }
  }
}

TEST_F(SimdKernelsTest, FastMathGemmAndFneWithinTolerance) {
  const SimdIsa simd = acbm::stats::detected_isa();
  if (simd == SimdIsa::kScalar) GTEST_SKIP() << "no SIMD ISA on this build";
  Rng rng(606);
  const std::size_t m = 23, k = 17, n = 29;
  const auto a = randn(m * k, rng);
  const auto b = randn(k * n, rng);
  std::vector<double> ref(m * n);
  std::vector<double> fast(m * n);
  acbm::stats::set_active_isa(SimdIsa::kScalar);
  acbm::stats::set_fast_math(false);
  acbm::stats::gemm_row_range(a.data(), b.data(), ref.data(), 0, m, k, n);
  acbm::stats::set_active_isa(simd);
  acbm::stats::set_fast_math(true);
  acbm::stats::gemm_row_range(a.data(), b.data(), fast.data(), 0, m, k, n);
  for (std::size_t i = 0; i < m * n; ++i) {
    expect_close(fast[i], ref[i], kFastMathTolF64);
  }

  const std::size_t fk = 13;
  const auto row = randn(fk, rng);
  std::vector<double> ata_ref(fk * fk, 0.0), atb_ref(fk, 0.0);
  std::vector<double> ata_fast(fk * fk, 0.0), atb_fast(fk, 0.0);
  acbm::stats::set_active_isa(SimdIsa::kScalar);
  acbm::stats::set_fast_math(false);
  acbm::stats::fne_row_update(ata_ref.data(), atb_ref.data(), row.data(), 1.5,
                              fk);
  acbm::stats::set_active_isa(simd);
  acbm::stats::set_fast_math(true);
  acbm::stats::fne_row_update(ata_fast.data(), atb_fast.data(), row.data(),
                              1.5, fk);
  for (std::size_t i = 0; i < fk * fk; ++i) {
    expect_close(ata_fast[i], ata_ref[i], kFastMathTolF64);
  }
  for (std::size_t i = 0; i < fk; ++i) {
    expect_close(atb_fast[i], atb_ref[i], kFastMathTolF64);
  }
}

TEST_F(SimdKernelsTest, FastMathF32GemvWithinTolerance) {
  const SimdIsa simd = acbm::stats::detected_isa();
  if (simd == SimdIsa::kScalar) GTEST_SKIP() << "no SIMD ISA on this build";
  Rng rng(707);
  const std::size_t out_dim = 11, in = 64;
  const auto weights_t = randn_f32(in * out_dim, rng);
  const auto bias = randn_f32(out_dim, rng, 0.5);
  const auto x = randn_f32(in, rng);

  std::vector<float> ref(out_dim);
  std::vector<float> fast(out_dim);
  acbm::stats::set_active_isa(SimdIsa::kScalar);
  acbm::stats::set_fast_math(false);
  acbm::stats::gemv_t_f32(weights_t, bias, x, ref);
  acbm::stats::set_active_isa(simd);
  acbm::stats::set_fast_math(true);
  acbm::stats::gemv_t_f32(weights_t, bias, x, fast);
  for (std::size_t o = 0; o < out_dim; ++o) {
    expect_close(fast[o], ref[o], kFastMathTolF32);
  }
}

TEST_F(SimdKernelsTest, DispatchCountersBumpPerCall) {
  namespace observe = acbm::core::observe;
  auto& metrics = observe::Metrics::instance();
  const bool was_enabled = observe::enabled();
  observe::set_enabled(true);

  // Large enough to clear the minimum-row SIMD dispatch thresholds.
  std::vector<double> weights(16 * 16, 1.0), bias(16, 0.0), x(16, 1.0),
      out(16);

  const std::uint64_t scalar_before =
      metrics.counter_value("kernels.dispatch.scalar");
  acbm::stats::set_active_isa(SimdIsa::kScalar);
  acbm::stats::gemv(weights, bias, x, out);
  EXPECT_GE(metrics.counter_value("kernels.dispatch.scalar"),
            scalar_before + 1);

  const SimdIsa simd = acbm::stats::detected_isa();
  if (simd != SimdIsa::kScalar) {
    const std::string name =
        std::string("kernels.dispatch.") + acbm::stats::isa_name(simd);
    const std::uint64_t simd_before = metrics.counter_value(name);
    acbm::stats::set_active_isa(simd);
    acbm::stats::gemv(weights, bias, x, out);
    EXPECT_GE(metrics.counter_value(name), simd_before + 1);
  }

  observe::set_enabled(was_enabled);
}

}  // namespace
