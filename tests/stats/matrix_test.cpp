#include "stats/matrix.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "stats/rng.h"

namespace acbm::stats {
namespace {

TEST(Matrix, DefaultConstructedIsEmpty) {
  Matrix m;
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.cols(), 0u);
  EXPECT_TRUE(m.empty());
}

TEST(Matrix, FillConstructor) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(m(r, c), 1.5);
  }
}

TEST(Matrix, InitializerList) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
}

TEST(Matrix, RaggedInitializerListThrows) {
  EXPECT_THROW((Matrix{{1.0, 2.0}, {3.0}}), std::invalid_argument);
}

TEST(Matrix, AtBoundsChecks) {
  Matrix m(2, 2);
  EXPECT_THROW((void)m.at(2, 0), std::out_of_range);
  EXPECT_THROW((void)m.at(0, 2), std::out_of_range);
  EXPECT_NO_THROW((void)m.at(1, 1));
}

TEST(Matrix, Identity) {
  const Matrix id = Matrix::identity(3);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_DOUBLE_EQ(id(r, c), r == c ? 1.0 : 0.0);
    }
  }
}

TEST(Matrix, TransposeRoundTrip) {
  Matrix m{{1, 2, 3}, {4, 5, 6}};
  const Matrix t = m.transpose();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_EQ(t.transpose(), m);
}

TEST(Matrix, Product) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{5, 6}, {7, 8}};
  const Matrix c = a * b;
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(Matrix, ProductDimensionMismatchThrows) {
  Matrix a(2, 3);
  Matrix b(2, 3);
  EXPECT_THROW(a * b, std::invalid_argument);
}

TEST(Matrix, ProductWithIdentityIsNoop) {
  Matrix a{{1, 2}, {3, 4}};
  EXPECT_EQ(a * Matrix::identity(2), a);
  EXPECT_EQ(Matrix::identity(2) * a, a);
}

TEST(Matrix, AddSubtractScale) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{4, 3}, {2, 1}};
  const Matrix s = a + b;
  EXPECT_DOUBLE_EQ(s(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(s(1, 1), 5.0);
  const Matrix d = a - b;
  EXPECT_DOUBLE_EQ(d(0, 0), -3.0);
  const Matrix sc = a * 2.0;
  EXPECT_DOUBLE_EQ(sc(1, 1), 8.0);
}

TEST(Matrix, ApplyVector) {
  Matrix a{{1, 2}, {3, 4}};
  const std::vector<double> y = a.apply(std::vector<double>{1.0, 1.0});
  ASSERT_EQ(y.size(), 2u);
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], 7.0);
}

TEST(Matrix, FrobeniusNorm) {
  Matrix a{{3, 0}, {0, 4}};
  EXPECT_DOUBLE_EQ(a.frobenius_norm(), 5.0);
}

TEST(Solvers, CholeskySolvesSpdSystem) {
  Matrix a{{4, 1}, {1, 3}};
  const std::vector<double> b{1.0, 2.0};
  const std::vector<double> x = solve_cholesky(a, b);
  // Verify A x == b.
  EXPECT_NEAR(4 * x[0] + 1 * x[1], 1.0, 1e-12);
  EXPECT_NEAR(1 * x[0] + 3 * x[1], 2.0, 1e-12);
}

TEST(Solvers, CholeskyRejectsNonSpd) {
  Matrix a{{0, 1}, {1, 0}};
  EXPECT_THROW(solve_cholesky(a, std::vector<double>{1.0, 1.0}),
               std::domain_error);
}

TEST(Solvers, LuSolvesGeneralSystem) {
  Matrix a{{0, 2, 1}, {1, -2, -3}, {-1, 1, 2}};
  const std::vector<double> b{-8.0, 0.0, 3.0};
  const std::vector<double> x = solve_lu(a, b);
  for (std::size_t i = 0; i < 3; ++i) {
    double acc = 0.0;
    for (std::size_t j = 0; j < 3; ++j) acc += a(i, j) * x[j];
    EXPECT_NEAR(acc, b[i], 1e-10);
  }
}

TEST(Solvers, LuRejectsSingular) {
  Matrix a{{1, 2}, {2, 4}};
  EXPECT_THROW(solve_lu(a, std::vector<double>{1.0, 2.0}), std::domain_error);
}

TEST(Solvers, LeastSquaresRecoversExactSolution) {
  // Overdetermined but consistent: y = 2 x0 - x1.
  Matrix a{{1, 0}, {0, 1}, {1, 1}, {2, 1}};
  const std::vector<double> b{2.0, -1.0, 1.0, 3.0};
  const std::vector<double> x = solve_least_squares(a, b);
  EXPECT_NEAR(x[0], 2.0, 1e-6);
  EXPECT_NEAR(x[1], -1.0, 1e-6);
}

TEST(Solvers, LeastSquaresRejectsUnderdetermined) {
  Matrix a(1, 2);
  EXPECT_THROW(solve_least_squares(a, std::vector<double>{1.0}),
               std::invalid_argument);
}

// Property: for random SPD systems, Cholesky and LU agree.
class SolverAgreement : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SolverAgreement, CholeskyMatchesLuOnSpd) {
  Rng rng(GetParam());
  const std::size_t n = 1 + static_cast<std::size_t>(rng.uniform_int(1, 6));
  Matrix g(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) g(r, c) = rng.normal();
  }
  Matrix a = g.transpose() * g;
  for (std::size_t i = 0; i < n; ++i) a(i, i) += 1.0;  // Ensure SPD.
  std::vector<double> b(n);
  for (double& v : b) v = rng.normal();

  const std::vector<double> x1 = solve_cholesky(a, b);
  const std::vector<double> x2 = solve_lu(a, b);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x1[i], x2[i], 1e-8);
}

INSTANTIATE_TEST_SUITE_P(RandomSpdSystems, SolverAgreement,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

}  // namespace
}  // namespace acbm::stats
