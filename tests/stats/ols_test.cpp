#include "stats/ols.h"

#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>
#include <vector>

#include "core/robust.h"
#include "stats/rng.h"

namespace acbm::stats {
namespace {

TEST(LinearRegression, RecoversExactLinearRelation) {
  // y = 1 + 2 x0 - 3 x1, noiseless.
  Matrix x{{0, 0}, {1, 0}, {0, 1}, {1, 1}, {2, 1}, {1, 2}};
  std::vector<double> y;
  for (std::size_t i = 0; i < x.rows(); ++i) {
    y.push_back(1.0 + 2.0 * x(i, 0) - 3.0 * x(i, 1));
  }
  LinearRegression reg;
  reg.fit(x, y);
  EXPECT_NEAR(reg.intercept(), 1.0, 1e-6);
  ASSERT_EQ(reg.coefficients().size(), 2u);
  EXPECT_NEAR(reg.coefficients()[0], 2.0, 1e-6);
  EXPECT_NEAR(reg.coefficients()[1], -3.0, 1e-6);
  EXPECT_NEAR(reg.r_squared(), 1.0, 1e-9);
  EXPECT_NEAR(reg.residual_sd(), 0.0, 1e-6);
}

TEST(LinearRegression, NoInterceptOption) {
  Matrix x{{1}, {2}, {3}, {4}};
  std::vector<double> y{2.0, 4.0, 6.0, 8.0};
  LinearRegression reg({.fit_intercept = false, .ridge = 1e-10});
  reg.fit(x, y);
  EXPECT_DOUBLE_EQ(reg.intercept(), 0.0);
  EXPECT_NEAR(reg.coefficients()[0], 2.0, 1e-8);
}

TEST(LinearRegression, PredictSingleAndBatchAgree) {
  Matrix x{{1, 2}, {3, 4}, {5, 6}, {7, 9}};
  std::vector<double> y{1.0, 2.0, 2.5, 4.0};
  LinearRegression reg;
  reg.fit(x, y);
  const std::vector<double> batch = reg.predict(x);
  for (std::size_t i = 0; i < x.rows(); ++i) {
    EXPECT_DOUBLE_EQ(batch[i], reg.predict(x.row(i)));
  }
}

TEST(LinearRegression, NoisyFitIsCloseToTruth) {
  Rng rng(77);
  const std::size_t n = 500;
  Matrix x(n, 3);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < 3; ++j) x(i, j) = rng.normal();
    y[i] = 0.5 + 1.5 * x(i, 0) - 2.0 * x(i, 1) + 0.0 * x(i, 2) +
           rng.normal(0.0, 0.1);
  }
  LinearRegression reg;
  reg.fit(x, y);
  EXPECT_NEAR(reg.intercept(), 0.5, 0.05);
  EXPECT_NEAR(reg.coefficients()[0], 1.5, 0.05);
  EXPECT_NEAR(reg.coefficients()[1], -2.0, 0.05);
  EXPECT_NEAR(reg.coefficients()[2], 0.0, 0.05);
  EXPECT_GT(reg.r_squared(), 0.99);
}

TEST(LinearRegression, CollinearFeaturesStillSolvable) {
  // x1 == 2 * x0 exactly; the ridge stabilizer must keep this solvable.
  Matrix x{{1, 2}, {2, 4}, {3, 6}, {4, 8}};
  std::vector<double> y{2.0, 4.0, 6.0, 8.0};
  LinearRegression reg({.fit_intercept = true, .ridge = 1e-6});
  EXPECT_NO_THROW(reg.fit(x, y));
  // Predictions should still be accurate even if coefficients are not unique.
  for (std::size_t i = 0; i < x.rows(); ++i) {
    EXPECT_NEAR(reg.predict(x.row(i)), y[i], 1e-3);
  }
}

TEST(LinearRegression, SingularSystemThrowsTypedFailure) {
  // With the ridge disabled, an all-zero column makes the normal equations
  // exactly singular; the failure must be typed, not NaN coefficients.
  Matrix x{{1.0, 0.0}, {2.0, 0.0}, {3.0, 0.0}, {4.0, 0.0}};
  std::vector<double> y{2.0, 4.0, 6.0, 8.0};
  LinearRegression reg({.fit_intercept = true, .ridge = 0.0});
  try {
    reg.fit(x, y);
    FAIL() << "singular fit must throw";
  } catch (const core::FitFailure& e) {
    EXPECT_EQ(e.code(), core::FitError::kSingularSystem);
  }
  // FitFailure derives from invalid_argument, so legacy call sites that
  // catch the base type still handle it.
  EXPECT_THROW(reg.fit(x, y), std::invalid_argument);
}

TEST(LinearRegression, NonfiniteInputThrowsTypedFailure) {
  Matrix x{{1.0}, {2.0}, {3.0}, {4.0}};
  std::vector<double> y{2.0, std::numeric_limits<double>::quiet_NaN(), 6.0,
                        8.0};
  LinearRegression reg;
  try {
    reg.fit(x, y);
    FAIL() << "non-finite target must throw";
  } catch (const core::FitFailure& e) {
    EXPECT_EQ(e.code(), core::FitError::kNonfiniteInput);
  }
}

TEST(LinearRegression, ErrorsOnBadShapes) {
  LinearRegression reg;
  Matrix x{{1.0}, {2.0}};
  EXPECT_THROW(reg.fit(x, std::vector<double>{1.0}), std::invalid_argument);
  EXPECT_THROW(reg.fit(Matrix(1, 3), std::vector<double>{1.0}),
               std::invalid_argument);
  EXPECT_THROW((void)reg.predict(std::vector<double>{1.0}), std::logic_error);
  reg.fit(x, std::vector<double>{1.0, 2.0});
  EXPECT_THROW((void)reg.predict(std::vector<double>{1.0, 2.0}),
               std::invalid_argument);
}

TEST(DesignMatrix, PacksRows) {
  const Matrix m = design_matrix({{1.0, 2.0}, {3.0, 4.0}});
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
}

TEST(DesignMatrix, RejectsRaggedRows) {
  EXPECT_THROW(design_matrix({{1.0, 2.0}, {3.0}}), std::invalid_argument);
}

TEST(DesignMatrix, EmptyYieldsEmptyMatrix) {
  EXPECT_TRUE(design_matrix({}).empty());
}

// Property: in-sample R^2 never decreases when adding a feature.
class OlsMonotonicity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OlsMonotonicity, R2NonDecreasingInFeatures) {
  Rng rng(GetParam());
  const std::size_t n = 60;
  Matrix x1(n, 1);
  Matrix x2(n, 2);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double a = rng.normal();
    const double b = rng.normal();
    x1(i, 0) = a;
    x2(i, 0) = a;
    x2(i, 1) = b;
    y[i] = a - 0.5 * b + rng.normal(0.0, 0.5);
  }
  LinearRegression r1;
  LinearRegression r2;
  r1.fit(x1, y);
  r2.fit(x2, y);
  EXPECT_GE(r2.r_squared() + 1e-9, r1.r_squared());
}

INSTANTIATE_TEST_SUITE_P(Seeds, OlsMonotonicity,
                         ::testing::Values(11u, 22u, 33u, 44u));

}  // namespace
}  // namespace acbm::stats
