#include "stats/distribution.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "stats/rng.h"

namespace acbm::stats {
namespace {

TEST(EmpiricalCdf, BasicSteps) {
  EmpiricalCdf cdf(std::vector<double>{1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(cdf.cdf(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.cdf(1.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf.cdf(2.5), 0.5);
  EXPECT_DOUBLE_EQ(cdf.cdf(4.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.cdf(99.0), 1.0);
}

TEST(EmpiricalCdf, EmptySampleThrows) {
  EXPECT_THROW(EmpiricalCdf(std::vector<double>{}), std::invalid_argument);
}

TEST(EmpiricalCdf, QuantileInvertsCdf) {
  EmpiricalCdf cdf(std::vector<double>{10.0, 20.0, 30.0, 40.0});
  EXPECT_DOUBLE_EQ(cdf.quantile(0.25), 10.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 20.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 40.0);
  EXPECT_THROW((void)cdf.quantile(0.0), std::invalid_argument);
  EXPECT_THROW((void)cdf.quantile(1.5), std::invalid_argument);
}

TEST(EmpiricalCdf, CdfIsMonotone) {
  Rng rng(5);
  std::vector<double> sample(200);
  for (double& v : sample) v = rng.normal();
  EmpiricalCdf cdf(sample);
  double prev = 0.0;
  for (double x = -4.0; x <= 4.0; x += 0.1) {
    const double cur = cdf.cdf(x);
    EXPECT_GE(cur, prev);
    prev = cur;
  }
}

TEST(Histogram, CountsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);    // bin 0
  h.add(9.9);    // bin 4
  h.add(-5.0);   // clamps to bin 0
  h.add(15.0);   // clamps to bin 4
  h.add(5.0);    // bin 2
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(2), 1u);
  EXPECT_EQ(h.count(4), 2u);
  EXPECT_EQ(h.total(), 5u);
}

TEST(Histogram, InvalidConstructionThrows) {
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(2.0, 1.0, 4), std::invalid_argument);
}

TEST(Histogram, FrequenciesSumToOne) {
  Histogram h(0.0, 1.0, 10);
  Rng rng(9);
  for (int i = 0; i < 500; ++i) h.add(rng.uniform());
  const auto f = h.frequencies();
  double sum = 0.0;
  for (double v : f) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(Histogram, EmptyFrequenciesAreZero) {
  Histogram h(0.0, 1.0, 4);
  for (double v : h.frequencies()) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Histogram, BinCenter) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 1.0);
  EXPECT_DOUBLE_EQ(h.bin_center(4), 9.0);
  EXPECT_THROW((void)h.bin_center(5), std::out_of_range);
}

TEST(Distances, L1DistanceKnownValue) {
  std::vector<double> p{0.5, 0.5};
  std::vector<double> q{1.0, 0.0};
  EXPECT_DOUBLE_EQ(l1_distance(p, q), 1.0);
  EXPECT_DOUBLE_EQ(l1_distance(p, p), 0.0);
  EXPECT_THROW((void)l1_distance(p, std::vector<double>{1.0}), std::invalid_argument);
}

TEST(Entropy, UniformIsMaximal) {
  const double h_uniform = entropy(std::vector<double>{0.25, 0.25, 0.25, 0.25});
  EXPECT_NEAR(h_uniform, std::log(4.0), 1e-12);
  const double h_skewed = entropy(std::vector<double>{0.97, 0.01, 0.01, 0.01});
  EXPECT_LT(h_skewed, h_uniform);
}

TEST(Entropy, DegenerateIsZero) {
  EXPECT_DOUBLE_EQ(entropy(std::vector<double>{1.0, 0.0, 0.0}), 0.0);
  EXPECT_DOUBLE_EQ(entropy(std::vector<double>{}), 0.0);
}

TEST(Entropy, UnnormalizedInputMatchesNormalized) {
  const double a = entropy(std::vector<double>{2.0, 6.0, 2.0});
  const double b = entropy(std::vector<double>{0.2, 0.6, 0.2});
  EXPECT_NEAR(a, b, 1e-12);
}

TEST(Entropy, NegativeFrequencyThrows) {
  EXPECT_THROW((void)entropy(std::vector<double>{0.5, -0.5}), std::invalid_argument);
}

}  // namespace
}  // namespace acbm::stats
