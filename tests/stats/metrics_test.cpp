#include "stats/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "stats/rng.h"

namespace acbm::stats {
namespace {

TEST(Metrics, RmsePerfectPredictionIsZero) {
  std::vector<double> t{1, 2, 3};
  EXPECT_DOUBLE_EQ(rmse(t, t), 0.0);
}

TEST(Metrics, RmseKnownValue) {
  std::vector<double> t{0.0, 0.0};
  std::vector<double> p{3.0, 4.0};
  EXPECT_DOUBLE_EQ(rmse(t, p), std::sqrt(12.5));
}

TEST(Metrics, MaeKnownValue) {
  std::vector<double> t{0.0, 0.0};
  std::vector<double> p{3.0, -4.0};
  EXPECT_DOUBLE_EQ(mae(t, p), 3.5);
}

TEST(Metrics, RmseDominatesMae) {
  // RMSE >= MAE always (Jensen).
  Rng rng(3);
  std::vector<double> t(50);
  std::vector<double> p(50);
  for (std::size_t i = 0; i < t.size(); ++i) {
    t[i] = rng.normal();
    p[i] = rng.normal();
  }
  EXPECT_GE(rmse(t, p), mae(t, p));
}

TEST(Metrics, MapeSkipsZeroTruth) {
  std::vector<double> t{0.0, 2.0};
  std::vector<double> p{5.0, 3.0};
  EXPECT_DOUBLE_EQ(mape(t, p), 0.5);
}

TEST(Metrics, MapeAllZeroTruthIsZero) {
  std::vector<double> t{0.0, 0.0};
  std::vector<double> p{1.0, 1.0};
  EXPECT_DOUBLE_EQ(mape(t, p), 0.0);
}

TEST(Metrics, RSquaredPerfectIsOne) {
  std::vector<double> t{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(r_squared(t, t), 1.0);
}

TEST(Metrics, RSquaredMeanPredictorIsZero) {
  std::vector<double> t{1, 2, 3, 4};
  std::vector<double> p(4, 2.5);
  EXPECT_NEAR(r_squared(t, p), 0.0, 1e-12);
}

TEST(Metrics, RSquaredZeroVarianceTruth) {
  std::vector<double> t(4, 1.0);
  std::vector<double> p{0.0, 1.0, 2.0, 1.0};
  EXPECT_DOUBLE_EQ(r_squared(t, p), 0.0);
}

TEST(Metrics, SmapeBounds) {
  std::vector<double> t{1.0, -1.0, 2.0};
  std::vector<double> p{-1.0, 1.0, -2.0};
  // Opposite-sign predictions give the maximum SMAPE of 2.
  EXPECT_DOUBLE_EQ(smape(t, p), 2.0);
  EXPECT_DOUBLE_EQ(smape(t, t), 0.0);
}

TEST(Metrics, LengthMismatchThrows) {
  std::vector<double> a{1.0};
  std::vector<double> b{1.0, 2.0};
  EXPECT_THROW((void)rmse(a, b), std::invalid_argument);
  EXPECT_THROW((void)mae(a, b), std::invalid_argument);
  EXPECT_THROW((void)mape(a, b), std::invalid_argument);
  EXPECT_THROW((void)r_squared(a, b), std::invalid_argument);
  EXPECT_THROW((void)smape(a, b), std::invalid_argument);
}

TEST(Metrics, EmptyInputThrows) {
  std::vector<double> e;
  EXPECT_THROW((void)rmse(e, e), std::invalid_argument);
  EXPECT_THROW((void)mae(e, e), std::invalid_argument);
}

}  // namespace
}  // namespace acbm::stats
