#include "stats/split.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <stdexcept>

namespace acbm::stats {
namespace {

TEST(ChronologicalSplit, PaperProportions) {
  // The paper splits 50,704 attacks into 40,563 train / 10,141 test.
  const SplitIndices s = chronological_split(50704, 0.8);
  EXPECT_EQ(s.train.size(), 40563u);
  EXPECT_EQ(s.test.size(), 10141u);
}

TEST(ChronologicalSplit, TrainStrictlyPrecedesTest) {
  const SplitIndices s = chronological_split(100, 0.8);
  EXPECT_EQ(s.train.size(), 80u);
  EXPECT_EQ(s.test.size(), 20u);
  EXPECT_LT(s.train.back(), s.test.front());
  // Indices are consecutive and exhaustive.
  for (std::size_t i = 0; i < s.train.size(); ++i) EXPECT_EQ(s.train[i], i);
  for (std::size_t i = 0; i < s.test.size(); ++i) EXPECT_EQ(s.test[i], 80 + i);
}

TEST(ChronologicalSplit, RejectsBadFraction) {
  EXPECT_THROW(chronological_split(10, 0.0), std::invalid_argument);
  EXPECT_THROW(chronological_split(10, 1.0), std::invalid_argument);
  EXPECT_THROW(chronological_split(10, -0.5), std::invalid_argument);
}

TEST(ShuffledSplit, PartitionIsExhaustiveAndDisjoint) {
  Rng rng(5);
  const SplitIndices s = shuffled_split(50, 0.8, rng);
  std::set<std::size_t> all(s.train.begin(), s.train.end());
  all.insert(s.test.begin(), s.test.end());
  EXPECT_EQ(all.size(), 50u);
  EXPECT_EQ(s.train.size() + s.test.size(), 50u);
}

TEST(ShuffledSplit, IsActuallyShuffled) {
  Rng rng(5);
  const SplitIndices s = shuffled_split(1000, 0.8, rng);
  // A sorted train set would indicate no shuffling happened.
  EXPECT_FALSE(std::is_sorted(s.train.begin(), s.train.end()));
}

TEST(Gather, PicksRequestedElements) {
  const std::vector<int> items{10, 20, 30, 40};
  const std::vector<int> got = gather(items, {3, 0});
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], 40);
  EXPECT_EQ(got[1], 10);
}

TEST(Gather, OutOfRangeThrows) {
  const std::vector<int> items{1};
  EXPECT_THROW(gather(items, {1}), std::out_of_range);
}

}  // namespace
}  // namespace acbm::stats
