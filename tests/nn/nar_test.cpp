#include "nn/nar.h"

#include <gtest/gtest.h>

#include "nn/grid_search.h"

#include <cmath>

#include "core/robust.h"
#include <stdexcept>
#include <vector>

#include "stats/descriptive.h"
#include "stats/metrics.h"
#include "stats/rng.h"

namespace acbm::nn {
namespace {

NarOptions fast_options(std::size_t delays, std::size_t hidden,
                        std::uint64_t seed) {
  NarOptions opts;
  opts.delays = delays;
  opts.hidden_nodes = hidden;
  opts.mlp.max_epochs = 300;
  opts.mlp.seed = seed;
  return opts;
}

TEST(NarModel, RejectsDegenerateOptions) {
  NarOptions zero_delay;
  zero_delay.delays = 0;
  EXPECT_THROW(NarModel{zero_delay}, std::invalid_argument);
  NarOptions zero_hidden;
  zero_hidden.hidden_nodes = 0;
  EXPECT_THROW(NarModel{zero_hidden}, std::invalid_argument);
}

TEST(NarModel, FitRejectsShortSeries) {
  NarModel model(fast_options(5, 4, 1));
  EXPECT_THROW(model.fit(std::vector<double>{1.0, 2.0, 3.0}),
               std::invalid_argument);
}

TEST(NarModel, UnfittedUseThrows) {
  NarModel model(fast_options(2, 4, 1));
  const std::vector<double> xs{1.0, 2.0, 3.0};
  EXPECT_THROW((void)model.forecast_one(xs), std::logic_error);
  EXPECT_THROW((void)model.forecast(xs, 2), std::logic_error);
  EXPECT_THROW((void)model.one_step_predictions(xs, 2), std::logic_error);
}

TEST(NarModel, LearnsDeterministicNonlinearRecurrence) {
  // x_{t+1} = 1 - 1.4 x_t^2 + 0.3 x_{t-1} (Henon map) — strongly nonlinear;
  // a linear AR cannot track it but a NAR should.
  std::vector<double> xs{0.1, 0.1};
  for (int t = 2; t < 500; ++t) {
    xs.push_back(1.0 - 1.4 * xs[t - 1] * xs[t - 1] + 0.3 * xs[t - 2]);
  }
  NarModel model(fast_options(2, 12, 5));
  model.fit(xs);
  const std::size_t start = 400;
  const std::vector<double> preds = model.one_step_predictions(xs, start);
  const std::vector<double> truth(xs.begin() + start, xs.end());
  const double nar_rmse = acbm::stats::rmse(truth, preds);
  // Mean baseline for comparison.
  std::vector<double> mean_pred(truth.size(), acbm::stats::mean(xs));
  EXPECT_LT(nar_rmse, 0.3 * acbm::stats::rmse(truth, mean_pred));
}

TEST(NarModel, OneStepPredictionsUseTrueHistory) {
  std::vector<double> xs;
  for (int t = 0; t < 200; ++t) xs.push_back(std::sin(t * 0.2));
  NarModel model(fast_options(3, 8, 9));
  model.fit(xs);
  const std::vector<double> preds = model.one_step_predictions(xs, 150);
  EXPECT_EQ(preds.size(), 50u);
  const std::vector<double> truth(xs.begin() + 150, xs.end());
  EXPECT_LT(acbm::stats::rmse(truth, preds), 0.2);
}

TEST(NarModel, ClosedLoopForecastStaysBoundedOnPeriodicSignal) {
  std::vector<double> xs;
  for (int t = 0; t < 300; ++t) xs.push_back(std::sin(t * 0.3));
  NarModel model(fast_options(4, 10, 21));
  model.fit(xs);
  const std::vector<double> f = model.forecast(xs, 30);
  EXPECT_EQ(f.size(), 30u);
  for (double v : f) {
    EXPECT_GT(v, -2.0);
    EXPECT_LT(v, 2.0);
  }
}

TEST(NarModel, ForecastOneMatchesForecastHead) {
  std::vector<double> xs;
  for (int t = 0; t < 120; ++t) xs.push_back(std::cos(t * 0.25));
  NarModel model(fast_options(2, 6, 23));
  model.fit(xs);
  EXPECT_DOUBLE_EQ(model.forecast_one(xs), model.forecast(xs, 4).front());
}

TEST(NarModel, BadStartThrows) {
  std::vector<double> xs(50, 1.0);
  for (int t = 0; t < 50; ++t) xs[t] = std::sin(t * 0.5);
  NarModel model(fast_options(3, 4, 25));
  model.fit(xs);
  EXPECT_THROW((void)model.one_step_predictions(xs, 2), std::invalid_argument);
  EXPECT_THROW((void)model.one_step_predictions(xs, 51), std::invalid_argument);
}

TEST(NarGridSearch, PicksAWorkingConfiguration) {
  std::vector<double> xs;
  for (int t = 0; t < 260; ++t) xs.push_back(std::sin(t * 0.2) + 0.1 * std::sin(t));
  NarGridOptions opts;
  opts.delay_grid = {1, 2, 4};
  opts.hidden_grid = {2, 6};
  opts.mlp.max_epochs = 150;
  opts.mlp.seed = 31;
  const auto result = nar_grid_search(xs, opts);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->model.fitted());
  EXPECT_GT(result->validation_rmse, 0.0);
  // Winner must be a grid member.
  EXPECT_TRUE(result->delays == 1 || result->delays == 2 || result->delays == 4);
  EXPECT_TRUE(result->hidden_nodes == 2 || result->hidden_nodes == 6);
}

TEST(NarGridSearch, ReturnsTypedErrorWhenNothingFits) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  NarGridOptions opts;
  opts.delay_grid = {10};
  opts.hidden_grid = {4};
  const auto result = nar_grid_search(xs, opts);
  EXPECT_FALSE(result.has_value());
  EXPECT_EQ(result.error(), core::FitError::kSeriesTooShort);
  EXPECT_FALSE(result.detail().empty());
  EXPECT_THROW((void)result.value(), core::FitFailure);
}

TEST(NarGridSearch, RejectsBadValidationFraction) {
  const std::vector<double> xs(50, 1.0);
  NarGridOptions opts;
  opts.validation_fraction = 0.0;
  EXPECT_THROW((void)nar_grid_search(xs, opts), std::invalid_argument);
}

TEST(NarGridSearch, LongerDelaysWinOnLongMemorySignal) {
  // Period-8 square wave: a 1-delay model cannot disambiguate, longer can.
  std::vector<double> xs;
  for (int t = 0; t < 400; ++t) xs.push_back((t / 4) % 2 == 0 ? 1.0 : -1.0);
  NarGridOptions opts;
  opts.delay_grid = {1, 8};
  opts.hidden_grid = {8};
  opts.mlp.max_epochs = 250;
  opts.mlp.seed = 37;
  const auto result = nar_grid_search(xs, opts);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->delays, 8u);
}

}  // namespace
}  // namespace acbm::nn
