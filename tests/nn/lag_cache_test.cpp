// LagMatrixCache: hit/miss accounting, invalidation, and the equivalence
// guarantees that make sharing embeddings safe — a prepared fit must be
// bit-identical to the classic series fit.
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "core/robust.h"
#include "nn/grid_search.h"
#include "nn/lag_cache.h"
#include "nn/mlp.h"
#include "nn/nar.h"
#include "stats/rng.h"

namespace {

using acbm::nn::LagMatrixCache;
using acbm::nn::MlpTrainingSet;

std::vector<double> noisy_wave(std::size_t n, std::uint64_t seed) {
  acbm::stats::Rng rng(seed);
  std::vector<double> xs(n);
  for (std::size_t t = 0; t < n; ++t) {
    xs[t] = 5.0 + 2.0 * std::sin(static_cast<double>(t) * 0.4) +
            rng.normal(0.0, 0.3);
  }
  return xs;
}

TEST(LagMatrixCacheTest, HitMissAccountingAndInvalidation) {
  const std::vector<double> series = noisy_wave(40, 1);
  LagMatrixCache cache;
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
  EXPECT_EQ(cache.entries(), 0u);

  const auto a = cache.get(1, series, 3, series.size());
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.entries(), 1u);

  // Same key: a hit returning the same object.
  const auto b = cache.get(1, series, 3, series.size());
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(a.get(), b.get());

  // Different delays / length / series id are distinct entries.
  (void)cache.get(1, series, 2, series.size());
  (void)cache.get(1, series, 3, series.size() - 5);
  (void)cache.get(2, series, 3, series.size());
  EXPECT_EQ(cache.misses(), 4u);
  EXPECT_EQ(cache.entries(), 4u);

  // Invalidation drops only the named series; held pointers stay valid.
  cache.invalidate(1);
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_EQ(a->cols, 3u);
  const auto c = cache.get(1, series, 3, series.size());
  EXPECT_EQ(cache.misses(), 5u);
  EXPECT_EQ(c->rows, a->rows);

  cache.clear();
  EXPECT_EQ(cache.entries(), 0u);
}

TEST(LagMatrixCacheTest, LaggedBuildMatchesExplicitWindows) {
  const std::vector<double> series = noisy_wave(30, 2);
  const std::size_t delays = 4;

  // The explicit windows NarModel::fit historically built.
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (std::size_t t = delays; t < series.size(); ++t) {
    std::vector<double> w(delays);
    for (std::size_t i = 0; i < delays; ++i) w[i] = series[t - 1 - i];
    x.push_back(std::move(w));
    y.push_back(series[t]);
  }
  const MlpTrainingSet from_rows = MlpTrainingSet::build(x, y);
  const MlpTrainingSet lagged =
      MlpTrainingSet::build_lagged(series, delays, series.size());

  ASSERT_EQ(lagged.rows, from_rows.rows);
  ASSERT_EQ(lagged.cols, from_rows.cols);
  for (std::size_t i = 0; i < lagged.x_norm.size(); ++i) {
    EXPECT_EQ(lagged.x_norm[i], from_rows.x_norm[i]);
  }
  for (std::size_t i = 0; i < lagged.y_norm.size(); ++i) {
    EXPECT_EQ(lagged.y_norm[i], from_rows.y_norm[i]);
  }
  for (std::size_t j = 0; j < delays; ++j) {
    EXPECT_EQ(lagged.input_scalers[j].mean, from_rows.input_scalers[j].mean);
    EXPECT_EQ(lagged.input_scalers[j].sd, from_rows.input_scalers[j].sd);
  }
  EXPECT_EQ(lagged.output_scaler.mean, from_rows.output_scaler.mean);
  EXPECT_EQ(lagged.output_scaler.sd, from_rows.output_scaler.sd);
}

TEST(LagMatrixCacheTest, BuildLaggedRejectsShortSeries) {
  const std::vector<double> series = noisy_wave(4, 3);
  EXPECT_THROW((void)MlpTrainingSet::build_lagged(series, 3, series.size()),
               acbm::core::FitFailure);
}

TEST(LagMatrixCacheTest, PreparedFitBitIdenticalToSeriesFit) {
  const std::vector<double> series = noisy_wave(60, 4);
  acbm::nn::NarOptions opts;
  opts.delays = 3;
  opts.hidden_nodes = 4;
  opts.mlp.max_epochs = 30;
  opts.mlp.seed = 9;

  acbm::nn::NarModel classic(opts);
  classic.fit(series);

  LagMatrixCache cache;
  acbm::nn::NarModel prepared(opts);
  prepared.fit_prepared(*cache.get(0, series, opts.delays, series.size()));

  // Same weights => identical predictions everywhere.
  const auto classic_pred = classic.one_step_predictions(series, opts.delays);
  const auto prepared_pred = prepared.one_step_predictions(series, opts.delays);
  ASSERT_EQ(classic_pred.size(), prepared_pred.size());
  for (std::size_t i = 0; i < classic_pred.size(); ++i) {
    EXPECT_EQ(classic_pred[i], prepared_pred[i]);
  }
}

TEST(LagMatrixCacheTest, GridSearchWithSharedCacheMatchesDefault) {
  const std::vector<double> series = noisy_wave(80, 5);
  acbm::nn::NarGridOptions opts;
  opts.delay_grid = {1, 2, 3};
  opts.hidden_grid = {2, 4};
  opts.mlp.max_epochs = 20;

  const auto plain = acbm::nn::nar_grid_search(series, opts);
  LagMatrixCache cache;
  const auto cached = acbm::nn::nar_grid_search(series, opts, &cache, 7);
  ASSERT_TRUE(static_cast<bool>(plain));
  ASSERT_TRUE(static_cast<bool>(cached));
  EXPECT_EQ(plain->delays, cached->delays);
  EXPECT_EQ(plain->hidden_nodes, cached->hidden_nodes);
  EXPECT_EQ(plain->validation_rmse, cached->validation_rmse);
  // The shared cache was actually consulted: one entry per distinct viable
  // delay for the candidate split, plus the winner's full-length refit.
  EXPECT_GT(cache.hits(), 0u);
  EXPECT_EQ(cache.entries(), opts.delay_grid.size() + 1);

  // A second search over the same cache reuses everything.
  const std::size_t misses_before = cache.misses();
  const auto again = acbm::nn::nar_grid_search(series, opts, &cache, 7);
  ASSERT_TRUE(static_cast<bool>(again));
  EXPECT_EQ(cache.misses(), misses_before);
  EXPECT_EQ(again->validation_rmse, cached->validation_rmse);
}

}  // namespace
