#include "nn/mlp.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "stats/descriptive.h"
#include "stats/metrics.h"
#include "stats/rng.h"

namespace acbm::nn {
namespace {

TEST(Mlp, FitsLinearFunction) {
  // y = 3x - 1 on [0, 1]; a tanh net must nail this.
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i <= 60; ++i) {
    const double v = i / 60.0;
    x.push_back({v});
    y.push_back(3.0 * v - 1.0);
  }
  MlpOptions opts;
  opts.hidden_layers = {6};
  opts.max_epochs = 400;
  opts.seed = 3;
  Mlp net(opts);
  net.fit(x, y);
  double max_err = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    max_err = std::max(max_err, std::abs(net.predict(x[i]) - y[i]));
  }
  EXPECT_LT(max_err, 0.15);
}

TEST(Mlp, FitsSineWave) {
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 200; ++i) {
    const double v = -3.0 + 6.0 * i / 199.0;
    x.push_back({v});
    y.push_back(std::sin(v));
  }
  MlpOptions opts;
  opts.hidden_layers = {16};
  opts.max_epochs = 800;
  opts.learning_rate = 5e-3;
  opts.seed = 7;
  Mlp net(opts);
  net.fit(x, y);
  std::vector<double> preds;
  for (const auto& row : x) preds.push_back(net.predict(row));
  EXPECT_LT(acbm::stats::rmse(y, preds), 0.12);
}

TEST(Mlp, LearnsXorPattern) {
  // XOR is the canonical not-linearly-separable check.
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int rep = 0; rep < 25; ++rep) {
    x.push_back({0.0, 0.0});
    y.push_back(0.0);
    x.push_back({0.0, 1.0});
    y.push_back(1.0);
    x.push_back({1.0, 0.0});
    y.push_back(1.0);
    x.push_back({1.0, 1.0});
    y.push_back(0.0);
  }
  MlpOptions opts;
  opts.hidden_layers = {8};
  opts.max_epochs = 1500;
  opts.learning_rate = 1e-2;
  opts.seed = 11;
  opts.validation_fraction = 0.0;
  Mlp net(opts);
  net.fit(x, y);
  EXPECT_LT(net.predict(std::vector<double>{0.0, 0.0}), 0.3);
  EXPECT_GT(net.predict(std::vector<double>{0.0, 1.0}), 0.7);
  EXPECT_GT(net.predict(std::vector<double>{1.0, 0.0}), 0.7);
  EXPECT_LT(net.predict(std::vector<double>{1.0, 1.0}), 0.3);
}

TEST(Mlp, GradientMatchesNumericalDifferentiation) {
  MlpOptions opts;
  opts.hidden_layers = {4};
  opts.max_epochs = 1;  // We only need an initialized network.
  opts.seed = 13;
  Mlp net(opts);
  std::vector<std::vector<double>> x{{0.1, -0.4}, {0.5, 0.2}, {-0.3, 0.9},
                                     {0.8, -0.6}, {0.0, 0.0}, {1.0, 1.0},
                                     {-1.0, 0.5}, {0.3, 0.3}, {0.6, -0.1},
                                     {-0.2, -0.8}};
  std::vector<double> y{0.2, 0.5, -0.1, 0.9, 0.0, 1.0, -0.5, 0.3, 0.4, -0.7};
  net.fit(x, y);

  const std::vector<double> sample{0.37, -0.21};
  const double target = 0.44;
  const std::vector<double> analytic = net.loss_gradient(sample, target);
  std::vector<double> params = net.parameters();
  ASSERT_EQ(analytic.size(), params.size());

  constexpr double kEps = 1e-6;
  for (std::size_t p = 0; p < params.size(); ++p) {
    std::vector<double> bumped = params;
    bumped[p] += kEps;
    net.set_parameters(bumped);
    const double up = net.sample_loss(sample, target);
    bumped[p] -= 2.0 * kEps;
    net.set_parameters(bumped);
    const double down = net.sample_loss(sample, target);
    net.set_parameters(params);
    const double numeric = (up - down) / (2.0 * kEps);
    EXPECT_NEAR(analytic[p], numeric, 1e-4)
        << "gradient mismatch at parameter " << p;
  }
}

TEST(Mlp, RejectsBadInput) {
  Mlp net;
  EXPECT_THROW(net.fit({}, std::vector<double>{}), std::invalid_argument);
  EXPECT_THROW(net.fit({{1.0}, {2.0, 3.0}}, std::vector<double>{1.0, 2.0}),
               std::invalid_argument);
  EXPECT_THROW(net.fit({{1.0}}, std::vector<double>{1.0, 2.0}),
               std::invalid_argument);
  EXPECT_THROW((void)net.predict(std::vector<double>{1.0}), std::logic_error);
}

TEST(Mlp, PredictRejectsWrongWidth) {
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 30; ++i) {
    x.push_back({static_cast<double>(i), 1.0});
    y.push_back(static_cast<double>(i));
  }
  Mlp net;
  net.fit(x, y);
  EXPECT_THROW((void)net.predict(std::vector<double>{1.0}),
               std::invalid_argument);
}

TEST(Mlp, DeterministicForFixedSeed) {
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 50; ++i) {
    const double v = i / 50.0;
    x.push_back({v});
    y.push_back(v * v);
  }
  MlpOptions opts;
  opts.seed = 99;
  opts.max_epochs = 100;
  Mlp a(opts);
  Mlp b(opts);
  a.fit(x, y);
  b.fit(x, y);
  for (const auto& row : x) {
    EXPECT_DOUBLE_EQ(a.predict(row), b.predict(row));
  }
}

TEST(Mlp, SgdOptimizerAlsoConverges) {
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i <= 80; ++i) {
    const double v = i / 80.0;
    x.push_back({v});
    y.push_back(2.0 * v + 0.5);
  }
  MlpOptions opts;
  opts.optimizer = Optimizer::kSgdMomentum;
  opts.learning_rate = 5e-3;
  opts.max_epochs = 600;
  opts.seed = 17;
  Mlp net(opts);
  net.fit(x, y);
  std::vector<double> preds;
  for (const auto& row : x) preds.push_back(net.predict(row));
  EXPECT_LT(acbm::stats::rmse(y, preds), 0.1);
}

TEST(Mlp, TinyDatasetTrainsWithoutValidationSplit) {
  // 6 samples: validation holdout is disabled internally; must not throw.
  std::vector<std::vector<double>> x{{0.0}, {1.0}, {2.0}, {3.0}, {4.0}, {5.0}};
  std::vector<double> y{0.0, 1.0, 2.0, 3.0, 4.0, 5.0};
  Mlp net;
  EXPECT_NO_THROW(net.fit(x, y));
  EXPECT_TRUE(net.fitted());
}

// Property: multi-dimensional regression beats the mean baseline.
class MlpRegressionProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MlpRegressionProperty, BeatsMeanBaselineOnSmoothFunction) {
  acbm::stats::Rng rng(GetParam());
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 300; ++i) {
    const double a = rng.uniform(-1.0, 1.0);
    const double b = rng.uniform(-1.0, 1.0);
    x.push_back({a, b});
    y.push_back(a * b + 0.5 * a - 0.2 * b * b);
  }
  MlpOptions opts;
  opts.hidden_layers = {12};
  opts.max_epochs = 600;
  opts.seed = GetParam();
  Mlp net(opts);
  net.fit(x, y);
  std::vector<double> preds;
  for (const auto& row : x) preds.push_back(net.predict(row));
  std::vector<double> mean_pred(y.size(), acbm::stats::mean(y));
  EXPECT_LT(acbm::stats::rmse(y, preds),
            0.4 * acbm::stats::rmse(y, mean_pred));
}

INSTANTIATE_TEST_SUITE_P(Seeds, MlpRegressionProperty,
                         ::testing::Values(1u, 2u, 3u));

}  // namespace
}  // namespace acbm::nn
