#include "net/routing.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <unordered_set>

#include "net/topology.h"

namespace acbm::net {
namespace {

// Checks the valley-free property: uphill (to-provider) steps, at most one
// peer step, then downhill (to-customer) steps; no climb after descending.
bool is_valley_free(const AsGraph& g, const std::vector<Asn>& path) {
  // Phases: 0 = climbing, 1 = after peer edge, 2 = descending.
  int phase = 0;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    const auto type = g.link_type(path[i], path[i + 1]);
    if (!type) return false;  // Path uses a non-existent edge.
    switch (*type) {
      case LinkType::kProvider:  // Step up to a provider.
      case LinkType::kSibling:
        if (phase != 0) return false;
        break;
      case LinkType::kPeer:
        if (phase >= 1) return false;
        phase = 1;
        break;
      case LinkType::kCustomer:  // Step down to a customer.
        phase = 2;
        break;
    }
  }
  return true;
}

AsGraph small_hierarchy() {
  // Tier 1: ASes 1 and 2, peering. Customers: 1->{3,4}, 2->{5};
  // 3->{6}, 4->{7}, 5->{8}; 7 and 8 peer laterally.
  AsGraph g;
  g.add_peering(1, 2);
  g.add_provider_customer(1, 3);
  g.add_provider_customer(1, 4);
  g.add_provider_customer(2, 5);
  g.add_provider_customer(3, 6);
  g.add_provider_customer(4, 7);
  g.add_provider_customer(5, 8);
  g.add_peering(7, 8);
  return g;
}

TEST(RouteComputer, TrivialRouteToSelf) {
  const AsGraph g = small_hierarchy();
  const RouteComputer rc(g);
  const auto routes = rc.routes_to(6);
  ASSERT_TRUE(routes.contains(6));
  EXPECT_EQ(routes.at(6).path, std::vector<Asn>{6});
  EXPECT_EQ(routes.at(6).hops(), 0u);
}

TEST(RouteComputer, AllAsesReachAllDestinations) {
  const AsGraph g = small_hierarchy();
  const RouteComputer rc(g);
  for (Asn dest : g.ases()) {
    const auto routes = rc.routes_to(dest);
    EXPECT_EQ(routes.size(), g.as_count()) << "dest " << dest;
  }
}

TEST(RouteComputer, PathsEndpointsAreCorrect) {
  const AsGraph g = small_hierarchy();
  const RouteComputer rc(g);
  const auto routes = rc.routes_to(8);
  for (const auto& [src, route] : routes) {
    EXPECT_EQ(route.path.front(), src);
    EXPECT_EQ(route.path.back(), 8u);
  }
}

TEST(RouteComputer, AllPathsAreValleyFree) {
  const AsGraph g = small_hierarchy();
  const RouteComputer rc(g);
  for (Asn dest : g.ases()) {
    for (const auto& [src, route] : rc.routes_to(dest)) {
      EXPECT_TRUE(is_valley_free(g, route.path))
          << "path from " << src << " to " << dest << " has a valley";
    }
  }
}

TEST(RouteComputer, PrefersCustomerRouteOverShorterPeerRoute) {
  // 10 can reach 30 either via its peer 30 directly... construct:
  // 20 is provider of 10 and 30. 10 -- 30 peer edge also exists.
  // Customer preference says route via peer edge IS a peer route (1 hop)
  // vs provider route via 20 (2 hops). BGP prefers... peer > provider,
  // so 10 uses the peer edge. But a *customer* route must beat both:
  // make 30 also a customer of 10.
  AsGraph g;
  g.add_provider_customer(20, 10);
  g.add_provider_customer(20, 30);
  g.add_provider_customer(10, 40);
  g.add_provider_customer(40, 30);  // 30 reachable via customer chain 10->40->30.
  const RouteComputer rc(g);
  const auto routes = rc.routes_to(30);
  // Customer route (2 hops via 40) preferred over provider route via 20
  // (also 2 hops) — and definitely chosen as class kCustomer.
  ASSERT_TRUE(routes.contains(10));
  EXPECT_EQ(routes.at(10).learned, RouteClass::kCustomer);
  EXPECT_EQ(routes.at(10).path, (std::vector<Asn>{10, 40, 30}));
}

TEST(RouteComputer, PeerRouteNotExportedToPeers) {
  // Classic no-valley rule: 1 -peer- 2 -peer- 3 must NOT yield a 1->2->3
  // route; 3 is only reachable from 1 if some transit path exists.
  AsGraph g;
  g.add_peering(1, 2);
  g.add_peering(2, 3);
  const RouteComputer rc(g);
  const auto routes = rc.routes_to(3);
  EXPECT_TRUE(routes.contains(2));  // 2 peers with 3 directly.
  EXPECT_FALSE(routes.contains(1)) << "peer route leaked across two peer hops";
}

TEST(RouteComputer, ProviderRouteUsedAsLastResort) {
  AsGraph g;
  g.add_provider_customer(1, 2);
  g.add_provider_customer(1, 3);
  const RouteComputer rc(g);
  const auto routes = rc.routes_to(3);
  ASSERT_TRUE(routes.contains(2));
  EXPECT_EQ(routes.at(2).learned, RouteClass::kProvider);
  EXPECT_EQ(routes.at(2).path, (std::vector<Asn>{2, 1, 3}));
}

TEST(RouteComputer, UnknownDestinationThrows) {
  const AsGraph g = small_hierarchy();
  const RouteComputer rc(g);
  EXPECT_THROW((void)rc.routes_to(999), std::invalid_argument);
}

TEST(RouteComputer, GeneratedTopologyFullReachabilityAndValleyFreedom) {
  acbm::stats::Rng rng(33);
  TopologyOptions opts;
  opts.num_tier1 = 4;
  opts.num_transit = 10;
  opts.num_stub = 30;
  const Topology topo = generate_topology(opts, rng);
  const RouteComputer rc(topo.graph);
  // Spot-check several destinations across tiers.
  for (Asn dest : {topo.tier1.front(), topo.transit.front(), topo.stubs.front(),
                   topo.stubs.back()}) {
    const auto routes = rc.routes_to(dest);
    EXPECT_EQ(routes.size(), topo.graph.as_count());
    for (const auto& [src, route] : routes) {
      EXPECT_TRUE(is_valley_free(topo.graph, route.path));
    }
  }
}

TEST(DumpPaths, ProducesPathsFromVantagePoints) {
  const AsGraph g = small_hierarchy();
  const auto paths = dump_paths(g, {6, 8});
  EXPECT_FALSE(paths.empty());
  std::unordered_set<Asn> sources;
  for (const auto& path : paths) {
    ASSERT_GE(path.size(), 2u);
    sources.insert(path.front());
    EXPECT_TRUE(is_valley_free(g, path));
  }
  // Every dumped path starts at one of the vantage points.
  for (Asn src : sources) {
    EXPECT_TRUE(src == 6 || src == 8);
  }
}

TEST(ValleyFreeDistance, BasicDistances) {
  const AsGraph g = small_hierarchy();
  ValleyFreeDistance dist(g);
  EXPECT_EQ(dist.distance(6, 6), 0u);
  EXPECT_EQ(dist.distance(6, 3), 1u);
  EXPECT_EQ(dist.distance(6, 1), 2u);
  EXPECT_EQ(dist.distance(7, 8), 1u);  // Direct peer edge.
}

TEST(ValleyFreeDistance, UnreachableAndUnknown) {
  AsGraph g;
  g.add_peering(1, 2);
  g.add_peering(3, 4);
  ValleyFreeDistance dist(g);
  EXPECT_FALSE(dist.distance(1, 3).has_value());
  EXPECT_FALSE(dist.distance(1, 999).has_value());
}

TEST(ValleyFreeDistance, CachesPerDestination) {
  const AsGraph g = small_hierarchy();
  ValleyFreeDistance dist(g);
  (void)dist.distance(6, 1);
  (void)dist.distance(7, 1);
  EXPECT_EQ(dist.cached_destinations(), 1u);
  (void)dist.distance(6, 2);
  EXPECT_EQ(dist.cached_destinations(), 2u);
}

TEST(ValleyFreeDistance, PolicyDistanceCanExceedShortestPath) {
  // 1 -peer- 2 -peer- 3 with transit via top provider 9.
  AsGraph g;
  g.add_peering(1, 2);
  g.add_peering(2, 3);
  g.add_provider_customer(9, 1);
  g.add_provider_customer(9, 3);
  ValleyFreeDistance dist(g);
  // Undirected shortest path 1->2->3 is 2 hops, but it's not valley-free;
  // the policy route is 1 -> 9 -> 3.
  EXPECT_EQ(dist.distance(1, 3), 2u);
  const RouteComputer rc(g);
  EXPECT_EQ(rc.routes_to(3).at(1).path, (std::vector<Asn>{1, 9, 3}));
}

}  // namespace
}  // namespace acbm::net
