#include "net/topology.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace acbm::net {
namespace {

TEST(Topology, GeneratesRequestedCounts) {
  acbm::stats::Rng rng(1);
  const Topology topo = generate_topology({}, rng);
  EXPECT_EQ(topo.tier1.size(), 8u);
  EXPECT_EQ(topo.transit.size(), 40u);
  EXPECT_EQ(topo.stubs.size(), 150u);
  EXPECT_EQ(topo.graph.as_count(), 198u);
}

TEST(Topology, IsConnected) {
  acbm::stats::Rng rng(2);
  const Topology topo = generate_topology({}, rng);
  EXPECT_TRUE(topo.graph.connected());
}

TEST(Topology, CustomerHierarchyIsAcyclic) {
  for (std::uint64_t seed : {3u, 4u, 5u}) {
    acbm::stats::Rng rng(seed);
    const Topology topo = generate_topology({}, rng);
    EXPECT_TRUE(topo.graph.customer_hierarchy_acyclic());
  }
}

TEST(Topology, Tier1FormsPeeringClique) {
  acbm::stats::Rng rng(6);
  const Topology topo = generate_topology({}, rng);
  for (std::size_t i = 0; i < topo.tier1.size(); ++i) {
    for (std::size_t j = i + 1; j < topo.tier1.size(); ++j) {
      EXPECT_EQ(topo.graph.link_type(topo.tier1[i], topo.tier1[j]),
                LinkType::kPeer);
    }
  }
}

TEST(Topology, Tier1HasNoProviders) {
  acbm::stats::Rng rng(7);
  const Topology topo = generate_topology({}, rng);
  for (Asn t1 : topo.tier1) {
    for (const Link& link : topo.graph.links(t1)) {
      EXPECT_NE(link.type, LinkType::kProvider)
          << "tier-1 AS " << t1 << " has a provider";
    }
  }
}

TEST(Topology, StubsHaveNoCustomers) {
  acbm::stats::Rng rng(8);
  const Topology topo = generate_topology({}, rng);
  for (Asn stub : topo.stubs) {
    for (const Link& link : topo.graph.links(stub)) {
      EXPECT_NE(link.type, LinkType::kCustomer)
          << "stub AS " << stub << " has a customer";
    }
  }
}

TEST(Topology, EveryNonTier1HasAProvider) {
  acbm::stats::Rng rng(9);
  const Topology topo = generate_topology({}, rng);
  for (Asn asn : topo.graph.ases()) {
    if (topo.tiers.at(asn) == Tier::kTier1) continue;
    bool has_provider = false;
    for (const Link& link : topo.graph.links(asn)) {
      if (link.type == LinkType::kProvider) has_provider = true;
    }
    EXPECT_TRUE(has_provider) << "AS " << asn << " is unhomed";
  }
}

TEST(Topology, DegreeDistributionIsHeavyTailed) {
  acbm::stats::Rng rng(10);
  TopologyOptions opts;
  opts.num_stub = 300;
  const Topology topo = generate_topology(opts, rng);
  // Preferential attachment: max transit degree should far exceed median.
  std::vector<std::size_t> degrees;
  for (Asn asn : topo.transit) degrees.push_back(topo.graph.degree(asn));
  std::sort(degrees.begin(), degrees.end());
  EXPECT_GT(degrees.back(), 3 * degrees[degrees.size() / 2]);
}

TEST(Topology, CustomAsnStart) {
  acbm::stats::Rng rng(11);
  TopologyOptions opts;
  opts.first_asn = 64512;
  const Topology topo = generate_topology(opts, rng);
  for (Asn asn : topo.graph.ases()) EXPECT_GE(asn, 64512u);
}

TEST(Topology, RejectsDegenerateOptions) {
  acbm::stats::Rng rng(12);
  TopologyOptions opts;
  opts.num_tier1 = 1;
  EXPECT_THROW((void)generate_topology(opts, rng), std::invalid_argument);
  opts.num_tier1 = 4;
  opts.max_stub_providers = 0;
  EXPECT_THROW((void)generate_topology(opts, rng), std::invalid_argument);
}

// Invariant sweep across sizes and seeds: every generated topology must be
// connected, customer-acyclic, with homed non-tier1 ASes.
struct TopologyCase {
  std::uint64_t seed;
  std::size_t tier1;
  std::size_t transit;
  std::size_t stubs;
};

class TopologyInvariantSweep : public ::testing::TestWithParam<TopologyCase> {};

TEST_P(TopologyInvariantSweep, StructuralInvariantsHold) {
  const TopologyCase& c = GetParam();
  acbm::stats::Rng rng(c.seed);
  TopologyOptions opts;
  opts.num_tier1 = c.tier1;
  opts.num_transit = c.transit;
  opts.num_stub = c.stubs;
  const Topology topo = generate_topology(opts, rng);
  EXPECT_EQ(topo.graph.as_count(), c.tier1 + c.transit + c.stubs);
  EXPECT_TRUE(topo.graph.connected());
  EXPECT_TRUE(topo.graph.customer_hierarchy_acyclic());
  for (Asn asn : topo.graph.ases()) {
    if (topo.tiers.at(asn) == Tier::kTier1) continue;
    bool homed = false;
    for (const Link& link : topo.graph.links(asn)) {
      homed |= link.type == LinkType::kProvider;
    }
    EXPECT_TRUE(homed) << "AS " << asn;
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndSeeds, TopologyInvariantSweep,
    ::testing::Values(TopologyCase{1, 2, 0, 5}, TopologyCase{2, 2, 1, 1},
                      TopologyCase{3, 3, 8, 25}, TopologyCase{4, 6, 20, 80},
                      TopologyCase{5, 10, 50, 200},
                      TopologyCase{6, 4, 0, 40}));

TEST(Topology, DeterministicForFixedSeed) {
  acbm::stats::Rng rng_a(42);
  acbm::stats::Rng rng_b(42);
  const Topology a = generate_topology({}, rng_a);
  const Topology b = generate_topology({}, rng_b);
  ASSERT_EQ(a.graph.as_count(), b.graph.as_count());
  ASSERT_EQ(a.graph.edge_count(), b.graph.edge_count());
  for (Asn asn : a.graph.ases()) {
    for (const Link& link : a.graph.links(asn)) {
      EXPECT_EQ(b.graph.link_type(asn, link.neighbor), link.type);
    }
  }
}

}  // namespace
}  // namespace acbm::net
