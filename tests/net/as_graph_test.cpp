#include "net/as_graph.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace acbm::net {
namespace {

TEST(AsGraph, AddAsIsIdempotent) {
  AsGraph g;
  g.add_as(100);
  g.add_as(100);
  EXPECT_EQ(g.as_count(), 1u);
  EXPECT_TRUE(g.contains(100));
  EXPECT_FALSE(g.contains(200));
}

TEST(AsGraph, ProviderCustomerEdgeIsSymmetricallyTyped) {
  AsGraph g;
  g.add_provider_customer(1, 2);
  EXPECT_EQ(g.link_type(1, 2), LinkType::kCustomer);  // 2 is 1's customer.
  EXPECT_EQ(g.link_type(2, 1), LinkType::kProvider);  // 1 is 2's provider.
  EXPECT_EQ(g.edge_count(), 1u);
}

TEST(AsGraph, PeeringAndSiblingAreSymmetric) {
  AsGraph g;
  g.add_peering(1, 2);
  g.add_sibling(3, 4);
  EXPECT_EQ(g.link_type(1, 2), LinkType::kPeer);
  EXPECT_EQ(g.link_type(2, 1), LinkType::kPeer);
  EXPECT_EQ(g.link_type(3, 4), LinkType::kSibling);
  EXPECT_EQ(g.link_type(4, 3), LinkType::kSibling);
}

TEST(AsGraph, ReverseFunction) {
  EXPECT_EQ(reverse(LinkType::kCustomer), LinkType::kProvider);
  EXPECT_EQ(reverse(LinkType::kProvider), LinkType::kCustomer);
  EXPECT_EQ(reverse(LinkType::kPeer), LinkType::kPeer);
  EXPECT_EQ(reverse(LinkType::kSibling), LinkType::kSibling);
}

TEST(AsGraph, EdgeUpsertReplacesType) {
  AsGraph g;
  g.add_peering(1, 2);
  g.add_provider_customer(1, 2);
  EXPECT_EQ(g.link_type(1, 2), LinkType::kCustomer);
  EXPECT_EQ(g.link_type(2, 1), LinkType::kProvider);
  EXPECT_EQ(g.edge_count(), 1u);  // Replaced, not duplicated.
}

TEST(AsGraph, SelfLoopRejected) {
  AsGraph g;
  EXPECT_THROW(g.add_peering(5, 5), std::invalid_argument);
}

TEST(AsGraph, LinksAndDegree) {
  AsGraph g;
  g.add_provider_customer(1, 2);
  g.add_provider_customer(1, 3);
  g.add_peering(1, 4);
  EXPECT_EQ(g.degree(1), 3u);
  EXPECT_EQ(g.degree(2), 1u);
  EXPECT_TRUE(g.links(99).empty());
  EXPECT_FALSE(g.link_type(2, 3).has_value());
}

TEST(AsGraph, ConnectedDetection) {
  AsGraph g;
  EXPECT_TRUE(g.connected());  // Empty graph convention.
  g.add_peering(1, 2);
  g.add_peering(2, 3);
  EXPECT_TRUE(g.connected());
  g.add_as(99);  // Isolated node.
  EXPECT_FALSE(g.connected());
}

TEST(AsGraph, CustomerHierarchyAcyclicOnDag) {
  AsGraph g;
  g.add_provider_customer(1, 2);
  g.add_provider_customer(1, 3);
  g.add_provider_customer(2, 4);
  g.add_provider_customer(3, 4);  // Diamond: fine, still acyclic.
  EXPECT_TRUE(g.customer_hierarchy_acyclic());
}

TEST(AsGraph, CustomerHierarchyCycleDetected) {
  AsGraph g;
  g.add_provider_customer(1, 2);
  g.add_provider_customer(2, 3);
  g.add_provider_customer(3, 1);  // 1 -> 2 -> 3 -> 1.
  EXPECT_FALSE(g.customer_hierarchy_acyclic());
}

TEST(AsGraph, PeeringDoesNotCreateCustomerCycle) {
  AsGraph g;
  g.add_peering(1, 2);
  g.add_peering(2, 3);
  g.add_peering(3, 1);
  EXPECT_TRUE(g.customer_hierarchy_acyclic());
}

}  // namespace
}  // namespace acbm::net
