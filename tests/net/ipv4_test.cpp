#include "net/ipv4.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace acbm::net {
namespace {

TEST(Ipv4, OctetConstructorAndToString) {
  const Ipv4 addr(192, 0, 2, 1);
  EXPECT_EQ(addr.value, 0xC0000201u);
  EXPECT_EQ(addr.to_string(), "192.0.2.1");
}

TEST(Ipv4, ParseRoundTrip) {
  for (const char* text : {"0.0.0.0", "255.255.255.255", "10.1.2.3",
                           "172.16.254.1"}) {
    EXPECT_EQ(parse_ipv4(text).to_string(), text);
  }
}

TEST(Ipv4, ParseRejectsMalformed) {
  EXPECT_THROW((void)parse_ipv4("256.0.0.1"), std::invalid_argument);
  EXPECT_THROW((void)parse_ipv4("1.2.3"), std::invalid_argument);
  EXPECT_THROW((void)parse_ipv4("1.2.3.4.5"), std::invalid_argument);
  EXPECT_THROW((void)parse_ipv4("a.b.c.d"), std::invalid_argument);
  EXPECT_THROW((void)parse_ipv4(""), std::invalid_argument);
  EXPECT_THROW((void)parse_ipv4("1..2.3"), std::invalid_argument);
}

TEST(Ipv4, Ordering) {
  EXPECT_LT(Ipv4(10, 0, 0, 1), Ipv4(10, 0, 0, 2));
  EXPECT_LT(Ipv4(9, 255, 255, 255), Ipv4(10, 0, 0, 0));
}

TEST(Prefix, CanonicalizesHostBits) {
  const Prefix p(Ipv4(10, 1, 2, 3), 16);
  EXPECT_EQ(p.network, Ipv4(10, 1, 0, 0));
  EXPECT_EQ(p.to_string(), "10.1.0.0/16");
}

TEST(Prefix, ContainsBoundaries) {
  const Prefix p(Ipv4(10, 1, 0, 0), 16);
  EXPECT_TRUE(p.contains(Ipv4(10, 1, 0, 0)));
  EXPECT_TRUE(p.contains(Ipv4(10, 1, 255, 255)));
  EXPECT_FALSE(p.contains(Ipv4(10, 2, 0, 0)));
  EXPECT_FALSE(p.contains(Ipv4(10, 0, 255, 255)));
}

TEST(Prefix, FirstLastSize) {
  const Prefix p(Ipv4(192, 168, 4, 0), 22);
  EXPECT_EQ(p.first(), Ipv4(192, 168, 4, 0));
  EXPECT_EQ(p.last(), Ipv4(192, 168, 7, 255));
  EXPECT_EQ(p.size(), 1024u);
}

TEST(Prefix, SlashZeroCoversEverything) {
  const Prefix p(Ipv4(1, 2, 3, 4), 0);
  EXPECT_TRUE(p.contains(Ipv4(0, 0, 0, 0)));
  EXPECT_TRUE(p.contains(Ipv4(255, 255, 255, 255)));
  EXPECT_EQ(p.size(), std::uint64_t{1} << 32);
}

TEST(Prefix, SlashThirtyTwoIsSingleHost) {
  const Prefix p(Ipv4(10, 0, 0, 7), 32);
  EXPECT_TRUE(p.contains(Ipv4(10, 0, 0, 7)));
  EXPECT_FALSE(p.contains(Ipv4(10, 0, 0, 8)));
  EXPECT_EQ(p.size(), 1u);
}

TEST(Prefix, RejectsBadLength) {
  EXPECT_THROW(Prefix(Ipv4(1, 2, 3, 4), 33), std::invalid_argument);
}

TEST(Prefix, ParsePrefix) {
  const Prefix p = parse_prefix("10.20.0.0/14");
  EXPECT_EQ(p.length, 14);
  EXPECT_EQ(p.network, Ipv4(10, 20, 0, 0));
  EXPECT_THROW((void)parse_prefix("10.0.0.0"), std::invalid_argument);
  EXPECT_THROW((void)parse_prefix("10.0.0.0/33"), std::invalid_argument);
  EXPECT_THROW((void)parse_prefix("10.0.0.0/xx"), std::invalid_argument);
}

}  // namespace
}  // namespace acbm::net
