#include "net/gao.h"

#include <gtest/gtest.h>

#include <vector>

#include "net/routing.h"
#include "net/topology.h"

namespace acbm::net {
namespace {

TEST(Gao, InfersSimpleProviderCustomerChain) {
  // Paths through a chain 3 -> 1 -> 2 where 1 is the high-degree core:
  // 1 provides transit to both 2 and 3.
  std::vector<std::vector<Asn>> paths{
      {3, 1, 2},  // 3 climbs to 1, descends to 2.
      {2, 1, 3},
      {3, 1, 4},
      {4, 1, 2},
      {2, 1, 4},
      {4, 1, 3},
  };
  const GaoResult result = infer_relationships(paths);
  // 1 has degree 3; the others degree 1. 1 must be everyone's provider.
  EXPECT_EQ(result.graph.link_type(1, 2), LinkType::kCustomer);
  EXPECT_EQ(result.graph.link_type(1, 3), LinkType::kCustomer);
  EXPECT_EQ(result.graph.link_type(1, 4), LinkType::kCustomer);
}

TEST(Gao, IgnoresDegeneratePaths) {
  std::vector<std::vector<Asn>> paths{{1}, {}, {2, 3}};
  const GaoResult result = infer_relationships(paths);
  EXPECT_EQ(result.graph.as_count(), 2u);
}

TEST(Gao, SiblingDetectedFromMutualTransit) {
  // 5 and 6 carry transit for each other *inside* uphill segments toward
  // the high-degree hubs 20/21 — the positional signature of siblings, as
  // opposed to peers (which only ever bridge the top of a path).
  std::vector<std::vector<Asn>> paths;
  for (int rep = 0; rep < 3; ++rep) {
    paths.push_back({5, 6, 20});  // 6 transits for 5 on the way up to 20.
    paths.push_back({6, 5, 21});  // 5 transits for 6 on the way up to 21.
  }
  // Hub support paths so 20/21 really are the top providers by degree.
  for (Asn leaf : {30u, 31u, 32u}) {
    paths.push_back({leaf, 20});
    paths.push_back({leaf, 21});
  }
  const GaoResult result = infer_relationships(paths);
  EXPECT_EQ(result.graph.link_type(5, 6), LinkType::kSibling);
}

TEST(Gao, AccuracyHighOnGeneratedTopology) {
  acbm::stats::Rng rng(7);
  TopologyOptions opts;
  opts.num_tier1 = 5;
  opts.num_transit = 20;
  opts.num_stub = 80;
  const Topology topo = generate_topology(opts, rng);

  // Use every stub plus every tier-1 as vantage points — rich tables like
  // Route Views'.
  std::vector<Asn> vantages = topo.stubs;
  vantages.insert(vantages.end(), topo.tier1.begin(), topo.tier1.end());
  const auto paths = dump_paths(topo.graph, vantages);
  const GaoResult result = infer_relationships(paths);

  const double acc = relationship_accuracy(topo.graph, result.graph);
  EXPECT_GT(acc, 0.75) << "Gao inference accuracy too low: " << acc;
}

TEST(Gao, ProviderCustomerEdgesDominantOnHierarchy) {
  acbm::stats::Rng rng(11);
  TopologyOptions opts;
  opts.num_tier1 = 4;
  opts.num_transit = 12;
  opts.num_stub = 40;
  opts.transit_peering_prob = 0.0;
  const Topology topo = generate_topology(opts, rng);
  const auto paths = dump_paths(topo.graph, topo.stubs);
  const GaoResult result = infer_relationships(paths);
  // The topology is almost all provider-customer edges (only the tier-1
  // clique peers), and the inference should reflect that.
  EXPECT_GT(result.provider_customer_edges, result.peer_edges);
  EXPECT_GT(result.provider_customer_edges, result.sibling_edges);
}

TEST(RelationshipScores, PerfectInferenceScoresOne) {
  AsGraph truth;
  truth.add_provider_customer(1, 2);
  truth.add_provider_customer(1, 3);
  truth.add_peering(2, 3);
  const RelationshipScores s = relationship_scores(truth, truth);
  EXPECT_DOUBLE_EQ(s.p2c_precision, 1.0);
  EXPECT_DOUBLE_EQ(s.p2c_recall, 1.0);
  EXPECT_DOUBLE_EQ(s.peer_precision, 1.0);
  EXPECT_DOUBLE_EQ(s.peer_recall, 1.0);
}

TEST(RelationshipScores, MisclassifiedPeerHurtsBothSides) {
  AsGraph truth;
  truth.add_provider_customer(1, 2);
  truth.add_peering(3, 4);
  AsGraph inferred;
  inferred.add_provider_customer(1, 2);
  inferred.add_provider_customer(3, 4);  // Peer misread as transit.
  const RelationshipScores s = relationship_scores(truth, inferred);
  EXPECT_DOUBLE_EQ(s.p2c_recall, 1.0);        // The real p2c edge found.
  EXPECT_DOUBLE_EQ(s.p2c_precision, 0.5);     // One of two inferred is right.
  EXPECT_DOUBLE_EQ(s.peer_recall, 0.0);
  EXPECT_DOUBLE_EQ(s.peer_precision, 0.0);
}

TEST(RelationshipScores, HighOnGeneratedTopology) {
  acbm::stats::Rng rng(15);
  TopologyOptions opts;
  opts.num_tier1 = 4;
  opts.num_transit = 15;
  opts.num_stub = 60;
  const Topology topo = generate_topology(opts, rng);
  std::vector<Asn> vantages = topo.stubs;
  vantages.insert(vantages.end(), topo.tier1.begin(), topo.tier1.end());
  const auto paths = dump_paths(topo.graph, vantages);
  const GaoResult result = infer_relationships(paths);

  // Score only against the edges the routing tables actually expose —
  // edges never traversed by any best path are unobservable by definition.
  AsGraph visible_truth;
  for (const auto& path : paths) {
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      const auto type = topo.graph.link_type(path[i], path[i + 1]);
      ASSERT_TRUE(type.has_value());
      visible_truth.add_edge(path[i], path[i + 1], *type);
    }
  }
  const RelationshipScores s =
      relationship_scores(visible_truth, result.graph);
  // Provider-customer edges dominate real topologies and must be found
  // reliably; peering (the tier-1 clique) is the harder class.
  EXPECT_GT(s.p2c_recall, 0.75);
  EXPECT_GT(s.p2c_precision, 0.75);
  EXPECT_GT(s.peer_recall, 0.3);
}

TEST(RelationshipAccuracy, PerfectAndEmptyCases) {
  AsGraph truth;
  truth.add_provider_customer(1, 2);
  truth.add_peering(2, 3);
  EXPECT_DOUBLE_EQ(relationship_accuracy(truth, truth), 1.0);

  AsGraph empty;
  EXPECT_DOUBLE_EQ(relationship_accuracy(empty, truth), 1.0);  // Vacuous.
  EXPECT_DOUBLE_EQ(relationship_accuracy(truth, empty), 0.0);
}

TEST(RelationshipAccuracy, OrientationMatters) {
  AsGraph truth;
  truth.add_provider_customer(1, 2);
  AsGraph flipped;
  flipped.add_provider_customer(2, 1);
  EXPECT_DOUBLE_EQ(relationship_accuracy(truth, flipped), 0.0);
}

}  // namespace
}  // namespace acbm::net
