#include "net/ip_space.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "net/topology.h"

namespace acbm::net {
namespace {

TEST(IpToAsnMap, EmptyMapFindsNothing) {
  const IpToAsnMap map;
  EXPECT_FALSE(map.lookup(Ipv4(10, 0, 0, 1)).has_value());
  EXPECT_EQ(map.prefix_count(), 0u);
}

TEST(IpToAsnMap, BasicLookup) {
  const IpToAsnMap map({{parse_prefix("10.0.0.0/16"), 100},
                        {parse_prefix("10.1.0.0/16"), 200}});
  EXPECT_EQ(map.lookup(Ipv4(10, 0, 5, 5)), 100u);
  EXPECT_EQ(map.lookup(Ipv4(10, 1, 255, 1)), 200u);
  EXPECT_FALSE(map.lookup(Ipv4(10, 2, 0, 1)).has_value());
  EXPECT_FALSE(map.lookup(Ipv4(9, 255, 255, 255)).has_value());
}

TEST(IpToAsnMap, LongestPrefixWins) {
  const IpToAsnMap map({{parse_prefix("10.0.0.0/8"), 100},
                        {parse_prefix("10.64.0.0/10"), 200},
                        {parse_prefix("10.64.32.0/24"), 300}});
  EXPECT_EQ(map.lookup(Ipv4(10, 0, 0, 1)), 100u);
  EXPECT_EQ(map.lookup(Ipv4(10, 64, 0, 1)), 200u);
  EXPECT_EQ(map.lookup(Ipv4(10, 64, 32, 9)), 300u);
  EXPECT_EQ(map.lookup(Ipv4(10, 64, 33, 9)), 200u);
}

TEST(IpToAsnMap, BoundaryAddresses) {
  const IpToAsnMap map({{parse_prefix("192.168.0.0/24"), 7}});
  EXPECT_EQ(map.lookup(Ipv4(192, 168, 0, 0)), 7u);
  EXPECT_EQ(map.lookup(Ipv4(192, 168, 0, 255)), 7u);
  EXPECT_FALSE(map.lookup(Ipv4(192, 168, 1, 0)).has_value());
  EXPECT_FALSE(map.lookup(Ipv4(192, 167, 255, 255)).has_value());
}

TEST(IpToAsnMap, ConflictingDuplicatePrefixThrows) {
  EXPECT_THROW(IpToAsnMap({{parse_prefix("10.0.0.0/16"), 1},
                           {parse_prefix("10.0.0.0/16"), 2}}),
               std::invalid_argument);
}

TEST(IpToAsnMap, PrefixesOfAndAddressCount) {
  const IpToAsnMap map({{parse_prefix("10.0.0.0/24"), 5},
                        {parse_prefix("10.1.0.0/24"), 5},
                        {parse_prefix("10.2.0.0/24"), 9}});
  EXPECT_EQ(map.prefixes_of(5).size(), 2u);
  EXPECT_EQ(map.address_count(5), 512u);
  EXPECT_EQ(map.address_count(9), 256u);
  EXPECT_EQ(map.address_count(12345), 0u);
}

TEST(AllocateAddressSpace, CoversEveryAs) {
  acbm::stats::Rng rng(3);
  TopologyOptions topo_opts;
  topo_opts.num_tier1 = 4;
  topo_opts.num_transit = 8;
  topo_opts.num_stub = 20;
  const Topology topo = generate_topology(topo_opts, rng);
  const IpToAsnMap map = allocate_address_space(topo.graph, {}, rng);
  for (Asn asn : topo.graph.ases()) {
    EXPECT_GT(map.address_count(asn), 0u) << "AS " << asn << " has no space";
  }
}

TEST(AllocateAddressSpace, BlocksDoNotOverlap) {
  acbm::stats::Rng rng(5);
  TopologyOptions topo_opts;
  topo_opts.num_tier1 = 3;
  topo_opts.num_transit = 6;
  topo_opts.num_stub = 12;
  const Topology topo = generate_topology(topo_opts, rng);
  const IpToAsnMap map = allocate_address_space(topo.graph, {}, rng);
  // Sequential carving: every address in every prefix resolves back to its
  // own AS (no overlap shadows another block).
  for (Asn asn : topo.graph.ases()) {
    for (const Prefix& prefix : map.prefixes_of(asn)) {
      EXPECT_EQ(map.lookup(prefix.first()), asn);
      EXPECT_EQ(map.lookup(prefix.last()), asn);
    }
  }
}

TEST(AllocateAddressSpace, HighDegreeAsesGetMoreSpace) {
  acbm::stats::Rng rng(7);
  TopologyOptions topo_opts;
  topo_opts.num_tier1 = 4;
  topo_opts.num_transit = 10;
  topo_opts.num_stub = 60;
  const Topology topo = generate_topology(topo_opts, rng);
  const IpToAsnMap map = allocate_address_space(topo.graph, {}, rng);
  // Compare the best-connected tier-1 against a stub.
  Asn biggest = topo.tier1.front();
  for (Asn t1 : topo.tier1) {
    if (topo.graph.degree(t1) > topo.graph.degree(biggest)) biggest = t1;
  }
  EXPECT_GE(map.address_count(biggest), map.address_count(topo.stubs.front()));
}

TEST(IpToAsnMap, SaveLoadRoundTrip) {
  acbm::stats::Rng rng(21);
  TopologyOptions topo_opts;
  topo_opts.num_tier1 = 3;
  topo_opts.num_transit = 5;
  topo_opts.num_stub = 12;
  const Topology topo = generate_topology(topo_opts, rng);
  const IpToAsnMap map = allocate_address_space(topo.graph, {}, rng);

  std::stringstream ss;
  map.save(ss);
  const IpToAsnMap back = IpToAsnMap::load(ss);
  EXPECT_EQ(back.prefix_count(), map.prefix_count());
  for (Asn asn : topo.graph.ases()) {
    EXPECT_EQ(back.address_count(asn), map.address_count(asn));
    for (const Prefix& prefix : map.prefixes_of(asn)) {
      EXPECT_EQ(back.lookup(prefix.first()), asn);
      EXPECT_EQ(back.lookup(prefix.last()), asn);
    }
  }
}

TEST(IpToAsnMap, LoadRejectsMalformedLines) {
  std::stringstream ss("10.0.0.0/16;5\n");
  EXPECT_THROW((void)IpToAsnMap::load(ss), std::invalid_argument);
}

// Property: the sorted-interval LPM agrees with a brute-force longest-match
// scan on random overlapping prefix sets.
class LpmReferenceProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LpmReferenceProperty, MatchesBruteForceScan) {
  acbm::stats::Rng rng(GetParam());
  std::vector<std::pair<Prefix, net::Asn>> entries;
  for (int i = 0; i < 60; ++i) {
    const auto len = static_cast<std::uint8_t>(rng.uniform_int(8, 28));
    const auto addr = static_cast<std::uint32_t>(
        rng.uniform_int(0, std::numeric_limits<std::int64_t>::max() & 0xFFFFFFFF));
    entries.emplace_back(Prefix(Ipv4(addr), len),
                         static_cast<net::Asn>(i + 1));
  }
  // Deduplicate identical prefixes (the map rejects conflicting dupes).
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) {
              if (a.first.network.value != b.first.network.value) {
                return a.first.network.value < b.first.network.value;
              }
              return a.first.length < b.first.length;
            });
  entries.erase(std::unique(entries.begin(), entries.end(),
                            [](const auto& a, const auto& b) {
                              return a.first == b.first;
                            }),
                entries.end());
  const IpToAsnMap map(entries);

  for (int probe = 0; probe < 500; ++probe) {
    const auto addr = Ipv4(static_cast<std::uint32_t>(
        rng.uniform_int(0, std::numeric_limits<std::int64_t>::max() & 0xFFFFFFFF)));
    // Brute force: longest containing prefix wins.
    std::optional<net::Asn> expected;
    int best_len = -1;
    for (const auto& [prefix, asn] : entries) {
      if (prefix.contains(addr) && static_cast<int>(prefix.length) > best_len) {
        best_len = prefix.length;
        expected = asn;
      }
    }
    EXPECT_EQ(map.lookup(addr), expected)
        << "address " << addr.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LpmReferenceProperty,
                         ::testing::Values(1u, 2u, 3u, 4u));

TEST(AllocateAddressSpace, RejectsBadOptions) {
  acbm::stats::Rng rng(9);
  AsGraph g;
  g.add_peering(1, 2);
  AllocationOptions opts;
  opts.prefix_length = 31;
  EXPECT_THROW((void)allocate_address_space(g, opts, rng),
               std::invalid_argument);
  opts.prefix_length = 20;
  opts.max_blocks_per_as = 0;
  EXPECT_THROW((void)allocate_address_space(g, opts, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace acbm::net
