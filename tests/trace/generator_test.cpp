#include "trace/generator.h"

#include <gtest/gtest.h>

#include <unordered_map>
#include <unordered_set>

#include "trace/world.h"

namespace acbm::trace {
namespace {

// Shared small world so the expensive generation runs once.
const World& small_world() {
  static const World world = build_world(small_world_options(11));
  return world;
}

TEST(Generator, ProducesAttacksForEveryFamily) {
  const Dataset& ds = small_world().dataset;
  ASSERT_EQ(ds.family_names().size(), 10u);
  for (std::uint32_t f = 0; f < 10; ++f) {
    EXPECT_FALSE(ds.attacks_of_family(f).empty())
        << "family " << ds.family_names()[f] << " generated no attacks";
  }
}

TEST(Generator, AttackFieldsAreWellFormed) {
  const World& world = small_world();
  const Dataset& ds = world.dataset;
  std::unordered_set<std::uint64_t> ids;
  const EpochSeconds window_end =
      ds.window_start() + 70 * 86400 + 86400;  // Chains may spill a bit.
  for (const Attack& attack : ds.attacks()) {
    EXPECT_TRUE(ids.insert(attack.id).second) << "duplicate DDoS id";
    EXPECT_GE(attack.start, ds.window_start());
    EXPECT_LT(attack.start, window_end);
    EXPECT_GE(attack.duration_s, 30.0);
    EXPECT_LE(attack.duration_s, 2.0 * 86400.0);
    EXPECT_FALSE(attack.bots.empty());
    // Target must resolve to its recorded AS.
    EXPECT_EQ(world.ip_map.lookup(attack.target_ip), attack.target_asn);
  }
}

TEST(Generator, BotsResolveToKnownAses) {
  const World& world = small_world();
  for (const Attack& attack : world.dataset.attacks()) {
    for (const net::Ipv4& bot : attack.bots) {
      EXPECT_TRUE(world.ip_map.lookup(bot).has_value());
    }
  }
}

TEST(Generator, TargetsAreStubAses) {
  const World& world = small_world();
  const std::unordered_set<net::Asn> stubs(world.topology.stubs.begin(),
                                           world.topology.stubs.end());
  for (const Attack& attack : world.dataset.attacks()) {
    EXPECT_TRUE(stubs.contains(attack.target_asn));
  }
}

TEST(Generator, SnapshotsArePlausible) {
  const Dataset& ds = small_world().dataset;
  ASSERT_FALSE(ds.snapshots().empty());
  for (const FamilySnapshot& snap : ds.snapshots()) {
    EXPECT_GT(snap.active_bots, 0u);
    EXPECT_LT(snap.family, 10u);
    EXPECT_GT(snap.ts, ds.window_start());
  }
}

TEST(Generator, SnapshotCountsCoverAttackMagnitudes) {
  // At the hour right after a large attack, the snapshot's trailing-24h
  // unique-bot count must be at least that attack's magnitude.
  const Dataset& ds = small_world().dataset;
  std::unordered_map<std::uint32_t,
                     std::unordered_map<EpochSeconds, std::size_t>>
      snap_index;
  for (const FamilySnapshot& snap : ds.snapshots()) {
    snap_index[snap.family][snap.ts] = snap.active_bots;
  }
  std::size_t checked = 0;
  for (const Attack& attack : ds.attacks()) {
    const EpochSeconds hour_after =
        ds.window_start() +
        ((attack.start - ds.window_start()) / 3600 + 1) * 3600;
    const auto fit = snap_index.find(attack.family);
    if (fit == snap_index.end()) continue;
    const auto sit = fit->second.find(hour_after);
    if (sit == fit->second.end()) continue;
    EXPECT_GE(sit->second, attack.magnitude());
    ++checked;
  }
  EXPECT_GT(checked, ds.size() / 2);
}

TEST(Generator, DeterministicForFixedSeed) {
  const World a = build_world(small_world_options(123));
  const World b = build_world(small_world_options(123));
  ASSERT_EQ(a.dataset.size(), b.dataset.size());
  for (std::size_t i = 0; i < a.dataset.size(); ++i) {
    EXPECT_EQ(a.dataset.attacks()[i].id, b.dataset.attacks()[i].id);
    EXPECT_EQ(a.dataset.attacks()[i].start, b.dataset.attacks()[i].start);
    EXPECT_EQ(a.dataset.attacks()[i].bots.size(),
              b.dataset.attacks()[i].bots.size());
  }
}

TEST(Generator, DifferentSeedsDiffer) {
  const World a = build_world(small_world_options(1));
  const World b = build_world(small_world_options(2));
  // Same sizes are possible but identical start sequences are not.
  bool differs = a.dataset.size() != b.dataset.size();
  if (!differs) {
    for (std::size_t i = 0; i < a.dataset.size(); ++i) {
      if (a.dataset.attacks()[i].start != b.dataset.attacks()[i].start) {
        differs = true;
        break;
      }
    }
  }
  EXPECT_TRUE(differs);
}

TEST(Generator, ActivityScaleShrinksVolume) {
  WorldOptions big_opts = small_world_options(5);
  WorldOptions small_opts = small_world_options(5);
  small_opts.generator.activity_scale = 0.25;
  const World big = build_world(big_opts);
  const World small = build_world(small_opts);
  EXPECT_LT(small.dataset.size(), big.dataset.size());
}

TEST(Generator, RejectsBadOptions) {
  acbm::stats::Rng rng(1);
  net::TopologyOptions topo_opts;
  topo_opts.num_tier1 = 3;
  topo_opts.num_transit = 4;
  topo_opts.num_stub = 10;
  const net::Topology topo = net::generate_topology(topo_opts, rng);
  const net::IpToAsnMap ip_map =
      net::allocate_address_space(topo.graph, {}, rng);
  GeneratorOptions opts;
  opts.days = 0;
  EXPECT_THROW((void)generate_dataset(topo, ip_map, opts, rng),
               std::invalid_argument);
  opts.days = 10;
  opts.families.clear();
  EXPECT_THROW((void)generate_dataset(topo, ip_map, opts, rng),
               std::invalid_argument);
  opts = GeneratorOptions{};
  opts.activity_scale = 0.0;
  EXPECT_THROW((void)generate_dataset(topo, ip_map, opts, rng),
               std::invalid_argument);
}

TEST(ActivityStats, MatchesHandComputedExample) {
  // Two attacks on day 0, one on day 2.
  std::vector<Attack> attacks;
  Attack a;
  a.id = 1;
  a.family = 0;
  a.target_asn = 1;
  a.bots = {net::Ipv4(1, 2, 3, 4)};
  a.start = 1000000000;
  attacks.push_back(a);
  a.id = 2;
  a.start = 1000000000 + 3600;
  attacks.push_back(a);
  a.id = 3;
  a.start = 1000000000 + 2 * 86400;
  attacks.push_back(a);
  const Dataset ds({"F"}, std::move(attacks), {}, 1000000000);
  const FamilyActivityStats stats = activity_stats(ds, 0);
  EXPECT_EQ(stats.active_days, 2u);
  EXPECT_DOUBLE_EQ(stats.avg_per_day, 1.5);
  EXPECT_NEAR(stats.cv, 0.4714, 1e-3);  // sd/mean of {2, 1}.
}

TEST(ActivityStats, EmptyFamilyIsZero) {
  const Dataset ds({"F"}, {}, {}, 0);
  const FamilyActivityStats stats = activity_stats(ds, 0);
  EXPECT_EQ(stats.active_days, 0u);
  EXPECT_DOUBLE_EQ(stats.avg_per_day, 0.0);
}

// Property over seeds: per-family statistics land near Table I targets on a
// full-length window. This is the central calibration claim of DESIGN.md §1.
class CalibrationProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CalibrationProperty, TableOneStatisticsReproduced) {
  WorldOptions opts = small_world_options(GetParam());
  opts.generator.days = 242;  // Full window so active-day targets apply.
  opts.generator.activity_scale = 1.0;
  const World world = build_world(opts);
  const auto& rows = table_one_reference();
  for (std::size_t f = 0; f < rows.size(); ++f) {
    const FamilyActivityStats stats =
        activity_stats(world.dataset, static_cast<std::uint32_t>(f));
    EXPECT_NEAR(stats.avg_per_day, rows[f].avg_per_day,
                0.22 * rows[f].avg_per_day + 0.4)
        << rows[f].name << " rate off target";
    EXPECT_NEAR(static_cast<double>(stats.active_days),
                static_cast<double>(rows[f].active_days),
                0.12 * static_cast<double>(rows[f].active_days) + 4.0)
        << rows[f].name << " active days off target";
    EXPECT_NEAR(stats.cv, rows[f].cv, 0.45 * rows[f].cv + 0.1)
        << rows[f].name << " CV off target";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CalibrationProperty,
                         ::testing::Values(101u, 202u));

// Invariant sweep across seeds and activity scales: well-formed attacks,
// resolvable sources, targets in stub ASes.
struct GeneratorCase {
  std::uint64_t seed;
  double scale;
};

class GeneratorInvariantSweep
    : public ::testing::TestWithParam<GeneratorCase> {};

TEST_P(GeneratorInvariantSweep, AttackInvariantsHold) {
  const GeneratorCase& c = GetParam();
  WorldOptions opts = small_world_options(c.seed);
  opts.generator.days = 40;
  opts.generator.activity_scale = c.scale;
  const World world = build_world(opts);
  ASSERT_GT(world.dataset.size(), 0u);
  const std::unordered_set<net::Asn> stubs(world.topology.stubs.begin(),
                                           world.topology.stubs.end());
  for (const Attack& attack : world.dataset.attacks()) {
    EXPECT_GE(attack.start, world.dataset.window_start());
    EXPECT_GE(attack.duration_s, 30.0);
    EXPECT_FALSE(attack.bots.empty());
    EXPECT_TRUE(stubs.contains(attack.target_asn));
    EXPECT_EQ(world.ip_map.lookup(attack.target_ip), attack.target_asn);
  }
  // Chronological ordering is a dataset invariant.
  for (std::size_t i = 1; i < world.dataset.size(); ++i) {
    EXPECT_LE(world.dataset.attacks()[i - 1].start,
              world.dataset.attacks()[i].start);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndScales, GeneratorInvariantSweep,
    ::testing::Values(GeneratorCase{1, 1.0}, GeneratorCase{2, 0.3},
                      GeneratorCase{3, 2.0}, GeneratorCase{4, 0.1},
                      GeneratorCase{5, 1.0}));

}  // namespace
}  // namespace acbm::trace
