#include "trace/dataset.h"

#include <gtest/gtest.h>

#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>
#include <unordered_set>

namespace acbm::trace {
namespace {

constexpr EpochSeconds kStart = 1343779200;  // 2012-08-01.

Attack make_attack(std::uint64_t id, std::uint32_t family, net::Asn asn,
                   EpochSeconds start, double duration = 600.0) {
  Attack a;
  a.id = id;
  a.family = family;
  a.target_ip = net::Ipv4(10, 0, 0, static_cast<std::uint8_t>(id));
  a.target_asn = asn;
  a.start = start;
  a.duration_s = duration;
  a.bots = {net::Ipv4(172, 16, 0, 1), net::Ipv4(172, 16, 0, 2)};
  return a;
}

Dataset make_dataset() {
  std::vector<Attack> attacks{
      make_attack(3, 0, 100, kStart + 7200),
      make_attack(1, 1, 200, kStart + 100),
      make_attack(2, 0, 100, kStart + 3600),
      make_attack(4, 1, 300, kStart + 90000),
  };
  return Dataset({"FamA", "FamB"}, std::move(attacks), {}, kStart);
}

TEST(DecomposeTimestamp, DayAndHourParts) {
  const DayHour a = decompose_timestamp(kStart, kStart);
  EXPECT_EQ(a.day, 0);
  EXPECT_EQ(a.hour, 0);
  const DayHour b = decompose_timestamp(kStart + 86400 + 3 * 3600 + 59, kStart);
  EXPECT_EQ(b.day, 1);
  EXPECT_EQ(b.hour, 3);
  const DayHour c = decompose_timestamp(kStart + 23 * 3600 + 3599, kStart);
  EXPECT_EQ(c.day, 0);
  EXPECT_EQ(c.hour, 23);
}

TEST(Dataset, SortsAttacksChronologically) {
  const Dataset ds = make_dataset();
  ASSERT_EQ(ds.size(), 4u);
  for (std::size_t i = 0; i + 1 < ds.size(); ++i) {
    EXPECT_LE(ds.attacks()[i].start, ds.attacks()[i + 1].start);
  }
  EXPECT_EQ(ds.attacks().front().id, 1u);
}

TEST(Dataset, RejectsUnknownFamilyIndex) {
  std::vector<Attack> attacks{make_attack(1, 7, 100, kStart)};
  EXPECT_THROW(Dataset({"OnlyFam"}, std::move(attacks), {}, kStart),
               std::invalid_argument);
}

TEST(Dataset, FamilyIndexLookup) {
  const Dataset ds = make_dataset();
  EXPECT_EQ(ds.family_index("FamA"), 0u);
  EXPECT_EQ(ds.family_index("FamB"), 1u);
  EXPECT_THROW((void)ds.family_index("Nope"), std::out_of_range);
}

TEST(Dataset, AttacksOfFamilyAreChronological) {
  const Dataset ds = make_dataset();
  const auto fam0 = ds.attacks_of_family(0);
  ASSERT_EQ(fam0.size(), 2u);
  EXPECT_LT(ds.attacks()[fam0[0]].start, ds.attacks()[fam0[1]].start);
  EXPECT_TRUE(ds.attacks_of_family(9).empty());
}

TEST(Dataset, AttacksOnAsn) {
  const Dataset ds = make_dataset();
  EXPECT_EQ(ds.attacks_on_asn(100).size(), 2u);
  EXPECT_EQ(ds.attacks_on_asn(200).size(), 1u);
  EXPECT_TRUE(ds.attacks_on_asn(999).empty());
}

TEST(Dataset, TargetAsnsOrderedByVolume) {
  const Dataset ds = make_dataset();
  const auto asns = ds.target_asns();
  ASSERT_EQ(asns.size(), 3u);
  EXPECT_EQ(asns.front(), 100u);  // Two attacks.
}

TEST(Dataset, SplitPreservesChronologyAndProportion) {
  const Dataset ds = make_dataset();
  const auto [train, test] = ds.split(0.75);
  EXPECT_EQ(train.size(), 3u);
  EXPECT_EQ(test.size(), 1u);
  EXPECT_LE(train.attacks().back().start, test.attacks().front().start);
  EXPECT_EQ(train.family_names(), ds.family_names());
  EXPECT_EQ(train.window_start(), ds.window_start());
}

TEST(Dataset, SplitRejectsBadFraction) {
  const Dataset ds = make_dataset();
  EXPECT_THROW((void)ds.split(0.0), std::invalid_argument);
  EXPECT_THROW((void)ds.split(1.0), std::invalid_argument);
}

TEST(Dataset, CsvRoundTrip) {
  const Dataset ds = make_dataset();
  std::stringstream ss;
  ds.save_csv(ss);
  const Dataset back = Dataset::load_csv(ss);
  ASSERT_EQ(back.size(), ds.size());
  EXPECT_EQ(back.family_names(), ds.family_names());
  EXPECT_EQ(back.window_start(), ds.window_start());
  for (std::size_t i = 0; i < ds.size(); ++i) {
    const Attack& a = ds.attacks()[i];
    const Attack& b = back.attacks()[i];
    EXPECT_EQ(a.id, b.id);
    EXPECT_EQ(a.family, b.family);
    EXPECT_EQ(a.target_ip, b.target_ip);
    EXPECT_EQ(a.target_asn, b.target_asn);
    EXPECT_EQ(a.start, b.start);
    EXPECT_DOUBLE_EQ(a.duration_s, b.duration_s);
    EXPECT_EQ(a.bots, b.bots);
  }
}

TEST(Dataset, LoadCsvRejectsGarbage) {
  std::stringstream ss("not a dataset\n");
  EXPECT_THROW((void)Dataset::load_csv(ss), std::invalid_argument);
}

TEST(DatasetValidation, CleanInputReportsClean) {
  std::vector<Attack> attacks{
      make_attack(1, 0, 100, kStart + 100),
      make_attack(2, 0, 100, kStart + 3600),
  };
  const Dataset ds = Dataset({"FamA"}, std::move(attacks), {}, kStart);
  EXPECT_TRUE(ds.validation().clean());
  EXPECT_EQ(ds.validation().total(), 0u);
}

TEST(DatasetValidation, CountsOutOfOrderTimestamps) {
  const Dataset ds = make_dataset();  // Constructed deliberately shuffled.
  EXPECT_FALSE(ds.validation().clean());
  EXPECT_GT(ds.validation().out_of_order, 0u);
  EXPECT_EQ(ds.validation().duplicate_ids, 0u);
  for (std::size_t i = 0; i + 1 < ds.size(); ++i) {
    EXPECT_LE(ds.attacks()[i].start, ds.attacks()[i + 1].start);
  }
}

TEST(DatasetValidation, RepairsNonfiniteAndNegativeDurations) {
  std::vector<Attack> attacks{
      make_attack(1, 0, 100, kStart + 100,
                  std::numeric_limits<double>::quiet_NaN()),
      make_attack(2, 0, 100, kStart + 200,
                  std::numeric_limits<double>::infinity()),
      make_attack(3, 0, 100, kStart + 300, -50.0),
      make_attack(4, 0, 100, kStart + 400, 600.0),
  };
  const Dataset ds = Dataset({"FamA"}, std::move(attacks), {}, kStart);
  EXPECT_EQ(ds.validation().nonfinite_durations, 2u);
  EXPECT_EQ(ds.validation().negative_durations, 1u);
  EXPECT_DOUBLE_EQ(ds.attacks()[0].duration_s, 0.0);
  EXPECT_DOUBLE_EQ(ds.attacks()[1].duration_s, 0.0);
  EXPECT_DOUBLE_EQ(ds.attacks()[2].duration_s, 0.0);
  EXPECT_DOUBLE_EQ(ds.attacks()[3].duration_s, 600.0);
}

TEST(DatasetValidation, ReassignsDuplicateIdsPastTheMaximum) {
  std::vector<Attack> attacks{
      make_attack(5, 0, 100, kStart + 100),
      make_attack(5, 0, 200, kStart + 3600),
      make_attack(9, 0, 300, kStart + 7200),
  };
  const Dataset ds = Dataset({"FamA"}, std::move(attacks), {}, kStart);
  EXPECT_EQ(ds.validation().duplicate_ids, 1u);
  // Chronologically first holder keeps the id; the later one gets a fresh
  // id past the maximum.
  EXPECT_EQ(ds.attacks()[0].id, 5u);
  EXPECT_EQ(ds.attacks()[1].id, 10u);
  EXPECT_EQ(ds.attacks()[2].id, 9u);
  std::unordered_set<std::uint64_t> ids;
  for (const Attack& a : ds.attacks()) {
    EXPECT_TRUE(ids.insert(a.id).second) << "duplicate id " << a.id;
  }
}

TEST(DatasetValidation, WriteListsOnlyNonzeroCounters) {
  std::vector<Attack> attacks{
      make_attack(1, 0, 100, kStart + 100, -1.0),
      make_attack(2, 0, 100, kStart + 200),
  };
  const Dataset ds = Dataset({"FamA"}, std::move(attacks), {}, kStart);
  std::ostringstream os;
  ds.validation().write(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("1 negative duration"), std::string::npos);
  EXPECT_EQ(text.find("non-finite"), std::string::npos);
  EXPECT_EQ(text.find("duplicate"), std::string::npos);
}

TEST(DatasetValidation, CorruptCsvRoundTripsThroughRepair) {
  // A dataset written with a NaN duration loads back repaired.
  std::vector<Attack> attacks{
      make_attack(1, 0, 100, kStart + 100,
                  std::numeric_limits<double>::quiet_NaN()),
      make_attack(2, 0, 100, kStart + 200),
  };
  const Dataset dirty = Dataset({"FamA"}, std::move(attacks), {}, kStart);
  EXPECT_EQ(dirty.validation().nonfinite_durations, 1u);
  std::stringstream ss;
  dirty.save_csv(ss);
  const Dataset back = Dataset::load_csv(ss);
  // The repair happened at construction, so the round trip is clean.
  EXPECT_TRUE(back.validation().clean());
  EXPECT_DOUBLE_EQ(back.attacks()[0].duration_s, 0.0);
}

TEST(Attack, EndAndMagnitude) {
  const Attack a = make_attack(1, 0, 100, kStart, 450.0);
  EXPECT_EQ(a.end(), kStart + 450);
  EXPECT_EQ(a.magnitude(), 2u);
}

}  // namespace
}  // namespace acbm::trace
