#include "trace/botnet.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "net/topology.h"

namespace acbm::trace {
namespace {

struct Fixture {
  net::Topology topo;
  net::IpToAsnMap ip_map;
  acbm::stats::Rng rng{7};

  Fixture() {
    net::TopologyOptions opts;
    opts.num_tier1 = 3;
    opts.num_transit = 6;
    opts.num_stub = 20;
    topo = net::generate_topology(opts, rng);
    ip_map = net::allocate_address_space(topo.graph, {}, rng);
  }
};

TEST(BotPool, BotsLiveInRequestedAses) {
  Fixture fx;
  const std::vector<net::Asn> sources(fx.topo.stubs.begin(),
                                      fx.topo.stubs.begin() + 5);
  const BotPool pool(500, sources, 1.0, fx.ip_map, fx.rng);
  EXPECT_EQ(pool.size(), 500u);
  const std::unordered_set<net::Asn> allowed(sources.begin(), sources.end());
  for (const Bot& bot : pool.bots()) {
    EXPECT_TRUE(allowed.contains(bot.asn));
    // The recorded ASN must agree with the LPM map.
    EXPECT_EQ(fx.ip_map.lookup(bot.ip), bot.asn);
  }
}

TEST(BotPool, ZipfSkewConcentratesBots) {
  Fixture fx;
  const std::vector<net::Asn> sources(fx.topo.stubs.begin(),
                                      fx.topo.stubs.begin() + 8);
  const BotPool pool(2000, sources, 1.5, fx.ip_map, fx.rng);
  std::unordered_map<net::Asn, std::size_t> counts;
  for (const Bot& bot : pool.bots()) ++counts[bot.asn];
  // First-listed AS must host clearly more bots than the last.
  EXPECT_GT(counts[sources.front()], 2 * counts[sources.back()] + 1);
}

TEST(BotPool, RejectsBadConstruction) {
  Fixture fx;
  const std::vector<net::Asn> sources{fx.topo.stubs.front()};
  EXPECT_THROW(BotPool(0, sources, 1.0, fx.ip_map, fx.rng),
               std::invalid_argument);
  EXPECT_THROW(BotPool(10, {}, 1.0, fx.ip_map, fx.rng), std::invalid_argument);
  EXPECT_THROW(BotPool(10, {999999}, 1.0, fx.ip_map, fx.rng),
               std::invalid_argument);
}

TEST(BotPool, ActiveFractionStaysInBounds) {
  Fixture fx;
  const BotPool pool(100, {fx.topo.stubs.front()}, 1.0, fx.ip_map, fx.rng);
  for (double day = 0; day < 120; day += 1.0) {
    const double f = pool.active_fraction(day, 30.0, 0.5, fx.rng);
    EXPECT_GE(f, 0.05);
    EXPECT_LE(f, 1.0);
  }
}

TEST(BotPool, ChurnCycleActuallyOscillates) {
  Fixture fx;
  const BotPool pool(100, {fx.topo.stubs.front()}, 1.0, fx.ip_map, fx.rng);
  // Peak of the sine (day ~ period/4) vs trough (day ~ 3*period/4).
  double low = 1.0;
  double high = 0.0;
  for (double day = 0; day < 30; day += 1.0) {
    const double f = pool.active_fraction(day, 30.0, 0.4, fx.rng);
    low = std::min(low, f);
    high = std::max(high, f);
  }
  EXPECT_GT(high - low, 0.2);
}

TEST(BotPool, DrawReturnsDistinctBots) {
  Fixture fx;
  const std::vector<net::Asn> sources(fx.topo.stubs.begin(),
                                      fx.topo.stubs.begin() + 4);
  const BotPool pool(300, sources, 1.0, fx.ip_map, fx.rng);
  const std::vector<Bot> drawn = pool.draw(100, 1.0, 0.0, fx.rng);
  EXPECT_EQ(drawn.size(), 100u);
  std::unordered_set<std::uint32_t> ips;
  for (const Bot& bot : drawn) ips.insert(bot.ip.value);
  // Distinct pool positions; IP collisions are possible but rare.
  EXPECT_GE(ips.size(), 95u);
}

TEST(BotPool, DrawClampsToActiveSubPool) {
  Fixture fx;
  const BotPool pool(100, {fx.topo.stubs.front()}, 1.0, fx.ip_map, fx.rng);
  const std::vector<Bot> drawn = pool.draw(1000, 0.2, 0.5, fx.rng);
  EXPECT_LE(drawn.size(), 20u);
  EXPECT_GE(drawn.size(), 1u);
}

TEST(BotPool, PoolIsOrderedByAs) {
  Fixture fx;
  const std::vector<net::Asn> sources(fx.topo.stubs.begin(),
                                      fx.topo.stubs.begin() + 5);
  const BotPool pool(400, sources, 1.0, fx.ip_map, fx.rng);
  for (std::size_t i = 1; i < pool.bots().size(); ++i) {
    EXPECT_LE(pool.bots()[i - 1].asn, pool.bots()[i].asn);
  }
}

TEST(BotPool, PhaseDriftRotatesAsMix) {
  // Draws at distant phases must differ more in AS composition than draws
  // at the same phase — the drift signal the spatial model exploits.
  Fixture fx;
  const std::vector<net::Asn> sources(fx.topo.stubs.begin(),
                                      fx.topo.stubs.begin() + 8);
  const BotPool pool(2000, sources, 0.8, fx.ip_map, fx.rng);
  const auto as_histogram = [&](double phase) {
    std::unordered_map<net::Asn, double> counts;
    const auto drawn = pool.draw(200, 0.3, phase, fx.rng);
    for (const Bot& bot : drawn) counts[bot.asn] += 1.0 / 200.0;
    return counts;
  };
  const auto tv = [](const std::unordered_map<net::Asn, double>& a,
                     const std::unordered_map<net::Asn, double>& b) {
    std::unordered_map<net::Asn, double> diff = a;
    for (const auto& [asn, v] : b) diff[asn] -= v;
    double acc = 0.0;
    for (const auto& [asn, v] : diff) acc += std::abs(v);
    return acc / 2.0;
  };
  const auto same1 = as_histogram(0.1);
  const auto same2 = as_histogram(0.1);
  const auto far1 = as_histogram(0.6);
  EXPECT_GT(tv(same1, far1), tv(same1, same2));
}

}  // namespace
}  // namespace acbm::trace
