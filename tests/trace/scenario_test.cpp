// The adversary-scenario catalog's determinism contract (SCENARIOS.md):
// paper-table1 is byte-identical to the pre-catalog generator, every other
// scenario is bit-identical at any thread count (1/3/8 here) even at
// millions-of-attacks scale, and parameter parsing rejects bad input with
// std::invalid_argument (CLI exit code 2).
#include "trace/scenario.h"

#include <gtest/gtest.h>

#include <cstring>
#include <sstream>
#include <stdexcept>
#include <string>

#include "core/parallel.h"
#include "trace/world.h"

namespace acbm::trace {
namespace {

// FNV-1a over every semantically meaningful field of the trace, so two
// datasets hash equal iff they are bit-identical (cheaper than holding
// three CSV renderings of a million-attack trace).
std::uint64_t dataset_hash(const Dataset& ds) {
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  for (const Attack& a : ds.attacks()) {
    mix(a.id);
    mix(static_cast<std::uint64_t>(a.start));
    std::uint64_t duration_bits;
    static_assert(sizeof duration_bits == sizeof a.duration_s);
    std::memcpy(&duration_bits, &a.duration_s, sizeof duration_bits);
    mix(duration_bits);
    mix(a.target_ip.value);
    mix(a.target_asn);
    mix(a.family);
    mix(a.bots.size());
    for (const net::Ipv4& bot : a.bots) mix(bot.value);
  }
  for (const FamilySnapshot& s : ds.snapshots()) {
    mix(static_cast<std::uint64_t>(s.ts));
    mix(s.family);
    mix(s.active_bots);
  }
  return h;
}

// A tuned world that crosses 1M attacks quickly: short window, high rate,
// small magnitudes (the per-bot draws dominate the generation cost), no
// snapshots. Thread-invariance at this scale exercises the day-sharded
// path through deep queues on every pool configuration.
WorldOptions million_attack_options(const char* scenario_name) {
  WorldOptions opts = small_world_options(7);
  const Scenario& scenario = apply_scenario(opts, scenario_name);
  (void)scenario;
  opts.generator.days = 48;
  opts.generator.activity_scale = 130.0;
  opts.generator.emit_snapshots = false;
  opts.generator.pool_override = 2000;
  for (FamilyProfile& profile : opts.generator.families) {
    profile.median_bots = 4.0;
    profile.bots_sigma = 0.3;
  }
  return opts;
}

TEST(ScenarioCatalog, LookupAndListing) {
  ASSERT_EQ(scenario_catalog().size(), 5u);
  EXPECT_STREQ(scenario_catalog().front().name, "paper-table1");
  EXPECT_NE(find_scenario("pulse-wave"), nullptr);
  EXPECT_NE(find_scenario("carpet-bomb"), nullptr);
  EXPECT_NE(find_scenario("multi-vector"), nullptr);
  EXPECT_NE(find_scenario("iot-botnet"), nullptr);
  EXPECT_EQ(find_scenario("no-such"), nullptr);
  const std::string listing = list_scenarios_text();
  for (const Scenario& scenario : scenario_catalog()) {
    EXPECT_NE(listing.find(scenario.name), std::string::npos)
        << scenario.name << " missing from --list-scenarios";
  }
}

TEST(ScenarioCatalog, PaperTable1IsByteIdenticalToPlainGenerator) {
  const World plain = build_world(small_world_options(11));
  WorldOptions with_catalog = small_world_options(11);
  const Scenario& scenario = apply_scenario(with_catalog, "paper-table1");
  EXPECT_FALSE(with_catalog.generator.shard_days) << scenario.name;
  const World catalog = build_world(with_catalog);
  std::ostringstream plain_csv;
  plain.dataset.save_csv(plain_csv);
  std::ostringstream catalog_csv;
  catalog.dataset.save_csv(catalog_csv);
  EXPECT_EQ(plain_csv.str(), catalog_csv.str());
}

TEST(ScenarioCatalog, ParamsApplyToGeneratorOptions) {
  WorldOptions opts = small_world_options(1);
  const Scenario& pulse = apply_scenario(opts, "pulse-wave");
  EXPECT_TRUE(opts.generator.scenario.pulse);
  EXPECT_TRUE(opts.generator.shard_days);
  apply_scenario_param(opts.generator, pulse, "pulse-duration=60");
  apply_scenario_param(opts.generator, pulse, "rotation=3");
  EXPECT_DOUBLE_EQ(opts.generator.scenario.pulse_duration_s, 60.0);
  EXPECT_EQ(opts.generator.scenario.pulse_rotation, 3u);

  WorldOptions iot_opts = small_world_options(1);
  const Scenario& iot = apply_scenario(iot_opts, "iot-botnet");
  EXPECT_TRUE(iot_opts.generator.scenario.iot);
  EXPECT_EQ(iot_opts.generator.pool_override, 65536u);
  apply_scenario_param(iot_opts.generator, iot, "pool=100000");
  apply_scenario_param(iot_opts.generator, iot, "peak-hour=9");
  EXPECT_EQ(iot_opts.generator.pool_override, 100000u);
  EXPECT_EQ(iot_opts.generator.scenario.iot_peak_hour, 9);
}

TEST(ScenarioCatalog, BadInputThrowsInvalidArgument) {
  WorldOptions opts = small_world_options(1);
  EXPECT_THROW(apply_scenario(opts, "no-such"), std::invalid_argument);
  const Scenario& pulse = apply_scenario(opts, "pulse-wave");
  EXPECT_THROW(apply_scenario_param(opts.generator, pulse, "nokey"),
               std::invalid_argument);
  EXPECT_THROW(apply_scenario_param(opts.generator, pulse, "=5"),
               std::invalid_argument);
  EXPECT_THROW(apply_scenario_param(opts.generator, pulse, "rotation="),
               std::invalid_argument);
  EXPECT_THROW(apply_scenario_param(opts.generator, pulse, "rotation=abc"),
               std::invalid_argument);
  EXPECT_THROW(apply_scenario_param(opts.generator, pulse, "rotation=999"),
               std::invalid_argument);
  EXPECT_THROW(apply_scenario_param(opts.generator, pulse, "spread=0.5"),
               std::invalid_argument);  // carpet-bomb's key, not pulse-wave's.
}

// Every catalog scenario except the frozen default day-shards its family
// streams; a million-attack trace must come out bit-identical at 1, 3, and
// 8 threads (the tentpole's ACBM_THREADS contract).
class ScenarioThreadInvariance : public ::testing::TestWithParam<const char*> {
 protected:
  void TearDown() override { core::set_num_threads(0); }
};

TEST_P(ScenarioThreadInvariance, MillionAttacksBitIdenticalAcrossThreads) {
  const WorldOptions opts = million_attack_options(GetParam());
  core::set_num_threads(1);
  const World base = build_world(opts);
  ASSERT_GE(base.dataset.size(), 1'000'000u)
      << GetParam() << " tuning fell short of a million attacks";
  const std::uint64_t expected = dataset_hash(base.dataset);
  for (std::size_t threads : {3u, 8u}) {
    core::set_num_threads(threads);
    const World world = build_world(opts);
    EXPECT_EQ(dataset_hash(world.dataset), expected)
        << GetParam() << " diverged at " << threads << " threads";
  }
}

INSTANTIATE_TEST_SUITE_P(Catalog, ScenarioThreadInvariance,
                         ::testing::Values("pulse-wave", "carpet-bomb",
                                           "multi-vector", "iot-botnet"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

// The sequential and day-sharded streams are intentionally different
// (SCENARIOS.md documents shard_days as part of each scenario's identity);
// guard that the flag actually changes the stream so a silent fallback to
// the sequential path cannot masquerade as thread-invariance.
TEST(ScenarioCatalog, DayShardingChangesTheStream) {
  WorldOptions sharded = small_world_options(5);
  (void)apply_scenario(sharded, "pulse-wave");
  WorldOptions sequential = sharded;
  sequential.generator.shard_days = false;
  EXPECT_NE(dataset_hash(build_world(sharded).dataset),
            dataset_hash(build_world(sequential).dataset));
}

}  // namespace
}  // namespace acbm::trace
