#include "trace/family.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace acbm::trace {
namespace {

TEST(Family, StandardFamiliesMatchTableOne) {
  const auto families = standard_families();
  const auto& rows = table_one_reference();
  ASSERT_EQ(families.size(), rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(families[i].name, rows[i].name);
    EXPECT_DOUBLE_EQ(families[i].attacks_per_day, rows[i].avg_per_day);
    EXPECT_EQ(families[i].active_days, rows[i].active_days);
    EXPECT_DOUBLE_EQ(families[i].daily_cv, rows[i].cv);
  }
}

TEST(Family, TableOneHasKnownExtremes) {
  // Sanity anchors straight from the paper: DirtJumper most active,
  // AldiBot least, YZF shortest-lived.
  const auto& rows = table_one_reference();
  double max_rate = 0.0;
  double min_rate = 1e9;
  std::size_t min_days = 1000;
  const char* most_active = nullptr;
  const char* least_active = nullptr;
  const char* shortest = nullptr;
  for (const auto& row : rows) {
    if (row.avg_per_day > max_rate) {
      max_rate = row.avg_per_day;
      most_active = row.name;
    }
    if (row.avg_per_day < min_rate) {
      min_rate = row.avg_per_day;
      least_active = row.name;
    }
    if (row.active_days < min_days) {
      min_days = row.active_days;
      shortest = row.name;
    }
  }
  EXPECT_STREQ(most_active, "DirtJumper");
  EXPECT_STREQ(least_active, "AldiBot");
  EXPECT_STREQ(shortest, "YZF");
}

TEST(Family, TruncatedPoissonRateInvertsConditionalMean) {
  for (double target : {1.29, 2.13, 5.93, 40.08, 144.30}) {
    const double lambda = truncated_poisson_rate(target);
    const double mean = lambda / (1.0 - std::exp(-lambda));
    EXPECT_NEAR(mean, target, 1e-6) << "target " << target;
    EXPECT_LE(lambda, target);  // Truncation inflates the mean.
  }
}

TEST(Family, TruncatedPoissonRateRejectsImpossibleMean) {
  // E[N | N >= 1] >= 1 always, so a target of 1.0 or less is unreachable.
  EXPECT_THROW((void)truncated_poisson_rate(1.0), std::invalid_argument);
  EXPECT_THROW((void)truncated_poisson_rate(0.5), std::invalid_argument);
}

TEST(Family, ModulationSigmaMatchesCvFormula) {
  // CV^2 = 1/m + (exp(s^2) - 1) must invert.
  const double m = 144.30;
  const double cv = 0.77;
  const double s = modulation_sigma(m, cv);
  const double reconstructed = std::sqrt(1.0 / m + std::expm1(s * s));
  EXPECT_NEAR(reconstructed, cv, 1e-9);
}

TEST(Family, ModulationSigmaZeroWhenPoissonNoiseSuffices) {
  // AldiBot: mean 1.29 => Poisson CV alone is 0.88 > 0.77 target.
  EXPECT_DOUBLE_EQ(modulation_sigma(1.29, 0.77), 0.0);
}

TEST(Family, ModulationSigmaRejectsBadInput) {
  EXPECT_THROW((void)modulation_sigma(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW((void)modulation_sigma(1.0, -0.1), std::invalid_argument);
}

TEST(Family, ProfilesHaveDistinctPeakHours) {
  // Family identity must be recoverable from launch times; at least the
  // high-volume families need disjoint peaks.
  const auto families = standard_families();
  const auto find = [&](const char* name) {
    for (const auto& f : families) {
      if (f.name == name) return f;
    }
    throw std::logic_error("family not found");
  };
  const auto dj = find("DirtJumper");
  const auto pandora = find("Pandora");
  const auto be = find("BlackEnergy");
  for (int h : dj.peak_hours) {
    for (int p : pandora.peak_hours) EXPECT_NE(h, p);
  }
  // Pandora {11,12,13} and BlackEnergy {13,14,15} may share one edge hour;
  // the sets just must not be identical.
  EXPECT_NE(pandora.peak_hours, be.peak_hours);
}

TEST(Family, AllProfilesAreInternallyValid) {
  for (const auto& f : standard_families()) {
    EXPECT_FALSE(f.name.empty());
    EXPECT_GT(f.attacks_per_day, 0.0);
    EXPECT_GT(f.active_days, 0u);
    EXPECT_GE(f.daily_cv, 0.0);
    EXPECT_GT(f.median_bots, 0.0);
    EXPECT_GT(f.median_duration_s, 0.0);
    EXPECT_GT(f.source_as_count, 0u);
    EXPECT_GE(f.peak_share, 0.0);
    EXPECT_LE(f.peak_share, 1.0);
    EXPECT_GE(f.chain_prob, 0.0);
    EXPECT_LT(f.chain_prob, 1.0);
    EXPECT_GT(f.activity_ar, -1.0);
    EXPECT_LT(f.activity_ar, 1.0);
    for (int h : f.peak_hours) {
      EXPECT_GE(h, 0);
      EXPECT_LT(h, 24);
    }
  }
}

}  // namespace
}  // namespace acbm::trace
