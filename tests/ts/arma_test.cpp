#include "ts/arma.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "stats/descriptive.h"
#include "stats/metrics.h"
#include "stats/rng.h"

namespace acbm::ts {
namespace {

std::vector<double> simulate_arma(std::span<const double> phi,
                                  std::span<const double> theta,
                                  double intercept, double sigma,
                                  std::size_t n, std::uint64_t seed) {
  acbm::stats::Rng rng(seed);
  const std::size_t burn = 200;
  std::vector<double> xs;
  std::vector<double> es;
  for (std::size_t t = 0; t < n + burn; ++t) {
    const double e = rng.normal(0.0, sigma);
    double v = intercept + e;
    for (std::size_t i = 0; i < phi.size(); ++i) {
      if (t > i) v += phi[i] * xs[t - 1 - i];
    }
    for (std::size_t j = 0; j < theta.size(); ++j) {
      if (t > j) v += theta[j] * es[t - 1 - j];
    }
    xs.push_back(v);
    es.push_back(e);
  }
  return {xs.end() - static_cast<std::ptrdiff_t>(n), xs.end()};
}

TEST(ArmaModel, PureArFitMatchesTruth) {
  const auto xs = simulate_arma(std::vector<double>{0.7}, {}, 0.5, 1.0, 3000, 3);
  ArmaModel m({1, 0});
  m.fit(xs);
  ASSERT_EQ(m.phi().size(), 1u);
  EXPECT_NEAR(m.phi()[0], 0.7, 0.05);
  EXPECT_NEAR(m.intercept(), 0.5, 0.15);
  EXPECT_TRUE(m.theta().empty());
}

TEST(ArmaModel, Arma11RecoversCoefficients) {
  const auto xs = simulate_arma(std::vector<double>{0.6},
                                std::vector<double>{0.4}, 0.0, 1.0, 8000, 5);
  ArmaModel m({1, 1});
  m.fit(xs);
  EXPECT_NEAR(m.phi()[0], 0.6, 0.1);
  EXPECT_NEAR(m.theta()[0], 0.4, 0.12);
  EXPECT_NEAR(m.sigma2(), 1.0, 0.15);
}

TEST(ArmaModel, PureMaRecoversTheta) {
  const auto xs = simulate_arma({}, std::vector<double>{0.5}, 0.0, 1.0, 8000, 7);
  ArmaModel m({0, 1});
  m.fit(xs);
  EXPECT_NEAR(m.theta()[0], 0.5, 0.1);
}

TEST(ArmaModel, ShortSeriesThrows) {
  const std::vector<double> xs{1.0, 2.0, 3.0};
  ArmaModel m({2, 2});
  EXPECT_THROW(m.fit(xs), std::invalid_argument);
}

TEST(ArmaModel, UnfittedUseThrows) {
  ArmaModel m({1, 0});
  const std::vector<double> xs{1.0, 2.0};
  EXPECT_THROW((void)m.forecast(xs, 1), std::logic_error);
  EXPECT_THROW((void)m.innovations(xs), std::logic_error);
  EXPECT_THROW((void)m.aic(), std::logic_error);
}

TEST(ArmaModel, ForecastConvergesToUnconditionalMean) {
  const auto xs = simulate_arma(std::vector<double>{0.5}, {}, 2.0, 1.0, 3000, 9);
  ArmaModel m({1, 0});
  m.fit(xs);
  // Unconditional mean of AR(1): c / (1 - phi) = 2 / 0.5 = 4.
  const std::vector<double> f = m.forecast(xs, 200);
  EXPECT_NEAR(f.back(), 4.0, 0.4);
}

TEST(ArmaModel, ForecastZeroHorizonIsEmpty) {
  const auto xs = simulate_arma(std::vector<double>{0.5}, {}, 0.0, 1.0, 500, 9);
  ArmaModel m({1, 0});
  m.fit(xs);
  EXPECT_TRUE(m.forecast(xs, 0).empty());
}

TEST(ArmaModel, ForecastOneMatchesForecastHead) {
  const auto xs = simulate_arma(std::vector<double>{0.4},
                                std::vector<double>{0.3}, 1.0, 1.0, 2000, 11);
  ArmaModel m({1, 1});
  m.fit(xs);
  EXPECT_DOUBLE_EQ(m.forecast_one(xs), m.forecast(xs, 3).front());
}

TEST(ArmaModel, InnovationsHaveNearZeroMean) {
  const auto xs = simulate_arma(std::vector<double>{0.6},
                                std::vector<double>{0.2}, 0.5, 1.0, 5000, 13);
  ArmaModel m({1, 1});
  m.fit(xs);
  const std::vector<double> e = m.innovations(xs);
  EXPECT_NEAR(acbm::stats::mean(e), 0.0, 0.05);
}

TEST(ArmaModel, OneStepPredictionsBeatMeanBaseline) {
  const auto xs = simulate_arma(std::vector<double>{0.8}, {}, 0.0, 1.0, 2000, 15);
  ArmaModel m({1, 0});
  const std::size_t split = 1600;
  m.fit(std::span<const double>(xs).subspan(0, split));
  const std::vector<double> preds = m.one_step_predictions(xs, split);
  const std::vector<double> truth(xs.begin() + split, xs.end());
  std::vector<double> mean_pred(truth.size(),
                                acbm::stats::mean(std::span<const double>(xs).subspan(0, split)));
  EXPECT_LT(acbm::stats::rmse(truth, preds),
            0.75 * acbm::stats::rmse(truth, mean_pred));
}

TEST(ArmaModel, OneStepPredictionsBadStartThrows) {
  const auto xs = simulate_arma(std::vector<double>{0.5}, {}, 0.0, 1.0, 100, 17);
  ArmaModel m({1, 0});
  m.fit(xs);
  EXPECT_THROW((void)m.one_step_predictions(xs, 0), std::invalid_argument);
  EXPECT_THROW((void)m.one_step_predictions(xs, xs.size() + 1),
               std::invalid_argument);
}

TEST(ArmaModel, AicPenalizesExtraParametersOnWhiteNoise) {
  acbm::stats::Rng rng(19);
  std::vector<double> noise(3000);
  for (double& v : noise) v = rng.normal();
  ArmaModel small({1, 0});
  ArmaModel big({3, 2});
  small.fit(noise);
  big.fit(noise);
  // On pure noise both fit equally badly, so AIC should favor fewer params.
  EXPECT_LT(small.aic(), big.aic());
  EXPECT_LT(small.bic(), big.bic());
}

TEST(ArmaModel, PsiWeightsForAr1AreGeometric) {
  const auto xs = simulate_arma(std::vector<double>{0.6}, {}, 0.0, 1.0, 5000, 31);
  ArmaModel m({1, 0});
  m.fit(xs);
  const double phi = m.phi()[0];
  const auto psi = m.psi_weights(5);
  ASSERT_EQ(psi.size(), 5u);
  EXPECT_DOUBLE_EQ(psi[0], 1.0);
  for (std::size_t j = 1; j < 5; ++j) {
    EXPECT_NEAR(psi[j], std::pow(phi, static_cast<double>(j)), 1e-12);
  }
}

TEST(ArmaModel, ForecastVarianceGrowsToUnconditional) {
  const auto xs = simulate_arma(std::vector<double>{0.7}, {}, 0.0, 1.0, 8000, 33);
  ArmaModel m({1, 0});
  m.fit(xs);
  // h=1 variance is sigma^2; as h grows it approaches the process variance
  // sigma^2 / (1 - phi^2).
  EXPECT_NEAR(m.forecast_variance(1), m.sigma2(), 1e-12);
  const double phi = m.phi()[0];
  const double unconditional = m.sigma2() / (1.0 - phi * phi);
  EXPECT_NEAR(m.forecast_variance(200), unconditional, 0.01 * unconditional);
  // Monotone non-decreasing in h.
  double prev = 0.0;
  for (std::size_t h = 1; h <= 20; ++h) {
    const double v = m.forecast_variance(h);
    EXPECT_GE(v, prev - 1e-12);
    prev = v;
  }
}

TEST(ArmaModel, Ma1ForecastVarianceSaturatesAtLag2) {
  const auto xs = simulate_arma({}, std::vector<double>{0.5}, 0.0, 1.0, 8000, 35);
  ArmaModel m({0, 1});
  m.fit(xs);
  const double theta = m.theta()[0];
  EXPECT_NEAR(m.forecast_variance(1), m.sigma2(), 1e-12);
  const double saturated = m.sigma2() * (1.0 + theta * theta);
  EXPECT_NEAR(m.forecast_variance(2), saturated, 1e-12);
  EXPECT_NEAR(m.forecast_variance(10), saturated, 1e-12);
}

TEST(ArmaModel, ForecastVarianceRejectsZeroHorizon) {
  const auto xs = simulate_arma(std::vector<double>{0.5}, {}, 0.0, 1.0, 500, 37);
  ArmaModel m({1, 0});
  m.fit(xs);
  EXPECT_THROW((void)m.forecast_variance(0), std::invalid_argument);
}

// Property: one-step predictions only depend on the past. Changing future
// values must not change earlier predictions.
class CausalityProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CausalityProperty, PredictionsAreCausal) {
  auto xs = simulate_arma(std::vector<double>{0.5}, std::vector<double>{0.3},
                          0.0, 1.0, 400, GetParam());
  ArmaModel m({1, 1});
  m.fit(xs);
  const std::size_t start = 300;
  const std::vector<double> before = m.one_step_predictions(xs, start);
  auto mutated = xs;
  mutated.back() += 1000.0;  // Tamper with the last observation only.
  const std::vector<double> after = m.one_step_predictions(mutated, start);
  ASSERT_EQ(before.size(), after.size());
  // All predictions except the final one (which still only uses values
  // *before* the tampered point) must be identical.
  for (std::size_t i = 0; i + 1 < before.size(); ++i) {
    EXPECT_DOUBLE_EQ(before[i], after[i]);
  }
  EXPECT_DOUBLE_EQ(before.back(), after.back());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CausalityProperty,
                         ::testing::Values(21u, 22u, 23u));

// Parameter-recovery sweep across the (phi, theta) stationary region.
class ArmaRecoverySweep
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(ArmaRecoverySweep, RecoversCoefficientsAcrossParameterSpace) {
  const auto [phi, theta] = GetParam();
  const auto xs = simulate_arma(std::vector<double>{phi},
                                std::vector<double>{theta}, 0.0, 1.0, 12000,
                                777);
  ArmaModel m({1, 1});
  m.fit(xs);
  EXPECT_NEAR(m.phi()[0], phi, 0.12) << "phi=" << phi << " theta=" << theta;
  EXPECT_NEAR(m.theta()[0], theta, 0.15)
      << "phi=" << phi << " theta=" << theta;
}

INSTANTIATE_TEST_SUITE_P(
    StationaryGrid, ArmaRecoverySweep,
    ::testing::Values(std::make_pair(-0.6, 0.3), std::make_pair(-0.3, -0.4),
                      std::make_pair(0.0, 0.5), std::make_pair(0.3, 0.4),
                      std::make_pair(0.5, -0.3), std::make_pair(0.7, 0.2),
                      std::make_pair(0.85, -0.5)));

}  // namespace
}  // namespace acbm::ts
