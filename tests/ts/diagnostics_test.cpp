#include "ts/diagnostics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "stats/rng.h"
#include "ts/arma.h"

namespace acbm::ts {
namespace {

TEST(ChiSquaredSf, KnownValues) {
  // P(X > k) for X ~ chi2(k) is around 0.4-0.45 for small k.
  EXPECT_NEAR(chi_squared_sf(1.0, 1.0), 0.3173, 1e-3);
  EXPECT_NEAR(chi_squared_sf(2.0, 2.0), std::exp(-1.0), 1e-6);
  // chi2(2) has SF exp(-x/2).
  EXPECT_NEAR(chi_squared_sf(5.0, 2.0), std::exp(-2.5), 1e-6);
  EXPECT_DOUBLE_EQ(chi_squared_sf(0.0, 3.0), 1.0);
  EXPECT_DOUBLE_EQ(chi_squared_sf(-1.0, 3.0), 1.0);
}

TEST(ChiSquaredSf, MonotoneDecreasingInX) {
  double prev = 1.0;
  for (double x = 0.5; x < 30.0; x += 0.5) {
    const double cur = chi_squared_sf(x, 5.0);
    EXPECT_LE(cur, prev + 1e-12);
    prev = cur;
  }
}

TEST(ChiSquaredSf, RejectsBadDof) {
  EXPECT_THROW((void)chi_squared_sf(1.0, 0.0), std::invalid_argument);
}

TEST(LjungBox, WhiteNoiseIsNotRejected) {
  acbm::stats::Rng rng(3);
  std::vector<double> noise(2000);
  for (double& v : noise) v = rng.normal();
  const LjungBoxResult result = ljung_box(noise, 10);
  EXPECT_EQ(result.dof, 10u);
  // White noise: p-value should usually be comfortably above 0.01.
  EXPECT_GT(result.p_value, 0.01);
}

TEST(LjungBox, StronglyCorrelatedSeriesIsRejected) {
  acbm::stats::Rng rng(5);
  std::vector<double> xs{0.0};
  for (int t = 1; t < 2000; ++t) xs.push_back(0.9 * xs.back() + rng.normal());
  const LjungBoxResult result = ljung_box(xs, 10);
  EXPECT_LT(result.p_value, 1e-6);
  EXPECT_GT(result.statistic, 100.0);
}

TEST(LjungBox, ArmaResidualsPassWhereRawSeriesFails) {
  // Fit ARMA on an AR(1) series: the residuals must look like white noise
  // even though the raw series does not.
  acbm::stats::Rng rng(7);
  std::vector<double> xs{0.0};
  for (int t = 1; t < 3000; ++t) xs.push_back(0.7 * xs.back() + rng.normal());
  ArmaModel model({1, 0});
  model.fit(xs);
  std::vector<double> resid = model.innovations(xs);
  resid.erase(resid.begin(), resid.begin() + 10);  // Drop burn-in.

  const LjungBoxResult raw = ljung_box(xs, 10);
  const LjungBoxResult fitted = ljung_box(resid, 10, /*fitted_params=*/1);
  EXPECT_LT(raw.p_value, 1e-6);
  EXPECT_GT(fitted.p_value, 0.005);
}

TEST(LjungBox, RejectsDegenerateArguments) {
  std::vector<double> xs(20, 1.0);
  EXPECT_THROW((void)ljung_box(xs, 0), std::invalid_argument);
  EXPECT_THROW((void)ljung_box(xs, 19), std::invalid_argument);
  EXPECT_THROW((void)ljung_box(xs, 5, 5), std::invalid_argument);
}

}  // namespace
}  // namespace acbm::ts
