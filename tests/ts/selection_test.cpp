#include "ts/selection.h"

#include <gtest/gtest.h>

#include <vector>

#include "stats/rng.h"

namespace acbm::ts {
namespace {

TEST(AutoArima, FindsLowOrderForAr1) {
  acbm::stats::Rng rng(43);
  std::vector<double> xs;
  double prev = 0.0;
  for (int t = 0; t < 2000; ++t) {
    prev = 0.7 * prev + rng.normal();
    xs.push_back(prev);
  }
  const auto result = auto_arima(xs, {.max_p = 3, .max_d = 1, .max_q = 2});
  ASSERT_TRUE(result.has_value());
  // The chosen model should not over-difference a stationary series.
  EXPECT_EQ(result->order.d, 0u);
  EXPECT_TRUE(result->model.fitted());
  EXPECT_GE(result->order.p + result->order.q, 1u);
}

TEST(AutoArima, ReturnsNulloptOnHopelesslyShortSeries) {
  const std::vector<double> xs{1.0, 2.0};
  const auto result = auto_arima(xs, {.max_p = 2, .max_d = 1, .max_q = 2});
  EXPECT_FALSE(result.has_value());
}

TEST(AutoArima, BicSelectsSparserModelThanAicOnNoise) {
  acbm::stats::Rng rng(47);
  std::vector<double> noise(1500);
  for (double& v : noise) v = rng.normal();
  const auto aic = auto_arima(noise, {.max_p = 3, .max_d = 0, .max_q = 2,
                                      .criterion = Criterion::kAic});
  const auto bic = auto_arima(noise, {.max_p = 3, .max_d = 0, .max_q = 2,
                                      .criterion = Criterion::kBic});
  ASSERT_TRUE(aic.has_value());
  ASSERT_TRUE(bic.has_value());
  EXPECT_LE(bic->order.p + bic->order.q, aic->order.p + aic->order.q);
}

TEST(AutoArima, WinningModelIsUsableForForecasting) {
  acbm::stats::Rng rng(53);
  std::vector<double> xs;
  double prev = 5.0;
  for (int t = 0; t < 800; ++t) {
    prev = 2.0 + 0.6 * prev + rng.normal();
    xs.push_back(prev);
  }
  const auto result = auto_arima(xs);
  ASSERT_TRUE(result.has_value());
  const std::vector<double> f = result->model.forecast(xs, 5);
  EXPECT_EQ(f.size(), 5u);
  // AR(1) with c=2, phi=0.6 has mean 5; forecasts should be in a sane range.
  for (double v : f) {
    EXPECT_GT(v, 0.0);
    EXPECT_LT(v, 10.0);
  }
}

}  // namespace
}  // namespace acbm::ts
