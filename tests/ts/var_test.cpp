#include "ts/var.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "stats/metrics.h"
#include "stats/rng.h"
#include "ts/arma.h"

namespace acbm::ts {
namespace {

// Two coupled series: y follows x with a lag — exactly the structure a VAR
// captures and independent ARs cannot.
std::vector<std::vector<double>> simulate_coupled(std::size_t n,
                                                  std::uint64_t seed) {
  acbm::stats::Rng rng(seed);
  std::vector<double> x{0.0};
  std::vector<double> y{0.0};
  for (std::size_t t = 1; t < n; ++t) {
    x.push_back(0.6 * x[t - 1] + rng.normal());
    y.push_back(0.8 * x[t - 1] + 0.1 * y[t - 1] + rng.normal(0.0, 0.3));
  }
  return {x, y};
}

TEST(VarModel, RejectsDegenerateConstruction) {
  EXPECT_THROW(VarModel{0}, std::invalid_argument);
}

TEST(VarModel, FitValidation) {
  VarModel model(1);
  EXPECT_THROW(model.fit({}), std::invalid_argument);
  EXPECT_THROW(model.fit({{1.0, 2.0}, {1.0}}), std::invalid_argument);
  EXPECT_THROW(model.fit({{1.0, 2.0, 3.0}}), std::invalid_argument);
}

TEST(VarModel, RecoversCrossCoefficients) {
  const auto series = simulate_coupled(6000, 3);
  VarModel model(1);
  model.fit(series);
  ASSERT_TRUE(model.fitted());
  EXPECT_EQ(model.dimension(), 2u);
  // Equation for x: depends on its own lag, not on y.
  EXPECT_NEAR(model.coefficient(0, 0, 1), 0.6, 0.05);
  EXPECT_NEAR(model.coefficient(0, 1, 1), 0.0, 0.05);
  // Equation for y: strong dependence on lagged x.
  EXPECT_NEAR(model.coefficient(1, 0, 1), 0.8, 0.05);
  EXPECT_NEAR(model.coefficient(1, 1, 1), 0.1, 0.05);
}

TEST(VarModel, BeatsUnivariateArOnCoupledSeries) {
  const auto series = simulate_coupled(4000, 7);
  const std::size_t split = 3200;
  std::vector<std::vector<double>> train(2);
  for (std::size_t v = 0; v < 2; ++v) {
    train[v].assign(series[v].begin(),
                    series[v].begin() + static_cast<std::ptrdiff_t>(split));
  }

  VarModel var(1);
  var.fit(train);
  const auto var_preds = var.one_step_predictions(series, 1, split);

  ArmaModel ar({1, 0});
  ar.fit(train[1]);
  const auto ar_preds = ar.one_step_predictions(series[1], split);

  const std::vector<double> truth(series[1].begin() + split, series[1].end());
  const double var_rmse = acbm::stats::rmse(truth, var_preds);
  const double ar_rmse = acbm::stats::rmse(truth, ar_preds);
  EXPECT_LT(var_rmse, 0.7 * ar_rmse)
      << "VAR " << var_rmse << " vs AR " << ar_rmse;
}

TEST(VarModel, ForecastShapeAndConvergence) {
  const auto series = simulate_coupled(3000, 11);
  VarModel model(2);
  model.fit(series);
  const auto f = model.forecast(series, 50);
  ASSERT_EQ(f.size(), 2u);
  EXPECT_EQ(f[0].size(), 50u);
  EXPECT_EQ(f[1].size(), 50u);
  // Stationary system: far forecasts settle near the series means (0).
  EXPECT_NEAR(f[0].back(), 0.0, 0.5);
  EXPECT_NEAR(f[1].back(), 0.0, 0.5);
}

TEST(VarModel, PredictionsAreCausal) {
  auto series = simulate_coupled(1000, 13);
  VarModel model(1);
  model.fit(series);
  const auto before = model.one_step_predictions(series, 0, 900);
  series[0].back() += 1000.0;
  series[1].back() -= 1000.0;
  const auto after = model.one_step_predictions(series, 0, 900);
  ASSERT_EQ(before.size(), after.size());
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_DOUBLE_EQ(before[i], after[i]);
  }
}

TEST(VarModel, AccessorValidation) {
  const auto series = simulate_coupled(500, 17);
  VarModel model(1);
  model.fit(series);
  EXPECT_THROW((void)model.coefficient(2, 0, 1), std::invalid_argument);
  EXPECT_THROW((void)model.coefficient(0, 0, 0), std::invalid_argument);
  EXPECT_THROW((void)model.coefficient(0, 0, 2), std::invalid_argument);
  EXPECT_THROW((void)model.intercept(5), std::invalid_argument);
  VarModel unfitted(1);
  EXPECT_THROW((void)unfitted.coefficient(0, 0, 1), std::logic_error);
  EXPECT_THROW((void)unfitted.forecast(series, 1), std::logic_error);
}

}  // namespace
}  // namespace acbm::ts
