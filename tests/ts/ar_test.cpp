#include "ts/ar.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "stats/rng.h"
#include "ts/pacf.h"

namespace acbm::ts {
namespace {

std::vector<double> simulate_ar(std::span<const double> phi, double intercept,
                                double sigma, std::size_t n,
                                std::uint64_t seed) {
  acbm::stats::Rng rng(seed);
  std::vector<double> xs(phi.size(), 0.0);
  for (std::size_t t = phi.size(); t < n + 200; ++t) {
    double v = intercept + rng.normal(0.0, sigma);
    for (std::size_t i = 0; i < phi.size(); ++i) {
      v += phi[i] * xs[t - 1 - i];
    }
    xs.push_back(v);
  }
  // Drop burn-in so the series is approximately stationary.
  return {xs.end() - static_cast<std::ptrdiff_t>(n), xs.end()};
}

TEST(FitArLeastSquares, RecoversAr1Coefficient) {
  const std::vector<double> phi{0.7};
  const auto xs = simulate_ar(phi, 1.0, 1.0, 3000, 42);
  const ArFit fit = fit_ar_least_squares(xs, 1);
  ASSERT_EQ(fit.order(), 1u);
  EXPECT_NEAR(fit.phi[0], 0.7, 0.05);
  EXPECT_NEAR(fit.intercept, 1.0, 0.15);
  EXPECT_NEAR(fit.sigma2, 1.0, 0.1);
}

TEST(FitArLeastSquares, RecoversAr2Coefficients) {
  const std::vector<double> phi{0.5, -0.3};
  const auto xs = simulate_ar(phi, 0.0, 1.0, 4000, 7);
  const ArFit fit = fit_ar_least_squares(xs, 2);
  EXPECT_NEAR(fit.phi[0], 0.5, 0.05);
  EXPECT_NEAR(fit.phi[1], -0.3, 0.05);
}

TEST(FitArYuleWalker, AgreesWithLeastSquaresOnLongSeries) {
  const std::vector<double> phi{0.6, 0.2};
  const auto xs = simulate_ar(phi, 0.0, 1.0, 5000, 11);
  const ArFit ls = fit_ar_least_squares(xs, 2);
  const ArFit yw = fit_ar_yule_walker(xs, 2);
  EXPECT_NEAR(ls.phi[0], yw.phi[0], 0.05);
  EXPECT_NEAR(ls.phi[1], yw.phi[1], 0.05);
}

TEST(FitAr, OrderZeroIsMeanModel) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0, 5.0, 6.0};
  const ArFit fit = fit_ar_least_squares(xs, 0);
  EXPECT_DOUBLE_EQ(fit.intercept, 3.5);
  EXPECT_DOUBLE_EQ(fit.forecast_one(xs), 3.5);
}

TEST(FitAr, ShortSeriesThrows) {
  const std::vector<double> xs{1.0, 2.0, 3.0};
  EXPECT_THROW(fit_ar_least_squares(xs, 2), std::invalid_argument);
  EXPECT_THROW(fit_ar_yule_walker(std::vector<double>{1.0, 2.0}, 2),
               std::invalid_argument);
}

TEST(ArFit, ForecastOneUsesMostRecentLags) {
  ArFit fit;
  fit.phi = {0.5, 0.25};
  fit.intercept = 1.0;
  // history ... 4, 8 -> forecast = 1 + 0.5*8 + 0.25*4 = 6.
  EXPECT_DOUBLE_EQ(fit.forecast_one(std::vector<double>{0.0, 4.0, 8.0}), 6.0);
}

TEST(ArFit, ForecastRejectsShortHistory) {
  ArFit fit;
  fit.phi = {0.5, 0.25};
  EXPECT_THROW((void)fit.forecast_one(std::vector<double>{1.0}),
               std::invalid_argument);
}

TEST(ArFit, ResidualsOfPerfectFitAreZero) {
  // x_t = 2 x_{t-1} exactly (explosive but fine for residual math).
  std::vector<double> xs{1.0};
  for (int i = 0; i < 10; ++i) xs.push_back(2.0 * xs.back());
  ArFit fit;
  fit.phi = {2.0};
  fit.intercept = 0.0;
  for (double r : fit.residuals(xs)) EXPECT_NEAR(r, 0.0, 1e-9);
}

TEST(DurbinLevinson, SolvesYuleWalkerForAr1) {
  // For AR(1) with coefficient a: rho[k] = a^k.
  const double a = 0.6;
  const std::vector<double> rho{1.0, a, a * a, a * a * a};
  const std::vector<double> phi = durbin_levinson(rho, 1);
  ASSERT_EQ(phi.size(), 1u);
  EXPECT_NEAR(phi[0], a, 1e-12);
}

TEST(DurbinLevinson, ShortRhoThrows) {
  EXPECT_THROW(durbin_levinson(std::vector<double>{1.0}, 2),
               std::invalid_argument);
}

TEST(Pacf, Ar1PacfCutsOffAfterLag1) {
  const std::vector<double> phi{0.8};
  const auto xs = simulate_ar(phi, 0.0, 1.0, 5000, 13);
  const std::vector<double> p = pacf(xs, 5);
  ASSERT_EQ(p.size(), 5u);
  EXPECT_NEAR(p[0], 0.8, 0.05);
  for (std::size_t k = 1; k < 5; ++k) {
    EXPECT_NEAR(p[k], 0.0, 0.08);  // Theoretical PACF is 0 beyond lag 1.
  }
}

TEST(Pacf, HandlesShortSeriesGracefully) {
  const std::vector<double> xs{1.0, 2.0, 1.5};
  EXPECT_LE(pacf(xs, 10).size(), 2u);
}

// Property: fitted AR(1) coefficient is within the stationarity region for
// stationary inputs.
class ArStability : public ::testing::TestWithParam<double> {};

TEST_P(ArStability, EstimateStaysInStationaryRegion) {
  const double true_phi = GetParam();
  const auto xs = simulate_ar(std::vector<double>{true_phi}, 0.0, 1.0, 2000, 17);
  const ArFit fit = fit_ar_least_squares(xs, 1);
  EXPECT_GT(fit.phi[0], -1.0);
  EXPECT_LT(fit.phi[0], 1.0);
  EXPECT_NEAR(fit.phi[0], true_phi, 0.1);
}

INSTANTIATE_TEST_SUITE_P(Coefficients, ArStability,
                         ::testing::Values(-0.8, -0.4, 0.0, 0.4, 0.8));

}  // namespace
}  // namespace acbm::ts
