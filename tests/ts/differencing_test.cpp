#include "ts/differencing.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "stats/rng.h"

namespace acbm::ts {
namespace {

TEST(Differencing, FirstDifference) {
  const std::vector<double> xs{1.0, 4.0, 9.0, 16.0};
  const std::vector<double> d = difference(xs);
  EXPECT_EQ(d, (std::vector<double>{3.0, 5.0, 7.0}));
}

TEST(Differencing, TooShortThrows) {
  EXPECT_THROW(difference(std::vector<double>{1.0}), std::invalid_argument);
}

TEST(Differencing, OrderZeroCopies) {
  const std::vector<double> xs{1.0, 2.0};
  EXPECT_EQ(difference(xs, 0), xs);
}

TEST(Differencing, SecondDifferenceOfQuadraticIsConstant) {
  std::vector<double> xs;
  for (int t = 0; t < 10; ++t) xs.push_back(static_cast<double>(t * t));
  const std::vector<double> d2 = difference(xs, 2);
  for (double v : d2) EXPECT_DOUBLE_EQ(v, 2.0);
}

TEST(Differencing, UndifferenceInvertsDifference) {
  const std::vector<double> xs{5.0, 2.0, 7.0, 7.0, -1.0};
  const std::vector<double> d = difference(xs);
  const std::vector<double> back = undifference(d, xs.front());
  ASSERT_EQ(back.size(), xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) EXPECT_NEAR(back[i], xs[i], 1e-12);
}

TEST(Differencing, IntegrateForecastOrderOne) {
  // Series ends at 10; differenced forecast of {2, 3} means {12, 15}.
  const std::vector<double> tail{8.0, 10.0};
  const std::vector<double> f = integrate_forecast(
      std::vector<double>{2.0, 3.0}, tail, 1);
  EXPECT_EQ(f, (std::vector<double>{12.0, 15.0}));
}

TEST(Differencing, IntegrateForecastOrderZeroIsIdentity) {
  const std::vector<double> f = integrate_forecast(
      std::vector<double>{1.0, 2.0}, std::vector<double>{}, 0);
  EXPECT_EQ(f, (std::vector<double>{1.0, 2.0}));
}

TEST(Differencing, IntegrateForecastShortTailThrows) {
  EXPECT_THROW(integrate_forecast(std::vector<double>{1.0},
                                  std::vector<double>{1.0}, 2),
               std::invalid_argument);
}

// Property: integrating the true future differences reconstructs the future.
class IntegrateRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(IntegrateRoundTrip, ReconstructsFutureExactly) {
  const std::size_t d = GetParam();
  acbm::stats::Rng rng(99);
  std::vector<double> xs(40);
  for (double& v : xs) v = rng.normal(0.0, 3.0);

  const std::size_t split = 30;
  const std::vector<double> full_diff = difference(xs, d);
  // Differences that belong to the future of the split point.
  const std::size_t past_count = split - d;
  const std::vector<double> future_diffs(
      full_diff.begin() + static_cast<std::ptrdiff_t>(past_count),
      full_diff.end());
  const std::vector<double> history(xs.begin(),
                                    xs.begin() + static_cast<std::ptrdiff_t>(split));
  const std::vector<double> rebuilt = integrate_forecast(future_diffs, history, d);
  ASSERT_EQ(rebuilt.size(), xs.size() - split);
  for (std::size_t i = 0; i < rebuilt.size(); ++i) {
    EXPECT_NEAR(rebuilt[i], xs[split + i], 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Orders, IntegrateRoundTrip,
                         ::testing::Values(1u, 2u, 3u));

}  // namespace
}  // namespace acbm::ts
