#include "ts/seasonal.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <stdexcept>
#include <vector>

#include "stats/descriptive.h"
#include "stats/metrics.h"
#include "stats/rng.h"
#include "ts/arima.h"

namespace acbm::ts {
namespace {

// Seasonal signal: period-24 sinusoid + AR(1) noise + slow level drift.
std::vector<double> seasonal_series(std::size_t n, std::uint64_t seed,
                                    double noise_sd = 0.5) {
  acbm::stats::Rng rng(seed);
  std::vector<double> xs;
  double ar = 0.0;
  for (std::size_t t = 0; t < n; ++t) {
    ar = 0.5 * ar + rng.normal(0.0, noise_sd);
    const double season =
        3.0 * std::sin(2.0 * std::numbers::pi * static_cast<double>(t) / 24.0);
    xs.push_back(10.0 + season + ar);
  }
  return xs;
}

TEST(SeasonalArima, RejectsBadConstruction) {
  SeasonalOrder bad;
  bad.period = 1;
  EXPECT_THROW(SeasonalArimaModel{bad}, std::invalid_argument);
}

TEST(SeasonalArima, FitRejectsShortSeries) {
  SeasonalArimaModel model({.p = 1, .d = 0, .q = 0, .P = 1, .D = 1,
                            .period = 24});
  const std::vector<double> xs(30, 1.0);
  EXPECT_THROW(model.fit(xs), std::invalid_argument);
}

TEST(SeasonalArima, UnfittedUseThrows) {
  SeasonalArimaModel model({.p = 1, .d = 0, .q = 0, .P = 1, .D = 0,
                            .period = 24});
  const std::vector<double> xs(100, 1.0);
  EXPECT_THROW((void)model.forecast(xs, 1), std::logic_error);
  EXPECT_THROW((void)model.one_step_predictions(xs, 50), std::logic_error);
}

TEST(SeasonalArima, ArLagSetCombinesOrdinaryAndSeasonal) {
  SeasonalArimaModel model({.p = 2, .d = 0, .q = 1, .P = 2, .D = 0,
                            .period = 24});
  EXPECT_EQ(model.ar_lags(), (std::vector<std::size_t>{1, 2, 24, 48}));
}

TEST(SeasonalArima, TracksSeasonalSignalBetterThanPlainArima) {
  const auto xs = seasonal_series(24 * 40, 7);
  const std::size_t split = 24 * 32;

  SeasonalArimaModel seasonal({.p = 1, .d = 0, .q = 1, .P = 1, .D = 1,
                               .period = 24});
  seasonal.fit(std::span<const double>(xs).subspan(0, split));
  const auto s_preds = seasonal.one_step_predictions(xs, split);

  ArimaModel plain({1, 0, 1});
  plain.fit(std::span<const double>(xs).subspan(0, split));
  const auto p_preds = plain.one_step_predictions(xs, split);

  const std::vector<double> truth(xs.begin() + split, xs.end());
  const double s_rmse = acbm::stats::rmse(truth, s_preds);
  const double p_rmse = acbm::stats::rmse(truth, p_preds);
  EXPECT_LT(s_rmse, 0.8 * p_rmse)
      << "seasonal " << s_rmse << " vs plain " << p_rmse;
}

TEST(SeasonalArima, ForecastReproducesPureSeasonalPattern) {
  // Deterministic period-24 sawtooth: D=1 seasonal differencing removes it
  // entirely, so multi-step forecasts should continue the pattern closely.
  std::vector<double> xs;
  for (int t = 0; t < 24 * 20; ++t) xs.push_back(static_cast<double>(t % 24));
  SeasonalArimaModel model({.p = 1, .d = 0, .q = 0, .P = 1, .D = 1,
                            .period = 24});
  model.fit(xs);
  const auto f = model.forecast(xs, 48);
  for (std::size_t k = 0; k < f.size(); ++k) {
    const double expected = static_cast<double>((xs.size() + k) % 24);
    EXPECT_NEAR(f[k], expected, 0.5) << "step " << k;
  }
}

TEST(SeasonalArima, OneStepPredictionsAreCausal) {
  auto xs = seasonal_series(24 * 30, 11);
  SeasonalArimaModel model({.p = 1, .d = 0, .q = 1, .P = 1, .D = 1,
                            .period = 24});
  const std::size_t split = 24 * 25;
  model.fit(std::span<const double>(xs).subspan(0, split));
  const auto before = model.one_step_predictions(xs, split);
  auto mutated = xs;
  mutated.back() += 500.0;
  const auto after = model.one_step_predictions(mutated, split);
  ASSERT_EQ(before.size(), after.size());
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_DOUBLE_EQ(before[i], after[i]);
  }
}

TEST(SeasonalArima, ForecastOneMatchesForecastHead) {
  const auto xs = seasonal_series(24 * 30, 13);
  SeasonalArimaModel model({.p = 1, .d = 1, .q = 0, .P = 1, .D = 1,
                            .period = 24});
  model.fit(xs);
  EXPECT_DOUBLE_EQ(model.forecast_one(xs), model.forecast(xs, 6).front());
}

TEST(SeasonalArima, BadStartThrows) {
  const auto xs = seasonal_series(24 * 20, 17);
  SeasonalArimaModel model({.p = 1, .d = 0, .q = 0, .P = 1, .D = 1,
                            .period = 24});
  model.fit(xs);
  EXPECT_THROW((void)model.one_step_predictions(xs, 5), std::invalid_argument);
  EXPECT_THROW((void)model.one_step_predictions(xs, xs.size() + 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace acbm::ts
