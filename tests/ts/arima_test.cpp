#include "ts/arima.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "stats/metrics.h"
#include "stats/rng.h"

namespace acbm::ts {
namespace {

// Random walk with AR(1) increments: ARIMA(1,1,0) ground truth.
std::vector<double> simulate_arima110(double phi, double sigma, std::size_t n,
                                      std::uint64_t seed) {
  acbm::stats::Rng rng(seed);
  std::vector<double> level{0.0};
  double incr = 0.0;
  for (std::size_t t = 1; t < n; ++t) {
    incr = phi * incr + rng.normal(0.0, sigma);
    level.push_back(level.back() + incr);
  }
  return level;
}

TEST(ArimaModel, FitRecoversDifferencedArCoefficient) {
  const auto xs = simulate_arima110(0.6, 1.0, 4000, 23);
  ArimaModel m({1, 1, 0});
  m.fit(xs);
  ASSERT_TRUE(m.fitted());
  EXPECT_NEAR(m.arma().phi()[0], 0.6, 0.05);
}

TEST(ArimaModel, DZeroBehavesLikeArma) {
  acbm::stats::Rng rng(29);
  std::vector<double> xs;
  double prev = 0.0;
  for (int t = 0; t < 1000; ++t) {
    prev = 0.5 * prev + rng.normal();
    xs.push_back(prev);
  }
  ArimaModel arima({1, 0, 0});
  arima.fit(xs);
  ArmaModel arma({1, 0});
  arma.fit(xs);
  EXPECT_DOUBLE_EQ(arima.forecast_one(xs), arma.forecast_one(xs));
}

TEST(ArimaModel, ForecastContinuesTrend) {
  // Deterministic linear trend: ARIMA(0,1,0)-ish; differences constant at 2.
  std::vector<double> xs;
  for (int t = 0; t < 200; ++t) xs.push_back(2.0 * t);
  ArimaModel m({1, 1, 0});
  m.fit(xs);
  const std::vector<double> f = m.forecast(xs, 3);
  EXPECT_NEAR(f[0], 400.0, 1.0);
  EXPECT_NEAR(f[1], 402.0, 1.5);
  EXPECT_NEAR(f[2], 404.0, 2.0);
}

TEST(ArimaModel, ShortSeriesThrows) {
  ArimaModel m({1, 2, 0});
  EXPECT_THROW(m.fit(std::vector<double>{1.0, 2.0, 3.0}), std::invalid_argument);
}

TEST(ArimaModel, UnfittedForecastThrows) {
  ArimaModel m({1, 1, 0});
  EXPECT_THROW((void)m.forecast(std::vector<double>{1.0, 2.0, 3.0}, 1),
               std::logic_error);
}

TEST(ArimaModel, OneStepPredictionsTrackRandomWalk) {
  const auto xs = simulate_arima110(0.5, 1.0, 2000, 31);
  ArimaModel m({1, 1, 0});
  const std::size_t split = 1600;
  m.fit(std::span<const double>(xs).subspan(0, split));
  const std::vector<double> preds = m.one_step_predictions(xs, split);
  const std::vector<double> truth(xs.begin() + split, xs.end());
  ASSERT_EQ(preds.size(), truth.size());
  // A naive "last value" predictor on a random walk with AR increments has
  // higher error than the fitted ARIMA's one-step forecast.
  std::vector<double> naive;
  for (std::size_t t = split; t < xs.size(); ++t) naive.push_back(xs[t - 1]);
  EXPECT_LT(acbm::stats::rmse(truth, preds), acbm::stats::rmse(truth, naive));
}

TEST(ArimaModel, OneStepPredictionsBadStartThrows) {
  const auto xs = simulate_arima110(0.5, 1.0, 200, 37);
  ArimaModel m({1, 1, 0});
  m.fit(xs);
  EXPECT_THROW((void)m.one_step_predictions(xs, 1), std::invalid_argument);
  EXPECT_THROW((void)m.one_step_predictions(xs, xs.size() + 1),
               std::invalid_argument);
}

TEST(ArimaModel, RandomWalkVarianceGrowsLinearly) {
  // ARIMA(0,1,0)-ish: fit (1,1,0) on a pure random walk; phi ~ 0, so the
  // h-step variance should be close to h * sigma^2.
  acbm::stats::Rng rng(53);
  std::vector<double> xs{0.0};
  for (int t = 1; t < 4000; ++t) xs.push_back(xs.back() + rng.normal());
  ArimaModel m({1, 1, 0});
  m.fit(xs);
  const double v1 = m.forecast_variance(1);
  EXPECT_NEAR(m.forecast_variance(4) / v1, 4.0, 0.5);
  EXPECT_NEAR(m.forecast_variance(9) / v1, 9.0, 1.2);
}

TEST(ArimaModel, ForecastHistoryTooShortThrows) {
  const auto xs = simulate_arima110(0.5, 1.0, 300, 41);
  ArimaModel m({1, 1, 0});
  m.fit(xs);
  EXPECT_THROW((void)m.forecast(std::vector<double>{1.0}, 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace acbm::ts
