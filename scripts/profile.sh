#!/usr/bin/env bash
# Profiles the quickstart fit with the observability layer on: builds the
# CLI, generates a small simulated world, and runs `acbm fit` with --trace,
# --metrics, and --profile. Artifacts land under results/:
#   results/PROFILE_fit.trace.json   Chrome trace (chrome://tracing, Perfetto)
#   results/PROFILE_fit.metrics.prom Prometheus-style metrics dump
#   results/PROFILE_fit.profile.txt  merged span tree (the --profile output)
# See OBSERVABILITY.md for how to read each sink.
#
# Usage: scripts/profile.sh [build-dir]   (default: build)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"

echo "profile.sh @ $(git -C "$repo_root" describe --always --dirty 2>/dev/null || echo unknown)"

cmake -S "$repo_root" -B "$build_dir" >/dev/null
cmake --build "$build_dir" -j"$(nproc)" --target acbm_tool
acbm="$build_dir/src/cli/acbm"

work="$(mktemp -d /tmp/acbm_profile.XXXXXX)"
trap 'rm -rf "$work"' EXIT

"$acbm" generate --seed 1 --days 30 \
  --dataset "$work/trace.csv" --ipmap "$work/ipmap.txt"

mkdir -p "$repo_root/results"
"$acbm" fit \
  --dataset "$work/trace.csv" --ipmap "$work/ipmap.txt" \
  --model "$work/model.acbm" \
  --trace "$repo_root/results/PROFILE_fit.trace.json" \
  --metrics "$repo_root/results/PROFILE_fit.metrics.prom" \
  --profile 2> "$repo_root/results/PROFILE_fit.profile.txt"

cat "$repo_root/results/PROFILE_fit.profile.txt"
echo
echo "wrote results/PROFILE_fit.trace.json"
echo "      results/PROFILE_fit.metrics.prom"
echo "      results/PROFILE_fit.profile.txt"
