#!/usr/bin/env bash
# Runs the kernel micro-benchmarks and writes results/BENCH_kernels.json.
#
# The JSON document goes to stdout of bench_kernels (captured into the file);
# progress goes to stderr, so the artifact stays machine-parseable. Each
# record carries the git SHA, thread count, and median-of-N wall times.
#
# A benchmark result is only comparable when it describes a commit, so this
# refuses to run on a dirty tree (set ACBM_BENCH_ALLOW_DIRTY=1 to override
# while iterating locally — the SHA is then suffixed with "-dirty").
#
# Usage: scripts/bench.sh [extra bench_kernels args, e.g. --repeat 9]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${ACBM_BENCH_BUILD_DIR:-$repo_root/build}"
out_file="${ACBM_BENCH_OUT:-$repo_root/results/BENCH_kernels.json}"

sha="$(git -C "$repo_root" rev-parse HEAD)"
if [[ -n "$(git -C "$repo_root" status --porcelain)" ]]; then
  if [[ "${ACBM_BENCH_ALLOW_DIRTY:-0}" != "1" ]]; then
    echo "bench.sh: working tree is dirty; benchmark numbers must describe" >&2
    echo "bench.sh: a commit. Commit or stash first, or set" >&2
    echo "bench.sh: ACBM_BENCH_ALLOW_DIRTY=1 to tag the result as dirty." >&2
    exit 1
  fi
  sha="$sha-dirty"
fi

cmake -S "$repo_root" -B "$build_dir" -DCMAKE_BUILD_TYPE=Release \
  -DACBM_BUILD_BENCH=ON >&2
cmake --build "$build_dir" -j"$(nproc)" --target bench_kernels >&2

mkdir -p "$(dirname "$out_file")"
"$build_dir/bench/bench_kernels" --sha "$sha" "$@" > "$out_file"
echo "bench.sh: wrote $out_file" >&2
