#!/usr/bin/env bash
# Runs the kernel micro-benchmarks and writes results/BENCH_kernels.json,
# then the streaming-ingestion benchmarks into results/BENCH_ingest.json.
#
# The JSON document goes to stdout of bench_kernels (captured into the file);
# progress goes to stderr, so the artifact stays machine-parseable. Each
# record carries the git SHA, thread count, and median-of-N wall times.
#
# A benchmark result is only comparable when it describes a commit, so this
# refuses to run on a dirty tree (set ACBM_BENCH_ALLOW_DIRTY=1 to override
# while iterating locally — the SHA is then suffixed with "-dirty").
#
# The record also carries the CPU model and the detected SIMD ISA; when the
# existing results file was produced on a different ISA the numbers are not
# comparable and this refuses to overwrite it (ACBM_BENCH_ALLOW_CROSS_ISA=1
# overrides).
#
# Usage: scripts/bench.sh [extra bench_kernels args, e.g. --repeat 9]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${ACBM_BENCH_BUILD_DIR:-$repo_root/build}"
out_file="${ACBM_BENCH_OUT:-$repo_root/results/BENCH_kernels.json}"

sha="$(git -C "$repo_root" rev-parse HEAD)"
if [[ -n "$(git -C "$repo_root" status --porcelain)" ]]; then
  if [[ "${ACBM_BENCH_ALLOW_DIRTY:-0}" != "1" ]]; then
    echo "bench.sh: working tree is dirty; benchmark numbers must describe" >&2
    echo "bench.sh: a commit. Commit or stash first, or set" >&2
    echo "bench.sh: ACBM_BENCH_ALLOW_DIRTY=1 to tag the result as dirty." >&2
    exit 1
  fi
  sha="$sha-dirty"
fi

cmake -S "$repo_root" -B "$build_dir" -DCMAKE_BUILD_TYPE=Release \
  -DACBM_BUILD_BENCH=ON >&2
cmake --build "$build_dir" -j"$(nproc)" --target bench_kernels bench_ingest bench_serve bench_generate >&2

cpu_model="$(awk -F': ' '/model name/ {print $2; exit}' /proc/cpuinfo 2>/dev/null || true)"
if [[ -z "$cpu_model" ]]; then cpu_model="unknown"; fi

isa="$("$build_dir/bench/bench_kernels" --print-isa)"
if [[ -f "$out_file" ]]; then
  prev_isa="$(sed -n 's/^  "isa": "\(.*\)",$/\1/p' "$out_file" | head -1)"
  if [[ -n "$prev_isa" && "$prev_isa" != "$isa" ]]; then
    if [[ "${ACBM_BENCH_ALLOW_CROSS_ISA:-0}" != "1" ]]; then
      echo "bench.sh: $out_file was produced on ISA '$prev_isa' but this" >&2
      echo "bench.sh: machine detects '$isa'; the numbers are not" >&2
      echo "bench.sh: comparable. Set ACBM_BENCH_ALLOW_CROSS_ISA=1 to" >&2
      echo "bench.sh: overwrite anyway." >&2
      exit 1
    fi
    echo "bench.sh: warning: overwriting '$prev_isa' results with '$isa'" >&2
  fi
fi

mkdir -p "$(dirname "$out_file")"
"$build_dir/bench/bench_kernels" --sha "$sha" --cpu "$cpu_model" "$@" > "$out_file"
echo "bench.sh: wrote $out_file (isa: $isa)" >&2

# Ingest throughput trajectory (snapshots/sec appended+validated, recovery
# scan, drift-check cost per family). Not ISA-sensitive: the hot costs are
# fsync, CRC, and CSV parse/validate, so no cross-ISA guard here.
ingest_out="${ACBM_BENCH_INGEST_OUT:-$repo_root/results/BENCH_ingest.json}"
"$build_dir/bench/bench_ingest" --sha "$sha" --cpu "$cpu_model" "$@" > "$ingest_out"
echo "bench.sh: wrote $ingest_out" >&2

# Serving benchmarks (.armm mmap vs framed cold start, daemon qps and
# p50/p99 over a unix socket at 1/4/16 connections, batched vs unbatched).
# Socket round trips and mmap costs are not ISA-sensitive, so no cross-ISA
# guard here either.
serve_out="${ACBM_BENCH_SERVE_OUT:-$repo_root/results/BENCH_serve.json}"
"$build_dir/bench/bench_serve" --sha "$sha" --cpu "$cpu_model" "$@" > "$serve_out"
echo "bench.sh: wrote $serve_out" >&2

# Scenario-generation throughput (attacks/sec per catalog scenario at
# million-attack scale; SCENARIOS.md). Dominated by scalar RNG draws and
# vector appends, not SIMD kernels, so no cross-ISA guard here.
generate_out="${ACBM_BENCH_GENERATE_OUT:-$repo_root/results/BENCH_generate.json}"
"$build_dir/bench/bench_generate" --sha "$sha" --cpu "$cpu_model" "$@" > "$generate_out"
echo "bench.sh: wrote $generate_out" >&2
