#!/usr/bin/env bash
# Doc lint (wired as the `doc_check` ctest): keeps the user-facing docs and
# the CLI from drifting apart.
#
#   1. Every `--flag` token in README.md / SCENARIOS.md names a real acbm
#      flag (present in `acbm help`). Flags of foreign tools that the docs
#      quote in command examples (cmake/ctest/bench harnesses) live in the
#      allowlist below.
#   2. Every scenario listed by `acbm generate --list-scenarios` has a
#      section in SCENARIOS.md, and every --scenario-param key it prints is
#      documented there too.
#
# Usage: scripts/doc_check.sh <path-to-acbm-binary>
set -euo pipefail

if [[ $# -ne 1 ]]; then
  echo "usage: doc_check.sh <path-to-acbm-binary>" >&2
  exit 2
fi
acbm="$1"
repo_root="$(cd "$(dirname "$0")/.." && pwd)"

# Flags that appear in doc command examples but belong to other tools
# (cmake --build, ctest --test-dir, the bench harnesses' --repeat/--tiny).
allowlist='--build --test-dir --output-on-failure --repeat --tiny --sha --cpu --print-isa'

help_text="$("$acbm" help)"
listing="$("$acbm" generate --list-scenarios)"
failures=0

for doc in README.md SCENARIOS.md; do
  path="$repo_root/$doc"
  if [[ ! -f "$path" ]]; then
    echo "doc_check: MISSING $doc" >&2
    failures=$((failures + 1))
    continue
  fi
  for flag in $(grep -ohE -- '--[a-z][a-z0-9_-]*' "$path" | sort -u); do
    if [[ " $allowlist " == *" $flag "* ]]; then
      continue
    fi
    if ! grep -qF -- "$flag" <<<"$help_text"; then
      echo "doc_check: $doc mentions $flag but 'acbm help' does not" >&2
      failures=$((failures + 1))
    fi
  done
done

scenarios_md="$(cat "$repo_root/SCENARIOS.md" 2>/dev/null || true)"
for name in $(grep -oE '^  [a-z0-9-]+ ' <<<"$listing" | tr -d ' '); do
  if ! grep -qF -- "$name" <<<"$scenarios_md"; then
    echo "doc_check: scenario '$name' (from --list-scenarios) is not" \
         "documented in SCENARIOS.md" >&2
    failures=$((failures + 1))
  fi
done
for key in $(grep -oE '^    --scenario-param [a-z-]+' <<<"$listing" |
             awk '{print $2}' | sort -u); do
  if ! grep -qF -- "$key" <<<"$scenarios_md"; then
    echo "doc_check: --scenario-param '$key' (from --list-scenarios) is not" \
         "documented in SCENARIOS.md" >&2
    failures=$((failures + 1))
  fi
done

if [[ "$failures" -gt 0 ]]; then
  echo "doc_check: $failures problem(s)" >&2
  exit 1
fi
echo "doc_check: README.md and SCENARIOS.md agree with the CLI"
