#!/usr/bin/env bash
# Regenerates the per-scenario predictability tables that EXPERIMENTS.md
# quotes: one `acbm evaluate --scenario NAME` block per catalog scenario
# (three models vs the always-same/always-mean naive baselines, plus the
# paper-ordering verdict). Output is byte-stable for a given binary, so the
# EXPERIMENTS.md section can be refreshed with:
#
#   scripts/scenario_table.sh > results/scenario_table.txt
#
# Usage: scripts/scenario_table.sh [path-to-acbm-binary]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
acbm="${1:-$repo_root/build/src/cli/acbm}"

if [[ ! -x "$acbm" ]]; then
  echo "scenario_table.sh: no acbm binary at $acbm (build first, or pass" >&2
  echo "scenario_table.sh: the path as the first argument)" >&2
  exit 2
fi

names="$("$acbm" generate --list-scenarios |
         grep -oE '^  [a-z0-9-]+ ' | tr -d ' ')"
first=1
for name in $names; do
  if [[ "$first" == 0 ]]; then echo; fi
  first=0
  echo "scenario_table.sh: evaluating $name..." >&2
  "$acbm" evaluate --scenario "$name"
done
