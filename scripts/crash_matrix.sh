#!/usr/bin/env bash
# Crash matrix: shell-level acceptance for crash-safe checkpointing.
#
# Phase `faults` runs `acbm fit` under every durable-I/O fault point at 1
# and 8 threads, resumes each crashed run, and requires the resumed model
# to be byte-identical to an uninterrupted run's (ctest label `durable`).
#
# Phase `workers` sweeps the sharded multi-process fit: every worker/lease
# fault point, real SIGKILLs of worker processes mid-stage, a SIGKILLed
# coordinator followed by --resume, and the --worker-timeout exit code —
# each case must still end with a model byte-identical to the
# single-process fit (ctest label `distributed`).
#
# Phase `ingest` drives the streaming-ingestion loop under each of its
# fault points ({ingest.append, ingest.torn_tail, io.dirsync, refit.fail}
# x {1, 8} threads): every crashed-and-restarted `acbm ingest` run must
# converge to a model byte-identical to a clean full `acbm fit` on the
# exported cumulative dataset, and the previously published generation
# must stay loadable at every intermediate instant. It also covers the
# ACBM_FAULTS `#<limit>` budget suffix interacting with `lease.expire`
# on the coordinator's worker-respawn path (ctest label `ingest`).
#
# Phase `serve` covers the forecast daemon: kill -9 mid-response stream
# (a seeded loadgen mix in flight) and mid-generation-swap (artifacts
# being renamed over in a loop), then restart on the same socket — the
# daemon must come back serving the previous generation with output
# byte-identical to `acbm predict` on the same artifact (ctest label
# `serve`).
#
# Usage: scripts/crash_matrix.sh <acbm-binary> [faults|workers|ingest|serve|all] [work-dir]
set -euo pipefail

acbm="${1:?usage: crash_matrix.sh <acbm-binary> [faults|workers|ingest|serve|all] [work-dir]}"
phase="${2:-faults}"
work="${3:-$(mktemp -d /tmp/acbm_crash_matrix.XXXXXX)}"
mkdir -p "$work"

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
echo "crash_matrix.sh phase=$phase @ $(git -C "$repo_root" describe --always --dirty 2>/dev/null || echo unknown)"
trap 'rm -rf "$work"' EXIT

dataset="$work/trace.csv"
ipmap="$work/ipmap.txt"
"$acbm" generate --seed 5 --days 20 --dataset "$dataset" --ipmap "$ipmap" \
  >/dev/null

clean="$work/clean.model"
"$acbm" fit --dataset "$dataset" --ipmap "$ipmap" --model "$clean" >/dev/null

failures=0

run_faults_phase() {
  # Each entry is an ACBM_FAULTS spec that must abort the fit mid-run.
  # Filters pick stages that exist in every fit: a temporal family artifact,
  # the spatial stage, the tree stage, and fsync on any checkpoint write.
  local faults=(
    "io.write:spatial"
    "io.write:tree"
    "io.fsync:spatial"
    "checkpoint.stage:spatial"
    "checkpoint.stage:tree"
  )

  local threads i fault tag model ckpt code
  for threads in 1 8; do
    for i in "${!faults[@]}"; do
      fault="${faults[$i]}"
      # Numeric tags keep stage names out of the work paths — io.* filters
      # match on path substrings, and a directory named after the fault
      # would make every write in it match instead of only the targeted
      # stage.
      tag="case${i}_t${threads}"
      model="$work/$tag.model"
      ckpt="$work/$tag.ckpt"

      # The faulted run must fail with the corruption exit code (3) and
      # must not publish a model artifact.
      set +e
      ACBM_FAULTS="$fault" ACBM_THREADS="$threads" \
        "$acbm" fit --dataset "$dataset" --ipmap "$ipmap" \
        --model "$model" --checkpoint-dir "$ckpt" >/dev/null 2>"$work/$tag.err"
      code=$?
      set -e
      if [[ $code -ne 3 ]]; then
        echo "FAIL [$fault t=$threads]: crashed run exited $code, expected 3" >&2
        failures=$((failures + 1))
        continue
      fi
      if [[ -e $model ]]; then
        echo "FAIL [$fault t=$threads]: crashed run published a model" >&2
        failures=$((failures + 1))
        continue
      fi

      # Resume with injection off: must succeed and reproduce the clean
      # model byte for byte.
      if ! ACBM_THREADS="$threads" "$acbm" fit --dataset "$dataset" \
          --ipmap "$ipmap" --model "$model" --checkpoint-dir "$ckpt" \
          --resume >/dev/null 2>>"$work/$tag.err"; then
        echo "FAIL [$fault t=$threads]: resume did not complete" >&2
        failures=$((failures + 1))
        continue
      fi
      if ! cmp -s "$model" "$clean"; then
        echo "FAIL [$fault t=$threads]: resumed model differs from clean" >&2
        failures=$((failures + 1))
        continue
      fi
      echo "ok   [$fault t=$threads]: crash -> resume -> byte-identical"
    done
  done
}

# One sharded fit that must exit 0 and reproduce the clean model exactly.
# Args: tag, workers, faults-spec (may be empty), extra fit args...
worker_case() {
  local tag="$1" workers="$2" fault="$3"
  shift 3
  local model="$work/$tag.model"
  local ckpt="$work/$tag.ckpt"
  set +e
  ACBM_FAULTS="$fault" "$acbm" fit --dataset "$dataset" --ipmap "$ipmap" \
    --model "$model" --checkpoint-dir "$ckpt" --workers "$workers" "$@" \
    >/dev/null 2>"$work/$tag.err"
  local code=$?
  set -e
  if [[ $code -ne 0 ]]; then
    echo "FAIL [$tag]: sharded fit exited $code (see $tag.err)" >&2
    failures=$((failures + 1))
    return
  fi
  if ! cmp -s "$model" "$clean"; then
    echo "FAIL [$tag]: sharded model differs from single-process fit" >&2
    failures=$((failures + 1))
    return
  fi
  echo "ok   [$tag]: byte-identical to single-process fit"
}

run_workers_phase() {
  # Plain sharded fits at both acceptance worker counts.
  worker_case "w2_plain" 2 ""
  worker_case "w4_plain" 4 ""

  # Every worker/lease fault point. Short lease ttls keep crashed workers'
  # shards re-assignable within the test's patience.
  worker_case "w2_exit_first"   2 "worker.exit:worker=0#1" --lease-ttl-ms 300
  worker_case "w2_exit_spatial" 2 "worker.exit:shard=spatial" --lease-ttl-ms 200
  worker_case "w2_exit_tree"    2 "worker.exit:shard=tree#1" --lease-ttl-ms 300
  worker_case "w2_lease_expire" 2 "lease.expire" --lease-ttl-ms 300
  worker_case "w2_hb_drop"      2 "heartbeat.drop:worker=1" --lease-ttl-ms 200
  worker_case "w2_spawn_fail"   2 "worker.spawn:worker=0#1"

  # Real kill -9: SIGKILL the coordinator's children from outside while
  # they are mid-stage; the coordinator must respawn and still converge.
  local tag="w2_pkill" model="$work/w2_pkill.model" ckpt="$work/w2_pkill.ckpt"
  "$acbm" fit --dataset "$dataset" --ipmap "$ipmap" --model "$model" \
    --checkpoint-dir "$ckpt" --workers 2 --lease-ttl-ms 300 \
    >/dev/null 2>"$work/$tag.err" &
  local coord=$!
  sleep 0.4
  pkill -9 -P "$coord" 2>/dev/null || true
  sleep 0.4
  pkill -9 -P "$coord" 2>/dev/null || true
  if ! wait "$coord"; then
    echo "FAIL [$tag]: coordinator did not survive killed workers" >&2
    failures=$((failures + 1))
  elif ! cmp -s "$model" "$clean"; then
    echo "FAIL [$tag]: model differs after real worker kills" >&2
    failures=$((failures + 1))
  else
    echo "ok   [$tag]: byte-identical after kill -9 of workers"
  fi

  # SIGKILL the coordinator itself mid-run, then finish with --resume.
  tag="w2_coord_kill"; model="$work/$tag.model"; ckpt="$work/$tag.ckpt"
  "$acbm" fit --dataset "$dataset" --ipmap "$ipmap" --model "$model" \
    --checkpoint-dir "$ckpt" --workers 2 >/dev/null 2>"$work/$tag.err" &
  coord=$!
  sleep 0.6
  kill -9 "$coord" 2>/dev/null || true
  wait "$coord" 2>/dev/null || true
  if ! "$acbm" fit --dataset "$dataset" --ipmap "$ipmap" --model "$model" \
      --checkpoint-dir "$ckpt" --workers 2 --resume \
      >/dev/null 2>>"$work/$tag.err"; then
    echo "FAIL [$tag]: resume after coordinator kill did not complete" >&2
    failures=$((failures + 1))
  elif ! cmp -s "$model" "$clean"; then
    echo "FAIL [$tag]: model differs after coordinator kill + resume" >&2
    failures=$((failures + 1))
  else
    echo "ok   [$tag]: byte-identical after coordinator kill -9 + --resume"
  fi

  # --worker-timeout: the deadline must kill the workers and exit 5; a
  # resume without the deadline completes the plan byte-identically.
  tag="w2_timeout"; model="$work/$tag.model"; ckpt="$work/$tag.ckpt"
  set +e
  "$acbm" fit --dataset "$dataset" --ipmap "$ipmap" --model "$model" \
    --checkpoint-dir "$ckpt" --workers 2 --worker-timeout 1 \
    >/dev/null 2>"$work/$tag.err"
  local code=$?
  set -e
  if [[ $code -ne 5 ]]; then
    echo "FAIL [$tag]: timed-out run exited $code, expected 5" >&2
    failures=$((failures + 1))
  elif [[ -e $model ]]; then
    echo "FAIL [$tag]: timed-out run published a model" >&2
    failures=$((failures + 1))
  elif ! "$acbm" fit --dataset "$dataset" --ipmap "$ipmap" --model "$model" \
      --checkpoint-dir "$ckpt" --workers 2 --resume \
      >/dev/null 2>>"$work/$tag.err" || ! cmp -s "$model" "$clean"; then
    echo "FAIL [$tag]: resume after timeout not byte-identical" >&2
    failures=$((failures + 1))
  else
    echo "ok   [$tag]: timeout exits 5, resume byte-identical"
  fi
}

# Requires that the model artifact at $1 still loads (the "never serve
# nothing" invariant, probed at an intermediate instant of a faulted run).
require_loadable() {
  local model="$1" tag="$2" when="$3"
  if ! "$acbm" predict --model "$model" >/dev/null 2>&1; then
    echo "FAIL [$tag]: $model not loadable $when" >&2
    failures=$((failures + 1))
    return 1
  fi
}

run_ingest_phase() {
  # Snapshot CSVs reuse the generated dataset's header verbatim; one
  # family-0 attack per hour just past the base window (20 days = hour 479).
  local ws fams
  ws="$(grep -m1 '^#window_start=' "$dataset" | cut -d= -f2)"
  fams="$(grep -m1 '^#families=' "$dataset" | cut -d= -f2)"
  local columns="id,family,target_ip,target_asn,start,duration_s,bots"
  local hour
  for hour in 481 482; do
    {
      echo "#window_start=$ws"
      echo "#families=$fams"
      echo "$columns"
      echo "99$hour,0,10.0.0.1,3,$((ws + hour * 3600 + 60)),600,10.9.0.1;10.9.0.2;10.9.0.3"
    } > "$work/snap$hour.csv"
  done

  # One clean inited stream dir, copied per case (byte-determinism makes
  # the copy equivalent to re-running --init), and one clean end-state
  # reference: full lifecycle, export, cold fit.
  local seed_dir="$work/ing_seed"
  "$acbm" ingest --dir "$seed_dir" --init --dataset "$dataset" \
    --ipmap "$ipmap" >/dev/null
  local ref_dir="$work/ing_ref"
  cp -r "$seed_dir" "$ref_dir"
  "$acbm" ingest --dir "$ref_dir" --snapshot "$work/snap481.csv" \
    --hour 481 --no-refit >/dev/null
  "$acbm" ingest --dir "$ref_dir" --snapshot "$work/snap482.csv" \
    --hour 482 --no-refit >/dev/null
  "$acbm" ingest --dir "$ref_dir" --refit >/dev/null
  "$acbm" ingest --dir "$ref_dir" --export-dataset "$work/cumulative.art" \
    >/dev/null
  local ingest_clean="$work/ingest_clean.model"
  "$acbm" fit --dataset "$work/cumulative.art" --ipmap "$ipmap" \
    --model "$ingest_clean" >/dev/null
  if ! cmp -s "$ref_dir/model.art" "$ingest_clean"; then
    echo "FAIL [ref]: clean incremental refit differs from cold full fit" >&2
    failures=$((failures + 1))
    return
  fi
  echo "ok   [ref]: clean incremental refit byte-identical to cold full fit"

  local faults=(
    "ingest.append"
    "ingest.torn_tail"
    "io.dirsync"
    "refit.fail"
  )
  local threads i fault tag dir code want
  for threads in 1 8; do
    for i in "${!faults[@]}"; do
      fault="${faults[$i]}"
      tag="ing${i}_t${threads}"
      dir="$work/$tag"
      cp -r "$seed_dir" "$dir"

      if [[ $fault == ingest.* ]]; then
        # Append-path faults crash the snapshot ingestion before any byte
        # is durably appended (exit 3); the restart retries the same hour.
        set +e
        ACBM_FAULTS="$fault" ACBM_THREADS="$threads" \
          "$acbm" ingest --dir "$dir" --snapshot "$work/snap481.csv" \
          --hour 481 >/dev/null 2>"$work/$tag.err"
        code=$?
        set -e
        want=3
      else
        # Refit-path faults: the snapshot lands, every refit attempt fails,
        # and the loop falls back to the previous generation (exit 6).
        ACBM_THREADS="$threads" "$acbm" ingest --dir "$dir" \
          --snapshot "$work/snap481.csv" --hour 481 --no-refit \
          >/dev/null 2>"$work/$tag.err"
        set +e
        ACBM_FAULTS="$fault" ACBM_THREADS="$threads" \
          "$acbm" ingest --dir "$dir" --refit --refit-retries 1 \
          --refit-backoff-ms 0 >/dev/null 2>>"$work/$tag.err"
        code=$?
        set -e
        want=6
      fi
      if [[ $code -ne $want ]]; then
        echo "FAIL [$fault t=$threads]: faulted run exited $code, expected $want" >&2
        failures=$((failures + 1))
        continue
      fi
      # The previous generation must be serving at this intermediate
      # instant, byte-untouched by the crash.
      require_loadable "$dir/model.art" "$tag" "after the faulted run" || continue
      if ! cmp -s "$dir/model.art" "$seed_dir/model.art"; then
        echo "FAIL [$fault t=$threads]: faulted run altered the live model" >&2
        failures=$((failures + 1))
        continue
      fi

      # Restart with injection off: replay the hour (idempotent when the
      # append already landed), refit, append the next hour, refit again.
      if ! { ACBM_THREADS="$threads" "$acbm" ingest --dir "$dir" \
               --snapshot "$work/snap481.csv" --hour 481 --no-refit && \
             ACBM_THREADS="$threads" "$acbm" ingest --dir "$dir" --refit && \
             ACBM_THREADS="$threads" "$acbm" ingest --dir "$dir" \
               --snapshot "$work/snap482.csv" --hour 482 --no-refit && \
             ACBM_THREADS="$threads" "$acbm" ingest --dir "$dir" --refit; \
           } >/dev/null 2>>"$work/$tag.err"; then
        echo "FAIL [$fault t=$threads]: restarted ingest loop did not complete" >&2
        failures=$((failures + 1))
        continue
      fi
      if ! cmp -s "$dir/model.art" "$ingest_clean"; then
        echo "FAIL [$fault t=$threads]: converged model differs from clean full fit" >&2
        failures=$((failures + 1))
        continue
      fi
      # The rotated previous generation must load too.
      require_loadable "$dir/model.art.g1" "$tag" "as generation g1" || continue
      echo "ok   [$fault t=$threads]: crash -> restart -> byte-identical"
    done
  done

  # ACBM_FAULTS budget suffix (#<limit>) interacting with lease.expire on
  # the coordinator's respawn path: worker 0 exits once (forcing a respawn)
  # while the first two lease checks expire; the budget must run dry and
  # the sharded fit still converge byte-identically.
  worker_case "lease_budget_respawn" 2 \
    "worker.exit:worker=0#1;lease.expire#2" --lease-ttl-ms 300
}

# --- serve phase -------------------------------------------------------------

serve_pid=""

start_daemon() {
  # Args: log-file, extra serve args... Sets serve_pid; waits for LISTENING.
  local log="$1"
  shift
  "$acbm" serve --socket "$serve_sock" --watch-interval 50 "$@" \
    >"$log" 2>&1 &
  serve_pid=$!
  disown "$serve_pid"  # Keep bash quiet about the later kill -9.
  local i
  for i in $(seq 1 200); do
    if grep -q LISTENING "$log" 2>/dev/null; then return 0; fi
    if ! kill -0 "$serve_pid" 2>/dev/null; then
      echo "FAIL [serve]: daemon died at startup (see $log)" >&2
      return 1
    fi
    sleep 0.05
  done
  echo "FAIL [serve]: daemon never reported LISTENING (see $log)" >&2
  return 1
}

stop_daemon() {
  if [[ -n $serve_pid ]] && kill -0 "$serve_pid" 2>/dev/null; then
    kill "$serve_pid" 2>/dev/null || true
    wait "$serve_pid" 2>/dev/null || true
  fi
  serve_pid=""
}

run_serve_phase() {
  local armm="$work/serve.armm"
  "$acbm" pack --model "$clean" --out "$armm" >/dev/null
  serve_sock="$work/serve.sock"

  # Reference: the batch predict CLI on the same artifact, over the 8
  # busiest targets. The daemon's f64 answers must match byte for byte.
  local targets target_args=() t
  targets="$("$acbm" predict --model "$clean" --top 8 \
    | awk 'NR>1 && /^AS/ {sub(/^AS/,""); print $1}')"
  for t in $targets; do target_args+=(--target "$t"); done
  "$acbm" predict --model "$clean" "${target_args[@]}" > "$work/serve_ref.txt"

  # Sanity: a clean daemon serves the reference byte-identically.
  start_daemon "$work/serve0.log" --model "m=$armm" || {
    failures=$((failures + 1)); return;
  }
  "$acbm" query --socket "$serve_sock" --model m "${target_args[@]}" \
    > "$work/serve0.txt"
  if ! cmp -s "$work/serve0.txt" "$work/serve_ref.txt"; then
    echo "FAIL [serve clean]: daemon output differs from acbm predict" >&2
    failures=$((failures + 1))
    stop_daemon
    return
  fi
  echo "ok   [serve clean]: daemon output byte-identical to acbm predict"

  # Case 1: kill -9 mid-response stream. A seeded loadgen mix is in
  # flight when the daemon dies; the restart (same socket path) must
  # serve the same generation byte-identically.
  bash "$repo_root/scripts/loadgen.sh" "$acbm" "$serve_sock" m 100000 7 \
    $targets >/dev/null 2>&1 &
  local load_pid=$!
  sleep 0.4
  kill -9 "$serve_pid"
  serve_pid=""
  wait "$load_pid" 2>/dev/null || true  # The client loses its connection.
  if ! start_daemon "$work/serve1.log" --model "m=$armm"; then
    failures=$((failures + 1)); return
  fi
  "$acbm" query --socket "$serve_sock" --model m "${target_args[@]}" \
    > "$work/serve1.txt"
  if cmp -s "$work/serve1.txt" "$work/serve_ref.txt"; then
    echo "ok   [serve kill mid-response]: restart serves byte-identically"
  else
    echo "FAIL [serve kill mid-response]: restarted output differs" >&2
    failures=$((failures + 1))
  fi

  # Case 2: kill -9 mid-generation-swap. Rotate the artifact in a tight
  # loop (atomic rename-over, same bytes, new inode) under load, kill the
  # daemon while swaps are landing, restart, compare.
  bash "$repo_root/scripts/loadgen.sh" "$acbm" "$serve_sock" m 100000 11 \
    $targets >/dev/null 2>&1 &
  load_pid=$!
  touch "$work/rotate.flag"
  ( while [[ -e "$work/rotate.flag" ]]; do
      "$acbm" pack --model "$clean" --out "$armm" >/dev/null 2>&1
    done ) &
  local rotate_pid=$!
  sleep 0.6
  kill -9 "$serve_pid"
  serve_pid=""
  rm -f "$work/rotate.flag"  # Let the in-flight pack finish, then stop.
  wait "$rotate_pid" 2>/dev/null || true
  wait "$load_pid" 2>/dev/null || true
  if ! start_daemon "$work/serve2.log" --model "m=$armm"; then
    failures=$((failures + 1)); return
  fi
  "$acbm" query --socket "$serve_sock" --model m "${target_args[@]}" \
    > "$work/serve2.txt"
  if cmp -s "$work/serve2.txt" "$work/serve_ref.txt"; then
    echo "ok   [serve kill mid-swap]: restart serves byte-identically"
  else
    echo "FAIL [serve kill mid-swap]: restarted output differs" >&2
    failures=$((failures + 1))
  fi

  # The deterministic mix itself replays identically across restarts.
  bash "$repo_root/scripts/loadgen.sh" "$acbm" "$serve_sock" m 50 3 \
    $targets > "$work/serve_mix_a.txt"
  bash "$repo_root/scripts/loadgen.sh" "$acbm" "$serve_sock" m 50 3 \
    $targets > "$work/serve_mix_b.txt"
  if cmp -s "$work/serve_mix_a.txt" "$work/serve_mix_b.txt"; then
    echo "ok   [serve loadgen]: seeded mix is deterministic"
  else
    echo "FAIL [serve loadgen]: seeded mix diverged between runs" >&2
    failures=$((failures + 1))
  fi
  stop_daemon
}

case "$phase" in
  faults) run_faults_phase ;;
  workers) run_workers_phase ;;
  ingest) run_ingest_phase ;;
  serve) run_serve_phase ;;
  all)
    run_faults_phase
    run_workers_phase
    run_ingest_phase
    run_serve_phase
    ;;
  *)
    echo "crash_matrix.sh: unknown phase '$phase' (want faults|workers|ingest|serve|all)" >&2
    exit 2
    ;;
esac

if [[ $failures -gt 0 ]]; then
  echo "crash matrix ($phase): $failures case(s) failed" >&2
  exit 1
fi
echo "crash matrix ($phase): all cases byte-identical"
