#!/usr/bin/env bash
# Crash matrix: run `acbm fit` under every durable-I/O fault point at 1 and
# 8 threads, resume each crashed run, and require the resumed model to be
# byte-identical to an uninterrupted run's. This is the shell-level
# acceptance check for crash-safe checkpointing; it is registered with ctest
# under the `durable` label (see tests/CMakeLists.txt).
#
# Usage: scripts/crash_matrix.sh <acbm-binary> [work-dir]
set -euo pipefail

acbm="${1:?usage: crash_matrix.sh <acbm-binary> [work-dir]}"
work="${2:-$(mktemp -d /tmp/acbm_crash_matrix.XXXXXX)}"
mkdir -p "$work"

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
echo "crash_matrix.sh @ $(git -C "$repo_root" describe --always --dirty 2>/dev/null || echo unknown)"
trap 'rm -rf "$work"' EXIT

# Each entry is an ACBM_FAULTS spec that must abort the fit mid-run. Filters
# pick stages that exist in every fit: a temporal family artifact, the
# spatial stage, the tree stage, and fsync on any checkpoint write.
faults=(
  "io.write:spatial"
  "io.write:tree"
  "io.fsync:spatial"
  "checkpoint.stage:spatial"
  "checkpoint.stage:tree"
)

dataset="$work/trace.csv"
ipmap="$work/ipmap.txt"
"$acbm" generate --seed 5 --days 20 --dataset "$dataset" --ipmap "$ipmap" \
  >/dev/null

clean="$work/clean.model"
"$acbm" fit --dataset "$dataset" --ipmap "$ipmap" --model "$clean" >/dev/null

failures=0
for threads in 1 8; do
  for i in "${!faults[@]}"; do
    fault="${faults[$i]}"
    # Numeric tags keep stage names out of the work paths — io.* filters
    # match on path substrings, and a directory named after the fault would
    # make every write in it match instead of only the targeted stage.
    tag="case${i}_t${threads}"
    model="$work/$tag.model"
    ckpt="$work/$tag.ckpt"

    # The faulted run must fail with the corruption exit code (3) and must
    # not publish a model artifact.
    set +e
    ACBM_FAULTS="$fault" ACBM_THREADS="$threads" \
      "$acbm" fit --dataset "$dataset" --ipmap "$ipmap" \
      --model "$model" --checkpoint-dir "$ckpt" >/dev/null 2>"$work/$tag.err"
    code=$?
    set -e
    if [[ $code -ne 3 ]]; then
      echo "FAIL [$fault t=$threads]: crashed run exited $code, expected 3" >&2
      failures=$((failures + 1))
      continue
    fi
    if [[ -e $model ]]; then
      echo "FAIL [$fault t=$threads]: crashed run published a model" >&2
      failures=$((failures + 1))
      continue
    fi

    # Resume with injection off: must succeed and reproduce the clean model
    # byte for byte.
    if ! ACBM_THREADS="$threads" "$acbm" fit --dataset "$dataset" \
        --ipmap "$ipmap" --model "$model" --checkpoint-dir "$ckpt" \
        --resume >/dev/null 2>>"$work/$tag.err"; then
      echo "FAIL [$fault t=$threads]: resume did not complete" >&2
      failures=$((failures + 1))
      continue
    fi
    if ! cmp -s "$model" "$clean"; then
      echo "FAIL [$fault t=$threads]: resumed model differs from clean" >&2
      failures=$((failures + 1))
      continue
    fi
    echo "ok   [$fault t=$threads]: crash -> resume -> byte-identical"
  done
done

if [[ $failures -gt 0 ]]; then
  echo "crash matrix: $failures case(s) failed" >&2
  exit 1
fi
echo "crash matrix: all $((2 * ${#faults[@]})) cases byte-identical"
