#!/usr/bin/env bash
# Crash matrix: shell-level acceptance for crash-safe checkpointing.
#
# Phase `faults` runs `acbm fit` under every durable-I/O fault point at 1
# and 8 threads, resumes each crashed run, and requires the resumed model
# to be byte-identical to an uninterrupted run's (ctest label `durable`).
#
# Phase `workers` sweeps the sharded multi-process fit: every worker/lease
# fault point, real SIGKILLs of worker processes mid-stage, a SIGKILLed
# coordinator followed by --resume, and the --worker-timeout exit code —
# each case must still end with a model byte-identical to the
# single-process fit (ctest label `distributed`).
#
# Usage: scripts/crash_matrix.sh <acbm-binary> [faults|workers|all] [work-dir]
set -euo pipefail

acbm="${1:?usage: crash_matrix.sh <acbm-binary> [faults|workers|all] [work-dir]}"
phase="${2:-faults}"
work="${3:-$(mktemp -d /tmp/acbm_crash_matrix.XXXXXX)}"
mkdir -p "$work"

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
echo "crash_matrix.sh phase=$phase @ $(git -C "$repo_root" describe --always --dirty 2>/dev/null || echo unknown)"
trap 'rm -rf "$work"' EXIT

dataset="$work/trace.csv"
ipmap="$work/ipmap.txt"
"$acbm" generate --seed 5 --days 20 --dataset "$dataset" --ipmap "$ipmap" \
  >/dev/null

clean="$work/clean.model"
"$acbm" fit --dataset "$dataset" --ipmap "$ipmap" --model "$clean" >/dev/null

failures=0

run_faults_phase() {
  # Each entry is an ACBM_FAULTS spec that must abort the fit mid-run.
  # Filters pick stages that exist in every fit: a temporal family artifact,
  # the spatial stage, the tree stage, and fsync on any checkpoint write.
  local faults=(
    "io.write:spatial"
    "io.write:tree"
    "io.fsync:spatial"
    "checkpoint.stage:spatial"
    "checkpoint.stage:tree"
  )

  local threads i fault tag model ckpt code
  for threads in 1 8; do
    for i in "${!faults[@]}"; do
      fault="${faults[$i]}"
      # Numeric tags keep stage names out of the work paths — io.* filters
      # match on path substrings, and a directory named after the fault
      # would make every write in it match instead of only the targeted
      # stage.
      tag="case${i}_t${threads}"
      model="$work/$tag.model"
      ckpt="$work/$tag.ckpt"

      # The faulted run must fail with the corruption exit code (3) and
      # must not publish a model artifact.
      set +e
      ACBM_FAULTS="$fault" ACBM_THREADS="$threads" \
        "$acbm" fit --dataset "$dataset" --ipmap "$ipmap" \
        --model "$model" --checkpoint-dir "$ckpt" >/dev/null 2>"$work/$tag.err"
      code=$?
      set -e
      if [[ $code -ne 3 ]]; then
        echo "FAIL [$fault t=$threads]: crashed run exited $code, expected 3" >&2
        failures=$((failures + 1))
        continue
      fi
      if [[ -e $model ]]; then
        echo "FAIL [$fault t=$threads]: crashed run published a model" >&2
        failures=$((failures + 1))
        continue
      fi

      # Resume with injection off: must succeed and reproduce the clean
      # model byte for byte.
      if ! ACBM_THREADS="$threads" "$acbm" fit --dataset "$dataset" \
          --ipmap "$ipmap" --model "$model" --checkpoint-dir "$ckpt" \
          --resume >/dev/null 2>>"$work/$tag.err"; then
        echo "FAIL [$fault t=$threads]: resume did not complete" >&2
        failures=$((failures + 1))
        continue
      fi
      if ! cmp -s "$model" "$clean"; then
        echo "FAIL [$fault t=$threads]: resumed model differs from clean" >&2
        failures=$((failures + 1))
        continue
      fi
      echo "ok   [$fault t=$threads]: crash -> resume -> byte-identical"
    done
  done
}

# One sharded fit that must exit 0 and reproduce the clean model exactly.
# Args: tag, workers, faults-spec (may be empty), extra fit args...
worker_case() {
  local tag="$1" workers="$2" fault="$3"
  shift 3
  local model="$work/$tag.model"
  local ckpt="$work/$tag.ckpt"
  set +e
  ACBM_FAULTS="$fault" "$acbm" fit --dataset "$dataset" --ipmap "$ipmap" \
    --model "$model" --checkpoint-dir "$ckpt" --workers "$workers" "$@" \
    >/dev/null 2>"$work/$tag.err"
  local code=$?
  set -e
  if [[ $code -ne 0 ]]; then
    echo "FAIL [$tag]: sharded fit exited $code (see $tag.err)" >&2
    failures=$((failures + 1))
    return
  fi
  if ! cmp -s "$model" "$clean"; then
    echo "FAIL [$tag]: sharded model differs from single-process fit" >&2
    failures=$((failures + 1))
    return
  fi
  echo "ok   [$tag]: byte-identical to single-process fit"
}

run_workers_phase() {
  # Plain sharded fits at both acceptance worker counts.
  worker_case "w2_plain" 2 ""
  worker_case "w4_plain" 4 ""

  # Every worker/lease fault point. Short lease ttls keep crashed workers'
  # shards re-assignable within the test's patience.
  worker_case "w2_exit_first"   2 "worker.exit:worker=0#1" --lease-ttl-ms 300
  worker_case "w2_exit_spatial" 2 "worker.exit:shard=spatial" --lease-ttl-ms 200
  worker_case "w2_exit_tree"    2 "worker.exit:shard=tree#1" --lease-ttl-ms 300
  worker_case "w2_lease_expire" 2 "lease.expire" --lease-ttl-ms 300
  worker_case "w2_hb_drop"      2 "heartbeat.drop:worker=1" --lease-ttl-ms 200
  worker_case "w2_spawn_fail"   2 "worker.spawn:worker=0#1"

  # Real kill -9: SIGKILL the coordinator's children from outside while
  # they are mid-stage; the coordinator must respawn and still converge.
  local tag="w2_pkill" model="$work/w2_pkill.model" ckpt="$work/w2_pkill.ckpt"
  "$acbm" fit --dataset "$dataset" --ipmap "$ipmap" --model "$model" \
    --checkpoint-dir "$ckpt" --workers 2 --lease-ttl-ms 300 \
    >/dev/null 2>"$work/$tag.err" &
  local coord=$!
  sleep 0.4
  pkill -9 -P "$coord" 2>/dev/null || true
  sleep 0.4
  pkill -9 -P "$coord" 2>/dev/null || true
  if ! wait "$coord"; then
    echo "FAIL [$tag]: coordinator did not survive killed workers" >&2
    failures=$((failures + 1))
  elif ! cmp -s "$model" "$clean"; then
    echo "FAIL [$tag]: model differs after real worker kills" >&2
    failures=$((failures + 1))
  else
    echo "ok   [$tag]: byte-identical after kill -9 of workers"
  fi

  # SIGKILL the coordinator itself mid-run, then finish with --resume.
  tag="w2_coord_kill"; model="$work/$tag.model"; ckpt="$work/$tag.ckpt"
  "$acbm" fit --dataset "$dataset" --ipmap "$ipmap" --model "$model" \
    --checkpoint-dir "$ckpt" --workers 2 >/dev/null 2>"$work/$tag.err" &
  coord=$!
  sleep 0.6
  kill -9 "$coord" 2>/dev/null || true
  wait "$coord" 2>/dev/null || true
  if ! "$acbm" fit --dataset "$dataset" --ipmap "$ipmap" --model "$model" \
      --checkpoint-dir "$ckpt" --workers 2 --resume \
      >/dev/null 2>>"$work/$tag.err"; then
    echo "FAIL [$tag]: resume after coordinator kill did not complete" >&2
    failures=$((failures + 1))
  elif ! cmp -s "$model" "$clean"; then
    echo "FAIL [$tag]: model differs after coordinator kill + resume" >&2
    failures=$((failures + 1))
  else
    echo "ok   [$tag]: byte-identical after coordinator kill -9 + --resume"
  fi

  # --worker-timeout: the deadline must kill the workers and exit 5; a
  # resume without the deadline completes the plan byte-identically.
  tag="w2_timeout"; model="$work/$tag.model"; ckpt="$work/$tag.ckpt"
  set +e
  "$acbm" fit --dataset "$dataset" --ipmap "$ipmap" --model "$model" \
    --checkpoint-dir "$ckpt" --workers 2 --worker-timeout 1 \
    >/dev/null 2>"$work/$tag.err"
  local code=$?
  set -e
  if [[ $code -ne 5 ]]; then
    echo "FAIL [$tag]: timed-out run exited $code, expected 5" >&2
    failures=$((failures + 1))
  elif [[ -e $model ]]; then
    echo "FAIL [$tag]: timed-out run published a model" >&2
    failures=$((failures + 1))
  elif ! "$acbm" fit --dataset "$dataset" --ipmap "$ipmap" --model "$model" \
      --checkpoint-dir "$ckpt" --workers 2 --resume \
      >/dev/null 2>>"$work/$tag.err" || ! cmp -s "$model" "$clean"; then
    echo "FAIL [$tag]: resume after timeout not byte-identical" >&2
    failures=$((failures + 1))
  else
    echo "ok   [$tag]: timeout exits 5, resume byte-identical"
  fi
}

case "$phase" in
  faults) run_faults_phase ;;
  workers) run_workers_phase ;;
  all)
    run_faults_phase
    run_workers_phase
    ;;
  *)
    echo "crash_matrix.sh: unknown phase '$phase' (want faults|workers|all)" >&2
    exit 2
    ;;
esac

if [[ $failures -gt 0 ]]; then
  echo "crash matrix ($phase): $failures case(s) failed" >&2
  exit 1
fi
echo "crash matrix ($phase): all cases byte-identical"
