#!/usr/bin/env bash
# Deterministic load generator for the forecast daemon: replays a seeded
# query mix against a running `acbm serve` endpoint via `acbm query
# --count --seed`. The mix is an LCG over the target list (the same one
# bench_serve drives in-process), so a given (seed, count, targets) tuple
# always produces the same request sequence — crash-matrix runs can replay
# the exact load that was in flight when the daemon was killed.
#
# Usage: loadgen.sh <acbm-binary> <socket-path|tcp:PORT> <model-name> \
#                   <count> <seed> <target-asn...>
set -euo pipefail

acbm="${1:?usage: loadgen.sh <acbm> <socket|tcp:PORT> <model> <count> <seed> <asn...>}"
endpoint="${2:?missing socket path or tcp:PORT}"
model="${3:?missing model name}"
count="${4:?missing query count}"
seed="${5:?missing seed}"
shift 5
if [[ $# -eq 0 ]]; then
  echo "loadgen.sh: need at least one target ASN" >&2
  exit 2
fi

targets=()
for asn in "$@"; do
  targets+=(--target "$asn")
done

if [[ $endpoint == tcp:* ]]; then
  conn=(--port "${endpoint#tcp:}")
else
  conn=(--socket "$endpoint")
fi

exec "$acbm" query "${conn[@]}" --model "$model" \
  --count "$count" --seed "$seed" "${targets[@]}"
