#!/usr/bin/env bash
# ASan+UBSan build of the fault-tolerance surface: configures a dedicated
# build tree with ACBM_SANITIZE=address+undefined and runs the fault-injection,
# parallel-runtime, durability, observability, and kernel-benchmark smoke
# suites (ctest labels `robust`, `parallel`, `durable`, `observe`, and
# `perf-smoke` — the last runs bench_kernels at tiny sizes so the optimized
# kernels sweep under the sanitizers too). A second TSan build then reruns
# the `observe` and `parallel` labels so the span-ring SPSC protocol and the
# metric atomics are exercised under the race detector.
#
# Usage: scripts/sanitize.sh [build-dir]   (default: build-asan-ubsan; the
#        TSan tree lands next to it with a -tsan suffix)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build-asan-ubsan}"

echo "sanitize.sh @ $(git -C "$repo_root" describe --always --dirty 2>/dev/null || echo unknown)"

cmake -S "$repo_root" -B "$build_dir" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DACBM_SANITIZE=address+undefined \
  -DACBM_BUILD_BENCH=ON \
  -DACBM_BUILD_EXAMPLES=OFF
cmake --build "$build_dir" -j"$(nproc)"
ctest --test-dir "$build_dir" -L 'robust|parallel|durable|observe|perf-smoke' \
  --output-on-failure -j"$(nproc)"

tsan_dir="${build_dir%/}-tsan"
cmake -S "$repo_root" -B "$tsan_dir" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DACBM_SANITIZE=thread \
  -DACBM_BUILD_BENCH=OFF \
  -DACBM_BUILD_EXAMPLES=OFF
cmake --build "$tsan_dir" -j"$(nproc)"
ctest --test-dir "$tsan_dir" -L 'observe|parallel' \
  --output-on-failure -j"$(nproc)"
