#!/usr/bin/env bash
# ASan+UBSan build of the fault-tolerance surface: configures a dedicated
# build tree with ACBM_SANITIZE=address+undefined and runs the fault-injection,
# parallel-runtime, durability, and kernel-benchmark smoke suites (ctest
# labels `robust`, `parallel`, `durable`, and `perf-smoke` — the last runs
# bench_kernels at tiny sizes so the optimized kernels sweep under the
# sanitizers too).
#
# Usage: scripts/sanitize.sh [build-dir]   (default: build-asan-ubsan)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build-asan-ubsan}"

cmake -S "$repo_root" -B "$build_dir" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DACBM_SANITIZE=address+undefined \
  -DACBM_BUILD_BENCH=ON \
  -DACBM_BUILD_EXAMPLES=OFF
cmake --build "$build_dir" -j"$(nproc)"
ctest --test-dir "$build_dir" -L 'robust|parallel|durable|perf-smoke' \
  --output-on-failure -j"$(nproc)"
