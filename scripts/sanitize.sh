#!/usr/bin/env bash
# ASan+UBSan build of the fault-tolerance surface: configures a dedicated
# build tree with ACBM_SANITIZE=address+undefined and runs the fault-injection,
# parallel-runtime, durability, observability, distributed-fit, serving,
# and kernel-benchmark smoke suites (ctest labels `robust`, `parallel`,
# `durable`, `observe`, `distributed`, `ingest`, `serve`, `simd`, and
# `perf-smoke` —
# `simd` is the scalar-vs-vectorized agreement sweep, `perf-smoke` runs
# bench_kernels at tiny sizes, `distributed` covers the sharded
# multi-process fit: lease stealing, worker crash/respawn, and the worker
# crash matrix, and `ingest` covers the streaming snapshot log, drift
# monitor, and incremental-refit loop including its crash matrix phase, so
# the whole coordination and ingestion surface sweeps under the sanitizers
# too, and `serve` covers the .armm artifact parser, the shared serving
# view, and the forecast daemon — protocol fuzz cases, LRU eviction, and
# hot swap under load — plus its crash matrix phase). A second TSan build
# then reruns the `observe`, `parallel`, `distributed`, `ingest`, and
# `serve` labels so the span-ring SPSC protocol, the metric atomics, the
# arena-under-parallel_for usage, the heartbeat/lease threads, the
# multi-threaded incremental refit, and the daemon's IO/worker/watcher
# threads (including generation swap under concurrent clients) are
# exercised under the race detector. A third build with
# -DACBM_DISABLE_SIMD=ON reruns the kernel and smoke suites on the scalar
# reference path, keeping that configuration honest.
#
# Usage: scripts/sanitize.sh [build-dir]   (default: build-asan-ubsan; the
#        TSan tree lands next to it with a -tsan suffix and the scalar-only
#        tree with a -nosimd suffix)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build-asan-ubsan}"

echo "sanitize.sh @ $(git -C "$repo_root" describe --always --dirty 2>/dev/null || echo unknown)"

cmake -S "$repo_root" -B "$build_dir" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DACBM_SANITIZE=address+undefined \
  -DACBM_BUILD_BENCH=ON \
  -DACBM_BUILD_EXAMPLES=OFF
cmake --build "$build_dir" -j"$(nproc)"
ctest --test-dir "$build_dir" \
  -L 'robust|parallel|durable|observe|distributed|ingest|serve|simd|trace|perf-smoke' \
  --output-on-failure -j"$(nproc)"

tsan_dir="${build_dir%/}-tsan"
cmake -S "$repo_root" -B "$tsan_dir" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DACBM_SANITIZE=thread \
  -DACBM_BUILD_BENCH=OFF \
  -DACBM_BUILD_EXAMPLES=OFF
cmake --build "$tsan_dir" -j"$(nproc)"
ctest --test-dir "$tsan_dir" -L 'observe|parallel|distributed|ingest|serve|trace' \
  --output-on-failure -j"$(nproc)"

nosimd_dir="${build_dir%/}-nosimd"
cmake -S "$repo_root" -B "$nosimd_dir" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DACBM_DISABLE_SIMD=ON \
  -DACBM_BUILD_BENCH=ON \
  -DACBM_BUILD_EXAMPLES=OFF
cmake --build "$nosimd_dir" -j"$(nproc)"
ctest --test-dir "$nosimd_dir" -L 'simd|perf-smoke|parallel' \
  --output-on-failure -j"$(nproc)"
