// Reproduces Figure 5's use cases on the SDN data-plane simulator
// (src/sdnsim): traffic toward protected targets flows through a
// firewall/load-balancer service chain with an off-path scrubbing center,
// and four control planes compete over the test window:
//   static peacetime   — load-balancer first, never diverts (Fig. 5b left)
//   static hardened    — firewall first around the clock
//   reactive           — detect-then-respond with detection latency
//   predictive         — hardening windows and AS diversion rules scheduled
//                        from the adversary model's causal forecasts
// Reported per policy: attack traffic blocked, benign traffic lost
// (filtering + reorder interruptions), time spent hardened, reorder count.
#include <algorithm>
#include <cstdio>
#include <unordered_map>
#include <vector>

#include "bench_util.h"
#include "core/evaluation.h"
#include "sdnsim/simulator.h"

namespace {

using namespace acbm;

struct Totals {
  sdnsim::SimulationReport report;
  void add(const sdnsim::SimulationReport& r) {
    report.attack_total += r.attack_total;
    report.attack_delivered += r.attack_delivered;
    report.benign_total += r.benign_total;
    report.benign_delivered += r.benign_delivered;
    report.benign_dropped += r.benign_dropped;
    report.hardened_minutes += r.hardened_minutes;
    report.total_minutes += r.total_minutes;
    report.order_switches += r.order_switches;
    report.rules_minutes += r.rules_minutes;
  }
};

void print_row(const char* name, const Totals& t) {
  const auto& r = t.report;
  std::printf("%-18s %14.1f%% %14.2f%% %13.1f%% %10zu %10.1f\n", name,
              100.0 * r.attack_blocked_fraction(),
              100.0 * r.benign_loss_fraction(),
              100.0 * r.hardened_fraction(), r.order_switches,
              r.total_minutes > 0
                  ? static_cast<double>(r.rules_minutes) / r.total_minutes
                  : 0.0);
}

}  // namespace

int main() {
  bench::print_header(
      "Figure 5 — SDN use cases on the data-plane simulator "
      "(per-minute, test window)");
  const trace::World world = bench::make_paper_world();
  const auto [train, test] = world.dataset.split(0.8);

  // Causal per-attack forecasts drive the predictive policy.
  std::printf("fitting models and forecasting test attacks...\n");
  const std::vector<core::PredictedAttack> forecasts = core::predict_attacks(
      world.dataset, world.ip_map, bench::bench_st_options());
  std::printf("%zu test attacks forecast\n\n", forecasts.size());

  // Protect the five busiest targets over the first 10 days of the test
  // window (14,400 simulated minutes per target and policy).
  std::vector<net::Asn> protected_targets = test.target_asns();
  protected_targets.resize(
      std::min<std::size_t>(protected_targets.size(), 5));
  const trace::EpochSeconds sim_start = test.attacks().front().start;
  const std::size_t sim_minutes = 10 * 24 * 60;
  constexpr double kWindowHours = 3.0;

  Totals peacetime;
  Totals hardened;
  Totals reactive;
  Totals predictive;

  for (net::Asn target : protected_targets) {
    const sdnsim::TargetTrafficModel traffic(world.dataset, world.ip_map,
                                             target, {});

    sdnsim::StaticPolicy lb(sdnsim::ChainOrder::kLoadBalancerFirst,
                            "static peacetime");
    sdnsim::StaticPolicy fw(sdnsim::ChainOrder::kFirewallFirst,
                            "static hardened");
    sdnsim::ReactivePolicy react(traffic.benign_baseline());

    std::vector<sdnsim::PredictedWindow> schedule;
    for (const core::PredictedAttack& forecast : forecasts) {
      if (forecast.target != target) continue;
      sdnsim::PredictedWindow window;
      window.start = forecast.predicted_start -
                     static_cast<trace::EpochSeconds>(kWindowHours * 3600);
      window.end = forecast.predicted_start +
                   static_cast<trace::EpochSeconds>(kWindowHours * 3600);
      window.rules = forecast.predicted_sources;
      schedule.push_back(std::move(window));
    }
    sdnsim::PredictivePolicy predict(std::move(schedule));

    peacetime.add(sdnsim::simulate(traffic, lb, sim_start, sim_minutes));
    hardened.add(sdnsim::simulate(traffic, fw, sim_start, sim_minutes));
    reactive.add(sdnsim::simulate(traffic, react, sim_start, sim_minutes));
    predictive.add(sdnsim::simulate(traffic, predict, sim_start, sim_minutes));
  }

  std::printf("%zu targets x %zu minutes each; hardening window +/-%.0f h\n\n",
              protected_targets.size(), sim_minutes, kWindowHours);
  std::printf("%-18s %15s %15s %14s %10s %10s\n", "policy", "attack blocked",
              "benign lost", "hardened", "reorders", "rules/min");
  bench::print_rule();
  print_row("static peacetime", peacetime);
  print_row("static hardened", hardened);
  print_row("reactive", reactive);
  print_row("predictive", predictive);
  bench::print_rule();
  std::printf(
      "Shape check vs the paper's use cases: the predictive control plane\n"
      "blocks the most attack traffic (pre-installed diversion rules catch\n"
      "attacks from minute zero, where the reactive plane pays its\n"
      "detection delay on every attack) with several times fewer\n"
      "disruptive reorders, while hardening far less than around-the-clock\n"
      "firewalling. The always-hardened policy is not even the best\n"
      "blocker: without diversion its firewall overloads and fails open\n"
      "under the largest floods.\n");
  return 0;
}
