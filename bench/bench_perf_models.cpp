// Performance microbenchmarks (google-benchmark): fitting and prediction
// throughput of every model in the stack, plus the substrate hot paths
// (LPM lookup, valley-free distance, A^s feature, Gao inference, trace
// generation).
#include <benchmark/benchmark.h>

#include "core/features.h"
#include "core/parallel.h"
#include "core/temporal_model.h"
#include "net/gao.h"
#include "net/routing.h"
#include "nn/grid_search.h"
#include "nn/nar.h"
#include "stats/matrix.h"
#include "stats/rng.h"
#include "tree/model_tree.h"
#include "trace/world.h"
#include "ts/arima.h"

namespace {

using namespace acbm;

const trace::World& shared_world() {
  static const trace::World world =
      trace::build_world(trace::small_world_options(99));
  return world;
}

std::vector<double> ar_series(std::size_t n) {
  stats::Rng rng(7);
  std::vector<double> xs;
  double prev = 0.0;
  for (std::size_t t = 0; t < n; ++t) {
    prev = 0.7 * prev + rng.normal();
    xs.push_back(prev);
  }
  return xs;
}

void BM_ArimaFit(benchmark::State& state) {
  const auto xs = ar_series(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    ts::ArimaModel model({2, 0, 1});
    model.fit(xs);
    benchmark::DoNotOptimize(model.aic());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ArimaFit)->Arg(500)->Arg(5000)->Arg(30000);

void BM_ArimaOneStepPredictions(benchmark::State& state) {
  const auto xs = ar_series(static_cast<std::size_t>(state.range(0)));
  ts::ArimaModel model({2, 0, 1});
  model.fit(xs);
  const std::size_t start = xs.size() * 8 / 10;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.one_step_predictions(xs, start));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(xs.size() - start));
}
BENCHMARK(BM_ArimaOneStepPredictions)->Arg(5000)->Arg(30000);

void BM_NarFit(benchmark::State& state) {
  const auto xs = ar_series(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    nn::NarOptions opts;
    opts.delays = 3;
    opts.hidden_nodes = 8;
    opts.mlp.max_epochs = 100;
    nn::NarModel model(opts);
    model.fit(xs);
    benchmark::DoNotOptimize(model.forecast_one(xs));
  }
}
BENCHMARK(BM_NarFit)->Arg(200)->Arg(1000);

void BM_ModelTreeFit(benchmark::State& state) {
  stats::Rng rng(11);
  const auto n = static_cast<std::size_t>(state.range(0));
  stats::Matrix x(n, 5);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < 5; ++j) x(i, j) = rng.uniform();
    y[i] = (x(i, 0) < 0.5 ? 2.0 * x(i, 1) : -x(i, 2)) + rng.normal(0.0, 0.1);
  }
  for (auto _ : state) {
    tree::ModelTree tree;
    tree.fit(x, y);
    benchmark::DoNotOptimize(tree.leaf_count());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ModelTreeFit)->Arg(1000)->Arg(10000);

void BM_LpmLookup(benchmark::State& state) {
  const trace::World& world = shared_world();
  stats::Rng rng(13);
  std::vector<net::Ipv4> probes;
  for (const auto& attack : world.dataset.attacks()) {
    for (const net::Ipv4& bot : attack.bots) {
      probes.push_back(bot);
      if (probes.size() >= 4096) break;
    }
    if (probes.size() >= 4096) break;
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(world.ip_map.lookup(probes[i++ % probes.size()]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LpmLookup);

void BM_ValleyFreeDistanceCold(benchmark::State& state) {
  const trace::World& world = shared_world();
  const auto& ases = world.topology.graph.ases();
  std::size_t i = 0;
  for (auto _ : state) {
    net::ValleyFreeDistance dist(world.topology.graph);  // Cold cache.
    benchmark::DoNotOptimize(
        dist.distance(ases[i % ases.size()], ases[(i * 7 + 1) % ases.size()]));
    ++i;
  }
}
BENCHMARK(BM_ValleyFreeDistanceCold);

void BM_ValleyFreeDistanceWarm(benchmark::State& state) {
  const trace::World& world = shared_world();
  net::ValleyFreeDistance dist(world.topology.graph);
  const auto& ases = world.topology.graph.ases();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dist.distance(ases[i % ases.size()], ases[0]));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ValleyFreeDistanceWarm);

void BM_SourceCoefficient(benchmark::State& state) {
  const trace::World& world = shared_world();
  net::ValleyFreeDistance dist(world.topology.graph);
  const auto& attacks = world.dataset.attacks();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::source_distribution_coefficient(
        attacks[i++ % attacks.size()], world.ip_map, &dist));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SourceCoefficient);

void BM_GaoInference(benchmark::State& state) {
  const trace::World& world = shared_world();
  std::vector<net::Asn> vantages = world.topology.stubs;
  vantages.resize(std::min<std::size_t>(vantages.size(), 16));
  const auto paths = net::dump_paths(world.topology.graph, vantages);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::infer_relationships(paths));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(paths.size()));
}
BENCHMARK(BM_GaoInference);

void BM_TraceGeneration(benchmark::State& state) {
  for (auto _ : state) {
    trace::WorldOptions opts = trace::small_world_options(17);
    opts.generator.days = static_cast<std::size_t>(state.range(0));
    benchmark::DoNotOptimize(trace::build_world(opts).dataset.size());
  }
}
BENCHMARK(BM_TraceGeneration)->Arg(30)->Arg(70)->Unit(benchmark::kMillisecond);

void BM_FamilySeriesExtraction(benchmark::State& state) {
  const trace::World& world = shared_world();
  const std::uint32_t dj = world.dataset.family_index("DirtJumper");
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::extract_family_series(world.dataset, dj, world.ip_map, nullptr));
  }
}
BENCHMARK(BM_FamilySeriesExtraction)->Unit(benchmark::kMillisecond);

void BM_TemporalModelFit(benchmark::State& state) {
  const trace::World& world = shared_world();
  const std::uint32_t dj = world.dataset.family_index("DirtJumper");
  const core::FamilySeries series =
      core::extract_family_series(world.dataset, dj, world.ip_map, nullptr);
  for (auto _ : state) {
    core::TemporalModel model;
    model.fit(series);
    benchmark::DoNotOptimize(model.fitted());
  }
  state.SetLabel(std::to_string(series.magnitude.size()) + " attacks");
}
BENCHMARK(BM_TemporalModelFit)->Unit(benchmark::kMillisecond);

// --- Thread sweeps --------------------------------------------------------
//
// Each sweep pins the parallel runtime to state.range(0) threads; Arg(1) is
// the serial baseline, so the per-arg ratio is the parallel speedup. The
// output is bit-identical across the sweep (the determinism contract), so
// every arg does the same work.

void BM_NarGridSearchThreads(benchmark::State& state) {
  core::set_num_threads(static_cast<std::size_t>(state.range(0)));
  const auto xs = ar_series(300);
  nn::NarGridOptions opts;
  opts.mlp.max_epochs = 80;
  for (auto _ : state) {
    benchmark::DoNotOptimize(nn::nar_grid_search(xs, opts));
  }
  core::set_num_threads(0);
}
BENCHMARK(BM_NarGridSearchThreads)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_TraceGenerationThreads(benchmark::State& state) {
  core::set_num_threads(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    trace::WorldOptions opts = trace::small_world_options(17);
    opts.generator.days = 70;
    benchmark::DoNotOptimize(trace::build_world(opts).dataset.size());
  }
  core::set_num_threads(0);
}
BENCHMARK(BM_TraceGenerationThreads)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_MatrixMultiplyThreads(benchmark::State& state) {
  core::set_num_threads(static_cast<std::size_t>(state.range(0)));
  stats::Rng rng(29);
  const std::size_t n = 192;
  stats::Matrix a(n, n);
  stats::Matrix b(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      a(i, j) = rng.uniform(-1.0, 1.0);
      b(i, j) = rng.uniform(-1.0, 1.0);
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize((a * b).frobenius_norm());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(n * n * n));
  core::set_num_threads(0);
}
BENCHMARK(BM_MatrixMultiplyThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

}  // namespace

BENCHMARK_MAIN();
