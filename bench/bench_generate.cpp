// Scenario-generation perf harness: times `build_world` for every scenario
// in the adversary catalog (SCENARIOS.md) at millions-of-attacks scale and
// reports attacks/sec, emitting a machine-readable JSON report on stdout
// (scripts/bench.sh captures it into results/BENCH_generate.json).
//
// Output contract matches bench_kernels/bench_ingest: stdout carries
// exactly one JSON document, progress goes to stderr, each benchmark runs
// `repeat` times after one warmup, and the report records per-run wall
// times plus the median. `--tiny` shrinks every workload to smoke-test
// size for the `trace`-labeled sanitizer sweep. The checksum is an FNV-1a
// hash over the generated trace, so a nondeterministic generator (the
// catalog's cardinal sin) shows up as a checksum warning right here.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <functional>
#include <string>
#include <vector>

#include "core/parallel.h"
#include "trace/scenario.h"
#include "trace/world.h"

namespace {

struct BenchConfig {
  std::size_t repeat = 5;
  bool tiny = false;
  std::string sha = "unknown";
  std::string cpu = "unknown";
};

struct BenchResult {
  std::string name;
  std::vector<double> runs_ms;
  double checksum = 0.0;  // Trace hash; warns when runs disagree.
  double ops = 0.0;       // Attacks generated per run.
};

double median(std::vector<double> xs) {
  std::sort(xs.begin(), xs.end());
  const std::size_t n = xs.size();
  if (n == 0) return 0.0;
  return n % 2 == 1 ? xs[n / 2] : 0.5 * (xs[n / 2 - 1] + xs[n / 2]);
}

BenchResult run_bench(const std::string& name, const BenchConfig& config,
                      const std::function<double()>& fn) {
  BenchResult result;
  result.name = name;
  std::fprintf(stderr, "[bench_generate] %s: warmup...\n", name.c_str());
  result.checksum = fn();
  for (std::size_t r = 0; r < config.repeat; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    const double check = fn();
    const auto t1 = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    result.runs_ms.push_back(ms);
    std::fprintf(stderr, "[bench_generate] %s: run %zu/%zu %.3f ms\n",
                 name.c_str(), r + 1, config.repeat, ms);
    if (check != result.checksum) {
      std::fprintf(stderr,
                   "[bench_generate] %s: WARNING nondeterministic checksum "
                   "(%.17g vs %.17g)\n",
                   name.c_str(), check, result.checksum);
    }
  }
  return result;
}

/// FNV-1a over every semantically meaningful attack field (same shape as
/// the scenario thread-invariance test's hash); folded to 32 bits so the
/// double-typed checksum stays exact.
double dataset_checksum(const acbm::trace::Dataset& ds) {
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  for (const acbm::trace::Attack& a : ds.attacks()) {
    mix(a.id);
    mix(static_cast<std::uint64_t>(a.start));
    std::uint64_t duration_bits;
    std::memcpy(&duration_bits, &a.duration_s, sizeof duration_bits);
    mix(duration_bits);
    mix(a.target_ip.value);
    mix(a.target_asn);
    mix(a.family);
    mix(a.bots.size());
  }
  return static_cast<double>((h >> 32) ^ (h & 0xffffffffull));
}

/// The bench world: the same tuning the thread-invariance test uses to
/// cross one million attacks cheaply (short window, high rate, small
/// magnitudes, snapshots off), so attacks/sec here describes exactly the
/// workload the determinism contract is verified on.
acbm::trace::WorldOptions bench_world_options(const char* scenario_name,
                                              bool tiny) {
  acbm::trace::WorldOptions opts = acbm::trace::small_world_options(7);
  (void)acbm::trace::apply_scenario(opts, scenario_name);
  opts.generator.days = tiny ? 6 : 48;
  opts.generator.activity_scale = tiny ? 2.0 : 130.0;
  opts.generator.emit_snapshots = false;
  opts.generator.pool_override = 2000;
  for (acbm::trace::FamilyProfile& profile : opts.generator.families) {
    profile.median_bots = 4.0;
    profile.bots_sigma = 0.3;
  }
  return opts;
}

BenchResult bench_scenario(const char* scenario_name,
                           const BenchConfig& config) {
  const acbm::trace::WorldOptions opts =
      bench_world_options(scenario_name, config.tiny);
  std::size_t attacks = 0;
  BenchResult result =
      run_bench(std::string("generate_") + scenario_name, config, [&]() {
        const acbm::trace::World world = acbm::trace::build_world(opts);
        attacks = world.dataset.size();
        return dataset_checksum(world.dataset);
      });
  result.ops = static_cast<double>(attacks);
  return result;
}

void print_json(const BenchConfig& config,
                const std::vector<BenchResult>& results) {
  std::printf("{\n");
  std::printf("  \"schema\": \"acbm-bench-generate-v1\",\n");
  std::printf("  \"git_sha\": \"%s\",\n", config.sha.c_str());
  std::printf("  \"cpu\": \"%s\",\n", config.cpu.c_str());
  std::printf("  \"threads\": %zu,\n", acbm::core::num_threads());
  std::printf("  \"repeat\": %zu,\n", config.repeat);
  std::printf("  \"tiny\": %s,\n", config.tiny ? "true" : "false");
  std::printf("  \"unix_time\": %lld,\n",
              static_cast<long long>(std::time(nullptr)));
  std::printf("  \"benchmarks\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const BenchResult& r = results[i];
    const double med = median(r.runs_ms);
    std::printf("    {\"name\": \"%s\", \"median_ms\": %.3f, "
                "\"min_ms\": %.3f, \"checksum\": %.17g, ",
                r.name.c_str(), med,
                *std::min_element(r.runs_ms.begin(), r.runs_ms.end()),
                r.checksum);
    if (r.ops > 0.0 && med > 0.0) {
      std::printf("\"attacks_per_run\": %.0f, \"attacks_per_sec\": %.0f, ",
                  r.ops, r.ops / (med / 1000.0));
    }
    std::printf("\"runs_ms\": [");
    for (std::size_t j = 0; j < r.runs_ms.size(); ++j) {
      std::printf("%s%.3f", j == 0 ? "" : ", ", r.runs_ms[j]);
    }
    std::printf("]}%s\n", i + 1 < results.size() ? "," : "");
  }
  std::printf("  ]\n}\n");
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--tiny") {
      config.tiny = true;
    } else if (arg == "--repeat" && i + 1 < argc) {
      config.repeat =
          static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (arg == "--sha" && i + 1 < argc) {
      config.sha = argv[++i];
    } else if (arg == "--cpu" && i + 1 < argc) {
      config.cpu = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: bench_generate [--tiny] [--repeat N] [--sha SHA] "
                   "[--cpu NAME]\n");
      return 2;
    }
  }
  if (config.repeat == 0) config.repeat = 1;

  std::vector<BenchResult> results;
  for (const acbm::trace::Scenario& scenario :
       acbm::trace::scenario_catalog()) {
    results.push_back(bench_scenario(scenario.name, config));
  }
  print_json(config, results);
  return 0;
}
