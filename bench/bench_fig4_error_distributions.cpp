// Reproduces Figure 4 and the §VI-B RMSE numbers: error distributions of
// the timestamp predictions for all models (the paper plots them with a
// log-scale y axis) and the RMSE block. Paper reference values:
//   hour RMSE — spatial 5.0 h, temporal 3.82 h, spatiotemporal 1.85 h
//   date RMSE — spatial 5.17 d,                  spatiotemporal 2.72 d
// Absolute values depend on the substrate; the ordering must hold.
#include <cstdio>

#include "bench_util.h"
#include "core/evaluation.h"

int main() {
  using namespace acbm;

  bench::print_header(
      "Figure 4 — Spatiotemporal prediction error distributions + RMSE");
  const trace::World world = bench::make_paper_world();
  const core::TimestampEvaluation eval = core::evaluate_timestamps(
      world.dataset, world.ip_map, bench::bench_st_options());
  std::printf("%zu test attacks scored\n\n", eval.truth_hour.size());

  std::printf("RMSE summary (paper reference in parentheses):\n");
  std::printf("  hour: spatial %.2f h (5.00)   temporal %.2f h (3.82)   "
              "spatiotemporal %.2f h (1.85)\n",
              eval.rmse_hour_spa, eval.rmse_hour_tmp, eval.rmse_hour_st);
  std::printf("  date: spatial %.2f d (5.17)   temporal %.2f d (n/a )   "
              "spatiotemporal %.2f d (2.72)\n\n",
              eval.rmse_day_spa, eval.rmse_day_tmp, eval.rmse_day_st);

  const auto hour_err_spa = bench::abs_errors(eval.truth_hour, eval.spa_hour);
  const auto hour_err_tmp = bench::abs_errors(eval.truth_hour, eval.tmp_hour);
  const auto hour_err_st = bench::abs_errors(eval.truth_hour, eval.st_hour);
  bench::print_histogram(hour_err_spa, 0.0, 24.0, 12,
                         "hour |error| — spatial model");
  bench::print_histogram(hour_err_tmp, 0.0, 24.0, 12,
                         "hour |error| — temporal model");
  bench::print_histogram(hour_err_st, 0.0, 24.0, 12,
                         "hour |error| — spatiotemporal model");

  const auto day_err_spa = bench::abs_errors(eval.truth_day, eval.spa_day);
  const auto day_err_st = bench::abs_errors(eval.truth_day, eval.st_day);
  bench::print_histogram(day_err_spa, 0.0, 30.0, 10,
                         "date |error| (days) — spatial model");
  bench::print_histogram(day_err_st, 0.0, 30.0, 10,
                         "date |error| (days) — spatiotemporal model");

  bench::print_rule();
  const bool ordering_holds = eval.rmse_hour_st <= eval.rmse_hour_spa &&
                              eval.rmse_hour_st <= eval.rmse_hour_tmp &&
                              eval.rmse_day_st <= eval.rmse_day_spa;
  std::printf("Ordering check (spatiotemporal best on hour AND date): %s\n",
              ordering_holds ? "HOLDS" : "VIOLATED");
  return ordering_holds ? 0 : 1;
}
