// Extension beyond the paper: short-term attack-rate forecasting at the
// granularity of the dataset's hourly reports (§II-C). For each of the
// three most active families, the hourly attack-count series is forecast
// one hour ahead with a seasonal ARIMA (period 24), a plain ARIMA, and the
// naive baselines — quantifying how much of the diurnal structure the
// paper's temporal modeling leaves on the table at sub-day horizons.
#include <cstdio>
#include <span>

#include "bench_util.h"
#include "core/baselines.h"
#include "core/features.h"
#include "stats/metrics.h"
#include "ts/arima.h"
#include "ts/seasonal.h"

int main() {
  using namespace acbm;

  bench::print_header(
      "Extension — hourly attack-rate forecasting (seasonal vs plain ARIMA)");
  const trace::World world = bench::make_paper_world();
  const std::size_t hours = 242 * 24;

  std::printf("%-12s %12s %12s %12s %12s\n", "Family", "SARIMA", "ARIMA",
              "always-same", "always-mean");
  bench::print_rule();
  for (const char* name : {"DirtJumper", "Pandora", "BlackEnergy"}) {
    const std::uint32_t family = world.dataset.family_index(name);
    const std::vector<double> counts =
        core::hourly_attack_counts(world.dataset, family, hours);
    const std::size_t split = hours * 8 / 10;

    ts::SeasonalArimaModel seasonal({.p = 1, .d = 0, .q = 1, .P = 1, .D = 1,
                                     .period = 24});
    seasonal.fit(std::span<const double>(counts).subspan(0, split));
    const auto s_preds = seasonal.one_step_predictions(counts, split);

    ts::ArimaModel plain({2, 0, 1});
    plain.fit(std::span<const double>(counts).subspan(0, split));
    const auto p_preds = plain.one_step_predictions(counts, split);

    const auto same = core::always_same_predictions(counts, split);
    const auto mean = core::always_mean_predictions(counts, split);
    const std::vector<double> truth(counts.begin() + static_cast<std::ptrdiff_t>(split),
                                    counts.end());
    std::printf("%-12s %12.4f %12.4f %12.4f %12.4f\n", name,
                stats::rmse(truth, s_preds), stats::rmse(truth, p_preds),
                stats::rmse(truth, same), stats::rmse(truth, mean));
  }
  bench::print_rule();
  std::printf(
      "Shape check: the period-24 seasonal model wins for families with\n"
      "pronounced diurnal launch preferences, confirming the hourly report\n"
      "stream carries predictive structure below the daily horizon.\n");
  return 0;
}
