// Ablation benches for the design choices DESIGN.md §5 calls out:
//   1. ARIMA order: fixed (2,0,1) vs AIC auto-selection (Fig. 1 metric).
//   2. Spatial NAR: grid-searched (delays x hidden) vs fixed architecture.
//   3. Spatiotemporal tree: MLR leaves + 0.88 SD pruning vs constant leaves
//      and vs no pruning (Fig. 4 metric).
//   4. A^s feature distances: Gao-inferred relationships vs ground-truth
//      topology (robustness of Eq. 4 to inference error).
#include <cstdio>

#include "bench_util.h"
#include "core/evaluation.h"
#include "net/gao.h"
#include "net/routing.h"
#include "stats/descriptive.h"

namespace {

using namespace acbm;

void ablate_arima_order(const trace::World& world) {
  bench::print_header("Ablation 1 — ARIMA order: fixed (2,0,1) vs auto-AIC");
  std::printf("%-12s %18s %18s\n", "Family", "fixed RMSE", "auto RMSE");
  bench::print_rule();
  for (std::uint32_t family : core::most_active_families(world.dataset, 3)) {
    core::TemporalModelOptions fixed;
    core::TemporalModelOptions autosel;
    autosel.auto_order = true;
    autosel.auto_options = {.max_p = 3, .max_d = 1, .max_q = 2};
    const auto eval_fixed = core::evaluate_temporal_series(
        world.dataset, world.ip_map, family, core::TemporalSeries::kMagnitude,
        fixed);
    const auto eval_auto = core::evaluate_temporal_series(
        world.dataset, world.ip_map, family, core::TemporalSeries::kMagnitude,
        autosel);
    std::printf("%-12s %18.3f %18.3f\n", eval_fixed.family.c_str(),
                eval_fixed.model_rmse, eval_auto.model_rmse);
  }
}

void ablate_nar_grid(const trace::World& world) {
  bench::print_header(
      "Ablation 2 — spatial NAR: grid search vs fixed architecture "
      "(duration RMSE)");
  std::printf("%-12s %18s %18s\n", "Family", "grid RMSE", "fixed RMSE");
  bench::print_rule();
  for (std::uint32_t family : core::most_active_families(world.dataset, 2)) {
    core::SpatialModelOptions grid;
    grid.grid_search = true;
    grid.grid.mlp.max_epochs = 100;
    core::SpatialModelOptions fixed;
    fixed.grid_search = false;
    fixed.fixed.mlp.max_epochs = 100;
    const auto eval_grid = core::evaluate_spatial_series(
        world.dataset, world.ip_map, family, core::SpatialSeries::kDuration,
        grid);
    const auto eval_fixed = core::evaluate_spatial_series(
        world.dataset, world.ip_map, family, core::SpatialSeries::kDuration,
        fixed);
    std::printf("%-12s %18.1f %18.1f\n", eval_grid.family.c_str(),
                eval_grid.model_rmse, eval_fixed.model_rmse);
  }
}

void ablate_tree(const trace::World& world) {
  bench::print_header(
      "Ablation 3 — spatiotemporal tree: leaf type and SD pruning "
      "(hour RMSE)");
  struct Config {
    const char* name;
    bool linear_leaves;
    bool pruning;
    double sd_keep;
  };
  const Config configs[] = {
      {"MLR leaves, 0.88 SD prune (paper)", true, true, 0.88},
      {"constant leaves, 0.88 SD prune", false, true, 0.88},
      {"MLR leaves, no pruning", true, false, 0.88},
      {"MLR leaves, prune, keep 100% SD", true, true, 1.0},
  };
  std::printf("%-38s %12s %12s\n", "configuration", "hour RMSE", "day RMSE");
  bench::print_rule();
  for (const Config& config : configs) {
    core::SpatiotemporalOptions opts = bench::bench_st_options();
    opts.tree.linear_leaves = config.linear_leaves;
    opts.tree.enable_pruning = config.pruning;
    opts.tree.sd_keep_ratio = config.sd_keep;
    const auto eval =
        core::evaluate_timestamps(world.dataset, world.ip_map, opts);
    std::printf("%-38s %12.3f %12.3f\n", config.name, eval.rmse_hour_st,
                eval.rmse_day_st);
  }
}

void ablate_distances(const trace::World& world) {
  bench::print_header(
      "Ablation 4 — A^s distances: Gao-inferred vs ground-truth topology");
  std::vector<net::Asn> vantages = world.topology.stubs;
  vantages.resize(std::min<std::size_t>(vantages.size(), 30));
  const auto paths = net::dump_paths(world.topology.graph, vantages);
  const net::GaoResult gao = net::infer_relationships(paths);
  std::printf("Gao inference accuracy on this topology: %.1f%%\n\n",
              100.0 * net::relationship_accuracy(world.topology.graph,
                                                 gao.graph));

  net::ValleyFreeDistance truth_dist(world.topology.graph);
  net::ValleyFreeDistance gao_dist(gao.graph);
  const std::uint32_t dj = world.dataset.family_index("DirtJumper");
  const auto indices = world.dataset.attacks_of_family(dj);

  std::vector<double> truth_coeff;
  std::vector<double> gao_coeff;
  for (std::size_t i = 0; i < indices.size() && i < 400; ++i) {
    const trace::Attack& attack = world.dataset.attacks()[indices[i]];
    truth_coeff.push_back(core::source_distribution_coefficient(
        attack, world.ip_map, &truth_dist));
    gao_coeff.push_back(core::source_distribution_coefficient(
        attack, world.ip_map, &gao_dist));
  }
  std::printf("A^s over %zu DirtJumper attacks:\n", truth_coeff.size());
  std::printf("  mean (truth distances) = %.4f\n",
              stats::mean(truth_coeff));
  std::printf("  mean (Gao distances)   = %.4f\n", stats::mean(gao_coeff));
  std::printf("  correlation            = %.4f "
              "(high = feature robust to inference error)\n",
              stats::pearson_correlation(truth_coeff, gao_coeff));
}

void ablate_intel_budget(const trace::World& world) {
  bench::print_header(
      "Ablation 5 — threat-intel budget: per-target history visible to the "
      "spatial models (paper §VI-B uses 10 attacks per group)");
  std::printf("%-18s %12s %12s\n", "history limit", "hour RMSE", "day RMSE");
  bench::print_rule();
  for (std::size_t limit : {5ul, 10ul, 25ul, 100ul, 0ul}) {
    core::SpatiotemporalOptions opts = bench::bench_st_options();
    opts.max_target_history = limit;
    const auto eval =
        core::evaluate_timestamps(world.dataset, world.ip_map, opts);
    if (limit == 0) {
      std::printf("%-18s %12.3f %12.3f\n", "unlimited", eval.rmse_hour_st,
                  eval.rmse_day_st);
    } else {
      std::printf("%-18zu %12.3f %12.3f\n", limit, eval.rmse_hour_st,
                  eval.rmse_day_st);
    }
  }
  std::printf(
      "\nEven a 10-attack intel budget recovers most of the unlimited-\n"
      "history accuracy — the paper's argument that the model remains\n"
      "useful for defenders with limited visibility.\n");
}

}  // namespace

int main() {
  const trace::World world = bench::make_paper_world();
  ablate_arima_order(world);
  std::printf("\n");
  ablate_nar_grid(world);
  std::printf("\n");
  ablate_tree(world);
  std::printf("\n");
  ablate_distances(world);
  std::printf("\n");
  ablate_intel_budget(world);
  return 0;
}
