// Reproduces Figure 3: spatiotemporal predictions of DDoS attack
// timestamps. The paper plots the distribution of attack dates (top) and
// attack hours (bottom) for the ground truth, the spatial model, and the
// spatiotemporal model (the temporal model is excluded from the date plot
// as it does not track specific targets). We print the same distributions
// as aligned histogram columns.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/evaluation.h"

namespace {

std::vector<std::size_t> bin(const std::vector<double>& values, double lo,
                             double hi, std::size_t bins) {
  std::vector<std::size_t> counts(bins, 0);
  for (double v : values) {
    double c = v < lo ? lo : (v >= hi ? hi - 1e-9 : v);
    ++counts[static_cast<std::size_t>((c - lo) / (hi - lo) *
                                      static_cast<double>(bins))];
  }
  return counts;
}

void print_distribution_table(const char* title,
                              const std::vector<const char*>& names,
                              const std::vector<std::vector<std::size_t>>& cols,
                              double lo, double width) {
  std::printf("\n%s\n", title);
  std::printf("  %-16s", "bin");
  for (const char* n : names) std::printf(" %14s", n);
  std::printf("\n");
  for (std::size_t b = 0; b < cols.front().size(); ++b) {
    std::printf("  [%6.1f,%6.1f)",
                lo + width * static_cast<double>(b),
                lo + width * static_cast<double>(b + 1));
    for (const auto& col : cols) std::printf(" %14zu", col[b]);
    std::printf("\n");
  }
}

}  // namespace

int main() {
  using namespace acbm;

  bench::print_header(
      "Figure 3 — Spatiotemporal predictions for DDoS attack timestamps");
  const trace::World world = bench::make_paper_world();
  const core::TimestampEvaluation eval = core::evaluate_timestamps(
      world.dataset, world.ip_map, bench::bench_st_options());
  std::printf("%zu test attacks scored\n", eval.truth_hour.size());

  // Date distributions (12 bins over the test window's day range).
  double day_lo = 1e18;
  double day_hi = -1e18;
  for (double d : eval.truth_day) {
    day_lo = d < day_lo ? d : day_lo;
    day_hi = d > day_hi ? d : day_hi;
  }
  day_hi += 1.0;
  const std::size_t day_bins = 12;
  print_distribution_table(
      "Attack DATE distribution (counts per bin of days)",
      {"ground truth", "spatial", "spatiotemporal"},
      {bin(eval.truth_day, day_lo, day_hi, day_bins),
       bin(eval.spa_day, day_lo, day_hi, day_bins),
       bin(eval.st_day, day_lo, day_hi, day_bins)},
      day_lo, (day_hi - day_lo) / static_cast<double>(day_bins));

  // Hour distributions (24 bins).
  print_distribution_table(
      "Attack HOUR distribution (counts per hour of day)",
      {"ground truth", "spatial", "temporal", "spatiotemporal"},
      {bin(eval.truth_hour, 0.0, 24.0, 24), bin(eval.spa_hour, 0.0, 24.0, 24),
       bin(eval.tmp_hour, 0.0, 24.0, 24), bin(eval.st_hour, 0.0, 24.0, 24)},
      0.0, 1.0);

  bench::print_rule();
  std::printf(
      "Shape check vs the paper: the spatiotemporal columns hug the ground\n"
      "truth far closer than the spatial model for both date and hour; the\n"
      "temporal model is competitive on hours only.\n");
  return 0;
}
