// Reproduces Figure 2: the spatial model predicting attacker source-AS
// distributions per target network for BlackEnergy, DirtJumper, and
// Pandora. The paper overlays the predicted and ground-truth ASN
// distributions and shows the error distribution below; here we print the
// aggregate distributions side by side, the per-attack total-variation
// error histogram, and baseline comparisons.
#include <cstdio>

#include "bench_util.h"
#include "core/evaluation.h"

int main() {
  using namespace acbm;

  bench::print_header(
      "Figure 2 — Spatial model: prediction of attacking source distributions");
  const trace::World world = bench::make_paper_world();
  core::SpatialModelOptions opts;
  opts.grid_search = false;  // Share predictor does not need the NARs.

  for (const char* name : {"BlackEnergy", "DirtJumper", "Pandora"}) {
    const std::uint32_t family = world.dataset.family_index(name);
    const core::SourceDistributionEvaluation eval =
        core::evaluate_source_distribution(world.dataset, world.ip_map,
                                           family, opts);
    std::printf("\n%s: %zu test attacks across targets\n", name,
                eval.per_attack_tv.size());
    std::printf("  RMSE(TV)  spatial=%.4f  always-same=%.4f  always-mean=%.4f\n",
                eval.model_rmse, eval.same_rmse, eval.mean_rmse);

    std::printf("  %-10s %12s %12s\n", "source AS", "truth freq",
                "predicted");
    const std::size_t top = eval.ases.size() < 10 ? eval.ases.size() : 10;
    for (std::size_t i = 0; i < top; ++i) {
      std::printf("  AS%-8u %12.4f %12.4f\n", eval.ases[i],
                  eval.truth_freq[i], eval.pred_freq[i]);
    }
    bench::print_histogram(eval.per_attack_tv, 0.0, 1.0, 10,
                           "  per-attack total-variation error");
  }

  bench::print_rule();
  std::printf(
      "Shape check vs the paper: predicted AS distributions nearly overlay\n"
      "the ground truth for DirtJumper and Pandora (errors piled in the\n"
      "lowest bin); BlackEnergy slightly worse but still accurate.\n");
  return 0;
}
