// Shared helpers for the reproduction benches: paper-scale world
// construction, fixed-width table printing, and ASCII histograms that stand
// in for the paper's figures.
#pragma once

#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "core/spatiotemporal_model.h"
#include "trace/world.h"

namespace acbm::bench {

/// The paper-scale world every reproduction bench runs against. Seed fixed
/// so all benches describe the same trace.
inline trace::World make_paper_world(std::uint64_t seed = 2012) {
  return trace::build_world(trace::paper_world_options(seed));
}

/// Spatiotemporal options tuned for bench runtime: fixed NAR architecture
/// instead of per-target grid search (see bench_ablations for the
/// grid-search comparison).
inline core::SpatiotemporalOptions bench_st_options() {
  core::SpatiotemporalOptions opts;
  opts.spatial.grid_search = false;
  opts.spatial.fixed.mlp.max_epochs = 120;
  return opts;
}

inline void print_rule(int width = 78) {
  for (int i = 0; i < width; ++i) std::fputc('-', stdout);
  std::fputc('\n', stdout);
}

inline void print_header(const std::string& title) {
  print_rule();
  std::printf("%s\n", title.c_str());
  print_rule();
}

/// Renders a histogram of `values` over [lo, hi) as rows of '#' bars.
inline void print_histogram(std::span<const double> values, double lo,
                            double hi, std::size_t bins,
                            const std::string& label) {
  std::vector<std::size_t> counts(bins, 0);
  for (double v : values) {
    double clamped = v;
    if (clamped < lo) clamped = lo;
    if (clamped >= hi) clamped = hi - 1e-9;
    const auto bin = static_cast<std::size_t>((clamped - lo) / (hi - lo) *
                                              static_cast<double>(bins));
    ++counts[bin < bins ? bin : bins - 1];
  }
  std::size_t max_count = 1;
  for (std::size_t c : counts) max_count = c > max_count ? c : max_count;
  std::printf("%s (n=%zu)\n", label.c_str(), values.size());
  const double width = (hi - lo) / static_cast<double>(bins);
  for (std::size_t b = 0; b < bins; ++b) {
    const double bin_lo = lo + width * static_cast<double>(b);
    std::printf("  [%7.2f,%7.2f) %6zu |", bin_lo, bin_lo + width, counts[b]);
    const auto bar = static_cast<std::size_t>(
        50.0 * static_cast<double>(counts[b]) / static_cast<double>(max_count));
    for (std::size_t i = 0; i < bar; ++i) std::fputc('#', stdout);
    std::fputc('\n', stdout);
  }
}

/// Per-element absolute errors |truth - pred|.
inline std::vector<double> abs_errors(std::span<const double> truth,
                                      std::span<const double> pred) {
  std::vector<double> out;
  out.reserve(truth.size());
  for (std::size_t i = 0; i < truth.size(); ++i) {
    const double d = truth[i] - pred[i];
    out.push_back(d < 0 ? -d : d);
  }
  return out;
}

}  // namespace acbm::bench
