// Reproduces Table I: activity level of bots — average attacks per day,
// number of active days, and CV of the daily attack count, per family.
// Paper values are printed alongside the values measured on the generated
// trace; the generator is calibrated so they should agree closely.
#include <cstdio>

#include "bench_util.h"
#include "trace/generator.h"

int main() {
  using namespace acbm;

  bench::print_header(
      "Table I — Activity level of bots (paper value / measured value)");
  const trace::World world = bench::make_paper_world();
  std::printf("%zu verified attacks generated over 242 days (paper: 50,704)\n\n",
              world.dataset.size());

  std::printf("%-12s | %10s %10s | %8s %8s | %6s %6s\n", "Family",
              "avg/d (p)", "avg/d (m)", "days(p)", "days(m)", "CV(p)",
              "CV(m)");
  bench::print_rule();
  const auto& rows = trace::table_one_reference();
  for (std::size_t f = 0; f < rows.size(); ++f) {
    const trace::FamilyActivityStats stats = trace::activity_stats(
        world.dataset, static_cast<std::uint32_t>(f));
    std::printf("%-12s | %10.2f %10.2f | %8zu %8zu | %6.2f %6.2f\n",
                rows[f].name, rows[f].avg_per_day, stats.avg_per_day,
                rows[f].active_days, stats.active_days, rows[f].cv, stats.cv);
  }
  bench::print_rule();
  std::printf("(p) = value published in the paper; (m) = measured on the\n"
              "synthetic trace. Shapes to check: DirtJumper most active,\n"
              "AldiBot least, YZF shortest-lived, DirtJumper/BlackEnergy/\n"
              "Pandora stably active (low CV among high-volume families).\n");
  return 0;
}
