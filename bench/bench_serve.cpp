// Serving perf harness: cold-start cost of the zero-copy .armm mmap path
// vs the framed model.art load, and daemon round-trip throughput/latency
// (qps, p50/p99) at 1/4/16 concurrent connections, batched and unbatched —
// emitted as a machine-readable JSON report on stdout (scripts/bench.sh
// captures it into results/BENCH_serve.json).
//
// Output contract matches bench_kernels/bench_ingest: stdout carries
// exactly one JSON document, progress goes to stderr, each benchmark runs
// `repeat` times after one warmup, and the report records per-run wall
// times plus the median. `--tiny` shrinks every workload to smoke-test
// size for the `serve`-labeled sanitizer sweep. The query mix is the same
// seeded LCG scripts/loadgen.sh replays from the shell.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "core/artifact_map.h"
#include "core/durable.h"
#include "core/parallel.h"
#include "core/pipeline.h"
#include "core/server.h"
#include "core/serving.h"
#include "stats/kernels.h"
#include "trace/world.h"

namespace {

namespace fs = std::filesystem;
using acbm::core::AdversaryModel;
using acbm::core::Precision;
using acbm::core::ServingModel;
using acbm::core::SpatiotemporalOptions;
using acbm::core::serve::Client;
using acbm::core::serve::Server;
using acbm::core::serve::ServerOptions;
using acbm::core::serve::Status;
using Clock = std::chrono::steady_clock;

struct BenchConfig {
  std::size_t repeat = 5;
  bool tiny = false;
  std::string sha = "unknown";
  std::string cpu = "unknown";
};

struct BenchResult {
  std::string name;
  std::vector<double> runs_ms;
  double checksum = 0.0;  // Defeats dead-code elimination; sanity-checked.
  double ops = 0.0;       // Loads / requests per run.
  double p50_us = 0.0;    // Per-request latency percentiles (daemon
  double p99_us = 0.0;    // benchmarks only; 0 when not measured).
};

double median(std::vector<double> xs) {
  std::sort(xs.begin(), xs.end());
  const std::size_t n = xs.size();
  if (n == 0) return 0.0;
  return n % 2 == 1 ? xs[n / 2] : 0.5 * (xs[n / 2 - 1] + xs[n / 2]);
}

double percentile(std::vector<double>& xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const std::size_t at = std::min(
      xs.size() - 1, static_cast<std::size_t>(p * static_cast<double>(
                                                      xs.size() - 1)));
  return xs[at];
}

BenchResult run_bench(const std::string& name, const BenchConfig& config,
                      const std::function<double()>& fn) {
  BenchResult result;
  result.name = name;
  std::fprintf(stderr, "[bench_serve] %s: warmup...\n", name.c_str());
  result.checksum = fn();
  for (std::size_t r = 0; r < config.repeat; ++r) {
    const auto t0 = Clock::now();
    const double check = fn();
    const auto t1 = Clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    result.runs_ms.push_back(ms);
    std::fprintf(stderr, "[bench_serve] %s: run %zu/%zu %.3f ms\n",
                 name.c_str(), r + 1, config.repeat, ms);
    if (check != result.checksum) {
      std::fprintf(stderr,
                   "[bench_serve] %s: WARNING nondeterministic checksum "
                   "(%.17g vs %.17g)\n",
                   name.c_str(), check, result.checksum);
    }
  }
  return result;
}

struct TempDir {
  fs::path path;
  TempDir() {
    static std::atomic<int> counter{0};
    path = fs::temp_directory_path() /
           ("acbm_bench_serve_" + std::to_string(counter.fetch_add(1)));
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

/// The fitted model saved in both artifact formats, shared by every
/// benchmark (fitting dominates setup, not measurement).
struct Workload {
  TempDir dir;
  fs::path armm_path;
  fs::path art_path;
  std::vector<acbm::net::Asn> targets;

  explicit Workload(const BenchConfig& config) {
    const acbm::trace::World world = acbm::trace::build_world(
        acbm::trace::small_world_options(config.tiny ? 37 : 5));
    SpatiotemporalOptions opts;
    opts.spatial.grid_search = false;
    if (config.tiny) opts.spatial.fixed.mlp.max_epochs = 40;
    AdversaryModel model(opts);
    model.fit(world.dataset, world.ip_map);
    const ServingModel serving =
        ServingModel::from_image(acbm::core::armm::pack_model(model));
    armm_path = dir.path / "model.armm";
    art_path = dir.path / "model.art";
    acbm::core::durable::atomic_write_file(armm_path, serving.image());
    std::ofstream out(art_path, std::ios::binary);
    model.save_framed(out);
    targets = serving.targets();
  }
};

/// Cold start, mmap path: map + validate + first forecast. ops = loads.
BenchResult bench_cold_mmap(const Workload& w, const BenchConfig& config) {
  const std::size_t loads = config.tiny ? 8 : 64;
  BenchResult result = run_bench("cold_start_mmap_armm", config, [&]() {
    double acc = 0.0;
    for (std::size_t i = 0; i < loads; ++i) {
      const ServingModel model = ServingModel::map_file(w.armm_path);
      acc += model.predict(w.targets.front())->magnitude;
    }
    return acc;
  });
  result.ops = static_cast<double>(loads);
  return result;
}

/// Cold start, framed path: map + CRC + deserialize + re-pack + first
/// forecast — what serving a model.art costs. ops = loads.
BenchResult bench_cold_framed(const Workload& w, const BenchConfig& config) {
  const std::size_t loads = config.tiny ? 1 : 3;
  BenchResult result = run_bench("cold_start_framed_art", config, [&]() {
    double acc = 0.0;
    for (std::size_t i = 0; i < loads; ++i) {
      const ServingModel model = ServingModel::load_any(w.art_path);
      acc += model.predict(w.targets.front())->magnitude;
    }
    return acc;
  });
  result.ops = static_cast<double>(loads);
  return result;
}

/// Daemon round-trip load: `connections` client threads each replay a
/// seeded LCG mix of `per_conn` predicts (same generator as
/// scripts/loadgen.sh). Per-request latencies accumulate across repeats
/// for the percentile fields; ops = total requests per run.
BenchResult bench_daemon(const Workload& w, const BenchConfig& config,
                         std::size_t connections, bool batching) {
  TempDir dir;
  ServerOptions opts;
  opts.socket_path = dir.path / "bench.sock";
  opts.models.emplace_back("m", w.armm_path);
  opts.threads = 4;
  opts.batching = batching;
  opts.watch_interval_ms = 0;  // No rotation in the timed loop.
  opts.preload = true;
  Server server(std::move(opts));
  server.start();

  const std::size_t per_conn = config.tiny ? 50 : 2000;
  std::vector<double> latencies_us;
  std::mutex lat_mu;
  const std::string name = "daemon_qps_c" + std::to_string(connections) +
                           (batching ? "" : "_unbatched");
  BenchResult result = run_bench(name, config, [&]() {
    std::atomic<std::uint64_t> checksum{0};
    std::vector<std::thread> threads;
    threads.reserve(connections);
    for (std::size_t c = 0; c < connections; ++c) {
      threads.emplace_back([&, c]() {
        Client client = Client::connect_unix(server.socket_path());
        std::vector<double> local;
        local.reserve(per_conn);
        std::uint64_t state = 1 + c;  // loadgen.sh's LCG, seeded per conn.
        std::uint64_t acc = 0;
        for (std::size_t i = 0; i < per_conn; ++i) {
          state = state * 6364136223846793005ull + 1442695040888963407ull;
          const acbm::net::Asn asn =
              w.targets[(state >> 33) % w.targets.size()];
          const auto t0 = Clock::now();
          const auto [status, pred] = client.predict("m", asn);
          const auto t1 = Clock::now();
          local.push_back(
              std::chrono::duration<double, std::micro>(t1 - t0).count());
          if (status == Status::kOk) {
            acc += static_cast<std::uint64_t>(pred->prediction.magnitude);
          }
        }
        checksum.fetch_add(acc);
        std::lock_guard lock(lat_mu);
        latencies_us.insert(latencies_us.end(), local.begin(), local.end());
      });
    }
    for (std::thread& t : threads) t.join();
    return static_cast<double>(checksum.load());
  });
  server.stop();
  result.ops = static_cast<double>(connections * per_conn);
  result.p50_us = percentile(latencies_us, 0.50);
  result.p99_us = percentile(latencies_us, 0.99);
  return result;
}

void print_json(const BenchConfig& config,
                const std::vector<BenchResult>& results) {
  std::printf("{\n");
  std::printf("  \"schema\": \"acbm-bench-serve-v1\",\n");
  std::printf("  \"git_sha\": \"%s\",\n", config.sha.c_str());
  std::printf("  \"cpu\": \"%s\",\n", config.cpu.c_str());
  std::printf("  \"isa\": \"%s\",\n",
              acbm::stats::isa_name(acbm::stats::active_isa()));
  std::printf("  \"threads\": %zu,\n", acbm::core::num_threads());
  std::printf("  \"repeat\": %zu,\n", config.repeat);
  std::printf("  \"tiny\": %s,\n", config.tiny ? "true" : "false");
  std::printf("  \"unix_time\": %lld,\n",
              static_cast<long long>(std::time(nullptr)));
  // Headline ratio: per-load framed cost over per-load mmap cost.
  double mmap_per_load = 0.0, framed_per_load = 0.0;
  for (const BenchResult& r : results) {
    if (r.name == "cold_start_mmap_armm" && r.ops > 0.0) {
      mmap_per_load = median(r.runs_ms) / r.ops;
    }
    if (r.name == "cold_start_framed_art" && r.ops > 0.0) {
      framed_per_load = median(r.runs_ms) / r.ops;
    }
  }
  if (mmap_per_load > 0.0) {
    std::printf("  \"cold_start_speedup\": %.1f,\n",
                framed_per_load / mmap_per_load);
  }
  std::printf("  \"benchmarks\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const BenchResult& r = results[i];
    const double med = median(r.runs_ms);
    std::printf("    {\"name\": \"%s\", \"median_ms\": %.3f, "
                "\"min_ms\": %.3f, \"checksum\": %.17g, ",
                r.name.c_str(), med,
                *std::min_element(r.runs_ms.begin(), r.runs_ms.end()),
                r.checksum);
    if (r.ops > 0.0 && med > 0.0) {
      std::printf("\"ops_per_run\": %.0f, \"ops_per_sec\": %.0f, ", r.ops,
                  r.ops / (med / 1000.0));
    }
    if (r.p99_us > 0.0) {
      std::printf("\"p50_us\": %.1f, \"p99_us\": %.1f, ", r.p50_us,
                  r.p99_us);
    }
    std::printf("\"runs_ms\": [");
    for (std::size_t j = 0; j < r.runs_ms.size(); ++j) {
      std::printf("%s%.3f", j == 0 ? "" : ", ", r.runs_ms[j]);
    }
    std::printf("]}%s\n", i + 1 < results.size() ? "," : "");
  }
  std::printf("  ]\n}\n");
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--tiny") {
      config.tiny = true;
    } else if (arg == "--repeat" && i + 1 < argc) {
      config.repeat =
          static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (arg == "--sha" && i + 1 < argc) {
      config.sha = argv[++i];
    } else if (arg == "--cpu" && i + 1 < argc) {
      config.cpu = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: bench_serve [--tiny] [--repeat N] [--sha SHA] "
                   "[--cpu NAME]\n");
      return 2;
    }
  }
  if (config.repeat == 0) config.repeat = 1;

  std::fprintf(stderr, "[bench_serve] fitting workload model...\n");
  const Workload workload(config);

  std::vector<BenchResult> results;
  results.push_back(bench_cold_mmap(workload, config));
  results.push_back(bench_cold_framed(workload, config));
  for (const std::size_t connections : {1u, 4u, 16u}) {
    results.push_back(
        bench_daemon(workload, config, connections, /*batching=*/true));
  }
  results.push_back(
      bench_daemon(workload, config, 4, /*batching=*/false));
  print_json(config, results);
  return 0;
}
