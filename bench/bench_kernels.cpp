// Kernel-level perf harness: times the serial hot paths under the parallel
// fan-out (NAR/MLP training, OLS normal equations, GEMM, end-to-end
// spatiotemporal fit) and emits a machine-readable JSON report on stdout.
//
// Output contract (scripts/bench.sh): stdout carries exactly one JSON
// document; all progress goes to stderr, mirroring the `--fit-report -`
// convention. Each benchmark runs `repeat` times after one warmup and the
// report records per-run wall times plus the median, so successive PRs can
// compare BENCH_kernels.json files point-for-point.
//
// `--tiny` shrinks every workload to smoke-test size; it is wired into
// `ctest -L perf-smoke` (correctness + no-crash under sanitizers, not
// timing).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <functional>
#include <string>
#include <vector>

#include "core/inference.h"
#include "core/parallel.h"
#include "core/spatiotemporal_model.h"
#include "nn/grid_search.h"
#include "nn/inference_f32.h"
#include "nn/nar.h"
#include "stats/kernels.h"
#include "stats/matrix.h"
#include "stats/rng.h"
#include "trace/world.h"
#include "tree/model_tree.h"
#include "ts/arima.h"

namespace {

struct BenchConfig {
  std::size_t repeat = 5;
  bool tiny = false;
  std::string sha = "unknown";
  std::string cpu = "unknown";
};

struct BenchResult {
  std::string name;
  std::vector<double> runs_ms;
  double checksum = 0.0;  // Defeats dead-code elimination; sanity-checked.
  double ops = 0.0;       // Operations per run (forecasts, kernel calls);
                          // 0 = not a throughput benchmark.
};

double median(std::vector<double> xs) {
  std::sort(xs.begin(), xs.end());
  const std::size_t n = xs.size();
  if (n == 0) return 0.0;
  return n % 2 == 1 ? xs[n / 2] : 0.5 * (xs[n / 2 - 1] + xs[n / 2]);
}

/// Runs `fn` (which returns a checksum) repeat+1 times, discarding the
/// warmup run, and reports wall times in milliseconds.
BenchResult run_bench(const std::string& name, const BenchConfig& config,
                      const std::function<double()>& fn) {
  BenchResult result;
  result.name = name;
  std::fprintf(stderr, "[bench_kernels] %s: warmup...\n", name.c_str());
  result.checksum = fn();
  for (std::size_t r = 0; r < config.repeat; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    const double check = fn();
    const auto t1 = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    result.runs_ms.push_back(ms);
    std::fprintf(stderr, "[bench_kernels] %s: run %zu/%zu %.3f ms\n",
                 name.c_str(), r + 1, config.repeat, ms);
    if (check != result.checksum) {
      std::fprintf(stderr,
                   "[bench_kernels] %s: WARNING nondeterministic checksum "
                   "(%.17g vs %.17g)\n",
                   name.c_str(), check, result.checksum);
    }
  }
  return result;
}

/// Deterministic noisy-seasonal series, the shape the NAR/ARIMA models see.
std::vector<double> synthetic_series(std::size_t n, std::uint64_t seed) {
  acbm::stats::Rng rng(seed);
  std::vector<double> xs(n);
  double level = 10.0;
  for (std::size_t t = 0; t < n; ++t) {
    level = 0.92 * level + rng.normal(0.8, 0.4);
    xs[t] = level + 3.0 * std::sin(static_cast<double>(t) * 0.35) +
            rng.normal(0.0, 0.25);
  }
  return xs;
}

BenchResult bench_nar_grid(const BenchConfig& config) {
  const std::size_t n = config.tiny ? 48 : 150;
  const std::vector<double> series = synthetic_series(n, 77);
  acbm::nn::NarGridOptions opts;
  if (config.tiny) {
    opts.delay_grid = {1, 2};
    opts.hidden_grid = {2};
    opts.mlp.max_epochs = 6;
  } else {
    opts.delay_grid = {1, 2, 3, 5};
    opts.hidden_grid = {2, 4, 8};
    opts.mlp.max_epochs = 60;
    opts.mlp.patience = 12;
  }
  return run_bench("nar_grid_fit", config, [&]() {
    const auto best = acbm::nn::nar_grid_search(series, opts);
    if (!best) return -1.0;
    return best->validation_rmse +
           static_cast<double>(best->delays * 100 + best->hidden_nodes);
  });
}

BenchResult bench_mlp_fit(const BenchConfig& config) {
  const std::size_t n = config.tiny ? 40 : 320;
  const std::size_t dim = 6;
  acbm::stats::Rng rng(123);
  std::vector<std::vector<double>> x(n, std::vector<double>(dim));
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double target = 0.3;
    for (std::size_t j = 0; j < dim; ++j) {
      x[i][j] = rng.normal(0.0, 1.0);
      target += (j % 2 == 0 ? 0.7 : -0.4) * std::tanh(x[i][j]);
    }
    y[i] = target + rng.normal(0.0, 0.05);
  }
  acbm::nn::MlpOptions opts;
  opts.hidden_layers = {8};
  opts.max_epochs = config.tiny ? 6 : 120;
  opts.patience = 15;
  return run_bench("mlp_fit", config, [&]() {
    acbm::nn::Mlp net(opts);
    net.fit(x, y);
    return net.best_validation_loss();
  });
}

BenchResult bench_ols(const BenchConfig& config) {
  const std::size_t n = config.tiny ? 64 : 4096;
  const std::size_t k = config.tiny ? 4 : 24;
  const std::size_t refits = config.tiny ? 2 : 20;
  acbm::stats::Rng rng(321);
  acbm::stats::Matrix x(n, k);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double target = 1.5;
    for (std::size_t j = 0; j < k; ++j) {
      x(i, j) = rng.normal(0.0, 1.0);
      target += 0.1 * static_cast<double>(j + 1) * x(i, j);
    }
    y[i] = target + rng.normal(0.0, 0.1);
  }
  // `refits` mirrors a degradation ladder / auto-order selection loop that
  // re-solves the same design repeatedly.
  return run_bench("ols_normal_equations", config, [&]() {
    double acc = 0.0;
    for (std::size_t r = 0; r < refits; ++r) {
      const std::vector<double> beta =
          acbm::stats::solve_least_squares(x, y, 1e-8);
      acc += beta.front() + beta.back();
    }
    return acc;
  });
}

BenchResult bench_gemm(const BenchConfig& config) {
  const std::size_t n = config.tiny ? 24 : 192;
  acbm::stats::Rng rng(55);
  acbm::stats::Matrix a(n, n);
  acbm::stats::Matrix b(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      a(i, j) = rng.normal(0.0, 1.0);
      b(i, j) = rng.normal(0.0, 1.0);
    }
  }
  return run_bench("gemm_blocked", config, [&]() {
    const acbm::stats::Matrix c = a * b;
    return c(0, 0) + c(n - 1, n - 1) + c.frobenius_norm();
  });
}

/// Dense gemv at a SIMD-eligible shape, pinned to one ISA. The scalar and
/// SIMD variants share the workload (and, fast-math off, the checksum:
/// the vectorized kernels are lane-stable).
BenchResult bench_gemv_isa(const BenchConfig& config,
                           acbm::stats::SimdIsa isa) {
  const std::size_t rows = config.tiny ? 16 : 64;
  const std::size_t cols = config.tiny ? 16 : 64;
  const std::size_t iters = config.tiny ? 50 : 20000;
  acbm::stats::Rng rng(91);
  std::vector<double> weights(rows * cols);
  std::vector<double> bias(rows);
  std::vector<double> x(cols);
  std::vector<double> out(rows);
  for (double& w : weights) w = rng.normal(0.0, 1.0);
  for (double& b : bias) b = rng.normal(0.0, 0.1);
  for (double& v : x) v = rng.normal(0.0, 1.0);
  const std::vector<double> x_init = x;
  const std::string name =
      std::string("gemv_") + acbm::stats::isa_name(isa);
  const acbm::stats::SimdIsa saved = acbm::stats::active_isa();
  acbm::stats::set_active_isa(isa);
  BenchResult result = run_bench(name, config, [&]() {
    double acc = 0.0;
    for (std::size_t it = 0; it < iters; ++it) {
      acbm::stats::gemv_tanh(weights, bias, x, out);
      acc += out[0] + out[rows - 1];
      x[it % cols] = out[it % rows];  // Keep iterations data-dependent.
    }
    x = x_init;  // Every run sees identical data.
    return acc;
  });
  acbm::stats::set_active_isa(saved);
  result.ops = static_cast<double>(iters);
  return result;
}

/// The blocked gemm path pinned to one ISA (same matrices as gemm_blocked).
BenchResult bench_gemm_isa(const BenchConfig& config,
                           acbm::stats::SimdIsa isa) {
  const std::size_t n = config.tiny ? 24 : 192;
  acbm::stats::Rng rng(55);
  acbm::stats::Matrix a(n, n);
  acbm::stats::Matrix b(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      a(i, j) = rng.normal(0.0, 1.0);
      b(i, j) = rng.normal(0.0, 1.0);
    }
  }
  const std::string name =
      std::string("gemm_") + acbm::stats::isa_name(isa);
  const acbm::stats::SimdIsa saved = acbm::stats::active_isa();
  acbm::stats::set_active_isa(isa);
  BenchResult result = run_bench(name, config, [&]() {
    const acbm::stats::Matrix c = a * b;
    return c(0, 0) + c(n - 1, n - 1) + c.frobenius_norm();
  });
  acbm::stats::set_active_isa(saved);
  return result;
}

/// Walk-forward ARIMA forecast throughput: f64 model vs f32 view.
BenchResult bench_predict_arima(const BenchConfig& config, bool f32) {
  const std::size_t n = config.tiny ? 80 : 400;
  const std::size_t start = config.tiny ? 20 : 50;
  const std::size_t reps = config.tiny ? 2 : 20;
  const std::vector<double> series = synthetic_series(n, 2024);
  acbm::ts::ArimaModel model({2, 1, 1});
  model.fit(series);
  const acbm::core::ArimaF32 view(model);
  const std::size_t forecasts = (n - start) * reps;
  BenchResult result = run_bench(
      f32 ? "predict_arima_f32" : "predict_arima_f64", config, [&]() {
        double acc = 0.0;
        for (std::size_t r = 0; r < reps; ++r) {
          for (std::size_t t = start; t < n; ++t) {
            const std::span<const double> history(series.data(), t);
            acc += f32 ? view.forecast_one(history)
                       : model.forecast_one(history);
          }
        }
        return acc;
      });
  result.ops = static_cast<double>(forecasts);
  return result;
}

/// Walk-forward NAR forecast throughput: f64 network vs f32 view (the f32
/// path runs the transposed-weight gemv kernels on contiguous scratch).
BenchResult bench_predict_nar(const BenchConfig& config, bool f32) {
  const std::size_t n = config.tiny ? 60 : 300;
  const std::size_t start = config.tiny ? 12 : 10;
  const std::size_t reps = config.tiny ? 2 : 50;
  const std::vector<double> series = synthetic_series(n, 4096);
  acbm::nn::NarOptions opts;
  opts.delays = 3;
  opts.hidden_nodes = 8;
  opts.mlp.max_epochs = config.tiny ? 6 : 60;
  acbm::nn::NarModel model(opts);
  model.fit(series);
  const acbm::nn::NarF32View view(model);
  const std::size_t forecasts = (n - start) * reps;
  BenchResult result = run_bench(
      f32 ? "predict_nar_f32" : "predict_nar_f64", config, [&]() {
        double acc = 0.0;
        for (std::size_t r = 0; r < reps; ++r) {
          for (std::size_t t = start; t < n; ++t) {
            const std::span<const double> history(series.data(), t);
            acc += f32 ? view.forecast_one(history)
                       : model.forecast_one(history);
          }
        }
        return acc;
      });
  result.ops = static_cast<double>(forecasts);
  return result;
}

/// Model-tree prediction throughput: f64 tree vs f32 leaf models.
BenchResult bench_predict_tree(const BenchConfig& config, bool f32) {
  const std::size_t n = config.tiny ? 200 : 2000;
  const std::size_t dim = 8;
  const std::size_t reps = config.tiny ? 2 : 50;
  acbm::stats::Rng rng(777);
  acbm::stats::Matrix x(n, dim);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double target = 0.5;
    for (std::size_t j = 0; j < dim; ++j) {
      x(i, j) = rng.normal(0.0, 1.0);
      target += (x(i, j) > 0.3 ? 0.8 : -0.2) * x(i, j);
    }
    y[i] = target + rng.normal(0.0, 0.05);
  }
  acbm::tree::ModelTreeOptions opts;
  opts.cart.max_depth = 6;
  acbm::tree::ModelTree model(opts);
  model.fit(x, y);
  const std::optional<acbm::core::TreeF32> view =
      acbm::core::TreeF32::from(model);
  const std::size_t predicts = n * reps;
  BenchResult result = run_bench(
      f32 ? "predict_tree_f32" : "predict_tree_f64", config, [&]() {
        double acc = 0.0;
        for (std::size_t r = 0; r < reps; ++r) {
          for (std::size_t i = 0; i < n; ++i) {
            acc += f32 ? view->predict(x.row(i)) : model.predict(x.row(i));
          }
        }
        return acc;
      });
  result.ops = static_cast<double>(predicts);
  return result;
}

BenchResult bench_st_fit(const BenchConfig& config) {
  // End-to-end spatiotemporal fit on the small world: exercises feature
  // extraction/caching, per-family ARIMA (OLS), per-target NAR (MLP), and
  // the combining tree in one number. Tiny mode shrinks the world itself
  // (fewer days/targets) so the smoke run finishes in well under a second
  // even under sanitizers.
  acbm::trace::WorldOptions world_opts =
      acbm::trace::small_world_options(2012);
  if (config.tiny) {
    world_opts.generator.days = 14;
    world_opts.generator.targets_per_family = 4;
    world_opts.generator.activity_scale = 0.5;
    world_opts.generator.emit_snapshots = false;
  }
  acbm::trace::World world = acbm::trace::build_world(world_opts);
  acbm::core::SpatiotemporalOptions opts;
  opts.spatial.grid_search = false;
  opts.spatial.fixed.mlp.max_epochs = config.tiny ? 4 : 40;
  return run_bench("spatiotemporal_fit", config, [&]() {
    acbm::core::SpatiotemporalModel model(opts);
    model.fit(world.dataset, world.ip_map);
    return static_cast<double>(model.fit_report().records().size());
  });
}

void print_json(const BenchConfig& config,
                const std::vector<BenchResult>& results) {
  std::printf("{\n");
  std::printf("  \"schema\": \"acbm-bench-kernels-v2\",\n");
  std::printf("  \"git_sha\": \"%s\",\n", config.sha.c_str());
  std::printf("  \"isa\": \"%s\",\n",
              acbm::stats::isa_name(acbm::stats::detected_isa()));
  std::printf("  \"cpu\": \"%s\",\n", config.cpu.c_str());
  std::printf("  \"threads\": %zu, \n", acbm::core::num_threads());
  std::printf("  \"repeat\": %zu,\n", config.repeat);
  std::printf("  \"tiny\": %s,\n", config.tiny ? "true" : "false");
  std::printf("  \"unix_time\": %lld,\n",
              static_cast<long long>(std::time(nullptr)));
  std::printf("  \"benchmarks\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const BenchResult& r = results[i];
    const double med = median(r.runs_ms);
    std::printf("    {\"name\": \"%s\", \"median_ms\": %.3f, "
                "\"min_ms\": %.3f, \"checksum\": %.17g, ",
                r.name.c_str(), med,
                *std::min_element(r.runs_ms.begin(), r.runs_ms.end()),
                r.checksum);
    if (r.ops > 0.0 && med > 0.0) {
      std::printf("\"ops_per_run\": %.0f, \"ops_per_sec\": %.0f, ", r.ops,
                  r.ops / (med / 1000.0));
    }
    std::printf("\"runs_ms\": [");
    for (std::size_t j = 0; j < r.runs_ms.size(); ++j) {
      std::printf("%s%.3f", j == 0 ? "" : ", ", r.runs_ms[j]);
    }
    std::printf("]}%s\n", i + 1 < results.size() ? "," : "");
  }
  std::printf("  ]\n}\n");
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--tiny") {
      config.tiny = true;
    } else if (arg == "--repeat" && i + 1 < argc) {
      config.repeat = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (arg == "--sha" && i + 1 < argc) {
      config.sha = argv[++i];
    } else if (arg == "--cpu" && i + 1 < argc) {
      config.cpu = argv[++i];
    } else if (arg == "--print-isa") {
      // scripts/bench.sh uses this to refuse cross-ISA comparisons.
      std::printf("%s\n", acbm::stats::isa_name(acbm::stats::detected_isa()));
      return 0;
    } else {
      std::fprintf(stderr,
                   "usage: bench_kernels [--tiny] [--repeat N] [--sha SHA] "
                   "[--cpu NAME] [--print-isa]\n");
      return 2;
    }
  }
  if (config.repeat == 0) config.repeat = 1;

  std::vector<BenchResult> results;
  results.push_back(bench_gemm(config));
  results.push_back(bench_gemm_isa(config, acbm::stats::SimdIsa::kScalar));
  results.push_back(bench_gemv_isa(config, acbm::stats::SimdIsa::kScalar));
  if (acbm::stats::detected_isa() != acbm::stats::SimdIsa::kScalar) {
    results.push_back(bench_gemm_isa(config, acbm::stats::detected_isa()));
    results.push_back(bench_gemv_isa(config, acbm::stats::detected_isa()));
  }
  results.push_back(bench_ols(config));
  results.push_back(bench_mlp_fit(config));
  results.push_back(bench_nar_grid(config));
  results.push_back(bench_predict_arima(config, /*f32=*/false));
  results.push_back(bench_predict_arima(config, /*f32=*/true));
  results.push_back(bench_predict_nar(config, /*f32=*/false));
  results.push_back(bench_predict_nar(config, /*f32=*/true));
  results.push_back(bench_predict_tree(config, /*f32=*/false));
  results.push_back(bench_predict_tree(config, /*f32=*/true));
  results.push_back(bench_st_fit(config));
  print_json(config, results);
  return 0;
}
