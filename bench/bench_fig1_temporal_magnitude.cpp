// Reproduces Figure 1: the temporal (ARIMA) model predicting attack
// magnitudes for the three most active families (BlackEnergy, DirtJumper,
// Pandora). The paper shows ground truth on top and prediction errors
// below; here we print the test-tail RMSE, an error histogram, and the
// first prediction samples, plus the naive baselines for scale.
#include <cstdio>

#include "bench_util.h"
#include "core/evaluation.h"

int main() {
  using namespace acbm;

  bench::print_header(
      "Figure 1 — Temporal model: prediction of attacking magnitudes");
  const trace::World world = bench::make_paper_world();

  for (const char* name : {"BlackEnergy", "DirtJumper", "Pandora"}) {
    const std::uint32_t family = world.dataset.family_index(name);
    const core::SeriesEvaluation eval = core::evaluate_temporal_series(
        world.dataset, world.ip_map, family, core::TemporalSeries::kMagnitude);
    std::printf("\n%s: %zu test attacks\n", name, eval.truth.size());
    std::printf("  RMSE  temporal=%.2f  always-same=%.2f  always-mean=%.2f bots\n",
                eval.model_rmse, eval.same_rmse, eval.mean_rmse);

    std::printf("  first samples (truth -> prediction):");
    for (std::size_t i = 0; i < eval.truth.size() && i < 8; ++i) {
      std::printf("  %.0f->%.0f", eval.truth[i], eval.model_pred[i]);
    }
    std::printf("\n");

    const std::vector<double> errors =
        bench::abs_errors(eval.truth, eval.model_pred);
    double max_err = 1.0;
    for (double e : errors) max_err = e > max_err ? e : max_err;
    bench::print_histogram(errors, 0.0, max_err + 1.0, 10,
                           "  |error| distribution (bots)");
  }

  bench::print_rule();
  std::printf(
      "Shape check vs the paper: DirtJumper and Pandora predictions track\n"
      "the ground truth closely (errors concentrated near zero);\n"
      "BlackEnergy shows larger but structured errors. The temporal model\n"
      "never loses to the naive baselines.\n");
  return 0;
}
