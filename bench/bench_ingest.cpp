// Streaming-ingestion perf harness: times the hourly snapshot hot paths —
// durable append+validate throughput (snapshots/sec, fsync included), log
// reopen/recovery scans, and the per-family drift-check replay — and emits
// a machine-readable JSON report on stdout (scripts/bench.sh captures it
// into results/BENCH_ingest.json).
//
// Output contract matches bench_kernels: stdout carries exactly one JSON
// document, progress goes to stderr, each benchmark runs `repeat` times
// after one warmup, and the report records per-run wall times plus the
// median. `--tiny` shrinks every workload to smoke-test size for the
// `ingest`-labeled sanitizer sweep.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <filesystem>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "core/ingest.h"
#include "core/parallel.h"
#include "net/ipv4.h"
#include "trace/dataset.h"

namespace {

namespace fs = std::filesystem;
namespace ingest = acbm::core::ingest;

struct BenchConfig {
  std::size_t repeat = 5;
  bool tiny = false;
  std::string sha = "unknown";
  std::string cpu = "unknown";
};

struct BenchResult {
  std::string name;
  std::vector<double> runs_ms;
  double checksum = 0.0;  // Defeats dead-code elimination; sanity-checked.
  double ops = 0.0;       // Snapshots appended / family-checks per run.
};

double median(std::vector<double> xs) {
  std::sort(xs.begin(), xs.end());
  const std::size_t n = xs.size();
  if (n == 0) return 0.0;
  return n % 2 == 1 ? xs[n / 2] : 0.5 * (xs[n / 2 - 1] + xs[n / 2]);
}

BenchResult run_bench(const std::string& name, const BenchConfig& config,
                      const std::function<double()>& fn) {
  BenchResult result;
  result.name = name;
  std::fprintf(stderr, "[bench_ingest] %s: warmup...\n", name.c_str());
  result.checksum = fn();
  for (std::size_t r = 0; r < config.repeat; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    const double check = fn();
    const auto t1 = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    result.runs_ms.push_back(ms);
    std::fprintf(stderr, "[bench_ingest] %s: run %zu/%zu %.3f ms\n",
                 name.c_str(), r + 1, config.repeat, ms);
    if (check != result.checksum) {
      std::fprintf(stderr,
                   "[bench_ingest] %s: WARNING nondeterministic checksum "
                   "(%.17g vs %.17g)\n",
                   name.c_str(), check, result.checksum);
    }
  }
  return result;
}

/// A scratch directory per use; removed eagerly so repeated runs never
/// accumulate log files.
struct TempDir {
  fs::path path;
  TempDir() {
    static std::atomic<int> counter{0};
    path = fs::temp_directory_path() /
           ("acbm_bench_ingest_" + std::to_string(counter.fetch_add(1)));
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

constexpr acbm::trace::EpochSeconds kWs = 1'000'000'000;

/// One synthetic hourly snapshot: `per_family` attacks for each of
/// `families` families, evenly spaced inside the hour.
std::string snapshot_csv(std::size_t families, std::size_t hour,
                         std::size_t per_family, std::uint64_t id_base) {
  std::ostringstream csv;
  csv << "#window_start=" << kWs << "\n#families=";
  for (std::size_t f = 0; f < families; ++f) {
    csv << "fam" << f << (f + 1 < families ? ";" : "");
  }
  csv << "\nid,family,target_ip,target_asn,start,duration_s,bots\n";
  const acbm::trace::EpochSeconds hour_start =
      kWs + static_cast<acbm::trace::EpochSeconds>(hour) * 3600;
  const acbm::trace::EpochSeconds step =
      3600 / static_cast<acbm::trace::EpochSeconds>(per_family);
  // Time-major emission keeps rows sorted by start, the canonical order.
  std::uint64_t id = id_base;
  for (std::size_t a = 0; a < per_family; ++a) {
    for (std::size_t f = 0; f < families; ++f) {
      csv << id++ << ',' << f << ",10.0.0.1,3,"
          << hour_start + static_cast<acbm::trace::EpochSeconds>(a) * step +
                 static_cast<acbm::trace::EpochSeconds>(f) + 7
          << ",600,10.1.0.1;10.1.0.2;10.1.0.3\n";
    }
  }
  return csv.str();
}

/// Durable append+validate throughput: every append parses + validates the
/// snapshot, frames it with a CRC, and fsyncs the log. ops = snapshots.
BenchResult bench_append(const BenchConfig& config) {
  const std::size_t families = config.tiny ? 2 : 8;
  const std::size_t hours = config.tiny ? 6 : 96;
  const std::size_t per_family = config.tiny ? 2 : 4;
  std::vector<std::string> snapshots;
  snapshots.reserve(hours);
  for (std::size_t h = 0; h < hours; ++h) {
    snapshots.push_back(
        snapshot_csv(families, h, per_family, 1'000 * (h + 1)));
  }
  BenchResult result =
      run_bench("snapshot_append_validate", config, [&]() {
        TempDir tmp;
        ingest::SnapshotLog log(tmp.path / "stream");
        double acc = 0.0;
        for (std::size_t h = 0; h < hours; ++h) {
          const ingest::AppendOutcome outcome = log.append(h, snapshots[h]);
          acc += outcome.status == ingest::AppendStatus::kAccepted ? 1.0 : -1e6;
        }
        return acc + static_cast<double>(log.cumulative().size());
      });
  result.ops = static_cast<double>(hours);
  return result;
}

/// Cold reopen of a populated log: the full recovery scan (frame + CRC
/// verification of every segment) plus cumulative reassembly. ops = segments.
BenchResult bench_reopen(const BenchConfig& config) {
  const std::size_t families = config.tiny ? 2 : 8;
  const std::size_t hours = config.tiny ? 6 : 96;
  TempDir tmp;
  const fs::path dir = tmp.path / "stream";
  {
    ingest::SnapshotLog log(dir);
    for (std::size_t h = 0; h < hours; ++h) {
      log.append(h, snapshot_csv(families, h, config.tiny ? 2 : 4,
                                 1'000 * (h + 1)));
    }
  }
  BenchResult result = run_bench("log_reopen_recover", config, [&]() {
    ingest::SnapshotLog log(dir);
    return static_cast<double>(log.segments().size() +
                               log.cumulative().size());
  });
  result.ops = static_cast<double>(hours);
  return result;
}

/// The drift-monitor replay: per-family corrected-EMA channels z-scored
/// against fit-time baselines across the whole window. ops = family-checks
/// (families x hours), so ops_per_sec / hours = families checked per
/// second and median_ms / families = drift-check cost per family.
BenchResult bench_drift_check(const BenchConfig& config) {
  const std::size_t families = config.tiny ? 2 : 10;
  const std::size_t hours = config.tiny ? 12 : 720;
  const std::size_t per_family = 2;
  const acbm::trace::Dataset cumulative = [&]() {
    TempDir tmp;
    ingest::SnapshotLog log(tmp.path / "stream");
    for (std::size_t h = 0; h < hours; ++h) {
      log.append(h, snapshot_csv(families, h, per_family, 1'000 * (h + 1)));
    }
    return log.cumulative();
  }();
  std::vector<acbm::core::FamilyDriftBaseline> baselines(families);
  for (std::size_t f = 0; f < families; ++f) {
    baselines[f].family = static_cast<std::uint32_t>(f);
    baselines[f].hours = static_cast<double>(hours);
    baselines[f].rate_mean = static_cast<double>(per_family);
    baselines[f].rate_std = 0.5;
    baselines[f].magnitude_mean = 3.0;
    baselines[f].magnitude_std = 1.0;
    baselines[f].interval_mean = 3600.0 / static_cast<double>(per_family);
    baselines[f].interval_residual_std = 600.0;
  }
  const ingest::DriftPolicy policy;
  BenchResult result = run_bench("drift_check_replay", config, [&]() {
    const std::vector<ingest::DriftTrip> trips = ingest::detect_drift(
        cumulative, baselines, /*served_hour=*/0, hours - 1, policy);
    return static_cast<double>(trips.size());
  });
  result.ops = static_cast<double>(families * hours);
  return result;
}

void print_json(const BenchConfig& config,
                const std::vector<BenchResult>& results) {
  std::printf("{\n");
  std::printf("  \"schema\": \"acbm-bench-ingest-v1\",\n");
  std::printf("  \"git_sha\": \"%s\",\n", config.sha.c_str());
  std::printf("  \"cpu\": \"%s\",\n", config.cpu.c_str());
  std::printf("  \"threads\": %zu,\n", acbm::core::num_threads());
  std::printf("  \"repeat\": %zu,\n", config.repeat);
  std::printf("  \"tiny\": %s,\n", config.tiny ? "true" : "false");
  std::printf("  \"unix_time\": %lld,\n",
              static_cast<long long>(std::time(nullptr)));
  std::printf("  \"benchmarks\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const BenchResult& r = results[i];
    const double med = median(r.runs_ms);
    std::printf("    {\"name\": \"%s\", \"median_ms\": %.3f, "
                "\"min_ms\": %.3f, \"checksum\": %.17g, ",
                r.name.c_str(), med,
                *std::min_element(r.runs_ms.begin(), r.runs_ms.end()),
                r.checksum);
    if (r.ops > 0.0 && med > 0.0) {
      std::printf("\"ops_per_run\": %.0f, \"ops_per_sec\": %.0f, ", r.ops,
                  r.ops / (med / 1000.0));
    }
    std::printf("\"runs_ms\": [");
    for (std::size_t j = 0; j < r.runs_ms.size(); ++j) {
      std::printf("%s%.3f", j == 0 ? "" : ", ", r.runs_ms[j]);
    }
    std::printf("]}%s\n", i + 1 < results.size() ? "," : "");
  }
  std::printf("  ]\n}\n");
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--tiny") {
      config.tiny = true;
    } else if (arg == "--repeat" && i + 1 < argc) {
      config.repeat =
          static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (arg == "--sha" && i + 1 < argc) {
      config.sha = argv[++i];
    } else if (arg == "--cpu" && i + 1 < argc) {
      config.cpu = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: bench_ingest [--tiny] [--repeat N] [--sha SHA] "
                   "[--cpu NAME]\n");
      return 2;
    }
  }
  if (config.repeat == 0) config.repeat = 1;

  std::vector<BenchResult> results;
  results.push_back(bench_append(config));
  results.push_back(bench_reopen(config));
  results.push_back(bench_drift_check(config));
  print_json(config, results);
  return 0;
}
