// Reproduces the §VII-A comparison: the data-driven models (temporal for
// magnitudes, spatial for durations and source distributions) against the
// "Always Same" and "Always Mean" naive predictors, on the five most active
// botnet families. The paper's claim: the data-driven model always produces
// better predictions, and the naive models are sometimes useless.
#include <cstdio>

#include "bench_util.h"
#include "core/evaluation.h"

int main() {
  using namespace acbm;

  bench::print_header(
      "Section VII-A — model vs Always-Same vs Always-Mean (RMSE, 5 most "
      "active families)");
  const trace::World world = bench::make_paper_world();
  const auto rows =
      core::comparison_table(world.dataset, world.ip_map, /*top_families=*/5);

  std::printf("%-12s %-20s %14s %14s %14s %8s\n", "Family", "Feature",
              "model", "always-same", "always-mean", "winner");
  bench::print_rule();
  std::size_t model_wins = 0;
  for (const auto& row : rows) {
    const bool wins =
        row.model_rmse <= row.same_rmse && row.model_rmse <= row.mean_rmse;
    model_wins += wins ? 1 : 0;
    std::printf("%-12s %-20s %14.4f %14.4f %14.4f %8s\n", row.family.c_str(),
                row.feature.c_str(), row.model_rmse, row.same_rmse,
                row.mean_rmse, wins ? "model" : "naive");
  }
  bench::print_rule();
  std::printf("model wins %zu / %zu comparisons "
              "(paper: data-driven model always better)\n",
              model_wins, rows.size());
  return 0;
}
