// Extension beyond the paper: unsupervised botnet-family attribution. The
// paper assumes attacks arrive labeled by family (its dataset is attributed
// by the mitigation operator, §II-B) and separately argues that families
// have distinctive behavioral signatures. We test how far the signatures
// alone go: k-means over per-attack feature vectors (magnitude, duration,
// launch hour, A^s source concentration) against the true family labels,
// validated with the silhouette coefficient (the statistic the paper's A^s
// feature design cites).
//
// Also runs the VAR extension: the paper models A^f, A^b, A^s with
// independent ARIMAs while noting they are "not completely independent";
// a VAR(2) quantifies what the cross-series structure is worth.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/evaluation.h"
#include "net/routing.h"
#include "stats/kmeans.h"
#include "stats/metrics.h"
#include "stats/silhouette.h"
#include "ts/var.h"

namespace {

using namespace acbm;

void run_attribution(const trace::World& world) {
  bench::print_header(
      "Extension — unsupervised family attribution "
      "(k-means over attack features)");
  // Feature rows for a sample of attacks across the 5 most active families.
  const auto families = core::most_active_families(world.dataset, 5);
  std::vector<std::vector<double>> rows;
  std::vector<std::size_t> truth;
  net::ValleyFreeDistance distance(world.topology.graph);
  for (std::size_t fi = 0; fi < families.size(); ++fi) {
    const auto indices = world.dataset.attacks_of_family(families[fi]);
    const std::size_t step = std::max<std::size_t>(1, indices.size() / 400);
    for (std::size_t i = 0; i < indices.size(); i += step) {
      const trace::Attack& attack = world.dataset.attacks()[indices[i]];
      const trace::DayHour dh = trace::decompose_timestamp(
          attack.start, world.dataset.window_start());
      rows.push_back(
          {std::log(static_cast<double>(attack.magnitude()) + 1.0),
           std::log(attack.duration_s),
           static_cast<double>(dh.hour),
           core::source_distribution_coefficient(attack, world.ip_map,
                                                 &distance)});
      truth.push_back(fi);
    }
  }
  // z-score each feature column so no single unit dominates.
  stats::Matrix data(rows.size(), rows.front().size());
  for (std::size_t j = 0; j < rows.front().size(); ++j) {
    std::vector<double> col;
    for (const auto& row : rows) col.push_back(row[j]);
    const stats::ZScore z = stats::fit_zscore(col);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      data(i, j) = z.transform(rows[i][j]);
    }
  }

  stats::Rng rng(99);
  std::printf("%zu attacks sampled from %zu families\n\n", rows.size(),
              families.size());
  std::printf("%4s %12s %12s %12s\n", "k", "purity", "silhouette", "inertia");
  bench::print_rule();
  const auto distance_fn = [&](std::size_t a, std::size_t b) {
    double acc = 0.0;
    for (std::size_t j = 0; j < data.cols(); ++j) {
      const double d = data(a, j) - data(b, j);
      acc += d * d;
    }
    return std::sqrt(acc);
  };
  for (std::size_t k : {3ul, 5ul, 8ul}) {
    const stats::KMeansResult result =
        stats::kmeans(data, {.k = k, .restarts = 6}, rng);
    std::printf("%4zu %11.1f%% %12.3f %12.1f\n", k,
                100.0 * stats::cluster_purity(result.labels, truth),
                stats::silhouette_score(result.labels, distance_fn),
                result.inertia);
  }
  std::printf(
      "\nBehavioral signatures carry real family signal — purity at\n"
      "k = #families sits far above the ~%.0f%% chance level — but behavior\n"
      "alone does not fully separate families. This supports the paper's\n"
      "design choice of building on operator-attributed labels (§II-B)\n"
      "rather than inferring family identity from behavior.\n",
      100.0 / static_cast<double>(families.size()) * 1.5);
}

void run_var(const trace::World& world) {
  bench::print_header(
      "Extension — VAR over (A^f, A^b, A^s) vs independent ARIMAs "
      "(one-step RMSE on A^b)");
  std::printf("%-12s %14s %14s\n", "Family", "VAR(2)", "ARIMA(2,0,1)");
  bench::print_rule();
  net::ValleyFreeDistance distance(world.topology.graph);
  for (std::uint32_t family : core::most_active_families(world.dataset, 3)) {
    const core::FamilySeries fs = core::extract_family_series(
        world.dataset, family, world.ip_map, &distance);
    const std::vector<std::vector<double>> series{
        fs.activity, fs.norm_magnitude, fs.source_coeff};
    const std::size_t n = fs.activity.size();
    const std::size_t split = n * 8 / 10;

    std::vector<std::vector<double>> train(3);
    for (std::size_t v = 0; v < 3; ++v) {
      train[v].assign(series[v].begin(),
                      series[v].begin() + static_cast<std::ptrdiff_t>(split));
    }
    ts::VarModel var(2);
    var.fit(train);
    const auto var_preds = var.one_step_predictions(series, 1, split);

    ts::ArimaModel arima({2, 0, 1});
    arima.fit(train[1]);
    const auto ar_preds = arima.one_step_predictions(series[1], split);

    const std::vector<double> truth(series[1].begin() + static_cast<std::ptrdiff_t>(split),
                                    series[1].end());
    std::printf("%-12s %14.6f %14.6f\n",
                world.dataset.family_names()[family].c_str(),
                stats::rmse(truth, var_preds), stats::rmse(truth, ar_preds));
  }
  std::printf(
      "\nThe VAR is strictly worse: A^f and A^b are cumulative-normalized\n"
      "(Eq. 1-2) and therefore trend rather than revert, so the\n"
      "cross-series regression destabilizes out of sample while the\n"
      "per-series ARIMA's MA correction absorbs the drift. The paper's\n"
      "independent-ARIMA simplification (Eq. 5 per variable) is not just\n"
      "benign here — it is the better choice.\n");
}

}  // namespace

int main() {
  const trace::World world = bench::make_paper_world();
  run_attribution(world);
  std::printf("\n");
  run_var(world);
  return 0;
}
