// Model tree: CART partitioning with multivariate-linear leaf models
// (M5-style), exactly the combination the paper's spatiotemporal model uses
// (§VI-A, Eq. 8-10: "each leaf node is attached to a simple model, in this
// case a multivariate linear model"). Includes post-pruning that collapses a
// subtree when a single leaf model would do at least as well (complexity-
// adjusted), plus optional prediction smoothing along the root path.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <span>
#include <vector>

#include "stats/matrix.h"
#include "stats/ols.h"
#include "tree/cart.h"

namespace acbm::tree {

struct ModelTreeOptions {
  CartOptions cart;
  /// Paper §VI-B: "we prune the tree to keep only 88% of the original
  /// standard deviations" — nodes whose target SD is already below
  /// (1 - sd_keep_ratio) of the root SD are not split further.
  double sd_keep_ratio = 0.88;
  /// Collapse an internal node when its own linear model's training error is
  /// no worse than prune_factor x its subtree's error.
  double prune_factor = 1.0;
  bool enable_pruning = true;
  /// Use multivariate linear leaf models; false falls back to constant
  /// leaves (for the DESIGN.md leaf-type ablation).
  bool linear_leaves = true;
};

/// Snapshot of one node's attached model (parallel to
/// RegressionTree::nodes()), for inference-representation extraction
/// (core::TreeF32). intercept/coefficients are meaningful only when
/// use_linear is set.
struct LeafModelExport {
  bool use_linear = false;
  double mean = 0.0;
  double intercept = 0.0;
  std::vector<double> coefficients;
};

class ModelTree {
 public:
  ModelTree() = default;
  explicit ModelTree(ModelTreeOptions opts);

  /// Fits structure and leaf models. Throws std::invalid_argument on empty
  /// or mismatched input.
  void fit(const acbm::stats::Matrix& x, std::span<const double> y);

  [[nodiscard]] double predict(std::span<const double> features) const;
  [[nodiscard]] std::vector<double> predict(const acbm::stats::Matrix& x) const;

  [[nodiscard]] bool fitted() const noexcept { return tree_.fitted(); }
  [[nodiscard]] std::size_t leaf_count() const { return tree_.leaf_count(); }
  [[nodiscard]] std::size_t node_count() const noexcept {
    return tree_.node_count();
  }
  [[nodiscard]] std::size_t depth() const { return tree_.depth(); }
  [[nodiscard]] const RegressionTree& structure() const noexcept {
    return tree_;
  }
  [[nodiscard]] const std::vector<double>& feature_importance() const noexcept {
    return tree_.feature_importance();
  }

  /// One export per node (same order as structure().nodes()); unreachable
  /// descendants of pruned nodes are exported too but never consulted.
  [[nodiscard]] std::vector<LeafModelExport> export_leaf_models() const;

  /// Text serialization of the fitted state (structure + leaf models).
  void save(std::ostream& os) const;
  [[nodiscard]] static ModelTree load(std::istream& is);

 private:
  struct LeafModel {
    acbm::stats::LinearRegression linear;
    bool use_linear = false;
    double mean = 0.0;
  };

  /// Fits a leaf model on the given samples; falls back to the mean when the
  /// sample count cannot support a linear fit.
  [[nodiscard]] LeafModel fit_leaf(const acbm::stats::Matrix& x,
                                   std::span<const double> y,
                                   std::span<const std::size_t> idx) const;

  [[nodiscard]] double leaf_error(const LeafModel& leaf,
                                  const acbm::stats::Matrix& x,
                                  std::span<const double> y,
                                  std::span<const std::size_t> idx) const;

  /// Bottom-up pruning; returns the subtree's training MAE after pruning.
  double prune(std::size_t node_id, const acbm::stats::Matrix& x,
               std::span<const double> y);

  ModelTreeOptions opts_;
  RegressionTree tree_;
  std::vector<LeafModel> leaf_models_;  ///< Parallel to tree_.nodes().
};

}  // namespace acbm::tree
