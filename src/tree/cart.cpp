#include "tree/cart.h"

#include "stats/serialize.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace acbm::tree {

namespace {
double subset_mean(std::span<const double> y, std::span<const std::size_t> idx) {
  double acc = 0.0;
  for (std::size_t i : idx) acc += y[i];
  return idx.empty() ? 0.0 : acc / static_cast<double>(idx.size());
}

double subset_sd(std::span<const double> y, std::span<const std::size_t> idx) {
  if (idx.size() < 2) return 0.0;
  const double m = subset_mean(y, idx);
  double acc = 0.0;
  for (std::size_t i : idx) acc += (y[i] - m) * (y[i] - m);
  return std::sqrt(acc / static_cast<double>(idx.size()));
}
}  // namespace

RegressionTree::SplitChoice RegressionTree::best_split(
    const acbm::stats::Matrix& x, std::span<const double> y,
    std::span<const std::size_t> idx, acbm::core::Arena& arena) const {
  SplitChoice best;
  const std::size_t n = idx.size();
  if (n < 2) return best;

  // Parent sum of squared deviations, for the reduction computation.
  double sum = 0.0;
  double sum_sq = 0.0;
  for (std::size_t i : idx) {
    sum += y[i];
    sum_sq += y[i] * y[i];
  }
  const double parent_sse = sum_sq - sum * sum / static_cast<double>(n);

  const acbm::core::Arena::Mark mark = arena.mark();
  const std::span<std::size_t> order = arena.alloc_span<std::size_t>(n);
  std::copy(idx.begin(), idx.end(), order.begin());
  for (std::size_t f = 0; f < x.cols(); ++f) {
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return x(a, f) < x(b, f);
    });
    // Prefix scan: evaluate the split after each position.
    double left_sum = 0.0;
    double left_sq = 0.0;
    for (std::size_t pos = 0; pos + 1 < n; ++pos) {
      const double yi = y[order[pos]];
      left_sum += yi;
      left_sq += yi * yi;
      const double xv = x(order[pos], f);
      const double xnext = x(order[pos + 1], f);
      if (xv == xnext) continue;  // Can't split between equal values.
      const std::size_t nl = pos + 1;
      const std::size_t nr = n - nl;
      if (nl < opts_.min_samples_leaf || nr < opts_.min_samples_leaf) continue;
      const double right_sum = sum - left_sum;
      const double right_sq = sum_sq - left_sq;
      const double sse_l = left_sq - left_sum * left_sum / static_cast<double>(nl);
      const double sse_r = right_sq - right_sum * right_sum / static_cast<double>(nr);
      const double reduction = parent_sse - sse_l - sse_r;
      if (reduction > best.variance_reduction) {
        best.found = true;
        best.feature = f;
        best.threshold = (xv + xnext) / 2.0;
        best.variance_reduction = reduction;
      }
    }
  }
  arena.rewind(mark);
  return best;
}

int RegressionTree::build(const acbm::stats::Matrix& x,
                          std::span<const double> y,
                          std::span<const std::size_t> idx, std::size_t depth,
                          double root_sd, acbm::core::Arena& arena) {
  const int node_id = static_cast<int>(nodes_.size());
  CartNode node;
  node.n_samples = idx.size();
  node.mean = subset_mean(y, idx);
  node.sd = subset_sd(y, idx);
  nodes_.push_back(node);
  node_samples_.emplace_back(idx.begin(), idx.end());

  const bool too_deep = depth >= opts_.max_depth;
  const bool too_small = idx.size() < opts_.min_samples_split;
  const bool pure_enough = node.sd < opts_.sd_stop_fraction * root_sd;
  if (too_deep || too_small || pure_enough) return node_id;

  const SplitChoice split = best_split(x, y, idx, arena);
  if (!split.found || split.variance_reduction <= 0.0) return node_id;

  std::size_t nl = 0;
  for (std::size_t i : idx) {
    if (x(i, split.feature) <= split.threshold) ++nl;
  }
  const std::size_t nr = idx.size() - nl;
  if (nl == 0 || nr == 0) return node_id;

  // The partitions live only while the two subtrees build; rewinding after
  // the recursion returns makes the whole fit reuse one small footprint
  // (O(n · depth) words at peak) instead of a heap pair per node.
  const acbm::core::Arena::Mark mark = arena.mark();
  const std::span<std::size_t> left_idx = arena.alloc_span<std::size_t>(nl);
  const std::span<std::size_t> right_idx = arena.alloc_span<std::size_t>(nr);
  std::size_t li = 0;
  std::size_t ri = 0;
  for (std::size_t i : idx) {
    if (x(i, split.feature) <= split.threshold) {
      left_idx[li++] = i;
    } else {
      right_idx[ri++] = i;
    }
  }

  feature_importance_[split.feature] += split.variance_reduction;
  const int left = build(x, y, left_idx, depth + 1, root_sd, arena);
  const int right = build(x, y, right_idx, depth + 1, root_sd, arena);
  arena.rewind(mark);
  nodes_[static_cast<std::size_t>(node_id)].left = left;
  nodes_[static_cast<std::size_t>(node_id)].right = right;
  nodes_[static_cast<std::size_t>(node_id)].feature = split.feature;
  nodes_[static_cast<std::size_t>(node_id)].threshold = split.threshold;
  return node_id;
}

void RegressionTree::fit(const acbm::stats::Matrix& x,
                         std::span<const double> y) {
  if (x.rows() == 0 || x.cols() == 0) {
    throw std::invalid_argument("RegressionTree::fit: empty design matrix");
  }
  if (y.size() != x.rows()) {
    throw std::invalid_argument("RegressionTree::fit: size mismatch");
  }
  nodes_.clear();
  node_samples_.clear();
  n_features_ = x.cols();
  feature_importance_.assign(n_features_, 0.0);

  acbm::core::Arena arena;
  const std::span<std::size_t> idx = arena.alloc_span<std::size_t>(x.rows());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  const double root_sd = subset_sd(y, idx);
  build(x, y, idx, 0, root_sd, arena);
}

std::size_t RegressionTree::leaf_index(std::span<const double> features) const {
  if (!fitted()) throw std::logic_error("RegressionTree: not fitted");
  if (features.size() != n_features_) {
    throw std::invalid_argument("RegressionTree: feature count mismatch");
  }
  std::size_t cur = 0;
  while (!nodes_[cur].is_leaf()) {
    const CartNode& node = nodes_[cur];
    cur = static_cast<std::size_t>(
        features[node.feature] <= node.threshold ? node.left : node.right);
  }
  return cur;
}

double RegressionTree::predict(std::span<const double> features) const {
  return nodes_[leaf_index(features)].mean;
}

std::vector<double> RegressionTree::predict(const acbm::stats::Matrix& x) const {
  std::vector<double> out;
  out.reserve(x.rows());
  for (std::size_t i = 0; i < x.rows(); ++i) out.push_back(predict(x.row(i)));
  return out;
}

void RegressionTree::collapse(std::size_t node_id) {
  if (node_id >= nodes_.size()) {
    throw std::out_of_range("RegressionTree::collapse");
  }
  nodes_[node_id].left = -1;
  nodes_[node_id].right = -1;
}

std::size_t RegressionTree::leaf_count() const {
  if (nodes_.empty()) return 0;
  // Traverse from the root: collapsed subtrees leave unreachable nodes in
  // the vector, which must not be counted.
  std::size_t count = 0;
  std::vector<std::size_t> stack{0};
  while (!stack.empty()) {
    const CartNode& node = nodes_[stack.back()];
    stack.pop_back();
    if (node.is_leaf()) {
      ++count;
    } else {
      stack.push_back(static_cast<std::size_t>(node.left));
      stack.push_back(static_cast<std::size_t>(node.right));
    }
  }
  return count;
}

void RegressionTree::save(std::ostream& os) const {
  namespace io = acbm::stats::io;
  io::write_header(os, "cart", 1);
  io::write_scalar(os, "n_features", n_features_);
  io::write_scalar(os, "node_count", nodes_.size());
  for (const CartNode& node : nodes_) {
    os << "node " << node.left << ' ' << node.right << ' ' << node.feature
       << ' ' << node.threshold << ' ' << node.mean << ' ' << node.sd << ' '
       << node.n_samples << '\n';
  }
  io::write_vector<double>(os, "importance", feature_importance_);
}

RegressionTree RegressionTree::load(std::istream& is) {
  namespace io = acbm::stats::io;
  io::expect_header(is, "cart", 1);
  RegressionTree tree;
  tree.n_features_ = io::read_scalar<std::size_t>(is, "n_features");
  const auto count = io::read_scalar<std::size_t>(is, "node_count");
  tree.nodes_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    auto ss = io::expect_tag(is, "node");
    CartNode node;
    if (!(ss >> node.left >> node.right >> node.feature >> node.threshold >>
          node.mean >> node.sd >> node.n_samples)) {
      throw std::invalid_argument("RegressionTree::load: malformed node");
    }
    tree.nodes_.push_back(node);
  }
  tree.feature_importance_ = io::read_vector<double>(is, "importance");
  // Validate child links so a corrupt file cannot cause out-of-range walks.
  for (const CartNode& node : tree.nodes_) {
    const auto valid = [&](int child) {
      return child == -1 ||
             (child > 0 && static_cast<std::size_t>(child) < tree.nodes_.size());
    };
    if (!valid(node.left) || !valid(node.right) ||
        (node.left < 0) != (node.right < 0)) {
      throw std::invalid_argument("RegressionTree::load: bad child link");
    }
  }
  return tree;
}

std::size_t RegressionTree::depth() const {
  if (nodes_.empty()) return 0;
  // Iterative depth computation over the index-linked structure.
  std::vector<std::pair<std::size_t, std::size_t>> stack{{0, 0}};
  std::size_t max_depth = 0;
  while (!stack.empty()) {
    const auto [id, d] = stack.back();
    stack.pop_back();
    max_depth = std::max(max_depth, d);
    const CartNode& node = nodes_[id];
    if (!node.is_leaf()) {
      stack.emplace_back(static_cast<std::size_t>(node.left), d + 1);
      stack.emplace_back(static_cast<std::size_t>(node.right), d + 1);
    }
  }
  return max_depth;
}

}  // namespace acbm::tree
