// CART regression tree (Breiman et al. 1984) — the partitioning engine of
// the paper's spatiotemporal model (§VI-A): the feature space is recursively
// split into regions R_1, R_2, ... where simpler models become valid.
// This class predicts with constant (mean) leaves; ModelTree replaces the
// leaves with multivariate linear models (Eq. 8-10).
#pragma once

#include <cstddef>
#include <iosfwd>
#include <span>
#include <vector>

#include "core/arena.h"
#include "stats/matrix.h"

namespace acbm::tree {

struct CartOptions {
  std::size_t max_depth = 10;
  std::size_t min_samples_leaf = 5;
  std::size_t min_samples_split = 10;
  /// Stop splitting when a node's target SD falls below this fraction of the
  /// root SD. The paper prunes "to keep only 88% of the original standard
  /// deviations"; nodes purer than the remaining 12% are not worth splitting.
  double sd_stop_fraction = 0.12;
};

/// One node of the fitted tree; children are indices into the node vector
/// (-1 for none). Leaves predict their training mean.
struct CartNode {
  int left = -1;
  int right = -1;
  std::size_t feature = 0;
  double threshold = 0.0;
  double mean = 0.0;
  double sd = 0.0;
  std::size_t n_samples = 0;

  [[nodiscard]] bool is_leaf() const noexcept { return left < 0; }
};

class RegressionTree {
 public:
  RegressionTree() = default;
  explicit RegressionTree(CartOptions opts) : opts_(opts) {}

  /// Fits on an n x k design matrix. Throws std::invalid_argument on empty
  /// input or size mismatch.
  void fit(const acbm::stats::Matrix& x, std::span<const double> y);

  [[nodiscard]] double predict(std::span<const double> features) const;
  [[nodiscard]] std::vector<double> predict(const acbm::stats::Matrix& x) const;

  [[nodiscard]] bool fitted() const noexcept { return !nodes_.empty(); }
  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }
  [[nodiscard]] std::size_t leaf_count() const;
  [[nodiscard]] std::size_t depth() const;
  [[nodiscard]] const std::vector<CartNode>& nodes() const noexcept {
    return nodes_;
  }

  /// Index of the leaf a sample falls into (for ModelTree's leaf lookup).
  [[nodiscard]] std::size_t leaf_index(std::span<const double> features) const;

  /// Training-set sample indices per node (parallel to nodes()); retained
  /// from the last fit so leaf models can be attached afterwards.
  [[nodiscard]] const std::vector<std::vector<std::size_t>>& node_samples()
      const noexcept {
    return node_samples_;
  }

  /// Total variance reduction attributed to each feature during the last fit.
  [[nodiscard]] const std::vector<double>& feature_importance() const noexcept {
    return feature_importance_;
  }

  /// Turns an internal node into a leaf (its descendants become
  /// unreachable). Used by ModelTree's post-pruning pass.
  void collapse(std::size_t node_id);

  /// Text serialization of the fitted structure (training sample indices
  /// are not persisted — they only matter while fitting).
  void save(std::ostream& os) const;
  [[nodiscard]] static RegressionTree load(std::istream& is);

 private:
  struct SplitChoice {
    bool found = false;
    std::size_t feature = 0;
    double threshold = 0.0;
    double variance_reduction = 0.0;
  };

  [[nodiscard]] SplitChoice best_split(const acbm::stats::Matrix& x,
                                       std::span<const double> y,
                                       std::span<const std::size_t> idx,
                                       acbm::core::Arena& arena) const;

  /// `idx` and all scratch (sort orders, partitions) live in `arena`;
  /// each recursion level rewinds its own allocations on the way out.
  int build(const acbm::stats::Matrix& x, std::span<const double> y,
            std::span<const std::size_t> idx, std::size_t depth,
            double root_sd, acbm::core::Arena& arena);

  CartOptions opts_;
  std::vector<CartNode> nodes_;
  std::vector<std::vector<std::size_t>> node_samples_;
  std::vector<double> feature_importance_;
  std::size_t n_features_ = 0;
};

}  // namespace acbm::tree
