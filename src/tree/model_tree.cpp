#include "tree/model_tree.h"

#include "stats/serialize.h"

#include <cmath>
#include <stdexcept>

namespace acbm::tree {

ModelTree::ModelTree(ModelTreeOptions opts) : opts_(std::move(opts)) {
  if (!(opts_.sd_keep_ratio > 0.0 && opts_.sd_keep_ratio <= 1.0)) {
    throw std::invalid_argument("ModelTree: sd_keep_ratio out of (0, 1]");
  }
  // Translate the paper's "keep 88% of the original SD" into the CART stop
  // rule: nodes purer than the remaining fraction are not split.
  opts_.cart.sd_stop_fraction = 1.0 - opts_.sd_keep_ratio;
}

ModelTree::LeafModel ModelTree::fit_leaf(
    const acbm::stats::Matrix& x, std::span<const double> y,
    std::span<const std::size_t> idx) const {
  LeafModel leaf;
  double acc = 0.0;
  for (std::size_t i : idx) acc += y[i];
  leaf.mean = idx.empty() ? 0.0 : acc / static_cast<double>(idx.size());

  // A linear fit needs more samples than parameters; otherwise use the mean.
  if (opts_.linear_leaves && idx.size() >= x.cols() + 2) {
    acbm::stats::Matrix sub(idx.size(), x.cols());
    std::vector<double> suby(idx.size());
    for (std::size_t r = 0; r < idx.size(); ++r) {
      for (std::size_t c = 0; c < x.cols(); ++c) sub(r, c) = x(idx[r], c);
      suby[r] = y[idx[r]];
    }
    try {
      leaf.linear.fit(sub, suby);
      leaf.use_linear = true;
    } catch (const std::exception&) {
      leaf.use_linear = false;
    }
  }
  return leaf;
}

double ModelTree::leaf_error(const LeafModel& leaf,
                             const acbm::stats::Matrix& x,
                             std::span<const double> y,
                             std::span<const std::size_t> idx) const {
  double acc = 0.0;
  for (std::size_t i : idx) {
    const double pred =
        leaf.use_linear ? leaf.linear.predict(x.row(i)) : leaf.mean;
    acc += std::abs(y[i] - pred);
  }
  return idx.empty() ? 0.0 : acc / static_cast<double>(idx.size());
}

double ModelTree::prune(std::size_t node_id, const acbm::stats::Matrix& x,
                        std::span<const double> y) {
  const CartNode& node = tree_.nodes()[node_id];
  const auto& idx = tree_.node_samples()[node_id];
  const double own_error = leaf_error(leaf_models_[node_id], x, y, idx);
  if (node.is_leaf()) return own_error;

  const auto left = static_cast<std::size_t>(node.left);
  const auto right = static_cast<std::size_t>(node.right);
  const double err_l = prune(left, x, y);
  const double err_r = prune(right, x, y);
  const auto nl = static_cast<double>(tree_.node_samples()[left].size());
  const auto nr = static_cast<double>(tree_.node_samples()[right].size());
  const double subtree_error = (err_l * nl + err_r * nr) / (nl + nr);

  // Small tolerance so exact ties (e.g. a globally linear target where every
  // model is numerically perfect) collapse instead of keeping the subtree.
  const double tolerance = 1e-9 * (1.0 + std::abs(subtree_error));
  if (own_error <= opts_.prune_factor * subtree_error + tolerance) {
    tree_.collapse(node_id);
    return own_error;
  }
  return subtree_error;
}

void ModelTree::fit(const acbm::stats::Matrix& x, std::span<const double> y) {
  tree_ = RegressionTree(opts_.cart);
  tree_.fit(x, y);

  leaf_models_.clear();
  leaf_models_.reserve(tree_.node_count());
  // Fit a model at every node (not just leaves) so pruning can compare a
  // collapsed node's model against its subtree.
  for (std::size_t id = 0; id < tree_.node_count(); ++id) {
    leaf_models_.push_back(fit_leaf(x, y, tree_.node_samples()[id]));
  }

  if (opts_.enable_pruning && tree_.node_count() > 1) {
    prune(0, x, y);
  }
}

void ModelTree::save(std::ostream& os) const {
  namespace io = acbm::stats::io;
  io::write_header(os, "model_tree", 1);
  io::write_scalar(os, "linear_leaves", opts_.linear_leaves ? 1 : 0);
  io::write_scalar(os, "sd_keep_ratio", opts_.sd_keep_ratio);
  tree_.save(os);
  io::write_scalar(os, "leaf_count", leaf_models_.size());
  for (const LeafModel& leaf : leaf_models_) {
    io::write_scalar(os, "use_linear", leaf.use_linear ? 1 : 0);
    io::write_scalar(os, "mean", leaf.mean);
    if (leaf.use_linear) leaf.linear.save(os);
  }
}

ModelTree ModelTree::load(std::istream& is) {
  namespace io = acbm::stats::io;
  io::expect_header(is, "model_tree", 1);
  ModelTreeOptions opts;
  opts.linear_leaves = io::read_scalar<int>(is, "linear_leaves") != 0;
  opts.sd_keep_ratio = io::read_scalar<double>(is, "sd_keep_ratio");
  ModelTree tree(opts);
  tree.tree_ = RegressionTree::load(is);
  const auto count = io::read_scalar<std::size_t>(is, "leaf_count");
  if (count != tree.tree_.node_count()) {
    throw std::invalid_argument("ModelTree::load: leaf model count mismatch");
  }
  tree.leaf_models_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    LeafModel leaf;
    leaf.use_linear = io::read_scalar<int>(is, "use_linear") != 0;
    leaf.mean = io::read_scalar<double>(is, "mean");
    if (leaf.use_linear) {
      leaf.linear = acbm::stats::LinearRegression::load(is);
    }
    tree.leaf_models_.push_back(std::move(leaf));
  }
  return tree;
}

std::vector<LeafModelExport> ModelTree::export_leaf_models() const {
  std::vector<LeafModelExport> out;
  out.reserve(leaf_models_.size());
  for (const LeafModel& leaf : leaf_models_) {
    LeafModelExport e;
    e.use_linear = leaf.use_linear;
    e.mean = leaf.mean;
    if (leaf.use_linear) {
      e.intercept = leaf.linear.intercept();
      e.coefficients = leaf.linear.coefficients();
    }
    out.push_back(std::move(e));
  }
  return out;
}

double ModelTree::predict(std::span<const double> features) const {
  if (!fitted()) throw std::logic_error("ModelTree::predict: not fitted");
  const std::size_t leaf = tree_.leaf_index(features);
  const LeafModel& model = leaf_models_[leaf];
  return model.use_linear ? model.linear.predict(features) : model.mean;
}

std::vector<double> ModelTree::predict(const acbm::stats::Matrix& x) const {
  std::vector<double> out;
  out.reserve(x.rows());
  for (std::size_t i = 0; i < x.rows(); ++i) out.push_back(predict(x.row(i)));
  return out;
}

}  // namespace acbm::tree
