// Shared, immutable cache of lag-embedded NAR training sets. A grid search
// trains delay_grid x hidden_grid candidates, but candidates that share a
// delay count train on byte-identical design matrices — and the spatial
// model's retry/degradation ladder refits the same series several times.
// The cache builds each (series, delays, length) embedding (and its z-score
// column scalers) once and hands out shared_ptrs to the immutable result.
//
// Thread-safety contract: get() is safe to call concurrently from any
// thread. Entries are built outside the lock and inserted
// first-writer-wins; because the embedding is a pure function of its key,
// a losing duplicate build is byte-identical to the winner, so concurrency
// never changes results. hits()/misses()/entries() take the same lock and
// may be approximate while builds race. When observability is enabled
// (core/observe.h) every lookup also bumps the global lag_cache.hit /
// lag_cache.miss counters.
//
// Invalidation contract: the caller owns the guarantee that a series_id
// always refers to the same values. If a series' data changes under an id,
// call invalidate(series_id) (or clear()) while no other thread is mid
// get() for that id; embeddings already handed out as shared_ptrs stay
// valid and keep the old data alive.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <tuple>

#include "nn/mlp.h"

namespace acbm::nn {

class LagMatrixCache {
 public:
  LagMatrixCache() = default;
  LagMatrixCache(const LagMatrixCache&) = delete;
  LagMatrixCache& operator=(const LagMatrixCache&) = delete;

  /// Returns the lag embedding of series[0..length) with the given delay
  /// count, building it on a miss. `series_id` identifies the underlying
  /// series — the caller owns the contract that the same id always refers
  /// to the same values (use invalidate() when a series changes).
  /// Build failures (e.g. FitError::kSeriesTooShort) propagate and are not
  /// cached.
  [[nodiscard]] std::shared_ptr<const MlpTrainingSet> get(
      std::uint64_t series_id, std::span<const double> series,
      std::size_t delays, std::size_t length);

  /// Drops every cached embedding for `series_id` (all delay/length
  /// combinations). Outstanding shared_ptrs stay valid.
  void invalidate(std::uint64_t series_id);

  /// Drops everything.
  void clear();

  [[nodiscard]] std::size_t hits() const;
  [[nodiscard]] std::size_t misses() const;
  [[nodiscard]] std::size_t entries() const;

 private:
  using Key = std::tuple<std::uint64_t, std::size_t, std::size_t>;

  mutable std::mutex mutex_;
  std::map<Key, std::shared_ptr<const MlpTrainingSet>> entries_;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
};

}  // namespace acbm::nn
