// Feed-forward multilayer perceptron with tanh hidden units and a linear
// output — the network family the paper's spatial model uses (§V-A: one
// hidden layer with the Tan-Sigmoid transfer function). Trained by
// backpropagation with Adam or SGD+momentum and optional early stopping.
//
// Training is allocation-free inside the epoch loop: all scratch lives in
// a per-thread Workspace sized once per fit, and the layer transforms run
// through the fused GEMV+activation kernels (stats/kernels.h). The
// normalized design matrix plus its column scalers can be prebuilt once as
// an MlpTrainingSet and shared across fits (grid-search candidates and
// degradation-ladder retry rungs reuse one set via nn::LagMatrixCache).
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "core/arena.h"
#include "stats/descriptive.h"
#include "stats/rng.h"

namespace acbm::nn {

enum class Optimizer { kSgdMomentum, kAdam };

struct MlpOptions {
  std::vector<std::size_t> hidden_layers{8};  ///< Sizes of hidden layers.
  std::size_t max_epochs = 500;
  std::size_t batch_size = 32;
  double learning_rate = 1e-2;
  double momentum = 0.9;          ///< SGD only.
  double weight_decay = 1e-5;     ///< L2 regularization.
  Optimizer optimizer = Optimizer::kAdam;
  double validation_fraction = 0.15;  ///< Held out for early stopping.
  std::size_t patience = 40;          ///< Epochs without improvement.
  std::uint64_t seed = 1;
};

/// An immutable, normalization-ready training set: the z-scored design
/// matrix (row-major, rows x cols) together with the fitted per-column and
/// target scalers. Building one performs exactly the validation and
/// normalization Mlp::fit(x, y) would, so a set built once can be shared
/// by every fit over the same data — column means/sds are computed once
/// instead of once per refit rung or grid candidate.
struct MlpTrainingSet {
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::vector<double> x_norm;  ///< rows * cols, z-scored per column.
  std::vector<double> y_norm;  ///< rows, z-scored.
  std::vector<acbm::stats::ZScore> input_scalers;
  acbm::stats::ZScore output_scaler;

  [[nodiscard]] std::span<const double> row(std::size_t i) const {
    return {x_norm.data() + i * cols, cols};
  }

  /// Validates (non-empty, non-ragged, finite) and normalizes. Throws
  /// std::invalid_argument / core::FitFailure exactly like Mlp::fit(x, y).
  [[nodiscard]] static MlpTrainingSet build(
      const std::vector<std::vector<double>>& x, std::span<const double> y);

  /// Builds the lag-embedded set for a NAR model directly from a series:
  /// row t-delays is [series[t-1], ..., series[t-delays]] -> series[t] for
  /// t in [delays, length). Identical values (and scalers) to building via
  /// the nested-vector overload on the explicit lag windows.
  /// Requires length >= delays + 2 and length <= series.size(); throws
  /// core::FitFailure(kSeriesTooShort) otherwise.
  [[nodiscard]] static MlpTrainingSet build_lagged(
      std::span<const double> series, std::size_t delays, std::size_t length);
};

/// Preallocated training/inference scratch. Methods taking a Workspace
/// size it for the network once and then run allocation-free; one
/// Workspace per thread (the trainers keep a thread_local instance), never
/// shared concurrently. All buffers are spans carved from one arena, so a
/// topology change (grid-search candidates sharing the thread-local
/// workspace) recarves in place instead of reallocating each vector.
class Workspace {
 public:
  Workspace() = default;
  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;
  Workspace(Workspace&&) noexcept = default;
  Workspace& operator=(Workspace&&) noexcept = default;

 private:
  friend class Mlp;
  acbm::core::Arena arena;         ///< Backing storage for every span below.
  std::vector<std::size_t> shape;  ///< input_dim + layer widths (carve key).
  std::vector<std::span<double>> acts;  ///< Activations per layer edge.
  std::span<double> sample_grad;
  std::span<double> batch_grad;
  std::span<double> delta;
  std::span<double> prev_delta;
  std::span<double> xn;  ///< Normalized features for predict().
  std::span<double> params;
  std::span<double> best_params;
  std::span<double> m_state;
  std::span<double> v_state;
};

/// Read-only view of one fitted layer (row-major weights [out x in]), for
/// inference-representation extraction (nn::MlpF32View).
struct MlpLayerView {
  std::span<const double> weights;
  std::span<const double> biases;
  std::size_t in = 0;
  std::size_t out = 0;
};

/// A fully connected regression network: inputs -> tanh hidden layer(s) ->
/// linear output. Inputs and targets are z-score normalized internally, so
/// callers work on the original scale.
class Mlp {
 public:
  Mlp() = default;
  explicit Mlp(MlpOptions opts) : opts_(std::move(opts)) {}

  /// Trains on rows x[i] -> y[i]. All rows must share the same width.
  /// Throws std::invalid_argument on empty or ragged inputs.
  void fit(const std::vector<std::vector<double>>& x,
           std::span<const double> y);

  /// Trains on a prebuilt (already validated + normalized) set. Bit-
  /// identical to fit(x, y) on the data the set was built from.
  void fit(const MlpTrainingSet& data);

  /// Predicts one sample (original scale).
  [[nodiscard]] double predict(std::span<const double> features) const;

  /// Allocation-free predict against a caller-owned workspace — for tight
  /// walk-forward loops (NarModel::one_step_predictions).
  [[nodiscard]] double predict(Workspace& ws,
                               std::span<const double> features) const;

  [[nodiscard]] bool fitted() const noexcept { return fitted_; }
  [[nodiscard]] std::size_t input_dim() const noexcept { return input_dim_; }

  /// Per-layer weight/bias views in forward order (hidden layers first,
  /// linear output last). Valid until the next fit or load.
  [[nodiscard]] std::vector<MlpLayerView> layer_views() const;
  [[nodiscard]] const std::vector<acbm::stats::ZScore>& input_scalers()
      const noexcept {
    return input_scalers_;
  }
  [[nodiscard]] const acbm::stats::ZScore& output_scaler() const noexcept {
    return output_scaler_;
  }

  /// Best validation loss observed during training (MSE, normalized scale).
  [[nodiscard]] double best_validation_loss() const noexcept {
    return best_val_loss_;
  }

  /// Gradient of the loss for a single sample, flattened across all
  /// parameters — exposed so tests can check backprop against numerical
  /// differentiation.
  [[nodiscard]] std::vector<double> loss_gradient(
      std::span<const double> features_norm, double target_norm) const;

  /// Flattened parameter access (weights then biases, layer by layer);
  /// used with loss_gradient by the gradient-check test.
  [[nodiscard]] std::vector<double> parameters() const;
  void set_parameters(std::span<const double> params);

  /// Loss for a single normalized sample: 0.5 * (output - target)^2.
  [[nodiscard]] double sample_loss(std::span<const double> features_norm,
                                   double target_norm) const;

  /// Text serialization of the fitted network (weights, biases, scalers).
  /// Loaded models predict identically but retraining restarts from the
  /// saved weights' topology with default training options.
  void save(std::ostream& os) const;
  [[nodiscard]] static Mlp load(std::istream& is);

 private:
  struct Layer {
    // weights[o * in + i]: weight from input i to output o.
    std::vector<double> weights;
    std::vector<double> biases;
    std::size_t in = 0;
    std::size_t out = 0;
  };

  void init_layers(std::size_t input_dim, acbm::stats::Rng& rng);

  /// Sizes ws for this topology (idempotent; no-op once sized).
  void prepare_workspace(Workspace& ws) const;

  /// Forward pass into ws.acts; returns the scalar output. No allocation
  /// once ws is prepared.
  double forward_into(Workspace& ws, std::span<const double> x_norm) const;

  /// Forward + backward for one sample, writing the flattened gradient
  /// into ws.sample_grad. No allocation once ws is prepared.
  void gradient_into(Workspace& ws, std::span<const double> x_norm,
                     double target_norm) const;

  MlpOptions opts_;
  std::vector<Layer> layers_;
  std::vector<acbm::stats::ZScore> input_scalers_;
  acbm::stats::ZScore output_scaler_;
  std::size_t input_dim_ = 0;
  double best_val_loss_ = 0.0;
  bool fitted_ = false;
};

}  // namespace acbm::nn
