// Feed-forward multilayer perceptron with tanh hidden units and a linear
// output — the network family the paper's spatial model uses (§V-A: one
// hidden layer with the Tan-Sigmoid transfer function). Trained by
// backpropagation with Adam or SGD+momentum and optional early stopping.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <span>
#include <vector>

#include "stats/descriptive.h"
#include "stats/rng.h"

namespace acbm::nn {

enum class Optimizer { kSgdMomentum, kAdam };

struct MlpOptions {
  std::vector<std::size_t> hidden_layers{8};  ///< Sizes of hidden layers.
  std::size_t max_epochs = 500;
  std::size_t batch_size = 32;
  double learning_rate = 1e-2;
  double momentum = 0.9;          ///< SGD only.
  double weight_decay = 1e-5;     ///< L2 regularization.
  Optimizer optimizer = Optimizer::kAdam;
  double validation_fraction = 0.15;  ///< Held out for early stopping.
  std::size_t patience = 40;          ///< Epochs without improvement.
  std::uint64_t seed = 1;
};

/// A fully connected regression network: inputs -> tanh hidden layer(s) ->
/// linear output. Inputs and targets are z-score normalized internally, so
/// callers work on the original scale.
class Mlp {
 public:
  Mlp() = default;
  explicit Mlp(MlpOptions opts) : opts_(std::move(opts)) {}

  /// Trains on rows x[i] -> y[i]. All rows must share the same width.
  /// Throws std::invalid_argument on empty or ragged inputs.
  void fit(const std::vector<std::vector<double>>& x,
           std::span<const double> y);

  /// Predicts one sample (original scale).
  [[nodiscard]] double predict(std::span<const double> features) const;

  [[nodiscard]] bool fitted() const noexcept { return fitted_; }
  [[nodiscard]] std::size_t input_dim() const noexcept { return input_dim_; }

  /// Best validation loss observed during training (MSE, normalized scale).
  [[nodiscard]] double best_validation_loss() const noexcept {
    return best_val_loss_;
  }

  /// Gradient of the loss for a single sample, flattened across all
  /// parameters — exposed so tests can check backprop against numerical
  /// differentiation.
  [[nodiscard]] std::vector<double> loss_gradient(
      std::span<const double> features_norm, double target_norm) const;

  /// Flattened parameter access (weights then biases, layer by layer);
  /// used with loss_gradient by the gradient-check test.
  [[nodiscard]] std::vector<double> parameters() const;
  void set_parameters(std::span<const double> params);

  /// Loss for a single normalized sample: 0.5 * (output - target)^2.
  [[nodiscard]] double sample_loss(std::span<const double> features_norm,
                                   double target_norm) const;

  /// Text serialization of the fitted network (weights, biases, scalers).
  /// Loaded models predict identically but retraining restarts from the
  /// saved weights' topology with default training options.
  void save(std::ostream& os) const;
  [[nodiscard]] static Mlp load(std::istream& is);

 private:
  struct Layer {
    // weights[o * in + i]: weight from input i to output o.
    std::vector<double> weights;
    std::vector<double> biases;
    std::size_t in = 0;
    std::size_t out = 0;
  };

  [[nodiscard]] std::vector<double> forward_normalized(
      std::span<const double> x_norm) const;

  void init_layers(std::size_t input_dim, acbm::stats::Rng& rng);

  MlpOptions opts_;
  std::vector<Layer> layers_;
  std::vector<acbm::stats::ZScore> input_scalers_;
  acbm::stats::ZScore output_scaler_;
  std::size_t input_dim_ = 0;
  double best_val_loss_ = 0.0;
  bool fitted_ = false;
};

}  // namespace acbm::nn
