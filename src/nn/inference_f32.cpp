#include "nn/inference_f32.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "nn/mlp.h"
#include "nn/nar.h"
#include "stats/kernels.h"

namespace acbm::nn {

MlpF32View::MlpF32View(const Mlp& mlp) {
  if (!mlp.fitted()) {
    throw std::logic_error("MlpF32View: source network not fitted");
  }
  input_dim_ = mlp.input_dim();
  const std::vector<MlpLayerView> views = mlp.layer_views();
  std::size_t total = 0;
  std::size_t max_width = input_dim_;
  for (const MlpLayerView& v : views) {
    total += v.weights.size() + v.biases.size();
    max_width = std::max(max_width, v.out);
  }
  data_.reserve(total);
  layers_.reserve(views.size());
  for (const MlpLayerView& v : views) {
    LayerF32 layer;
    layer.in = v.in;
    layer.out = v.out;
    layer.weights_off = data_.size();
    // Transpose [out x in] row-major into input-major wt[i*out + o]: the
    // per-input weight stripes become contiguous across output lanes.
    for (std::size_t i = 0; i < v.in; ++i) {
      for (std::size_t o = 0; o < v.out; ++o) {
        data_.push_back(static_cast<float>(v.weights[o * v.in + i]));
      }
    }
    layer.biases_off = data_.size();
    for (std::size_t o = 0; o < v.out; ++o) {
      data_.push_back(static_cast<float>(v.biases[o]));
    }
    layers_.push_back(layer);
  }
  in_mean_.reserve(input_dim_);
  in_sd_.reserve(input_dim_);
  for (const auto& z : mlp.input_scalers()) {
    in_mean_.push_back(static_cast<float>(z.mean));
    in_sd_.push_back(static_cast<float>(z.sd));
  }
  out_mean_ = mlp.output_scaler().mean;
  out_sd_ = mlp.output_scaler().sd;
  act_a_.resize(max_width);
  act_b_.resize(max_width);
}

double MlpF32View::predict(std::span<const double> features) const {
  if (features.size() != input_dim_) {
    throw std::invalid_argument("MlpF32View::predict: feature count mismatch");
  }
  float* cur = act_a_.data();
  float* next = act_b_.data();
  for (std::size_t j = 0; j < input_dim_; ++j) {
    cur[j] = (static_cast<float>(features[j]) - in_mean_[j]) / in_sd_[j];
  }
  std::size_t width = input_dim_;
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    const LayerF32& layer = layers_[l];
    const std::span<const float> wt{data_.data() + layer.weights_off,
                                    layer.in * layer.out};
    const std::span<const float> bias{data_.data() + layer.biases_off,
                                      layer.out};
    const std::span<const float> in{cur, width};
    const std::span<float> out{next, layer.out};
    if (l + 1 < layers_.size()) {
      stats::gemv_t_tanh_f32(wt, bias, in, out);
    } else {
      stats::gemv_t_f32(wt, bias, in, out);
    }
    std::swap(cur, next);
    width = layer.out;
  }
  return static_cast<double>(cur[0]) * out_sd_ + out_mean_;
}

// The MlpF32View member constructor already rejects an unfitted network.
NarF32View::NarF32View(const NarModel& nar)
    : delays_(nar.delays()), mlp_(nar.network()), window_(delays_) {}

double NarF32View::forecast_one(std::span<const double> history) const {
  if (history.size() < delays_) {
    throw std::invalid_argument("NarF32View: history shorter than delays");
  }
  // Most recent value first, matching NarModel::window().
  for (std::size_t i = 0; i < delays_; ++i) {
    window_[i] = history[history.size() - 1 - i];
  }
  return mlp_.predict(window_);
}

}  // namespace acbm::nn
