// Hyperparameter grid search for the NAR model. The paper (§V-A) finds the
// optimal number of delays and hidden nodes per botnet-family dataset with a
// grid search; this reproduces that selection step using a chronological
// validation tail.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include <cstdint>

#include "core/robust.h"
#include "nn/lag_cache.h"
#include "nn/nar.h"

namespace acbm::nn {

struct NarGridOptions {
  std::vector<std::size_t> delay_grid{1, 2, 3, 5};
  std::vector<std::size_t> hidden_grid{2, 4, 8};
  double validation_fraction = 0.2;  ///< Chronological tail used for scoring.
  MlpOptions mlp;                    ///< Base training options per candidate.
};

struct NarGridResult {
  std::size_t delays = 0;
  std::size_t hidden_nodes = 0;
  double validation_rmse = 0.0;
  NarModel model;  ///< Refit on the full series with the winning settings.
};

/// Trains one NAR per grid point on the chronological head of `series`,
/// scores one-step RMSE on the tail, then refits the winner on the whole
/// series. Candidates that cannot be fitted or do not converge are skipped;
/// when every candidate fails the outcome carries a typed FitError (the
/// most specific failure seen across the grid) instead of silently
/// selecting an invalid configuration.
///
/// Candidates sharing a delay count train on the same lag embedding, so the
/// embedding (and its z-score column scalers) is built once per distinct
/// delay value through a LagMatrixCache. Pass `cache` (with a `series_id`
/// that uniquely names this series for that cache) to also share the
/// embeddings across repeated searches over the same series — e.g. the
/// spatial model's retry rungs; with the default nullptr a search-local
/// cache still deduplicates within the grid. Results are bit-identical
/// either way.
[[nodiscard]] core::FitOutcome<NarGridResult> nar_grid_search(
    std::span<const double> series, const NarGridOptions& opts = {},
    LagMatrixCache* cache = nullptr, std::uint64_t series_id = 0);

}  // namespace acbm::nn
