#include "nn/nar.h"

#include <stdexcept>

#include "core/robust.h"
#include "stats/serialize.h"

namespace acbm::nn {

NarModel::NarModel(NarOptions opts) : opts_(std::move(opts)) {
  if (opts_.delays == 0) throw std::invalid_argument("NarModel: delays == 0");
  if (opts_.hidden_nodes == 0) {
    throw std::invalid_argument("NarModel: hidden_nodes == 0");
  }
  opts_.mlp.hidden_layers = {opts_.hidden_nodes};
  mlp_ = Mlp(opts_.mlp);
}

std::vector<double> NarModel::window(std::span<const double> values) const {
  if (values.size() < opts_.delays) {
    throw std::invalid_argument("NarModel: history shorter than delay window");
  }
  // Most recent value first: f(T_j, T_{j-1}, ..., T_{j-q+1}).
  std::vector<double> w(opts_.delays);
  for (std::size_t i = 0; i < opts_.delays; ++i) {
    w[i] = values[values.size() - 1 - i];
  }
  return w;
}

void NarModel::fit(std::span<const double> series) {
  if (series.size() < opts_.delays + 2) {
    throw core::FitFailure(core::FitError::kSeriesTooShort,
                           "NarModel::fit: series too short for delays");
  }
  fit_prepared(
      MlpTrainingSet::build_lagged(series, opts_.delays, series.size()));
}

void NarModel::fit_prepared(const MlpTrainingSet& data) {
  if (data.cols != opts_.delays) {
    throw std::invalid_argument(
        "NarModel::fit_prepared: training set delay count mismatch");
  }
  mlp_.fit(data);
}

double NarModel::forecast_one(std::span<const double> history) const {
  if (!fitted()) throw std::logic_error("NarModel::forecast_one: not fitted");
  return mlp_.predict(window(history));
}

std::vector<double> NarModel::forecast(std::span<const double> history,
                                       std::size_t h) const {
  if (!fitted()) throw std::logic_error("NarModel::forecast: not fitted");
  if (h > 0 && history.size() < opts_.delays) {
    throw std::invalid_argument("NarModel: history shorter than delay window");
  }
  std::vector<double> extended(history.begin(), history.end());
  extended.reserve(history.size() + h);
  std::vector<double> out;
  out.reserve(h);
  Workspace ws;
  std::vector<double> w(opts_.delays);
  for (std::size_t k = 0; k < h; ++k) {
    for (std::size_t i = 0; i < opts_.delays; ++i) {
      w[i] = extended[extended.size() - 1 - i];
    }
    const double next = mlp_.predict(ws, w);
    extended.push_back(next);
    out.push_back(next);
  }
  return out;
}

void NarModel::save(std::ostream& os) const {
  namespace io = acbm::stats::io;
  io::write_header(os, "nar", 1);
  io::write_scalar(os, "delays", opts_.delays);
  io::write_scalar(os, "hidden_nodes", opts_.hidden_nodes);
  mlp_.save(os);
}

NarModel NarModel::load(std::istream& is) {
  namespace io = acbm::stats::io;
  io::expect_header(is, "nar", 1);
  NarOptions opts;
  opts.delays = io::read_scalar<std::size_t>(is, "delays");
  opts.hidden_nodes = io::read_scalar<std::size_t>(is, "hidden_nodes");
  NarModel model(opts);
  model.mlp_ = Mlp::load(is);
  return model;
}

std::vector<double> NarModel::one_step_predictions(
    std::span<const double> series, std::size_t start) const {
  if (!fitted()) {
    throw std::logic_error("NarModel::one_step_predictions: not fitted");
  }
  if (start < opts_.delays || start > series.size()) {
    throw std::invalid_argument("NarModel::one_step_predictions: bad start");
  }
  std::vector<double> out;
  out.reserve(series.size() - start);
  // One window buffer and one workspace for the whole walk — the scoring
  // loop in nar_grid_search calls this for every candidate.
  Workspace ws;
  std::vector<double> w(opts_.delays);
  for (std::size_t t = start; t < series.size(); ++t) {
    for (std::size_t i = 0; i < opts_.delays; ++i) {
      w[i] = series[t - 1 - i];
    }
    out.push_back(mlp_.predict(ws, w));
  }
  return out;
}

}  // namespace acbm::nn
