#include "nn/lag_cache.h"

#include <utility>

#include "core/observe.h"

namespace acbm::nn {

std::shared_ptr<const MlpTrainingSet> LagMatrixCache::get(
    std::uint64_t series_id, std::span<const double> series,
    std::size_t delays, std::size_t length) {
  const Key key{series_id, delays, length};
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
      ++hits_;
      ACBM_COUNT("lag_cache.hit", 1);
      return it->second;
    }
    ++misses_;
  }
  ACBM_COUNT("lag_cache.miss", 1);

  // Build outside the lock: embeddings can be large and building is pure,
  // so concurrent duplicate work is safe (first insert wins below).
  auto built = std::make_shared<const MlpTrainingSet>(
      MlpTrainingSet::build_lagged(series, delays, length));

  const std::lock_guard<std::mutex> lock(mutex_);
  const auto [it, inserted] = entries_.emplace(key, std::move(built));
  return it->second;
}

void LagMatrixCache::invalidate(std::uint64_t series_id) {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (std::get<0>(it->first) == series_id) {
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

void LagMatrixCache::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
}

std::size_t LagMatrixCache::hits() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::size_t LagMatrixCache::misses() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

std::size_t LagMatrixCache::entries() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

}  // namespace acbm::nn
