// Float32 inference views of fitted networks — the serving-side half of
// the --precision f32 path. A view is extracted once from a fitted f64
// model: weights are down-converted a single time into one contiguous
// buffer with a transposed (input-major) layout so the f32 gemv kernels
// stream output lanes with unit stride. Forecast accuracy versus the f64
// models is bounded by the property tests in tests/core/ and documented in
// DESIGN.md §6.
//
// Views are cheap to copy and hold no reference to the source model. They
// keep mutable activation scratch, so a view must not be shared across
// threads — extract one per serving thread.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace acbm::nn {

class Mlp;
class NarModel;

/// Compact f32 replica of a fitted Mlp (tanh hidden layers + linear
/// output). predict() matches Mlp::predict to f32 rounding.
class MlpF32View {
 public:
  /// Down-converts the fitted network once. Throws std::logic_error when
  /// the source is not fitted.
  explicit MlpF32View(const Mlp& mlp);

  /// Forward pass in f32 (inputs z-scored with f32 scalers, final
  /// denormalization in f64). Not thread-safe (internal scratch).
  [[nodiscard]] double predict(std::span<const double> features) const;

  [[nodiscard]] std::size_t input_dim() const noexcept { return input_dim_; }

 private:
  struct LayerF32 {
    std::size_t in = 0;
    std::size_t out = 0;
    std::size_t weights_off = 0;  ///< Into data_: transposed wt[i*out+o].
    std::size_t biases_off = 0;   ///< Into data_: out biases.
  };

  std::vector<LayerF32> layers_;
  std::vector<float> data_;      ///< All weights + biases, contiguous.
  std::vector<float> in_mean_;   ///< Input z-score means, f32.
  std::vector<float> in_sd_;     ///< Input z-score sds, f32.
  double out_mean_ = 0.0;        ///< Output denormalization stays f64.
  double out_sd_ = 1.0;
  std::size_t input_dim_ = 0;
  mutable std::vector<float> act_a_;  ///< Ping-pong activation scratch.
  mutable std::vector<float> act_b_;
};

/// f32 replica of a NAR network: the lag window read + MlpF32View forward.
class NarF32View {
 public:
  /// Throws std::logic_error when the source is not fitted.
  explicit NarF32View(const NarModel& nar);

  /// One-step forecast from the most recent `delays()` values of
  /// `history` (newest last, like NarModel::forecast_one). Throws
  /// std::invalid_argument when history is shorter than the delay window.
  [[nodiscard]] double forecast_one(std::span<const double> history) const;

  [[nodiscard]] std::size_t delays() const noexcept { return delays_; }

 private:
  std::size_t delays_ = 0;
  MlpF32View mlp_;
  mutable std::vector<double> window_;  ///< Most-recent-first lag window.
};

}  // namespace acbm::nn
