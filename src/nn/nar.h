// Nonlinear autoregression (NAR): the paper's spatial model (Eq. 6-7)
//   T_{j+1} = f(T_j, T_{j-1}, ..., T_{j-q}) + eps,  eps ~ N(0, sigma^2)
// where f is a one-hidden-layer tanh network. This wrapper builds the lag
// embedding, trains the Mlp, and provides open-loop (one-step, true history)
// and closed-loop (multi-step, fed-back) forecasts.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <span>
#include <vector>

#include "nn/mlp.h"

namespace acbm::nn {

struct NarOptions {
  std::size_t delays = 3;        ///< q in Eq. (6): number of lagged inputs.
  std::size_t hidden_nodes = 8;  ///< Width of the single hidden layer.
  MlpOptions mlp;                ///< hidden_layers is overwritten from above.
};

class NarModel {
 public:
  NarModel() = default;
  explicit NarModel(NarOptions opts);

  /// Fits f on all (lag-window -> next value) pairs in the series.
  /// Requires series.size() >= delays + 2; throws std::invalid_argument.
  void fit(std::span<const double> series);

  /// Fits from a prebuilt lag-embedded training set (see
  /// MlpTrainingSet::build_lagged) — bit-identical to fit() on the series
  /// the set was built from, but the embedding and its column scalers are
  /// computed once and shared across fits (grid-search candidates with the
  /// same delay count, degradation-ladder retry rungs). The set's column
  /// count must equal this model's delays.
  void fit_prepared(const MlpTrainingSet& data);

  /// One-step forecast from the last `delays` values of `history`.
  [[nodiscard]] double forecast_one(std::span<const double> history) const;

  /// Closed-loop h-step forecast: predictions are fed back as inputs.
  [[nodiscard]] std::vector<double> forecast(std::span<const double> history,
                                             std::size_t h) const;

  /// Walk-forward one-step predictions for series[start..], each using the
  /// true lagged values (open loop). Requires start >= delays.
  [[nodiscard]] std::vector<double> one_step_predictions(
      std::span<const double> series, std::size_t start) const;

  [[nodiscard]] bool fitted() const noexcept { return mlp_.fitted(); }
  [[nodiscard]] std::size_t delays() const noexcept { return opts_.delays; }
  [[nodiscard]] const Mlp& network() const noexcept { return mlp_; }

  /// Text serialization of the fitted state.
  void save(std::ostream& os) const;
  [[nodiscard]] static NarModel load(std::istream& is);

 private:
  [[nodiscard]] std::vector<double> window(std::span<const double> values) const;

  NarOptions opts_;
  Mlp mlp_;
};

}  // namespace acbm::nn
