#include "nn/grid_search.h"

#include <cmath>
#include <limits>
#include <stdexcept>
#include <tuple>

#include "core/observe.h"
#include "core/parallel.h"
#include "stats/metrics.h"

namespace acbm::nn {

core::FitOutcome<NarGridResult> nar_grid_search(std::span<const double> series,
                                                const NarGridOptions& opts,
                                                LagMatrixCache* cache,
                                                std::uint64_t series_id) {
  using Outcome = core::FitOutcome<NarGridResult>;
  ACBM_SPAN_KV("nar.grid_search",
               "series_id=" + std::to_string(series_id) +
                   ",n=" + std::to_string(series.size()));
  if (!(opts.validation_fraction > 0.0 && opts.validation_fraction < 1.0)) {
    throw std::invalid_argument("nar_grid_search: bad validation fraction");
  }
  // With no caller-provided cache the embeddings are still shared across
  // candidates within this search.
  LagMatrixCache local_cache;
  if (cache == nullptr) cache = &local_cache;
  const std::size_t n = series.size();
  const auto n_val = static_cast<std::size_t>(
      static_cast<double>(n) * opts.validation_fraction);
  if (n_val == 0 || n_val >= n) {
    return Outcome::failure(core::FitError::kSeriesTooShort,
                            "nar_grid_search: series too short to hold out a "
                            "validation tail");
  }
  const std::size_t split = n - n_val;

  // Flattened delay x hidden grid, evaluated concurrently: every candidate
  // trains on the chronological head and scores one-step RMSE on the tail,
  // fully independently (each Mlp seeds its own Rng).
  struct Candidate {
    std::size_t delays = 0;
    std::size_t hidden = 0;
  };
  std::vector<Candidate> grid;
  grid.reserve(opts.delay_grid.size() * opts.hidden_grid.size());
  for (std::size_t delays : opts.delay_grid) {
    for (std::size_t hidden : opts.hidden_grid) {
      grid.push_back({delays, hidden});
    }
  }
  ACBM_COUNT("nar.candidates", grid.size());

  // Prebuild the lag embedding once per distinct viable delay count, so the
  // concurrent candidate fits below all hit the cache instead of racing to
  // build duplicates. Build failures are swallowed here — the per-candidate
  // path rebuilds, fails the same way, and records the typed error.
  for (std::size_t delays : opts.delay_grid) {
    if (split < delays + 2) continue;
    try {
      (void)cache->get(series_id, series, delays, split);
    } catch (...) {
    }
  }

  struct Score {
    double rmse = std::numeric_limits<double>::infinity();
    bool ok = false;
    core::FitError error = core::FitError::kSeriesTooShort;
  };
  const std::vector<double> truth(
      series.begin() + static_cast<std::ptrdiff_t>(split), series.end());
  const std::vector<Score> scores =
      core::parallel_map(grid.size(), [&](std::size_t g) {
        Score score;
        const Candidate& candidate = grid[g];
        if (split < candidate.delays + 2) return score;
        NarOptions nar_opts;
        nar_opts.delays = candidate.delays;
        nar_opts.hidden_nodes = candidate.hidden;
        nar_opts.mlp = opts.mlp;
        NarModel model(nar_opts);
        try {
          model.fit_prepared(
              *cache->get(series_id, series, candidate.delays, split));
        } catch (const core::FitFailure& e) {
          score.error = e.code();
          return score;
        } catch (const std::invalid_argument&) {
          return score;  // Series too short for this delay window.
        }
        score.rmse =
            acbm::stats::rmse(truth, model.one_step_predictions(series, split));
        score.ok = std::isfinite(score.rmse);
        if (!score.ok) score.error = core::FitError::kNonconvergence;
        return score;
      });

  // Ordered reduction with an explicit tie-break: equal validation RMSE
  // prefers the smaller (delays, hidden) pair, so the winner is the same
  // whatever order the grid was evaluated (or listed) in.
  std::size_t best_idx = grid.size();
  for (std::size_t g = 0; g < grid.size(); ++g) {
    if (!scores[g].ok) continue;
    if (best_idx == grid.size()) {
      best_idx = g;
      continue;
    }
    const auto key = [&](std::size_t i) {
      return std::make_tuple(scores[i].rmse, grid[i].delays, grid[i].hidden);
    };
    if (key(g) < key(best_idx)) best_idx = g;
  }
  if (best_idx == grid.size()) {
    // Every candidate failed: report the most specific error seen (any
    // non-series-too-short failure beats the generic too-short default).
    core::FitError error = core::FitError::kSeriesTooShort;
    for (const Score& score : scores) {
      if (score.error != core::FitError::kSeriesTooShort) {
        error = score.error;
        break;
      }
    }
    return Outcome::failure(error, "nar_grid_search: all candidates failed");
  }

  // Refit the winning architecture on the full series.
  NarGridResult best;
  best.delays = grid[best_idx].delays;
  best.hidden_nodes = grid[best_idx].hidden;
  best.validation_rmse = scores[best_idx].rmse;
  NarOptions nar_opts;
  nar_opts.delays = best.delays;
  nar_opts.hidden_nodes = best.hidden_nodes;
  nar_opts.mlp = opts.mlp;
  best.model = NarModel(nar_opts);
  try {
    best.model.fit_prepared(
        *cache->get(series_id, series, best.delays, series.size()));
  } catch (const core::FitFailure& e) {
    return Outcome::failure(e.code(),
                            std::string("nar_grid_search: winner refit: ") +
                                e.what());
  }
  return best;
}

}  // namespace acbm::nn
