#include "nn/grid_search.h"

#include <limits>
#include <stdexcept>

#include "stats/metrics.h"

namespace acbm::nn {

std::optional<NarGridResult> nar_grid_search(std::span<const double> series,
                                             const NarGridOptions& opts) {
  if (!(opts.validation_fraction > 0.0 && opts.validation_fraction < 1.0)) {
    throw std::invalid_argument("nar_grid_search: bad validation fraction");
  }
  const std::size_t n = series.size();
  const auto n_val = static_cast<std::size_t>(
      static_cast<double>(n) * opts.validation_fraction);
  if (n_val == 0 || n_val >= n) return std::nullopt;
  const std::size_t split = n - n_val;

  std::optional<NarGridResult> best;
  double best_rmse = std::numeric_limits<double>::infinity();
  for (std::size_t delays : opts.delay_grid) {
    for (std::size_t hidden : opts.hidden_grid) {
      if (split < delays + 2) continue;
      NarOptions nar_opts;
      nar_opts.delays = delays;
      nar_opts.hidden_nodes = hidden;
      nar_opts.mlp = opts.mlp;
      NarModel candidate(nar_opts);
      try {
        candidate.fit(series.subspan(0, split));
      } catch (const std::invalid_argument&) {
        continue;
      }
      const std::vector<double> preds =
          candidate.one_step_predictions(series, split);
      const std::vector<double> truth(series.begin() + static_cast<std::ptrdiff_t>(split),
                                      series.end());
      const double score = acbm::stats::rmse(truth, preds);
      if (score < best_rmse) {
        best_rmse = score;
        NarGridResult result;
        result.delays = delays;
        result.hidden_nodes = hidden;
        result.validation_rmse = score;
        best = std::move(result);
      }
    }
  }
  if (!best) return std::nullopt;

  // Refit the winning architecture on the full series.
  NarOptions nar_opts;
  nar_opts.delays = best->delays;
  nar_opts.hidden_nodes = best->hidden_nodes;
  nar_opts.mlp = opts.mlp;
  best->model = NarModel(nar_opts);
  best->model.fit(series);
  return best;
}

}  // namespace acbm::nn
