#include "nn/mlp.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "core/robust.h"
#include "stats/descriptive.h"
#include "stats/serialize.h"

namespace acbm::nn {

namespace {
double tanh_activation(double x) { return std::tanh(x); }
double tanh_derivative_from_output(double y) { return 1.0 - y * y; }
}  // namespace

void Mlp::init_layers(std::size_t input_dim, acbm::stats::Rng& rng) {
  layers_.clear();
  std::size_t in = input_dim;
  std::vector<std::size_t> sizes = opts_.hidden_layers;
  sizes.push_back(1);  // Linear scalar output.
  for (std::size_t out : sizes) {
    if (out == 0) throw std::invalid_argument("Mlp: zero-width layer");
    Layer layer;
    layer.in = in;
    layer.out = out;
    layer.weights.resize(in * out);
    layer.biases.assign(out, 0.0);
    // Xavier/Glorot initialization keeps tanh units out of saturation.
    const double scale = std::sqrt(6.0 / static_cast<double>(in + out));
    for (double& w : layer.weights) w = rng.uniform(-scale, scale);
    layers_.push_back(std::move(layer));
    in = out;
  }
}

std::vector<double> Mlp::forward_normalized(
    std::span<const double> x_norm) const {
  std::vector<double> activation(x_norm.begin(), x_norm.end());
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    const Layer& layer = layers_[l];
    std::vector<double> next(layer.out);
    for (std::size_t o = 0; o < layer.out; ++o) {
      double z = layer.biases[o];
      for (std::size_t i = 0; i < layer.in; ++i) {
        z += layer.weights[o * layer.in + i] * activation[i];
      }
      // Hidden layers use tanh; the final layer is linear.
      next[o] = (l + 1 < layers_.size()) ? tanh_activation(z) : z;
    }
    activation = std::move(next);
  }
  return activation;
}

void Mlp::fit(const std::vector<std::vector<double>>& x,
              std::span<const double> y) {
  if (x.empty() || y.size() != x.size()) {
    throw std::invalid_argument("Mlp::fit: empty input or size mismatch");
  }
  input_dim_ = x.front().size();
  if (input_dim_ == 0) throw std::invalid_argument("Mlp::fit: zero-width rows");
  for (const auto& row : x) {
    if (row.size() != input_dim_) {
      throw std::invalid_argument("Mlp::fit: ragged rows");
    }
    for (double v : row) {
      if (!std::isfinite(v)) {
        throw core::FitFailure(core::FitError::kNonfiniteInput,
                               "Mlp::fit: non-finite feature");
      }
    }
  }
  for (double v : y) {
    if (!std::isfinite(v)) {
      throw core::FitFailure(core::FitError::kNonfiniteInput,
                             "Mlp::fit: non-finite target");
    }
  }

  // Normalize inputs per-feature and the target globally.
  input_scalers_.clear();
  for (std::size_t j = 0; j < input_dim_; ++j) {
    std::vector<double> col;
    col.reserve(x.size());
    for (const auto& row : x) col.push_back(row[j]);
    input_scalers_.push_back(acbm::stats::fit_zscore(col));
  }
  output_scaler_ = acbm::stats::fit_zscore(y);

  const std::size_t n = x.size();
  std::vector<std::vector<double>> xn(n, std::vector<double>(input_dim_));
  std::vector<double> yn(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < input_dim_; ++j) {
      xn[i][j] = input_scalers_[j].transform(x[i][j]);
    }
    yn[i] = output_scaler_.transform(y[i]);
  }

  acbm::stats::Rng rng(opts_.seed);
  init_layers(input_dim_, rng);
  fitted_ = true;  // forward/gradient helpers below require this.

  // Validation holdout (tail of a shuffled order) for early stopping.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  rng.shuffle(order);
  std::size_t n_val = static_cast<std::size_t>(
      static_cast<double>(n) * opts_.validation_fraction);
  if (n <= 8) n_val = 0;  // Tiny datasets: train on everything.
  const std::size_t n_train = n - n_val;

  // Adam state (also reused as momentum buffers for SGD).
  std::vector<double> m_state;
  std::vector<double> v_state;
  std::vector<double> params = parameters();
  m_state.assign(params.size(), 0.0);
  v_state.assign(params.size(), 0.0);
  std::size_t adam_t = 0;

  std::vector<double> best_params = params;
  double best_val = std::numeric_limits<double>::infinity();
  std::size_t since_best = 0;

  const auto validation_loss = [&]() {
    if (n_val == 0) return 0.0;
    double acc = 0.0;
    for (std::size_t k = n_train; k < n; ++k) {
      const std::size_t i = order[k];
      acc += sample_loss(xn[i], yn[i]);
    }
    return acc / static_cast<double>(n_val);
  };

  for (std::size_t epoch = 0; epoch < opts_.max_epochs; ++epoch) {
    // Shuffle the training prefix each epoch.
    for (std::size_t k = n_train; k > 1; --k) {
      const auto j = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(k) - 1));
      std::swap(order[k - 1], order[j]);
    }

    for (std::size_t batch_start = 0; batch_start < n_train;
         batch_start += opts_.batch_size) {
      const std::size_t batch_end =
          std::min(batch_start + opts_.batch_size, n_train);
      std::vector<double> grad(params.size(), 0.0);
      for (std::size_t k = batch_start; k < batch_end; ++k) {
        const std::size_t i = order[k];
        const std::vector<double> g = loss_gradient(xn[i], yn[i]);
        for (std::size_t p = 0; p < grad.size(); ++p) grad[p] += g[p];
      }
      const double inv = 1.0 / static_cast<double>(batch_end - batch_start);
      for (std::size_t p = 0; p < grad.size(); ++p) {
        grad[p] = grad[p] * inv + opts_.weight_decay * params[p];
      }

      if (opts_.optimizer == Optimizer::kAdam) {
        ++adam_t;
        constexpr double kBeta1 = 0.9;
        constexpr double kBeta2 = 0.999;
        constexpr double kEps = 1e-8;
        for (std::size_t p = 0; p < params.size(); ++p) {
          m_state[p] = kBeta1 * m_state[p] + (1.0 - kBeta1) * grad[p];
          v_state[p] = kBeta2 * v_state[p] + (1.0 - kBeta2) * grad[p] * grad[p];
          const double mh = m_state[p] / (1.0 - std::pow(kBeta1, static_cast<double>(adam_t)));
          const double vh = v_state[p] / (1.0 - std::pow(kBeta2, static_cast<double>(adam_t)));
          params[p] -= opts_.learning_rate * mh / (std::sqrt(vh) + kEps);
        }
      } else {
        for (std::size_t p = 0; p < params.size(); ++p) {
          m_state[p] = opts_.momentum * m_state[p] - opts_.learning_rate * grad[p];
          params[p] += m_state[p];
        }
      }
      set_parameters(params);
    }

    if (n_val > 0) {
      const double vl = validation_loss();
      if (vl < best_val - 1e-12) {
        best_val = vl;
        best_params = params;
        since_best = 0;
      } else if (++since_best >= opts_.patience) {
        break;
      }
    }
  }

  if (n_val > 0) {
    set_parameters(best_params);
    best_val_loss_ = best_val;
  } else {
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) acc += sample_loss(xn[i], yn[i]);
    best_val_loss_ = acc / static_cast<double>(n);
  }

  // Training can diverge (exploding gradients on pathological scaling);
  // refuse to hand back a network that predicts non-finite values.
  for (double p : parameters()) {
    if (!std::isfinite(p)) {
      fitted_ = false;
      throw core::FitFailure(core::FitError::kNonconvergence,
                             "Mlp::fit: training diverged (non-finite weights)");
    }
  }
  if (!std::isfinite(best_val_loss_)) {
    fitted_ = false;
    throw core::FitFailure(core::FitError::kNonconvergence,
                           "Mlp::fit: training diverged (non-finite loss)");
  }
}

double Mlp::predict(std::span<const double> features) const {
  if (!fitted_) throw std::logic_error("Mlp::predict: not fitted");
  if (features.size() != input_dim_) {
    throw std::invalid_argument("Mlp::predict: feature count mismatch");
  }
  std::vector<double> xn(input_dim_);
  for (std::size_t j = 0; j < input_dim_; ++j) {
    xn[j] = input_scalers_[j].transform(features[j]);
  }
  const std::vector<double> out = forward_normalized(xn);
  return output_scaler_.inverse(out.front());
}

double Mlp::sample_loss(std::span<const double> features_norm,
                        double target_norm) const {
  if (!fitted_) throw std::logic_error("Mlp::sample_loss: not fitted");
  const std::vector<double> out = forward_normalized(features_norm);
  const double d = out.front() - target_norm;
  return 0.5 * d * d;
}

std::vector<double> Mlp::loss_gradient(std::span<const double> features_norm,
                                       double target_norm) const {
  if (!fitted_) throw std::logic_error("Mlp::loss_gradient: not fitted");
  // Forward pass, keeping each layer's activations.
  std::vector<std::vector<double>> acts;
  acts.emplace_back(features_norm.begin(), features_norm.end());
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    const Layer& layer = layers_[l];
    std::vector<double> next(layer.out);
    for (std::size_t o = 0; o < layer.out; ++o) {
      double z = layer.biases[o];
      for (std::size_t i = 0; i < layer.in; ++i) {
        z += layer.weights[o * layer.in + i] * acts.back()[i];
      }
      next[o] = (l + 1 < layers_.size()) ? tanh_activation(z) : z;
    }
    acts.push_back(std::move(next));
  }

  // Backward pass: delta is dLoss/dz for the current layer.
  std::vector<double> grad;
  std::size_t total = 0;
  for (const Layer& layer : layers_) {
    total += layer.weights.size() + layer.biases.size();
  }
  grad.assign(total, 0.0);

  std::vector<double> delta{acts.back().front() - target_norm};
  // Walk layers from last to first, writing each layer's gradient block.
  std::size_t block_end = total;
  for (std::size_t li = layers_.size(); li-- > 0;) {
    const Layer& layer = layers_[li];
    const std::vector<double>& input = acts[li];
    const std::size_t block_start =
        block_end - layer.weights.size() - layer.biases.size();
    for (std::size_t o = 0; o < layer.out; ++o) {
      for (std::size_t i = 0; i < layer.in; ++i) {
        grad[block_start + o * layer.in + i] = delta[o] * input[i];
      }
      grad[block_start + layer.weights.size() + o] = delta[o];
    }
    if (li > 0) {
      std::vector<double> prev_delta(layer.in, 0.0);
      for (std::size_t i = 0; i < layer.in; ++i) {
        double acc = 0.0;
        for (std::size_t o = 0; o < layer.out; ++o) {
          acc += layer.weights[o * layer.in + i] * delta[o];
        }
        prev_delta[i] = acc * tanh_derivative_from_output(input[i]);
      }
      delta = std::move(prev_delta);
    }
    block_end = block_start;
  }
  return grad;
}

void Mlp::save(std::ostream& os) const {
  namespace io = acbm::stats::io;
  io::write_header(os, "mlp", 1);
  io::write_scalar(os, "fitted", fitted_ ? 1 : 0);
  io::write_scalar(os, "input_dim", input_dim_);
  io::write_scalar(os, "best_val_loss", best_val_loss_);
  std::vector<std::size_t> layer_sizes;
  for (const Layer& layer : layers_) layer_sizes.push_back(layer.out);
  io::write_vector<std::size_t>(os, "layer_sizes", layer_sizes);
  for (const Layer& layer : layers_) {
    io::write_vector<double>(os, "weights", layer.weights);
    io::write_vector<double>(os, "biases", layer.biases);
  }
  std::vector<double> scaler_values;
  for (const acbm::stats::ZScore& z : input_scalers_) {
    scaler_values.push_back(z.mean);
    scaler_values.push_back(z.sd);
  }
  io::write_vector<double>(os, "input_scalers", scaler_values);
  io::write_scalar(os, "output_mean", output_scaler_.mean);
  io::write_scalar(os, "output_sd", output_scaler_.sd);
}

Mlp Mlp::load(std::istream& is) {
  namespace io = acbm::stats::io;
  io::expect_header(is, "mlp", 1);
  Mlp net;
  net.fitted_ = io::read_scalar<int>(is, "fitted") != 0;
  net.input_dim_ = io::read_scalar<std::size_t>(is, "input_dim");
  net.best_val_loss_ = io::read_scalar<double>(is, "best_val_loss");
  const auto layer_sizes = io::read_vector<std::size_t>(is, "layer_sizes");
  std::size_t in = net.input_dim_;
  for (std::size_t out : layer_sizes) {
    Layer layer;
    layer.in = in;
    layer.out = out;
    layer.weights = io::read_vector<double>(is, "weights");
    layer.biases = io::read_vector<double>(is, "biases");
    if (layer.weights.size() != in * out || layer.biases.size() != out) {
      throw std::invalid_argument("Mlp::load: inconsistent layer shape");
    }
    net.layers_.push_back(std::move(layer));
    in = out;
  }
  const auto scaler_values = io::read_vector<double>(is, "input_scalers");
  if (scaler_values.size() != 2 * net.input_dim_) {
    throw std::invalid_argument("Mlp::load: inconsistent scaler count");
  }
  for (std::size_t i = 0; i < net.input_dim_; ++i) {
    net.input_scalers_.push_back(
        {scaler_values[2 * i], scaler_values[2 * i + 1]});
  }
  net.output_scaler_.mean = io::read_scalar<double>(is, "output_mean");
  net.output_scaler_.sd = io::read_scalar<double>(is, "output_sd");
  // Reconstruct the hidden-layer option list for consistency.
  net.opts_.hidden_layers.assign(layer_sizes.begin(),
                                 layer_sizes.end() - (layer_sizes.empty() ? 0 : 1));
  return net;
}

std::vector<double> Mlp::parameters() const {
  std::vector<double> out;
  for (const Layer& layer : layers_) {
    out.insert(out.end(), layer.weights.begin(), layer.weights.end());
    out.insert(out.end(), layer.biases.begin(), layer.biases.end());
  }
  return out;
}

void Mlp::set_parameters(std::span<const double> params) {
  std::size_t pos = 0;
  for (Layer& layer : layers_) {
    if (pos + layer.weights.size() + layer.biases.size() > params.size()) {
      throw std::invalid_argument("Mlp::set_parameters: wrong parameter count");
    }
    std::copy_n(params.begin() + static_cast<std::ptrdiff_t>(pos),
                layer.weights.size(), layer.weights.begin());
    pos += layer.weights.size();
    std::copy_n(params.begin() + static_cast<std::ptrdiff_t>(pos),
                layer.biases.size(), layer.biases.begin());
    pos += layer.biases.size();
  }
  if (pos != params.size()) {
    throw std::invalid_argument("Mlp::set_parameters: wrong parameter count");
  }
}

}  // namespace acbm::nn
