#include "nn/mlp.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "core/robust.h"
#include "stats/descriptive.h"
#include "stats/kernels.h"
#include "stats/serialize.h"

namespace acbm::nn {

namespace {
double tanh_derivative_from_output(double y) { return 1.0 - y * y; }
}  // namespace

MlpTrainingSet MlpTrainingSet::build(const std::vector<std::vector<double>>& x,
                                     std::span<const double> y) {
  if (x.empty() || y.size() != x.size()) {
    throw std::invalid_argument("Mlp::fit: empty input or size mismatch");
  }
  MlpTrainingSet out;
  out.rows = x.size();
  out.cols = x.front().size();
  if (out.cols == 0) throw std::invalid_argument("Mlp::fit: zero-width rows");
  for (const auto& row : x) {
    if (row.size() != out.cols) {
      throw std::invalid_argument("Mlp::fit: ragged rows");
    }
    for (double v : row) {
      if (!std::isfinite(v)) {
        throw core::FitFailure(core::FitError::kNonfiniteInput,
                               "Mlp::fit: non-finite feature");
      }
    }
  }
  for (double v : y) {
    if (!std::isfinite(v)) {
      throw core::FitFailure(core::FitError::kNonfiniteInput,
                             "Mlp::fit: non-finite target");
    }
  }

  // Fit the per-column scalers exactly as Mlp::fit(x, y) historically did:
  // gather each column and z-score it.
  std::vector<double> col(out.rows);
  for (std::size_t j = 0; j < out.cols; ++j) {
    for (std::size_t i = 0; i < out.rows; ++i) col[i] = x[i][j];
    out.input_scalers.push_back(acbm::stats::fit_zscore(col));
  }
  out.output_scaler = acbm::stats::fit_zscore(y);

  out.x_norm.resize(out.rows * out.cols);
  out.y_norm.resize(out.rows);
  for (std::size_t i = 0; i < out.rows; ++i) {
    double* dst = out.x_norm.data() + i * out.cols;
    for (std::size_t j = 0; j < out.cols; ++j) {
      dst[j] = out.input_scalers[j].transform(x[i][j]);
    }
    out.y_norm[i] = out.output_scaler.transform(y[i]);
  }
  return out;
}

MlpTrainingSet MlpTrainingSet::build_lagged(std::span<const double> series,
                                            std::size_t delays,
                                            std::size_t length) {
  if (delays == 0 || length > series.size()) {
    throw std::invalid_argument("MlpTrainingSet::build_lagged: bad shape");
  }
  if (length < delays + 2) {
    throw core::FitFailure(core::FitError::kSeriesTooShort,
                           "NarModel::fit: series too short for delays");
  }
  MlpTrainingSet out;
  out.rows = length - delays;
  out.cols = delays;

  // Same validation order (and messages) as the nested-vector path: rows
  // first, feature by feature, then targets.
  for (std::size_t t = delays; t < length; ++t) {
    for (std::size_t j = 0; j < delays; ++j) {
      if (!std::isfinite(series[t - 1 - j])) {
        throw core::FitFailure(core::FitError::kNonfiniteInput,
                               "Mlp::fit: non-finite feature");
      }
    }
  }
  for (std::size_t t = delays; t < length; ++t) {
    if (!std::isfinite(series[t])) {
      throw core::FitFailure(core::FitError::kNonfiniteInput,
                             "Mlp::fit: non-finite target");
    }
  }

  // Column j of the lag embedding is series[t - 1 - j] for t in
  // [delays, length) — the values NarModel::window() would place there.
  std::vector<double> col(out.rows);
  for (std::size_t j = 0; j < delays; ++j) {
    for (std::size_t r = 0; r < out.rows; ++r) {
      col[r] = series[delays + r - 1 - j];
    }
    out.input_scalers.push_back(acbm::stats::fit_zscore(col));
  }
  out.output_scaler =
      acbm::stats::fit_zscore(series.subspan(delays, out.rows));

  out.x_norm.resize(out.rows * out.cols);
  out.y_norm.resize(out.rows);
  for (std::size_t r = 0; r < out.rows; ++r) {
    const std::size_t t = delays + r;
    double* dst = out.x_norm.data() + r * out.cols;
    for (std::size_t j = 0; j < delays; ++j) {
      dst[j] = out.input_scalers[j].transform(series[t - 1 - j]);
    }
    out.y_norm[r] = out.output_scaler.transform(series[t]);
  }
  return out;
}

void Mlp::init_layers(std::size_t input_dim, acbm::stats::Rng& rng) {
  layers_.clear();
  std::size_t in = input_dim;
  std::vector<std::size_t> sizes = opts_.hidden_layers;
  sizes.push_back(1);  // Linear scalar output.
  for (std::size_t out : sizes) {
    if (out == 0) throw std::invalid_argument("Mlp: zero-width layer");
    Layer layer;
    layer.in = in;
    layer.out = out;
    layer.weights.resize(in * out);
    layer.biases.assign(out, 0.0);
    // Xavier/Glorot initialization keeps tanh units out of saturation.
    const double scale = std::sqrt(6.0 / static_cast<double>(in + out));
    for (double& w : layer.weights) w = rng.uniform(-scale, scale);
    layers_.push_back(std::move(layer));
    in = out;
  }
}

void Mlp::prepare_workspace(Workspace& ws) const {
  // Cheap shape-key check keeps this near-free on the predict hot path;
  // only a topology change (different grid candidate reusing the
  // thread-local workspace) rewinds the arena and recarves the spans.
  const std::size_t n_layers = layers_.size();
  bool same = ws.shape.size() == n_layers + 1 && ws.shape[0] == input_dim_;
  for (std::size_t l = 0; same && l < n_layers; ++l) {
    same = ws.shape[l + 1] == layers_[l].out;
  }
  if (same) return;

  ws.shape.assign(1, input_dim_);
  for (const Layer& layer : layers_) ws.shape.push_back(layer.out);
  ws.arena.reset();
  ws.acts.assign(n_layers + 1, {});
  ws.acts[0] = ws.arena.alloc_span<double>(input_dim_);
  std::size_t total = 0;
  std::size_t max_width = input_dim_;
  for (std::size_t l = 0; l < n_layers; ++l) {
    ws.acts[l + 1] = ws.arena.alloc_span<double>(layers_[l].out);
    total += layers_[l].weights.size() + layers_[l].biases.size();
    max_width = std::max(max_width, layers_[l].out);
  }
  ws.sample_grad = ws.arena.alloc_span<double>(total);
  ws.batch_grad = ws.arena.alloc_span<double>(total);
  ws.delta = ws.arena.alloc_span<double>(max_width);
  ws.prev_delta = ws.arena.alloc_span<double>(max_width);
  ws.xn = ws.arena.alloc_span<double>(input_dim_);
  ws.params = ws.arena.alloc_span<double>(total);
  ws.best_params = ws.arena.alloc_span<double>(total);
  ws.m_state = ws.arena.alloc_span<double>(total);
  ws.v_state = ws.arena.alloc_span<double>(total);
}

double Mlp::forward_into(Workspace& ws, std::span<const double> x_norm) const {
  // acts[0] keeps the input so the backward pass can read it.
  std::copy(x_norm.begin(), x_norm.end(), ws.acts[0].begin());
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    const Layer& layer = layers_[l];
    std::span<const double> in{ws.acts[l].data(), layer.in};
    std::span<double> out{ws.acts[l + 1].data(), layer.out};
    // Hidden layers use tanh; the final layer is linear. The fused kernels
    // accumulate bias-first in sequential order, matching the reference
    // per-neuron loop bit for bit.
    if (l + 1 < layers_.size()) {
      acbm::stats::gemv_tanh(layer.weights, layer.biases, in, out);
    } else {
      acbm::stats::gemv(layer.weights, layer.biases, in, out);
    }
  }
  return ws.acts.back().front();
}

void Mlp::gradient_into(Workspace& ws, std::span<const double> x_norm,
                        double target_norm) const {
  const double output = forward_into(ws, x_norm);

  // Backward pass: delta is dLoss/dz for the current layer. Every element
  // of sample_grad is overwritten below, so no zero-fill is needed.
  ws.delta[0] = output - target_norm;
  std::size_t block_end = ws.sample_grad.size();
  for (std::size_t li = layers_.size(); li-- > 0;) {
    const Layer& layer = layers_[li];
    const std::span<const double> input = ws.acts[li];
    const std::size_t block_start =
        block_end - layer.weights.size() - layer.biases.size();
    double* grad = ws.sample_grad.data();
    for (std::size_t o = 0; o < layer.out; ++o) {
      const double d = ws.delta[o];
      double* grad_row = grad + block_start + o * layer.in;
      for (std::size_t i = 0; i < layer.in; ++i) {
        grad_row[i] = d * input[i];
      }
      grad[block_start + layer.weights.size() + o] = d;
    }
    if (li > 0) {
      for (std::size_t i = 0; i < layer.in; ++i) {
        double acc = 0.0;
        for (std::size_t o = 0; o < layer.out; ++o) {
          acc += layer.weights[o * layer.in + i] * ws.delta[o];
        }
        ws.prev_delta[i] = acc * tanh_derivative_from_output(input[i]);
      }
      std::swap(ws.delta, ws.prev_delta);
    }
    block_end = block_start;
  }
}

void Mlp::fit(const std::vector<std::vector<double>>& x,
              std::span<const double> y) {
  fit(MlpTrainingSet::build(x, y));
}

void Mlp::fit(const MlpTrainingSet& data) {
  input_dim_ = data.cols;
  input_scalers_ = data.input_scalers;
  output_scaler_ = data.output_scaler;
  const std::size_t n = data.rows;

  acbm::stats::Rng rng(opts_.seed);
  init_layers(input_dim_, rng);
  fitted_ = true;  // forward/gradient helpers below require this.

  static thread_local Workspace tl_ws;
  Workspace& ws = tl_ws;
  prepare_workspace(ws);
  const std::size_t total = ws.sample_grad.size();

  // Validation holdout (tail of a shuffled order) for early stopping.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  rng.shuffle(order);
  std::size_t n_val = static_cast<std::size_t>(
      static_cast<double>(n) * opts_.validation_fraction);
  if (n <= 8) n_val = 0;  // Tiny datasets: train on everything.
  const std::size_t n_train = n - n_val;

  // Optimizer state and parameter mirrors live in the workspace so a
  // refit (grid search, retry rungs) reuses the same storage.
  const std::span<double> params = ws.params;
  {
    std::size_t pos = 0;
    for (const Layer& layer : layers_) {
      std::copy(layer.weights.begin(), layer.weights.end(),
                params.begin() + static_cast<std::ptrdiff_t>(pos));
      pos += layer.weights.size();
      std::copy(layer.biases.begin(), layer.biases.end(),
                params.begin() + static_cast<std::ptrdiff_t>(pos));
      pos += layer.biases.size();
    }
  }
  // Adam state (also reused as momentum buffers for SGD).
  std::fill(ws.m_state.begin(), ws.m_state.end(), 0.0);
  std::fill(ws.v_state.begin(), ws.v_state.end(), 0.0);
  std::size_t adam_t = 0;

  std::copy(params.begin(), params.end(), ws.best_params.begin());
  double best_val = std::numeric_limits<double>::infinity();
  std::size_t since_best = 0;

  const auto validation_loss = [&]() {
    if (n_val == 0) return 0.0;
    double acc = 0.0;
    for (std::size_t k = n_train; k < n; ++k) {
      const std::size_t i = order[k];
      const double d = forward_into(ws, data.row(i)) - data.y_norm[i];
      acc += 0.5 * d * d;
    }
    return acc / static_cast<double>(n_val);
  };

  for (std::size_t epoch = 0; epoch < opts_.max_epochs; ++epoch) {
    // Shuffle the training prefix each epoch.
    for (std::size_t k = n_train; k > 1; --k) {
      const auto j = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(k) - 1));
      std::swap(order[k - 1], order[j]);
    }

    for (std::size_t batch_start = 0; batch_start < n_train;
         batch_start += opts_.batch_size) {
      const std::size_t batch_end =
          std::min(batch_start + opts_.batch_size, n_train);
      std::fill(ws.batch_grad.begin(), ws.batch_grad.end(), 0.0);
      for (std::size_t k = batch_start; k < batch_end; ++k) {
        const std::size_t i = order[k];
        gradient_into(ws, data.row(i), data.y_norm[i]);
        for (std::size_t p = 0; p < total; ++p) {
          ws.batch_grad[p] += ws.sample_grad[p];
        }
      }
      const double inv = 1.0 / static_cast<double>(batch_end - batch_start);
      for (std::size_t p = 0; p < total; ++p) {
        ws.batch_grad[p] = ws.batch_grad[p] * inv + opts_.weight_decay * params[p];
      }

      if (opts_.optimizer == Optimizer::kAdam) {
        ++adam_t;
        constexpr double kBeta1 = 0.9;
        constexpr double kBeta2 = 0.999;
        constexpr double kEps = 1e-8;
        for (std::size_t p = 0; p < total; ++p) {
          const double g = ws.batch_grad[p];
          ws.m_state[p] = kBeta1 * ws.m_state[p] + (1.0 - kBeta1) * g;
          ws.v_state[p] = kBeta2 * ws.v_state[p] + (1.0 - kBeta2) * g * g;
          const double mh = ws.m_state[p] / (1.0 - std::pow(kBeta1, static_cast<double>(adam_t)));
          const double vh = ws.v_state[p] / (1.0 - std::pow(kBeta2, static_cast<double>(adam_t)));
          params[p] -= opts_.learning_rate * mh / (std::sqrt(vh) + kEps);
        }
      } else {
        for (std::size_t p = 0; p < total; ++p) {
          ws.m_state[p] = opts_.momentum * ws.m_state[p] -
                          opts_.learning_rate * ws.batch_grad[p];
          params[p] += ws.m_state[p];
        }
      }
      set_parameters(params);
    }

    if (n_val > 0) {
      const double vl = validation_loss();
      if (vl < best_val - 1e-12) {
        best_val = vl;
        std::copy(params.begin(), params.end(), ws.best_params.begin());
        since_best = 0;
      } else if (++since_best >= opts_.patience) {
        break;
      }
    }
  }

  if (n_val > 0) {
    set_parameters(ws.best_params);
    best_val_loss_ = best_val;
  } else {
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double d = forward_into(ws, data.row(i)) - data.y_norm[i];
      acc += 0.5 * d * d;
    }
    best_val_loss_ = acc / static_cast<double>(n);
  }

  // Training can diverge (exploding gradients on pathological scaling);
  // refuse to hand back a network that predicts non-finite values.
  for (const Layer& layer : layers_) {
    for (double p : layer.weights) {
      if (std::isfinite(p)) continue;
      fitted_ = false;
      throw core::FitFailure(core::FitError::kNonconvergence,
                             "Mlp::fit: training diverged (non-finite weights)");
    }
    for (double p : layer.biases) {
      if (std::isfinite(p)) continue;
      fitted_ = false;
      throw core::FitFailure(core::FitError::kNonconvergence,
                             "Mlp::fit: training diverged (non-finite weights)");
    }
  }
  if (!std::isfinite(best_val_loss_)) {
    fitted_ = false;
    throw core::FitFailure(core::FitError::kNonconvergence,
                           "Mlp::fit: training diverged (non-finite loss)");
  }
}

double Mlp::predict(std::span<const double> features) const {
  static thread_local Workspace tl_ws;
  return predict(tl_ws, features);
}

double Mlp::predict(Workspace& ws, std::span<const double> features) const {
  if (!fitted_) throw std::logic_error("Mlp::predict: not fitted");
  if (features.size() != input_dim_) {
    throw std::invalid_argument("Mlp::predict: feature count mismatch");
  }
  prepare_workspace(ws);
  for (std::size_t j = 0; j < input_dim_; ++j) {
    ws.xn[j] = input_scalers_[j].transform(features[j]);
  }
  return output_scaler_.inverse(forward_into(ws, ws.xn));
}

double Mlp::sample_loss(std::span<const double> features_norm,
                        double target_norm) const {
  if (!fitted_) throw std::logic_error("Mlp::sample_loss: not fitted");
  static thread_local Workspace tl_ws;
  prepare_workspace(tl_ws);
  const double d = forward_into(tl_ws, features_norm) - target_norm;
  return 0.5 * d * d;
}

std::vector<double> Mlp::loss_gradient(std::span<const double> features_norm,
                                       double target_norm) const {
  if (!fitted_) throw std::logic_error("Mlp::loss_gradient: not fitted");
  static thread_local Workspace tl_ws;
  prepare_workspace(tl_ws);
  gradient_into(tl_ws, features_norm, target_norm);
  return {tl_ws.sample_grad.begin(), tl_ws.sample_grad.end()};
}

void Mlp::save(std::ostream& os) const {
  namespace io = acbm::stats::io;
  io::write_header(os, "mlp", 1);
  io::write_scalar(os, "fitted", fitted_ ? 1 : 0);
  io::write_scalar(os, "input_dim", input_dim_);
  io::write_scalar(os, "best_val_loss", best_val_loss_);
  std::vector<std::size_t> layer_sizes;
  for (const Layer& layer : layers_) layer_sizes.push_back(layer.out);
  io::write_vector<std::size_t>(os, "layer_sizes", layer_sizes);
  for (const Layer& layer : layers_) {
    io::write_vector<double>(os, "weights", layer.weights);
    io::write_vector<double>(os, "biases", layer.biases);
  }
  std::vector<double> scaler_values;
  for (const acbm::stats::ZScore& z : input_scalers_) {
    scaler_values.push_back(z.mean);
    scaler_values.push_back(z.sd);
  }
  io::write_vector<double>(os, "input_scalers", scaler_values);
  io::write_scalar(os, "output_mean", output_scaler_.mean);
  io::write_scalar(os, "output_sd", output_scaler_.sd);
}

Mlp Mlp::load(std::istream& is) {
  namespace io = acbm::stats::io;
  io::expect_header(is, "mlp", 1);
  Mlp net;
  net.fitted_ = io::read_scalar<int>(is, "fitted") != 0;
  net.input_dim_ = io::read_scalar<std::size_t>(is, "input_dim");
  net.best_val_loss_ = io::read_scalar<double>(is, "best_val_loss");
  const auto layer_sizes = io::read_vector<std::size_t>(is, "layer_sizes");
  std::size_t in = net.input_dim_;
  for (std::size_t out : layer_sizes) {
    Layer layer;
    layer.in = in;
    layer.out = out;
    layer.weights = io::read_vector<double>(is, "weights");
    layer.biases = io::read_vector<double>(is, "biases");
    if (layer.weights.size() != in * out || layer.biases.size() != out) {
      throw std::invalid_argument("Mlp::load: inconsistent layer shape");
    }
    net.layers_.push_back(std::move(layer));
    in = out;
  }
  const auto scaler_values = io::read_vector<double>(is, "input_scalers");
  if (scaler_values.size() != 2 * net.input_dim_) {
    throw std::invalid_argument("Mlp::load: inconsistent scaler count");
  }
  for (std::size_t i = 0; i < net.input_dim_; ++i) {
    net.input_scalers_.push_back(
        {scaler_values[2 * i], scaler_values[2 * i + 1]});
  }
  net.output_scaler_.mean = io::read_scalar<double>(is, "output_mean");
  net.output_scaler_.sd = io::read_scalar<double>(is, "output_sd");
  // Reconstruct the hidden-layer option list for consistency.
  net.opts_.hidden_layers.assign(layer_sizes.begin(),
                                 layer_sizes.end() - (layer_sizes.empty() ? 0 : 1));
  return net;
}

std::vector<MlpLayerView> Mlp::layer_views() const {
  std::vector<MlpLayerView> out;
  out.reserve(layers_.size());
  for (const Layer& layer : layers_) {
    out.push_back({layer.weights, layer.biases, layer.in, layer.out});
  }
  return out;
}

std::vector<double> Mlp::parameters() const {
  std::vector<double> out;
  for (const Layer& layer : layers_) {
    out.insert(out.end(), layer.weights.begin(), layer.weights.end());
    out.insert(out.end(), layer.biases.begin(), layer.biases.end());
  }
  return out;
}

void Mlp::set_parameters(std::span<const double> params) {
  std::size_t pos = 0;
  for (Layer& layer : layers_) {
    if (pos + layer.weights.size() + layer.biases.size() > params.size()) {
      throw std::invalid_argument("Mlp::set_parameters: wrong parameter count");
    }
    std::copy_n(params.begin() + static_cast<std::ptrdiff_t>(pos),
                layer.weights.size(), layer.weights.begin());
    pos += layer.weights.size();
    std::copy_n(params.begin() + static_cast<std::ptrdiff_t>(pos),
                layer.biases.size(), layer.biases.begin());
    pos += layer.biases.size();
  }
  if (pos != params.size()) {
    throw std::invalid_argument("Mlp::set_parameters: wrong parameter count");
  }
}

}  // namespace acbm::nn
