// Command-line front end: generate traces, report statistics, fit the
// models, and predict upcoming attacks, all from the shell. The command
// logic lives in this library (streams in, streams out) so it is unit
// testable; src/cli/main.cpp is the thin binary wrapper.
//
//   acbm generate --seed 7 --days 70 --dataset trace.csv --ipmap ipmap.txt
//   acbm stats    --dataset trace.csv
//   acbm predict  --dataset trace.csv --ipmap ipmap.txt [--target ASN]
//   acbm evaluate --dataset trace.csv --ipmap ipmap.txt
#pragma once

#include <iosfwd>
#include <span>
#include <string>
#include <vector>

namespace acbm::cli {

/// Runs one CLI invocation. `args` excludes the program name. Returns the
/// process exit code (0 success, 1 user error, 2 internal error). All
/// human output goes to `out`, diagnostics to `err`.
int run(std::span<const std::string> args, std::ostream& out,
        std::ostream& err);

/// Convenience overload for argv-style input.
int run(int argc, const char* const* argv, std::ostream& out,
        std::ostream& err);

}  // namespace acbm::cli
