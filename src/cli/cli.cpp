#include "cli/cli.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <optional>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/checkpoint.h"
#include "core/durable.h"
#include "core/evaluation.h"
#include "core/inference.h"
#include "core/ingest.h"
#include "core/observe.h"
#include "core/pipeline.h"
#include "core/robust.h"
#include "core/server.h"
#include "core/serving.h"
#include "core/shard.h"
#include "stats/kernels.h"
#include "trace/generator.h"
#include "trace/scenario.h"
#include "trace/world.h"

namespace acbm::cli {

namespace {

namespace durable = acbm::core::durable;
namespace observe = acbm::core::observe;

/// Minimal --key value parser; flags must all be known. Options named in
/// `flags` are boolean switches and take no value.
class ArgMap {
 public:
  ArgMap(std::span<const std::string> args, std::size_t first,
         std::initializer_list<const char*> flags = {}) {
    for (std::size_t i = first; i < args.size(); ++i) {
      if (args[i].rfind("--", 0) != 0) {
        throw std::invalid_argument("expected --option, got '" + args[i] + "'");
      }
      const std::string key = args[i].substr(2);
      const bool is_flag =
          std::find_if(flags.begin(), flags.end(), [&](const char* f) {
            return key == f;
          }) != flags.end();
      if (is_flag) {
        values_.insert_or_assign(key, std::string("1"));
        continue;
      }
      if (i + 1 >= args.size()) {
        throw std::invalid_argument("option --" + key + " needs a value");
      }
      values_[key] = args[++i];
      ordered_.emplace_back(key, args[i]);
    }
  }

  /// Every value given for a repeatable option, in CLI order
  /// (serve --model a=x --model b=y; query --target 1 --target 2).
  [[nodiscard]] std::vector<std::string> get_all(const std::string& key) const {
    std::vector<std::string> out;
    for (const auto& [k, v] : ordered_) {
      if (k == key) out.push_back(v);
    }
    return out;
  }

  [[nodiscard]] std::optional<std::string> get(const std::string& key) const {
    const auto it = values_.find(key);
    return it == values_.end() ? std::nullopt
                               : std::optional<std::string>(it->second);
  }

  [[nodiscard]] bool has(const std::string& key) const {
    return values_.count(key) != 0;
  }

  [[nodiscard]] std::string require(const std::string& key) const {
    const auto value = get(key);
    if (!value) throw std::invalid_argument("missing required --" + key);
    return *value;
  }

  template <typename T>
  [[nodiscard]] T get_or(const std::string& key, T fallback) const {
    const auto value = get(key);
    if (!value) return fallback;
    if constexpr (std::is_same_v<T, double>) {
      return std::stod(*value);
    } else {
      return static_cast<T>(std::stoull(*value));
    }
  }

  void reject_unknown(std::initializer_list<const char*> known) const {
    for (const auto& [key, value] : values_) {
      if (std::find_if(known.begin(), known.end(), [&](const char* k) {
            return key == k;
          }) == known.end()) {
        throw std::invalid_argument("unknown option --" + key);
      }
    }
  }

 private:
  std::unordered_map<std::string, std::string> values_;
  std::vector<std::pair<std::string, std::string>> ordered_;
};

void print_usage(std::ostream& out) {
  out << "acbm — adversary-centric DDoS behavior modeling (ICDCS'17 repro)\n"
         "\n"
         "usage: acbm <command> [options]\n"
         "\n"
         "commands:\n"
         "  generate   build a simulated world and write the trace\n"
         "             --seed N (1) --days N (70) --scale X (1.0)\n"
         "             --dataset FILE --ipmap FILE\n"
         "             [--scenario NAME (paper-table1)]\n"
         "             [--scenario-param k=v]... (repeatable)\n"
         "             --list-scenarios  print the scenario catalog\n"
         "             (SCENARIOS.md documents each scenario's model)\n"
         "  stats      per-family activity report (Table I format)\n"
         "             --dataset FILE\n"
         "  fit        fit the full model and save it for later prediction\n"
         "             --dataset FILE --ipmap FILE --model FILE\n"
         "             [--fit-report FILE|-] [--checkpoint-dir DIR] [--resume]\n"
         "             [--degraded-floor N]\n"
         "             [--workers N] sharded multi-process fit (requires\n"
         "             --checkpoint-dir; byte-identical to --workers 0)\n"
         "             [--worker-timeout MS] [--lease-ttl-ms MS]\n"
         "  worker     fit shards of a sharded run (spawned by fit --workers;\n"
         "             runnable by hand against a shared --checkpoint-dir)\n"
         "             --dataset FILE --ipmap FILE --checkpoint-dir DIR\n"
         "             [--worker-id N] [--lease-ttl-ms MS] [--ship-metrics]\n"
         "  predict    predict the next attack per target (fits on the fly\n"
         "             from --dataset/--ipmap, or loads --model FILE)\n"
         "             [--dataset FILE --ipmap FILE | --model FILE]\n"
         "             [--target ASN] [--top K] [--fit-report FILE|-]\n"
         "             [--precision f64|f32]\n"
         "  ingest     streaming ingestion: hourly snapshots into a crash-\n"
         "             safe log, drift detection, incremental refit\n"
         "             --dir DIR --init --dataset FILE --ipmap FILE\n"
         "             --dir DIR --snapshot FILE --hour H [--no-refit]\n"
         "             --dir DIR --refit | --status | --export-dataset FILE\n"
         "             [--drift-z Z (3.0)] [--drift-hours K (3)]\n"
         "             [--ema-alpha A (0.2)] [--refit-retries N (3)]\n"
         "             [--refit-backoff-ms MS (5)]\n"
         "  pack       convert a framed model.art into a zero-copy mmap\n"
         "             .armm serving artifact (O(µs) startup; DESIGN.md §8)\n"
         "             --model FILE --out FILE\n"
         "  serve      batched concurrent forecast daemon over .armm/.art\n"
         "             models; hot-swaps generations on artifact rotation\n"
         "             --model NAME=FILE (repeatable) [--socket PATH]\n"
         "             [--port N|-1] [--threads N (4)] [--max-resident N (8)]\n"
         "             [--no-batching] [--max-batch N (64)]\n"
         "             [--watch-interval MS (200)] [--io-timeout MS (5000)]\n"
         "             [--idle-timeout MS (0)] [--preload]\n"
         "  query      ask a running daemon for next-attack forecasts\n"
         "             --model NAME --target ASN (repeatable)\n"
         "             (--socket PATH | --port N) [--precision f64|f32]\n"
         "             [--count N --seed S] seeded deterministic query mix\n"
         "  evaluate   timestamp-prediction RMSE report (Fig. 4 format)\n"
         "             --dataset FILE --ipmap FILE [--train-fraction F]\n"
         "             [--horizons F1,F2,...] [--out FILE]\n"
         "             [--checkpoint-dir DIR] [--resume]\n"
         "             [--precision f64|f32]\n"
         "             --scenario NAME: self-contained per-scenario\n"
         "             predictability table (three models vs naive\n"
         "             baselines; generates the preset world in memory,\n"
         "             no --dataset/--ipmap) [--scenario-param k=v]...\n"
         "             [--seed N] [--train-fraction F] [--out FILE]\n"
         "  help       this message\n"
         "\n"
         "performance (any command; see DESIGN.md §6):\n"
         "  --precision f32  serve predictions from a float32 inference view\n"
         "                   (predict/evaluate; f64 models stay the default)\n"
         "  --fast-math      allow reordered/FMA SIMD reductions\n"
         "                   (env ACBM_FAST_MATH=1; off = bit-identical)\n"
         "\n"
         "observability (any command; see OBSERVABILITY.md):\n"
         "  --trace FILE     write a Chrome trace_event JSON of the run\n"
         "                   (chrome://tracing / Perfetto; env ACBM_TRACE)\n"
         "  --metrics FILE|- write a Prometheus-style metrics dump\n"
         "                   (- = stdout; env ACBM_METRICS)\n"
         "  --profile        print the merged span tree to stderr\n"
         "                   (env ACBM_PROFILE=1)\n"
         "\n"
         "exit codes: 0 ok, 1 internal error, 2 bad arguments,\n"
         "            3 load/corruption/write failure, 4 fit degraded beyond\n"
         "            --degraded-floor, 5 worker coordination timed out\n"
         "            (--worker-timeout elapsed; workers were killed),\n"
         "            6 ingest refit retries exhausted (the previous model\n"
         "            generation is still live and serving)\n";
}

/// Whole-file read with a command-oriented error message (exit code 3).
std::string read_input(const std::string& path, const char* what) {
  try {
    return durable::read_file(path);
  } catch (const durable::LoadFailure&) {
    throw durable::LoadFailure(
        durable::LoadError::kIo,
        std::string("cannot open ") + what + " file " + path);
  }
}

/// Framed ("dataset" v1) or legacy bare-CSV dataset bytes -> Dataset.
trace::Dataset parse_dataset(const std::string& bytes, const std::string& path,
                             std::ostream& info) {
  std::istringstream in(durable::looks_framed(bytes)
                            ? durable::unwrap(bytes, "dataset", 1, 1)
                            : bytes);
  trace::Dataset dataset;
  try {
    dataset = trace::Dataset::load_csv(in);
  } catch (const std::exception& e) {
    throw durable::LoadFailure(durable::LoadError::kParse,
                               "dataset " + path + ": " + e.what());
  }
  if (!dataset.validation().clean()) {
    info << "dataset " << path << " needed repair:\n";
    dataset.validation().write(info);
  }
  return dataset;
}

/// Framed ("ipmap" v1) or legacy bare ipmap bytes -> IpToAsnMap.
net::IpToAsnMap parse_ipmap(const std::string& bytes, const std::string& path) {
  std::istringstream in(durable::looks_framed(bytes)
                            ? durable::unwrap(bytes, "ipmap", 1, 1)
                            : bytes);
  try {
    return net::IpToAsnMap::load(in);
  } catch (const std::exception& e) {
    throw durable::LoadFailure(durable::LoadError::kParse,
                               "ipmap " + path + ": " + e.what());
  }
}

/// --fit-report destination: "-" writes to the command's output stream,
/// anything else is a durably written framed artifact.
void write_fit_report(const core::AdversaryModel& model,
                      const std::string& dest, std::ostream& out) {
  if (dest == "-") {
    model.fit_report().write(out);
    return;
  }
  std::ostringstream text;
  model.fit_report().write(text);
  durable::save_artifact(dest, "fit_report", 1, text.str());
}

/// Content hash keying a checkpointed run: the exact input bytes plus the
/// configuration that shapes the fit.
std::uint64_t run_config_hash(std::initializer_list<std::string_view> parts) {
  std::uint64_t hash = durable::fnv1a64("acbm-run");
  for (std::string_view part : parts) hash = durable::fnv1a64(part, hash);
  return hash;
}

/// Opens --checkpoint-dir/--resume when given; nullopt otherwise.
std::optional<core::CheckpointDir> open_checkpoint(const ArgMap& args,
                                                   std::uint64_t config_hash) {
  const auto dir = args.get("checkpoint-dir");
  if (!dir) {
    if (args.has("resume")) {
      throw std::invalid_argument("--resume requires --checkpoint-dir");
    }
    return std::nullopt;
  }
  core::CheckpointDir::Options opts;
  opts.config_hash = config_hash;
  opts.resume = args.has("resume");
  return std::make_optional<core::CheckpointDir>(*dir, opts);
}

int cmd_generate(const ArgMap& args, std::ostream& out, std::ostream&) {
  args.reject_unknown({"seed", "days", "scale", "dataset", "ipmap", "scenario",
                       "scenario-param", "list-scenarios"});
  if (args.has("list-scenarios")) {
    out << trace::list_scenarios_text();
    return 0;
  }
  trace::WorldOptions opts = trace::small_world_options(
      args.get_or<std::uint64_t>("seed", 1));
  const trace::Scenario& scenario = trace::apply_scenario(
      opts, args.get("scenario").value_or("paper-table1"));
  for (const std::string& spec : args.get_all("scenario-param")) {
    trace::apply_scenario_param(opts.generator, scenario, spec);
  }
  opts.generator.days = args.get_or<std::size_t>("days", 70);
  opts.generator.activity_scale = args.get_or<double>("scale", 1.0);
  const std::string dataset_path = args.require("dataset");
  const std::string ipmap_path = args.require("ipmap");

  const trace::World world = trace::build_world(opts);
  std::ostringstream dataset_text;
  world.dataset.save_csv(dataset_text);
  durable::save_artifact(dataset_path, "dataset", 1, dataset_text.str());
  std::ostringstream ipmap_text;
  world.ip_map.save(ipmap_text);
  durable::save_artifact(ipmap_path, "ipmap", 1, ipmap_text.str());

  out << "generated " << world.dataset.size() << " attacks over "
      << opts.generator.days << " days (" << world.topology.graph.as_count()
      << " ASes)\n";
  if (std::string_view(scenario.name) != "paper-table1") {
    out << "scenario: " << scenario.name << " (" << scenario.summary << ")\n";
  }
  out << "dataset: " << dataset_path << "\nipmap:   " << ipmap_path << "\n";
  return 0;
}

int cmd_stats(const ArgMap& args, std::ostream& out, std::ostream&) {
  args.reject_unknown({"dataset"});
  const std::string dataset_path = args.require("dataset");
  const trace::Dataset dataset =
      parse_dataset(read_input(dataset_path, "dataset"), dataset_path, out);
  out << dataset.size() << " attacks, " << dataset.family_names().size()
      << " families, " << dataset.target_asns().size() << " target ASes\n\n";
  std::ostringstream header;
  header << "family        avg/day  active-days     CV\n";
  out << header.str();
  for (std::uint32_t f = 0;
       f < static_cast<std::uint32_t>(dataset.family_names().size()); ++f) {
    const trace::FamilyActivityStats stats = trace::activity_stats(dataset, f);
    char line[128];
    std::snprintf(line, sizeof line, "%-12s %8.2f %12zu %6.2f\n",
                  dataset.family_names()[f].c_str(), stats.avg_per_day,
                  stats.active_days, stats.cv);
    out << line;
  }
  return 0;
}

/// The executable to exec as `acbm worker`: ACBM_WORKER_BIN when set (test
/// harnesses point it at the built binary), else this very binary.
std::string worker_executable() {
  if (const char* env = std::getenv("ACBM_WORKER_BIN");
      env != nullptr && *env != '\0') {
    return env;
  }
  std::error_code ec;
  const std::filesystem::path self =
      std::filesystem::read_symlink("/proc/self/exe", ec);
  if (ec) {
    throw std::runtime_error(
        "cannot resolve the worker executable (/proc/self/exe unreadable; "
        "set ACBM_WORKER_BIN)");
  }
  return self.string();
}

int cmd_fit(const ArgMap& args, std::ostream& out, std::ostream& err) {
  args.reject_unknown({"dataset", "ipmap", "model", "fit-report",
                       "checkpoint-dir", "resume", "degraded-floor", "workers",
                       "worker-timeout", "lease-ttl-ms"});
  const std::string report_dest = args.get("fit-report").value_or("");
  // `--fit-report -` owns stdout: progress/info lines move to stderr so the
  // report is machine-readable without interleaving.
  std::ostream& info = report_dest == "-" ? err : out;

  const std::string dataset_path = args.require("dataset");
  const std::string ipmap_path = args.require("ipmap");
  const std::string model_path = args.require("model");
  const std::string dataset_bytes = read_input(dataset_path, "dataset");
  const std::string ipmap_bytes = read_input(ipmap_path, "ipmap");
  const trace::Dataset dataset =
      parse_dataset(dataset_bytes, dataset_path, info);
  const net::IpToAsnMap ip_map = parse_ipmap(ipmap_bytes, ipmap_path);

  core::SpatiotemporalOptions opts = core::default_cli_options();
  const std::uint64_t config_hash =
      run_config_hash({"fit", dataset_bytes, ipmap_bytes, "grid_search=0"});
  const int workers =
      static_cast<int>(args.get_or<std::size_t>("workers", 0));
  std::optional<core::CheckpointDir> checkpoint;
  if (workers > 0) {
    // Sharded multi-process fit: workers publish stages into the shared
    // checkpoint dir; the merge below runs the ordinary fit with every
    // stage cached, so the result is byte-identical to --workers 0 — even
    // when workers crashed and the merge refits what they never finished.
    const auto dir = args.get("checkpoint-dir");
    if (!dir) {
      throw std::invalid_argument("--workers requires --checkpoint-dir");
    }
    const int lease_ttl_ms =
        static_cast<int>(args.get_or<std::size_t>("lease-ttl-ms", 2000));
    core::ShardCoordinatorOptions copts;
    copts.checkpoint_dir = *dir;
    copts.config_hash = config_hash;
    copts.workers = workers;
    copts.worker_timeout_ms =
        static_cast<int>(args.get_or<std::size_t>("worker-timeout", 0));
    copts.lease_ttl_ms = lease_ttl_ms;
    copts.fresh = !args.has("resume");
    copts.aggregate_metrics = observe::enabled();
    copts.child_unset_env = {"ACBM_TRACE", "ACBM_METRICS", "ACBM_PROFILE"};
    const std::string exe = worker_executable();
    const std::string dir_str = *dir;
    const bool ship = observe::enabled();
    copts.worker_argv = [exe, dataset_path, ipmap_path, dir_str, lease_ttl_ms,
                         ship](int worker_id) {
      std::vector<std::string> argv = {
          exe,           "worker",
          "--dataset",   dataset_path,
          "--ipmap",     ipmap_path,
          "--checkpoint-dir", dir_str,
          "--worker-id", std::to_string(worker_id),
          "--lease-ttl-ms", std::to_string(lease_ttl_ms)};
      if (ship) argv.push_back("--ship-metrics");
      return argv;
    };
    core::ShardCoordinator coordinator(copts);
    const core::CoordinationOutcome outcome =
        coordinator.run(core::shard_stages(dataset));
    if (outcome == core::CoordinationOutcome::kTimeout) {
      err << "error: worker coordination timed out after "
          << copts.worker_timeout_ms << " ms; workers killed, no model "
          << "written (rerun with --resume to reuse completed stages)\n";
      return 5;
    }
    info << "workers: " << core::to_string(outcome) << "\n";
    core::CheckpointDir::Options ckpt_opts;
    ckpt_opts.config_hash = config_hash;
    ckpt_opts.shared = true;
    checkpoint.emplace(*dir, ckpt_opts);
  } else {
    checkpoint = open_checkpoint(args, config_hash);
  }
  if (checkpoint) opts.checkpoint = &*checkpoint;

  core::AdversaryModel model(opts);
  model.fit(dataset, ip_map);
  std::ostringstream body;
  model.save(body);
  durable::save_artifact(model_path, "adversary_model", 4, body.str());
  info << "fitted on " << dataset.size() << " attacks; model saved to "
       << model_path << "\n";
  if (checkpoint && !checkpoint->report().clean()) {
    err << "checkpoint recovery:\n";
    checkpoint->report().write(err);
  }
  if (!report_dest.empty()) write_fit_report(model, report_dest, out);
  if (const auto floor = args.get("degraded-floor")) {
    const std::size_t degraded = model.fit_report().degraded_count();
    const auto limit = static_cast<std::size_t>(std::stoull(*floor));
    if (degraded > limit) {
      err << "fit degraded on " << degraded << " components (floor " << limit
          << ")\n";
      return 4;
    }
  }
  return 0;
}

int cmd_worker(const ArgMap& args, std::ostream&, std::ostream& err) {
  args.reject_unknown({"dataset", "ipmap", "checkpoint-dir", "worker-id",
                       "lease-ttl-ms", "ship-metrics"});
  const std::string dataset_path = args.require("dataset");
  const std::string ipmap_path = args.require("ipmap");
  const std::string checkpoint_dir = args.require("checkpoint-dir");
  const std::string dataset_bytes = read_input(dataset_path, "dataset");
  const std::string ipmap_bytes = read_input(ipmap_path, "ipmap");
  const trace::Dataset dataset =
      parse_dataset(dataset_bytes, dataset_path, err);
  const net::IpToAsnMap ip_map = parse_ipmap(ipmap_bytes, ipmap_path);

  // --ship-metrics turns collection on so the end-of-run snapshot has
  // something to ship; the coordinator only passes it when its own
  // observability session is active.
  const bool ship = args.has("ship-metrics");
  if (ship && !observe::enabled()) {
    observe::Tracer::instance().reset();
    observe::Metrics::instance().reset();
    observe::set_enabled(true);
  }

  const core::SpatiotemporalOptions model_opts = core::default_cli_options();

  core::ShardWorkerOptions wopts;
  wopts.checkpoint_dir = checkpoint_dir;
  // Recomputed from the same bytes cmd_fit hashes, so a worker pointed at
  // the wrong dataset/ipmap refuses the shard plan instead of publishing
  // stages under a mismatched key.
  wopts.config_hash =
      run_config_hash({"fit", dataset_bytes, ipmap_bytes, "grid_search=0"});
  wopts.worker_id = static_cast<int>(args.get_or<std::size_t>("worker-id", 0));
  wopts.lease_ttl_ms =
      static_cast<int>(args.get_or<std::size_t>("lease-ttl-ms", 2000));
  wopts.ship_metrics = ship;
  core::ShardWorker worker(wopts);
  const int fitted = worker.run(dataset, ip_map, model_opts);
  // Stderr, not stdout: workers inherit the coordinator's streams and must
  // not interleave with its machine-readable output.
  err << "worker " << wopts.worker_id << ": fit " << fitted << " shards\n";
  if (ship) observe::set_enabled(false);
  return 0;
}

namespace ingest = acbm::core::ingest;

/// Renders one check-and-refit outcome; returns the command's exit code
/// (6 when retries were exhausted and the previous generation is serving).
int report_refit(const ingest::RefitResult& result, std::ostream& out,
                 std::ostream& err) {
  if (!result.attempted) {
    out << "drift: no family tripped; model unchanged\n";
    return 0;
  }
  for (const ingest::DriftTrip& trip : result.trips) {
    out << "drift trip: family " << trip.family << " channel " << trip.channel
        << " z=" << trip.z << " at hour " << trip.hour << "\n";
  }
  out << "refit: " << result.stages_invalidated << " stage(s) invalidated, "
      << result.retries << " retr" << (result.retries == 1 ? "y" : "ies")
      << "\n";
  if (result.fallback) {
    err << "error: refit retries exhausted (" << result.error
        << "); previous model generation is still live\n";
    return 6;
  }
  out << "refit: new model generation published\n";
  return 0;
}

int cmd_ingest(const ArgMap& args, std::ostream& out, std::ostream& err) {
  args.reject_unknown({"dir", "init", "dataset", "ipmap", "snapshot", "hour",
                       "no-refit", "refit", "status", "export-dataset",
                       "drift-z", "drift-hours", "ema-alpha", "refit-retries",
                       "refit-backoff-ms"});
  ingest::IngestorOptions opts;
  opts.dir = args.require("dir");
  opts.drift.z_threshold = args.get_or<double>("drift-z", 3.0);
  opts.drift.consecutive_hours =
      static_cast<int>(args.get_or<std::size_t>("drift-hours", 3));
  opts.drift.alpha = args.get_or<double>("ema-alpha", 0.2);
  opts.refit_max_retries =
      static_cast<int>(args.get_or<std::size_t>("refit-retries", 3));
  opts.refit_backoff_ms =
      static_cast<int>(args.get_or<std::size_t>("refit-backoff-ms", 5));
  opts.model = core::default_cli_options();

  ingest::Ingestor ingestor(opts);
  const ingest::LogRecovery& recovery = ingestor.log().recovery();
  if (recovery.torn_tail_bytes > 0) {
    err << "log recovery: truncated a torn tail of "
        << recovery.torn_tail_bytes << " byte(s)\n";
  }
  if (recovery.quarantined_ranges > 0) {
    err << "log recovery: quarantined " << recovery.quarantined_ranges
        << " corrupt range(s) to " << recovery.quarantine_path << "\n";
  }

  if (args.has("init")) {
    const std::string dataset_path = args.require("dataset");
    const std::string ipmap_path = args.require("ipmap");
    const trace::Dataset base =
        parse_dataset(read_input(dataset_path, "dataset"), dataset_path, out);
    const net::IpToAsnMap ip_map =
        parse_ipmap(read_input(ipmap_path, "ipmap"), ipmap_path);
    ingestor.init(base, ip_map);
    out << "initialized " << opts.dir.string() << ": " << base.size()
        << " attacks through hour " << ingestor.log().last_hour()
        << "; model published\n";
    return 0;
  }

  if (const auto snapshot_path = args.get("snapshot")) {
    const auto hour = args.get_or<std::size_t>(
        "hour", 0);
    if (!args.has("hour")) {
      throw std::invalid_argument("--snapshot requires --hour");
    }
    const std::string bytes = read_input(*snapshot_path, "snapshot");
    const std::string csv = durable::looks_framed(bytes)
                                ? durable::unwrap(bytes, "dataset", 1, 1)
                                : bytes;
    const ingest::AppendOutcome outcome = ingestor.append(hour, csv);
    out << "snapshot hour " << hour << ": " << ingest::to_string(outcome.status)
        << "\n";
    if (!outcome.validation.clean()) outcome.validation.write(out);
    if (outcome.status == ingest::AppendStatus::kRejected) {
      err << "error: snapshot rejected (" << outcome.detail
          << "); raw bytes quarantined to " << outcome.quarantined_to << "\n";
      return 3;
    }
    if (outcome.status == ingest::AppendStatus::kDuplicate) {
      out << "note: " << outcome.detail << "; nothing appended\n";
      return 0;
    }
    if (args.has("no-refit")) return 0;
    return report_refit(ingestor.check_and_refit(/*force=*/false), out, err);
  }

  if (args.has("refit")) {
    return report_refit(ingestor.check_and_refit(/*force=*/true), out, err);
  }

  if (const auto export_path = args.get("export-dataset")) {
    std::ostringstream csv;
    ingestor.log().cumulative().save_csv(csv);
    durable::save_artifact(*export_path, "dataset", 1, csv.str());
    out << "exported cumulative dataset ("
        << ingestor.log().segments().size() << " snapshot(s)) to "
        << *export_path << "\n";
    return 0;
  }

  if (args.has("status")) {
    out << "dir:            " << opts.dir.string() << "\n"
        << "initialized:    " << (ingestor.initialized() ? "yes" : "no") << "\n"
        << "snapshots:      " << ingestor.log().segments().size() << "\n"
        << "last hour:      " << ingestor.log().last_hour() << "\n"
        << "last refit:     hour " << ingestor.last_refit_hour() << "\n";
    return 0;
  }

  throw std::invalid_argument(
      "ingest needs one of --init / --snapshot / --refit / --status / "
      "--export-dataset");
}

constexpr const char* kPredictionHeader =
    "target      family        bots   duration      day  hour  top sources\n";

/// One prediction table row, shared by `predict` (in-process model) and
/// `query` (daemon round-trip) so their f64 output is byte-identical.
void print_prediction_row(std::ostream& table, net::Asn asn,
                          const core::AttackPrediction& pred,
                          std::string_view family_name) {
  std::vector<std::pair<net::Asn, double>> sources(
      pred.source_distribution.begin(), pred.source_distribution.end());
  std::sort(sources.begin(), sources.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  char line[256];
  std::snprintf(line, sizeof line, "AS%-8u  %-12s %5.0f %9.0fs %7.1f %5.1f  ",
                asn, std::string(family_name).c_str(), pred.magnitude,
                pred.duration_s, pred.day, pred.hour);
  table << line;
  for (std::size_t i = 0; i < sources.size() && i < 3; ++i) {
    if (sources[i].first == 0) continue;
    char src[48];
    std::snprintf(src, sizeof src, "AS%u(%.0f%%) ", sources[i].first,
                  100.0 * sources[i].second);
    table << src;
  }
  table << "\n";
}

int cmd_predict(const ArgMap& args, std::ostream& out, std::ostream& err) {
  args.reject_unknown({"dataset", "ipmap", "model", "target", "top",
                       "fit-report", "precision"});
  const core::Precision precision =
      core::parse_precision(args.get("precision").value_or("f64"));
  const std::string report_dest = args.get("fit-report").value_or("");
  std::ostream& info = report_dest == "-" ? err : out;
  core::AdversaryModel model;
  if (const auto model_path = args.get("model")) {
    std::ifstream model_in(*model_path);
    if (!model_in) {
      throw durable::LoadFailure(durable::LoadError::kIo,
                                 "cannot open model file " + *model_path);
    }
    model = core::AdversaryModel::load_framed(model_in);
  } else {
    const std::string dataset_path = args.require("dataset");
    const trace::Dataset fit_dataset = parse_dataset(
        read_input(dataset_path, "dataset"), dataset_path, info);
    const std::string ipmap_path = args.require("ipmap");
    const net::IpToAsnMap ip_map =
        parse_ipmap(read_input(ipmap_path, "ipmap"), ipmap_path);
    model = core::AdversaryModel(core::default_cli_options());
    model.fit(fit_dataset, ip_map);
  }
  if (!report_dest.empty()) write_fit_report(model, report_dest, out);
  const trace::Dataset& dataset = model.dataset();

  std::vector<net::Asn> targets;
  for (const std::string& target : args.get_all("target")) {
    targets.push_back(static_cast<net::Asn>(std::stoul(target)));
  }
  if (targets.empty()) {
    targets = dataset.target_asns();
    targets.resize(std::min<std::size_t>(targets.size(),
                                         args.get_or<std::size_t>("top", 5)));
  }

  std::optional<core::InferenceView> view;
  if (precision == core::Precision::kF32) view = model.make_inference_view();

  std::ostream& table = report_dest == "-" ? err : out;
  table << kPredictionHeader;
  for (net::Asn asn : targets) {
    const auto pred =
        model.predict_next_attack(asn, view ? &*view : nullptr);
    if (!pred) {
      table << "AS" << asn << "  (no history)\n";
      continue;
    }
    print_prediction_row(table, asn, *pred,
                         dataset.family_names()[pred->assumed_family]);
  }
  return 0;
}

// --- serving: pack / serve / query ------------------------------------------

int cmd_pack(const ArgMap& args, std::ostream& out, std::ostream&) {
  args.reject_unknown({"model", "out"});
  const std::string model_path = args.require("model");
  const std::string out_path = args.require("out");
  // load_any maps + validates the framed artifact in place (no payload
  // copy) before deserializing and re-packing; an .armm input round-trips.
  const core::ServingModel packed = core::ServingModel::load_any(model_path);
  durable::atomic_write_file(out_path, packed.image());
  out << "packed " << model_path << " -> " << out_path << " ("
      << packed.image().size() << " bytes, " << packed.targets().size()
      << " targets)\n";
  return 0;
}

std::atomic<bool> g_serve_stop{false};
void serve_signal_handler(int) { g_serve_stop.store(true); }

int cmd_serve(const ArgMap& args, std::ostream& out, std::ostream&) {
  args.reject_unknown({"socket", "port", "model", "threads", "max-resident",
                       "no-batching", "max-batch", "watch-interval",
                       "io-timeout", "idle-timeout", "preload"});
  core::serve::ServerOptions opts;
  if (const auto socket = args.get("socket")) opts.socket_path = *socket;
  opts.tcp_port = static_cast<int>(args.get_or<long>("port", 0));
  for (const std::string& spec : args.get_all("model")) {
    // "name=path", or a bare path whose stem names the model.
    const std::size_t eq = spec.find('=');
    if (eq != std::string::npos) {
      opts.models.emplace_back(spec.substr(0, eq), spec.substr(eq + 1));
    } else {
      opts.models.emplace_back(std::filesystem::path(spec).stem().string(),
                               spec);
    }
  }
  if (opts.models.empty()) {
    throw std::invalid_argument("serve needs at least one --model name=path");
  }
  opts.threads = args.get_or<std::size_t>("threads", 4);
  opts.max_resident = args.get_or<std::size_t>("max-resident", 8);
  opts.batching = !args.has("no-batching");
  opts.max_batch = args.get_or<std::size_t>("max-batch", 64);
  opts.watch_interval_ms = args.get_or<std::size_t>("watch-interval", 200);
  opts.io_timeout_ms = args.get_or<std::size_t>("io-timeout", 5000);
  opts.idle_timeout_ms = args.get_or<std::size_t>("idle-timeout", 0);
  opts.preload = args.has("preload");

  core::serve::Server server(std::move(opts));
  server.start();
  out << "LISTENING";
  if (!server.socket_path().empty()) {
    out << " unix=" << server.socket_path().string();
  }
  if (server.tcp_port() != 0) out << " tcp=" << server.tcp_port();
  out << "\n" << std::flush;

  g_serve_stop.store(false);
  std::signal(SIGINT, serve_signal_handler);
  std::signal(SIGTERM, serve_signal_handler);
  while (!g_serve_stop.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  server.stop();
  const core::serve::ServerStats stats = server.stats();
  out << "served " << stats.requests << " requests ("
      << stats.coalesced << " coalesced, " << stats.errors << " errors, "
      << stats.swaps << " hot swaps)\n";
  return 0;
}

int cmd_query(const ArgMap& args, std::ostream& out, std::ostream&) {
  args.reject_unknown(
      {"socket", "port", "model", "target", "count", "seed", "precision"});
  const core::Precision precision =
      core::parse_precision(args.get("precision").value_or("f64"));
  const std::string model = args.require("model");
  std::vector<net::Asn> targets;
  for (const std::string& t : args.get_all("target")) {
    targets.push_back(static_cast<net::Asn>(std::stoul(t)));
  }
  if (targets.empty()) {
    throw std::invalid_argument("query needs at least one --target ASN");
  }

  core::serve::Client client = [&] {
    if (const auto socket = args.get("socket")) {
      return core::serve::Client::connect_unix(*socket);
    }
    const auto port = args.get("port");
    if (!port) throw std::invalid_argument("query needs --socket or --port");
    return core::serve::Client::connect_tcp(
        static_cast<int>(std::stoul(*port)));
  }();

  // --count N replays a seeded deterministic query mix over the targets
  // (scripts/loadgen.sh); without it, each target is queried once.
  std::vector<net::Asn> mix;
  if (const auto count = args.get("count")) {
    std::uint64_t state = args.get_or<std::uint64_t>("seed", 1);
    const std::size_t n = std::stoull(*count);
    mix.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      state = state * 6364136223846793005ull + 1442695040888963407ull;
      mix.push_back(targets[(state >> 33) % targets.size()]);
    }
  } else {
    mix = targets;
  }

  out << kPredictionHeader;
  for (net::Asn asn : mix) {
    const auto [status, result] = client.predict(model, asn, precision);
    switch (status) {
      case core::serve::Status::kOk:
        print_prediction_row(out, asn, result->prediction,
                             result->family_name);
        break;
      case core::serve::Status::kNoPrediction:
        out << "AS" << asn << "  (no history)\n";
        break;
      case core::serve::Status::kUnknownModel:
        throw durable::LoadFailure(durable::LoadError::kIo,
                                   "server has no model '" + model + "'");
      case core::serve::Status::kBadRequest:
      case core::serve::Status::kTooLarge:
        throw std::invalid_argument(
            "server rejected the request: " +
            std::string(core::serve::status_name(status)));
      case core::serve::Status::kInternal:
        throw std::runtime_error("server error answering AS" +
                                 std::to_string(asn));
    }
  }
  return 0;
}

/// One horizon's evaluation rendered as stable text: printed, checkpointed,
/// and concatenated into --out verbatim, so a resumed run's output is
/// byte-identical to an uninterrupted one.
std::string render_evaluation(const std::string& label,
                              const core::TimestampEvaluation& eval) {
  if (eval.truth_hour.empty()) {
    return "h=" + label + ": not enough data to evaluate\n";
  }
  char buffer[320];
  std::snprintf(buffer, sizeof buffer,
                "h=%s: %zu test attacks\n"
                "hour RMSE: spatial %.2f  temporal %.2f  spatiotemporal %.2f\n"
                "date RMSE: spatial %.2f  temporal %.2f  spatiotemporal %.2f\n",
                label.c_str(), eval.truth_hour.size(), eval.rmse_hour_spa,
                eval.rmse_hour_tmp, eval.rmse_hour_st, eval.rmse_day_spa,
                eval.rmse_day_tmp, eval.rmse_day_st);
  return buffer;
}

/// Ranks the three models by RMSE, e.g. "spatiotemporal < temporal <
/// spatial", and appends whether the paper's ordering (spatiotemporal best,
/// then temporal, then spatial; §VI-B) held on this scenario.
std::string render_ordering(const char* label, double spa, double tmp,
                            double st) {
  std::array<std::pair<double, const char*>, 3> ranked{
      {{st, "spatiotemporal"}, {tmp, "temporal"}, {spa, "spatial"}}};
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });
  const bool holds = st <= tmp && tmp <= spa;
  std::string line = std::string("ordering (") + label + "): ";
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    line += ranked[i].second;
    if (i + 1 < ranked.size()) line += " < ";
  }
  line += holds ? "  [paper ordering holds]\n"
                : "  [paper ordering breaks]\n";
  return line;
}

/// The per-scenario predictability table: the Fig. 4 RMSE block plus the
/// §VII-A naive baselines and the ordering verdict. Byte-stable, so
/// scripts/scenario_table.sh output diffs cleanly across runs.
std::string render_scenario_evaluation(const trace::Scenario& scenario,
                                       std::size_t n_attacks,
                                       std::size_t days, std::uint64_t seed,
                                       const std::string& fraction_token,
                                       const core::TimestampEvaluation& eval) {
  std::string text = std::string("scenario: ") + scenario.name + " — " +
                     scenario.summary + "\n";
  char world_line[160];
  std::snprintf(world_line, sizeof world_line,
                "world: %zu attacks over %zu days (seed %llu)\n", n_attacks,
                days, static_cast<unsigned long long>(seed));
  text += world_line;
  text += render_evaluation(fraction_token, eval);
  if (eval.truth_hour.empty()) return text;
  char baselines[192];
  std::snprintf(baselines, sizeof baselines,
                "hour RMSE (naive): always-same %.2f  always-mean %.2f\n"
                "date RMSE (naive): always-same %.2f  always-mean %.2f\n",
                eval.rmse_hour_same, eval.rmse_hour_mean, eval.rmse_day_same,
                eval.rmse_day_mean);
  text += baselines;
  text += render_ordering("hour", eval.rmse_hour_spa, eval.rmse_hour_tmp,
                          eval.rmse_hour_st);
  text += render_ordering("date", eval.rmse_day_spa, eval.rmse_day_tmp,
                          eval.rmse_day_st);
  return text;
}

/// `evaluate --scenario NAME`: generates the scenario's evaluation-preset
/// world in memory (no --dataset/--ipmap) and scores the three models
/// against the naive baselines on its test tail.
int cmd_evaluate_scenario(const ArgMap& args, const std::string& name,
                          core::Precision precision, std::ostream& out) {
  if (args.has("dataset") || args.has("ipmap")) {
    throw std::invalid_argument(
        "--scenario evaluates a self-contained preset world; drop "
        "--dataset/--ipmap (or drop --scenario to evaluate a saved trace)");
  }
  if (args.has("checkpoint-dir") || args.has("horizons")) {
    throw std::invalid_argument(
        "--scenario does not support --checkpoint-dir/--horizons");
  }
  trace::WorldOptions wopts = trace::small_world_options(1);
  const trace::Scenario& scenario = trace::apply_scenario(wopts, name);
  wopts.seed = args.get_or<std::uint64_t>("seed", scenario.eval.seed);
  wopts.generator.days = scenario.eval.days;
  wopts.generator.activity_scale = scenario.eval.activity_scale;
  for (const std::string& spec : args.get_all("scenario-param")) {
    trace::apply_scenario_param(wopts.generator, scenario, spec);
  }
  char default_fraction[32];
  std::snprintf(default_fraction, sizeof default_fraction, "%g",
                scenario.eval.train_fraction);
  const std::string token =
      args.get("train-fraction").value_or(default_fraction);
  const double fraction = std::stod(token);
  if (!(fraction > 0.0 && fraction < 1.0)) {
    throw std::invalid_argument("train fraction must be in (0, 1), got " +
                                token);
  }

  const trace::World world = trace::build_world(wopts);
  const core::TimestampEvaluation eval = core::evaluate_timestamps(
      world.dataset, world.ip_map, core::default_cli_options(), fraction,
      precision);
  const std::string text = render_scenario_evaluation(
      scenario, world.dataset.size(), wopts.generator.days, wopts.seed, token,
      eval);
  out << text;
  if (const auto out_path = args.get("out")) {
    durable::save_artifact(*out_path, "evaluation", 1, text);
  }
  return 0;
}

int cmd_evaluate(const ArgMap& args, std::ostream& out, std::ostream& err) {
  args.reject_unknown({"dataset", "ipmap", "train-fraction", "horizons", "out",
                       "checkpoint-dir", "resume", "precision", "scenario",
                       "scenario-param", "seed"});
  const core::Precision precision =
      core::parse_precision(args.get("precision").value_or("f64"));
  if (const auto scenario_name = args.get("scenario")) {
    return cmd_evaluate_scenario(args, *scenario_name, precision, out);
  }
  const std::string dataset_path = args.require("dataset");
  const std::string ipmap_path = args.require("ipmap");
  const std::string dataset_bytes = read_input(dataset_path, "dataset");
  const std::string ipmap_bytes = read_input(ipmap_path, "ipmap");
  const trace::Dataset dataset =
      parse_dataset(dataset_bytes, dataset_path, out);
  const net::IpToAsnMap ip_map = parse_ipmap(ipmap_bytes, ipmap_path);

  // Horizons keep their CLI spelling: the token names the checkpoint stage
  // and labels the output, so "0.80" and "0.8" are distinct stages.
  std::vector<std::string> horizons;
  if (const auto list = args.get("horizons")) {
    std::istringstream tokens(*list);
    std::string token;
    while (std::getline(tokens, token, ',')) {
      if (!token.empty()) horizons.push_back(token);
    }
    if (horizons.empty()) {
      throw std::invalid_argument("--horizons needs at least one fraction");
    }
  } else {
    horizons.push_back(args.get("train-fraction").value_or("0.8"));
  }

  const core::SpatiotemporalOptions opts = core::default_cli_options();
  std::optional<core::CheckpointDir> checkpoint =
      open_checkpoint(args, run_config_hash({"evaluate", dataset_bytes,
                                             ipmap_bytes, "grid_search=0"}));

  std::string results;
  for (const std::string& token : horizons) {
    const double fraction = std::stod(token);
    if (!(fraction > 0.0 && fraction < 1.0)) {
      throw std::invalid_argument("train fraction must be in (0, 1), got " +
                                  token);
    }
    // f32 results checkpoint under a distinct stage name so a directory
    // shared across precisions never serves the wrong cached text (f64
    // stage names are unchanged, so old checkpoints still resume).
    const std::string stage =
        "eval/h=" + token +
        (precision == core::Precision::kF32 ? "/f32" : "");
    std::optional<std::string> text;
    if (checkpoint) text = checkpoint->load(stage);
    if (!text) {
      text = render_evaluation(
          token, core::evaluate_timestamps(dataset, ip_map, opts, fraction,
                                           precision));
      if (checkpoint) checkpoint->store(stage, *text);
    }
    out << *text;
    results += *text;
  }
  if (checkpoint && !checkpoint->report().clean()) {
    err << "checkpoint recovery:\n";
    checkpoint->report().write(err);
  }
  if (const auto out_path = args.get("out")) {
    durable::save_artifact(*out_path, "evaluation", 1, results);
  }
  return 0;
}

/// Observability switches, shared by every command. They are stripped from
/// the argument list before the per-command ArgMap parses it, so each
/// command's reject_unknown list stays untouched.
struct ObserveOptions {
  std::string trace_path;    ///< --trace FILE / ACBM_TRACE; empty = off.
  std::string metrics_dest;  ///< --metrics FILE|- / ACBM_METRICS; empty = off.
  bool profile = false;      ///< --profile / ACBM_PROFILE=1.

  [[nodiscard]] bool any() const noexcept {
    return profile || !trace_path.empty() || !metrics_dest.empty();
  }
};

ObserveOptions extract_observe_options(std::vector<std::string>& args) {
  ObserveOptions opts;
  std::vector<std::string> kept;
  kept.reserve(args.size());
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--profile") {
      opts.profile = true;
      continue;
    }
    if (arg == "--trace" || arg == "--metrics") {
      if (i + 1 >= args.size()) {
        throw std::invalid_argument("option " + arg + " needs a value");
      }
      (arg == "--trace" ? opts.trace_path : opts.metrics_dest) = args[++i];
      continue;
    }
    kept.push_back(arg);
  }
  args = std::move(kept);
  const auto env = [](const char* name) -> std::string {
    const char* value = std::getenv(name);
    return value != nullptr ? std::string(value) : std::string();
  };
  if (opts.trace_path.empty()) opts.trace_path = env("ACBM_TRACE");
  if (opts.metrics_dest.empty()) opts.metrics_dest = env("ACBM_METRICS");
  if (!opts.profile) {
    const std::string flag = env("ACBM_PROFILE");
    opts.profile = !flag.empty() && flag != "0";
  }
  return opts;
}

/// Turns collection on for the lifetime of one command and writes the
/// requested sinks in finish(). The destructor disables collection even on
/// exception paths (the sinks are only written for completed commands).
class ObserveSession {
 public:
  explicit ObserveSession(ObserveOptions opts) : opts_(std::move(opts)) {
    if (opts_.any()) {
      // Fresh window per command so in-process callers (tests) get
      // per-run output; quiescent here — nothing is instrumented yet.
      observe::Tracer::instance().reset();
      observe::Metrics::instance().reset();
      observe::set_enabled(true);
    }
  }
  ~ObserveSession() {
    if (opts_.any()) observe::set_enabled(false);
  }
  ObserveSession(const ObserveSession&) = delete;
  ObserveSession& operator=(const ObserveSession&) = delete;

  /// Drains the tracer and writes --trace/--metrics/--profile. Call after
  /// the command's root span has closed.
  void finish(std::ostream& out, std::ostream& err) {
    if (!opts_.any()) return;
    observe::set_enabled(false);
    const std::vector<observe::SpanEvent> events =
        observe::Tracer::instance().collect();
    const std::uint64_t dropped = observe::Tracer::instance().dropped();
    if (!opts_.trace_path.empty()) {
      std::ofstream trace_out(opts_.trace_path);
      if (trace_out) {
        observe::write_chrome_trace(trace_out, events);
      } else {
        err << "warning: cannot write trace file " << opts_.trace_path << "\n";
      }
    }
    if (!opts_.metrics_dest.empty()) {
      if (opts_.metrics_dest == "-") {
        observe::Metrics::instance().write_prometheus(out);
      } else {
        std::ofstream metrics_out(opts_.metrics_dest);
        if (metrics_out) {
          observe::Metrics::instance().write_prometheus(metrics_out);
        } else {
          err << "warning: cannot write metrics file " << opts_.metrics_dest
              << "\n";
        }
      }
    }
    if (opts_.profile) observe::write_profile(err, events, dropped);
  }

 private:
  ObserveOptions opts_;
};

}  // namespace

int run(std::span<const std::string> args_in, std::ostream& out,
        std::ostream& err) {
  if (args_in.empty() || args_in[0] == "help" || args_in[0] == "--help") {
    print_usage(out);
    return args_in.empty() ? 2 : 0;
  }
  try {
    std::vector<std::string> args(args_in.begin(), args_in.end());
    // --fast-math (any command): opt into the reordered/FMA SIMD kernel
    // variants, giving up bit-identity with the scalar reference for a
    // documented tolerance (DESIGN.md §6). Equivalent to ACBM_FAST_MATH=1.
    if (const auto it = std::find(args.begin(), args.end(), "--fast-math");
        it != args.end()) {
      args.erase(it);
      acbm::stats::set_fast_math(true);
    }
    // A malformed ACBM_FAULTS spec parsed lazily inside the injector's
    // constructor cannot throw there; surface it as a usage error before
    // running anything under a half-configured fault set.
    if (const std::string& fault_error =
            acbm::core::FaultInjector::instance().config_error();
        !fault_error.empty()) {
      throw std::invalid_argument(fault_error);
    }
    ObserveSession session(extract_observe_options(args));
    const ArgMap options(args, 1, {"resume", "ship-metrics", "init",
                                   "no-refit", "refit", "status",
                                   "no-batching", "preload",
                                   "list-scenarios"});
    // Dispatch inside a lambda so each command's root span closes before
    // session.finish() drains the tracer.
    const auto dispatch = [&]() -> int {
      if (args[0] == "generate") {
        ACBM_SPAN("cli.generate");
        return cmd_generate(options, out, err);
      }
      if (args[0] == "fit") {
        ACBM_SPAN("cli.fit");
        return cmd_fit(options, out, err);
      }
      if (args[0] == "worker") {
        ACBM_SPAN("cli.worker");
        return cmd_worker(options, out, err);
      }
      if (args[0] == "stats") {
        ACBM_SPAN("cli.stats");
        return cmd_stats(options, out, err);
      }
      if (args[0] == "predict") {
        ACBM_SPAN("cli.predict");
        return cmd_predict(options, out, err);
      }
      if (args[0] == "evaluate") {
        ACBM_SPAN("cli.evaluate");
        return cmd_evaluate(options, out, err);
      }
      if (args[0] == "ingest") {
        ACBM_SPAN("cli.ingest");
        return cmd_ingest(options, out, err);
      }
      if (args[0] == "pack") {
        ACBM_SPAN("cli.pack");
        return cmd_pack(options, out, err);
      }
      if (args[0] == "serve") {
        ACBM_SPAN("cli.serve");
        return cmd_serve(options, out, err);
      }
      if (args[0] == "query") {
        ACBM_SPAN("cli.query");
        return cmd_query(options, out, err);
      }
      return -1;
    };
    const int code = dispatch();
    if (code == -1) {
      err << "unknown command '" << args[0] << "'\n";
      print_usage(err);
      return 2;
    }
    session.finish(out, err);
    return code;
  } catch (const durable::LoadFailure& e) {
    err << "error (" << durable::to_string(e.code()) << "): " << e.what()
        << "\n";
    return 3;
  } catch (const durable::WriteFailure& e) {
    err << "error (write): " << e.what() << "\n";
    return 3;
  } catch (const std::invalid_argument& e) {
    err << "error: " << e.what() << "\n";
    return 2;
  } catch (const std::exception& e) {
    err << "internal error: " << e.what() << "\n";
    return 1;
  }
}

int run(int argc, const char* const* argv, std::ostream& out,
        std::ostream& err) {
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  return run(args, out, err);
}

}  // namespace acbm::cli
