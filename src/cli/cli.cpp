#include "cli/cli.h"

#include <algorithm>
#include <fstream>
#include <optional>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

#include "core/evaluation.h"
#include "core/pipeline.h"
#include "trace/generator.h"
#include "trace/world.h"

namespace acbm::cli {

namespace {

/// Minimal --key value parser; flags must all be known.
class ArgMap {
 public:
  ArgMap(std::span<const std::string> args, std::size_t first) {
    for (std::size_t i = first; i < args.size(); ++i) {
      if (args[i].rfind("--", 0) != 0) {
        throw std::invalid_argument("expected --option, got '" + args[i] + "'");
      }
      const std::string key = args[i].substr(2);
      if (i + 1 >= args.size()) {
        throw std::invalid_argument("option --" + key + " needs a value");
      }
      values_[key] = args[++i];
    }
  }

  [[nodiscard]] std::optional<std::string> get(const std::string& key) const {
    const auto it = values_.find(key);
    return it == values_.end() ? std::nullopt
                               : std::optional<std::string>(it->second);
  }

  [[nodiscard]] std::string require(const std::string& key) const {
    const auto value = get(key);
    if (!value) throw std::invalid_argument("missing required --" + key);
    return *value;
  }

  template <typename T>
  [[nodiscard]] T get_or(const std::string& key, T fallback) const {
    const auto value = get(key);
    if (!value) return fallback;
    if constexpr (std::is_same_v<T, double>) {
      return std::stod(*value);
    } else {
      return static_cast<T>(std::stoull(*value));
    }
  }

  void reject_unknown(std::initializer_list<const char*> known) const {
    for (const auto& [key, value] : values_) {
      if (std::find_if(known.begin(), known.end(), [&](const char* k) {
            return key == k;
          }) == known.end()) {
        throw std::invalid_argument("unknown option --" + key);
      }
    }
  }

 private:
  std::unordered_map<std::string, std::string> values_;
};

void print_usage(std::ostream& out) {
  out << "acbm — adversary-centric DDoS behavior modeling (ICDCS'17 repro)\n"
         "\n"
         "usage: acbm <command> [options]\n"
         "\n"
         "commands:\n"
         "  generate   build a simulated world and write the trace\n"
         "             --seed N (1) --days N (70) --scale X (1.0)\n"
         "             --dataset FILE --ipmap FILE\n"
         "  stats      per-family activity report (Table I format)\n"
         "             --dataset FILE\n"
         "  fit        fit the full model and save it for later prediction\n"
         "             --dataset FILE --ipmap FILE --model FILE\n"
         "             [--fit-report FILE|-]\n"
         "  predict    predict the next attack per target (fits on the fly\n"
         "             from --dataset/--ipmap, or loads --model FILE)\n"
         "             [--dataset FILE --ipmap FILE | --model FILE]\n"
         "             [--target ASN] [--top K] [--fit-report FILE|-]\n"
         "  evaluate   timestamp-prediction RMSE report (Fig. 4 format)\n"
         "             --dataset FILE --ipmap FILE [--train-fraction F]\n"
         "  help       this message\n";
}

trace::Dataset load_dataset(const std::string& path, std::ostream& out) {
  std::ifstream in(path);
  if (!in) throw std::invalid_argument("cannot open dataset file " + path);
  trace::Dataset dataset = trace::Dataset::load_csv(in);
  if (!dataset.validation().clean()) {
    out << "dataset " << path << " needed repair:\n";
    dataset.validation().write(out);
  }
  return dataset;
}

/// --fit-report destination: "-" writes to the command's output stream.
void write_fit_report(const core::AdversaryModel& model,
                      const std::string& dest, std::ostream& out) {
  if (dest == "-") {
    model.fit_report().write(out);
    return;
  }
  std::ofstream report_out(dest);
  if (!report_out) throw std::invalid_argument("cannot write " + dest);
  model.fit_report().write(report_out);
}

net::IpToAsnMap load_ipmap(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::invalid_argument("cannot open ipmap file " + path);
  return net::IpToAsnMap::load(in);
}

int cmd_generate(const ArgMap& args, std::ostream& out) {
  args.reject_unknown({"seed", "days", "scale", "dataset", "ipmap"});
  trace::WorldOptions opts = trace::small_world_options(
      args.get_or<std::uint64_t>("seed", 1));
  opts.generator.days = args.get_or<std::size_t>("days", 70);
  opts.generator.activity_scale = args.get_or<double>("scale", 1.0);
  const std::string dataset_path = args.require("dataset");
  const std::string ipmap_path = args.require("ipmap");

  const trace::World world = trace::build_world(opts);
  std::ofstream dataset_out(dataset_path);
  if (!dataset_out) {
    throw std::invalid_argument("cannot write " + dataset_path);
  }
  world.dataset.save_csv(dataset_out);
  std::ofstream ipmap_out(ipmap_path);
  if (!ipmap_out) throw std::invalid_argument("cannot write " + ipmap_path);
  world.ip_map.save(ipmap_out);

  out << "generated " << world.dataset.size() << " attacks over "
      << opts.generator.days << " days (" << world.topology.graph.as_count()
      << " ASes)\n"
      << "dataset: " << dataset_path << "\nipmap:   " << ipmap_path << "\n";
  return 0;
}

int cmd_stats(const ArgMap& args, std::ostream& out) {
  args.reject_unknown({"dataset"});
  const trace::Dataset dataset = load_dataset(args.require("dataset"), out);
  out << dataset.size() << " attacks, " << dataset.family_names().size()
      << " families, " << dataset.target_asns().size() << " target ASes\n\n";
  std::ostringstream header;
  header << "family        avg/day  active-days     CV\n";
  out << header.str();
  for (std::uint32_t f = 0;
       f < static_cast<std::uint32_t>(dataset.family_names().size()); ++f) {
    const trace::FamilyActivityStats stats = trace::activity_stats(dataset, f);
    char line[128];
    std::snprintf(line, sizeof line, "%-12s %8.2f %12zu %6.2f\n",
                  dataset.family_names()[f].c_str(), stats.avg_per_day,
                  stats.active_days, stats.cv);
    out << line;
  }
  return 0;
}

int cmd_fit(const ArgMap& args, std::ostream& out) {
  args.reject_unknown({"dataset", "ipmap", "model", "fit-report"});
  const trace::Dataset dataset = load_dataset(args.require("dataset"), out);
  const net::IpToAsnMap ip_map = load_ipmap(args.require("ipmap"));
  const std::string model_path = args.require("model");

  core::SpatiotemporalOptions opts;
  opts.spatial.grid_search = false;  // CLI favors responsiveness.
  core::AdversaryModel model(opts);
  model.fit(dataset, ip_map);
  std::ofstream model_out(model_path);
  if (!model_out) throw std::invalid_argument("cannot write " + model_path);
  model.save(model_out);
  out << "fitted on " << dataset.size() << " attacks; model saved to "
      << model_path << "\n";
  if (const auto report = args.get("fit-report")) {
    write_fit_report(model, *report, out);
  }
  return 0;
}

int cmd_predict(const ArgMap& args, std::ostream& out) {
  args.reject_unknown({"dataset", "ipmap", "model", "target", "top",
                       "fit-report"});
  core::AdversaryModel model;
  if (const auto model_path = args.get("model")) {
    std::ifstream model_in(*model_path);
    if (!model_in) {
      throw std::invalid_argument("cannot open model file " + *model_path);
    }
    model = core::AdversaryModel::load(model_in);
  } else {
    const trace::Dataset fit_dataset =
        load_dataset(args.require("dataset"), out);
    const net::IpToAsnMap ip_map = load_ipmap(args.require("ipmap"));
    core::SpatiotemporalOptions opts;
    opts.spatial.grid_search = false;  // CLI favors responsiveness.
    model = core::AdversaryModel(opts);
    model.fit(fit_dataset, ip_map);
  }
  if (const auto report = args.get("fit-report")) {
    write_fit_report(model, *report, out);
  }
  const trace::Dataset& dataset = model.dataset();

  std::vector<net::Asn> targets;
  if (const auto target = args.get("target")) {
    targets.push_back(static_cast<net::Asn>(std::stoul(*target)));
  } else {
    targets = dataset.target_asns();
    targets.resize(std::min<std::size_t>(targets.size(),
                                         args.get_or<std::size_t>("top", 5)));
  }

  out << "target      family        bots   duration      day  hour  top sources\n";
  for (net::Asn asn : targets) {
    const auto pred = model.predict_next_attack(asn);
    if (!pred) {
      out << "AS" << asn << "  (no history)\n";
      continue;
    }
    std::vector<std::pair<net::Asn, double>> sources(
        pred->source_distribution.begin(), pred->source_distribution.end());
    std::sort(sources.begin(), sources.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });
    char line[256];
    std::snprintf(line, sizeof line,
                  "AS%-8u  %-12s %5.0f %9.0fs %7.1f %5.1f  ", asn,
                  dataset.family_names()[pred->assumed_family].c_str(),
                  pred->magnitude, pred->duration_s, pred->day, pred->hour);
    out << line;
    for (std::size_t i = 0; i < sources.size() && i < 3; ++i) {
      if (sources[i].first == 0) continue;
      char src[48];
      std::snprintf(src, sizeof src, "AS%u(%.0f%%) ", sources[i].first,
                    100.0 * sources[i].second);
      out << src;
    }
    out << "\n";
  }
  return 0;
}

int cmd_evaluate(const ArgMap& args, std::ostream& out) {
  args.reject_unknown({"dataset", "ipmap", "train-fraction"});
  const trace::Dataset dataset = load_dataset(args.require("dataset"), out);
  const net::IpToAsnMap ip_map = load_ipmap(args.require("ipmap"));
  const double fraction = args.get_or<double>("train-fraction", 0.8);

  core::SpatiotemporalOptions opts;
  opts.spatial.grid_search = false;
  const core::TimestampEvaluation eval =
      core::evaluate_timestamps(dataset, ip_map, opts, fraction);
  if (eval.truth_hour.empty()) {
    out << "not enough data to evaluate\n";
    return 0;
  }
  char buffer[256];
  std::snprintf(buffer, sizeof buffer,
                "%zu test attacks\n"
                "hour RMSE: spatial %.2f  temporal %.2f  spatiotemporal %.2f\n"
                "date RMSE: spatial %.2f  temporal %.2f  spatiotemporal %.2f\n",
                eval.truth_hour.size(), eval.rmse_hour_spa, eval.rmse_hour_tmp,
                eval.rmse_hour_st, eval.rmse_day_spa, eval.rmse_day_tmp,
                eval.rmse_day_st);
  out << buffer;
  return 0;
}

}  // namespace

int run(std::span<const std::string> args, std::ostream& out,
        std::ostream& err) {
  if (args.empty() || args[0] == "help" || args[0] == "--help") {
    print_usage(out);
    return args.empty() ? 1 : 0;
  }
  try {
    const ArgMap options(args, 1);
    if (args[0] == "generate") return cmd_generate(options, out);
    if (args[0] == "fit") return cmd_fit(options, out);
    if (args[0] == "stats") return cmd_stats(options, out);
    if (args[0] == "predict") return cmd_predict(options, out);
    if (args[0] == "evaluate") return cmd_evaluate(options, out);
    err << "unknown command '" << args[0] << "'\n";
    print_usage(err);
    return 1;
  } catch (const std::invalid_argument& e) {
    err << "error: " << e.what() << "\n";
    return 1;
  } catch (const std::exception& e) {
    err << "internal error: " << e.what() << "\n";
    return 2;
  }
}

int run(int argc, const char* const* argv, std::ostream& out,
        std::ostream& err) {
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  return run(args, out, err);
}

}  // namespace acbm::cli
