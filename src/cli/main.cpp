#include <iostream>

#include "cli/cli.h"

int main(int argc, char** argv) {
  return acbm::cli::run(argc, argv, std::cout, std::cerr);
}
