#include "trace/scenario.h"

#include <charconv>
#include <cstdio>
#include <stdexcept>

namespace acbm::trace {

namespace {

// Setter helpers so each catalog entry reads as a table of
// {key, description, default, min, max, field}.
template <double ScenarioBehavior::* Field>
void set_behavior(GeneratorOptions& opts, double value) {
  opts.scenario.*Field = value;
}

template <std::size_t ScenarioBehavior::* Field>
void set_behavior_size(GeneratorOptions& opts, double value) {
  opts.scenario.*Field = static_cast<std::size_t>(value);
}

template <int ScenarioBehavior::* Field>
void set_behavior_int(GeneratorOptions& opts, double value) {
  opts.scenario.*Field = static_cast<int>(value);
}

void set_pool_override(GeneratorOptions& opts, double value) {
  opts.pool_override = static_cast<std::size_t>(value);
}

std::vector<Scenario> build_catalog() {
  std::vector<Scenario> catalog;

  // --- paper-table1: the frozen default -----------------------------------
  {
    Scenario s;
    s.name = "paper-table1";
    s.summary =
        "the paper's Table-I adversary (default; byte-identical stream)";
    s.citation = "ICDCS'17 Table I (PAPER.md)";
    s.base = [](GeneratorOptions&) {};  // All hooks off; sequential stream.
    s.eval = {70, 1.0, 0.8, 1};
    catalog.push_back(std::move(s));
  }

  // --- pulse-wave ----------------------------------------------------------
  {
    Scenario s;
    s.name = "pulse-wave";
    s.summary = "short synchronized bursts rotating across targets";
    s.citation = "arXiv:2511.12774 (PAPERS.md: pulse-wave simulator)";
    s.base = [](GeneratorOptions& opts) {
      opts.scenario.pulse = true;
      opts.shard_days = true;
    };
    s.params = {
        {"pulse-duration", "burst length in seconds (median)", 240.0, 10.0,
         7200.0, set_behavior<&ScenarioBehavior::pulse_duration_s>},
        {"pulse-gap", "quiet gap between bursts in seconds", 120.0, 0.0,
         86400.0, set_behavior<&ScenarioBehavior::pulse_gap_s>},
        {"rotation", "targets in the day's burst rotation", 6.0, 1.0, 64.0,
         set_behavior_size<&ScenarioBehavior::pulse_rotation>},
        {"jitter", "launch jitter within a burst slot (seconds)", 10.0, 0.0,
         600.0, set_behavior<&ScenarioBehavior::pulse_jitter_s>},
    };
    s.eval = {70, 1.0, 0.8, 1};
    catalog.push_back(std::move(s));
  }

  // --- carpet-bomb ---------------------------------------------------------
  {
    Scenario s;
    s.name = "carpet-bomb";
    s.summary = "attacks spread across whole target prefixes";
    s.citation = "carpet-bombing DDoS (PAPERS.md: related work)";
    s.base = [](GeneratorOptions& opts) {
      opts.scenario.carpet = true;
      opts.shard_days = true;
    };
    s.params = {
        {"spread", "P(re-draw the victim IP across the prefix)", 1.0, 0.0,
         1.0, set_behavior<&ScenarioBehavior::carpet_spread>},
        {"prefixes", "mean simultaneous prefixes per day", 6.0, 1.0, 64.0,
         set_behavior<&ScenarioBehavior::carpet_prefixes>},
    };
    s.eval = {70, 1.0, 0.8, 1};
    catalog.push_back(std::move(s));
  }

  // --- multi-vector --------------------------------------------------------
  {
    Scenario s;
    s.name = "multi-vector";
    s.summary = "blended attack vectors switching within a chain";
    s.citation = "multi-vector DDoS chains (PAPERS.md: related work)";
    s.base = [](GeneratorOptions& opts) {
      opts.scenario.multivector = true;
      opts.shard_days = true;
    };
    s.params = {
        {"vectors", "distinct vectors per family", 3.0, 2.0, 16.0,
         set_behavior_size<&ScenarioBehavior::vector_count>},
        {"switch-prob", "P(switch vector on a chained follow-up)", 0.5, 0.0,
         1.0, set_behavior<&ScenarioBehavior::vector_switch_prob>},
        {"vector-spread", "log-scale magnitude/duration spread", 0.8, 0.0,
         3.0, set_behavior<&ScenarioBehavior::vector_spread>},
    };
    s.eval = {70, 1.0, 0.8, 1};
    catalog.push_back(std::move(s));
  }

  // --- iot-botnet ----------------------------------------------------------
  {
    Scenario s;
    s.name = "iot-botnet";
    s.summary = "day-night device availability, IoT-scale bot pools";
    s.citation = "arXiv:2110.01842 (PAPERS.md: urban IoT activity data)";
    s.base = [](GeneratorOptions& opts) {
      opts.scenario.iot = true;
      opts.shard_days = true;
      // The urban-IoT regime recruits device fleets far beyond the Table-I
      // pools; the default scales every family to a 64k-device fleet
      // (override with --scenario-param pool=N up to millions).
      opts.pool_override = 65536;
    };
    s.params = {
        {"night-floor", "device availability at the nightly trough", 0.15,
         0.01, 1.0, set_behavior<&ScenarioBehavior::iot_night_floor>},
        {"peak-hour", "hour of peak device availability", 20.0, 0.0, 23.0,
         set_behavior_int<&ScenarioBehavior::iot_peak_hour>},
        {"magnitude-follow", "magnitude elasticity vs availability", 1.0,
         0.0, 4.0, set_behavior<&ScenarioBehavior::iot_magnitude_follow>},
        {"pool", "bot-pool size per family (devices)", 65536.0, 1000.0,
         8388608.0, set_pool_override},
    };
    s.eval = {70, 1.0, 0.8, 1};
    catalog.push_back(std::move(s));
  }

  return catalog;
}

}  // namespace

const std::vector<Scenario>& scenario_catalog() {
  static const std::vector<Scenario> catalog = build_catalog();
  return catalog;
}

const Scenario* find_scenario(std::string_view name) {
  for (const Scenario& scenario : scenario_catalog()) {
    if (name == scenario.name) return &scenario;
  }
  return nullptr;
}

const Scenario& apply_scenario(WorldOptions& opts, std::string_view name) {
  const Scenario* scenario = find_scenario(name);
  if (scenario == nullptr) {
    std::string known;
    for (const Scenario& s : scenario_catalog()) {
      known += known.empty() ? "" : ", ";
      known += s.name;
    }
    throw std::invalid_argument(
        "unknown scenario '" + std::string(name) +
        "' (usage: --scenario NAME with NAME one of: " + known +
        "; see --list-scenarios)");
  }
  scenario->base(opts.generator);
  return *scenario;
}

void apply_scenario_param(GeneratorOptions& opts, const Scenario& scenario,
                          std::string_view spec) {
  const std::size_t eq = spec.find('=');
  if (eq == std::string_view::npos || eq == 0 || eq + 1 == spec.size()) {
    throw std::invalid_argument(
        "malformed --scenario-param '" + std::string(spec) +
        "' (usage: --scenario-param key=value; see --list-scenarios)");
  }
  const std::string_view key = spec.substr(0, eq);
  const std::string_view value_text = spec.substr(eq + 1);
  for (const ScenarioParam& param : scenario.params) {
    if (key != param.key) continue;
    double value = 0.0;
    const auto [ptr, ec] = std::from_chars(
        value_text.data(), value_text.data() + value_text.size(), value);
    if (ec != std::errc() || ptr != value_text.data() + value_text.size()) {
      throw std::invalid_argument(
          "non-numeric value in --scenario-param '" + std::string(spec) +
          "' (usage: --scenario-param " + param.key + "=NUMBER)");
    }
    if (!(value >= param.min && value <= param.max)) {
      char range[96];
      std::snprintf(range, sizeof range, "[%g, %g]", param.min, param.max);
      throw std::invalid_argument(
          "--scenario-param " + std::string(param.key) + "=" +
          std::string(value_text) + " outside the valid range " + range);
    }
    param.apply(opts, value);
    return;
  }
  std::string known;
  for (const ScenarioParam& param : scenario.params) {
    known += known.empty() ? "" : ", ";
    known += param.key;
  }
  throw std::invalid_argument(
      "scenario '" + std::string(scenario.name) + "' has no parameter '" +
      std::string(key) + "'" +
      (known.empty() ? " (it takes no parameters)"
                     : " (known: " + known + ")"));
}

std::string list_scenarios_text() {
  std::string out = "scenarios (acbm generate --scenario NAME):\n";
  for (const Scenario& scenario : scenario_catalog()) {
    char line[192];
    std::snprintf(line, sizeof line, "  %-14s %s\n", scenario.name,
                  scenario.summary);
    out += line;
    out += "                 [";
    out += scenario.citation;
    out += "]\n";
    for (const ScenarioParam& param : scenario.params) {
      char prow[192];
      std::snprintf(prow, sizeof prow,
                    "    --scenario-param %-18s %s (default %g, range "
                    "[%g, %g])\n",
                    param.key, param.description, param.def, param.min,
                    param.max);
      out += prow;
    }
  }
  return out;
}

}  // namespace acbm::trace
