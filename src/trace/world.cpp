#include "trace/world.h"

namespace acbm::trace {

World build_world(const WorldOptions& opts) {
  acbm::stats::Rng rng(opts.seed);
  World world;
  world.topology = net::generate_topology(opts.topology, rng);
  world.ip_map =
      net::allocate_address_space(world.topology.graph, opts.allocation, rng);
  world.dataset =
      generate_dataset(world.topology, world.ip_map, opts.generator, rng);
  return world;
}

WorldOptions small_world_options(std::uint64_t seed) {
  WorldOptions opts;
  opts.seed = seed;
  opts.topology.num_tier1 = 4;
  opts.topology.num_transit = 12;
  opts.topology.num_stub = 40;
  opts.generator.days = 70;
  opts.generator.targets_per_family = 10;
  opts.generator.pool_scale = 8.0;
  return opts;
}

WorldOptions paper_world_options(std::uint64_t seed) {
  WorldOptions opts;
  opts.seed = seed;
  opts.topology.num_tier1 = 8;
  opts.topology.num_transit = 40;
  opts.topology.num_stub = 150;
  opts.generator.days = 242;
  opts.generator.targets_per_family = 25;
  return opts;
}

}  // namespace acbm::trace
