// Botnet family profiles. The paper's dataset tracks 10 active families
// whose per-family statistics are published in Table I (average attacks per
// day, number of active days, coefficient of variation of the daily attack
// count); those numbers are the calibration targets for the synthetic trace
// generator. The remaining behavioral structure (diurnal launch preference,
// AR activity dynamics, target affinity, duration law, source-AS affinity)
// is planted so the paper's models have the signal they exploit on the real
// trace.
#pragma once

#include <array>
#include <cstddef>
#include <string>
#include <vector>

namespace acbm::trace {

/// Generative parameters for one botnet family.
struct FamilyProfile {
  std::string name;

  // --- Table I calibration targets ---
  double attacks_per_day = 5.0;  ///< Mean daily attacks on active days.
  std::size_t active_days = 200; ///< Days with at least one attack.
  double daily_cv = 1.0;         ///< CV of the daily attack count.

  // --- Planted behavioral structure ---
  /// AR(1) coefficient of the latent log-activity process (temporal signal).
  double activity_ar = 0.7;
  /// Preferred launch hours (indices 0-23) and the share of attacks that
  /// follow the preference instead of launching uniformly.
  std::vector<int> peak_hours{20, 21, 22};
  double peak_share = 0.7;
  /// Zipf skew of target selection (higher = stronger target affinity).
  double target_skew = 1.1;
  /// Probability that an attack is a multistage follow-up on the previous
  /// target (within the paper's 30 s - 24 h window).
  double chain_prob = 0.35;
  /// Median bots per attack and log-normal sigma of the magnitude.
  double median_bots = 40.0;
  double bots_sigma = 0.6;
  /// Median attack duration in seconds and log-normal sigma.
  double median_duration_s = 1800.0;
  double duration_sigma = 0.5;
  /// Elasticity of duration with respect to relative attack magnitude
  /// (the paper: duration depends on the number of active bots).
  double duration_bot_elasticity = 0.3;
  /// Number of source ASes this family recruits from and the Zipf skew of
  /// bot placement across them (location affinity, §II-B).
  std::size_t source_as_count = 15;
  double source_as_skew = 1.2;
  /// Bot-pool churn: period (days) and amplitude of the recruiting/dormancy
  /// cycle modulating the active fraction of the pool.
  double churn_period_days = 30.0;
  double churn_amplitude = 0.25;
};

/// The 10 most active families with Table I's published statistics.
[[nodiscard]] std::vector<FamilyProfile> standard_families();

/// Table I reference rows for validation (name, avg/day, active days, CV).
struct TableOneRow {
  const char* name;
  double avg_per_day;
  std::size_t active_days;
  double cv;
};
[[nodiscard]] const std::array<TableOneRow, 10>& table_one_reference();

/// Derives the zero-truncated-Poisson base rate lambda such that
/// E[N | N >= 1] == mean_per_active_day (solved numerically).
/// Throws std::invalid_argument for non-positive targets.
[[nodiscard]] double truncated_poisson_rate(double mean_per_active_day);

/// Derives the log-normal modulation sigma that, combined with Poisson
/// sampling at mean rate `mean`, yields the target CV of the daily count.
/// Returns 0 when Poisson noise alone already meets or exceeds the target.
[[nodiscard]] double modulation_sigma(double mean, double target_cv);

}  // namespace acbm::trace
