#include "trace/botnet.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace acbm::trace {

BotPool::BotPool(std::size_t size, const std::vector<net::Asn>& source_ases,
                 double as_skew, const net::IpToAsnMap& ip_map,
                 acbm::stats::Rng& rng) {
  if (size == 0) throw std::invalid_argument("BotPool: empty pool");
  if (source_ases.empty()) {
    throw std::invalid_argument("BotPool: no source ASes");
  }
  // Pre-fetch each AS's prefixes once.
  std::vector<std::vector<net::Prefix>> prefixes;
  prefixes.reserve(source_ases.size());
  for (net::Asn asn : source_ases) {
    prefixes.push_back(ip_map.prefixes_of(asn));
    if (prefixes.back().empty()) {
      throw std::invalid_argument("BotPool: source AS has no address space");
    }
  }

  bots_.reserve(size);
  for (std::size_t i = 0; i < size; ++i) {
    const std::size_t as_idx = rng.zipf(source_ases.size(), as_skew);
    const auto& blocks = prefixes[as_idx];
    const auto block_idx = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(blocks.size()) - 1));
    const net::Prefix& block = blocks[block_idx];
    const auto offset = static_cast<std::uint32_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(block.size()) - 1));
    bots_.push_back({net::Ipv4(block.first().value + offset),
                     source_ases[as_idx]});
  }
  // AS-ordered pool: the rotating draw window then shifts the AS mix
  // gradually instead of sampling a static distribution.
  std::sort(bots_.begin(), bots_.end(), [](const Bot& a, const Bot& b) {
    if (a.asn != b.asn) return a.asn < b.asn;
    return a.ip < b.ip;
  });
}

double BotPool::active_fraction(double day, double period_days,
                                double amplitude,
                                acbm::stats::Rng& rng) const {
  const double phase = 2.0 * std::numbers::pi * day / std::max(period_days, 1.0);
  const double cycle = 1.0 - amplitude * (0.5 + 0.5 * std::sin(phase));
  const double noisy = cycle + rng.normal(0.0, 0.03);
  return std::clamp(noisy, 0.05, 1.0);
}

std::vector<Bot> BotPool::draw(std::size_t count, double active_fraction,
                               double phase, acbm::stats::Rng& rng) const {
  const auto active = std::max<std::size_t>(
      1, static_cast<std::size_t>(static_cast<double>(bots_.size()) *
                                  std::clamp(active_fraction, 0.0, 1.0)));
  const std::size_t take = std::min(count, active);
  // Window anchored at the phase with a little jitter: consecutive draws
  // overlap heavily, and the anchor drifts with simulation time.
  const double wrapped = phase - std::floor(phase);
  const auto jitter = static_cast<std::size_t>(rng.uniform_int(
      0, std::max<std::int64_t>(1, static_cast<std::int64_t>(bots_.size()) / 20)));
  const auto start =
      (static_cast<std::size_t>(wrapped * static_cast<double>(bots_.size())) +
       jitter) %
      bots_.size();
  std::vector<Bot> out;
  out.reserve(take);
  const std::vector<std::size_t> picks =
      rng.sample_without_replacement(active, take);
  for (std::size_t p : picks) {
    out.push_back(bots_[(start + p) % bots_.size()]);
  }
  return out;
}

}  // namespace acbm::trace
