// The pluggable adversary-scenario catalog (SCENARIOS.md). A Scenario is a
// named preset over the generator's behavioral hooks plus an evaluation
// preset, so `acbm generate --scenario NAME` and `acbm evaluate --scenario
// NAME` test the paper's predictability claims under adversary regimes
// beyond Table I: pulse-wave bursts, carpet-bombing, multi-vector chains,
// and IoT-scale day-night botnets.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "trace/world.h"

namespace acbm::trace {

/// One tunable scenario parameter, settable from the CLI as
/// `--scenario-param key=value`. Values outside [min, max] are usage errors.
struct ScenarioParam {
  const char* key;
  const char* description;
  double def = 0.0;
  double min = 0.0;
  double max = 0.0;
  void (*apply)(GeneratorOptions&, double) = nullptr;
};

/// The per-scenario evaluation preset behind `acbm evaluate --scenario`:
/// a self-contained world (seeded, sized) plus the chronological split the
/// predictability table is scored on.
struct ScenarioEvalPreset {
  std::size_t days = 70;
  double activity_scale = 1.0;
  double train_fraction = 0.8;
  std::uint64_t seed = 1;
};

/// A catalog entry: the behavioral preset and its parameter space.
struct Scenario {
  const char* name;
  const char* summary;   ///< One-liner for --list-scenarios.
  const char* citation;  ///< The modeled regime's source (see PAPERS.md).
  /// Turns the scenario's generator hooks on. paper-table1's is a no-op:
  /// its draw stream is byte-identical to the pre-catalog generator.
  void (*base)(GeneratorOptions&) = nullptr;
  std::vector<ScenarioParam> params;
  ScenarioEvalPreset eval;
};

/// The built-in catalog, paper-table1 first. Stable order (it names the
/// --list-scenarios output and the bench/EXPERIMENTS row order).
[[nodiscard]] const std::vector<Scenario>& scenario_catalog();

/// Catalog lookup; nullptr when the name is unknown.
[[nodiscard]] const Scenario* find_scenario(std::string_view name);

/// Resolves a scenario by name and applies its base behavior to
/// `opts.generator`. Throws std::invalid_argument naming the known
/// scenarios when the name is unknown (CLI exit code 2).
[[nodiscard]] const Scenario& apply_scenario(WorldOptions& opts,
                                             std::string_view name);

/// Parses one `key=value` spec and applies it. Throws std::invalid_argument
/// (CLI exit code 2) on a malformed spec, an unknown key, a non-numeric
/// value, or a value outside the parameter's documented range.
void apply_scenario_param(GeneratorOptions& opts, const Scenario& scenario,
                          std::string_view spec);

/// The `--list-scenarios` text: one "name  summary" line per scenario
/// followed by its parameter table (key, range, default, description).
[[nodiscard]] std::string list_scenarios_text();

}  // namespace acbm::trace
