// The synthetic verified-attack trace generator — the substitute for the
// paper's proprietary mitigation-operator dataset (see DESIGN.md §1).
// Hour-by-hour simulation: each family's latent log-activity follows an
// AR(1) process calibrated so the per-family daily statistics reproduce
// Table I; attacks carry diurnal launch preferences, sticky target affinity,
// multistage chains (30 s - 24 h), churn-modulated magnitudes, and duration
// laws coupled to magnitude and per-target hardness.
#pragma once

#include <cstdint>
#include <vector>

#include "net/ip_space.h"
#include "net/topology.h"
#include "stats/rng.h"
#include "trace/dataset.h"
#include "trace/family.h"

namespace acbm::trace {

struct GeneratorOptions {
  /// Length of the observation window in days (the paper's trace covers
  /// Aug 2012 - Mar 2013, ~242 days).
  std::size_t days = 242;
  /// 2012-08-01 00:00:00 UTC.
  EpochSeconds start_epoch = 1343779200;
  std::vector<FamilyProfile> families = standard_families();
  /// Multiplies every family's attack rate (shrink for fast tests).
  double activity_scale = 1.0;
  /// Distinct targets each family rotates through.
  std::size_t targets_per_family = 25;
  /// Bot-pool size = median_bots * pool_scale (floor 200).
  double pool_scale = 20.0;
  /// Emit hourly per-family snapshots (trailing-24 h unique bot counts).
  bool emit_snapshots = true;
};

/// Generates the full dataset over the given Internet substrate.
/// Targets are placed in stub ASes; bot pools in each family's preferred
/// source ASes. Deterministic given the rng state.
[[nodiscard]] Dataset generate_dataset(const net::Topology& topo,
                                       const net::IpToAsnMap& ip_map,
                                       const GeneratorOptions& opts,
                                       acbm::stats::Rng& rng);

/// Per-family activity statistics in Table I's format.
struct FamilyActivityStats {
  double avg_per_day = 0.0;     ///< Mean attacks per active day.
  std::size_t active_days = 0;  ///< Days with at least one attack.
  double cv = 0.0;              ///< CV of the daily count over active days.
};

/// Computes Table I statistics for one family of a dataset.
[[nodiscard]] FamilyActivityStats activity_stats(const Dataset& dataset,
                                                 std::uint32_t family);

}  // namespace acbm::trace
