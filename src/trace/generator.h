// The synthetic verified-attack trace generator — the substitute for the
// paper's proprietary mitigation-operator dataset (see DESIGN.md §1).
// Hour-by-hour simulation: each family's latent log-activity follows an
// AR(1) process calibrated so the per-family daily statistics reproduce
// Table I; attacks carry diurnal launch preferences, sticky target affinity,
// multistage chains (30 s - 24 h), churn-modulated magnitudes, and duration
// laws coupled to magnitude and per-target hardness.
#pragma once

#include <cstdint>
#include <vector>

#include "net/ip_space.h"
#include "net/topology.h"
#include "stats/rng.h"
#include "trace/dataset.h"
#include "trace/family.h"

namespace acbm::trace {

/// Behavioral hooks the adversary-scenario catalog (trace/scenario.h) turns
/// on. Every flag defaults to off, and the generator's draw sequence with
/// all flags off is exactly the pre-catalog paper-table1 sequence — the
/// catalog's byte-identity contract (SCENARIOS.md) rests on that.
struct ScenarioBehavior {
  // --- pulse-wave: short synchronized bursts rotating across targets ---
  bool pulse = false;
  double pulse_duration_s = 240.0;  ///< Burst length (median).
  double pulse_gap_s = 120.0;       ///< Quiet gap between consecutive bursts.
  std::size_t pulse_rotation = 6;   ///< Targets in the day's rotation.
  double pulse_jitter_s = 10.0;     ///< Launch jitter within a burst slot.

  // --- carpet-bomb: attacks spread across whole target prefixes ---
  bool carpet = false;
  double carpet_spread = 1.0;     ///< P(re-draw the IP across the prefix).
  double carpet_prefixes = 6.0;   ///< Mean simultaneous prefixes per day.

  // --- multi-vector: blended attack vectors within a chain ---
  bool multivector = false;
  std::size_t vector_count = 3;      ///< Distinct vectors per family.
  double vector_switch_prob = 0.5;   ///< P(switch vector on a chained attack).
  double vector_spread = 0.8;        ///< Log-scale magnitude/duration spread.

  // --- iot-botnet: day-night device availability (urban IoT regime) ---
  bool iot = false;
  double iot_night_floor = 0.15;     ///< Availability at the nightly trough.
  int iot_peak_hour = 20;            ///< Hour of peak device availability.
  double iot_magnitude_follow = 1.0; ///< Magnitude elasticity vs availability.
};

struct GeneratorOptions {
  /// Length of the observation window in days (the paper's trace covers
  /// Aug 2012 - Mar 2013, ~242 days).
  std::size_t days = 242;
  /// 2012-08-01 00:00:00 UTC.
  EpochSeconds start_epoch = 1343779200;
  std::vector<FamilyProfile> families = standard_families();
  /// Multiplies every family's attack rate (shrink for fast tests).
  double activity_scale = 1.0;
  /// Distinct targets each family rotates through.
  std::size_t targets_per_family = 25;
  /// Bot-pool size = median_bots * pool_scale (floor 200).
  double pool_scale = 20.0;
  /// Emit hourly per-family snapshots (trailing-24 h unique bot counts).
  bool emit_snapshots = true;
  /// Scenario hooks (all off = the paper-table1 behavior, byte-identical to
  /// the pre-catalog generator).
  ScenarioBehavior scenario;
  /// Shard each family's day loop over the parallel pool: every day draws
  /// from its own Rng substream, so the trace is bit-identical at any
  /// ACBM_THREADS — but NOT to the sequential (shard_days = false) stream.
  /// The catalog turns this on for every scenario except paper-table1,
  /// whose legacy sequential stream is frozen.
  bool shard_days = false;
  /// Overrides the bot-pool size (0 = median_bots * pool_scale as before).
  /// The iot-botnet scenario uses this to scale from ~4k devices to
  /// millions of bots.
  std::size_t pool_override = 0;
};

/// Generates the full dataset over the given Internet substrate.
/// Targets are placed in stub ASes; bot pools in each family's preferred
/// source ASes. Deterministic given the rng state.
[[nodiscard]] Dataset generate_dataset(const net::Topology& topo,
                                       const net::IpToAsnMap& ip_map,
                                       const GeneratorOptions& opts,
                                       acbm::stats::Rng& rng);

/// Per-family activity statistics in Table I's format.
struct FamilyActivityStats {
  double avg_per_day = 0.0;     ///< Mean attacks per active day.
  std::size_t active_days = 0;  ///< Days with at least one attack.
  double cv = 0.0;              ///< CV of the daily count over active days.
};

/// Computes Table I statistics for one family of a dataset.
[[nodiscard]] FamilyActivityStats activity_stats(const Dataset& dataset,
                                                 std::uint32_t family);

}  // namespace acbm::trace
