#include "trace/family.h"

#include <cmath>
#include <stdexcept>

namespace acbm::trace {

const std::array<TableOneRow, 10>& table_one_reference() {
  static const std::array<TableOneRow, 10> kRows{{
      {"AldiBot", 1.29, 204, 0.77},
      {"BlackEnergy", 5.93, 220, 0.82},
      {"Colddeath", 7.52, 118, 1.53},
      {"Darkshell", 9.98, 210, 1.14},
      {"DDoSer", 2.13, 211, 0.84},
      {"DirtJumper", 144.30, 220, 0.77},
      {"Nitol", 2.91, 208, 1.05},
      {"Optima", 3.19, 220, 0.90},
      {"Pandora", 40.08, 165, 1.27},
      {"YZF", 6.28, 72, 1.41},
  }};
  return kRows;
}

double truncated_poisson_rate(double mean_per_active_day) {
  if (mean_per_active_day <= 1.0) {
    throw std::invalid_argument(
        "truncated_poisson_rate: conditional mean must exceed 1");
  }
  // Solve m = lambda / (1 - exp(-lambda)) by bisection; the right side is
  // monotone increasing in lambda.
  double lo = 1e-9;
  double hi = mean_per_active_day;  // m >= lambda always.
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = (lo + hi) / 2.0;
    const double value = mid / (1.0 - std::exp(-mid));
    (value < mean_per_active_day ? lo : hi) = mid;
  }
  return (lo + hi) / 2.0;
}

double modulation_sigma(double mean, double target_cv) {
  if (mean <= 0.0 || target_cv < 0.0) {
    throw std::invalid_argument("modulation_sigma: bad parameters");
  }
  // With N | lambda ~ Poisson(lambda) and lambda log-normal with mean m:
  //   CV^2(N) = 1/m + (exp(sigma^2) - 1)
  // so sigma^2 = ln(1 + CV^2 - 1/m), clamped at zero when the Poisson term
  // alone already reaches the target.
  const double excess = target_cv * target_cv - 1.0 / mean;
  if (excess <= 0.0) return 0.0;
  return std::sqrt(std::log1p(excess));
}

std::vector<FamilyProfile> standard_families() {
  std::vector<FamilyProfile> out;
  out.reserve(10);

  const auto make = [](const TableOneRow& row) {
    FamilyProfile p;
    p.name = row.name;
    p.attacks_per_day = row.avg_per_day;
    p.active_days = row.active_days;
    p.daily_cv = row.cv;
    return p;
  };
  const auto& rows = table_one_reference();

  // Per-family behavioral color. Peak hours, affinities and duration laws
  // differ so that family identity is recoverable from the trace.
  FamilyProfile aldibot = make(rows[0]);
  aldibot.peak_hours = {2, 3};
  aldibot.median_bots = 15.0;
  aldibot.median_duration_s = 900.0;
  aldibot.source_as_count = 6;
  out.push_back(aldibot);

  FamilyProfile blackenergy = make(rows[1]);
  blackenergy.peak_hours = {13, 14, 15};
  blackenergy.median_bots = 120.0;
  blackenergy.median_duration_s = 3600.0;
  blackenergy.activity_ar = 0.8;
  blackenergy.source_as_count = 20;
  blackenergy.target_skew = 1.4;
  out.push_back(blackenergy);

  FamilyProfile colddeath = make(rows[2]);
  colddeath.peak_hours = {6, 7};
  colddeath.median_bots = 25.0;
  colddeath.median_duration_s = 1200.0;
  colddeath.churn_amplitude = 0.45;  // Bursty: matches the high CV.
  colddeath.source_as_count = 8;
  out.push_back(colddeath);

  FamilyProfile darkshell = make(rows[3]);
  darkshell.peak_hours = {9, 10, 11};
  darkshell.median_bots = 60.0;
  darkshell.median_duration_s = 2400.0;
  darkshell.source_as_count = 12;
  out.push_back(darkshell);

  FamilyProfile ddoser = make(rows[4]);
  ddoser.peak_hours = {18, 19};
  ddoser.median_bots = 20.0;
  ddoser.median_duration_s = 1500.0;
  ddoser.source_as_count = 7;
  out.push_back(ddoser);

  FamilyProfile dirtjumper = make(rows[5]);
  dirtjumper.peak_hours = {20, 21, 22, 23};
  dirtjumper.peak_share = 0.6;
  dirtjumper.median_bots = 80.0;
  dirtjumper.bots_sigma = 0.5;
  dirtjumper.median_duration_s = 2700.0;
  dirtjumper.activity_ar = 0.85;  // Most stable high-volume family.
  dirtjumper.source_as_count = 30;
  dirtjumper.target_skew = 0.9;
  dirtjumper.chain_prob = 0.45;
  out.push_back(dirtjumper);

  FamilyProfile nitol = make(rows[6]);
  nitol.peak_hours = {0, 1, 2};
  nitol.median_bots = 30.0;
  nitol.median_duration_s = 1800.0;
  nitol.source_as_count = 9;
  out.push_back(nitol);

  FamilyProfile optima = make(rows[7]);
  optima.peak_hours = {16, 17};
  optima.median_bots = 45.0;
  optima.median_duration_s = 2100.0;
  optima.source_as_count = 10;
  out.push_back(optima);

  FamilyProfile pandora = make(rows[8]);
  pandora.peak_hours = {11, 12, 13};
  pandora.median_bots = 100.0;
  pandora.bots_sigma = 0.7;
  pandora.median_duration_s = 3000.0;
  pandora.activity_ar = 0.75;
  pandora.churn_amplitude = 0.4;
  pandora.source_as_count = 25;
  out.push_back(pandora);

  FamilyProfile yzf = make(rows[9]);
  yzf.peak_hours = {4, 5};
  yzf.median_bots = 35.0;
  yzf.median_duration_s = 1600.0;
  yzf.churn_amplitude = 0.5;  // Short-lived, bursty family.
  yzf.source_as_count = 6;
  out.push_back(yzf);

  return out;
}

}  // namespace acbm::trace
