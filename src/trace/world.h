// One-call construction of the full simulated world: AS topology, address
// space, and attack trace. Examples and benches start here.
#pragma once

#include <cstdint>

#include "net/ip_space.h"
#include "net/topology.h"
#include "trace/dataset.h"
#include "trace/generator.h"

namespace acbm::trace {

struct WorldOptions {
  net::TopologyOptions topology;
  net::AllocationOptions allocation;
  GeneratorOptions generator;
  std::uint64_t seed = 1;
};

/// A fully materialized simulation environment.
struct World {
  net::Topology topology;
  net::IpToAsnMap ip_map;
  Dataset dataset;
};

/// Builds topology -> address plan -> trace, all from one seed.
[[nodiscard]] World build_world(const WorldOptions& opts);

/// A reduced configuration for tests and examples: ~60 ASes and an
/// 8-to-10-week window, generating a few thousand attacks in well under a
/// second.
[[nodiscard]] WorldOptions small_world_options(std::uint64_t seed);

/// The paper-scale configuration: 242 days, all 10 families, on the order
/// of 50,000 attacks (used by the reproduction benches).
[[nodiscard]] WorldOptions paper_world_options(std::uint64_t seed);

}  // namespace acbm::trace
