// Bot-pool model: each family controls a pool of infected hosts placed in
// the family's preferred source ASes (location affinity, §II-B), with a
// recruiting/dormancy cycle that modulates which bots are active on a given
// day. Attacks draw their sources from the currently active sub-pool.
#pragma once

#include <cstddef>
#include <vector>

#include "net/ip_space.h"
#include "net/ipv4.h"
#include "stats/rng.h"
#include "trace/family.h"

namespace acbm::trace {

struct Bot {
  net::Ipv4 ip;
  net::Asn asn = 0;
};

/// The infected-host population of one botnet family.
class BotPool {
 public:
  /// Builds a pool of `size` bots placed across `source_ases` with Zipf
  /// skew `as_skew` (the first ASes in the list receive the most bots).
  /// Bot IPs are drawn uniformly from each AS's allocated prefixes.
  /// Throws std::invalid_argument when size == 0, source_ases is empty, or
  /// an AS has no address space.
  BotPool(std::size_t size, const std::vector<net::Asn>& source_ases,
          double as_skew, const net::IpToAsnMap& ip_map,
          acbm::stats::Rng& rng);

  [[nodiscard]] std::size_t size() const noexcept { return bots_.size(); }
  [[nodiscard]] const std::vector<Bot>& bots() const noexcept { return bots_; }

  /// Fraction of the pool active on a given simulation day, following the
  /// family's recruiting/dormancy cycle plus noise; always in [0.05, 1].
  [[nodiscard]] double active_fraction(double day, double period_days,
                                       double amplitude,
                                       acbm::stats::Rng& rng) const;

  /// Draws `count` distinct bots from a window of the pool anchored at
  /// `phase` in [0, 1). The pool is ordered by AS, so as the phase drifts
  /// with simulation time the AS composition of drawn bots rotates slowly —
  /// the paper's "bots rotate or shift" (§III-B1), and the recency signal
  /// the spatial source predictor exploits. Requested counts beyond the
  /// active sub-pool are clamped.
  [[nodiscard]] std::vector<Bot> draw(std::size_t count, double active_fraction,
                                      double phase,
                                      acbm::stats::Rng& rng) const;

 private:
  std::vector<Bot> bots_;  // Ordered by (asn, ip).
};

}  // namespace acbm::trace
