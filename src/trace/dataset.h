// The verified-attack dataset: per-attack records (DDoS ID, family, target,
// start timestamp, duration, bot sources) plus hourly per-family activity
// snapshots, mirroring the structure described in §II of the paper.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/as_graph.h"
#include "net/ipv4.h"

namespace acbm::trace {

using EpochSeconds = std::int64_t;

/// Timestamp decomposition used by the models (§III-B: day and hour parts).
struct DayHour {
  int day = 0;   ///< Day index since the start of the observation window.
  int hour = 0;  ///< Hour of day, [0, 24).
};

[[nodiscard]] DayHour decompose_timestamp(EpochSeconds ts,
                                          EpochSeconds window_start);

/// One verified DDoS attack.
struct Attack {
  std::uint64_t id = 0;          ///< Unique DDoS identifier.
  std::uint32_t family = 0;      ///< Index into Dataset::family_names().
  net::Ipv4 target_ip;
  net::Asn target_asn = 0;
  EpochSeconds start = 0;
  double duration_s = 0.0;
  std::vector<net::Ipv4> bots;   ///< Unique source addresses.

  [[nodiscard]] EpochSeconds end() const noexcept {
    return start + static_cast<EpochSeconds>(duration_s);
  }
  [[nodiscard]] std::size_t magnitude() const noexcept { return bots.size(); }
};

/// Hourly per-family activity snapshot (§II-C: 24 hourly reports per day).
struct FamilySnapshot {
  EpochSeconds ts = 0;
  std::uint32_t family = 0;
  std::size_t active_bots = 0;  ///< Unique bots seen in the trailing 24 h.
};

/// What Dataset construction found wrong with its inputs and repaired:
/// non-finite durations are zeroed, negative durations are zeroed,
/// out-of-order start timestamps are sorted, and duplicate attack ids are
/// reassigned to fresh ids past the maximum. A report with total() == 0
/// means the input was already clean.
struct ValidationReport {
  std::size_t nonfinite_durations = 0;  ///< NaN/inf durations zeroed.
  std::size_t negative_durations = 0;   ///< Negative durations zeroed.
  std::size_t out_of_order = 0;         ///< Adjacent start-time inversions.
  std::size_t duplicate_ids = 0;        ///< Attack ids reassigned.

  [[nodiscard]] std::size_t total() const noexcept {
    return nonfinite_durations + negative_durations + out_of_order +
           duplicate_ids;
  }
  [[nodiscard]] bool clean() const noexcept { return total() == 0; }
  /// One human-readable line per nonzero counter.
  void write(std::ostream& os) const;
};

/// The full trace: chronologically sorted attacks plus snapshots.
class Dataset {
 public:
  Dataset() = default;
  Dataset(std::vector<std::string> family_names, std::vector<Attack> attacks,
          std::vector<FamilySnapshot> snapshots, EpochSeconds window_start);

  [[nodiscard]] const std::vector<Attack>& attacks() const noexcept {
    return attacks_;
  }
  [[nodiscard]] const std::vector<FamilySnapshot>& snapshots() const noexcept {
    return snapshots_;
  }
  [[nodiscard]] const std::vector<std::string>& family_names() const noexcept {
    return family_names_;
  }
  [[nodiscard]] EpochSeconds window_start() const noexcept {
    return window_start_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return attacks_.size(); }

  /// Indices of all attacks by a family, chronological.
  [[nodiscard]] std::vector<std::size_t> attacks_of_family(
      std::uint32_t family) const;

  /// Indices of all attacks whose target sits in the given AS,
  /// chronological.
  [[nodiscard]] std::vector<std::size_t> attacks_on_asn(net::Asn asn) const;

  /// Distinct target ASNs, ordered by attack count descending.
  [[nodiscard]] std::vector<net::Asn> target_asns() const;

  /// Family index by name; throws std::out_of_range for unknown names.
  [[nodiscard]] std::uint32_t family_index(const std::string& name) const;

  /// Chronological 80/20-style split: the first `train_fraction` of attacks
  /// form the training set (paper §III-C).
  [[nodiscard]] std::pair<Dataset, Dataset> split(double train_fraction) const;

  /// What construction repaired in the input (clean() when nothing).
  [[nodiscard]] const ValidationReport& validation() const noexcept {
    return validation_;
  }

  /// CSV serialization (attacks only; snapshots are derivable).
  void save_csv(std::ostream& os) const;
  [[nodiscard]] static Dataset load_csv(std::istream& is);

 private:
  void reindex();

  std::vector<std::string> family_names_;
  std::vector<Attack> attacks_;              // Sorted by start time.
  std::vector<FamilySnapshot> snapshots_;    // Sorted by ts.
  EpochSeconds window_start_ = 0;
  ValidationReport validation_;
  std::unordered_map<std::uint32_t, std::vector<std::size_t>> by_family_;
  std::unordered_map<net::Asn, std::vector<std::size_t>> by_target_asn_;
};

}  // namespace acbm::trace
