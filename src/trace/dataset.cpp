#include "trace/dataset.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <unordered_set>

namespace acbm::trace {

DayHour decompose_timestamp(EpochSeconds ts, EpochSeconds window_start) {
  const EpochSeconds rel = ts - window_start;
  DayHour out;
  out.day = static_cast<int>(rel / 86400);
  out.hour = static_cast<int>((rel % 86400) / 3600);
  if (rel < 0 && rel % 86400 != 0) {
    --out.day;
    out.hour = static_cast<int>(((rel % 86400) + 86400) % 86400 / 3600);
  }
  return out;
}

void ValidationReport::write(std::ostream& os) const {
  if (nonfinite_durations > 0) {
    os << "repaired " << nonfinite_durations
       << " non-finite duration(s) -> 0\n";
  }
  if (negative_durations > 0) {
    os << "repaired " << negative_durations << " negative duration(s) -> 0\n";
  }
  if (out_of_order > 0) {
    os << "sorted " << out_of_order << " out-of-order start timestamp(s)\n";
  }
  if (duplicate_ids > 0) {
    os << "reassigned " << duplicate_ids << " duplicate attack id(s)\n";
  }
}

Dataset::Dataset(std::vector<std::string> family_names,
                 std::vector<Attack> attacks,
                 std::vector<FamilySnapshot> snapshots,
                 EpochSeconds window_start)
    : family_names_(std::move(family_names)),
      attacks_(std::move(attacks)),
      snapshots_(std::move(snapshots)),
      window_start_(window_start) {
  // Validated ingestion: repair what can be repaired, count what was wrong.
  for (Attack& attack : attacks_) {
    if (!std::isfinite(attack.duration_s)) {
      attack.duration_s = 0.0;
      ++validation_.nonfinite_durations;
    } else if (attack.duration_s < 0.0) {
      attack.duration_s = 0.0;
      ++validation_.negative_durations;
    }
  }
  for (std::size_t i = 1; i < attacks_.size(); ++i) {
    if (attacks_[i].start < attacks_[i - 1].start) ++validation_.out_of_order;
  }
  const auto chronological = [](const Attack& a, const Attack& b) {
    if (a.start != b.start) return a.start < b.start;
    return a.id < b.id;
  };
  std::sort(attacks_.begin(), attacks_.end(), chronological);
  // Duplicate ids break cross-referencing; later holders (chronological
  // order) get fresh ids past the maximum. Re-sort afterwards because id is
  // the tie-breaker for simultaneous attacks.
  if (!attacks_.empty()) {
    std::uint64_t max_id = 0;
    for (const Attack& attack : attacks_) max_id = std::max(max_id, attack.id);
    std::unordered_set<std::uint64_t> seen;
    seen.reserve(attacks_.size());
    for (Attack& attack : attacks_) {
      if (!seen.insert(attack.id).second) {
        attack.id = ++max_id;
        seen.insert(attack.id);
        ++validation_.duplicate_ids;
      }
    }
    if (validation_.duplicate_ids > 0) {
      std::sort(attacks_.begin(), attacks_.end(), chronological);
    }
  }
  std::sort(snapshots_.begin(), snapshots_.end(),
            [](const FamilySnapshot& a, const FamilySnapshot& b) {
              if (a.ts != b.ts) return a.ts < b.ts;
              return a.family < b.family;
            });
  for (const Attack& attack : attacks_) {
    if (attack.family >= family_names_.size()) {
      throw std::invalid_argument("Dataset: attack references unknown family");
    }
  }
  reindex();
}

void Dataset::reindex() {
  by_family_.clear();
  by_target_asn_.clear();
  for (std::size_t i = 0; i < attacks_.size(); ++i) {
    by_family_[attacks_[i].family].push_back(i);
    by_target_asn_[attacks_[i].target_asn].push_back(i);
  }
}

std::vector<std::size_t> Dataset::attacks_of_family(
    std::uint32_t family) const {
  const auto it = by_family_.find(family);
  return it == by_family_.end() ? std::vector<std::size_t>{} : it->second;
}

std::vector<std::size_t> Dataset::attacks_on_asn(net::Asn asn) const {
  const auto it = by_target_asn_.find(asn);
  return it == by_target_asn_.end() ? std::vector<std::size_t>{} : it->second;
}

std::vector<net::Asn> Dataset::target_asns() const {
  std::vector<std::pair<net::Asn, std::size_t>> counts;
  counts.reserve(by_target_asn_.size());
  for (const auto& [asn, idx] : by_target_asn_) {
    counts.emplace_back(asn, idx.size());
  }
  std::sort(counts.begin(), counts.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  std::vector<net::Asn> out;
  out.reserve(counts.size());
  for (const auto& [asn, count] : counts) out.push_back(asn);
  return out;
}

std::uint32_t Dataset::family_index(const std::string& name) const {
  for (std::size_t i = 0; i < family_names_.size(); ++i) {
    if (family_names_[i] == name) return static_cast<std::uint32_t>(i);
  }
  throw std::out_of_range("Dataset::family_index: unknown family " + name);
}

std::pair<Dataset, Dataset> Dataset::split(double train_fraction) const {
  if (!(train_fraction > 0.0 && train_fraction < 1.0)) {
    throw std::invalid_argument("Dataset::split: fraction out of (0,1)");
  }
  const auto n_train = static_cast<std::size_t>(
      std::llround(static_cast<double>(attacks_.size()) * train_fraction));
  std::vector<Attack> train_attacks(attacks_.begin(),
                                    attacks_.begin() + static_cast<std::ptrdiff_t>(n_train));
  std::vector<Attack> test_attacks(attacks_.begin() + static_cast<std::ptrdiff_t>(n_train),
                                   attacks_.end());
  const EpochSeconds boundary =
      test_attacks.empty() ? window_start_ : test_attacks.front().start;
  std::vector<FamilySnapshot> train_snaps;
  std::vector<FamilySnapshot> test_snaps;
  for (const FamilySnapshot& snap : snapshots_) {
    (snap.ts < boundary ? train_snaps : test_snaps).push_back(snap);
  }
  return {Dataset(family_names_, std::move(train_attacks),
                  std::move(train_snaps), window_start_),
          Dataset(family_names_, std::move(test_attacks),
                  std::move(test_snaps), window_start_)};
}

void Dataset::save_csv(std::ostream& os) const {
  os << std::setprecision(17);  // Durations must round-trip exactly.
  os << "#window_start=" << window_start_ << "\n";
  os << "#families=";
  for (std::size_t i = 0; i < family_names_.size(); ++i) {
    os << family_names_[i] << (i + 1 < family_names_.size() ? ";" : "");
  }
  os << "\n";
  os << "id,family,target_ip,target_asn,start,duration_s,bots\n";
  for (const Attack& attack : attacks_) {
    os << attack.id << ',' << attack.family << ','
       << attack.target_ip.to_string() << ',' << attack.target_asn << ','
       << attack.start << ',' << attack.duration_s << ',';
    for (std::size_t i = 0; i < attack.bots.size(); ++i) {
      os << attack.bots[i].to_string()
         << (i + 1 < attack.bots.size() ? ";" : "");
    }
    os << '\n';
  }
}

Dataset Dataset::load_csv(std::istream& is) {
  std::string line;
  if (!std::getline(is, line) || line.rfind("#window_start=", 0) != 0) {
    throw std::invalid_argument("Dataset::load_csv: missing window_start header");
  }
  const EpochSeconds window_start = std::stoll(line.substr(14));

  if (!std::getline(is, line) || line.rfind("#families=", 0) != 0) {
    throw std::invalid_argument("Dataset::load_csv: missing families header");
  }
  std::vector<std::string> families;
  {
    std::stringstream ss(line.substr(10));
    std::string name;
    while (std::getline(ss, name, ';')) {
      if (!name.empty()) families.push_back(name);
    }
  }
  if (!std::getline(is, line)) {
    throw std::invalid_argument("Dataset::load_csv: missing column header");
  }

  std::vector<Attack> attacks;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::stringstream ss(line);
    std::string field;
    Attack attack;
    std::getline(ss, field, ',');
    attack.id = std::stoull(field);
    std::getline(ss, field, ',');
    attack.family = static_cast<std::uint32_t>(std::stoul(field));
    std::getline(ss, field, ',');
    attack.target_ip = net::parse_ipv4(field);
    std::getline(ss, field, ',');
    attack.target_asn = static_cast<net::Asn>(std::stoul(field));
    std::getline(ss, field, ',');
    attack.start = std::stoll(field);
    std::getline(ss, field, ',');
    attack.duration_s = std::stod(field);
    if (std::getline(ss, field)) {
      std::stringstream bots(field);
      std::string ip;
      while (std::getline(bots, ip, ';')) {
        if (!ip.empty()) attack.bots.push_back(net::parse_ipv4(ip));
      }
    }
    attacks.push_back(std::move(attack));
  }
  return Dataset(std::move(families), std::move(attacks), {}, window_start);
}

}  // namespace acbm::trace
