#include "trace/generator.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <deque>
#include <span>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "core/parallel.h"
#include "stats/descriptive.h"
#include "trace/botnet.h"

namespace acbm::trace {

namespace {

struct Target {
  net::Ipv4 ip;
  net::Asn asn = 0;
  double hardness = 0.0;  ///< Additive log-duration offset (spatial signal).
  net::Prefix block;      ///< The AS prefix (carpet-bomb spreads over it).
};

// E[N] per active day when N is zero-truncated Poisson with a log-normally
// modulated rate: E_z[f(base * exp(sigma z - sigma^2/2))], z ~ N(0,1),
// f(l) = l / (1 - exp(-l)). Evaluated by quadrature over z in [-6, 6].
double truncated_modulated_mean(double base, double sigma) {
  const auto f = [](double l) {
    if (l < 1e-9) return 1.0;
    return l / (1.0 - std::exp(-l));
  };
  if (sigma <= 0.0) return f(base);
  const int steps = 240;
  const double lo = -6.0;
  const double hi = 6.0;
  const double h = (hi - lo) / steps;
  double acc = 0.0;
  double norm = 0.0;
  for (int i = 0; i <= steps; ++i) {
    const double z = lo + h * i;
    const double w = std::exp(-0.5 * z * z) * (i == 0 || i == steps ? 0.5 : 1.0);
    acc += w * f(base * std::exp(sigma * z - sigma * sigma / 2.0));
    norm += w;
  }
  return acc / norm;
}

// Solves for the base rate whose truncated, modulated daily mean equals the
// Table I target. Monotone in base, so bisection converges.
double calibrated_base_rate(double mean_target, double sigma) {
  double lo = 1e-9;
  double hi = std::max(mean_target * 2.0, 1.0);
  while (truncated_modulated_mean(hi, sigma) < mean_target) hi *= 2.0;
  for (int iter = 0; iter < 100; ++iter) {
    const double mid = (lo + hi) / 2.0;
    (truncated_modulated_mean(mid, sigma) < mean_target ? lo : hi) = mid;
  }
  return (lo + hi) / 2.0;
}

// CV of the daily count when N ~ zero-truncated Poisson with log-normally
// modulated rate: E[N^2 | rate l] = (l + l^2) / (1 - exp(-l)).
double truncated_modulated_cv(double base, double sigma) {
  const auto second_moment = [](double l) {
    if (l < 1e-9) return 1.0;
    return (l + l * l) / (1.0 - std::exp(-l));
  };
  const double mean = truncated_modulated_mean(base, sigma);
  double acc = 0.0;
  double norm = 0.0;
  const int steps = 240;
  for (int i = 0; i <= steps; ++i) {
    const double z = -6.0 + 12.0 * i / steps;
    const double w = std::exp(-0.5 * z * z) * (i == 0 || i == steps ? 0.5 : 1.0);
    acc += w * second_moment(base * std::exp(sigma * z - sigma * sigma / 2.0));
    norm += w;
  }
  const double var = std::max(0.0, acc / norm - mean * mean);
  return mean > 0.0 ? std::sqrt(var) / mean : 0.0;
}

// Jointly solves (base, sigma) so the truncated, modulated daily count hits
// both the Table I mean and CV. CV is monotone in sigma (at the re-calibrated
// base), so an outer bisection on sigma suffices. When even sigma = 0
// overshoots the CV (truncated Poisson noise alone), sigma stays 0.
struct DailyRate {
  double base = 1.0;
  double sigma = 0.0;
};
DailyRate calibrate_daily_rate(double mean_target, double cv_target) {
  DailyRate out;
  out.base = calibrated_base_rate(mean_target, 0.0);
  if (truncated_modulated_cv(out.base, 0.0) >= cv_target) return out;
  double lo = 0.0;
  double hi = 3.0;
  for (int iter = 0; iter < 60; ++iter) {
    const double mid = (lo + hi) / 2.0;
    const double base = calibrated_base_rate(mean_target, mid);
    (truncated_modulated_cv(base, mid) < cv_target ? lo : hi) = mid;
  }
  out.sigma = (lo + hi) / 2.0;
  out.base = calibrated_base_rate(mean_target, out.sigma);
  return out;
}

// Zero-truncated Poisson: rejection with analytic fallback for large rates.
std::size_t truncated_poisson(double lambda, acbm::stats::Rng& rng) {
  if (lambda <= 0.0) return 1;
  for (int attempt = 0; attempt < 64; ++attempt) {
    const std::uint64_t draw = rng.poisson(lambda);
    if (draw > 0) return static_cast<std::size_t>(draw);
  }
  return 1;  // lambda astronomically small: one attack by definition.
}

std::vector<Target> make_targets(const net::Topology& topo,
                                 const net::IpToAsnMap& ip_map,
                                 std::size_t count, acbm::stats::Rng& rng) {
  if (topo.stubs.empty()) {
    throw std::invalid_argument("generate_dataset: topology has no stub ASes");
  }
  std::vector<Target> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const auto stub_idx = static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(topo.stubs.size()) - 1));
    const net::Asn asn = topo.stubs[stub_idx];
    const auto prefixes = ip_map.prefixes_of(asn);
    if (prefixes.empty()) {
      throw std::invalid_argument(
          "generate_dataset: target AS has no address space");
    }
    const net::Prefix& block = prefixes.front();
    const auto offset = static_cast<std::uint32_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(block.size()) - 1));
    out.push_back({net::Ipv4(block.first().value + offset), asn,
                   rng.normal(0.0, 0.35), block});
  }
  return out;
}

// Picks the family's preferred source ASes (location affinity): a random
// subset of transit+stub ASes, strongest preference first.
std::vector<net::Asn> pick_source_ases(const net::Topology& topo,
                                       std::size_t count,
                                       acbm::stats::Rng& rng) {
  std::vector<net::Asn> pool = topo.stubs;
  pool.insert(pool.end(), topo.transit.begin(), topo.transit.end());
  if (pool.empty()) {
    throw std::invalid_argument("generate_dataset: no candidate source ASes");
  }
  rng.shuffle(pool);
  pool.resize(std::min(count, pool.size()));
  return pool;
}

// Which days of the window the family is active: a contiguous lifetime with
// random dormancy gaps, hitting the requested active-day count.
std::vector<bool> make_active_days(std::size_t window_days,
                                   std::size_t requested_active,
                                   acbm::stats::Rng& rng) {
  const std::size_t active = std::min(requested_active, window_days);
  if (active == 0) return std::vector<bool>(window_days, false);
  const auto span = std::min(
      window_days,
      static_cast<std::size_t>(std::ceil(static_cast<double>(active) * 1.12)));
  const auto start = static_cast<std::size_t>(rng.uniform_int(
      0, static_cast<std::int64_t>(window_days - span)));
  std::vector<bool> out(window_days, false);
  const std::vector<std::size_t> chosen =
      rng.sample_without_replacement(span, active);
  for (std::size_t offset : chosen) out[start + offset] = true;
  return out;
}

/// Everything a day's generation reads but never mutates: the family's
/// static structure plus the calibrated daily-rate process. Shared across
/// day shards, so a day is a pure function of (context, day, day rng).
struct FamilyContext {
  const GeneratorOptions* opts = nullptr;
  const FamilyProfile* profile = nullptr;
  std::size_t fi = 0;
  const BotPool* pool = nullptr;
  const std::vector<Target>* targets = nullptr;
  const std::vector<double>* modulation = nullptr;
  double lambda_base = 0.0;
  /// iot-botnet: per-hour device availability in [night_floor, 1], used both
  /// as the launch-hour weights and as the magnitude scale.
  std::array<double, 24> iot_availability{};
};

/// Generates one active day of one family's attack stream, appending to
/// `attacks`. All randomness comes from `rng`: the sequential paper path
/// passes the family stream itself, the sharded scenario path passes the
/// day's own substream. The draw sequence with every scenario hook off is
/// exactly the pre-catalog generator's.
void generate_day(const FamilyContext& ctx, std::size_t day,
                  acbm::stats::Rng& rng, std::vector<Attack>& attacks) {
  const GeneratorOptions& opts = *ctx.opts;
  const FamilyProfile& profile = *ctx.profile;
  const ScenarioBehavior& sc = opts.scenario;
  const std::vector<Target>& targets = *ctx.targets;
  const std::vector<double>& modulation = *ctx.modulation;
  const BotPool& pool = *ctx.pool;

  const double lambda_d = ctx.lambda_base * modulation[day];
  const std::size_t n_attacks = truncated_poisson(lambda_d, rng);
  const double churn = pool.active_fraction(
      static_cast<double>(day), profile.churn_period_days,
      profile.churn_amplitude, rng);

  // Parallel campaigns: the day's attacks spread over several targets
  // (the paper observes hundreds of simultaneous attacks), so a
  // family's chronological attack stream interleaves targets. Each
  // target's own attacks still chain within the day (multistage).
  std::size_t want_targets;
  if (sc.pulse) {
    // The burst rotation has a fixed width: each pulse hits one target and
    // the rotation cycles through the set (arXiv:2511.12774 §III).
    want_targets = std::max<std::size_t>(
        1, std::min(n_attacks, sc.pulse_rotation));
  } else if (sc.carpet) {
    // Carpet-bombing saturates several whole prefixes at once.
    want_targets = std::max<std::size_t>(
        1, std::min(n_attacks,
                    1 + static_cast<std::size_t>(rng.poisson(
                            std::max(0.0, sc.carpet_prefixes - 1.0)))));
  } else {
    want_targets = std::max<std::size_t>(
        1, std::min(n_attacks,
                    1 + static_cast<std::size_t>(rng.poisson(std::min(
                        8.0, static_cast<double>(n_attacks) / 3.0)))));
  }
  std::vector<std::size_t> day_targets;
  std::unordered_set<std::size_t> chosen_targets;
  for (int tries = 0;
       day_targets.size() < want_targets && tries < 400; ++tries) {
    const std::size_t t = rng.zipf(targets.size(), profile.target_skew);
    if (chosen_targets.insert(t).second) day_targets.push_back(t);
  }
  std::unordered_map<std::size_t, EpochSeconds> last_start_of;
  std::unordered_map<std::size_t, int> vector_of;  // multi-vector chains

  const EpochSeconds day_start =
      opts.start_epoch + static_cast<EpochSeconds>(day) * 86400;
  const EpochSeconds day_end = day_start + 86400;

  for (std::size_t a = 0; a < n_attacks; ++a) {
    Attack attack;
    attack.id = 0;  // Assigned in the ordered merge below.
    attack.family = static_cast<std::uint32_t>(ctx.fi);

    std::size_t target_idx;
    if (sc.pulse) {
      // Pulse p in the train hits rotation slot p mod |rotation|: every
      // target sees a strict on/off pattern while the adversary's full
      // firepower stays concentrated in one short burst at a time.
      target_idx = day_targets[a % day_targets.size()];
    } else {
      const auto pick = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(day_targets.size()) - 1));
      target_idx = day_targets[pick];
    }
    const auto last_it = last_start_of.find(target_idx);
    // Follow-up on this target's earlier attack today (multistage,
    // §III-A2) or a fresh launch at the target's preferred hour.
    const bool chained = !sc.pulse && last_it != last_start_of.end() &&
                         rng.bernoulli(profile.chain_prob);
    const EpochSeconds last_start =
        last_it != last_start_of.end() ? last_it->second : 0;
    const Target& target = targets[target_idx];
    attack.target_ip = target.ip;
    attack.target_asn = target.asn;
    if (sc.carpet && rng.bernoulli(sc.carpet_spread)) {
      // Spread across the whole prefix: the per-IP victim scatters while
      // the per-AS series the spatial model tracks stays intact.
      const auto offset = static_cast<std::uint32_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(target.block.size()) - 1));
      attack.target_ip = net::Ipv4(target.block.first().value + offset);
    }

    // Multi-vector chains: each chain carries an attack-vector state
    // (volumetric / protocol / application mix) that blends magnitude and
    // duration laws; chained follow-ups may switch vectors mid-chain.
    int vec = 0;
    if (sc.multivector) {
      const auto vit = vector_of.find(target_idx);
      if (vit == vector_of.end() || !chained ||
          rng.bernoulli(sc.vector_switch_prob)) {
        vec = static_cast<int>(rng.uniform_int(
            0, static_cast<std::int64_t>(sc.vector_count) - 1));
      } else {
        vec = vit->second;
      }
      vector_of[target_idx] = vec;
    }

    // Launch time: follow-ups start 30 s - 4 h after the previous
    // attack (inside the paper's multistage window) but stay within the
    // scheduled day so dormant days remain dormant; fresh attacks
    // follow the family's diurnal preference.
    const double chain_room =
        std::min(4.0 * 3600.0, static_cast<double>(day_end - last_start - 1));
    if (sc.pulse) {
      // Synchronized pulse train from the top of the day: burst a starts
      // one period after burst a-1, wrapping so long trains stay inside
      // the scheduled day.
      const double period = sc.pulse_duration_s + sc.pulse_gap_s;
      const double usable =
          std::max(1.0, 86400.0 - sc.pulse_duration_s - sc.pulse_jitter_s);
      const double offset = std::fmod(static_cast<double>(a) * period, usable);
      attack.start =
          day_start + static_cast<EpochSeconds>(offset) +
          static_cast<EpochSeconds>(
              sc.pulse_jitter_s > 0.0 ? rng.uniform(0.0, sc.pulse_jitter_s)
                                      : 0.0);
    } else if (chained && chain_room > 60.0) {
      attack.start = last_start + static_cast<EpochSeconds>(
          rng.uniform(30.0, chain_room));
    } else {
      int hour;
      if (sc.iot) {
        // Launches follow the device-availability curve: an IoT botnet can
        // only fire the devices that are awake (arXiv:2110.01842).
        hour = static_cast<int>(rng.categorical(
            std::span<const double>(ctx.iot_availability)));
      } else if (!profile.peak_hours.empty() &&
                 rng.bernoulli(profile.peak_share)) {
        // Each target has a preferred launch hour anchored at one of the
        // family's peaks with a fixed per-target offset (scheduling is
        // target-local, e.g. the victim's business hours): mostly hit
        // that hour, sometimes any family peak. The family-level
        // temporal model cannot resolve this per-target structure; the
        // spatiotemporal tree can (§VI).
        if (rng.bernoulli(0.8)) {
          const int anchor =
              profile.peak_hours[target_idx % profile.peak_hours.size()];
          const int jitter =
              static_cast<int>((target_idx * 2654435761u) % 9) - 4;
          hour = std::clamp(anchor + jitter, 0, 23);
        } else {
          const auto pick = static_cast<std::size_t>(rng.uniform_int(
              0, static_cast<std::int64_t>(profile.peak_hours.size()) - 1));
          hour = profile.peak_hours[pick];
        }
      } else {
        hour = static_cast<int>(rng.uniform_int(0, 23));
      }
      attack.start = day_start + static_cast<EpochSeconds>(hour) * 3600 +
                     static_cast<EpochSeconds>(rng.uniform_int(0, 3599));
    }

    // Magnitude: log-normal around the family median, damped by churn
    // and riding the family's day-scale activity swings (busier days
    // field more bots) — the temporal signal Fig. 1 exploits.
    const double churn_factor = 0.5 + 0.5 * churn;
    const double activity_factor = std::pow(modulation[day], 0.4);
    double raw_count =
        rng.lognormal(std::log(profile.median_bots), profile.bots_sigma) *
        churn_factor * activity_factor;
    double vector_log_offset = 0.0;
    if (sc.multivector && sc.vector_count > 1) {
      // Vector v's signature: volumetric vectors field more bots for less
      // time, application-layer vectors the reverse. Centered in [-1, 1].
      const double centered =
          (static_cast<double>(vec) -
           static_cast<double>(sc.vector_count - 1) / 2.0) /
          (static_cast<double>(sc.vector_count - 1) / 2.0);
      raw_count *= std::exp(sc.vector_spread * centered);
      vector_log_offset = -0.5 * sc.vector_spread * centered;
    }
    double iot_availability_now = 1.0;
    if (sc.iot) {
      // Magnitude tracks how much of the device fleet is awake at launch.
      const int launch_hour = static_cast<int>(
          ((attack.start - opts.start_epoch) / 3600) % 24);
      iot_availability_now = ctx.iot_availability[launch_hour];
      raw_count *= std::pow(iot_availability_now, sc.iot_magnitude_follow);
    }
    const auto count = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::llround(raw_count)));
    // Pool rotation phase: one full AS-mix revolution per ~3 churn
    // cycles, so the source distribution drifts on a scale the spatial
    // model's recency weighting can track.
    const double phase = static_cast<double>(day) /
                         (3.0 * profile.churn_period_days);
    const std::vector<Bot> drawn = pool.draw(
        count, sc.iot ? churn * iot_availability_now : churn, phase, rng);
    attack.bots.reserve(drawn.size());
    std::unordered_set<std::uint32_t> seen_ips;
    for (const Bot& bot : drawn) {
      // Distinct pool slots can carry colliding random IPs; the attack
      // record keeps unique source addresses (§III-A1).
      if (seen_ips.insert(bot.ip.value).second) {
        attack.bots.push_back(bot.ip);
      }
    }

    // Duration: log-normal with magnitude elasticity and per-target
    // hardness (the spatial model's signal).
    if (sc.pulse) {
      // Bursts are cut to the pulse width, not the magnitude: the defining
      // property of the pulse-wave regime.
      attack.duration_s = std::clamp(
          sc.pulse_duration_s * std::exp(rng.normal(0.0, 0.15)), 30.0,
          2.0 * 86400.0);
    } else {
      const double rel_magnitude =
          static_cast<double>(attack.bots.size()) / profile.median_bots;
      // The day-scale activity factor also stretches durations (campaign
      // pushes run longer), giving the per-target duration series the
      // autoregressive structure the spatial NAR exploits.
      const double log_duration =
          std::log(profile.median_duration_s) +
          profile.duration_bot_elasticity *
              std::log(std::max(rel_magnitude, 1e-3)) +
          target.hardness + 0.35 * std::log(modulation[day]) +
          vector_log_offset + rng.normal(0.0, profile.duration_sigma);
      attack.duration_s =
          std::clamp(std::exp(log_duration), 30.0, 2.0 * 86400.0);
    }

    last_start_of[target_idx] = attack.start;
    attacks.push_back(std::move(attack));
  }
}

}  // namespace

Dataset generate_dataset(const net::Topology& topo,
                         const net::IpToAsnMap& ip_map,
                         const GeneratorOptions& opts,
                         acbm::stats::Rng& rng) {
  if (opts.days == 0) {
    throw std::invalid_argument("generate_dataset: zero-day window");
  }
  if (opts.families.empty()) {
    throw std::invalid_argument("generate_dataset: no families");
  }
  if (opts.activity_scale <= 0.0) {
    throw std::invalid_argument("generate_dataset: non-positive activity scale");
  }

  std::vector<std::string> family_names;
  family_names.reserve(opts.families.size());
  for (const FamilyProfile& profile : opts.families) {
    family_names.push_back(profile.name);
  }

  // Each family's attack stream is generated on its own worker from its own
  // Rng substream (seed ^ hash(family_index), via Rng::substream), so the
  // draws per family — and therefore the whole trace — are bit-identical
  // regardless of thread count or scheduling. Attack ids are assigned in
  // the ordered merge below, reproducing the serial numbering. When
  // opts.shard_days is on (every catalog scenario except paper-table1),
  // each active day additionally draws from its own substream of the
  // family stream and the days fan out over the pool — millions-of-attacks
  // generation parallelizes ~families*days wide, still bit-identical at
  // any ACBM_THREADS.
  struct FamilyOutput {
    std::vector<Attack> attacks;
    std::vector<FamilySnapshot> snapshots;
  };
  std::vector<FamilyOutput> outputs = acbm::core::parallel_map(
      opts.families.size(), [&](std::size_t fi) -> FamilyOutput {
    FamilyOutput out;
    std::vector<Attack>& attacks = out.attacks;
    const FamilyProfile& profile = opts.families[fi];
    acbm::stats::Rng family_rng = rng.substream(fi);

    // --- Static family structure ---
    const std::vector<net::Asn> source_ases =
        pick_source_ases(topo, profile.source_as_count, family_rng);
    const std::size_t pool_size =
        opts.pool_override > 0
            ? opts.pool_override
            : static_cast<std::size_t>(std::max(
                  200.0, profile.median_bots * opts.pool_scale));
    const BotPool pool(pool_size, source_ases, profile.source_as_skew, ip_map,
                       family_rng);
    const std::vector<Target> targets = make_targets(
        topo, ip_map, opts.targets_per_family, family_rng);

    // --- Daily rate process calibrated to Table I ---
    // Scale active days proportionally when simulating a shorter window.
    const auto requested_active = static_cast<std::size_t>(std::llround(
        static_cast<double>(profile.active_days) *
        std::min(1.0, static_cast<double>(opts.days) / 242.0)));
    const std::vector<bool> active = make_active_days(
        opts.days, std::max<std::size_t>(requested_active, 1), family_rng);

    const double mean_rate = profile.attacks_per_day * opts.activity_scale;
    double lambda_base;
    double sigma;
    if (mean_rate > 1.0) {
      const DailyRate rate = calibrate_daily_rate(mean_rate, profile.daily_cv);
      lambda_base = rate.base;
      sigma = rate.sigma;
    } else {
      lambda_base = mean_rate;
      sigma = modulation_sigma(std::max(mean_rate, 0.05), profile.daily_cv);
    }
    // Latent AR(1) log-activity, stationary N(0, sigma^2), advanced every
    // day (including dormant ones) so temporal correlation spans gaps. The
    // modulation path is normalized so its realized mean over active days is
    // exactly 1 — strong autocorrelation otherwise lets the sample mean
    // drift far from the Table I target on a single 242-day realization.
    std::vector<double> modulation(opts.days, 1.0);
    {
      double z = 0.0;
      double realized = 0.0;
      std::size_t n_active = 0;
      for (std::size_t day = 0; day < opts.days; ++day) {
        z = profile.activity_ar * z +
            std::sqrt(std::max(0.0,
                               1.0 - profile.activity_ar * profile.activity_ar)) *
                family_rng.normal(0.0, std::max(sigma, 1e-9));
        modulation[day] = std::exp(z - sigma * sigma / 2.0);
        if (active[day]) {
          realized += modulation[day];
          ++n_active;
        }
      }
      if (n_active > 0 && realized > 0.0) {
        const double correction = realized / static_cast<double>(n_active);
        for (double& m : modulation) m /= correction;
      }
    }

    FamilyContext ctx;
    ctx.opts = &opts;
    ctx.profile = &profile;
    ctx.fi = fi;
    ctx.pool = &pool;
    ctx.targets = &targets;
    ctx.modulation = &modulation;
    ctx.lambda_base = lambda_base;
    if (opts.scenario.iot) {
      // Cosine day-night availability curve peaked at iot_peak_hour with a
      // nightly trough at iot_night_floor (urban IoT devices sleep).
      for (int h = 0; h < 24; ++h) {
        const double phase =
            2.0 * 3.14159265358979323846 *
            (static_cast<double>(h - opts.scenario.iot_peak_hour) / 24.0);
        ctx.iot_availability[static_cast<std::size_t>(h)] =
            opts.scenario.iot_night_floor +
            (1.0 - opts.scenario.iot_night_floor) * 0.5 *
                (1.0 + std::cos(phase));
      }
    }

    if (!opts.shard_days) {
      // The frozen paper-table1 stream: days draw sequentially from the
      // family stream, exactly as the pre-catalog generator did.
      for (std::size_t day = 0; day < opts.days; ++day) {
        if (!active[day]) continue;
        generate_day(ctx, day, family_rng, attacks);
      }
    } else {
      // Scenario path: each active day is a pure function of the day's own
      // substream, so days fan out over the (nested-safe) pool and the
      // deterministic merge reproduces chronological day order.
      std::vector<std::vector<Attack>> day_outputs = acbm::core::parallel_map(
          opts.days, [&](std::size_t day) -> std::vector<Attack> {
            if (!active[day]) return {};
            std::vector<Attack> day_attacks;
            acbm::stats::Rng day_rng = family_rng.substream(day);
            generate_day(ctx, day, day_rng, day_attacks);
            return day_attacks;
          });
      std::size_t total = 0;
      for (const auto& d : day_outputs) total += d.size();
      attacks.reserve(total);
      for (auto& d : day_outputs) {
        attacks.insert(attacks.end(), std::make_move_iterator(d.begin()),
                       std::make_move_iterator(d.end()));
      }
    }

    // Hourly snapshots for this family: unique bots over the trailing 24
    // hours (§II-C: "the set of bots listed in each report are cumulative
    // over the past 24 hours").
    if (opts.emit_snapshots) {
      std::vector<const Attack*> list;
      list.reserve(attacks.size());
      for (const Attack& attack : attacks) list.push_back(&attack);
      std::sort(list.begin(), list.end(),
                [](const Attack* a, const Attack* b) {
                  return a->start < b->start;
                });
      std::unordered_map<std::uint32_t, int> window_counts;
      std::size_t unique = 0;
      std::size_t head = 0;
      std::size_t tail = 0;
      const auto add = [&](const Attack* attack) {
        for (const net::Ipv4& ip : attack->bots) {
          if (window_counts[ip.value]++ == 0) ++unique;
        }
      };
      const auto remove = [&](const Attack* attack) {
        for (const net::Ipv4& ip : attack->bots) {
          if (--window_counts[ip.value] == 0) {
            window_counts.erase(ip.value);
            --unique;
          }
        }
      };
      for (std::size_t hour = 0; hour < opts.days * 24; ++hour) {
        const EpochSeconds now =
            opts.start_epoch + static_cast<EpochSeconds>(hour + 1) * 3600;
        const EpochSeconds cutoff = now - 86400;
        while (head < list.size() && list[head]->start < now) {
          add(list[head++]);
        }
        while (tail < head && list[tail]->start < cutoff) {
          remove(list[tail++]);
        }
        if (unique > 0) {
          out.snapshots.push_back(
              {now, static_cast<std::uint32_t>(fi), unique});
        }
      }
    }
    return out;
  });

  // Ordered merge: family index order reproduces the serial id numbering
  // and snapshot layout exactly (the Dataset constructor re-sorts both).
  std::vector<Attack> attacks;
  std::vector<FamilySnapshot> snapshots;
  std::uint64_t next_id = 1;
  for (FamilyOutput& out : outputs) {
    for (Attack& attack : out.attacks) {
      attack.id = next_id++;
      attacks.push_back(std::move(attack));
    }
    snapshots.insert(snapshots.end(), out.snapshots.begin(),
                     out.snapshots.end());
  }

  return Dataset(std::move(family_names), std::move(attacks),
                 std::move(snapshots), opts.start_epoch);
}

FamilyActivityStats activity_stats(const Dataset& dataset,
                                   std::uint32_t family) {
  std::unordered_map<int, double> daily_counts;
  for (std::size_t idx : dataset.attacks_of_family(family)) {
    const Attack& attack = dataset.attacks()[idx];
    const DayHour dh =
        decompose_timestamp(attack.start, dataset.window_start());
    daily_counts[dh.day] += 1.0;
  }
  FamilyActivityStats stats;
  stats.active_days = daily_counts.size();
  if (daily_counts.empty()) return stats;
  std::vector<double> counts;
  counts.reserve(daily_counts.size());
  for (const auto& [day, count] : daily_counts) counts.push_back(count);
  stats.avg_per_day = acbm::stats::mean(counts);
  stats.cv = acbm::stats::coefficient_of_variation(counts);
  return stats;
}

}  // namespace acbm::trace
