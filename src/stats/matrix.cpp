#include "stats/matrix.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "core/parallel.h"

namespace acbm::stats {

namespace {

// Below this flop count the naive kernel wins (no transpose copy, no pool
// dispatch); typical OLS normal equations (tens of columns) stay under it.
constexpr std::size_t kBlockedMultiplyFlops = 32768;

// Rows of the output each parallel task computes at a time.
constexpr std::size_t kRowGrain = 8;

}  // namespace

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    if (r.size() != cols_) {
      throw std::invalid_argument("Matrix: ragged initializer list");
    }
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

double& Matrix::at(std::size_t r, std::size_t c) {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix::at");
  return (*this)(r, c);
}

double Matrix::at(std::size_t r, std::size_t c) const {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix::at");
  return (*this)(r, c);
}

std::span<double> Matrix::row(std::size_t r) {
  if (r >= rows_) throw std::out_of_range("Matrix::row");
  return {data_.data() + r * cols_, cols_};
}

std::span<const double> Matrix::row(std::size_t r) const {
  if (r >= rows_) throw std::out_of_range("Matrix::row");
  return {data_.data() + r * cols_, cols_};
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::transpose() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      t(c, r) = (*this)(r, c);
    }
  }
  return t;
}

Matrix Matrix::operator*(const Matrix& rhs) const {
  if (cols_ != rhs.rows_) {
    throw std::invalid_argument("Matrix::operator*: dimension mismatch");
  }
  Matrix out(rows_, rhs.cols_);
  if (rows_ * cols_ * rhs.cols_ < kBlockedMultiplyFlops) {
    for (std::size_t i = 0; i < rows_; ++i) {
      for (std::size_t k = 0; k < cols_; ++k) {
        const double aik = (*this)(i, k);
        if (aik == 0.0) continue;
        for (std::size_t j = 0; j < rhs.cols_; ++j) {
          out(i, j) += aik * rhs(k, j);
        }
      }
    }
    return out;
  }
  // Transpose-aware blocked kernel for the MLP/OLS inner loops: with B^T
  // materialized, out(i, j) is a dot product of two contiguous rows, and a
  // j-block keeps a stripe of B^T hot while one A row streams through.
  // Each output row is computed entirely by one task in a fixed k-order, so
  // the result is bit-identical at any thread count.
  const Matrix bt = rhs.transpose();
  const std::size_t n = rhs.cols_;
  constexpr std::size_t kColBlock = 64;
  acbm::core::parallel_for(0, rows_, [&](std::size_t i) {
    const std::span<const double> a_row = row(i);
    const std::span<double> out_row = out.row(i);
    for (std::size_t j0 = 0; j0 < n; j0 += kColBlock) {
      const std::size_t j1 = std::min(n, j0 + kColBlock);
      for (std::size_t j = j0; j < j1; ++j) {
        const std::span<const double> b_row = bt.row(j);
        double acc = 0.0;
        for (std::size_t k = 0; k < cols_; ++k) acc += a_row[k] * b_row[k];
        out_row[j] = acc;
      }
    }
  }, kRowGrain);
  return out;
}

Matrix Matrix::operator+(const Matrix& rhs) const {
  if (rows_ != rhs.rows_ || cols_ != rhs.cols_) {
    throw std::invalid_argument("Matrix::operator+: dimension mismatch");
  }
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] += rhs.data_[i];
  return out;
}

Matrix Matrix::operator-(const Matrix& rhs) const {
  if (rows_ != rhs.rows_ || cols_ != rhs.cols_) {
    throw std::invalid_argument("Matrix::operator-: dimension mismatch");
  }
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] -= rhs.data_[i];
  return out;
}

Matrix Matrix::operator*(double scalar) const {
  Matrix out = *this;
  for (double& v : out.data_) v *= scalar;
  return out;
}

std::vector<double> Matrix::apply(std::span<const double> x) const {
  if (x.size() != cols_) {
    throw std::invalid_argument("Matrix::apply: dimension mismatch");
  }
  std::vector<double> y(rows_, 0.0);
  for (std::size_t i = 0; i < rows_; ++i) {
    double acc = 0.0;
    for (std::size_t j = 0; j < cols_; ++j) acc += (*this)(i, j) * x[j];
    y[i] = acc;
  }
  return y;
}

double Matrix::frobenius_norm() const {
  double acc = 0.0;
  for (double v : data_) acc += v * v;
  return std::sqrt(acc);
}

std::string Matrix::to_string() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < rows_; ++i) {
    os << (i == 0 ? "[" : " ");
    for (std::size_t j = 0; j < cols_; ++j) {
      os << (*this)(i, j) << (j + 1 < cols_ ? ", " : "");
    }
    os << (i + 1 < rows_ ? ";\n" : "]");
  }
  return os.str();
}

std::vector<double> solve_cholesky(const Matrix& a, std::span<const double> b) {
  const std::size_t n = a.rows();
  if (a.cols() != n || b.size() != n) {
    throw std::invalid_argument("solve_cholesky: dimension mismatch");
  }
  // Lower-triangular factor L with A = L L^T.
  Matrix l(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double sum = a(i, j);
      for (std::size_t k = 0; k < j; ++k) sum -= l(i, k) * l(j, k);
      if (i == j) {
        if (sum <= 0.0) {
          throw std::domain_error("solve_cholesky: matrix not SPD");
        }
        l(i, i) = std::sqrt(sum);
      } else {
        l(i, j) = sum / l(j, j);
      }
    }
  }
  // Forward solve L y = b, then backward solve L^T x = y.
  std::vector<double> x(b.begin(), b.end());
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = 0; k < i; ++k) x[i] -= l(i, k) * x[k];
    x[i] /= l(i, i);
  }
  for (std::size_t ii = n; ii-- > 0;) {
    for (std::size_t k = ii + 1; k < n; ++k) x[ii] -= l(k, ii) * x[k];
    x[ii] /= l(ii, ii);
  }
  return x;
}

std::vector<double> solve_lu(const Matrix& a, std::span<const double> b) {
  const std::size_t n = a.rows();
  if (a.cols() != n || b.size() != n) {
    throw std::invalid_argument("solve_lu: dimension mismatch");
  }
  Matrix lu = a;
  std::vector<std::size_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = i;

  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    double best = std::abs(lu(col, col));
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::abs(lu(r, col)) > best) {
        best = std::abs(lu(r, col));
        pivot = r;
      }
    }
    if (best < 1e-300) throw std::domain_error("solve_lu: singular matrix");
    if (pivot != col) {
      for (std::size_t j = 0; j < n; ++j) std::swap(lu(col, j), lu(pivot, j));
      std::swap(perm[col], perm[pivot]);
    }
    for (std::size_t r = col + 1; r < n; ++r) {
      const double f = lu(r, col) / lu(col, col);
      lu(r, col) = f;
      for (std::size_t j = col + 1; j < n; ++j) lu(r, j) -= f * lu(col, j);
    }
  }

  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = b[perm[i]];
  for (std::size_t i = 1; i < n; ++i) {
    for (std::size_t k = 0; k < i; ++k) x[i] -= lu(i, k) * x[k];
  }
  for (std::size_t ii = n; ii-- > 0;) {
    for (std::size_t k = ii + 1; k < n; ++k) x[ii] -= lu(ii, k) * x[k];
    x[ii] /= lu(ii, ii);
  }
  return x;
}

std::vector<double> solve_least_squares(const Matrix& a,
                                        std::span<const double> b,
                                        double ridge) {
  if (a.rows() < a.cols()) {
    throw std::invalid_argument("solve_least_squares: underdetermined system");
  }
  if (b.size() != a.rows()) {
    throw std::invalid_argument("solve_least_squares: dimension mismatch");
  }
  const Matrix at = a.transpose();
  Matrix ata = at * a;
  for (std::size_t i = 0; i < ata.rows(); ++i) ata(i, i) += ridge;
  const std::vector<double> atb = at.apply(b);
  // Cholesky is valid because A^T A + ridge I is SPD whenever ridge > 0;
  // fall back to LU if the ridge was set to zero and conditioning is bad.
  try {
    return solve_cholesky(ata, atb);
  } catch (const std::domain_error&) {
    return solve_lu(ata, atb);
  }
}

}  // namespace acbm::stats
