#include "stats/matrix.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "core/observe.h"
#include "core/parallel.h"
#include "stats/kernels.h"

namespace acbm::stats {

namespace {

// Below this flop count the naive kernel wins (no transpose copy, no pool
// dispatch); typical OLS normal equations (tens of columns) stay under it.
constexpr std::size_t kBlockedMultiplyFlops = 32768;

// Rows of the output each parallel task computes at a time.
constexpr std::size_t kRowGrain = 8;

// Square tile for the cache-blocked transpose.
constexpr std::size_t kTransposeTile = 32;

/// 4-wide unrolled dot product with a single accumulator: the terms are
/// added in the same sequential order as the scalar loop, so the result is
/// bit-identical while the loop overhead amortizes over four elements.
double dot_unrolled(const double* a, const double* b, std::size_t n) {
  double acc = 0.0;
  std::size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    acc += a[k] * b[k];
    acc += a[k + 1] * b[k + 1];
    acc += a[k + 2] * b[k + 2];
    acc += a[k + 3] * b[k + 3];
  }
  for (; k < n; ++k) acc += a[k] * b[k];
  return acc;
}

/// True when [p, p+n) and [q, q+m) overlap — the kernels below require
/// their output storage to be distinct from their inputs.
[[maybe_unused]] bool ranges_overlap(const double* p, std::size_t n,
                                     const double* q, std::size_t m) {
  return p < q + m && q < p + n;
}

}  // namespace

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::size_t rows, std::size_t cols, Uninit)
    : rows_(rows), cols_(cols) {
  // resize() default-initializes through DefaultInitAllocator: the storage
  // is sized exactly once with no zero-fill pass.
  data_.resize(rows * cols);
}

Matrix Matrix::uninitialized(std::size_t rows, std::size_t cols) {
  return Matrix(rows, cols, Uninit{});
}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    if (r.size() != cols_) {
      throw std::invalid_argument("Matrix: ragged initializer list");
    }
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

double& Matrix::at(std::size_t r, std::size_t c) {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix::at");
  return (*this)(r, c);
}

double Matrix::at(std::size_t r, std::size_t c) const {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix::at");
  return (*this)(r, c);
}

std::span<double> Matrix::row(std::size_t r) {
  if (r >= rows_) throw std::out_of_range("Matrix::row");
  return {data_.data() + r * cols_, cols_};
}

std::span<const double> Matrix::row(std::size_t r) const {
  if (r >= rows_) throw std::out_of_range("Matrix::row");
  return {data_.data() + r * cols_, cols_};
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::transpose() const {
  // Output storage is sized exactly once (no zero-fill — every element is
  // written below) and walked in square tiles so both the read and the
  // write side stay cache-resident for large matrices.
  Matrix t(cols_, rows_, Uninit{});
  assert(!ranges_overlap(t.data_.data(), t.data_.size(), data_.data(),
                         data_.size()));
  for (std::size_t r0 = 0; r0 < rows_; r0 += kTransposeTile) {
    const std::size_t r1 = std::min(rows_, r0 + kTransposeTile);
    for (std::size_t c0 = 0; c0 < cols_; c0 += kTransposeTile) {
      const std::size_t c1 = std::min(cols_, c0 + kTransposeTile);
      for (std::size_t r = r0; r < r1; ++r) {
        for (std::size_t c = c0; c < c1; ++c) {
          t(c, r) = (*this)(r, c);
        }
      }
    }
  }
  return t;
}

Matrix Matrix::operator*(const Matrix& rhs) const {
  if (cols_ != rhs.rows_) {
    throw std::invalid_argument("Matrix::operator*: dimension mismatch");
  }
  ACBM_COUNT("gemm.calls", 1);
  ACBM_COUNT("gemm.flops", 2 * rows_ * cols_ * rhs.cols_);
  if (rows_ * cols_ * rhs.cols_ < kBlockedMultiplyFlops) {
    // Accumulating kernel: the output must start zero-filled.
    Matrix out(rows_, rhs.cols_);
    for (std::size_t i = 0; i < rows_; ++i) {
      for (std::size_t k = 0; k < cols_; ++k) {
        const double aik = (*this)(i, k);
        if (aik == 0.0) continue;
        for (std::size_t j = 0; j < rhs.cols_; ++j) {
          out(i, j) += aik * rhs(k, j);
        }
      }
    }
    return out;
  }
  // Blocked kernel for the MLP/OLS inner loops, delegated to the runtime-
  // dispatched gemm_row_range microkernel (k-outer broadcast over B's rows,
  // no transpose copy). Each output element accumulates in ascending-k
  // order from zero, the same chain as a sequential dot product, so the
  // result is bit-identical to the previous B^T-materializing kernel — at
  // any thread count, with or without SIMD. Every out(i, j) is fully
  // overwritten, so the output storage is sized once, uninitialized.
  Matrix out(rows_, rhs.cols_, Uninit{});
  assert(!ranges_overlap(out.data_.data(), out.data_.size(), data_.data(),
                         data_.size()) &&
         !ranges_overlap(out.data_.data(), out.data_.size(), rhs.data_.data(),
                         rhs.data_.size()));
  const std::size_t n = rhs.cols_;
  acbm::core::parallel_for(0, rows_, [&](std::size_t i) {
    gemm_row_range(data_.data(), rhs.data_.data(), out.data_.data(), i, i + 1,
                   cols_, n);
  }, kRowGrain);
  return out;
}

Matrix Matrix::operator+(const Matrix& rhs) const {
  if (rows_ != rhs.rows_ || cols_ != rhs.cols_) {
    throw std::invalid_argument("Matrix::operator+: dimension mismatch");
  }
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] += rhs.data_[i];
  return out;
}

Matrix Matrix::operator-(const Matrix& rhs) const {
  if (rows_ != rhs.rows_ || cols_ != rhs.cols_) {
    throw std::invalid_argument("Matrix::operator-: dimension mismatch");
  }
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] -= rhs.data_[i];
  return out;
}

Matrix Matrix::operator*(double scalar) const {
  Matrix out = *this;
  for (double& v : out.data_) v *= scalar;
  return out;
}

std::vector<double> Matrix::apply(std::span<const double> x) const {
  if (x.size() != cols_) {
    throw std::invalid_argument("Matrix::apply: dimension mismatch");
  }
  std::vector<double> y(rows_);
  for (std::size_t i = 0; i < rows_; ++i) {
    y[i] = dot_unrolled(data_.data() + i * cols_, x.data(), cols_);
  }
  return y;
}

double Matrix::frobenius_norm() const {
  double acc = 0.0;
  for (double v : data_) acc += v * v;
  return std::sqrt(acc);
}

std::string Matrix::to_string() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < rows_; ++i) {
    os << (i == 0 ? "[" : " ");
    for (std::size_t j = 0; j < cols_; ++j) {
      os << (*this)(i, j) << (j + 1 < cols_ ? ", " : "");
    }
    os << (i + 1 < rows_ ? ";\n" : "]");
  }
  return os.str();
}

std::vector<double> solve_cholesky(const Matrix& a, std::span<const double> b) {
  const std::size_t n = a.rows();
  if (a.cols() != n || b.size() != n) {
    throw std::invalid_argument("solve_cholesky: dimension mismatch");
  }
  // Lower-triangular factor L with A = L L^T.
  Matrix l(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double sum = a(i, j);
      for (std::size_t k = 0; k < j; ++k) sum -= l(i, k) * l(j, k);
      if (i == j) {
        if (sum <= 0.0) {
          throw std::domain_error("solve_cholesky: matrix not SPD");
        }
        l(i, i) = std::sqrt(sum);
      } else {
        l(i, j) = sum / l(j, j);
      }
    }
  }
  // Forward solve L y = b, then backward solve L^T x = y.
  std::vector<double> x(b.begin(), b.end());
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = 0; k < i; ++k) x[i] -= l(i, k) * x[k];
    x[i] /= l(i, i);
  }
  for (std::size_t ii = n; ii-- > 0;) {
    for (std::size_t k = ii + 1; k < n; ++k) x[ii] -= l(k, ii) * x[k];
    x[ii] /= l(ii, ii);
  }
  return x;
}

std::vector<double> solve_lu(const Matrix& a, std::span<const double> b) {
  const std::size_t n = a.rows();
  if (a.cols() != n || b.size() != n) {
    throw std::invalid_argument("solve_lu: dimension mismatch");
  }
  Matrix lu = a;
  std::vector<std::size_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = i;

  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    double best = std::abs(lu(col, col));
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::abs(lu(r, col)) > best) {
        best = std::abs(lu(r, col));
        pivot = r;
      }
    }
    if (best < 1e-300) throw std::domain_error("solve_lu: singular matrix");
    if (pivot != col) {
      for (std::size_t j = 0; j < n; ++j) std::swap(lu(col, j), lu(pivot, j));
      std::swap(perm[col], perm[pivot]);
    }
    for (std::size_t r = col + 1; r < n; ++r) {
      const double f = lu(r, col) / lu(col, col);
      lu(r, col) = f;
      for (std::size_t j = col + 1; j < n; ++j) lu(r, j) -= f * lu(col, j);
    }
  }

  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = b[perm[i]];
  for (std::size_t i = 1; i < n; ++i) {
    for (std::size_t k = 0; k < i; ++k) x[i] -= lu(i, k) * x[k];
  }
  for (std::size_t ii = n; ii-- > 0;) {
    for (std::size_t k = ii + 1; k < n; ++k) x[ii] -= lu(ii, k) * x[k];
    x[ii] /= lu(ii, ii);
  }
  return x;
}

NormalEquations fused_normal_equations(const Matrix& a,
                                       std::span<const double> y,
                                       double ridge) {
  const std::size_t n = a.rows();
  const std::size_t k = a.cols();
  if (y.size() != n) {
    throw std::invalid_argument("fused_normal_equations: dimension mismatch");
  }
  NormalEquations out;
  out.ata = Matrix(k, k);  // Zero-filled: both kernels below accumulate.
  out.atb.assign(k, 0.0);
  assert(!ranges_overlap(out.atb.data(), out.atb.size(), y.data(), y.size()));
  // One streaming pass over A's rows: each row contributes a rank-1 update
  // to the upper triangle of A^T A and one term to every A^T y entry. The
  // k x k accumulator stays cache-resident (k is tens of columns), and the
  // row-major traversal reads A exactly once with no transpose copy.
  // Accumulation is in ascending row order — the same term order as the
  // reference (a.transpose() * a, a.transpose().apply(y)) — so the result
  // is bit-identical for finite inputs.
  // Each ata entry is its own accumulator receiving one mul+add per row,
  // so the runtime-dispatched row kernel (vectorized across j) keeps the
  // exact reference chain per entry.
  for (std::size_t r = 0; r < n; ++r) {
    fne_row_update(&out.ata(0, 0), out.atb.data(), a.row(r).data(), y[r], k);
  }
  // Mirror the upper triangle (a(r,i)*a(r,j) and a(r,j)*a(r,i) are the
  // same IEEE products, so the mirrored entries match the reference), then
  // apply the ridge.
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = i + 1; j < k; ++j) out.ata(j, i) = out.ata(i, j);
    out.ata(i, i) += ridge;
  }
  return out;
}

std::vector<double> solve_least_squares(const Matrix& a,
                                        std::span<const double> b,
                                        double ridge) {
  if (a.rows() < a.cols()) {
    throw std::invalid_argument("solve_least_squares: underdetermined system");
  }
  if (b.size() != a.rows()) {
    throw std::invalid_argument("solve_least_squares: dimension mismatch");
  }
  // Flop model: the fused A^T A / A^T y pass (~n*k*(k+2)) plus the k^3/3
  // Cholesky; close enough for a throughput counter.
  ACBM_COUNT("ols.solves", 1);
  ACBM_COUNT("ols.flops", a.rows() * a.cols() * (a.cols() + 2) +
                              a.cols() * a.cols() * a.cols() / 3);
  const NormalEquations ne = fused_normal_equations(a, b, ridge);
  // Cholesky is valid because A^T A + ridge I is SPD whenever ridge > 0;
  // fall back to LU if the ridge was set to zero and conditioning is bad.
  try {
    return solve_cholesky(ne.ata, ne.atb);
  } catch (const std::domain_error&) {
    return solve_lu(ne.ata, ne.atb);
  }
}

}  // namespace acbm::stats
