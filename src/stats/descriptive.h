// Descriptive statistics used throughout feature extraction and evaluation:
// moments, coefficient of variation (Table I), quantiles, autocorrelation.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace acbm::stats {

/// Arithmetic mean; returns 0 for an empty input.
[[nodiscard]] double mean(std::span<const double> xs);

/// Unbiased sample variance (n-1 denominator); returns 0 for n < 2.
[[nodiscard]] double variance(std::span<const double> xs);

/// Population variance (n denominator); returns 0 for empty input.
[[nodiscard]] double population_variance(std::span<const double> xs);

/// Sample standard deviation.
[[nodiscard]] double stddev(std::span<const double> xs);

/// Coefficient of variation: stddev / mean. The paper's Table I uses this to
/// measure stability of per-family daily attack counts. Returns 0 when the
/// mean is 0.
[[nodiscard]] double coefficient_of_variation(std::span<const double> xs);

[[nodiscard]] double min_value(std::span<const double> xs);
[[nodiscard]] double max_value(std::span<const double> xs);

/// Median via the quantile function below.
[[nodiscard]] double median(std::span<const double> xs);

/// Linear-interpolation quantile, p in [0, 1]. Throws std::invalid_argument
/// on an empty input or p outside [0, 1].
[[nodiscard]] double quantile(std::span<const double> xs, double p);

/// Sample skewness (Fisher-Pearson, bias-uncorrected); 0 for n < 3 or zero sd.
[[nodiscard]] double skewness(std::span<const double> xs);

/// Lag-k sample autocorrelation of a series; 0 when undefined
/// (k >= n or zero variance).
[[nodiscard]] double autocorrelation(std::span<const double> xs, std::size_t lag);

/// Autocorrelation function for lags 0..max_lag inclusive (acf[0] == 1 when
/// defined).
[[nodiscard]] std::vector<double> acf(std::span<const double> xs,
                                      std::size_t max_lag);

/// Pearson correlation of two equal-length series; 0 when either side has
/// zero variance. Throws std::invalid_argument on length mismatch.
[[nodiscard]] double pearson_correlation(std::span<const double> xs,
                                         std::span<const double> ys);

/// Z-score normalization parameters for a series.
struct ZScore {
  double mean = 0.0;
  double sd = 1.0;

  [[nodiscard]] double transform(double x) const noexcept {
    return (x - mean) / sd;
  }
  [[nodiscard]] double inverse(double z) const noexcept {
    return z * sd + mean;
  }
};

/// Fits z-score parameters; sd is clamped to a tiny positive value so the
/// transform is always invertible.
[[nodiscard]] ZScore fit_zscore(std::span<const double> xs);

}  // namespace acbm::stats
