// Seeded random number generation for every stochastic component in acbm.
// All simulators take an explicit Rng (or a seed) so runs are reproducible.
#pragma once

#include <cstdint>
#include <random>
#include <span>
#include <vector>

namespace acbm::stats {

/// Mixes a base seed and a task index into an independent substream seed
/// (a splitmix64 finalizer over seed ^ hash(index)). Parallel tasks seeded
/// this way draw identical streams regardless of scheduling or thread
/// count — the foundation of the runtime's determinism contract.
[[nodiscard]] std::uint64_t substream_seed(std::uint64_t seed,
                                           std::uint64_t index);

/// Deterministic pseudo-random source wrapping std::mt19937_64 with the draw
/// helpers the trace generator and model trainers need.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : seed_(seed), engine_(seed) {}

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo = 0.0, double hi = 1.0);

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Normal draw with the given mean and standard deviation (sigma >= 0).
  [[nodiscard]] double normal(double mean = 0.0, double sigma = 1.0);

  /// Log-normal draw: exp(N(mu, sigma)).
  [[nodiscard]] double lognormal(double mu, double sigma);

  /// Poisson draw with the given rate (lambda >= 0; lambda == 0 yields 0).
  [[nodiscard]] std::uint64_t poisson(double lambda);

  /// Exponential draw with the given rate (> 0).
  [[nodiscard]] double exponential(double rate);

  /// Pareto (type I) draw with scale x_m > 0 and shape alpha > 0.
  [[nodiscard]] double pareto(double x_m, double alpha);

  /// Bernoulli draw with success probability p in [0, 1].
  [[nodiscard]] bool bernoulli(double p);

  /// Index draw from unnormalized non-negative weights.
  /// Throws std::invalid_argument if weights are empty or all zero.
  [[nodiscard]] std::size_t categorical(std::span<const double> weights);

  /// Zipf-distributed rank in [0, n) with exponent s >= 0 (s == 0 is uniform).
  [[nodiscard]] std::size_t zipf(std::size_t n, double s);

  /// Sample k distinct indices from [0, n) uniformly (k <= n),
  /// in no particular order.
  [[nodiscard]] std::vector<std::size_t> sample_without_replacement(
      std::size_t n, std::size_t k);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Derives an independent child generator (for parallel components that
  /// must not share a stream). Advances this generator, so successive forks
  /// differ; use substream() when the derivation must be order-independent.
  [[nodiscard]] Rng fork();

  /// Derives the `index`-th independent substream from this generator's
  /// construction seed without advancing it: substream(i) is the same Rng
  /// no matter when, how often, or from which thread it is requested.
  [[nodiscard]] Rng substream(std::uint64_t index) const {
    return Rng(substream_seed(seed_, index));
  }

  [[nodiscard]] std::mt19937_64& engine() noexcept { return engine_; }

 private:
  std::uint64_t seed_ = 0;
  std::mt19937_64 engine_;
};

}  // namespace acbm::stats
