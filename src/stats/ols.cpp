#include "stats/ols.h"

#include <cmath>
#include <stdexcept>

#include "core/robust.h"
#include "stats/descriptive.h"
#include "stats/metrics.h"
#include "stats/serialize.h"

namespace acbm::stats {

void LinearRegression::fit(const Matrix& x, std::span<const double> y) {
  const std::size_t n = x.rows();
  const std::size_t k = x.cols();
  if (y.size() != n) {
    throw std::invalid_argument("LinearRegression::fit: row count mismatch");
  }
  const std::size_t params = k + (opts_.fit_intercept ? 1 : 0);
  if (n < params || params == 0) {
    throw std::invalid_argument(
        "LinearRegression::fit: not enough samples for parameter count");
  }

  // Every element is written below, so the design storage is sized once
  // with no zero-fill pass.
  Matrix design = Matrix::uninitialized(n, params);
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t j = 0;
    if (opts_.fit_intercept) design(i, j++) = 1.0;
    for (std::size_t c = 0; c < k; ++c) design(i, j++) = x(i, c);
  }

  // A singular (or numerically collapsed) normal-equation system surfaces
  // either as a solver failure or as non-finite coefficients; both become a
  // typed FitFailure so callers can walk down their degradation ladder.
  std::vector<double> beta;
  try {
    beta = solve_least_squares(design, y, opts_.ridge);
  } catch (const std::domain_error& e) {
    throw core::FitFailure(core::FitError::kSingularSystem,
                           std::string("LinearRegression::fit: ") + e.what());
  }
  for (double b : beta) {
    if (std::isfinite(b)) continue;
    // Distinguish bad inputs from a genuinely singular system.
    for (std::size_t i = 0; i < n; ++i) {
      if (!std::isfinite(y[i])) {
        throw core::FitFailure(core::FitError::kNonfiniteInput,
                               "LinearRegression::fit: non-finite target");
      }
      for (std::size_t c = 0; c < k; ++c) {
        if (!std::isfinite(x(i, c))) {
          throw core::FitFailure(core::FitError::kNonfiniteInput,
                                 "LinearRegression::fit: non-finite feature");
        }
      }
    }
    throw core::FitFailure(core::FitError::kSingularSystem,
                           "LinearRegression::fit: non-finite coefficients");
  }
  std::size_t j = 0;
  intercept_ = opts_.fit_intercept ? beta[j++] : 0.0;
  coef_.assign(beta.begin() + static_cast<std::ptrdiff_t>(j), beta.end());
  fitted_ = true;

  // In-sample diagnostics in one residual pass: ss_res and ss_tot are
  // accumulated exactly as stats::r_squared does (same term order, so r2_
  // is bit-identical), but the predictions are consumed as they stream and
  // the former third pass over the residuals is gone.
  const std::vector<double> fit_pred = predict(x);
  const double y_mean = stats::mean(y);
  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    ss_res += (y[i] - fit_pred[i]) * (y[i] - fit_pred[i]);
    ss_tot += (y[i] - y_mean) * (y[i] - y_mean);
  }
  r2_ = ss_tot <= 0.0 ? 0.0 : 1.0 - ss_res / ss_tot;
  const std::size_t dof = n > params ? n - params : 1;
  residual_sd_ = std::sqrt(ss_res / static_cast<double>(dof));
}

double LinearRegression::predict(std::span<const double> features) const {
  if (!fitted_) throw std::logic_error("LinearRegression::predict: not fitted");
  if (features.size() != coef_.size()) {
    throw std::invalid_argument("LinearRegression::predict: feature count mismatch");
  }
  double acc = intercept_;
  for (std::size_t i = 0; i < coef_.size(); ++i) acc += coef_[i] * features[i];
  return acc;
}

std::vector<double> LinearRegression::predict(const Matrix& x) const {
  std::vector<double> out;
  out.reserve(x.rows());
  for (std::size_t i = 0; i < x.rows(); ++i) {
    out.push_back(predict(x.row(i)));
  }
  return out;
}

void LinearRegression::save(std::ostream& os) const {
  io::write_header(os, "ols", 1);
  io::write_scalar(os, "fit_intercept", opts_.fit_intercept ? 1 : 0);
  io::write_scalar(os, "ridge", opts_.ridge);
  io::write_scalar(os, "fitted", fitted_ ? 1 : 0);
  io::write_scalar(os, "intercept", intercept_);
  io::write_scalar(os, "r2", r2_);
  io::write_scalar(os, "residual_sd", residual_sd_);
  io::write_vector<double>(os, "coef", coef_);
}

LinearRegression LinearRegression::load(std::istream& is) {
  io::expect_header(is, "ols", 1);
  Options opts;
  opts.fit_intercept = io::read_scalar<int>(is, "fit_intercept") != 0;
  opts.ridge = io::read_scalar<double>(is, "ridge");
  LinearRegression reg(opts);
  reg.fitted_ = io::read_scalar<int>(is, "fitted") != 0;
  reg.intercept_ = io::read_scalar<double>(is, "intercept");
  reg.r2_ = io::read_scalar<double>(is, "r2");
  reg.residual_sd_ = io::read_scalar<double>(is, "residual_sd");
  reg.coef_ = io::read_vector<double>(is, "coef");
  return reg;
}

Matrix design_matrix(const std::vector<std::vector<double>>& rows) {
  if (rows.empty()) return {};
  const std::size_t k = rows.front().size();
  Matrix m(rows.size(), k);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (rows[i].size() != k) {
      throw std::invalid_argument("design_matrix: ragged rows");
    }
    for (std::size_t j = 0; j < k; ++j) m(i, j) = rows[i][j];
  }
  return m;
}

}  // namespace acbm::stats
