// Silhouette coefficient (Rousseeuw 1987). The paper's source-distribution
// feature A^s (Eq. 3) is "inspired by the silhouette coefficient"; we provide
// the real coefficient for validation and analysis alongside the paper's
// variant implemented in acbm::core.
#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

namespace acbm::stats {

/// Pairwise distance callback between items i and j.
using DistanceFn = std::function<double(std::size_t, std::size_t)>;

/// Silhouette value s(i) in [-1, 1] for each item given cluster labels and a
/// distance function. Items in singleton clusters get s(i) = 0 by convention.
/// Throws std::invalid_argument when labels are empty.
[[nodiscard]] std::vector<double> silhouette_values(
    std::span<const std::size_t> labels, const DistanceFn& distance);

/// Mean silhouette over all items.
[[nodiscard]] double silhouette_score(std::span<const std::size_t> labels,
                                      const DistanceFn& distance);

}  // namespace acbm::stats
