// Small fused dense kernels for the model-fitting and serving hot loops:
// GEMV (optionally fused with tanh), row-range GEMM, the streamed
// normal-equations row update, and f32 inference GEMV. Each kernel has a
// scalar reference implementation plus runtime-dispatched SIMD variants
// (AVX2 on x86-64, NEON on aarch64) selected per call by `active_isa()`.
//
// Bit-identity contract: with fast_math() off (the default), every SIMD
// variant performs the exact same IEEE-754 operations in the exact same
// per-element order as the scalar reference — vectorization happens across
// independent accumulators (output lanes), never by splitting one
// accumulation chain. Results are bit-identical across scalar/AVX2/NEON.
// With ACBM_FAST_MATH opted in (env or --fast-math), kernels may use FMA
// and in-register horizontal reductions, which reorders accumulation; the
// results then agree with scalar only to rounding tolerance (property
// tests in tests/stats/ bound the error).
#pragma once

#include <cstddef>
#include <span>

namespace acbm::stats {

/// Instruction sets the dispatcher can select between.
enum class SimdIsa { kScalar, kAvx2, kNeon };

/// Short lowercase name ("scalar", "avx2", "neon") for logs and bench JSON.
[[nodiscard]] const char* isa_name(SimdIsa isa) noexcept;

/// Best ISA this build + CPU supports (compile-time TU availability AND
/// runtime CPUID probe). Computed once; unaffected by set_active_isa().
[[nodiscard]] SimdIsa detected_isa() noexcept;

/// ISA used by subsequent kernel calls. Starts at detected_isa(), unless
/// the ACBM_SIMD environment variable is "0"/"off"/"scalar" which forces
/// kScalar. Each kernel call bumps the matching
/// `kernels.dispatch.{scalar,avx2,neon}` counter.
[[nodiscard]] SimdIsa active_isa() noexcept;

/// Overrides the active ISA (clamped to detected_isa() — requesting an
/// unsupported ISA selects scalar). For scalar-vs-SIMD agreement tests and
/// in-binary benchmark comparisons.
void set_active_isa(SimdIsa isa) noexcept;

/// Whether reordering (FMA / horizontal-reduction) kernel variants are
/// enabled. Defaults from the ACBM_FAST_MATH environment variable ("1",
/// "on", "true"); the CLI exposes --fast-math. Off = bit-identity.
[[nodiscard]] bool fast_math() noexcept;
void set_fast_math(bool on) noexcept;

/// out[o] = bias[o] + sum_i weights[o * x.size() + i] * x[i].
/// weights is row-major [out.size() x x.size()]. `out` must not alias
/// `weights`, `bias`, or `x` (asserted in debug builds).
void gemv(std::span<const double> weights, std::span<const double> bias,
          std::span<const double> x, std::span<double> out);

/// Fused GEMV + tanh: out[o] = tanh(bias[o] + sum_i w[o][i] * x[i]).
/// Identical accumulation order to gemv; the activation is applied to the
/// finished accumulator, so the result is bit-identical to
/// gemv-then-tanh without the intermediate store/reload pass.
void gemv_tanh(std::span<const double> weights, std::span<const double> bias,
               std::span<const double> x, std::span<double> out);

/// Computes rows [row_begin, row_end) of C = A·B over row-major buffers:
/// A is [m x cols_a], B is [cols_a x cols_b], C is [m x cols_b]. Each
/// output element accumulates in ascending-k order from a zero start, so
/// the result is bit-identical to a per-element sequential dot product
/// (the contract Matrix::operator* documents for its blocked path).
/// Buffers must not overlap.
void gemm_row_range(const double* a, const double* b, double* c,
                    std::size_t row_begin, std::size_t row_end,
                    std::size_t cols_a, std::size_t cols_b);

/// One streamed row of the fused normal-equations accumulation
/// (Matrix::fused_normal_equations): for i in [0,k):
///   atb[i] += a_row[i] * yr;  ata[i*k + j] += a_row[i] * a_row[j]  (j >= i)
/// Upper triangle only; the caller mirrors and applies ridge afterwards.
/// Every ata entry is its own accumulator (one mul+add per row), so
/// vectorizing across j preserves bit-identity.
void fne_row_update(double* ata, double* atb, const double* a_row, double yr,
                    std::size_t k);

/// f32 inference GEMV over *transposed* (input-major) weights:
///   out[o] = bias[o] + sum_i weights_t[i * out.size() + o] * x[i]
/// The transposed layout makes the output lanes contiguous, so SIMD
/// vectorizes across outputs with unit-stride loads while each lane keeps
/// the scalar ascending-i accumulation order (bit-identical to the scalar
/// reference, fast-math off). `out` must not alias the inputs.
void gemv_t_f32(std::span<const float> weights_t, std::span<const float> bias,
                std::span<const float> x, std::span<float> out);

/// Fused f32 GEMV + tanh over transposed weights (see gemv_t_f32).
void gemv_t_tanh_f32(std::span<const float> weights_t,
                     std::span<const float> bias, std::span<const float> x,
                     std::span<float> out);

/// Sequential dot product: start + sum_i a[i] * b[i] in ascending-i order,
/// one accumulator. This IS the bit-identity reference (never vectorized;
/// fast-math has no effect), shared by the serving-path mirrors of
/// LinearRegression::predict and the ARIMA forecast recurrences so their
/// accumulation order provably matches the fitting-side code.
[[nodiscard]] double dot(std::span<const double> a, std::span<const double> b,
                         double start = 0.0) noexcept;

}  // namespace acbm::stats
