// Small fused dense kernels for the model-fitting hot loops: GEMV with an
// optionally fused tanh activation, written against preallocated output
// spans so callers (the MLP trainer) run allocation-free inside their epoch
// loops. All kernels accumulate in plain sequential order — they are
// drop-in bit-identical replacements for the naive loops they fuse.
#pragma once

#include <cstddef>
#include <span>

namespace acbm::stats {

/// out[o] = bias[o] + sum_i weights[o * x.size() + i] * x[i].
/// weights is row-major [out.size() x x.size()]. `out` must not alias
/// `weights`, `bias`, or `x` (asserted in debug builds).
void gemv(std::span<const double> weights, std::span<const double> bias,
          std::span<const double> x, std::span<double> out);

/// Fused GEMV + tanh: out[o] = tanh(bias[o] + sum_i w[o][i] * x[i]).
/// Identical accumulation order to gemv; the activation is applied to the
/// finished accumulator, so the result is bit-identical to
/// gemv-then-tanh without the intermediate store/reload pass.
void gemv_tanh(std::span<const double> weights, std::span<const double> bias,
               std::span<const double> x, std::span<double> out);

}  // namespace acbm::stats
