#include "stats/descriptive.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace acbm::stats {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double acc = 0.0;
  for (double x : xs) acc += x;
  return acc / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size() - 1);
}

double population_variance(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double coefficient_of_variation(std::span<const double> xs) {
  const double m = mean(xs);
  if (m == 0.0) return 0.0;
  return stddev(xs) / m;
}

double min_value(std::span<const double> xs) {
  if (xs.empty()) throw std::invalid_argument("min_value: empty input");
  return *std::min_element(xs.begin(), xs.end());
}

double max_value(std::span<const double> xs) {
  if (xs.empty()) throw std::invalid_argument("max_value: empty input");
  return *std::max_element(xs.begin(), xs.end());
}

double median(std::span<const double> xs) { return quantile(xs, 0.5); }

double quantile(std::span<const double> xs, double p) {
  if (xs.empty()) throw std::invalid_argument("quantile: empty input");
  if (p < 0.0 || p > 1.0) throw std::invalid_argument("quantile: p out of [0,1]");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double idx = p * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(idx));
  const auto hi = static_cast<std::size_t>(std::ceil(idx));
  const double frac = idx - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double skewness(std::span<const double> xs) {
  if (xs.size() < 3) return 0.0;
  const double m = mean(xs);
  double m2 = 0.0;
  double m3 = 0.0;
  for (double x : xs) {
    const double d = x - m;
    m2 += d * d;
    m3 += d * d * d;
  }
  const auto n = static_cast<double>(xs.size());
  m2 /= n;
  m3 /= n;
  if (m2 <= 0.0) return 0.0;
  return m3 / std::pow(m2, 1.5);
}

double autocorrelation(std::span<const double> xs, std::size_t lag) {
  const std::size_t n = xs.size();
  if (lag >= n) return 0.0;
  const double m = mean(xs);
  double denom = 0.0;
  for (double x : xs) denom += (x - m) * (x - m);
  if (denom <= 0.0) return 0.0;
  double num = 0.0;
  for (std::size_t t = lag; t < n; ++t) {
    num += (xs[t] - m) * (xs[t - lag] - m);
  }
  return num / denom;
}

std::vector<double> acf(std::span<const double> xs, std::size_t max_lag) {
  std::vector<double> out;
  out.reserve(max_lag + 1);
  for (std::size_t k = 0; k <= max_lag; ++k) {
    out.push_back(autocorrelation(xs, k));
  }
  return out;
}

double pearson_correlation(std::span<const double> xs,
                           std::span<const double> ys) {
  if (xs.size() != ys.size()) {
    throw std::invalid_argument("pearson_correlation: length mismatch");
  }
  if (xs.size() < 2) return 0.0;
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

ZScore fit_zscore(std::span<const double> xs) {
  ZScore z;
  z.mean = mean(xs);
  z.sd = std::max(stddev(xs), 1e-12);
  return z;
}

}  // namespace acbm::stats
