// k-means clustering with k-means++ seeding. Paired with the silhouette
// coefficient (silhouette.h, the validation method the paper's A^s feature
// is modeled after) it supports unsupervised botnet-family attribution over
// attack feature vectors (see examples and bench_ext_attribution).
#pragma once

#include <cstddef>
#include <vector>

#include "stats/matrix.h"
#include "stats/rng.h"

namespace acbm::stats {

struct KMeansOptions {
  std::size_t k = 2;
  std::size_t max_iterations = 100;
  /// Independent k-means++ restarts; the lowest-inertia run wins.
  std::size_t restarts = 4;
};

struct KMeansResult {
  Matrix centroids;                  ///< k x d.
  std::vector<std::size_t> labels;   ///< Cluster index per input row.
  double inertia = 0.0;              ///< Sum of squared distances to centroids.
  std::size_t iterations = 0;        ///< Of the winning run.
};

/// Clusters the rows of an n x d matrix. Throws std::invalid_argument when
/// k == 0, k > n, or the matrix is empty.
[[nodiscard]] KMeansResult kmeans(const Matrix& data, const KMeansOptions& opts,
                                  Rng& rng);

/// Clustering-vs-truth agreement: for each cluster take its majority true
/// label; purity is the fraction of points whose cluster majority matches
/// their own label. Throws std::invalid_argument on length mismatch or
/// empty input.
[[nodiscard]] double cluster_purity(std::span<const std::size_t> labels,
                                    std::span<const std::size_t> truth);

}  // namespace acbm::stats
