#include "stats/metrics.h"

#include <cmath>
#include <stdexcept>

#include "stats/descriptive.h"

namespace acbm::stats {

namespace {
void check_pair(std::span<const double> truth, std::span<const double> pred) {
  if (truth.size() != pred.size()) {
    throw std::invalid_argument("metrics: length mismatch");
  }
  if (truth.empty()) {
    throw std::invalid_argument("metrics: empty input");
  }
}
}  // namespace

double rmse(std::span<const double> truth, std::span<const double> pred) {
  check_pair(truth, pred);
  double acc = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    const double d = truth[i] - pred[i];
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(truth.size()));
}

double mae(std::span<const double> truth, std::span<const double> pred) {
  check_pair(truth, pred);
  double acc = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    acc += std::abs(truth[i] - pred[i]);
  }
  return acc / static_cast<double>(truth.size());
}

double mape(std::span<const double> truth, std::span<const double> pred) {
  check_pair(truth, pred);
  double acc = 0.0;
  std::size_t count = 0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    if (truth[i] == 0.0) continue;
    acc += std::abs((truth[i] - pred[i]) / truth[i]);
    ++count;
  }
  return count == 0 ? 0.0 : acc / static_cast<double>(count);
}

double r_squared(std::span<const double> truth, std::span<const double> pred) {
  check_pair(truth, pred);
  const double m = mean(truth);
  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    ss_res += (truth[i] - pred[i]) * (truth[i] - pred[i]);
    ss_tot += (truth[i] - m) * (truth[i] - m);
  }
  if (ss_tot <= 0.0) return 0.0;
  return 1.0 - ss_res / ss_tot;
}

double smape(std::span<const double> truth, std::span<const double> pred) {
  check_pair(truth, pred);
  double acc = 0.0;
  std::size_t count = 0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    const double denom = (std::abs(truth[i]) + std::abs(pred[i])) / 2.0;
    if (denom == 0.0) continue;
    acc += std::abs(truth[i] - pred[i]) / denom;
    ++count;
  }
  return count == 0 ? 0.0 : acc / static_cast<double>(count);
}

}  // namespace acbm::stats
