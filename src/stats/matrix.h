// Dense row-major matrix and the small set of linear-algebra routines the
// modeling stack needs: products, transpose, fused normal equations,
// Cholesky and partially-pivoted LU solves. Sized for regression problems
// (tens of columns), not HPC.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace acbm::stats {

namespace detail {

/// std::allocator whose value-initialization is default-initialization:
/// `resize` on a vector of doubles leaves the elements uninitialized, so a
/// kernel that fully overwrites its output (transpose, the blocked GEMM
/// path) skips the redundant zero-fill pass over the storage. Explicit
/// fills (Matrix(r, c, fill), assign) are unaffected — they construct with
/// an argument.
template <typename T>
struct DefaultInitAllocator : std::allocator<T> {
  template <typename U>
  struct rebind {
    using other = DefaultInitAllocator<U>;
  };
  template <typename U, typename... Args>
  void construct(U* p, Args&&... args) {
    if constexpr (sizeof...(Args) == 0) {
      ::new (static_cast<void*>(p)) U;
    } else {
      ::new (static_cast<void*>(p)) U(std::forward<Args>(args)...);
    }
  }
};

}  // namespace detail

/// Dense row-major matrix of doubles with value semantics.
///
/// Invariant: data_.size() == rows_ * cols_. A default-constructed Matrix is
/// the empty 0x0 matrix.
class Matrix {
 public:
  Matrix() = default;

  /// Creates a rows x cols matrix filled with `fill`.
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  /// Creates a matrix from nested initializer lists; all rows must have the
  /// same length. Throws std::invalid_argument on ragged input.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  [[nodiscard]] double& operator()(std::size_t r, std::size_t c) noexcept {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] double operator()(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }

  /// Bounds-checked element access; throws std::out_of_range.
  [[nodiscard]] double& at(std::size_t r, std::size_t c);
  [[nodiscard]] double at(std::size_t r, std::size_t c) const;

  /// View of row `r` as a contiguous span.
  [[nodiscard]] std::span<double> row(std::size_t r);
  [[nodiscard]] std::span<const double> row(std::size_t r) const;

  /// Returns the identity matrix of size n.
  [[nodiscard]] static Matrix identity(std::size_t n);

  /// Returns a rows x cols matrix whose storage is sized but NOT
  /// initialized: every element must be written before it is read. For
  /// kernels that fully overwrite their output and would waste a pass
  /// zero-filling it first.
  [[nodiscard]] static Matrix uninitialized(std::size_t rows,
                                            std::size_t cols);

  [[nodiscard]] Matrix transpose() const;

  /// Matrix product; throws std::invalid_argument on dimension mismatch.
  [[nodiscard]] Matrix operator*(const Matrix& rhs) const;
  [[nodiscard]] Matrix operator+(const Matrix& rhs) const;
  [[nodiscard]] Matrix operator-(const Matrix& rhs) const;
  [[nodiscard]] Matrix operator*(double scalar) const;

  /// Matrix-vector product; x.size() must equal cols().
  [[nodiscard]] std::vector<double> apply(std::span<const double> x) const;

  /// Frobenius norm.
  [[nodiscard]] double frobenius_norm() const;

  /// Human-readable rendering, mainly for diagnostics/tests.
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Matrix&, const Matrix&) = default;

 private:
  struct Uninit {};  // Tag: size the storage without initializing it.
  Matrix(std::size_t rows, std::size_t cols, Uninit);

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double, detail::DefaultInitAllocator<double>> data_;
};

/// Solves A x = b for symmetric positive-definite A via Cholesky.
/// Throws std::domain_error if A is not SPD (within a small tolerance).
[[nodiscard]] std::vector<double> solve_cholesky(const Matrix& a,
                                                 std::span<const double> b);

/// Solves A x = b for general square A via LU with partial pivoting.
/// Throws std::domain_error if A is singular to working precision.
[[nodiscard]] std::vector<double> solve_lu(const Matrix& a,
                                           std::span<const double> b);

/// The normal-equations system A^T A (+ ridge I) and A^T y.
struct NormalEquations {
  Matrix ata;
  std::vector<double> atb;
};

/// Fused normal-equations kernel: accumulates A^T A and A^T y in one pass
/// over A's rows without materializing the transpose, exploiting symmetry
/// (only the upper triangle is computed, then mirrored). For finite inputs
/// the result is bit-identical to the reference
/// (a.transpose() * a, a.transpose().apply(y)) — products are accumulated
/// in the same row order. `ridge` is added to the diagonal afterwards.
/// Requires y.size() == a.rows(); throws std::invalid_argument otherwise.
[[nodiscard]] NormalEquations fused_normal_equations(const Matrix& a,
                                                     std::span<const double> y,
                                                     double ridge = 0.0);

/// Solves the least-squares problem min ||A x - b||_2 via the normal
/// equations with a small ridge term for numerical stability.
/// A must have rows() >= cols(). `ridge` is added to the diagonal of A^T A.
[[nodiscard]] std::vector<double> solve_least_squares(const Matrix& a,
                                                      std::span<const double> b,
                                                      double ridge = 1e-10);

}  // namespace acbm::stats
