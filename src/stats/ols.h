// Multivariate linear regression (MLR). This is both a model in its own
// right (the leaves of the spatiotemporal model tree, Eq. 8-10) and the
// workhorse behind AR/ARMA estimation in acbm::ts.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <span>
#include <vector>

#include "stats/matrix.h"

namespace acbm::stats {

/// Ordinary least squares y = b0 + b1 x1 + ... + bk xk, fit via the normal
/// equations with a small ridge stabilizer.
class LinearRegression {
 public:
  struct Options {
    bool fit_intercept = true;
    double ridge = 1e-8;  ///< Added to the diagonal of X^T X.
  };

  LinearRegression() = default;
  explicit LinearRegression(Options opts) : opts_(opts) {}

  /// Fits the model. `x` is n x k (n samples, k features), `y` has n entries.
  /// Requires n >= k (+1 with intercept); throws std::invalid_argument
  /// otherwise.
  void fit(const Matrix& x, std::span<const double> y);

  /// Predicts a single sample of k features.
  [[nodiscard]] double predict(std::span<const double> features) const;

  /// Predicts all rows of an n x k matrix.
  [[nodiscard]] std::vector<double> predict(const Matrix& x) const;

  [[nodiscard]] bool fitted() const noexcept { return fitted_; }
  [[nodiscard]] double intercept() const noexcept { return intercept_; }
  [[nodiscard]] const std::vector<double>& coefficients() const noexcept {
    return coef_;
  }

  /// In-sample R^2 from the last fit.
  [[nodiscard]] double r_squared() const noexcept { return r2_; }

  /// Residual standard error from the last fit.
  [[nodiscard]] double residual_sd() const noexcept { return residual_sd_; }

  /// Text serialization of the fitted state (see stats/serialize.h).
  void save(std::ostream& os) const;
  [[nodiscard]] static LinearRegression load(std::istream& is);

 private:
  Options opts_;
  std::vector<double> coef_;
  double intercept_ = 0.0;
  double r2_ = 0.0;
  double residual_sd_ = 0.0;
  bool fitted_ = false;
};

/// Convenience builder: packs rows of equal-length feature vectors into a
/// design matrix. Throws std::invalid_argument on ragged rows.
[[nodiscard]] Matrix design_matrix(
    const std::vector<std::vector<double>>& rows);

}  // namespace acbm::stats
