// NEON microkernels (aarch64). Same bit-identity discipline as
// kernels_avx2.cpp: the default-path kernels vectorize across independent
// output accumulators with separate multiply and add (this TU is built
// with -ffp-contract=off so the compiler cannot fuse them), keeping every
// accumulation chain in the scalar reference's order. Explicit-FMA
// variants are reachable only through the ACBM_FAST_MATH opt-in.

#include <arm_neon.h>

#include <cmath>
#include <cstddef>

#include "stats/kernels_dispatch.h"

namespace acbm::stats::detail {

namespace {

template <bool kFma>
inline float64x2_t mul_acc(float64x2_t acc, float64x2_t a, float64x2_t b) {
  if constexpr (kFma) return vfmaq_f64(acc, a, b);
  return vaddq_f64(acc, vmulq_f64(a, b));
}

template <bool kFma>
inline float32x4_t mul_acc_f32(float32x4_t acc, float32x4_t a,
                               float32x4_t b) {
  if constexpr (kFma) return vfmaq_f32(acc, a, b);
  return vaddq_f32(acc, vmulq_f32(a, b));
}

// ---------------------------------------------------------------------------
// f64 gemv: 2 output rows per vector, lane-stable.
// ---------------------------------------------------------------------------

template <bool kTanh, bool kFma>
void gemv_neon(const double* w, const double* bias, const double* x,
               double* out, std::size_t out_dim, std::size_t in) {
  std::size_t o = 0;
  for (; o + 2 <= out_dim; o += 2) {
    const double* r0 = w + o * in;
    const double* r1 = r0 + in;
    float64x2_t acc = vld1q_f64(bias + o);
    std::size_t i = 0;
    for (; i + 2 <= in; i += 2) {
      const float64x2_t a0 = vld1q_f64(r0 + i);
      const float64x2_t a1 = vld1q_f64(r1 + i);
      // Columns: {r0[i], r1[i]} and {r0[i+1], r1[i+1]}.
      const float64x2_t c0 = vzip1q_f64(a0, a1);
      const float64x2_t c1 = vzip2q_f64(a0, a1);
      acc = mul_acc<kFma>(acc, c0, vdupq_n_f64(x[i]));
      acc = mul_acc<kFma>(acc, c1, vdupq_n_f64(x[i + 1]));
    }
    for (; i < in; ++i) {
      const float64x2_t col =
          vsetq_lane_f64(r1[i], vdupq_n_f64(r0[i]), 1);
      acc = mul_acc<kFma>(acc, col, vdupq_n_f64(x[i]));
    }
    if constexpr (kTanh) {
      out[o] = std::tanh(vgetq_lane_f64(acc, 0));
      out[o + 1] = std::tanh(vgetq_lane_f64(acc, 1));
    } else {
      vst1q_f64(out + o, acc);
    }
  }
  for (; o < out_dim; ++o) {
    double z = bias[o];
    const double* row = w + o * in;
    for (std::size_t i = 0; i < in; ++i) z += row[i] * x[i];
    out[o] = kTanh ? std::tanh(z) : z;
  }
}

// ---------------------------------------------------------------------------
// f64 gemm row range: k-outer broadcast, register-blocked over j.
// ---------------------------------------------------------------------------

template <bool kFma>
void gemm_rows_neon(const double* a, const double* b, double* c,
                    std::size_t row_begin, std::size_t row_end,
                    std::size_t cols_a, std::size_t cols_b) {
  for (std::size_t i = row_begin; i < row_end; ++i) {
    const double* a_row = a + i * cols_a;
    double* c_row = c + i * cols_b;
    std::size_t j = 0;
    for (; j + 8 <= cols_b; j += 8) {
      float64x2_t acc0 = vdupq_n_f64(0.0);
      float64x2_t acc1 = vdupq_n_f64(0.0);
      float64x2_t acc2 = vdupq_n_f64(0.0);
      float64x2_t acc3 = vdupq_n_f64(0.0);
      for (std::size_t k = 0; k < cols_a; ++k) {
        const float64x2_t av = vdupq_n_f64(a_row[k]);
        const double* b_row = b + k * cols_b + j;
        acc0 = mul_acc<kFma>(acc0, av, vld1q_f64(b_row));
        acc1 = mul_acc<kFma>(acc1, av, vld1q_f64(b_row + 2));
        acc2 = mul_acc<kFma>(acc2, av, vld1q_f64(b_row + 4));
        acc3 = mul_acc<kFma>(acc3, av, vld1q_f64(b_row + 6));
      }
      vst1q_f64(c_row + j, acc0);
      vst1q_f64(c_row + j + 2, acc1);
      vst1q_f64(c_row + j + 4, acc2);
      vst1q_f64(c_row + j + 6, acc3);
    }
    for (; j + 2 <= cols_b; j += 2) {
      float64x2_t acc = vdupq_n_f64(0.0);
      for (std::size_t k = 0; k < cols_a; ++k) {
        acc = mul_acc<kFma>(acc, vdupq_n_f64(a_row[k]),
                            vld1q_f64(b + k * cols_b + j));
      }
      vst1q_f64(c_row + j, acc);
    }
    for (; j < cols_b; ++j) {
      double acc = 0.0;
      for (std::size_t k = 0; k < cols_a; ++k) {
        acc += a_row[k] * b[k * cols_b + j];
      }
      c_row[j] = acc;
    }
  }
}

// ---------------------------------------------------------------------------
// Fused normal equations row update.
// ---------------------------------------------------------------------------

template <bool kFma>
void fne_row_update_neon(double* ata, double* atb, const double* a_row,
                         double yr, std::size_t k) {
  for (std::size_t i = 0; i < k; ++i) {
    const double ai = a_row[i];
    atb[i] += ai * yr;
    double* ata_row = ata + i * k;
    const float64x2_t av = vdupq_n_f64(ai);
    std::size_t j = i;
    for (; j + 2 <= k; j += 2) {
      const float64x2_t cur = vld1q_f64(ata_row + j);
      vst1q_f64(ata_row + j, mul_acc<kFma>(cur, av, vld1q_f64(a_row + j)));
    }
    for (; j < k; ++j) ata_row[j] += ai * a_row[j];
  }
}

// ---------------------------------------------------------------------------
// f32 inference gemv over transposed weights: 4 output lanes per register.
// ---------------------------------------------------------------------------

template <bool kTanh, bool kFma>
void gemv_t_f32_neon(const float* wt, const float* bias, const float* x,
                     float* out, std::size_t out_dim, std::size_t in) {
  std::size_t o = 0;
  for (; o + 4 <= out_dim; o += 4) {
    float32x4_t acc = vld1q_f32(bias + o);
    for (std::size_t i = 0; i < in; ++i) {
      const float32x4_t w = vld1q_f32(wt + i * out_dim + o);
      acc = mul_acc_f32<kFma>(acc, vdupq_n_f32(x[i]), w);
    }
    if constexpr (kTanh) {
      float z[4];
      vst1q_f32(z, acc);
      for (int l = 0; l < 4; ++l) out[o + l] = std::tanh(z[l]);
    } else {
      vst1q_f32(out + o, acc);
    }
  }
  for (; o < out_dim; ++o) {
    float acc = bias[o];
    for (std::size_t i = 0; i < in; ++i) acc += wt[i * out_dim + o] * x[i];
    out[o] = kTanh ? std::tanh(acc) : acc;
  }
}

const KernelTable kNeonPlain{
    gemv_neon<false, false>,      gemv_neon<true, false>,
    gemm_rows_neon<false>,        fne_row_update_neon<false>,
    gemv_t_f32_neon<false, false>, gemv_t_f32_neon<true, false>,
};

const KernelTable kNeonFastMath{
    gemv_neon<false, true>,       gemv_neon<true, true>,
    gemm_rows_neon<true>,         fne_row_update_neon<true>,
    gemv_t_f32_neon<false, true>, gemv_t_f32_neon<true, true>,
};

}  // namespace

const KernelTable* neon_table(bool fast_math) noexcept {
  return fast_math ? &kNeonFastMath : &kNeonPlain;
}

}  // namespace acbm::stats::detail
