#include "stats/distribution.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace acbm::stats {

EmpiricalCdf::EmpiricalCdf(std::span<const double> sample)
    : sorted_(sample.begin(), sample.end()) {
  if (sorted_.empty()) {
    throw std::invalid_argument("EmpiricalCdf: empty sample");
  }
  std::sort(sorted_.begin(), sorted_.end());
}

double EmpiricalCdf::cdf(double x) const {
  if (sorted_.empty()) return 0.0;
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double EmpiricalCdf::quantile(double p) const {
  if (sorted_.empty()) throw std::logic_error("EmpiricalCdf: not initialized");
  if (p <= 0.0 || p > 1.0) {
    throw std::invalid_argument("EmpiricalCdf::quantile: p out of (0,1]");
  }
  const auto idx = static_cast<std::size_t>(
      std::ceil(p * static_cast<double>(sorted_.size()))) - 1;
  return sorted_[std::min(idx, sorted_.size() - 1)];
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (bins == 0) throw std::invalid_argument("Histogram: bins == 0");
  if (!(lo < hi)) throw std::invalid_argument("Histogram: lo >= hi");
}

void Histogram::add(double x) {
  ++counts_[bin_of(x)];
  ++total_;
}

void Histogram::add_all(std::span<const double> xs) {
  for (double x : xs) add(x);
}

std::size_t Histogram::count(std::size_t bin) const {
  if (bin >= counts_.size()) throw std::out_of_range("Histogram::count");
  return counts_[bin];
}

std::size_t Histogram::bin_of(double x) const {
  if (x <= lo_) return 0;
  if (x >= hi_) return counts_.size() - 1;
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  const auto bin = static_cast<std::size_t>((x - lo_) / width);
  return std::min(bin, counts_.size() - 1);
}

double Histogram::bin_center(std::size_t bin) const {
  if (bin >= counts_.size()) throw std::out_of_range("Histogram::bin_center");
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + (static_cast<double>(bin) + 0.5) * width;
}

std::vector<double> Histogram::frequencies() const {
  std::vector<double> out(counts_.size(), 0.0);
  if (total_ == 0) return out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    out[i] = static_cast<double>(counts_[i]) / static_cast<double>(total_);
  }
  return out;
}

double l1_distance(std::span<const double> p, std::span<const double> q) {
  if (p.size() != q.size()) {
    throw std::invalid_argument("l1_distance: length mismatch");
  }
  double acc = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) acc += std::abs(p[i] - q[i]);
  return acc;
}

double entropy(std::span<const double> freqs) {
  double total = 0.0;
  for (double f : freqs) {
    if (f < 0.0) throw std::invalid_argument("entropy: negative frequency");
    total += f;
  }
  if (total <= 0.0) return 0.0;
  double h = 0.0;
  for (double f : freqs) {
    if (f <= 0.0) continue;
    const double p = f / total;
    h -= p * std::log(p);
  }
  return h;
}

}  // namespace acbm::stats
