#include "stats/kernels.h"

#include <atomic>
#include <cassert>
#include <cmath>
#include <cstdlib>
#include <string_view>

#include "core/observe.h"
#include "stats/kernels_dispatch.h"

namespace acbm::stats {

namespace {

[[maybe_unused]] bool ranges_overlap(const double* p, std::size_t n,
                                     const double* q, std::size_t m) {
  return p < q + m && q < p + n;
}

[[maybe_unused]] bool ranges_overlap_f32(const float* p, std::size_t n,
                                         const float* q, std::size_t m) {
  return p < q + m && q < p + n;
}

/// Single-accumulator 4-wide unrolled dot seeded with `acc` (the bias, so
/// the accumulation order matches the reference `z = b; z += w*x` loop
/// exactly): the same sequential term order as the scalar loop
/// (bit-identical), with the loop overhead amortized.
double dot_unrolled(double acc, const double* a, const double* b,
                    std::size_t n) {
  std::size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    acc += a[k] * b[k];
    acc += a[k + 1] * b[k + 1];
    acc += a[k + 2] * b[k + 2];
    acc += a[k + 3] * b[k + 3];
  }
  for (; k < n; ++k) acc += a[k] * b[k];
  return acc;
}

// ---------------------------------------------------------------------------
// Scalar reference kernels (the 0-ULP ground truth every SIMD variant is
// tested against).
// ---------------------------------------------------------------------------

template <bool kTanh>
void gemv_scalar(const double* w, const double* bias, const double* x,
                 double* out, std::size_t out_dim, std::size_t in) {
  for (std::size_t o = 0; o < out_dim; ++o) {
    const double z = dot_unrolled(bias[o], w + o * in, x, in);
    out[o] = kTanh ? std::tanh(z) : z;
  }
}

void gemm_rows_scalar(const double* a, const double* b, double* c,
                      std::size_t row_begin, std::size_t row_end,
                      std::size_t cols_a, std::size_t cols_b) {
  for (std::size_t i = row_begin; i < row_end; ++i) {
    const double* a_row = a + i * cols_a;
    double* c_row = c + i * cols_b;
    for (std::size_t j = 0; j < cols_b; ++j) c_row[j] = 0.0;
    for (std::size_t k = 0; k < cols_a; ++k) {
      const double aik = a_row[k];
      const double* b_row = b + k * cols_b;
      for (std::size_t j = 0; j < cols_b; ++j) c_row[j] += aik * b_row[j];
    }
  }
}

void fne_row_update_scalar(double* ata, double* atb, const double* a_row,
                           double yr, std::size_t k) {
  for (std::size_t i = 0; i < k; ++i) {
    const double ai = a_row[i];
    atb[i] += ai * yr;
    double* ata_row = ata + i * k;
    std::size_t j = i;
    for (; j + 4 <= k; j += 4) {
      ata_row[j] += ai * a_row[j];
      ata_row[j + 1] += ai * a_row[j + 1];
      ata_row[j + 2] += ai * a_row[j + 2];
      ata_row[j + 3] += ai * a_row[j + 3];
    }
    for (; j < k; ++j) ata_row[j] += ai * a_row[j];
  }
}

template <bool kTanh>
void gemv_t_f32_scalar(const float* wt, const float* bias, const float* x,
                       float* out, std::size_t out_dim, std::size_t in) {
  for (std::size_t o = 0; o < out_dim; ++o) out[o] = bias[o];
  for (std::size_t i = 0; i < in; ++i) {
    const float xi = x[i];
    const float* w_row = wt + i * out_dim;
    for (std::size_t o = 0; o < out_dim; ++o) out[o] += w_row[o] * xi;
  }
  if constexpr (kTanh) {
    for (std::size_t o = 0; o < out_dim; ++o) out[o] = std::tanh(out[o]);
  }
}

// ---------------------------------------------------------------------------
// Runtime dispatch state.
// ---------------------------------------------------------------------------

SimdIsa detect() noexcept {
#if defined(ACBM_HAVE_AVX2_TU)
  if (__builtin_cpu_supports("avx2")) return SimdIsa::kAvx2;
#endif
#if defined(ACBM_HAVE_NEON_TU)
  return SimdIsa::kNeon;
#else
  return SimdIsa::kScalar;
#endif
}

bool env_flag_off(const char* name) noexcept {
  const char* v = std::getenv(name);
  if (v == nullptr) return false;
  const std::string_view s{v};
  return s == "0" || s == "off" || s == "OFF" || s == "scalar";
}

bool env_flag_on(const char* name) noexcept {
  const char* v = std::getenv(name);
  if (v == nullptr) return false;
  const std::string_view s{v};
  return s == "1" || s == "on" || s == "ON" || s == "true";
}

std::atomic<SimdIsa>& active_state() noexcept {
  static std::atomic<SimdIsa> state{env_flag_off("ACBM_SIMD") ? SimdIsa::kScalar
                                                              : detect()};
  return state;
}

std::atomic<bool>& fast_math_state() noexcept {
  static std::atomic<bool> state{env_flag_on("ACBM_FAST_MATH")};
  return state;
}

/// Table for the active ISA, or nullptr when scalar is active (or the
/// arch TU was not built). Fast-math tables carry bit-identical entries
/// for kernels without a reordering variant, so one lookup suffices.
const detail::KernelTable* active_table() noexcept {
  const SimdIsa isa = active_state().load(std::memory_order_relaxed);
  const bool fm = fast_math_state().load(std::memory_order_relaxed);
  switch (isa) {
    case SimdIsa::kAvx2:
      return detail::avx2_table(fm);
    case SimdIsa::kNeon:
      return detail::neon_table(fm);
    case SimdIsa::kScalar:
      break;
  }
  return nullptr;
}

void count_dispatch(bool vectorized) {
  if (!vectorized) {
    ACBM_COUNT("kernels.dispatch.scalar", 1);
    return;
  }
  switch (active_state().load(std::memory_order_relaxed)) {
    case SimdIsa::kAvx2:
      ACBM_COUNT("kernels.dispatch.avx2", 1);
      break;
    case SimdIsa::kNeon:
      ACBM_COUNT("kernels.dispatch.neon", 1);
      break;
    case SimdIsa::kScalar:
      ACBM_COUNT("kernels.dispatch.scalar", 1);
      break;
  }
}

/// Below these shapes the SIMD setup cost outweighs the win; the scalar
/// reference is used regardless of the active ISA (results are identical
/// either way — this is purely a performance cutoff).
constexpr std::size_t kMinSimdGemvRows = 4;
constexpr std::size_t kMinSimdFneCols = 8;
constexpr std::size_t kMinSimdGemvF32Rows = 8;

}  // namespace

const char* isa_name(SimdIsa isa) noexcept {
  switch (isa) {
    case SimdIsa::kAvx2:
      return "avx2";
    case SimdIsa::kNeon:
      return "neon";
    case SimdIsa::kScalar:
      break;
  }
  return "scalar";
}

SimdIsa detected_isa() noexcept {
  static const SimdIsa isa = detect();
  return isa;
}

SimdIsa active_isa() noexcept {
  return active_state().load(std::memory_order_relaxed);
}

void set_active_isa(SimdIsa isa) noexcept {
  if (isa != SimdIsa::kScalar && isa != detected_isa()) isa = SimdIsa::kScalar;
  active_state().store(isa, std::memory_order_relaxed);
}

bool fast_math() noexcept {
  return fast_math_state().load(std::memory_order_relaxed);
}

void set_fast_math(bool on) noexcept {
  fast_math_state().store(on, std::memory_order_relaxed);
}

void gemv(std::span<const double> weights, std::span<const double> bias,
          std::span<const double> x, std::span<double> out) {
  ACBM_COUNT("gemv.calls", 1);
  ACBM_COUNT("gemv.flops", 2 * out.size() * x.size());
  assert(weights.size() == out.size() * x.size());
  assert(bias.size() == out.size());
  assert(!ranges_overlap(out.data(), out.size(), weights.data(),
                         weights.size()) &&
         !ranges_overlap(out.data(), out.size(), bias.data(), bias.size()) &&
         !ranges_overlap(out.data(), out.size(), x.data(), x.size()));
  const detail::KernelTable* t = active_table();
  if (t != nullptr && t->gemv != nullptr && out.size() >= kMinSimdGemvRows) {
    count_dispatch(true);
    t->gemv(weights.data(), bias.data(), x.data(), out.data(), out.size(),
            x.size());
    return;
  }
  count_dispatch(false);
  gemv_scalar<false>(weights.data(), bias.data(), x.data(), out.data(),
                     out.size(), x.size());
}

void gemv_tanh(std::span<const double> weights, std::span<const double> bias,
               std::span<const double> x, std::span<double> out) {
  ACBM_COUNT("gemv.calls", 1);
  ACBM_COUNT("gemv.flops", 2 * out.size() * x.size());
  assert(weights.size() == out.size() * x.size());
  assert(bias.size() == out.size());
  assert(!ranges_overlap(out.data(), out.size(), weights.data(),
                         weights.size()) &&
         !ranges_overlap(out.data(), out.size(), bias.data(), bias.size()) &&
         !ranges_overlap(out.data(), out.size(), x.data(), x.size()));
  const detail::KernelTable* t = active_table();
  if (t != nullptr && t->gemv_tanh != nullptr &&
      out.size() >= kMinSimdGemvRows) {
    count_dispatch(true);
    t->gemv_tanh(weights.data(), bias.data(), x.data(), out.data(), out.size(),
                 x.size());
    return;
  }
  count_dispatch(false);
  gemv_scalar<true>(weights.data(), bias.data(), x.data(), out.data(),
                    out.size(), x.size());
}

void gemm_row_range(const double* a, const double* b, double* c,
                    std::size_t row_begin, std::size_t row_end,
                    std::size_t cols_a, std::size_t cols_b) {
  const detail::KernelTable* t = active_table();
  if (t != nullptr && t->gemm_rows != nullptr) {
    count_dispatch(true);
    t->gemm_rows(a, b, c, row_begin, row_end, cols_a, cols_b);
    return;
  }
  count_dispatch(false);
  gemm_rows_scalar(a, b, c, row_begin, row_end, cols_a, cols_b);
}

void fne_row_update(double* ata, double* atb, const double* a_row, double yr,
                    std::size_t k) {
  const detail::KernelTable* t = active_table();
  if (t != nullptr && t->fne_row_update != nullptr && k >= kMinSimdFneCols) {
    count_dispatch(true);
    t->fne_row_update(ata, atb, a_row, yr, k);
    return;
  }
  count_dispatch(false);
  fne_row_update_scalar(ata, atb, a_row, yr, k);
}

void gemv_t_f32(std::span<const float> weights_t, std::span<const float> bias,
                std::span<const float> x, std::span<float> out) {
  assert(weights_t.size() == out.size() * x.size());
  assert(bias.size() == out.size());
  assert(!ranges_overlap_f32(out.data(), out.size(), weights_t.data(),
                             weights_t.size()) &&
         !ranges_overlap_f32(out.data(), out.size(), bias.data(),
                             bias.size()) &&
         !ranges_overlap_f32(out.data(), out.size(), x.data(), x.size()));
  const detail::KernelTable* t = active_table();
  if (t != nullptr && t->gemv_t_f32 != nullptr &&
      out.size() >= kMinSimdGemvF32Rows) {
    count_dispatch(true);
    t->gemv_t_f32(weights_t.data(), bias.data(), x.data(), out.data(),
                  out.size(), x.size());
    return;
  }
  count_dispatch(false);
  gemv_t_f32_scalar<false>(weights_t.data(), bias.data(), x.data(), out.data(),
                           out.size(), x.size());
}

void gemv_t_tanh_f32(std::span<const float> weights_t,
                     std::span<const float> bias, std::span<const float> x,
                     std::span<float> out) {
  assert(weights_t.size() == out.size() * x.size());
  assert(bias.size() == out.size());
  assert(!ranges_overlap_f32(out.data(), out.size(), weights_t.data(),
                             weights_t.size()) &&
         !ranges_overlap_f32(out.data(), out.size(), bias.data(),
                             bias.size()) &&
         !ranges_overlap_f32(out.data(), out.size(), x.data(), x.size()));
  const detail::KernelTable* t = active_table();
  if (t != nullptr && t->gemv_t_tanh_f32 != nullptr &&
      out.size() >= kMinSimdGemvF32Rows) {
    count_dispatch(true);
    t->gemv_t_tanh_f32(weights_t.data(), bias.data(), x.data(), out.data(),
                       out.size(), x.size());
    return;
  }
  count_dispatch(false);
  gemv_t_f32_scalar<true>(weights_t.data(), bias.data(), x.data(), out.data(),
                          out.size(), x.size());
}

double dot(std::span<const double> a, std::span<const double> b,
           double start) noexcept {
  assert(a.size() == b.size());
  double acc = start;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

// Fallback definitions when the arch-specific TU is not part of the build
// (non-matching target, or -DACBM_DISABLE_SIMD=ON).
#ifndef ACBM_HAVE_AVX2_TU
const detail::KernelTable* detail::avx2_table(bool) noexcept { return nullptr; }
#endif
#ifndef ACBM_HAVE_NEON_TU
const detail::KernelTable* detail::neon_table(bool) noexcept { return nullptr; }
#endif

}  // namespace acbm::stats
