#include "stats/kernels.h"

#include <cassert>
#include <cmath>

#include "core/observe.h"

namespace acbm::stats {

namespace {

[[maybe_unused]] bool ranges_overlap(const double* p, std::size_t n,
                                     const double* q, std::size_t m) {
  return p < q + m && q < p + n;
}

/// Single-accumulator 4-wide unrolled dot seeded with `acc` (the bias, so
/// the accumulation order matches the reference `z = b; z += w*x` loop
/// exactly): the same sequential term order as the scalar loop
/// (bit-identical), with the loop overhead amortized.
double dot_unrolled(double acc, const double* a, const double* b,
                    std::size_t n) {
  std::size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    acc += a[k] * b[k];
    acc += a[k + 1] * b[k + 1];
    acc += a[k + 2] * b[k + 2];
    acc += a[k + 3] * b[k + 3];
  }
  for (; k < n; ++k) acc += a[k] * b[k];
  return acc;
}

template <bool kTanh>
void gemv_impl(std::span<const double> weights, std::span<const double> bias,
               std::span<const double> x, std::span<double> out) {
  assert(weights.size() == out.size() * x.size());
  assert(bias.size() == out.size());
  assert(!ranges_overlap(out.data(), out.size(), weights.data(),
                         weights.size()) &&
         !ranges_overlap(out.data(), out.size(), bias.data(), bias.size()) &&
         !ranges_overlap(out.data(), out.size(), x.data(), x.size()));
  const std::size_t in_dim = x.size();
  for (std::size_t o = 0; o < out.size(); ++o) {
    const double z =
        dot_unrolled(bias[o], weights.data() + o * in_dim, x.data(), in_dim);
    out[o] = kTanh ? std::tanh(z) : z;
  }
}

}  // namespace

void gemv(std::span<const double> weights, std::span<const double> bias,
          std::span<const double> x, std::span<double> out) {
  ACBM_COUNT("gemv.calls", 1);
  ACBM_COUNT("gemv.flops", 2 * out.size() * x.size());
  gemv_impl<false>(weights, bias, x, out);
}

void gemv_tanh(std::span<const double> weights, std::span<const double> bias,
               std::span<const double> x, std::span<double> out) {
  ACBM_COUNT("gemv.calls", 1);
  ACBM_COUNT("gemv.flops", 2 * out.size() * x.size());
  gemv_impl<true>(weights, bias, x, out);
}

}  // namespace acbm::stats
