// AVX2 microkernels. This TU is compiled with -mavx2 -mfma and, crucially,
// -ffp-contract=off: the default-path kernels below keep multiply and add
// as separate IEEE operations so every output lane reproduces the scalar
// reference's accumulation chain exactly (bit-identity with fast-math off).
// Letting the compiler contract mul+add intrinsics into FMA would silently
// break that contract. The explicitly-FMA variants live in the fast-math
// table and are only reachable through the ACBM_FAST_MATH opt-in.
//
// Vectorization strategy for bit-identity: vectorize ACROSS independent
// accumulators, never within one accumulation chain.
//  - gemv/gemv_tanh: 4 output rows per register; a 4x4 in-register
//    transpose of the weight rows turns each input index i into one vector
//    column, accumulated in ascending-i order per lane.
//  - gemm_rows: k-outer broadcast of a(i,k) against contiguous B rows;
//    each C element accumulates in ascending-k order.
//  - fne_row_update: broadcast a_row[i] against the j-contiguous tail; each
//    ata entry gets its single mul+add for this row.
//  - gemv_t_f32: transposed (input-major) weights make output lanes
//    contiguous; ascending-i accumulation per lane.

#include <immintrin.h>

#include <cmath>
#include <cstddef>

#include "stats/kernels_dispatch.h"

namespace acbm::stats::detail {

namespace {

// ---------------------------------------------------------------------------
// f64 gemv: 4 outputs per vector, lane-stable.
// ---------------------------------------------------------------------------

/// Accumulates 4 output rows r0..r3 over all inputs, starting from the
/// bias vector; returns {z0, z1, z2, z3}.
inline __m256d gemv4_accumulate(const double* r0, const double* r1,
                                const double* r2, const double* r3,
                                const double* x, std::size_t in,
                                __m256d acc) {
  std::size_t i = 0;
  for (; i + 4 <= in; i += 4) {
    const __m256d a0 = _mm256_loadu_pd(r0 + i);
    const __m256d a1 = _mm256_loadu_pd(r1 + i);
    const __m256d a2 = _mm256_loadu_pd(r2 + i);
    const __m256d a3 = _mm256_loadu_pd(r3 + i);
    // 4x4 transpose: column c holds {r0[i+c], r1[i+c], r2[i+c], r3[i+c]}.
    const __m256d t0 = _mm256_unpacklo_pd(a0, a1);
    const __m256d t1 = _mm256_unpackhi_pd(a0, a1);
    const __m256d t2 = _mm256_unpacklo_pd(a2, a3);
    const __m256d t3 = _mm256_unpackhi_pd(a2, a3);
    const __m256d c0 = _mm256_permute2f128_pd(t0, t2, 0x20);
    const __m256d c1 = _mm256_permute2f128_pd(t1, t3, 0x20);
    const __m256d c2 = _mm256_permute2f128_pd(t0, t2, 0x31);
    const __m256d c3 = _mm256_permute2f128_pd(t1, t3, 0x31);
    acc = _mm256_add_pd(acc, _mm256_mul_pd(c0, _mm256_set1_pd(x[i])));
    acc = _mm256_add_pd(acc, _mm256_mul_pd(c1, _mm256_set1_pd(x[i + 1])));
    acc = _mm256_add_pd(acc, _mm256_mul_pd(c2, _mm256_set1_pd(x[i + 2])));
    acc = _mm256_add_pd(acc, _mm256_mul_pd(c3, _mm256_set1_pd(x[i + 3])));
  }
  for (; i < in; ++i) {
    const __m256d col = _mm256_set_pd(r3[i], r2[i], r1[i], r0[i]);
    acc = _mm256_add_pd(acc, _mm256_mul_pd(col, _mm256_set1_pd(x[i])));
  }
  return acc;
}

/// Scalar tail for the < 4 leftover output rows; same sequential
/// accumulation as the scalar reference.
inline double dot_seq(double acc, const double* a, const double* b,
                      std::size_t n) {
  for (std::size_t k = 0; k < n; ++k) acc += a[k] * b[k];
  return acc;
}

template <bool kTanh>
void gemv_avx2(const double* w, const double* bias, const double* x,
               double* out, std::size_t out_dim, std::size_t in) {
  std::size_t o = 0;
  for (; o + 4 <= out_dim; o += 4) {
    const double* r0 = w + o * in;
    const __m256d acc = gemv4_accumulate(r0, r0 + in, r0 + 2 * in, r0 + 3 * in,
                                         x, in, _mm256_loadu_pd(bias + o));
    if constexpr (kTanh) {
      alignas(32) double z[4];
      _mm256_store_pd(z, acc);
      out[o] = std::tanh(z[0]);
      out[o + 1] = std::tanh(z[1]);
      out[o + 2] = std::tanh(z[2]);
      out[o + 3] = std::tanh(z[3]);
    } else {
      _mm256_storeu_pd(out + o, acc);
    }
  }
  for (; o < out_dim; ++o) {
    const double z = dot_seq(bias[o], w + o * in, x, in);
    out[o] = kTanh ? std::tanh(z) : z;
  }
}

/// Fast-math gemv: per-row dot with two FMA accumulators and a horizontal
/// reduction — reorders the accumulation chain (opt-in only).
template <bool kTanh>
void gemv_avx2_fm(const double* w, const double* bias, const double* x,
                  double* out, std::size_t out_dim, std::size_t in) {
  for (std::size_t o = 0; o < out_dim; ++o) {
    const double* row = w + o * in;
    __m256d acc0 = _mm256_setzero_pd();
    __m256d acc1 = _mm256_setzero_pd();
    std::size_t i = 0;
    for (; i + 8 <= in; i += 8) {
      acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(row + i), _mm256_loadu_pd(x + i),
                             acc0);
      acc1 = _mm256_fmadd_pd(_mm256_loadu_pd(row + i + 4),
                             _mm256_loadu_pd(x + i + 4), acc1);
    }
    for (; i + 4 <= in; i += 4) {
      acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(row + i), _mm256_loadu_pd(x + i),
                             acc0);
    }
    acc0 = _mm256_add_pd(acc0, acc1);
    alignas(32) double lanes[4];
    _mm256_store_pd(lanes, acc0);
    double z = bias[o] + (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
    for (; i < in; ++i) z += row[i] * x[i];
    out[o] = kTanh ? std::tanh(z) : z;
  }
}

// ---------------------------------------------------------------------------
// f64 gemm row range: k-outer broadcast, register-blocked over j.
// ---------------------------------------------------------------------------

template <bool kFma>
inline __m256d mul_acc(__m256d acc, __m256d a, __m256d b) {
  if constexpr (kFma) return _mm256_fmadd_pd(a, b, acc);
  return _mm256_add_pd(acc, _mm256_mul_pd(a, b));
}

template <bool kFma>
void gemm_rows_avx2(const double* a, const double* b, double* c,
                    std::size_t row_begin, std::size_t row_end,
                    std::size_t cols_a, std::size_t cols_b) {
  for (std::size_t i = row_begin; i < row_end; ++i) {
    const double* a_row = a + i * cols_a;
    double* c_row = c + i * cols_b;
    std::size_t j = 0;
    for (; j + 16 <= cols_b; j += 16) {
      __m256d acc0 = _mm256_setzero_pd();
      __m256d acc1 = _mm256_setzero_pd();
      __m256d acc2 = _mm256_setzero_pd();
      __m256d acc3 = _mm256_setzero_pd();
      for (std::size_t k = 0; k < cols_a; ++k) {
        const __m256d av = _mm256_set1_pd(a_row[k]);
        const double* b_row = b + k * cols_b + j;
        acc0 = mul_acc<kFma>(acc0, av, _mm256_loadu_pd(b_row));
        acc1 = mul_acc<kFma>(acc1, av, _mm256_loadu_pd(b_row + 4));
        acc2 = mul_acc<kFma>(acc2, av, _mm256_loadu_pd(b_row + 8));
        acc3 = mul_acc<kFma>(acc3, av, _mm256_loadu_pd(b_row + 12));
      }
      _mm256_storeu_pd(c_row + j, acc0);
      _mm256_storeu_pd(c_row + j + 4, acc1);
      _mm256_storeu_pd(c_row + j + 8, acc2);
      _mm256_storeu_pd(c_row + j + 12, acc3);
    }
    for (; j + 4 <= cols_b; j += 4) {
      __m256d acc = _mm256_setzero_pd();
      for (std::size_t k = 0; k < cols_a; ++k) {
        acc = mul_acc<kFma>(acc, _mm256_set1_pd(a_row[k]),
                            _mm256_loadu_pd(b + k * cols_b + j));
      }
      _mm256_storeu_pd(c_row + j, acc);
    }
    for (; j < cols_b; ++j) {
      double acc = 0.0;
      for (std::size_t k = 0; k < cols_a; ++k) {
        acc += a_row[k] * b[k * cols_b + j];
      }
      c_row[j] = acc;
    }
  }
}

// ---------------------------------------------------------------------------
// Fused normal equations: broadcast rank-1 row update on the upper triangle.
// ---------------------------------------------------------------------------

template <bool kFma>
void fne_row_update_avx2(double* ata, double* atb, const double* a_row,
                         double yr, std::size_t k) {
  for (std::size_t i = 0; i < k; ++i) {
    const double ai = a_row[i];
    atb[i] += ai * yr;
    double* ata_row = ata + i * k;
    const __m256d av = _mm256_set1_pd(ai);
    std::size_t j = i;
    for (; j + 4 <= k; j += 4) {
      const __m256d cur = _mm256_loadu_pd(ata_row + j);
      const __m256d arj = _mm256_loadu_pd(a_row + j);
      _mm256_storeu_pd(ata_row + j, mul_acc<kFma>(cur, av, arj));
    }
    for (; j < k; ++j) ata_row[j] += ai * a_row[j];
  }
}

// ---------------------------------------------------------------------------
// f32 inference gemv over transposed weights: 8 output lanes per register.
// ---------------------------------------------------------------------------

template <bool kFma>
inline __m256 mul_acc_f32(__m256 acc, __m256 a, __m256 b) {
  if constexpr (kFma) return _mm256_fmadd_ps(a, b, acc);
  return _mm256_add_ps(acc, _mm256_mul_ps(a, b));
}

template <bool kTanh, bool kFma>
void gemv_t_f32_avx2(const float* wt, const float* bias, const float* x,
                     float* out, std::size_t out_dim, std::size_t in) {
  std::size_t o = 0;
  for (; o + 8 <= out_dim; o += 8) {
    __m256 acc = _mm256_loadu_ps(bias + o);
    for (std::size_t i = 0; i < in; ++i) {
      const __m256 w = _mm256_loadu_ps(wt + i * out_dim + o);
      acc = mul_acc_f32<kFma>(acc, _mm256_set1_ps(x[i]), w);
    }
    if constexpr (kTanh) {
      alignas(32) float z[8];
      _mm256_store_ps(z, acc);
      for (int l = 0; l < 8; ++l) out[o + l] = std::tanh(z[l]);
    } else {
      _mm256_storeu_ps(out + o, acc);
    }
  }
  for (; o < out_dim; ++o) {
    float acc = bias[o];
    for (std::size_t i = 0; i < in; ++i) acc += wt[i * out_dim + o] * x[i];
    out[o] = kTanh ? std::tanh(acc) : acc;
  }
}

const KernelTable kAvx2Plain{
    gemv_avx2<false>,          gemv_avx2<true>,
    gemm_rows_avx2<false>,     fne_row_update_avx2<false>,
    gemv_t_f32_avx2<false, false>, gemv_t_f32_avx2<true, false>,
};

const KernelTable kAvx2FastMath{
    gemv_avx2_fm<false>,       gemv_avx2_fm<true>,
    gemm_rows_avx2<true>,      fne_row_update_avx2<true>,
    gemv_t_f32_avx2<false, true>, gemv_t_f32_avx2<true, true>,
};

}  // namespace

const KernelTable* avx2_table(bool fast_math) noexcept {
  return fast_math ? &kAvx2FastMath : &kAvx2Plain;
}

}  // namespace acbm::stats::detail
