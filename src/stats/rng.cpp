#include "stats/rng.h"

#include <cmath>
#include <stdexcept>
#include <unordered_set>

namespace acbm::stats {

std::uint64_t substream_seed(std::uint64_t seed, std::uint64_t index) {
  // splitmix64 finalizer over the index, xored into the seed and finalized
  // again: adjacent indices land on well-separated engine seeds.
  const auto mix = [](std::uint64_t z) {
    z += 0x9E3779B97F4A7C15ULL;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  };
  return mix(seed ^ mix(index));
}

double Rng::uniform(double lo, double hi) {
  if (!(lo <= hi)) throw std::invalid_argument("Rng::uniform: lo > hi");
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("Rng::uniform_int: lo > hi");
  return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
}

double Rng::normal(double mean, double sigma) {
  if (sigma < 0.0) throw std::invalid_argument("Rng::normal: sigma < 0");
  if (sigma == 0.0) return mean;
  return std::normal_distribution<double>(mean, sigma)(engine_);
}

double Rng::lognormal(double mu, double sigma) {
  if (sigma < 0.0) throw std::invalid_argument("Rng::lognormal: sigma < 0");
  return std::exp(normal(mu, sigma));
}

std::uint64_t Rng::poisson(double lambda) {
  if (lambda < 0.0) throw std::invalid_argument("Rng::poisson: lambda < 0");
  if (lambda == 0.0) return 0;
  return std::poisson_distribution<std::uint64_t>(lambda)(engine_);
}

double Rng::exponential(double rate) {
  if (rate <= 0.0) throw std::invalid_argument("Rng::exponential: rate <= 0");
  return std::exponential_distribution<double>(rate)(engine_);
}

double Rng::pareto(double x_m, double alpha) {
  if (x_m <= 0.0 || alpha <= 0.0) {
    throw std::invalid_argument("Rng::pareto: invalid parameters");
  }
  // Inverse-CDF sampling: F^{-1}(u) = x_m / (1-u)^{1/alpha}.
  const double u = uniform(0.0, 1.0);
  return x_m / std::pow(1.0 - u, 1.0 / alpha);
}

bool Rng::bernoulli(double p) {
  if (p < 0.0 || p > 1.0) throw std::invalid_argument("Rng::bernoulli: p out of range");
  return std::bernoulli_distribution(p)(engine_);
}

std::size_t Rng::categorical(std::span<const double> weights) {
  if (weights.empty()) throw std::invalid_argument("Rng::categorical: empty weights");
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0) throw std::invalid_argument("Rng::categorical: negative weight");
    total += w;
  }
  if (total <= 0.0) throw std::invalid_argument("Rng::categorical: all weights zero");
  double u = uniform(0.0, total);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    u -= weights[i];
    if (u < 0.0) return i;
  }
  return weights.size() - 1;  // Guards against rounding at the upper edge.
}

std::size_t Rng::zipf(std::size_t n, double s) {
  if (n == 0) throw std::invalid_argument("Rng::zipf: n == 0");
  if (s < 0.0) throw std::invalid_argument("Rng::zipf: s < 0");
  std::vector<double> weights(n);
  for (std::size_t i = 0; i < n; ++i) {
    weights[i] = 1.0 / std::pow(static_cast<double>(i + 1), s);
  }
  return categorical(weights);
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t k) {
  if (k > n) throw std::invalid_argument("Rng::sample_without_replacement: k > n");
  // Floyd's algorithm: O(k) expected draws regardless of n.
  std::unordered_set<std::size_t> chosen;
  std::vector<std::size_t> out;
  out.reserve(k);
  for (std::size_t j = n - k; j < n; ++j) {
    const auto t = static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(j)));
    if (chosen.insert(t).second) {
      out.push_back(t);
    } else {
      chosen.insert(j);
      out.push_back(j);
    }
  }
  return out;
}

Rng Rng::fork() {
  return Rng(static_cast<std::uint64_t>(engine_()) ^ 0x9E3779B97F4A7C15ULL);
}

}  // namespace acbm::stats
