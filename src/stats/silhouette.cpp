#include "stats/silhouette.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <unordered_map>

#include "stats/descriptive.h"

namespace acbm::stats {

std::vector<double> silhouette_values(std::span<const std::size_t> labels,
                                      const DistanceFn& distance) {
  const std::size_t n = labels.size();
  if (n == 0) throw std::invalid_argument("silhouette_values: empty labels");

  std::unordered_map<std::size_t, std::vector<std::size_t>> clusters;
  for (std::size_t i = 0; i < n; ++i) clusters[labels[i]].push_back(i);

  std::vector<double> out(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const auto& own = clusters[labels[i]];
    if (own.size() <= 1) {
      out[i] = 0.0;  // Rousseeuw's convention for singletons.
      continue;
    }
    // a(i): mean distance to own cluster (excluding self).
    double a = 0.0;
    for (std::size_t j : own) {
      if (j != i) a += distance(i, j);
    }
    a /= static_cast<double>(own.size() - 1);

    // b(i): smallest mean distance to any other cluster.
    double b = std::numeric_limits<double>::infinity();
    for (const auto& [label, members] : clusters) {
      if (label == labels[i]) continue;
      double d = 0.0;
      for (std::size_t j : members) d += distance(i, j);
      d /= static_cast<double>(members.size());
      b = std::min(b, d);
    }
    if (!std::isfinite(b)) {
      out[i] = 0.0;  // Only one cluster exists.
      continue;
    }
    const double denom = std::max(a, b);
    out[i] = denom > 0.0 ? (b - a) / denom : 0.0;
  }
  return out;
}

double silhouette_score(std::span<const std::size_t> labels,
                        const DistanceFn& distance) {
  const std::vector<double> vals = silhouette_values(labels, distance);
  return mean(vals);
}

}  // namespace acbm::stats
