// Train/test splitting. The paper uses a chronological 80/20 split
// (40,563 train / 10,141 test) so the test set is strictly in the future of
// the training set; we also provide a shuffled split for ablations.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <vector>

#include "stats/rng.h"

namespace acbm::stats {

struct SplitIndices {
  std::vector<std::size_t> train;
  std::vector<std::size_t> test;
};

/// Chronological split: the first round(n * train_fraction) indices go to
/// train, the rest to test. train_fraction must be in (0, 1).
[[nodiscard]] SplitIndices chronological_split(std::size_t n,
                                               double train_fraction);

/// Shuffled split with the same proportions (for ablation experiments).
[[nodiscard]] SplitIndices shuffled_split(std::size_t n, double train_fraction,
                                          Rng& rng);

/// Gathers the elements of `items` at `indices`.
template <typename T>
[[nodiscard]] std::vector<T> gather(const std::vector<T>& items,
                                    const std::vector<std::size_t>& indices) {
  std::vector<T> out;
  out.reserve(indices.size());
  for (std::size_t i : indices) {
    if (i >= items.size()) throw std::out_of_range("gather: index out of range");
    out.push_back(items[i]);
  }
  return out;
}

}  // namespace acbm::stats
