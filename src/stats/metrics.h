// Prediction-error metrics used to validate every model in the paper
// (the evaluation reports RMSE throughout).
#pragma once

#include <span>

namespace acbm::stats {

/// Root mean squared error. Throws std::invalid_argument on length mismatch
/// or empty input.
[[nodiscard]] double rmse(std::span<const double> truth,
                          std::span<const double> pred);

/// Mean absolute error.
[[nodiscard]] double mae(std::span<const double> truth,
                         std::span<const double> pred);

/// Mean absolute percentage error over entries with non-zero truth
/// (entries with truth == 0 are skipped; returns 0 if all are skipped).
[[nodiscard]] double mape(std::span<const double> truth,
                          std::span<const double> pred);

/// Coefficient of determination R^2 = 1 - SS_res / SS_tot. Returns 0 when the
/// truth series has zero variance.
[[nodiscard]] double r_squared(std::span<const double> truth,
                               std::span<const double> pred);

/// Symmetric mean absolute percentage error in [0, 2].
[[nodiscard]] double smape(std::span<const double> truth,
                           std::span<const double> pred);

}  // namespace acbm::stats
