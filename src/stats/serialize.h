// Tiny line-oriented serialization helpers shared by every model's
// save()/load(). Format: one `tag value...` line per field, doubles at
// full round-trip precision. Loaders validate tags so version/format
// mismatches fail loudly instead of mis-parsing.
#pragma once

#include <iomanip>
#include <istream>
#include <ostream>
#include <span>
#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace acbm::stats::io {

inline void write_header(std::ostream& os, std::string_view kind,
                         int version) {
  os << "acbm:" << kind << ":v" << version << '\n';
  os << std::setprecision(17);
}

inline void expect_header(std::istream& is, std::string_view kind,
                          int version) {
  std::string line;
  if (!std::getline(is, line)) {
    throw std::invalid_argument("serialize: missing header");
  }
  std::ostringstream expected;
  expected << "acbm:" << kind << ":v" << version;
  if (line != expected.str()) {
    throw std::invalid_argument("serialize: expected header '" +
                                expected.str() + "', got '" + line + "'");
  }
}

/// Reads a line and checks its leading tag; returns the rest as a stream.
inline std::istringstream expect_tag(std::istream& is, std::string_view tag) {
  std::string line;
  if (!std::getline(is, line)) {
    throw std::invalid_argument("serialize: missing field '" +
                                std::string(tag) + "'");
  }
  std::istringstream ss(line);
  std::string got;
  ss >> got;
  if (got != tag) {
    throw std::invalid_argument("serialize: expected field '" +
                                std::string(tag) + "', got '" + got + "'");
  }
  return ss;
}

template <typename T>
void write_scalar(std::ostream& os, std::string_view tag, T value) {
  os << tag << ' ' << value << '\n';
}

template <typename T>
[[nodiscard]] T read_scalar(std::istream& is, std::string_view tag) {
  auto ss = expect_tag(is, tag);
  T value{};
  if (!(ss >> value)) {
    throw std::invalid_argument("serialize: bad value for '" +
                                std::string(tag) + "'");
  }
  return value;
}

template <typename T>
void write_vector(std::ostream& os, std::string_view tag,
                  std::span<const T> values) {
  os << tag << ' ' << values.size();
  for (const T& v : values) os << ' ' << v;
  os << '\n';
}

template <typename T>
[[nodiscard]] std::vector<T> read_vector(std::istream& is,
                                         std::string_view tag) {
  auto ss = expect_tag(is, tag);
  std::size_t count = 0;
  if (!(ss >> count)) {
    throw std::invalid_argument("serialize: bad count for '" +
                                std::string(tag) + "'");
  }
  std::vector<T> out(count);
  for (std::size_t i = 0; i < count; ++i) {
    if (!(ss >> out[i])) {
      throw std::invalid_argument("serialize: truncated vector '" +
                                  std::string(tag) + "'");
    }
  }
  return out;
}

}  // namespace acbm::stats::io
