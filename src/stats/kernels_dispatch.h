// Internal dispatch plumbing shared between kernels.cpp (runtime selection +
// scalar reference) and the ISA-specific translation units (kernels_avx2.cpp,
// kernels_neon.cpp) that are compiled with per-file arch flags. Not part of
// the public API — include kernels.h instead.
#pragma once

#include <cstddef>

namespace acbm::stats::detail {

/// Function-pointer table for one ISA flavor. A null entry means "no
/// vectorized version for this kernel" and the dispatcher falls back to the
/// scalar reference for that kernel only (partial tables are how NEON ships
/// a subset without faking the rest).
struct KernelTable {
  /// Dense f64 gemv: out[o] = bias[o] + sum_i w[o*in+i] * x[i].
  void (*gemv)(const double* w, const double* bias, const double* x,
               double* out, std::size_t out_dim, std::size_t in) = nullptr;
  void (*gemv_tanh)(const double* w, const double* bias, const double* x,
                    double* out, std::size_t out_dim,
                    std::size_t in) = nullptr;
  /// Rows [row_begin,row_end) of C = A*B, row-major, k-ascending per element.
  void (*gemm_rows)(const double* a, const double* b, double* c,
                    std::size_t row_begin, std::size_t row_end,
                    std::size_t cols_a, std::size_t cols_b) = nullptr;
  /// One streamed row of the fused normal equations: upper-triangle
  /// ata[i][j>=i] += a_row[i]*a_row[j], atb[i] += a_row[i]*yr.
  void (*fne_row_update)(double* ata, double* atb, const double* a_row,
                         double yr, std::size_t k) = nullptr;
  /// f32 gemv over transposed (input-major) weights wt[i*out_dim + o].
  void (*gemv_t_f32)(const float* wt, const float* bias, const float* x,
                     float* out, std::size_t out_dim,
                     std::size_t in) = nullptr;
  void (*gemv_t_tanh_f32)(const float* wt, const float* bias, const float* x,
                          float* out, std::size_t out_dim,
                          std::size_t in) = nullptr;
};

/// Tables provided by the arch-specific TUs; null when the TU is not built
/// for this target. `fast_math` selects the variant that may reorder FP
/// accumulation (FMA, horizontal reductions) — see ACBM_FAST_MATH in
/// DESIGN.md §6. The default (false) variants are bit-identical to scalar.
[[nodiscard]] const KernelTable* avx2_table(bool fast_math) noexcept;
[[nodiscard]] const KernelTable* neon_table(bool fast_math) noexcept;

}  // namespace acbm::stats::detail
