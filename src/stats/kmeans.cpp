#include "stats/kmeans.h"

#include <cmath>
#include <limits>
#include <stdexcept>
#include <unordered_map>

namespace acbm::stats {

namespace {

double squared_distance(const Matrix& data, std::size_t row,
                        const Matrix& centroids, std::size_t centroid) {
  double acc = 0.0;
  for (std::size_t j = 0; j < data.cols(); ++j) {
    const double d = data(row, j) - centroids(centroid, j);
    acc += d * d;
  }
  return acc;
}

// k-means++ seeding: each next centroid is drawn proportional to the
// squared distance from the nearest already-chosen one.
Matrix seed_centroids(const Matrix& data, std::size_t k, Rng& rng) {
  const std::size_t n = data.rows();
  Matrix centroids(k, data.cols());
  const auto first =
      static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
  for (std::size_t j = 0; j < data.cols(); ++j) {
    centroids(0, j) = data(first, j);
  }
  std::vector<double> dist2(n, std::numeric_limits<double>::infinity());
  for (std::size_t c = 1; c < k; ++c) {
    for (std::size_t i = 0; i < n; ++i) {
      dist2[i] = std::min(dist2[i], squared_distance(data, i, centroids, c - 1));
    }
    double total = 0.0;
    for (double d : dist2) total += d;
    std::size_t pick = 0;
    if (total > 0.0) {
      pick = rng.categorical(dist2);
    } else {
      pick = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    }
    for (std::size_t j = 0; j < data.cols(); ++j) {
      centroids(c, j) = data(pick, j);
    }
  }
  return centroids;
}

KMeansResult run_once(const Matrix& data, const KMeansOptions& opts,
                      Rng& rng) {
  const std::size_t n = data.rows();
  const std::size_t d = data.cols();
  KMeansResult result;
  result.centroids = seed_centroids(data, opts.k, rng);
  result.labels.assign(n, 0);

  for (std::size_t iter = 0; iter < opts.max_iterations; ++iter) {
    bool changed = false;
    for (std::size_t i = 0; i < n; ++i) {
      std::size_t best = 0;
      double best_d = std::numeric_limits<double>::infinity();
      for (std::size_t c = 0; c < opts.k; ++c) {
        const double dist = squared_distance(data, i, result.centroids, c);
        if (dist < best_d) {
          best_d = dist;
          best = c;
        }
      }
      if (result.labels[i] != best) {
        result.labels[i] = best;
        changed = true;
      }
    }
    result.iterations = iter + 1;

    // Recompute centroids; empty clusters re-seed from the farthest point.
    Matrix sums(opts.k, d);
    std::vector<std::size_t> counts(opts.k, 0);
    for (std::size_t i = 0; i < n; ++i) {
      ++counts[result.labels[i]];
      for (std::size_t j = 0; j < d; ++j) {
        sums(result.labels[i], j) += data(i, j);
      }
    }
    for (std::size_t c = 0; c < opts.k; ++c) {
      if (counts[c] == 0) {
        std::size_t farthest = 0;
        double far_d = -1.0;
        for (std::size_t i = 0; i < n; ++i) {
          const double dist =
              squared_distance(data, i, result.centroids, result.labels[i]);
          if (dist > far_d) {
            far_d = dist;
            farthest = i;
          }
        }
        for (std::size_t j = 0; j < d; ++j) {
          result.centroids(c, j) = data(farthest, j);
        }
        changed = true;
        continue;
      }
      for (std::size_t j = 0; j < d; ++j) {
        result.centroids(c, j) = sums(c, j) / static_cast<double>(counts[c]);
      }
    }
    if (!changed) break;
  }

  result.inertia = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    result.inertia += squared_distance(data, i, result.centroids,
                                       result.labels[i]);
  }
  return result;
}

}  // namespace

KMeansResult kmeans(const Matrix& data, const KMeansOptions& opts, Rng& rng) {
  if (data.empty()) throw std::invalid_argument("kmeans: empty data");
  if (opts.k == 0 || opts.k > data.rows()) {
    throw std::invalid_argument("kmeans: k out of range");
  }
  KMeansResult best;
  best.inertia = std::numeric_limits<double>::infinity();
  const std::size_t restarts = std::max<std::size_t>(opts.restarts, 1);
  for (std::size_t r = 0; r < restarts; ++r) {
    KMeansResult candidate = run_once(data, opts, rng);
    if (candidate.inertia < best.inertia) best = std::move(candidate);
  }
  return best;
}

double cluster_purity(std::span<const std::size_t> labels,
                      std::span<const std::size_t> truth) {
  if (labels.size() != truth.size() || labels.empty()) {
    throw std::invalid_argument("cluster_purity: bad input");
  }
  // Majority true label per cluster.
  std::unordered_map<std::size_t, std::unordered_map<std::size_t, std::size_t>>
      votes;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    ++votes[labels[i]][truth[i]];
  }
  std::size_t correct = 0;
  for (const auto& [cluster, histogram] : votes) {
    std::size_t best = 0;
    for (const auto& [label, count] : histogram) best = std::max(best, count);
    correct += best;
  }
  return static_cast<double>(correct) / static_cast<double>(labels.size());
}

}  // namespace acbm::stats
