#include "stats/split.h"

#include <cmath>
#include <numeric>

namespace acbm::stats {

SplitIndices chronological_split(std::size_t n, double train_fraction) {
  if (!(train_fraction > 0.0 && train_fraction < 1.0)) {
    throw std::invalid_argument("chronological_split: fraction out of (0,1)");
  }
  const auto n_train = static_cast<std::size_t>(
      std::llround(static_cast<double>(n) * train_fraction));
  SplitIndices out;
  out.train.resize(n_train);
  std::iota(out.train.begin(), out.train.end(), std::size_t{0});
  out.test.resize(n - n_train);
  std::iota(out.test.begin(), out.test.end(), n_train);
  return out;
}

SplitIndices shuffled_split(std::size_t n, double train_fraction, Rng& rng) {
  if (!(train_fraction > 0.0 && train_fraction < 1.0)) {
    throw std::invalid_argument("shuffled_split: fraction out of (0,1)");
  }
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  rng.shuffle(idx);
  const auto n_train = static_cast<std::size_t>(
      std::llround(static_cast<double>(n) * train_fraction));
  SplitIndices out;
  out.train.assign(idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(n_train));
  out.test.assign(idx.begin() + static_cast<std::ptrdiff_t>(n_train), idx.end());
  return out;
}

}  // namespace acbm::stats
