// Empirical distributions: CDFs (used by the paper to choose the 30 s - 24 h
// multistage window from the inter-launch-time CDF) and histograms (used to
// render the Figure 3/4 distribution comparisons).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace acbm::stats {

/// Empirical cumulative distribution function over a sample.
class EmpiricalCdf {
 public:
  EmpiricalCdf() = default;

  /// Builds the CDF from a sample; throws std::invalid_argument when empty.
  explicit EmpiricalCdf(std::span<const double> sample);

  /// Fraction of the sample <= x.
  [[nodiscard]] double cdf(double x) const;

  /// Smallest sample value v with cdf(v) >= p, p in (0, 1].
  [[nodiscard]] double quantile(double p) const;

  [[nodiscard]] std::size_t size() const noexcept { return sorted_.size(); }
  [[nodiscard]] const std::vector<double>& sorted_sample() const noexcept {
    return sorted_;
  }

 private:
  std::vector<double> sorted_;
};

/// Fixed-width histogram over [lo, hi); values outside clamp to edge bins.
class Histogram {
 public:
  /// Throws std::invalid_argument if bins == 0 or lo >= hi.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  void add_all(std::span<const double> xs);

  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
  [[nodiscard]] std::size_t count(std::size_t bin) const;
  [[nodiscard]] std::size_t total() const noexcept { return total_; }

  /// Bin index for a value (clamped to the edge bins).
  [[nodiscard]] std::size_t bin_of(double x) const;

  /// Center of a bin.
  [[nodiscard]] double bin_center(std::size_t bin) const;

  /// Normalized bin frequencies summing to 1 (all zeros when empty).
  [[nodiscard]] std::vector<double> frequencies() const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// L1 (total-variation x2) distance between two discrete distributions given
/// as frequency vectors of equal length.
[[nodiscard]] double l1_distance(std::span<const double> p,
                                 std::span<const double> q);

/// Shannon entropy (nats) of a frequency vector (non-negative, need not be
/// normalized; zero entries are skipped).
[[nodiscard]] double entropy(std::span<const double> freqs);

}  // namespace acbm::stats
