#include "core/server.h"

#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <tuple>

#include "core/durable.h"
#include "core/observe.h"

namespace acbm::core::serve {

namespace {

using Clock = std::chrono::steady_clock;

template <typename T>
void put_scalar(std::string& out, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  char bytes[sizeof(T)];
  std::memcpy(bytes, &value, sizeof(T));
  out.append(bytes, sizeof(T));
}

/// Little-endian scalar reader with bounds checking; `off` advances.
template <typename T>
[[nodiscard]] bool get_scalar(std::string_view data, std::size_t& off,
                              T& out) {
  if (data.size() - off < sizeof(T)) return false;
  std::memcpy(&out, data.data() + off, sizeof(T));
  off += sizeof(T);
  return true;
}

struct ParsedRequest {
  Opcode opcode = Opcode::kPing;
  Precision precision = Precision::kF64;
  std::string model;
  std::string payload;
};

[[nodiscard]] bool parse_request_body(std::string_view body,
                                      ParsedRequest& out) {
  std::size_t off = 0;
  std::uint32_t magic = 0;
  std::uint8_t opcode = 0;
  std::uint8_t precision = 0;
  std::uint16_t name_len = 0;
  if (!get_scalar(body, off, magic) || magic != kRequestMagic) return false;
  if (!get_scalar(body, off, opcode) ||
      opcode > static_cast<std::uint8_t>(Opcode::kStats)) {
    return false;
  }
  if (!get_scalar(body, off, precision) || precision > 1) return false;
  if (!get_scalar(body, off, name_len)) return false;
  if (body.size() - off < name_len) return false;
  out.opcode = static_cast<Opcode>(opcode);
  out.precision = precision == 1 ? Precision::kF32 : Precision::kF64;
  out.model.assign(body.data() + off, name_len);
  off += name_len;
  out.payload.assign(body.data() + off, body.size() - off);
  return true;
}

[[nodiscard]] std::string frame(std::string body) {
  std::string out;
  out.reserve(4 + body.size());
  put_scalar(out, static_cast<std::uint32_t>(body.size()));
  out += body;
  return out;
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

struct FileSig {
  std::int64_t mtime_ns = -1;
  std::uint64_t size = 0;
  std::uint64_t ino = 0;
  bool operator==(const FileSig&) const = default;
};

[[nodiscard]] std::optional<FileSig> stat_sig(
    const std::filesystem::path& path) {
  struct stat st{};
  if (::stat(path.c_str(), &st) != 0) return std::nullopt;
  FileSig sig;
  sig.mtime_ns = static_cast<std::int64_t>(st.st_mtim.tv_sec) * 1000000000 +
                 st.st_mtim.tv_nsec;
  sig.size = static_cast<std::uint64_t>(st.st_size);
  sig.ino = static_cast<std::uint64_t>(st.st_ino);
  return sig;
}

}  // namespace

std::string_view status_name(Status status) noexcept {
  switch (status) {
    case Status::kOk: return "ok";
    case Status::kNoPrediction: return "no-prediction";
    case Status::kUnknownModel: return "unknown-model";
    case Status::kBadRequest: return "bad-request";
    case Status::kTooLarge: return "too-large";
    case Status::kInternal: return "internal";
  }
  return "unknown";
}

std::string encode_request(Opcode opcode, Precision precision,
                           std::string_view model, std::string_view payload) {
  std::string body;
  body.reserve(10 + model.size() + payload.size());
  put_scalar(body, kRequestMagic);
  put_scalar(body, static_cast<std::uint8_t>(opcode));
  put_scalar(body,
             static_cast<std::uint8_t>(precision == Precision::kF32 ? 1 : 0));
  put_scalar(body, static_cast<std::uint16_t>(model.size()));
  body += model;
  body += payload;
  return frame(std::move(body));
}

std::string encode_response(Status status, Opcode opcode,
                            std::string_view payload) {
  std::string body;
  body.reserve(8 + payload.size());
  put_scalar(body, kResponseMagic);
  put_scalar(body, static_cast<std::uint8_t>(status));
  put_scalar(body, static_cast<std::uint8_t>(opcode));
  put_scalar(body, static_cast<std::uint16_t>(0));
  body += payload;
  return frame(std::move(body));
}

std::string encode_prediction(const AttackPrediction& pred,
                              std::string_view family_name) {
  std::string out;
  put_scalar(out, pred.magnitude);
  put_scalar(out, pred.magnitude_sd);
  put_scalar(out, pred.duration_s);
  put_scalar(out, pred.hour);
  put_scalar(out, pred.day);
  put_scalar(out, static_cast<std::int64_t>(pred.start));
  put_scalar(out, pred.assumed_family);
  put_scalar(out, static_cast<std::uint16_t>(family_name.size()));
  out += family_name;
  std::vector<std::pair<net::Asn, double>> sources(
      pred.source_distribution.begin(), pred.source_distribution.end());
  std::sort(sources.begin(), sources.end());
  put_scalar(out, static_cast<std::uint32_t>(sources.size()));
  for (const auto& [asn, share] : sources) {
    put_scalar(out, asn);
    put_scalar(out, share);
  }
  return out;
}

PredictResult decode_prediction(std::string_view payload) {
  PredictResult result;
  std::size_t off = 0;
  std::int64_t start = 0;
  std::uint16_t name_len = 0;
  std::uint32_t n_sources = 0;
  AttackPrediction& p = result.prediction;
  if (!get_scalar(payload, off, p.magnitude) ||
      !get_scalar(payload, off, p.magnitude_sd) ||
      !get_scalar(payload, off, p.duration_s) ||
      !get_scalar(payload, off, p.hour) || !get_scalar(payload, off, p.day) ||
      !get_scalar(payload, off, start) ||
      !get_scalar(payload, off, p.assumed_family) ||
      !get_scalar(payload, off, name_len) ||
      payload.size() - off < name_len) {
    throw std::invalid_argument("decode_prediction: truncated payload");
  }
  p.start = static_cast<trace::EpochSeconds>(start);
  result.family_name.assign(payload.data() + off, name_len);
  off += name_len;
  if (!get_scalar(payload, off, n_sources) ||
      payload.size() - off != static_cast<std::size_t>(n_sources) * 12) {
    throw std::invalid_argument("decode_prediction: bad source table");
  }
  result.sources.reserve(n_sources);
  for (std::uint32_t i = 0; i < n_sources; ++i) {
    net::Asn asn = 0;
    double share = 0.0;
    (void)get_scalar(payload, off, asn);
    (void)get_scalar(payload, off, share);
    result.sources.emplace_back(asn, share);
    p.source_distribution[asn] = share;
  }
  return result;
}

// --- Server -----------------------------------------------------------------

struct Server::Impl {
  explicit Impl(ServerOptions o) : opts(std::move(o)) {}

  ServerOptions opts;

  struct PendingRequest {
    int fd = -1;
    std::uint64_t conn_gen = 0;
    ParsedRequest req;
    Clock::time_point t0;
  };

  struct ModelEntry {
    std::filesystem::path path;
    std::shared_ptr<const ServingModel> model;  ///< Null when not resident.
    std::uint64_t generation = 0;
    FileSig sig;             ///< Stat signature of the loaded artifact.
    std::uint64_t last_used = 0;
  };

  struct Conn {
    int fd = -1;
    std::uint64_t gen = 0;
    std::string rbuf;
    std::deque<std::string> wq;
    std::size_t woff = 0;
    Clock::time_point last_activity;
    bool close_after_flush = false;
  };

  // Registry (workers + watcher).
  mutable std::mutex reg_mu;
  std::unordered_map<std::string, ModelEntry> registry;
  std::uint64_t lru_tick = 0;

  // Request queue (IO thread -> workers).
  std::mutex q_mu;
  std::condition_variable q_cv;
  std::deque<PendingRequest> queue;
  bool stopping = false;

  // Response queue (workers -> IO thread).
  std::mutex resp_mu;
  std::vector<std::tuple<int, std::uint64_t, std::string>> responses;

  int wake_pipe[2] = {-1, -1};
  int listen_unix = -1;
  int listen_tcp = -1;
  std::filesystem::path socket_path;

  std::thread io_thread;
  std::vector<std::thread> workers;
  std::thread watcher;
  std::mutex watch_mu;
  std::condition_variable watch_cv;

  std::atomic<std::uint64_t> requests{0}, batches{0}, coalesced{0}, errors{0},
      lru_hits{0}, lru_misses{0}, lru_evictions{0}, swaps{0};
  std::uint64_t conn_gen_counter = 0;  ///< IO thread only.

  void wake() {
    const char byte = 'w';
    [[maybe_unused]] ssize_t rc = ::write(wake_pipe[1], &byte, 1);
  }

  void post_response(int fd, std::uint64_t conn_gen, std::string frame) {
    {
      std::lock_guard lock(resp_mu);
      responses.emplace_back(fd, conn_gen, std::move(frame));
    }
    wake();
  }

  /// Loads `entry`'s artifact from disk and returns the model, or null on
  /// a load failure (corrupt / mid-swap artifact; the caller retries
  /// later). Called with reg_mu HELD for demand loads (cold-start path,
  /// contention acceptable) and WITHOUT it from the watcher.
  static std::shared_ptr<const ServingModel> load_model(
      const std::filesystem::path& path) {
    try {
      return std::make_shared<const ServingModel>(
          ServingModel::load_any(path));
    } catch (const durable::LoadFailure&) {
      return nullptr;
    } catch (const std::exception&) {
      return nullptr;
    }
  }

  void evict_lru_locked(const std::string& keep) {
    std::size_t resident = 0;
    for (const auto& [name, entry] : registry) {
      if (entry.model != nullptr) ++resident;
    }
    while (resident > opts.max_resident) {
      std::string victim;
      std::uint64_t oldest = ~0ull;
      for (const auto& [name, entry] : registry) {
        if (entry.model == nullptr || name == keep) continue;
        if (entry.last_used < oldest) {
          oldest = entry.last_used;
          victim = name;
        }
      }
      if (victim.empty()) break;
      registry[victim].model.reset();
      --resident;
      lru_evictions.fetch_add(1, std::memory_order_relaxed);
      ACBM_COUNT("serve.lru.evict", 1);
    }
  }

  /// Registry lookup with demand-load + LRU bookkeeping. Returns a
  /// snapshot the caller owns across the forecast (hot swaps and evictions
  /// never invalidate it).
  [[nodiscard]] std::pair<Status, std::shared_ptr<const ServingModel>>
  resolve(const std::string& name) {
    std::lock_guard lock(reg_mu);
    const auto it = registry.find(name);
    if (it == registry.end()) return {Status::kUnknownModel, nullptr};
    ModelEntry& entry = it->second;
    if (entry.model != nullptr) {
      lru_hits.fetch_add(1, std::memory_order_relaxed);
      ACBM_COUNT("serve.lru.hit", 1);
    } else {
      lru_misses.fetch_add(1, std::memory_order_relaxed);
      ACBM_COUNT("serve.lru.miss", 1);
      const auto sig = stat_sig(entry.path);
      entry.model = load_model(entry.path);
      if (entry.model == nullptr) return {Status::kInternal, nullptr};
      entry.sig = sig.value_or(FileSig{});
      ++entry.generation;
      evict_lru_locked(name);
    }
    entry.last_used = ++lru_tick;
    return {Status::kOk, entry.model};
  }

  [[nodiscard]] std::string handle_predict(const ParsedRequest& req) {
    if (req.payload.size() != 4) {
      errors.fetch_add(1, std::memory_order_relaxed);
      return encode_response(Status::kBadRequest, req.opcode,
                             "predict payload must be a u32 asn");
    }
    std::uint32_t asn = 0;
    std::memcpy(&asn, req.payload.data(), 4);
    auto [status, model] = resolve(req.model);
    if (status != Status::kOk) {
      errors.fetch_add(1, std::memory_order_relaxed);
      return encode_response(status, req.opcode, "");
    }
    try {
      const std::optional<AttackPrediction> pred =
          model->predict(asn, req.precision);
      if (!pred) {
        errors.fetch_add(1, std::memory_order_relaxed);
        return encode_response(Status::kNoPrediction, req.opcode, "");
      }
      return encode_response(
          Status::kOk, req.opcode,
          encode_prediction(*pred, model->family_name(pred->assumed_family)));
    } catch (const std::exception& e) {
      errors.fetch_add(1, std::memory_order_relaxed);
      return encode_response(Status::kInternal, req.opcode, e.what());
    }
  }

  [[nodiscard]] std::string handle_list() {
    std::string payload;
    std::lock_guard lock(reg_mu);
    put_scalar(payload, static_cast<std::uint32_t>(registry.size()));
    for (const auto& [name, entry] : registry) {
      put_scalar(payload, static_cast<std::uint16_t>(name.size()));
      payload += name;
      put_scalar(payload, entry.generation);
      put_scalar(payload,
                 static_cast<std::uint8_t>(entry.model != nullptr ? 1 : 0));
    }
    return encode_response(Status::kOk, Opcode::kList, payload);
  }

  [[nodiscard]] std::string handle_stats() {
    const ServerStats s = snapshot_stats();
    std::string text;
    text += "requests=" + std::to_string(s.requests) + "\n";
    text += "batches=" + std::to_string(s.batches) + "\n";
    text += "coalesced=" + std::to_string(s.coalesced) + "\n";
    text += "errors=" + std::to_string(s.errors) + "\n";
    text += "lru_hits=" + std::to_string(s.lru_hits) + "\n";
    text += "lru_misses=" + std::to_string(s.lru_misses) + "\n";
    text += "lru_evictions=" + std::to_string(s.lru_evictions) + "\n";
    text += "swaps=" + std::to_string(s.swaps) + "\n";
    return encode_response(Status::kOk, Opcode::kStats, text);
  }

  [[nodiscard]] ServerStats snapshot_stats() const {
    ServerStats s;
    s.requests = requests.load(std::memory_order_relaxed);
    s.batches = batches.load(std::memory_order_relaxed);
    s.coalesced = coalesced.load(std::memory_order_relaxed);
    s.errors = errors.load(std::memory_order_relaxed);
    s.lru_hits = lru_hits.load(std::memory_order_relaxed);
    s.lru_misses = lru_misses.load(std::memory_order_relaxed);
    s.lru_evictions = lru_evictions.load(std::memory_order_relaxed);
    s.swaps = swaps.load(std::memory_order_relaxed);
    return s;
  }

  void worker_loop() {
    std::vector<PendingRequest> batch;
    while (true) {
      batch.clear();
      {
        std::unique_lock lock(q_mu);
        q_cv.wait(lock, [&] { return stopping || !queue.empty(); });
        if (stopping && queue.empty()) return;
        const std::size_t take =
            opts.batching ? std::min(opts.max_batch, queue.size())
                          : std::size_t{1};
        for (std::size_t i = 0; i < take; ++i) {
          batch.push_back(std::move(queue.front()));
          queue.pop_front();
        }
      }
      batches.fetch_add(1, std::memory_order_relaxed);
      ACBM_HISTOGRAM("serve.batch.size", static_cast<double>(batch.size()));

      // Coalesce identical predict requests within the tick: one forecast,
      // one encoded frame, fanned out to every requester.
      std::unordered_map<std::string, std::string> shared_frames;
      for (const PendingRequest& pr : batch) {
        requests.fetch_add(1, std::memory_order_relaxed);
        ACBM_COUNT("serve.requests", 1);
        std::string response_frame;
        switch (pr.req.opcode) {
          case Opcode::kPing:
            response_frame = encode_response(Status::kOk, Opcode::kPing, "");
            break;
          case Opcode::kPredict: {
            if (opts.batching) {
              std::string key = pr.req.model;
              key += '\0';
              key += pr.req.payload;
              key += pr.req.precision == Precision::kF32 ? '1' : '0';
              const auto it = shared_frames.find(key);
              if (it != shared_frames.end()) {
                coalesced.fetch_add(1, std::memory_order_relaxed);
                response_frame = it->second;
              } else {
                response_frame = handle_predict(pr.req);
                shared_frames.emplace(std::move(key), response_frame);
              }
            } else {
              response_frame = handle_predict(pr.req);
            }
            break;
          }
          case Opcode::kList:
            response_frame = handle_list();
            break;
          case Opcode::kStats:
            response_frame = handle_stats();
            break;
        }
        const double ms =
            std::chrono::duration<double, std::milli>(Clock::now() - pr.t0)
                .count();
        ACBM_HISTOGRAM("serve.latency_ms", ms);
        post_response(pr.fd, pr.conn_gen, std::move(response_frame));
      }
    }
  }

  void watcher_loop() {
    while (true) {
      {
        std::unique_lock lock(watch_mu);
        const bool stopped = watch_cv.wait_for(
            lock, std::chrono::milliseconds(opts.watch_interval_ms),
            [&] { return stop_requested.load(); });
        if (stopped) return;
      }
      std::vector<std::string> names;
      {
        std::lock_guard lock(reg_mu);
        names.reserve(registry.size());
        for (const auto& [name, entry] : registry) {
          if (entry.model != nullptr) names.push_back(name);
        }
      }
      for (const std::string& name : names) {
        std::filesystem::path path;
        FileSig loaded_sig;
        {
          std::lock_guard lock(reg_mu);
          const auto it = registry.find(name);
          if (it == registry.end() || it->second.model == nullptr) continue;
          path = it->second.path;
          loaded_sig = it->second.sig;
        }
        const auto sig = stat_sig(path);
        if (!sig || *sig == loaded_sig) continue;
        // Artifact rotated (ingest refit renames over it): load the new
        // generation OUTSIDE the registry lock, then swap atomically.
        // In-flight requests keep their shared_ptr snapshot. A failed load
        // (caught mid-rename or corrupt) is retried next tick.
        std::shared_ptr<const ServingModel> fresh = load_model(path);
        if (fresh == nullptr) continue;
        {
          std::lock_guard lock(reg_mu);
          const auto it = registry.find(name);
          if (it == registry.end()) continue;
          it->second.model = std::move(fresh);
          it->second.sig = *sig;
          ++it->second.generation;
        }
        swaps.fetch_add(1, std::memory_order_relaxed);
        ACBM_COUNT("serve.swap.generations", 1);
      }
    }
  }

  std::atomic<bool> stop_requested{false};

  // --- IO thread ------------------------------------------------------------

  std::unordered_map<int, Conn> conns;  ///< IO thread only.

  void close_conn(int fd) {
    ::close(fd);
    conns.erase(fd);
  }

  void queue_error_and_close(Conn& conn, Status status,
                             std::string_view detail) {
    conn.wq.push_back(encode_response(status, Opcode::kPing, detail));
    conn.close_after_flush = true;
    conn.rbuf.clear();
    errors.fetch_add(1, std::memory_order_relaxed);
  }

  /// Extracts complete frames from a connection's read buffer; returns
  /// false when the connection must stop reading (protocol error queued).
  bool drain_frames(Conn& conn) {
    while (conn.rbuf.size() >= 4) {
      std::uint32_t len = 0;
      std::memcpy(&len, conn.rbuf.data(), 4);
      if (len > kMaxBody) {
        queue_error_and_close(conn, Status::kTooLarge,
                              "request exceeds 1 MiB");
        return false;
      }
      if (conn.rbuf.size() - 4 < len) return true;  // Partial frame.
      ParsedRequest req;
      if (!parse_request_body({conn.rbuf.data() + 4, len}, req)) {
        queue_error_and_close(conn, Status::kBadRequest,
                              "malformed request body");
        return false;
      }
      conn.rbuf.erase(0, 4 + static_cast<std::size_t>(len));
      {
        std::lock_guard lock(q_mu);
        queue.push_back(PendingRequest{conn.fd, conn.gen, std::move(req),
                                       Clock::now()});
      }
      q_cv.notify_one();
    }
    return true;
  }

  void accept_all(int listen_fd) {
    while (true) {
      const int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd < 0) return;
      set_nonblocking(fd);
      Conn conn;
      conn.fd = fd;
      conn.gen = ++conn_gen_counter;
      conn.last_activity = Clock::now();
      conns.emplace(fd, std::move(conn));
    }
  }

  void flush_writes(Conn& conn, bool& closed) {
    closed = false;
    while (!conn.wq.empty()) {
      const std::string& buf = conn.wq.front();
      const ssize_t n = ::send(conn.fd, buf.data() + conn.woff,
                               buf.size() - conn.woff, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;
        close_conn(conn.fd);  // EPIPE / ECONNRESET: client went away.
        closed = true;
        return;
      }
      conn.woff += static_cast<std::size_t>(n);
      conn.last_activity = Clock::now();
      if (conn.woff == buf.size()) {
        conn.wq.pop_front();
        conn.woff = 0;
      }
    }
    if (conn.close_after_flush) {
      close_conn(conn.fd);
      closed = true;
    }
  }

  void io_loop() {
    std::vector<pollfd> pfds;
    char scratch[65536];
    while (!stop_requested.load()) {
      pfds.clear();
      pfds.push_back({wake_pipe[0], POLLIN, 0});
      if (listen_unix >= 0) pfds.push_back({listen_unix, POLLIN, 0});
      if (listen_tcp >= 0) pfds.push_back({listen_tcp, POLLIN, 0});
      const std::size_t fixed = pfds.size();
      for (const auto& [fd, conn] : conns) {
        short events = POLLIN;
        if (!conn.wq.empty()) events |= POLLOUT;
        pfds.push_back({fd, events, 0});
      }
      if (::poll(pfds.data(), pfds.size(), 50) < 0 && errno != EINTR) break;
      if (stop_requested.load()) break;

      if ((pfds[0].revents & POLLIN) != 0) {
        while (::read(wake_pipe[0], scratch, sizeof(scratch)) > 0) {
        }
        std::vector<std::tuple<int, std::uint64_t, std::string>> out;
        {
          std::lock_guard lock(resp_mu);
          out.swap(responses);
        }
        for (auto& [fd, gen, frame_bytes] : out) {
          const auto it = conns.find(fd);
          // A stale (fd, gen) means the connection died mid-request and
          // the fd was reused; drop the response.
          if (it == conns.end() || it->second.gen != gen) continue;
          it->second.wq.push_back(std::move(frame_bytes));
        }
      }
      std::size_t pi = 1;
      if (listen_unix >= 0) {
        if ((pfds[pi].revents & POLLIN) != 0) accept_all(listen_unix);
        ++pi;
      }
      if (listen_tcp >= 0) {
        if ((pfds[pi].revents & POLLIN) != 0) accept_all(listen_tcp);
        ++pi;
      }
      for (std::size_t i = fixed; i < pfds.size(); ++i) {
        const int fd = pfds[i].fd;
        const auto it = conns.find(fd);
        if (it == conns.end()) continue;
        Conn& conn = it->second;
        if ((pfds[i].revents & (POLLERR | POLLNVAL)) != 0) {
          close_conn(fd);
          continue;
        }
        if ((pfds[i].revents & POLLIN) != 0) {
          bool closed = false;
          while (true) {
            const ssize_t n = ::read(fd, scratch, sizeof(scratch));
            if (n > 0) {
              // After a protocol error the connection only drains its
              // error frame; discard further input instead of parsing it
              // (and re-queueing duplicate error frames).
              if (conn.close_after_flush) continue;
              conn.rbuf.append(scratch, static_cast<std::size_t>(n));
              conn.last_activity = Clock::now();
              if (!drain_frames(conn)) continue;
              continue;
            }
            if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
            if (n == 0 && !conn.rbuf.empty() && !conn.close_after_flush) {
              // EOF mid-frame (a half-closed client still reads): answer
              // the garbage prefix with a typed error before closing.
              queue_error_and_close(conn, Status::kBadRequest,
                                    "truncated request");
              break;
            }
            // Clean EOF or hard error with nothing pending.
            if (conn.wq.empty()) {
              close_conn(fd);
              closed = true;
            } else {
              conn.close_after_flush = true;
            }
            break;
          }
          if (closed) continue;
        }
        bool closed = false;
        if (!conn.wq.empty()) flush_writes(conn, closed);
        if (closed) continue;
        // Slow-loris / idle timeouts.
        const auto idle_for = std::chrono::duration_cast<
            std::chrono::milliseconds>(Clock::now() - conn.last_activity);
        const bool mid_io = !conn.rbuf.empty() || !conn.wq.empty();
        if (mid_io && opts.io_timeout_ms > 0 &&
            idle_for.count() >= 0 &&
            static_cast<std::size_t>(idle_for.count()) >= opts.io_timeout_ms) {
          close_conn(fd);
          continue;
        }
        if (!mid_io && opts.idle_timeout_ms > 0 &&
            static_cast<std::size_t>(idle_for.count()) >=
                opts.idle_timeout_ms) {
          close_conn(fd);
        }
      }
    }
    for (auto& [fd, conn] : conns) ::close(fd);
    conns.clear();
  }
};

Server::Server(ServerOptions opts)
    : impl_(std::make_unique<Impl>(std::move(opts))) {}

Server::~Server() { stop(); }

const std::filesystem::path& Server::socket_path() const noexcept {
  return impl_->socket_path;
}

void Server::start() {
  if (running_.load()) return;
  Impl& s = *impl_;
  if (s.opts.socket_path.empty() && s.opts.tcp_port == 0) {
    throw std::runtime_error("serve: no listener configured");
  }
  if (::pipe2(s.wake_pipe, O_NONBLOCK | O_CLOEXEC) != 0) {
    throw std::runtime_error("serve: pipe2 failed");
  }
  if (!s.opts.socket_path.empty()) {
    s.socket_path = s.opts.socket_path;
    const std::string path_str = s.socket_path.string();
    sockaddr_un addr{};
    if (path_str.size() >= sizeof(addr.sun_path)) {
      throw std::runtime_error("serve: socket path too long");
    }
    ::unlink(path_str.c_str());  // Stale socket from a killed daemon.
    s.listen_unix = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path_str.c_str(), sizeof(addr.sun_path) - 1);
    if (s.listen_unix < 0 ||
        ::bind(s.listen_unix, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(s.listen_unix, 128) != 0) {
      throw std::runtime_error("serve: cannot bind unix socket " + path_str);
    }
    set_nonblocking(s.listen_unix);
  }
  if (s.opts.tcp_port != 0) {
    s.listen_tcp = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    const int one = 1;
    ::setsockopt(s.listen_tcp, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port =
        htons(s.opts.tcp_port > 0
                  ? static_cast<std::uint16_t>(s.opts.tcp_port)
                  : 0);
    if (s.listen_tcp < 0 ||
        ::bind(s.listen_tcp, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(s.listen_tcp, 128) != 0) {
      throw std::runtime_error("serve: cannot bind tcp port");
    }
    socklen_t len = sizeof(addr);
    ::getsockname(s.listen_tcp, reinterpret_cast<sockaddr*>(&addr), &len);
    bound_port_ = ntohs(addr.sin_port);
    set_nonblocking(s.listen_tcp);
  }

  for (const auto& [name, path] : s.opts.models) {
    Impl::ModelEntry entry;
    entry.path = path;
    s.registry.emplace(name, std::move(entry));
  }
  if (s.opts.preload) {
    for (const auto& [name, path] : s.opts.models) (void)s.resolve(name);
  }

  s.stop_requested.store(false);
  s.stopping = false;
  s.io_thread = std::thread([&s] { s.io_loop(); });
  const std::size_t n_workers = std::max<std::size_t>(1, s.opts.threads);
  s.workers.reserve(n_workers);
  for (std::size_t i = 0; i < n_workers; ++i) {
    s.workers.emplace_back([&s] { s.worker_loop(); });
  }
  if (s.opts.watch_interval_ms > 0) {
    s.watcher = std::thread([&s] { s.watcher_loop(); });
  }
  running_.store(true);
}

void Server::stop() {
  if (!running_.load()) return;
  Impl& s = *impl_;
  s.stop_requested.store(true);
  {
    std::lock_guard lock(s.q_mu);
    s.stopping = true;
  }
  s.q_cv.notify_all();
  s.watch_cv.notify_all();
  s.wake();
  for (std::thread& t : s.workers) t.join();
  s.workers.clear();
  if (s.io_thread.joinable()) s.io_thread.join();
  if (s.watcher.joinable()) s.watcher.join();
  if (s.listen_unix >= 0) ::close(s.listen_unix);
  if (s.listen_tcp >= 0) ::close(s.listen_tcp);
  s.listen_unix = s.listen_tcp = -1;
  if (!s.socket_path.empty()) ::unlink(s.socket_path.c_str());
  ::close(s.wake_pipe[0]);
  ::close(s.wake_pipe[1]);
  s.wake_pipe[0] = s.wake_pipe[1] = -1;
  running_.store(false);
}

ServerStats Server::stats() const { return impl_->snapshot_stats(); }

std::uint64_t Server::generation(std::string_view model) const {
  std::lock_guard lock(impl_->reg_mu);
  const auto it = impl_->registry.find(std::string(model));
  return it == impl_->registry.end() ? 0 : it->second.generation;
}

bool Server::wait_for_generation(std::string_view model, std::uint64_t gen,
                                 std::size_t timeout_ms) const {
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(timeout_ms);
  while (Clock::now() < deadline) {
    if (generation(model) >= gen) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return generation(model) >= gen;
}

// --- Client -----------------------------------------------------------------

namespace {

void send_all(int fd, std::string_view bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n =
        ::send(fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("client: send failed");
    }
    off += static_cast<std::size_t>(n);
  }
}

[[nodiscard]] bool recv_exact(int fd, char* dst, std::size_t len) {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::recv(fd, dst + off, len - off, 0);
    if (n == 0) return false;
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("client: recv failed");
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

Client Client::connect_unix(const std::filesystem::path& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  const std::string path_str = path.string();
  if (fd < 0 || path_str.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("client: bad unix socket path");
  }
  std::strncpy(addr.sun_path, path_str.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    throw std::runtime_error("client: cannot connect to " + path_str);
  }
  return Client(fd);
}

Client Client::connect_tcp(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (fd < 0 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (fd >= 0) ::close(fd);
    throw std::runtime_error("client: cannot connect to 127.0.0.1:" +
                             std::to_string(port));
  }
  return Client(fd);
}

Client::Client(Client&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

void Client::send_raw(std::string_view bytes) { send_all(fd_, bytes); }

Client::Response Client::read_response() {
  char header[4];
  if (!recv_exact(fd_, header, 4)) {
    throw std::runtime_error("client: connection closed");
  }
  std::uint32_t len = 0;
  std::memcpy(&len, header, 4);
  if (len < 8 || len > kMaxBody) {
    throw std::runtime_error("client: bad response length");
  }
  std::string body(len, '\0');
  if (!recv_exact(fd_, body.data(), len)) {
    throw std::runtime_error("client: truncated response");
  }
  std::uint32_t magic = 0;
  std::memcpy(&magic, body.data(), 4);
  if (magic != kResponseMagic) {
    throw std::runtime_error("client: bad response magic");
  }
  Response resp;
  resp.status = static_cast<Status>(static_cast<std::uint8_t>(body[4]));
  resp.opcode = static_cast<Opcode>(static_cast<std::uint8_t>(body[5]));
  resp.payload = body.substr(8);
  return resp;
}

Client::Response Client::request(Opcode opcode, Precision precision,
                                 std::string_view model,
                                 std::string_view payload) {
  send_raw(encode_request(opcode, precision, model, payload));
  return read_response();
}

std::pair<Status, std::optional<PredictResult>> Client::predict(
    std::string_view model, net::Asn asn, Precision precision) {
  std::string payload;
  put_scalar(payload, asn);
  const Response resp = request(Opcode::kPredict, precision, model, payload);
  if (resp.status != Status::kOk) return {resp.status, std::nullopt};
  return {resp.status, decode_prediction(resp.payload)};
}

Client::Response Client::ping() {
  return request(Opcode::kPing, Precision::kF64, "", "");
}

std::string Client::drain() {
  std::string out;
  char buf[4096];
  while (true) {
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n <= 0) return out;
    out.append(buf, static_cast<std::size_t>(n));
  }
}

}  // namespace acbm::core::serve
